// Benchmarks regenerating every experiment in DESIGN.md §4 — one benchmark
// (or sweep) per figure/scenario of the paper plus the A1–A5 ablations.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eq"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/travel"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/workload"
)

// uniq hands out process-wide unique participant ids so repeated benchmark
// iterations never collide on traveler names.
var uniq atomic.Uint64

func names2() (string, string) {
	n := uniq.Add(1)
	return fmt.Sprintf("u%d_a", n), fmt.Sprintf("u%d_b", n)
}

func mustSystem(b *testing.B, seed int64) *core.System {
	b.Helper()
	sys, err := workload.NewSystem(seed)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// benchNever is a watchdog channel that never closes: coordination in these
// benchmarks is synchronous-on-submit, so outcomes are already buffered by
// the time mustWait runs, and a per-wait timer would only add allocations to
// every measured op (go test's own -timeout is the deadlock backstop).
var benchNever = make(chan struct{})

func mustWait(b *testing.B, h *coord.Handle) coord.Outcome {
	b.Helper()
	out, ok := h.Wait(benchNever)
	if !ok {
		b.Fatalf("q%d unanswered", h.ID)
	}
	return out
}

func submitPair(b *testing.B, sys *core.System, dest string) {
	b.Helper()
	ua, ub := names2()
	f := travel.FlightFilter{Dest: dest}
	h1, err := sys.Submit(travel.BuildFlightQuery(ua, []string{ub}, f), ua)
	if err != nil {
		b.Fatal(err)
	}
	h2, err := sys.Submit(travel.BuildFlightQuery(ub, []string{ua}, f), ub)
	if err != nil {
		b.Fatal(err)
	}
	mustWait(b, h1)
	mustWait(b, h2)
}

// BenchmarkE1_PairMatch — Figure 1: one two-party coordination per op
// (submit both symmetric queries, wait for the joint answer).
func BenchmarkE1_PairMatch(b *testing.B) {
	sys := mustSystem(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitPair(b, sys, "Paris")
	}
}

// BenchmarkE2_TravelPair — §3.1 scenario 1 through the full middle tier
// (friend lists, booking objects, notification messages).
func BenchmarkE2_TravelPair(b *testing.B) {
	sys := mustSystem(b, 2)
	svc := travel.NewService(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ua, ub := names2()
		svc.Befriend(ua, ub)
		f := travel.FlightFilter{Dest: "Paris"}
		b1, err := svc.BookFlight(ua, []string{ub}, f)
		if err != nil {
			b.Fatal(err)
		}
		b2, err := svc.BookFlight(ub, []string{ua}, f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := b1.Await(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		if _, err := b2.Await(10 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_FlightHotelPair — §3.1 scenario 2: two answer atoms per query.
func BenchmarkE3_FlightHotelPair(b *testing.B) {
	sys := mustSystem(b, 3)
	f := travel.FlightFilter{Dest: "Paris"}
	h := travel.HotelFilter{City: "Paris"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ua, ub := names2()
		h1, err := sys.Submit(travel.BuildTripQuery(ua, []string{ub}, f, h), ua)
		if err != nil {
			b.Fatal(err)
		}
		h2, err := sys.Submit(travel.BuildTripQuery(ub, []string{ua}, f, h), ub)
		if err != nil {
			b.Fatal(err)
		}
		mustWait(b, h1)
		mustWait(b, h2)
	}
}

// BenchmarkE4_ConcurrentPairs — §3.1 scenario 3: pairs submitted from
// concurrent goroutines; the coordinator serializes rounds internally.
func BenchmarkE4_ConcurrentPairs(b *testing.B) {
	sys := mustSystem(b, 4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			submitPair(b, sys, "Paris")
		}
	})
}

// BenchmarkE5_GroupSize — §3.1 scenario 4: group booking, swept over group
// size (latency of the k-way match as k grows).
func BenchmarkE5_GroupSize(b *testing.B) {
	for _, k := range []int{2, 3, 4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sys := mustSystem(b, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := uniq.Add(1)
				members := make([]string, k)
				for j := range members {
					members[j] = fmt.Sprintf("g%d_m%d", n, j)
				}
				handles := make([]*coord.Handle, k)
				for j, self := range members {
					var friends []string
					for l, o := range members {
						if l != j {
							friends = append(friends, o)
						}
					}
					h, err := sys.Submit(travel.BuildFlightQuery(self, friends,
						travel.FlightFilter{Dest: "Paris"}), self)
					if err != nil {
						b.Fatal(err)
					}
					handles[j] = h
				}
				for _, h := range handles {
					mustWait(b, h)
				}
			}
		})
	}
}

// BenchmarkE6_GroupFlightHotel — §3.1 scenario 5: group of four coordinating
// flights AND hotels.
func BenchmarkE6_GroupFlightHotel(b *testing.B) {
	sys := mustSystem(b, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := uniq.Add(1)
		members := make([]string, 4)
		for j := range members {
			members[j] = fmt.Sprintf("t%d_m%d", n, j)
		}
		handles := make([]*coord.Handle, len(members))
		for j, self := range members {
			var friends []string
			for l, o := range members {
				if l != j {
					friends = append(friends, o)
				}
			}
			h, err := sys.Submit(travel.BuildTripQuery(self, friends,
				travel.FlightFilter{Dest: "Rome"}, travel.HotelFilter{City: "Rome"}), self)
			if err != nil {
				b.Fatal(err)
			}
			handles[j] = h
		}
		for _, h := range handles {
			mustWait(b, h)
		}
	}
}

// BenchmarkE7_AdHoc — §3.1 scenario 6: the Jerry–Kramer–Elaine overlap graph
// (flights-only edge + flights-and-hotels edge) per op.
func BenchmarkE7_AdHoc(b *testing.B) {
	sys := mustSystem(b, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := uniq.Add(1)
		j := fmt.Sprintf("j%d", n)
		k := fmt.Sprintf("k%d", n)
		e := fmt.Sprintf("e%d", n)
		h1, err := sys.Submit(travel.BuildFlightQuery(j, []string{k},
			travel.FlightFilter{Dest: "Paris"}), j)
		if err != nil {
			b.Fatal(err)
		}
		kramer := fmt.Sprintf(`SELECT ('%[1]s', fno) INTO ANSWER Reservation, ('%[1]s', hno) INTO ANSWER HotelReservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris')
			AND hno IN (SELECT hno FROM Hotels WHERE city = 'Paris')
			AND ('%[2]s', fno) IN ANSWER Reservation
			AND ('%[3]s', hno) IN ANSWER HotelReservation CHOOSE 1`, k, j, e)
		h2, err := sys.Submit(kramer, k)
		if err != nil {
			b.Fatal(err)
		}
		elaine := fmt.Sprintf(`SELECT '%s', hno INTO ANSWER HotelReservation
			WHERE hno IN (SELECT hno FROM Hotels WHERE city = 'Paris')
			AND ('%s', hno) IN ANSWER HotelReservation CHOOSE 1`, e, k)
		h3, err := sys.Submit(elaine, e)
		if err != nil {
			b.Fatal(err)
		}
		mustWait(b, h1)
		mustWait(b, h2)
		mustWait(b, h3)
	}
}

// BenchmarkE8_LoadedSystem — §3 scalability: one pair coordination per op
// while `pending` never-matching queries clog the pending tables.
func BenchmarkE8_LoadedSystem(b *testing.B) {
	for _, pending := range []int{0, 100, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			sys := mustSystem(b, 8)
			gen := workload.NewGenerator(workload.Config{Seed: 8})
			for i := 0; i < pending; i++ {
				if _, err := sys.Submit(gen.LonerQuery(i), "noise"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submitPair(b, sys, "Paris")
			}
		})
	}
}

// BenchmarkE10_ShardedArrivals — the sharded-coordinator experiment:
// concurrent pair coordinations over DISJOINT answer-relation footprints
// (Reservation0..Reservation15), so a relation-partitioned coordinator can
// run the arrivals on independent lanes. Run with -cpu 1,2,4 to scale the
// submitters; the shards=1 configuration is the A7 ablation — the paper's
// single serialized coordination round — and the speedup of shards=N over
// it is the payoff of the sharding refactor.
func BenchmarkE10_ShardedArrivals(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedArrivals(b, shards, 16, 2_000_000)
		})
	}
}

// BenchmarkE11_DurableCommit — the segmented-WAL experiment: committed
// ops/sec of group commit vs the naive fsync-per-record baseline at 8
// concurrent writers. One op is one small committed transaction (4 records
// streamed, one durability wait) — the shape of a coordinated-answer
// install. GOMAXPROCS is raised to 8 for the duration so the writers can
// overlap their fsync waits even on a single-core container; the speedup is
// the amortization of the write+fsync syscall pair across everything that
// queued during the previous flush.
func BenchmarkE11_DurableCommit(b *testing.B) {
	const writers, perTxn = 8, 4
	for _, grouped := range []bool{false, true} {
		name := "mode=fsync-per-record"
		if grouped {
			name = "mode=group-commit"
		}
		b.Run(name, func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(writers))
			cat := storage.NewCatalog()
			l, err := wal.OpenLog(filepath.Join(b.TempDir(), "wal"), cat,
				wal.Options{Sync: wal.SyncAlways, NoGroupCommit: !grouped})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			schema := value.NewSchema(value.Col("fno", value.TypeInt), value.Col("dest", value.TypeString))
			if err := l.Append(storage.LogRecord{Op: storage.OpCreateTable, Table: "T", Schema: schema}); err != nil {
				b.Fatal(err)
			}
			var ctr atomic.Uint64
			row := value.NewTuple(122, "Paris")
			b.SetParallelism(1) // 8 procs × 1 = the 8 concurrent writers
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					base := ctr.Add(perTxn) - perTxn
					for k := 0; k < perTxn; k++ {
						rec := storage.LogRecord{
							Op: storage.OpInsert, Table: "T",
							RowID: storage.RowID(base + uint64(k) + 1), Row: row,
						}
						var err error
						if grouped {
							err = l.AppendAsync(rec)
						} else {
							err = l.Append(rec)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
					if grouped {
						if err := l.Commit(); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			b.StopTimer()
			st := l.Stats()
			if st.Syncs > 0 {
				b.ReportMetric(float64(st.Records)/float64(st.Syncs), "records/fsync")
			}
		})
	}
}

// BenchmarkE12_DurableArrivals — E8-style pair coordinations with the WAL
// underneath: "committed-arrival" throughput, where acknowledging an arrival
// under walsync means its records survived an fsync. The volatile
// configuration is the E8 baseline; os-buffered is the pre-v2 durability
// point; walsync is the group-committed fsync.
func BenchmarkE12_DurableArrivals(b *testing.B) {
	for _, mode := range []string{"volatile", "os-buffered", "walsync"} {
		b.Run("mode="+mode, func(b *testing.B) {
			cfg := core.Config{}
			if mode != "volatile" {
				cfg.WALPath = filepath.Join(b.TempDir(), "wal")
				cfg.WALSync = mode == "walsync"
			}
			sys, err := workload.NewSystemConfig(21, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submitPair(b, sys, "Paris")
			}
		})
	}
}

// BenchmarkA7_ShardCount — ablation: lane count under the same
// disjoint-footprint concurrent load, from the serialized round (1) up.
func BenchmarkA7_ShardCount(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedArrivals(b, shards, 17, 4_000_000)
		})
	}
}

// benchShardedArrivals drives concurrent pair coordinations over 16
// disjoint footprints against a coordinator with the given lane count. The
// pair-id offset keeps participant names distinct across benchmark configs.
func benchShardedArrivals(b *testing.B, shards int, seed int64, offset int) {
	b.Helper()
	sys, err := workload.NewSystemShards(seed, shards)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Config{Seed: seed, Footprints: 16})
	var pair atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// Each iteration is one full pair coordination on the footprint
			// lane its pair index rotates onto.
			i := int(pair.Add(1)) + offset
			qa, qb := gen.PairQueries(i)
			h1, err := sys.Submit(qa, "bench")
			if err != nil {
				b.Fatal(err)
			}
			h2, err := sys.Submit(qb, "bench")
			if err != nil {
				b.Fatal(err)
			}
			mustWait(b, h1)
			mustWait(b, h2)
		}
	})
}

// BenchmarkE9_BaselineVsYoutopia — the §1 comparison: entangled queries vs
// out-of-band middle-tier polling for one pair agreement.
func BenchmarkE9_BaselineVsYoutopia(b *testing.B) {
	b.Run("youtopia", func(b *testing.B) {
		sys := mustSystem(b, 9)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			submitPair(b, sys, "Paris")
		}
	})
	b.Run("baseline", func(b *testing.B) {
		sys := mustSystem(b, 9)
		c, err := baseline.New(sys)
		if err != nil {
			b.Fatal(err)
		}
		c.PollInterval = 50 * time.Microsecond
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ua, ub := names2()
			errs := make(chan error, 2)
			go func() { _, err := c.BookSameFlight(ua, ub, "Paris"); errs <- err }()
			go func() { _, err := c.BookSameFlight(ub, ua, "Paris"); errs <- err }()
			for j := 0; j < 2; j++ {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(c.Statements())/float64(b.N), "stmts/pair")
	})
}

// BenchmarkF2_CompilerPipeline — Figure 2's query-compiler stage: parse +
// compile + safety-check the paper's §2.1 query.
func BenchmarkF2_CompilerPipeline(b *testing.B) {
	src := travel.BuildFlightQuery("Kramer", []string{"Jerry"}, travel.FlightFilter{Dest: "Paris", MaxPrice: 500})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eq.CompileSQL(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1_CandidateIndex — ablation: pending-head candidate index on vs
// linear scan of every pending head, under a noisy pending set.
func BenchmarkA1_CandidateIndex(b *testing.B) {
	for _, useIndex := range []bool{true, false} {
		b.Run(fmt.Sprintf("index=%v", useIndex), func(b *testing.B) {
			sys := core.NewSystem(core.Config{Coord: coord.Options{
				UseIndex: useIndex, GroundSmallestFirst: true, Seed: 11,
			}})
			if err := travel.Seed(sys, travel.SeedConfig{Seed: 11}); err != nil {
				b.Fatal(err)
			}
			gen := workload.NewGenerator(workload.Config{Seed: 11})
			for i := 0; i < 500; i++ {
				if _, err := sys.Submit(gen.LonerQuery(i), "noise"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submitPair(b, sys, "Paris")
			}
		})
	}
}

// BenchmarkA2_MatchBound — ablation: the backtracking bound on match-set
// size, exercised by 6-cycles that need 6 members to close.
func BenchmarkA2_MatchBound(b *testing.B) {
	for _, bound := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			sys := core.NewSystem(core.Config{Coord: coord.Options{
				MaxMatchSize: bound, UseIndex: true, GroundSmallestFirst: true, Seed: 12,
			}})
			if err := travel.Seed(sys, travel.SeedConfig{Seed: 12}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := uniq.Add(1)
				handles := make([]*coord.Handle, 0, 6)
				for j := 0; j < 6; j++ {
					self := fmt.Sprintf("c%d_%d", n, j)
					next := fmt.Sprintf("c%d_%d", n, (j+1)%6)
					src := travel.BuildFlightQuery(self, []string{next}, travel.FlightFilter{Dest: "Paris"})
					h, err := sys.Submit(src, self)
					if err != nil {
						b.Fatal(err)
					}
					handles = append(handles, h)
				}
				for _, h := range handles {
					mustWait(b, h)
				}
			}
		})
	}
}

// BenchmarkA3_GroundingOrder — ablation: smallest-candidate-set-first vs
// discovery-order grounding. The pair's queries mix a huge candidate set
// (all flights anywhere) with a tiny one (cheap Paris flights); grounding
// from the tiny set first avoids enumerating the huge one.
func BenchmarkA3_GroundingOrder(b *testing.B) {
	for _, smallest := range []bool{true, false} {
		b.Run(fmt.Sprintf("smallestFirst=%v", smallest), func(b *testing.B) {
			sys := core.NewSystem(core.Config{Coord: coord.Options{
				UseIndex: true, GroundSmallestFirst: smallest, Seed: 13,
			}})
			if err := travel.Seed(sys, travel.SeedConfig{FlightsPerDest: 40, Seed: 13}); err != nil {
				b.Fatal(err)
			}
			mk := func(self, friend string) string {
				return fmt.Sprintf(`SELECT '%s', fno INTO ANSWER Reservation
					WHERE fno IN (SELECT fno FROM Flights)
					AND fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND price <= 250)
					AND ('%s', fno) IN ANSWER Reservation CHOOSE 1`, self, friend)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ua, ub := names2()
				h1, err := sys.Submit(mk(ua, ub), ua)
				if err != nil {
					b.Fatal(err)
				}
				h2, err := sys.Submit(mk(ub, ua), ub)
				if err != nil {
					b.Fatal(err)
				}
				mustWait(b, h1)
				mustWait(b, h2)
			}
		})
	}
}

// BenchmarkA4_StorageIndex — ablation: hash index on Flights(dest) vs full
// scan for the generator subquery's equality predicate.
func BenchmarkA4_StorageIndex(b *testing.B) {
	for _, indexed := range []bool{true, false} {
		b.Run(fmt.Sprintf("indexed=%v", indexed), func(b *testing.B) {
			sys := core.NewSystem(core.Config{})
			// Big uniform flights table WITHOUT the travel.Seed indexes.
			if err := sys.Exec("CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno))"); err != nil {
				b.Fatal(err)
			}
			for chunk := 0; chunk < 10; chunk++ {
				vals := ""
				for i := 0; i < 500; i++ {
					if i > 0 {
						vals += ", "
					}
					fno := chunk*500 + i
					dest := travel.Destinations[fno%len(travel.Destinations)]
					vals += fmt.Sprintf("(%d, '%s')", fno, dest)
				}
				if err := sys.Exec("INSERT INTO Flights VALUES " + vals); err != nil {
					b.Fatal(err)
				}
			}
			if indexed {
				if err := sys.Exec("CREATE INDEX ON Flights (dest)"); err != nil {
					b.Fatal(err)
				}
			}
			eng := sys.Engine()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.ExecuteSQL("SELECT fno FROM Flights WHERE dest = 'Paris'")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

// BenchmarkA5_TargetedRetry — ablation: after each match, retry only pending
// queries whose constraints the new answers could satisfy vs retrying all.
func BenchmarkA5_TargetedRetry(b *testing.B) {
	for _, full := range []bool{false, true} {
		b.Run(fmt.Sprintf("fullRetry=%v", full), func(b *testing.B) {
			sys := core.NewSystem(core.Config{Coord: coord.Options{
				UseIndex: true, GroundSmallestFirst: true, FullRetryOnMatch: full, Seed: 14,
			}})
			if err := travel.Seed(sys, travel.SeedConfig{Seed: 14}); err != nil {
				b.Fatal(err)
			}
			gen := workload.NewGenerator(workload.Config{Seed: 14})
			for i := 0; i < 500; i++ {
				if _, err := sys.Submit(gen.LonerQuery(i), "noise"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submitPair(b, sys, "Paris")
			}
		})
	}
}

// BenchmarkA6_OrderedIndexRange — ablation: ordered-index range lookup vs
// full scan for the price-window predicates of travel filters.
func BenchmarkA6_OrderedIndexRange(b *testing.B) {
	for _, indexed := range []bool{true, false} {
		b.Run(fmt.Sprintf("ordered=%v", indexed), func(b *testing.B) {
			sys := core.NewSystem(core.Config{})
			if err := sys.Exec("CREATE TABLE Fares (fno INT, price FLOAT)"); err != nil {
				b.Fatal(err)
			}
			for chunk := 0; chunk < 10; chunk++ {
				vals := ""
				for i := 0; i < 500; i++ {
					if i > 0 {
						vals += ", "
					}
					n := chunk*500 + i
					vals += fmt.Sprintf("(%d, %d.0)", n, (n*37)%5000)
				}
				if err := sys.Exec("INSERT INTO Fares VALUES " + vals); err != nil {
					b.Fatal(err)
				}
			}
			if indexed {
				if err := sys.Exec("CREATE ORDERED INDEX ON Fares (price)"); err != nil {
					b.Fatal(err)
				}
			}
			eng := sys.Engine()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.ExecuteSQL("SELECT fno FROM Fares WHERE price BETWEEN 100 AND 150")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

// BenchmarkEngineSelect — substrate microbench: single-table filtered SELECT
// through parser + planner + executor.
func BenchmarkEngineSelect(b *testing.B) {
	sys := mustSystem(b, 15)
	eng := sys.Engine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteSQL("SELECT fno, price FROM Flights WHERE dest = 'Paris' ORDER BY price LIMIT 5"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend — substrate microbench: durable insert cost (WAL on)
// vs in-memory insert (WAL off).
func BenchmarkWALAppend(b *testing.B) {
	for _, durable := range []bool{false, true} {
		b.Run(fmt.Sprintf("wal=%v", durable), func(b *testing.B) {
			cfg := core.Config{}
			if durable {
				cfg.WALPath = filepath.Join(b.TempDir(), "bench.wal")
			}
			sys := core.NewSystem(cfg)
			if err := sys.Err(); err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if err := sys.Exec("CREATE TABLE T (x INT, y STRING)"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d, 'row')", i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13_WireThroughput — the PR-4 wire experiment: one remote
// request/response round trip (a SELECT returning the Paris flight block),
// v2 framed binary vs legacy line-delimited JSON, serial vs pipelined (8
// submitters multiplexed on ONE connection). allocs/op counts client and
// server together — the process is shared — so the codec's marshal costs on
// both sides are in the number. ns/op is report-only per bench methodology;
// allocs/op is the gated metric.
func BenchmarkE13_WireThroughput(b *testing.B) {
	const q = "SELECT * FROM Flights WHERE dest = 'Paris'"
	newServer := func(b *testing.B) string {
		sys := mustSystem(b, 20)
		srv, err := server.Listen(sys, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		return srv.Addr().String()
	}
	type querier interface {
		Query(string) (*server.QueryResult, error)
	}
	check := func(b *testing.B, res *server.QueryResult, err error) {
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v %v", res, err)
		}
	}
	serial := func(b *testing.B, c querier) {
		res, err := c.Query(q) // warm pools and lazy setup before measuring
		check(b, res, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := c.Query(q)
			check(b, res, err)
		}
	}
	pipelined := func(b *testing.B, c querier) {
		const workers = 8
		res, err := c.Query(q)
		check(b, res, err)
		b.ResetTimer()
		var wg sync.WaitGroup
		errs := make(chan error, workers) // b.Fatal is main-goroutine-only
		for w := 0; w < workers; w++ {
			n := b.N / workers
			if w < b.N%workers {
				n++
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					res, err := c.Query(q)
					if err != nil || len(res.Rows) == 0 {
						errs <- fmt.Errorf("query: %v %v", res, err)
						return
					}
				}
			}(n)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}

	b.Run("codec=v2/mode=serial", func(b *testing.B) {
		c, err := server.Dial(newServer(b))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		serial(b, c)
	})
	b.Run("codec=v2/mode=pipelined", func(b *testing.B) {
		c, err := server.Dial(newServer(b))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		pipelined(b, c)
	})
	b.Run("codec=legacy/mode=serial", func(b *testing.B) {
		c, err := server.DialLegacy(newServer(b))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		serial(b, c)
	})
	b.Run("codec=legacy/mode=pipelined", func(b *testing.B) {
		c, err := server.DialLegacy(newServer(b))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		pipelined(b, c)
	})
}

// BenchmarkE14_PreparedThroughput — the PR-5 prepared-statement experiment.
//
// point/*: one parameterized point query per op (indexed dest equality +
// price filter), three ways: mode=text parses per op with the statement
// cache disabled — the pre-PR-5 behavior of every Execute, and still the
// real cost of any text workload whose constants vary per request (travel's
// builders embed user names, so each rendered text is unique); mode=cached
// re-sends IDENTICAL text against the LRU (parse skipped on hit); and
// mode=prepared binds a fresh parameter vector per op against one compiled
// plan. The acceptance target compares prepared against text.
//
// entangled/*: one direct-booking submission per op (unique traveler per
// op, exactly like the workload generators). mode=text parses + compiles
// the coordination IR per arrival; mode=prepared binds one compiled
// template — sql.Parse and eq compilation are skipped entirely, the only
// per-arrival work above the coordinator itself is atom substitution.
//
// wire/*: the point query over TCP — text ships and parses per op vs a
// statement id + binary vector against the per-connection statement table.
func BenchmarkE14_PreparedThroughput(b *testing.B) {
	const pointText = "SELECT fno, price FROM Flights WHERE dest = 'Paris' AND price <= 400.5 ORDER BY price LIMIT 3"
	const pointTmpl = "SELECT fno, price FROM Flights WHERE dest = ? AND price <= ? ORDER BY price LIMIT 3"
	newSys := func(b *testing.B, cache int) *core.System {
		b.Helper()
		sys, err := workload.NewSystemConfig(23, core.Config{StmtCacheSize: cache})
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	checkRows := func(b *testing.B, res *engine.Result, err error) {
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v %v", res, err)
		}
	}

	b.Run("point/mode=text", func(b *testing.B) {
		sys := newSys(b, -1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sys.Query(pointText)
			checkRows(b, res, err)
		}
	})
	b.Run("point/mode=cached", func(b *testing.B) {
		sys := newSys(b, 0)
		res, err := sys.Query(pointText) // populate the LRU before measuring
		checkRows(b, res, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sys.Query(pointText)
			checkRows(b, res, err)
		}
	})
	b.Run("point/mode=prepared", func(b *testing.B) {
		sys := newSys(b, 0)
		ps, err := sys.Prepare(pointTmpl)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ps.Exec("", "Paris", 400.5); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The vector is built per op — binding cost is part of the story.
			resp, err := ps.ExecuteBound(value.NewTuple("Paris", 400.5), "")
			if err != nil || len(resp.Result.Rows) == 0 {
				b.Fatalf("%v %v", resp, err)
			}
		}
	})

	b.Run("entangled/mode=text", func(b *testing.B) {
		sys := newSys(b, -1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := uniq.Add(1)
			src := travel.BuildDirectBooking(fmt.Sprintf("d%d", n), 122)
			h, err := sys.Submit(src, "bench")
			if err != nil {
				b.Fatal(err)
			}
			mustWait(b, h)
		}
	})
	b.Run("entangled/mode=prepared", func(b *testing.B) {
		sys := newSys(b, 0)
		ps, err := sys.Prepare(travel.DirectBookingTemplate)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := uniq.Add(1)
			h, err := ps.SubmitBound(travel.DirectBookingParams(fmt.Sprintf("d%d", n), 122), "bench")
			if err != nil {
				b.Fatal(err)
			}
			mustWait(b, h)
		}
	})

	newWire := func(b *testing.B, cache int) *server.Client {
		b.Helper()
		srv, err := server.Listen(newSys(b, cache), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		c, err := server.Dial(srv.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		return c
	}
	b.Run("wire/mode=text", func(b *testing.B) {
		c := newWire(b, -1)
		if res, err := c.Query(pointText); err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v %v", res, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := c.Query(pointText)
			if err != nil || len(res.Rows) == 0 {
				b.Fatalf("%v %v", res, err)
			}
		}
	})
	b.Run("wire/mode=prepared", func(b *testing.B) {
		c := newWire(b, 0)
		st, err := c.Prepare(pointTmpl)
		if err != nil {
			b.Fatal(err)
		}
		if res, err := st.Query("Paris", 400.5); err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v %v", res, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := st.Query("Paris", 400.5)
			if err != nil || len(res.Rows) == 0 {
				b.Fatalf("%v %v", res, err)
			}
		}
	})
}

// BenchmarkE15_SnapshotReaders — the MVCC experiment: point-read throughput
// of 8 readers probing the shared answer relation while entangled writers
// continuously match, ground, and install coordinated answers (X-locking
// Reservation for every install) — the issue's motivating mix of point
// traffic sharing a hot table with coordination commits. mode=locktable
// restores the pre-MVCC shared-lock read protocol: every probe runs the full
// S-lock dance against back-to-back X holds, parking whenever an install is
// in flight or parked (writer priority), and paying the wake/handoff storm
// when it is not. mode=snapshot is the versioned-tuple path, where probes
// resolve against pinned snapshots and never touch the lock table, so
// readers neither block coordination nor are blocked by it. GOMAXPROCS is
// raised to 8 for the duration so the readers and writers genuinely overlap
// even on a small container; note that on a single hardware core the ratio
// understates the win — total CPU is conserved, so blocked time shows up
// only as lost scheduler share, while with real parallelism the lock-table
// baseline also serializes cores against each other.
func BenchmarkE15_SnapshotReaders(b *testing.B) {
	const readers, writers = 8, 2
	for _, mode := range []string{"locktable", "snapshot"} {
		b.Run("mode="+mode, func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(readers))
			sys := mustSystem(b, 15)
			sys.TxnManager().LockReads = mode == "locktable"

			// Seed the answer relation with one matched pair whose traveler
			// name is known, so every reader probes a stable indexed key.
			seedA, seedB := names2()
			f := travel.FlightFilter{Dest: "Paris"}
			h1, err := sys.Submit(travel.BuildFlightQuery(seedA, []string{seedB}, f), seedA)
			if err != nil {
				b.Fatal(err)
			}
			h2, err := sys.Submit(travel.BuildFlightQuery(seedB, []string{seedA}, f), seedB)
			if err != nil {
				b.Fatal(err)
			}
			mustWait(b, h1)
			mustWait(b, h2)
			// Readers run a prepared point probe: parse/plan are off the
			// measured path, so a probe is pure lock-protocol + index lookup —
			// the part the two modes differ on.
			probe, err := sys.Prepare(fmt.Sprintf("SELECT a2 FROM %s WHERE a1 = ?", travel.RelFlight))
			if err != nil {
				b.Fatal(err)
			}
			probeParams := value.NewTuple(seedA)

			// Writers install coordinated answers continuously via the
			// prepared direct-booking template: each submit is a singleton
			// match that grounds and installs one Reservation tuple — the
			// highest-frequency install load the coordinator can produce.
			ps, err := sys.Prepare(travel.DirectBookingTemplate)
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var installs atomic.Uint64
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						n := uniq.Add(1)
						hw, err := ps.SubmitBound(travel.DirectBookingParams(fmt.Sprintf("w%d", n), 122), "bench")
						if err != nil {
							b.Error(err)
							return
						}
						hw.Wait(benchNever)
						installs.Add(1)
					}
				}()
			}
			// Warm up until the writers are demonstrably installing, so the
			// measured region is read-vs-install interleaving from its first
			// op even at tiny -benchtime.
			for installs.Load() < 4 {
				if _, err := probe.ExecuteBound(probeParams, ""); err != nil {
					b.Fatal(err)
				}
			}

			// One op is a batch of point probes: individual probes are
			// microseconds, so batching keeps scheduler jitter out of
			// small-sample runs.
			const probesPerOp = 500
			b.SetParallelism(1) // 8 procs × 1 = the 8 concurrent readers
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					for k := 0; k < probesPerOp; k++ {
						resp, err := probe.ExecuteBound(probeParams, "")
						if err != nil {
							b.Error(err)
							return
						}
						if len(resp.Result.Rows) != 1 {
							b.Errorf("probe returned %d rows, want the seed reservation", len(resp.Result.Rows))
							return
						}
					}
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
			if b.N > 0 {
				b.ReportMetric(float64(installs.Load())/float64(b.N), "installs/op")
			}
		})
	}
}

// BenchmarkServerRoundTrip — substrate microbench: one remote SELECT over
// the wire protocol.
func BenchmarkServerRoundTrip(b *testing.B) {
	sys := mustSystem(b, 20)
	srv, err := server.Listen(sys, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := server.Dial(srv.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Query("SELECT fno FROM Flights WHERE dest = 'Paris' LIMIT 3")
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v %v", res, err)
		}
	}
}

// BenchmarkUnify — substrate microbench: one Figure-1b unification.
func BenchmarkUnify(b *testing.B) {
	cons := eq.NewAtom("Reservation", eq.ConstTerm(value.NewString("Jerry")), eq.VarTerm("fno"))
	head := eq.NewAtom("Reservation", eq.ConstTerm(value.NewString("Jerry")), eq.VarTerm("fno"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := eq.NewSubst()
		if !eq.UnifyAtoms(s, 1, cons, 2, head) {
			b.Fatal("unify failed")
		}
	}
}

// E16: replication shipping cost — durable commits on a primary streaming
// live to one connected follower over the framed log-shipping protocol. An
// iteration is one acknowledged primary commit; the timer stops only after
// the follower's chain has durably applied every shipped byte, so ship,
// replay and ack all amortize into ns/op. Compare against E11's standalone
// fsync-per-record commit: the delta is what a synchronous follower costs.
func BenchmarkE16_ReplicatedCommit(b *testing.B) {
	pdir := filepath.Join(b.TempDir(), "wal")
	sys := core.NewSystem(core.Config{WALPath: pdir, WALSync: true, CoordShards: 1})
	if err := sys.Err(); err != nil {
		b.Fatal(err)
	}
	defer sys.Close() //nolint:errcheck
	pn, err := repl.Start(repl.Config{System: sys, Dir: pdir, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	defer pn.Close() //nolint:errcheck

	fdir := filepath.Join(b.TempDir(), "fwal")
	fsys := core.NewSystem(core.Config{WALPath: fdir, WALSync: true, WALFollower: true, CoordShards: 1})
	if err := fsys.Err(); err != nil {
		b.Fatal(err)
	}
	defer fsys.Close() //nolint:errcheck
	fn, err := repl.Start(repl.Config{System: fsys, Dir: fdir, PrimaryAddr: pn.Addr(), PrimaryClientAddr: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer fn.Close() //nolint:errcheck

	if _, err := sys.Execute("CREATE TABLE Repl (id INT, note STRING, PRIMARY KEY(id))", "bench"); err != nil {
		b.Fatal(err)
	}
	waitReplConverge(b, sys, fsys)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("INSERT INTO Repl VALUES (%d, 'r')", i)
		if _, err := sys.Execute(q, "bench"); err != nil {
			b.Fatal(err)
		}
	}
	waitReplConverge(b, sys, fsys)
	b.StopTimer()
}

func waitReplConverge(b *testing.B, p, f *core.System) {
	b.Helper()
	target := p.WAL().End()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cur, _ := f.WAL().TailInfo(); cur == target && f.Ready() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.Fatalf("follower did not converge to %+v", target)
}

// BenchmarkE17_LargerThanRAM — the disk-backed storage engine's headline
// experiment: a cold History relation several times larger than the buffer
// pool, so every sweep of the key space pages frames in and out of the 8 KiB
// heap files. Three access patterns run against the same loaded system:
// prepared point lookups and ordered-index range scans over the cold data
// (paging on the measured path), and pair coordination on pinned relations
// (Flights/Hotels plus the auto-pinned answer store), which must stay fully
// resident — its coldMiss/op metric reports any pool traffic it causes.
func BenchmarkE17_LargerThanRAM(b *testing.B) {
	const (
		poolPages = 128   // 1 MiB of 8 KiB frames
		coldRows  = 40000 // ~5 MiB of heap records — ~5x the pool
		batch     = 250   // rows per multi-row INSERT during load
	)
	sys, err := workload.NewSystemConfig(17, core.Config{
		BufferPoolPages: poolPages,
		PinnedRelations: []string{"Flights", "Hotels"},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close() //nolint:errcheck
	if err := sys.Exec("CREATE TABLE History (id INT, body STRING, PRIMARY KEY (id));"); err != nil {
		b.Fatal(err)
	}
	pad := strings.Repeat("x", 112)
	for lo := 0; lo < coldRows; lo += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO History VALUES ")
		for i := lo; i < lo+batch; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'h%06d-%s')", i, i, pad)
		}
		if err := sys.Exec(sb.String()); err != nil {
			b.Fatal(err)
		}
	}
	if err := sys.Exec("CREATE ORDERED INDEX ON History (id);"); err != nil {
		b.Fatal(err)
	}
	st, ok := sys.PoolStats()
	if !ok {
		b.Fatal("buffer pool reported disabled")
	}
	if st.HeapPages < 4*st.Capacity {
		b.Fatalf("dataset did not outgrow the pool: %d heap pages vs %d frames", st.HeapPages, st.Capacity)
	}

	b.Run("point", func(b *testing.B) {
		probe, err := sys.Prepare("SELECT body FROM History WHERE id = ?")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A stride coprime to the row count sweeps the whole heap, so
			// lookups keep missing the pool instead of settling into a
			// cached working set.
			id := (i * 9973) % coldRows
			resp, err := probe.ExecuteBound(value.NewTuple(id), "")
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Result.Rows) != 1 {
				b.Fatalf("id %d returned %d rows", id, len(resp.Result.Rows))
			}
		}
		b.StopTimer()
		if st, ok := sys.PoolStats(); ok {
			b.ReportMetric(100*st.HitRatio(), "hit%")
			b.ReportMetric(float64(st.HeapPages), "heapPages")
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heapMB")
	})

	b.Run("range", func(b *testing.B) {
		eng := sys.Engine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := (i * 7919) % (coldRows - 256)
			q := fmt.Sprintf("SELECT id FROM History WHERE id BETWEEN %d AND %d", lo, lo+255)
			res, err := eng.ExecuteSQL(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 256 {
				b.Fatalf("window at %d returned %d rows", lo, len(res.Rows))
			}
		}
	})

	b.Run("coord", func(b *testing.B) {
		pre, _ := sys.PoolStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			submitPair(b, sys, "Paris")
		}
		b.StopTimer()
		post, _ := sys.PoolStats()
		if b.N > 0 {
			// Pinned + answer relations are fully resident: coordination
			// should not touch the disk heaps at all.
			b.ReportMetric(float64(post.Misses-pre.Misses)/float64(b.N), "coldMiss/op")
		}
	})
}

// E18: planner selectivity — the cost-based planner's headline experiment.
// A 40k-row relation with a selective secondary column (10 rows per key);
// the same prepared point query runs with and without the user-created
// ordered secondary index. The planner must route the indexed case through
// a degenerate [v, v] ordered-index probe, which has to come in well over
// an order of magnitude under the filtering full scan — the ≥10x bar the
// planner PR is gated on.
func BenchmarkE18_PlannerSelectivity(b *testing.B) {
	const (
		rows  = 40000
		keys  = 4000 // 10 rows per kind value
		batch = 250
	)
	build := func(indexed bool) *engine.Engine {
		e := engine.New(txn.NewManager(storage.NewCatalog()))
		if _, err := e.ExecuteSQL("CREATE TABLE Events (id INT, kind INT, note STRING, PRIMARY KEY (id))"); err != nil {
			b.Fatal(err)
		}
		for lo := 0; lo < rows; lo += batch {
			var sb strings.Builder
			sb.WriteString("INSERT INTO Events VALUES ")
			for i := lo; i < lo+batch; i++ {
				if i > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, %d, 'e%06d')", i, i%keys, i)
			}
			if _, err := e.ExecuteSQL(sb.String()); err != nil {
				b.Fatal(err)
			}
		}
		if indexed {
			if _, err := e.ExecuteSQL("CREATE INDEX events_kind ON Events (kind)"); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}
	run := func(b *testing.B, e *engine.Engine, wantPath string) {
		stmt, err := sql.Parse("SELECT id FROM Events WHERE kind = ?")
		if err != nil {
			b.Fatal(err)
		}
		// Fail fast if the planner stops choosing the path under measurement.
		d, err := e.ExplainStmt(stmt, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(d.Steps[0].Path, wantPath) {
			b.Fatalf("planner chose %q, want %q:\n%s", d.Steps[0].Path, wantPath, d.String())
		}
		p, err := e.Prepare(stmt)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Coprime stride sweeps the key space so no probe value stays hot.
			res, err := p.Execute(value.NewTuple((i * 997) % keys))
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != rows/keys {
				b.Fatalf("probe returned %d rows, want %d", len(res.Rows), rows/keys)
			}
		}
	}
	indexed, scan := build(true), build(false)
	b.Run("indexed", func(b *testing.B) { run(b, indexed, "eq probe (ordered)") })
	b.Run("scan", func(b *testing.B) { run(b, scan, "scan") })
}

// E19: concurrent cold scans — the sharded pool's headline experiment.
// N goroutines each sweep range windows over their own spilled table, so
// every window is a burst of cold misses on pages the other goroutines
// never touch. Under the old single-mutex pool each miss's disk read
// serialized the whole pool; the sharded pool with latched frame I/O keeps
// only the reading goroutine waiting.
//
// Honesty note for CI: the gate machine schedules this on one core, where
// parallel disk reads buy little wall-clock — the gate only pins the
// absence of regression. The functional evidence that misses overlap is
// the latch suite (internal/storage/pool_latch_test.go, pool_fault_test.go)
// plus the per-shard miss distribution this benchmark reports: shardSpread
// near 1.0 means the pageTag hash spread the miss load evenly across
// shards, i.e. no shard's mutex was the bottleneck.
func BenchmarkE19_ConcurrentColdScans(b *testing.B) {
	const (
		scanners  = 4
		poolPages = 128  // 1 MiB of 8 KiB frames
		rowsEach  = 8000 // ~1 MiB of heap records per table — 4 MiB total, 4x the pool
		batch     = 250
		window    = 256
	)
	sys, err := workload.NewSystemConfig(19, core.Config{
		BufferPoolPages: poolPages,
		// Explicit shard count: the auto-size follows GOMAXPROCS, which is 1
		// on the CI gate and would collapse the experiment to one shard.
		BufferPoolShards: scanners,
		PinnedRelations:  []string{"Flights", "Hotels"},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close() //nolint:errcheck
	pad := strings.Repeat("x", 112)
	for s := 0; s < scanners; s++ {
		if err := sys.Exec(fmt.Sprintf("CREATE TABLE Cold%d (id INT, body STRING, PRIMARY KEY (id));", s)); err != nil {
			b.Fatal(err)
		}
		for lo := 0; lo < rowsEach; lo += batch {
			var sb strings.Builder
			fmt.Fprintf(&sb, "INSERT INTO Cold%d VALUES ", s)
			for i := lo; i < lo+batch; i++ {
				if i > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, 'c%d-%06d-%s')", i, s, i, pad)
			}
			if err := sys.Exec(sb.String()); err != nil {
				b.Fatal(err)
			}
		}
		if err := sys.Exec(fmt.Sprintf("CREATE ORDERED INDEX ON Cold%d (id);", s)); err != nil {
			b.Fatal(err)
		}
	}
	pre, ok := sys.PoolStats()
	if !ok {
		b.Fatal("buffer pool reported disabled")
	}
	if len(pre.Shards) != scanners {
		b.Fatalf("pool has %d shards, want %d", len(pre.Shards), scanners)
	}
	if pre.HeapPages < 2*pre.Capacity {
		b.Fatalf("dataset did not outgrow the pool: %d heap pages vs %d frames", pre.HeapPages, pre.Capacity)
	}

	eng := sys.Engine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for s := 0; s < scanners; s++ {
			wg.Add(1)
			go func(s, i int) {
				defer wg.Done()
				// Coprime stride sweeps each heap so windows keep missing.
				lo := (i * 7919) % (rowsEach - window)
				q := fmt.Sprintf("SELECT id FROM Cold%d WHERE id BETWEEN %d AND %d", s, lo, lo+window-1)
				res, err := eng.ExecuteSQL(q)
				if err != nil {
					b.Error(err)
					return
				}
				if len(res.Rows) != window {
					b.Errorf("Cold%d window at %d returned %d rows", s, lo, len(res.Rows))
				}
			}(s, i)
		}
		wg.Wait()
	}
	b.StopTimer()

	post, _ := sys.PoolStats()
	if b.N > 0 {
		var missMax, missSum uint64
		for i := range post.Shards {
			m := post.Shards[i].Misses - pre.Shards[i].Misses
			missSum += m
			if m > missMax {
				missMax = m
			}
		}
		b.ReportMetric(float64(missSum)/float64(b.N), "coldMiss/op")
		if missSum > 0 {
			// max shard share / mean shard share: 1.0 is a perfect spread,
			// `scanners` means one shard absorbed every miss.
			mean := float64(missSum) / float64(len(post.Shards))
			b.ReportMetric(float64(missMax)/mean, "shardSpread")
		}
		b.ReportMetric(float64(post.LoadWaits-pre.LoadWaits)/float64(b.N), "loadWaits/op")
	}
}
