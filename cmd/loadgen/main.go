// Command loadgen demonstrates "the scalability of our coordination
// algorithm by allowing our examples to be run on a loaded system, where a
// large number of entangled queries are trying to coordinate simultaneously"
// (§3). It sweeps the pending-set size and prints the coordination
// throughput/latency series of experiment E8, plus pair/group workload
// summaries.
//
// Usage:
//
//	loadgen [-pairs 200] [-groups 0] [-groupsize 4] [-trip] [-loners "0,100,500,1000"]
//	loadgen -durable [-walsync=false] [-waldir DIR] [-walseg BYTES] ...
//	loadgen -net 127.0.0.1:7717 ...
//
// With -durable every mutation is written to a segmented WAL and the
// reported numbers are committed-arrival throughput: under -walsync (the
// default) each arrival is acknowledged only after its records are
// group-committed to disk. The run ends with the durability counters
// (records per fsync shows the group-commit amortization).
//
// With -net every submission and every coordination outcome crosses a real
// TCP connection to a running youtopia-server (started with -seed), using
// the v2 framed wire protocol — the same open/closed-system arrival
// schedules and p50/p95/p99 reporting, but with wire overhead included, so
// protocol changes show up in the perf trajectory. Shard stats come back
// over the typed admin API. WAL flags do not apply (durability is the
// server's configuration).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	pairs := flag.Int("pairs", 200, "coordinating pairs per run")
	groups := flag.Int("groups", 0, "coordinating groups per run")
	groupSize := flag.Int("groupsize", 4, "members per group")
	trip := flag.Bool("trip", false, "coordinate hotels too (two answer atoms)")
	lonersCSV := flag.String("loners", "0,100,500,1000", "pending-noise sweep")
	concurrency := flag.Int("c", 8, "concurrent submitters")
	seed := flag.Int64("seed", 1, "workload seed")
	shards := flag.Int("shards", 0, "coordination lanes (0 = GOMAXPROCS, 1 = unsharded)")
	footprints := flag.Int("footprints", 0, "disjoint answer-relation footprints to spread pairs across (0/1 = shared Reservation)")
	rates := flag.String("rates", "", "open-system mode: Poisson pair-arrival rates/sec to sweep (e.g. \"100,500,2000\")")
	reads := flag.Float64("reads", 0, "open-system mode: fraction of arrivals that are plain snapshot point reads (0..1); read latencies report separately")
	shardStats := flag.Bool("shardstats", false, "print per-shard coordination stats after the sweep")
	runFor := flag.Duration("runtime", 2*time.Second, "open-system mode: duration per rate")
	durable := flag.Bool("durable", false, "log every mutation to a WAL; throughput becomes committed-arrival throughput")
	walDir := flag.String("waldir", "", "WAL directory for -durable (default: a fresh temp dir per run)")
	walSync := flag.Bool("walsync", true, "with -durable: group-commit an fsync at each statement boundary")
	walSeg := flag.Int64("walseg", 0, "with -durable: segment rotation threshold in bytes (0 = 4 MiB)")
	netAddr := flag.String("net", "", "drive a running youtopia-server at this address over TCP instead of in-process")
	replicas := flag.String("replicas", "", "with -net PRIMARY: comma-separated follower addresses; reads fan out across them and per-replica latency + observed staleness is reported")
	preparedCmp := flag.Bool("prepared", false, "run each sweep point twice — text vs prepared statements — and report throughput + allocs/arrival deltas")
	flag.Parse()

	if *replicas != "" {
		if *netAddr == "" {
			log.Fatal("loadgen -replicas needs -net PRIMARY (writes go to the primary)")
		}
		runReplicas(*netAddr, *replicas, *concurrency, *runFor)
		return
	}

	if *netAddr != "" {
		runNet(*netAddr, *pairs, *groups, *groupSize, *trip, *lonersCSV,
			*concurrency, *seed, *footprints, *rates, *reads, *shardStats, *runFor, *durable, *preparedCmp)
		return
	}

	// Each swept configuration gets its own system; the previous one is
	// closed (draining its WAL) before the next opens, and WAL temp dirs we
	// created are removed at exit.
	runID := 0
	var prevSys *core.System
	var tmpDirs []string
	defer func() {
		if prevSys != nil {
			prevSys.Close()
		}
		for _, d := range tmpDirs {
			os.RemoveAll(d) //nolint:errcheck
		}
	}()
	newSystem := func() (*core.System, error) {
		if prevSys != nil {
			if err := prevSys.Close(); err != nil {
				return nil, err
			}
			prevSys = nil
		}
		cfg := core.Config{CoordShards: *shards}
		if *durable {
			cfg.WALSync = *walSync
			cfg.WALSegmentBytes = *walSeg
			if *walDir != "" {
				cfg.WALPath = fmt.Sprintf("%s/run%d", *walDir, runID)
			} else {
				dir, err := os.MkdirTemp("", "loadgen-wal-*")
				if err != nil {
					return nil, err
				}
				tmpDirs = append(tmpDirs, dir)
				cfg.WALPath = dir + "/wal"
			}
			runID++
		}
		sys, err := workload.NewSystemConfig(*seed, cfg)
		if err == nil {
			prevSys = sys
		}
		return sys, err
	}
	printWAL := func(sys *core.System) {
		if st, ok := sys.WALStatsSnapshot(); ok {
			fmt.Printf("\ndurability of the last run:\n%s", st)
		}
	}

	if *rates != "" {
		printOpenHeader(*reads)
		for _, part := range strings.Split(*rates, ",") {
			rate, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				log.Fatalf("bad -rates entry %q", part)
			}
			sys, err := newSystem()
			if err != nil {
				log.Fatal(err)
			}
			res, err := workload.RunOpen(sys, workload.Config{Seed: *seed, Footprints: *footprints, ReadFraction: *reads}, rate, *runFor)
			if err != nil {
				log.Fatal(err)
			}
			printOpenRow(rate, res, *reads)
		}
		if prevSys != nil {
			printWAL(prevSys)
		}
		return
	}

	var loners []int
	for _, part := range strings.Split(*lonersCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad -loners entry %q", part)
		}
		loners = append(loners, n)
	}

	// Arrival-to-outcome latency percentiles make tail behavior visible from
	// the CLI: a multi-lane change that helps p50 but hurts p99 (or vice
	// versa) is invisible in averages. Under -prepared, each sweep point
	// runs twice — rendered SQL text vs prepared templates with bound
	// parameter vectors — with the per-arrival allocation count alongside,
	// so the parse-once/bind-many saving is visible per configuration.
	modes := []bool{false}
	if *preparedCmp {
		modes = []bool{false, true}
	}
	fmt.Printf("%-8s %-9s %-10s %-10s %-12s %-12s %-12s %-12s %-12s %-11s %-12s\n",
		"loners", "mode", "answered", "thpt/s", "avg-lat", "p50-lat", "p95-lat", "p99-lat", "max-lat", "allocs/arr", "nodes")
	for _, l := range loners {
		var allocsPerArr [2]float64
		for mi, prep := range modes {
			sys, err := newSystem()
			if err != nil {
				log.Fatal(err)
			}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			res, err := workload.Run(sys, workload.Config{
				Pairs: *pairs, Groups: *groups, GroupSize: *groupSize,
				Trip: *trip, Loners: l, Concurrency: *concurrency, Seed: *seed,
				Footprints: *footprints, Prepared: prep,
			})
			runtime.ReadMemStats(&m1)
			if err != nil {
				log.Fatal(err)
			}
			allocsPerArr[mi] = float64(m1.Mallocs-m0.Mallocs) / float64(res.Submitted)
			mode := "text"
			if prep {
				mode = "prepared"
			}
			fmt.Printf("%-8d %-9s %-10d %-10.0f %-12s %-12s %-12s %-12s %-12s %-11.0f %-12d\n",
				l, mode, res.Answered, res.Throughput(),
				res.AvgLatency().Round(1000),
				res.PctLatency(50).Round(1000), res.PctLatency(95).Round(1000),
				res.PctLatency(99).Round(1000), res.MaxLatency().Round(1000),
				allocsPerArr[mi], res.Coordinator.NodesExplored)
		}
		if *preparedCmp && allocsPerArr[1] > 0 {
			fmt.Printf("         -> prepared arrivals allocate %.1fx less than text\n",
				allocsPerArr[0]/allocsPerArr[1])
		}
	}
	if prevSys != nil && *shardStats {
		fmt.Println("\nper-shard stats of the last run:")
		for _, si := range prevSys.Coordinator().Shards() {
			fmt.Printf("  shard %-3d pending=%-5d matches=%-7d answered=%-7d escalations=%-5d relations=%v\n",
				si.ID, si.Pending, si.Stats.Matches, si.Stats.Answered, si.Stats.Escalations, si.Relations)
		}
	}
	if prevSys != nil {
		printWAL(prevSys)
	}
}

// printOpenHeader and printOpenRow render one open-system sweep line. With a
// read mix, the entangled (coordination) and snapshot-read percentiles print
// side by side: under MVCC the read tail should stay flat as the entangled
// rate climbs, because readers never wait on the coordination writers.
func printOpenHeader(reads float64) {
	if reads > 0 {
		fmt.Printf("%-10s %-10s %-10s %-12s %-12s %-12s %-8s %-12s %-12s %-12s\n",
			"rate/s", "submitted", "answered", "ent-p50", "ent-p95", "ent-p99",
			"reads", "read-p50", "read-p95", "read-p99")
		return
	}
	fmt.Printf("%-10s %-10s %-10s %-12s %-12s %-12s %-12s\n",
		"rate/s", "submitted", "answered", "p50-lat", "p95-lat", "p99-lat", "max-lat")
}

func printOpenRow(rate float64, res workload.Result, reads float64) {
	if reads > 0 {
		fmt.Printf("%-10.0f %-10d %-10d %-12s %-12s %-12s %-8d %-12s %-12s %-12s\n",
			rate, res.Submitted, res.Answered,
			res.PctLatency(50).Round(1000), res.PctLatency(95).Round(1000),
			res.PctLatency(99).Round(1000),
			res.Reads,
			res.PctReadLatency(50).Round(1000), res.PctReadLatency(95).Round(1000),
			res.PctReadLatency(99).Round(1000))
		if res.ReadErrors > 0 {
			fmt.Printf("           (%d read errors)\n", res.ReadErrors)
		}
		return
	}
	fmt.Printf("%-10.0f %-10d %-10d %-12s %-12s %-12s %-12s\n",
		rate, res.Submitted, res.Answered,
		res.PctLatency(50).Round(1000), res.PctLatency(95).Round(1000),
		res.PctLatency(99).Round(1000), res.MaxLatency().Round(1000))
}

// netNameStride separates the participant-name spaces of successive sweep
// points, so answer tuples installed by an earlier run cannot satisfy a
// later run's identical constraints (which would short-circuit coordination
// and fake the numbers). Each invocation also salts its offsets with a
// time-derived base, keeping repeated `loadgen -net` invocations against
// one long-lived server disjoint from each other too.
const netNameStride = 10_000_000

// runNet drives a running youtopia-server over TCP with the same arrival
// schedules and reporting as the in-process modes. Each swept configuration
// gets its own connection: closing it withdraws that run's pending loners
// from the server (connection-teardown cancellation), keeping sweep points
// independent.
func runNet(addr string, pairs, groups, groupSize int, trip bool, lonersCSV string,
	concurrency int, seed int64, footprints int, rates string, reads float64, shardStats bool,
	runFor time.Duration, durable, prepared bool) {
	probe, err := server.Dial(addr)
	if err != nil {
		log.Fatalf("loadgen -net: %v", err)
	}
	defer probe.Close()
	if res, err := probe.Query("SELECT fno FROM Flights"); err != nil || len(res.Rows) == 0 {
		log.Fatalf("loadgen -net: server at %s has no travel catalog — start it with youtopia-server -seed (%v)", addr, err)
	}
	if durable {
		fmt.Println("loadgen -net: ignoring -durable/-wal* flags (durability is the server's configuration)")
	}

	run := 0
	base := int(time.Now().UnixNano()%1_000_000) * 100 * netNameStride
	withTarget := func(f func(workload.Target, int) error) {
		c, err := server.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		off := base + run*netNameStride
		run++
		if err := f(workload.NewClientTarget(c), off); err != nil {
			log.Fatal(err)
		}
	}

	if rates != "" {
		printOpenHeader(reads)
		for _, part := range strings.Split(rates, ",") {
			rate, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				log.Fatalf("bad -rates entry %q", part)
			}
			withTarget(func(tgt workload.Target, off int) error {
				res, err := workload.RunOpenTarget(tgt,
					workload.Config{Seed: seed, Footprints: footprints, NameOffset: off, Prepared: prepared, ReadFraction: reads}, rate, runFor)
				if err != nil {
					return err
				}
				printOpenRow(rate, res, reads)
				return nil
			})
		}
	} else {
		var loners []int
		for _, part := range strings.Split(lonersCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -loners entry %q", part)
			}
			loners = append(loners, n)
		}
		fmt.Printf("%-8s %-10s %-10s %-12s %-12s %-12s %-12s %-12s %-12s\n",
			"loners", "answered", "thpt/s", "avg-lat", "p50-lat", "p95-lat", "p99-lat", "max-lat", "nodes")
		for _, l := range loners {
			withTarget(func(tgt workload.Target, off int) error {
				res, err := workload.RunTarget(tgt, workload.Config{
					Pairs: pairs, Groups: groups, GroupSize: groupSize,
					Trip: trip, Loners: l, Concurrency: concurrency, Seed: seed,
					Footprints: footprints, NameOffset: off, Prepared: prepared,
				})
				if err != nil {
					return err
				}
				fmt.Printf("%-8d %-10d %-10.0f %-12s %-12s %-12s %-12s %-12s %-12d\n",
					l, res.Answered, res.Throughput(),
					res.AvgLatency().Round(1000),
					res.PctLatency(50).Round(1000), res.PctLatency(95).Round(1000),
					res.PctLatency(99).Round(1000), res.MaxLatency().Round(1000),
					res.Coordinator.NodesExplored)
				return nil
			})
		}
	}

	// The same diagnostics the in-process modes print, fetched through the
	// typed admin API instead of local method calls.
	if shardStats {
		shards, err := probe.AdminShardInfo(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nper-shard stats of the server:")
		for _, si := range shards {
			fmt.Printf("  shard %-3d pending=%-5d matches=%-7d answered=%-7d escalations=%-5d relations=%v\n",
				si.ID, si.Pending, si.Stats.Matches, si.Stats.Answered, si.Stats.Escalations, si.Relations)
		}
	}
	if st, ok, err := probe.AdminWALStats(context.Background()); err == nil && ok {
		fmt.Printf("\ndurability of the server:\n%s", st)
	}
}
