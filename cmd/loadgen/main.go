// Command loadgen demonstrates "the scalability of our coordination
// algorithm by allowing our examples to be run on a loaded system, where a
// large number of entangled queries are trying to coordinate simultaneously"
// (§3). It sweeps the pending-set size and prints the coordination
// throughput/latency series of experiment E8, plus pair/group workload
// summaries.
//
// Usage:
//
//	loadgen [-pairs 200] [-groups 0] [-groupsize 4] [-trip] [-loners "0,100,500,1000"]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	pairs := flag.Int("pairs", 200, "coordinating pairs per run")
	groups := flag.Int("groups", 0, "coordinating groups per run")
	groupSize := flag.Int("groupsize", 4, "members per group")
	trip := flag.Bool("trip", false, "coordinate hotels too (two answer atoms)")
	lonersCSV := flag.String("loners", "0,100,500,1000", "pending-noise sweep")
	concurrency := flag.Int("c", 8, "concurrent submitters")
	seed := flag.Int64("seed", 1, "workload seed")
	shards := flag.Int("shards", 0, "coordination lanes (0 = GOMAXPROCS, 1 = unsharded)")
	footprints := flag.Int("footprints", 0, "disjoint answer-relation footprints to spread pairs across (0/1 = shared Reservation)")
	rates := flag.String("rates", "", "open-system mode: Poisson pair-arrival rates/sec to sweep (e.g. \"100,500,2000\")")
	shardStats := flag.Bool("shardstats", false, "print per-shard coordination stats after the sweep")
	runFor := flag.Duration("runtime", 2*time.Second, "open-system mode: duration per rate")
	flag.Parse()

	if *rates != "" {
		fmt.Printf("%-10s %-10s %-10s %-12s %-12s %-12s %-12s\n",
			"rate/s", "submitted", "answered", "p50-lat", "p95-lat", "p99-lat", "max-lat")
		for _, part := range strings.Split(*rates, ",") {
			rate, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				log.Fatalf("bad -rates entry %q", part)
			}
			sys, err := workload.NewSystemShards(*seed, *shards)
			if err != nil {
				log.Fatal(err)
			}
			res, err := workload.RunOpen(sys, workload.Config{Seed: *seed, Footprints: *footprints}, rate, *runFor)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10.0f %-10d %-10d %-12s %-12s %-12s %-12s\n",
				rate, res.Submitted, res.Answered,
				res.PctLatency(50).Round(1000), res.PctLatency(95).Round(1000),
				res.PctLatency(99).Round(1000), res.MaxLatency().Round(1000))
		}
		return
	}

	var loners []int
	for _, part := range strings.Split(*lonersCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad -loners entry %q", part)
		}
		loners = append(loners, n)
	}

	// Arrival-to-outcome latency percentiles make tail behavior visible from
	// the CLI: a multi-lane change that helps p50 but hurts p99 (or vice
	// versa) is invisible in averages.
	fmt.Printf("%-8s %-10s %-10s %-12s %-12s %-12s %-12s %-12s %-12s\n",
		"loners", "answered", "thpt/s", "avg-lat", "p50-lat", "p95-lat", "p99-lat", "max-lat", "nodes")
	var lastSys *core.System
	for _, l := range loners {
		sys, err := workload.NewSystemShards(*seed, *shards)
		if err != nil {
			log.Fatal(err)
		}
		lastSys = sys
		res, err := workload.Run(sys, workload.Config{
			Pairs: *pairs, Groups: *groups, GroupSize: *groupSize,
			Trip: *trip, Loners: l, Concurrency: *concurrency, Seed: *seed,
			Footprints: *footprints,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-10d %-10.0f %-12s %-12s %-12s %-12s %-12s %-12d\n",
			l, res.Answered, res.Throughput(),
			res.AvgLatency().Round(1000),
			res.PctLatency(50).Round(1000), res.PctLatency(95).Round(1000),
			res.PctLatency(99).Round(1000), res.MaxLatency().Round(1000),
			res.Coordinator.NodesExplored)
	}
	if lastSys != nil && *shardStats {
		fmt.Println("\nper-shard stats of the last run:")
		for _, si := range lastSys.Coordinator().Shards() {
			fmt.Printf("  shard %-3d pending=%-5d matches=%-7d answered=%-7d escalations=%-5d relations=%v\n",
				si.ID, si.Pending, si.Stats.Matches, si.Stats.Answered, si.Stats.Escalations, si.Relations)
		}
	}
}
