package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/repl"
	"repro/internal/server"
)

// runReplicas drives a replica set: writes go to the primary, reads fan out
// across the follower list through the retry/backoff client, and the report
// shows per-replica read percentiles plus observed staleness — how far
// behind the primary's last acknowledged write each read's snapshot was.
//
// Staleness is measured with a probe row the primary updates continuously
// (a version counter and a wall-clock stamp); every replica read returns
// the version it observed, and the gap to the newest acknowledged version
// at read time is that read's staleness in versions / milliseconds.
func runReplicas(primaryAddr, replicasCSV string, concurrency int, runFor time.Duration) {
	addrs := splitAddrs(replicasCSV)
	if len(addrs) == 0 {
		log.Fatal("loadgen -replicas: empty replica list")
	}
	primary, err := server.Dial(primaryAddr)
	if err != nil {
		log.Fatalf("loadgen -replicas: primary %s: %v", primaryAddr, err)
	}
	defer primary.Close()
	ctx := context.Background()

	// Fresh probe table per invocation (name salted by time so repeated runs
	// against one long-lived primary stay independent).
	table := fmt.Sprintf("ReplProbe%d", time.Now().UnixNano()%1_000_000)
	mustExec := func(sql string) {
		if _, err := primary.Query(sql); err != nil {
			log.Fatalf("loadgen -replicas: %s: %v", sql, err)
		}
	}
	mustExec(fmt.Sprintf("CREATE TABLE %s (id INT, v INT, ts INT, PRIMARY KEY(id))", table))
	mustExec(fmt.Sprintf("INSERT INTO %s VALUES (1, 0, %d)", table, time.Now().UnixMicro()))

	// Writer: bump the version as fast as acknowledged round trips allow.
	// ackVersion holds the newest version the primary has acknowledged —
	// the reference point replica staleness is measured against.
	var ackVersion atomic.Int64
	stopWriter := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for v := int64(1); ; v++ {
			select {
			case <-stopWriter:
				return
			default:
			}
			q := fmt.Sprintf("UPDATE %s SET v = %d, ts = %d WHERE id = 1", table, v, time.Now().UnixMicro())
			if _, err := primary.Query(q); err != nil {
				return
			}
			ackVersion.Store(v)
		}
	}()

	// Readers: each goroutine owns a ReplicaClient (its own connections and
	// round-robin cursor) and hammers the probe row until the deadline.
	type sample struct {
		addr      string
		lat       time.Duration
		staleVers int64
		staleTime time.Duration
	}
	var mu sync.Mutex
	var samples []sample
	var readErrs atomic.Int64
	deadline := time.Now().Add(runFor)
	var readerWG sync.WaitGroup
	query := fmt.Sprintf("SELECT v, ts FROM %s WHERE id = 1", table)
	for i := 0; i < concurrency; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			rc := repl.NewReplicaClient(addrs)
			defer rc.Close()
			for time.Now().Before(deadline) {
				ref := ackVersion.Load()
				start := time.Now()
				res, addr, err := rc.QueryContext(ctx, query)
				lat := time.Since(start)
				if err != nil || len(res.Rows) == 0 {
					readErrs.Add(1)
					continue
				}
				v := res.Rows[0][0].Int()
				ts := res.Rows[0][1].Int()
				s := sample{addr: addr, lat: lat, staleVers: ref - v}
				if s.staleVers < 0 {
					s.staleVers = 0 // writer advanced mid-read; the read was current
				}
				if s.staleVers > 0 {
					s.staleTime = time.Since(time.UnixMicro(ts))
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	readerWG.Wait()
	close(stopWriter)
	writerWG.Wait()
	mustExec(fmt.Sprintf("DROP TABLE %s", table))

	written := ackVersion.Load()
	fmt.Printf("replica-set read sweep: %d writes acknowledged on primary, %d reads, %d read errors\n\n",
		written, len(samples), readErrs.Load())
	fmt.Printf("%-22s %-8s %-10s %-10s %-10s %-10s %-12s %-12s\n",
		"replica", "reads", "p50-lat", "p95-lat", "p99-lat", "stale-p50", "stale-p95", "stale-max")
	for _, addr := range addrs {
		var lats []time.Duration
		var vers []int64
		for _, s := range samples {
			if s.addr == addr {
				lats = append(lats, s.lat)
				vers = append(vers, s.staleVers)
			}
		}
		if len(lats) == 0 {
			fmt.Printf("%-22s %-8d (no successful reads)\n", addr, 0)
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		sort.Slice(vers, func(i, j int) bool { return vers[i] < vers[j] })
		pctD := func(p int) time.Duration { return lats[min(len(lats)*p/100, len(lats)-1)] }
		pctV := func(p int) int64 { return vers[min(len(vers)*p/100, len(vers)-1)] }
		fmt.Printf("%-22s %-8d %-10s %-10s %-10s %-10s %-12s %-12s\n",
			addr, len(lats),
			pctD(50).Round(time.Microsecond), pctD(95).Round(time.Microsecond), pctD(99).Round(time.Microsecond),
			fmt.Sprintf("%dv", pctV(50)), fmt.Sprintf("%dv", pctV(95)), fmt.Sprintf("%dv", vers[len(vers)-1]))
	}
	fmt.Println("\nstaleness in versions behind the primary's newest acknowledged write at read start;")
	fmt.Println("0v = the read observed every write acknowledged before it began.")
}

func splitAddrs(csv string) []string {
	var out []string
	for _, a := range strings.Split(csv, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
