// Command travel-demo serves the demo's first application: the three-tier
// travel Web site (§2.2). The browser front end and JSON middle-tier API are
// provided by internal/travel; Youtopia runs in-process underneath.
//
// Usage:
//
//	travel-demo [-addr :8080] [-flights 8] [-hotels 6]
//
// then open http://localhost:8080/ — or script it:
//
//	curl -s -X POST localhost:8080/api/book \
//	  -d '{"user":"Jerry","kind":"flight","friends":["Kramer"],"dest":"Paris"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/travel"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flights := flag.Int("flights", 8, "flights per destination")
	hotels := flag.Int("hotels", 6, "hotels per city")
	seed := flag.Int64("seed", 1, "catalog seed")
	flag.Parse()

	sys := core.NewSystem(core.Config{})
	if err := travel.Seed(sys, travel.SeedConfig{
		FlightsPerDest: *flights, HotelsPerCity: *hotels, Seed: *seed,
	}); err != nil {
		log.Fatal(err)
	}
	svc := travel.NewService(sys)
	// A ready-made social circle so the demo works out of the box.
	for _, pair := range [][2]string{{"Jerry", "Kramer"}, {"Jerry", "Elaine"}, {"Kramer", "Elaine"}, {"Jerry", "George"}} {
		svc.Befriend(pair[0], pair[1])
	}

	fmt.Printf("Youtopia travel demo listening on %s (destinations: %v)\n", *addr, travel.Destinations)
	log.Fatal(http.ListenAndServe(*addr, travel.NewHTTPHandler(svc)))
}
