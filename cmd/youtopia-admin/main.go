// Command youtopia-admin is the demo's third application (§2.2, §3.2): "an
// administrative interface which allows us to show the internal state of the
// system and to visualize the state created by the matching algorithms."
//
// Because the reproduction runs in-process, the admin tool drives the §3.1
// demonstration scenarios itself and dumps the coordination component's
// internal state between steps — exactly what the live demo showed its
// audience: pending-query tables filling up, the entanglement graph gaining
// edges, and matches collapsing it.
//
// With -connect the tool instead inspects a *running* youtopia-server over
// TCP: the wire protocol v2 admin surface returns structured snapshots
// (coord.StatsSnapshot, []coord.ShardInfo, []coord.PendingInfo,
// core.WALStats) and the tool renders them client-side — as text, or as
// machine-readable JSON with -json.
//
// Usage:
//
//	youtopia-admin                 # run every scenario
//	youtopia-admin -scenario pair  # pair | trip | group | adhoc
//	youtopia-admin -connect 127.0.0.1:7717 [-json]   # inspect a live server
//	youtopia-admin -connect ADDR -pool     # buffer pool and heap footprint
//	youtopia-admin -connect ADDR -repl     # replication lag and health
//	youtopia-admin -connect ADDR -health   # role + readiness, one line
//	youtopia-admin -connect ADDR -promote  # promote a follower to primary
//	youtopia-admin -connect ADDR -explain 'SELECT ...'  # access plan, no execution
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/travel"
)

func main() {
	scenario := flag.String("scenario", "all", "pair | trip | group | adhoc | all")
	shards := flag.Int("shards", 0, "coordination lanes (0 = GOMAXPROCS, 1 = the paper's single serialized round)")
	connect := flag.String("connect", "", "inspect a running youtopia-server at this address instead of running scenarios")
	asJSON := flag.Bool("json", false, "with -connect: emit the admin snapshot as JSON")
	txnOnly := flag.Bool("txn", false, "with -connect: show only the transaction/MVCC counters")
	poolOnly := flag.Bool("pool", false, "with -connect: show the buffer pool and heap footprint")
	replOnly := flag.Bool("repl", false, "with -connect: show replication status (role, epoch, follower lag)")
	health := flag.Bool("health", false, "with -connect: one-line role + readiness; exit 1 when not ready")
	promote := flag.Bool("promote", false, "with -connect: promote the follower to primary")
	explain := flag.String("explain", "", "with -connect: show the server's access plan for this statement without executing it")
	flag.Parse()

	if *connect != "" {
		var err error
		switch {
		case *explain != "":
			err = explainStmt(*connect, *explain, *asJSON)
		case *promote:
			err = promoteServer(*connect, *asJSON)
		case *health:
			err = healthCheck(*connect)
		case *replOnly:
			err = inspectRepl(*connect, *asJSON)
		case *txnOnly:
			err = inspectTxn(*connect, *asJSON)
		case *poolOnly:
			err = inspectPool(*connect, *asJSON)
		default:
			err = inspect(*connect, *asJSON)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, f func(*travel.Service) error) {
		if *scenario != "all" && *scenario != name {
			return
		}
		fmt.Printf("\n================ scenario: %s ================\n", name)
		sys := core.NewSystem(core.Config{CoordShards: *shards})
		if err := travel.SeedFigure1(sys); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		svc := travel.NewService(sys)
		if err := f(svc); err != nil {
			fmt.Fprintln(os.Stderr, name, "failed:", err)
			os.Exit(1)
		}
	}

	run("pair", pairScenario)
	run("trip", tripScenario)
	run("group", groupScenario)
	run("adhoc", adhocScenario)
}

// inspect fetches a live server's admin state through the typed v2 admin
// API and renders it client-side — no fmt-formatted text crosses the wire.
func inspect(addr string, asJSON bool) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()

	stats, err := c.AdminStats(ctx)
	if err != nil {
		return err
	}
	shards, err := c.AdminShardInfo(ctx)
	if err != nil {
		return err
	}
	pending, err := c.AdminPendingList(ctx)
	if err != nil {
		return err
	}
	walStats, durable, err := c.AdminWALStats(ctx)
	if err != nil {
		return err
	}
	txnStats, err := c.AdminTxnStats(ctx)
	if err != nil {
		return err
	}
	poolStats, poolOn, err := c.AdminPoolStats(ctx)
	if err != nil {
		return err
	}

	if asJSON {
		doc := map[string]any{
			"stats":   stats,
			"shards":  shards,
			"pending": pending,
			"durable": durable,
			"txn":     txnStats,
		}
		if durable {
			doc["wal"] = walStats
		}
		if poolOn {
			doc["pool"] = poolStats
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Printf("server %s\n\n=== Stats ===\n  submitted=%d answered=%d matches=%d parked=%d canceled=%d expired=%d retries=%d escalations=%d nodes=%d groundings=%d/%d ok\n",
		addr, stats.Submitted, stats.Answered, stats.Matches, stats.Parked, stats.Canceled,
		stats.Expired, stats.Retries, stats.Escalations, stats.NodesExplored,
		stats.GroundingAttempts-stats.GroundingFailures, stats.GroundingAttempts)
	fmt.Printf("\n=== Coordination lanes (%d) ===\n", len(shards))
	for _, si := range shards {
		fmt.Printf("  shard %d: pending=%d matches=%d answered=%d escalations=%d relations=%v\n",
			si.ID, si.Pending, si.Stats.Matches, si.Stats.Answered, si.Stats.Escalations, si.Relations)
	}
	fmt.Printf("\n=== Pending entangled queries (%d) ===\n", len(pending))
	for _, p := range pending {
		owner := p.Owner
		if owner == "" {
			owner = "-"
		}
		fmt.Printf("  [q%d] owner=%s waiting=%s\n        %s\n", p.ID, owner, p.Waiting.Round(time.Millisecond), p.Logic)
	}
	fmt.Printf("\n=== Transactions ===\n  committed=%d aborted=%d timeouts=%d writeConflicts=%d gcReclaimed=%d\n",
		txnStats.Committed, txnStats.Aborted, txnStats.Timeouts, txnStats.WriteConflicts, txnStats.GCReclaimed)
	if poolOn {
		fmt.Printf("\n=== Buffer pool ===\n  frames=%d shards=%d resident=%d dirty=%d hit-ratio=%.1f%% load-waits=%d evictions=%d writebacks=%d\n  spilled-tables=%d pinned-relations=%d heap-pages=%d free-pages=%d reclaimed=%d\n",
			poolStats.Capacity, len(poolStats.Shards), poolStats.Resident, poolStats.Dirty, 100*poolStats.HitRatio(),
			poolStats.LoadWaits, poolStats.Evictions, poolStats.Writebacks,
			poolStats.SpilledTables, poolStats.PinnedTables, poolStats.HeapPages,
			poolStats.FreePages, poolStats.ReclaimedPages)
	}
	fmt.Printf("\n=== Durability ===\n")
	if durable {
		fmt.Print(walStats)
	} else {
		fmt.Println("  not durable (server runs without a WAL)")
	}
	return nil
}

// inspectTxn fetches and prints only the transaction/MVCC counters — the
// natural thing to watch in a loop while a workload runs.
func inspectTxn(addr string, asJSON bool) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.AdminTxnStats(context.Background())
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	fmt.Printf("committed=%d aborted=%d timeouts=%d writeConflicts=%d gcReclaimed=%d\n",
		st.Committed, st.Aborted, st.Timeouts, st.WriteConflicts, st.GCReclaimed)
	return nil
}

// inspectPool fetches and renders the buffer-pool snapshot: frame occupancy,
// hit ratio, eviction/writeback counters, and each spilled table's heap
// footprint — the thing to watch while a larger-than-RAM workload runs.
func inspectPool(addr string, asJSON bool) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, enabled, err := c.AdminPoolStats(context.Background())
	if err != nil {
		return err
	}
	if asJSON {
		doc := map[string]any{"enabled": enabled}
		if enabled {
			doc["pool"] = st
			doc["hitRatio"] = st.HitRatio()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	if !enabled {
		fmt.Println("no buffer pool (server runs fully in memory)")
		return nil
	}
	fmt.Printf("pool: frames=%d resident=%d dirty=%d hit-ratio=%.1f%% (hits=%d misses=%d) load-waits=%d evictions=%d writebacks=%d\n",
		st.Capacity, st.Resident, st.Dirty, 100*st.HitRatio(), st.Hits, st.Misses, st.LoadWaits, st.Evictions, st.Writebacks)
	if len(st.Shards) > 1 {
		fmt.Printf("shards: %d\n", len(st.Shards))
		for i, sh := range st.Shards {
			fmt.Printf("  shard %-3d frames=%-4d resident=%-4d hits=%d misses=%d evictions=%d\n",
				i, sh.Capacity, sh.Resident, sh.Hits, sh.Misses, sh.Evictions)
		}
	}
	fmt.Printf("heap: spilled-tables=%d pinned-relations=%d pages=%d free-pages=%d reclaimed=%d dead-slots=%d\n",
		st.SpilledTables, st.PinnedTables, st.HeapPages, st.FreePages, st.ReclaimedPages, st.DeadSlots)
	for _, t := range st.Tables {
		fmt.Printf("  %-24s %d page(s)", t.Name, t.Pages)
		if t.FreePages > 0 {
			fmt.Printf("  free-pages=%d", t.FreePages)
		}
		if t.DeadSlots > 0 {
			fmt.Printf("  dead-slots=%d", t.DeadSlots)
		}
		fmt.Println()
	}
	return nil
}

// explainStmt asks the server for the typed plan description of one
// statement — the wire form of the CLI's \explain — and renders it (or, with
// -json, emits the structured description).
func explainStmt(addr, sqlText string, asJSON bool) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	d, err := c.Explain(sqlText)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	fmt.Print(d.String())
	return nil
}

// inspectRepl fetches and renders the replication status: role, fencing
// epoch, chain position, and per-follower ship/ack lag on a primary.
func inspectRepl(addr string, asJSON bool) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.AdminRepl(context.Background())
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	fmt.Print(st.String())
	return nil
}

// healthCheck prints one parseable line of role and readiness, exiting
// non-zero when the server should not take traffic (follower mid-resync).
func healthCheck(addr string) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.AdminRepl(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("role=%s ready=%t epoch=%d seq=%d off=%d\n", st.Role, st.Ready, st.Epoch, st.Seq, st.Off)
	if !st.Ready {
		os.Exit(1)
	}
	return nil
}

// promoteServer asks a follower to promote itself and prints the resulting
// status, so the operator sees the new role and epoch in one round trip.
func promoteServer(addr string, asJSON bool) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.AdminPromote(context.Background())
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	fmt.Printf("promoted: now %s at epoch %d\n", st.Role, st.Epoch)
	fmt.Print(st.String())
	return nil
}

func dump(svc *travel.Service, caption string) {
	fmt.Printf("\n--- %s ---\n%s", caption, svc.System().Coordinator().DumpState())
}

func await(b *travel.Booking) error {
	_, err := b.Await(2 * time.Second)
	return err
}

// pairScenario is §3.1 "Book a flight with a friend" seen from the inside.
func pairScenario(svc *travel.Service) error {
	svc.Befriend("Jerry", "Kramer")
	fmt.Printf("Jerry's friends (Figure 3): %v\n", svc.Friends("Jerry"))

	bJ, err := svc.BookFlight("Jerry", []string{"Kramer"}, travel.FlightFilter{Dest: "Paris"})
	if err != nil {
		return err
	}
	dump(svc, "after Jerry's request: one pending query, no partner yet")

	bK, err := svc.BookFlight("Kramer", []string{"Jerry"}, travel.FlightFilter{Dest: "Paris"})
	if err != nil {
		return err
	}
	if err := await(bJ); err != nil {
		return err
	}
	if err := await(bK); err != nil {
		return err
	}
	dump(svc, "after Kramer's request: matched, answers installed")
	fJ, _, _ := bJ.Details()
	fmt.Printf("\ncoordinated flight: %d\nJerry's inbox: %v\n", fJ, svc.Inbox("Jerry"))
	return nil
}

// tripScenario is §3.1 "Book a flight and a hotel with a friend".
func tripScenario(svc *travel.Service) error {
	f := travel.FlightFilter{Dest: "Paris"}
	h := travel.HotelFilter{City: "Paris"}
	bJ, err := svc.BookTrip("Jerry", []string{"Kramer"}, f, h)
	if err != nil {
		return err
	}
	dump(svc, "Jerry's two-atom query pending (flight AND hotel)")
	bK, err := svc.BookTrip("Kramer", []string{"Jerry"}, f, h)
	if err != nil {
		return err
	}
	if err := await(bJ); err != nil {
		return err
	}
	if err := await(bK); err != nil {
		return err
	}
	fl, ho, _ := bJ.Details()
	fmt.Printf("\ncoordinated flight %d and hotel %d\n", fl, ho)
	dump(svc, "after the joint match")
	return nil
}

// groupScenario is §3.1 "Group flight booking" with four friends.
func groupScenario(svc *travel.Service) error {
	group := []string{"Jerry", "Kramer", "Elaine", "George"}
	var bookings []*travel.Booking
	for i, self := range group {
		var friends []string
		for j, o := range group {
			if i != j {
				friends = append(friends, o)
			}
		}
		b, err := svc.BookFlight(self, friends, travel.FlightFilter{Dest: "Paris"})
		if err != nil {
			return err
		}
		bookings = append(bookings, b)
		if i == 2 {
			dump(svc, "three of four submitted: entanglement graph grows, no match yet")
		}
	}
	for _, b := range bookings {
		if err := await(b); err != nil {
			return err
		}
	}
	f, _, _ := bookings[0].Details()
	fmt.Printf("\nall four on flight %d\n", f)
	dump(svc, "after the 4-way match")
	return nil
}

// adhocScenario is §3.1 "Ad-hoc examples": Jerry–Kramer on flights,
// Kramer–Elaine on flights and hotels.
func adhocScenario(svc *travel.Service) error {
	sys := svc.System()
	jerry := travel.BuildFlightQuery("Jerry", []string{"Kramer"}, travel.FlightFilter{Dest: "Paris"})
	kramer := `SELECT ('Kramer', fno) INTO ANSWER Reservation, ('Kramer', hno) INTO ANSWER HotelReservation
WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris')
AND hno IN (SELECT hno FROM Hotels WHERE city = 'Paris')
AND ('Jerry', fno) IN ANSWER Reservation
AND ('Elaine', hno) IN ANSWER HotelReservation
CHOOSE 1`
	elaine := `SELECT 'Elaine', hno INTO ANSWER HotelReservation
WHERE hno IN (SELECT hno FROM Hotels WHERE city = 'Paris')
AND ('Kramer', hno) IN ANSWER HotelReservation
CHOOSE 1`

	hJ, err := sys.Submit(jerry, "jerry")
	if err != nil {
		return err
	}
	hK, err := sys.Submit(kramer, "kramer")
	if err != nil {
		return err
	}
	dump(svc, "Jerry and Kramer pending; Kramer needs Elaine too")
	hE, err := sys.Submit(elaine, "elaine")
	if err != nil {
		return err
	}
	done := make(chan struct{})
	timer := time.AfterFunc(2*time.Second, func() { close(done) })
	defer timer.Stop()
	outJ, ok := hJ.Wait(done)
	if !ok {
		return fmt.Errorf("jerry timed out")
	}
	outK, _ := hK.Wait(done)
	outE, _ := hE.Wait(done)
	fmt.Printf("\nJerry:  %v\nKramer: %v\nElaine: %v\n", outJ.Answers, outK.Answers, outE.Answers)
	dump(svc, "after the 3-way ad-hoc match")
	return nil
}
