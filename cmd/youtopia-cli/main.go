// Command youtopia-cli is the demo's second application (§2.2): "an SQL
// command line interface which allows SQL and entangled queries to be input
// directly to the system by the user."
//
// Statements end with ';'. Entangled queries are registered and answered
// asynchronously; the CLI prints the answer when the coordination component
// delivers it. Meta commands:
//
//	\seed      load the demo travel catalog (Flights/Hotels/SeatPairs)
//	\fig1      load exactly the Figure 1(a) database
//	\state     dump the coordination component's internal state
//	\stats     coordination counters (typed; JSON under -json)
//	\wal       durability-layer snapshot (segments, group-commit counters)
//	\pool      buffer-pool snapshot (hit ratio, evictions, heap footprint)
//	\pending   list pending entangled queries
//	\why <id>  diagnose why a query is still pending
//	\dot       entanglement graph in Graphviz DOT
//	\prepare <name> <sql>   compile a statement with ? / $n placeholders once
//	\exec <name> [args...]  bind arguments and run it (parse-once/bind-many);
//	           \prepare alone lists the prepared statements
//	\help      this text
//	\quit      exit
//
// Prefix a statement with EXPLAIN to print an entangled query's compiled
// form (heads, constraints, generators, safety) without executing it.
// BEGIN/COMMIT/ROLLBACK open interactive transactions.
//
// The -json flag switches the introspection meta commands (\stats,
// \shards, \pending, \wal) to machine-readable JSON — the same typed
// snapshots the wire protocol v2 admin surface serves.
//
// Usage:
//
//	youtopia-cli [-seed] [-owner NAME] [-json]
//	echo "SELECT ...;" | youtopia-cli -seed
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/eq"
	"repro/internal/sql"
	"repro/internal/travel"
	"repro/internal/value"
)

func main() {
	seed := flag.Bool("seed", false, "preload the demo travel catalog")
	owner := flag.String("owner", "cli", "owner label for entangled queries")
	walPath := flag.String("wal", "", "write-ahead log directory (enables durability)")
	walSync := flag.Bool("walsync", false, "fsync each statement's records (group-committed)")
	poolPages := flag.Int("pool-pages", 0, "buffer-pool frames of 8 KiB; >0 pages cold tables to disk")
	poolShards := flag.Int("pool-shards", 0, "buffer-pool shards; 0 auto-sizes")
	pin := flag.String("pin", "", "comma-separated relations kept fully in memory with -pool-pages")
	jsonOut := flag.Bool("json", false, "render \\stats/\\shards/\\pending/\\wal/\\txn as JSON")
	flag.Parse()
	metaJSON = *jsonOut

	cfg := core.Config{WALPath: *walPath, WALSync: *walSync, BufferPoolPages: *poolPages, BufferPoolShards: *poolShards}
	if *pin != "" {
		for _, name := range strings.Split(*pin, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.PinnedRelations = append(cfg.PinnedRelations, name)
			}
		}
	}
	sys := core.NewSystem(cfg)
	if err := sys.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sys.Close()
	cli := &session{sys: sys, sess: core.NewSession(sys), owner: *owner}
	defer cli.sess.Close()
	if *seed {
		if err := travel.Seed(sys, travel.SeedConfig{Seed: 1}); err != nil {
			fmt.Fprintln(os.Stderr, "seed:", err)
			os.Exit(1)
		}
		fmt.Println("-- demo travel catalog loaded")
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1024*1024), 1024*1024)
	var buf strings.Builder
	interactive := isTerminalLike()
	if interactive {
		fmt.Println("Youtopia SQL interface. Statements end with ';'.  \\help for help.")
		fmt.Print("youtopia> ")
	}
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, `\`) {
			if !meta(cli, sys, trimmed) {
				cli.drain()
				return
			}
			cli.poll()
			if interactive {
				fmt.Print("youtopia> ")
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			cli.run(buf.String())
			buf.Reset()
		}
		cli.poll()
		if interactive {
			fmt.Print("youtopia> ")
		}
	}
	if strings.TrimSpace(buf.String()) != "" {
		cli.run(buf.String())
	}
	cli.drain()
}

// session tracks entangled queries awaiting answers so their outcomes print
// deterministically (no goroutine races with process exit).
type session struct {
	sys         *core.System
	sess        *core.Session
	owner       string
	outstanding []*coord.Handle
	// prepared holds the \prepare'd statements by name for \exec.
	prepared map[string]*core.PreparedStmt
}

// poll prints outcomes that have arrived since the last statement.
func (c *session) poll() {
	kept := c.outstanding[:0]
	for _, h := range c.outstanding {
		if out, ok := h.TryOutcome(); ok {
			printOutcome(out)
		} else {
			kept = append(kept, h)
		}
	}
	c.outstanding = kept
}

// drain waits briefly at exit for any still-outstanding answers.
func (c *session) drain() {
	done := make(chan struct{})
	timer := time.AfterFunc(200*time.Millisecond, func() { close(done) })
	defer timer.Stop()
	for _, h := range c.outstanding {
		if out, ok := h.Wait(done); ok {
			printOutcome(out)
		} else {
			fmt.Printf("-- q%d still pending at exit\n", h.ID)
		}
	}
	c.outstanding = nil
}

func isTerminalLike() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && (fi.Mode()&os.ModeCharDevice) != 0
}

// metaJSON switches the introspection meta commands to JSON output.
var metaJSON bool

// printJSON renders any typed admin snapshot machine-readably.
func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Println("error:", err)
	}
}

func meta(cli *session, sys *core.System, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case `\quit`, `\q`:
		return false
	case `\explain`:
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, `\explain`))
		if rest == "" {
			fmt.Println("usage: \\explain <sql>")
			break
		}
		cli.explain(strings.TrimSuffix(rest, ";"))
	case `\prepare`:
		cli.metaPrepare(cmd)
	case `\exec`:
		cli.metaExec(cmd)
	case `\seed`:
		if err := travel.Seed(sys, travel.SeedConfig{Seed: 1}); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("-- demo travel catalog loaded")
		}
	case `\fig1`:
		if err := travel.SeedFigure1(sys); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("-- Figure 1(a) database loaded")
		}
	case `\state`:
		fmt.Print(sys.Coordinator().DumpState())
	case `\stats`:
		if metaJSON {
			printJSON(sys.Coordinator().Stats())
			break
		}
		fmt.Printf("%+v\n", sys.Coordinator().Stats())
	case `\shards`:
		if metaJSON {
			printJSON(sys.Coordinator().Shards())
			break
		}
		for _, si := range sys.Coordinator().Shards() {
			fmt.Printf("shard %d: pending=%d relations=%v matches=%d answered=%d escalations=%d\n",
				si.ID, si.Pending, si.Relations, si.Stats.Matches, si.Stats.Answered, si.Stats.Escalations)
		}
	case `\txn`:
		st := sys.TxnStats()
		if metaJSON {
			printJSON(st)
			break
		}
		fmt.Printf("committed=%d aborted=%d timeouts=%d writeConflicts=%d gcReclaimed=%d\n",
			st.Committed, st.Aborted, st.Timeouts, st.WriteConflicts, st.GCReclaimed)
	case `\wal`:
		st, ok := sys.WALStatsSnapshot()
		if !ok {
			fmt.Println("not durable (run with -wal DIR)")
			break
		}
		if metaJSON {
			printJSON(st)
			break
		}
		fmt.Print(st)
	case `\repl`:
		st := sys.ReplStatus()
		if metaJSON {
			printJSON(st)
			break
		}
		fmt.Print(st.String())
	case `\pool`:
		st, ok := sys.PoolStats()
		if !ok {
			fmt.Println("no buffer pool (run with -pool-pages N)")
			break
		}
		if metaJSON {
			printJSON(st)
			break
		}
		fmt.Printf("pool: frames=%d resident=%d dirty=%d hit-ratio=%.1f%% (hits=%d misses=%d) load-waits=%d evictions=%d writebacks=%d\n",
			st.Capacity, st.Resident, st.Dirty, 100*st.HitRatio(), st.Hits, st.Misses, st.LoadWaits, st.Evictions, st.Writebacks)
		if len(st.Shards) > 1 {
			fmt.Printf("shards: %d\n", len(st.Shards))
			for i, sh := range st.Shards {
				fmt.Printf("  shard %-3d frames=%-4d resident=%-4d hits=%d misses=%d evictions=%d\n",
					i, sh.Capacity, sh.Resident, sh.Hits, sh.Misses, sh.Evictions)
			}
		}
		fmt.Printf("heap: spilled-tables=%d pinned-relations=%d pages=%d free-pages=%d reclaimed=%d dead-slots=%d\n",
			st.SpilledTables, st.PinnedTables, st.HeapPages, st.FreePages, st.ReclaimedPages, st.DeadSlots)
		for _, t := range st.Tables {
			fmt.Printf("  %-24s %d page(s)", t.Name, t.Pages)
			if t.FreePages > 0 {
				fmt.Printf("  free-pages=%d", t.FreePages)
			}
			if t.DeadSlots > 0 {
				fmt.Printf("  dead-slots=%d", t.DeadSlots)
			}
			fmt.Println()
		}
	case `\dot`:
		fmt.Print(sys.Coordinator().DOT())
	case `\why`:
		fields := strings.Fields(cmd)
		if len(fields) != 2 {
			fmt.Println("usage: \\why <query-id>")
			break
		}
		id, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "q"), 10, 64)
		if err != nil {
			fmt.Println("bad query id:", fields[1])
			break
		}
		d, ok := sys.Coordinator().Diagnose(id)
		if !ok {
			fmt.Printf("q%d is not pending\n", id)
			break
		}
		fmt.Printf("q%d: %s\n  %s\n", d.ID, d.Summary, d.Logic)
		for _, cd := range d.PerConstraint {
			fmt.Printf("  %s — %d pending head(s), %d installed answer(s)\n",
				cd.Constraint, cd.PendingHeads, cd.InstalledHits)
		}
	case `\pending`:
		if metaJSON {
			printJSON(sys.Coordinator().Pending())
			break
		}
		for _, p := range sys.Coordinator().Pending() {
			fmt.Printf("q%d [%s] waiting %s: %s\n", p.ID, p.Owner, p.Waiting.Round(1e6), p.Logic)
		}
	case `\help`:
		fmt.Println(`\seed \fig1 \state \stats \shards \wal \txn \repl \pool \pending \why <id> \dot \explain <sql> \prepare <name> <sql> \exec <name> [args...] \quit — SQL statements end with ';'. Prefix EXPLAIN (or use \explain) to see a statement's access plan; entangled queries also show their compiled form. -json renders \stats/\shards/\pending/\wal/\txn/\repl/\pool machine-readably.
\prepare compiles a statement with ? / $n placeholders once; \exec binds arguments (numbers, 'strings', NULL) and runs it — parse-once/bind-many from the shell.`)
	default:
		fmt.Println("unknown meta command; \\help for help")
	}
	return true
}

// metaPrepare handles `\prepare <name> <sql with ? placeholders>`.
func (c *session) metaPrepare(cmd string) {
	rest := strings.TrimSpace(strings.TrimPrefix(cmd, `\prepare`))
	name, src, ok := strings.Cut(rest, " ")
	if !ok || name == "" {
		if len(c.prepared) == 0 {
			fmt.Println("usage: \\prepare <name> <sql>   (no statements prepared yet)")
			return
		}
		for n, ps := range c.prepared {
			kind := "plain"
			if ps.Entangled() {
				kind = "entangled"
			}
			fmt.Printf("%s: %s, %d parameter(s)\n", n, kind, ps.NumParams())
		}
		return
	}
	src = strings.TrimSuffix(strings.TrimSpace(src), ";")
	ps, err := c.sess.Prepare(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if c.prepared == nil {
		c.prepared = make(map[string]*core.PreparedStmt)
	}
	c.prepared[name] = ps
	fmt.Printf("-- prepared %q: %d parameter(s), entangled=%v\n", name, ps.NumParams(), ps.Entangled())
}

// metaExec handles `\exec <name> [arg ...]`; arguments parse as numbers,
// 'quoted strings' (or bare words), TRUE/FALSE, and NULL.
func (c *session) metaExec(cmd string) {
	fields := splitArgs(strings.TrimSpace(strings.TrimPrefix(cmd, `\exec`)))
	if len(fields) == 0 {
		fmt.Println("usage: \\exec <name> [args...]")
		return
	}
	ps := c.prepared[fields[0]]
	if ps == nil {
		fmt.Printf("no prepared statement %q (use \\prepare)\n", fields[0])
		return
	}
	params := make(value.Tuple, 0, len(fields)-1)
	for _, a := range fields[1:] {
		params = append(params, parseArg(a))
	}
	resp, err := c.sess.ExecutePrepared(ps, params, c.owner)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	c.printResponse(resp)
}

// splitArgs splits on spaces outside single quotes.
func splitArgs(s string) []string {
	var out []string
	var b strings.Builder
	inStr := false
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch == '\'':
			inStr = !inStr
			b.WriteByte(ch)
		case ch == ' ' && !inStr:
			flush()
		default:
			b.WriteByte(ch)
		}
	}
	flush()
	return out
}

// parseArg converts one \exec argument to a typed value.
func parseArg(a string) value.Value {
	if len(a) >= 2 && a[0] == '\'' && a[len(a)-1] == '\'' {
		return value.NewString(strings.ReplaceAll(a[1:len(a)-1], "''", "'"))
	}
	switch strings.ToUpper(a) {
	case "NULL":
		return value.Null
	case "TRUE":
		return value.NewBool(true)
	case "FALSE":
		return value.NewBool(false)
	}
	if n, err := strconv.ParseInt(a, 10, 64); err == nil {
		return value.NewInt(n)
	}
	if f, err := strconv.ParseFloat(a, 64); err == nil {
		return value.NewFloat(f)
	}
	return value.NewString(a)
}

func (c *session) run(script string) {
	for _, stmt := range splitStatements(script) {
		if rest, ok := stripExplain(stmt); ok {
			c.explain(rest)
			continue
		}
		resp, err := c.sess.Execute(stmt, c.owner)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		c.printResponse(resp)
	}
}

// printResponse renders one execution outcome (shared by SQL input and
// \exec of prepared statements).
func (c *session) printResponse(resp *core.Response) {
	if resp.Entangled {
		h := resp.Handle
		if out, ok := h.TryOutcome(); ok {
			printOutcome(out)
			return
		}
		fmt.Printf("-- entangled query registered as q%d; waiting for coordination\n", h.ID)
		c.outstanding = append(c.outstanding, h)
		return
	}
	res := resp.Result
	if res == nil { // transaction control (BEGIN/COMMIT/ROLLBACK)
		fmt.Println("OK")
		return
	}
	if len(res.Cols) > 0 {
		fmt.Println(strings.Join(res.Cols, " | "))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
	} else {
		fmt.Printf("OK (%d affected)\n", res.Affected)
	}
}

// stripExplain detects a leading EXPLAIN keyword (CLI extension).
func stripExplain(stmt string) (string, bool) {
	trimmed := strings.TrimSpace(stmt)
	if len(trimmed) >= 8 && strings.EqualFold(trimmed[:7], "EXPLAIN") &&
		(trimmed[7] == ' ' || trimmed[7] == '\t' || trimmed[7] == '\n') {
		return trimmed[8:], true
	}
	return "", false
}

// explain prints the access plan without executing. Plain statements show
// the cost-based planner's choices (access paths, join order, estimates);
// entangled queries additionally show the compiler's coordination analysis.
func (c *session) explain(src string) {
	stmt, err := sql.Parse(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if es, ok := stmt.(*sql.EntangledSelect); ok {
		q, err := eq.Compile(es)
		if err != nil {
			fmt.Println("compile error:", err)
			return
		}
		fmt.Print(eq.Explain(q))
	}
	d, err := c.sys.Explain(src, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(d.String())
}

func printOutcome(out coord.Outcome) {
	if out.Canceled {
		fmt.Printf("-- q%d canceled\n", out.QueryID)
		return
	}
	fmt.Printf("-- q%d answered (match of %d):\n", out.QueryID, out.MatchSize)
	for _, a := range out.Answers {
		for _, tup := range a.Tuples {
			fmt.Printf("--   %s%s\n", a.Relation, tup)
		}
	}
}

// splitStatements splits a script on top-level semicolons (string literals
// respected).
func splitStatements(script string) []string {
	var out []string
	var b strings.Builder
	inStr := false
	for i := 0; i < len(script); i++ {
		ch := script[i]
		if ch == '\'' {
			inStr = !inStr
		}
		if ch == ';' && !inStr {
			if s := strings.TrimSpace(b.String()); s != "" {
				out = append(out, s)
			}
			b.Reset()
			continue
		}
		b.WriteByte(ch)
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		out = append(out, s)
	}
	return out
}
