package main

import "testing"

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SELECT 1; SELECT 2;", []string{"SELECT 1", "SELECT 2"}},
		{"SELECT 1", []string{"SELECT 1"}},
		{"", nil},
		{";;;", nil},
		// Semicolons inside string literals must not split.
		{"INSERT INTO T VALUES ('a;b'); SELECT 1", []string{"INSERT INTO T VALUES ('a;b')", "SELECT 1"}},
		{"SELECT 'x;y;z'", []string{"SELECT 'x;y;z'"}},
		{"SELECT 1;\nSELECT 2", []string{"SELECT 1", "SELECT 2"}},
	}
	for _, c := range cases {
		got := splitStatements(c.in)
		if len(got) != len(c.want) {
			t.Errorf("split(%q) = %q, want %q", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("split(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}
