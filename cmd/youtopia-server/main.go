// Command youtopia-server runs Youtopia as a standalone database process the
// middle tier connects to over TCP — the deployment shape of the paper's
// three-tier demo architecture (Figure 2). Connections speak wire protocol
// v2 (length-prefixed binary frames, multiplexed requests, typed admin
// responses); legacy line-delimited JSON clients are auto-detected by their
// first byte and served by the old codec. See internal/server.
//
// Inspect a running server with `youtopia-admin -connect ADDR [-json]`;
// load it with `loadgen -net ADDR`.
//
// Usage:
//
//	youtopia-server [-addr 127.0.0.1:7717] [-seed] [-wal dir] [-walsync]
//	                [-pool-pages N] [-pool-shards N] [-pin rel1,rel2]
//	                [-repl-listen ADDR] [-follow ADDR -primary-addr SQLADDR]
//
// With -pool-pages the storage engine pages cold tables to disk through a
// buffer pool of that many 8 KiB frames, so datasets several times larger
// than RAM stay queryable; -pin names hot relations kept fully resident.
// Inspect the pool live with `youtopia-admin -connect ADDR -pool`.
//
// With -wal the database is durably logged (segmented binary format v2,
// legacy JSON logs migrated in place) and recovered on restart; -walsync
// additionally group-commits an fsync at every statement boundary.
//
// Replication (requires -wal): -repl-listen serves the WAL-shipping stream
// to followers; -follow starts this process as a read-only follower pulling
// from a primary's -repl-listen address (-primary-addr names the primary's
// SQL address for client redirects). Promote a follower with
// `youtopia-admin -connect ADDR -promote` — and drop its -follow flag on the
// next restart.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/travel"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7717", "listen address")
	seed := flag.Bool("seed", false, "preload the demo travel catalog")
	walPath := flag.String("wal", "", "write-ahead log directory (enables durability)")
	walSync := flag.Bool("walsync", false, "fsync each statement's records (group-committed)")
	shards := flag.Int("shards", 0, "coordination lanes (0 = GOMAXPROCS, 1 = unsharded)")
	poolPages := flag.Int("pool-pages", 0, "buffer-pool frames of 8 KiB; >0 pages cold tables to disk (datasets beyond RAM)")
	poolShards := flag.Int("pool-shards", 0, "buffer-pool shards (independent latches); 0 auto-sizes to min(GOMAXPROCS, pages/8)")
	pin := flag.String("pin", "", "comma-separated relations kept fully in memory with -pool-pages (answer relations always are)")
	replListen := flag.String("repl-listen", "", "serve the replication stream to followers at this address (requires -wal)")
	follow := flag.String("follow", "", "run as a follower of the primary's -repl-listen address (requires -wal)")
	primaryAddr := flag.String("primary-addr", "", "with -follow: the primary's SQL address, used in client redirects")
	flag.Parse()

	if (*replListen != "" || *follow != "") && *walPath == "" {
		log.Fatal("replication requires -wal: the stream ships WAL segments")
	}

	cfg := core.Config{
		WALPath: *walPath, WALSync: *walSync, CoordShards: *shards,
		WALFollower:      *follow != "",
		BufferPoolPages:  *poolPages,
		BufferPoolShards: *poolShards,
	}
	if *pin != "" {
		for _, name := range strings.Split(*pin, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.PinnedRelations = append(cfg.PinnedRelations, name)
			}
		}
	}
	sys := core.NewSystem(cfg)
	if err := sys.Err(); err != nil {
		log.Fatal(err)
	}
	// A follower's state comes from the primary's stream; seeding locally
	// would fork its history before the first byte arrives.
	if *seed && *follow == "" && !sys.Catalog().Has("Flights") {
		if err := travel.Seed(sys, travel.SeedConfig{Seed: 1}); err != nil {
			log.Fatal(err)
		}
	}

	var node *repl.Node
	if *replListen != "" || *follow != "" {
		var err error
		node, err = repl.Start(repl.Config{
			System:            sys,
			Dir:               *walPath,
			ListenAddr:        *replListen,
			PrimaryAddr:       *follow,
			PrimaryClientAddr: *primaryAddr,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	srv, err := server.Listen(sys, *addr)
	if err != nil {
		log.Fatal(err)
	}
	role := "primary"
	if *follow != "" {
		role = "follower of " + *follow
	}
	fmt.Printf("youtopia-server listening on %s (wal=%q, role=%s)\n", srv.Addr(), *walPath, role)
	if node != nil && node.Addr() != "" {
		fmt.Printf("replication stream on %s (epoch %d)\n", node.Addr(), node.Epoch())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
	if node != nil {
		node.Close()
	}
	sys.Close()
}
