// Command youtopia-server runs Youtopia as a standalone database process the
// middle tier connects to over TCP — the deployment shape of the paper's
// three-tier demo architecture (Figure 2). Connections speak wire protocol
// v2 (length-prefixed binary frames, multiplexed requests, typed admin
// responses); legacy line-delimited JSON clients are auto-detected by their
// first byte and served by the old codec. See internal/server.
//
// Inspect a running server with `youtopia-admin -connect ADDR [-json]`;
// load it with `loadgen -net ADDR`.
//
// Usage:
//
//	youtopia-server [-addr 127.0.0.1:7717] [-seed] [-wal dir] [-walsync]
//
// With -wal the database is durably logged (segmented binary format v2,
// legacy JSON logs migrated in place) and recovered on restart; -walsync
// additionally group-commits an fsync at every statement boundary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/travel"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7717", "listen address")
	seed := flag.Bool("seed", false, "preload the demo travel catalog")
	walPath := flag.String("wal", "", "write-ahead log directory (enables durability)")
	walSync := flag.Bool("walsync", false, "fsync each statement's records (group-committed)")
	shards := flag.Int("shards", 0, "coordination lanes (0 = GOMAXPROCS, 1 = unsharded)")
	flag.Parse()

	cfg := core.Config{WALPath: *walPath, WALSync: *walSync, CoordShards: *shards}
	sys := core.NewSystem(cfg)
	if err := sys.Err(); err != nil {
		log.Fatal(err)
	}
	if *seed && !sys.Catalog().Has("Flights") {
		if err := travel.Seed(sys, travel.SeedConfig{Seed: 1}); err != nil {
			log.Fatal(err)
		}
	}

	srv, err := server.Listen(sys, *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("youtopia-server listening on %s (wal=%q)\n", srv.Addr(), *walPath)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
	sys.Close()
}
