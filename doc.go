// Package repro is a from-scratch Go reproduction of the Youtopia system
// from "Coordination through Querying in the Youtopia System" (SIGMOD 2011):
// a database system in which users coordinate actions by submitting
// entangled queries — SELECT statements with answer constraints that can
// only be satisfied jointly with other users' queries.
//
// The public entry point is internal/core.System; see README.md for the
// architecture and EXPERIMENTS.md for the reproduced demonstration
// scenarios. The benchmarks in bench_test.go regenerate every experiment.
package repro
