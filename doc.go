// Package repro is a from-scratch Go reproduction of the Youtopia system
// from "Coordination through Querying in the Youtopia System" (SIGMOD 2011):
// a database system in which users coordinate actions by submitting
// entangled queries — SELECT statements with answer constraints that can
// only be satisfied jointly with other users' queries.
//
// The public entry point is internal/core.System; see ARCHITECTURE.md for
// the layer map and the reproduced demonstration scenarios. The benchmarks
// in bench_test.go regenerate every experiment.
//
// Durability: core.Config.WALPath enables the segmented binary write-ahead
// log (on-disk format v2: length-prefixed CRC32C-checksummed records,
// size-based segment rotation, group-committed fsyncs under WALSync,
// background compaction, torn-tail-tolerant parallel recovery). v1 logs —
// the original single-file JSON format — are migrated in place on open.
//
// Prepared statements: the dialect accepts ? / $n placeholders, and
// core.System.Prepare compiles a statement once into a reusable handle —
// an execution plan for plain SQL, a bound-per-submission coordination
// template for entangled queries — so the paper's repeated query shapes
// pay parsing and compilation once, not per call (parse-once/bind-many).
// A size-bounded LRU behind plain Execute extends the same saving to
// identical re-sent text, and wire protocol v2 carries the lifecycle
// remotely (prepare / exec-with-binary-vector / close), with typed
// int64/float64 parameters that round-trip exactly.
//
// Replication: internal/repl ships the WAL byte-for-byte to follower
// processes that replay it continuously and serve lock-free snapshot
// reads, with catch-up from any position (snapshot re-ship when the
// prefix was compacted away), retention pins, epoch-fenced failover
// promotion, a typed redirect-to-primary error with a retry/backoff
// replica client, and a deterministic fault-injection harness
// (internal/fault) backing a seeded chaos test. See ARCHITECTURE.md
// "Replication and failover" and examples/replicaset.
package repro
