// Package repro is a from-scratch Go reproduction of the Youtopia system
// from "Coordination through Querying in the Youtopia System" (SIGMOD 2011):
// a database system in which users coordinate actions by submitting
// entangled queries — SELECT statements with answer constraints that can
// only be satisfied jointly with other users' queries.
//
// The public entry point is internal/core.System; see ARCHITECTURE.md for
// the layer map and the reproduced demonstration scenarios. The benchmarks
// in bench_test.go regenerate every experiment.
//
// Durability: core.Config.WALPath enables the segmented binary write-ahead
// log (on-disk format v2: length-prefixed CRC32C-checksummed records,
// size-based segment rotation, group-committed fsyncs under WALSync,
// background compaction, torn-tail-tolerant parallel recovery). v1 logs —
// the original single-file JSON format — are migrated in place on open.
package repro
