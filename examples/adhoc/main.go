// Ad-hoc coordination: §3.1 "Ad-hoc examples" — "a group of three friends,
// Jerry, Kramer and Elaine, where Jerry and Kramer coordinate on flight
// reservations only, whereas Kramer and Elaine coordinate on both flight and
// hotel reservations."
//
// The example also shows the adjacent-seat variant and the Figure 4 path
// (browse friends' bookings, then book directly).
//
// Run: go run ./examples/adhoc
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/travel"
)

func main() {
	sys := core.NewSystem(core.Config{})
	if err := travel.SeedFigure1(sys); err != nil {
		log.Fatal(err)
	}
	svc := travel.NewService(sys)
	svc.Befriend("Jerry", "Kramer")
	svc.Befriend("Kramer", "Elaine")

	fmt.Println("== Ad-hoc graph: Jerry↔Kramer flights; Kramer↔Elaine flights+hotels ==")
	// Jerry: flight only, with Kramer.
	jerry, err := sys.Submit(travel.BuildFlightQuery("Jerry", []string{"Kramer"},
		travel.FlightFilter{Dest: "Paris"}), "jerry")
	if err != nil {
		log.Fatal(err)
	}
	// Kramer: flight with Jerry AND hotel with Elaine — one entangled query,
	// two answer atoms, constraints on two different partners.
	kramer, err := sys.Submit(`
		SELECT ('Kramer', fno) INTO ANSWER Reservation, ('Kramer', hno) INTO ANSWER HotelReservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris')
		AND hno IN (SELECT hno FROM Hotels WHERE city = 'Paris')
		AND ('Jerry', fno) IN ANSWER Reservation
		AND ('Elaine', hno) IN ANSWER HotelReservation
		CHOOSE 1`, "kramer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Jerry + Kramer: %d pending (Kramer also needs Elaine)\n",
		sys.Coordinator().PendingCount())
	fmt.Print(sys.Coordinator().DumpState())

	// Elaine: hotel only, with Kramer.
	elaine, err := sys.Submit(`
		SELECT 'Elaine', hno INTO ANSWER HotelReservation
		WHERE hno IN (SELECT hno FROM Hotels WHERE city = 'Paris')
		AND ('Kramer', hno) IN ANSWER HotelReservation
		CHOOSE 1`, "elaine")
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan struct{})
	timer := time.AfterFunc(2*time.Second, func() { close(done) })
	defer timer.Stop()
	outJ, ok := jerry.Wait(done)
	if !ok {
		log.Fatal("timed out")
	}
	outK, _ := kramer.Wait(done)
	outE, _ := elaine.Wait(done)
	fmt.Printf("\n3-way match: Jerry %v | Kramer %v | Elaine %v\n",
		outJ.Answers, outK.Answers, outE.Answers)

	fmt.Println("\n== Adjacent seats: Jerry and Kramer again, stronger constraint ==")
	bJ, err := svc.BookAdjacentSeat("Jerry", "Kramer", travel.FlightFilter{Dest: "Paris"})
	if err != nil {
		log.Fatal(err)
	}
	bK, err := svc.BookAdjacentSeat("Kramer", "Jerry", travel.FlightFilter{Dest: "Paris"})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bJ.Await(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := bK.Await(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	fJ, _, sJ := bJ.Details()
	fK, _, sK := bK.Details()
	fmt.Printf("Jerry: flight %d seat %d | Kramer: flight %d seat %d (adjacent)\n", fJ, sJ, fK, sK)

	fmt.Println("\n== Figure 4: browse friends' bookings, then book directly ==")
	flights, err := svc.SearchFlightsWithFriends("Elaine", travel.FlightFilter{Dest: "Paris"})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range flights {
		fmt.Printf("  flight %d ($%.0f) friends aboard: %v\n", f.Fno, f.Price, f.FriendsBooked)
	}
	var target int64
	for _, f := range flights {
		if len(f.FriendsBooked) > 0 {
			target = f.Fno
			break
		}
	}
	if target != 0 {
		b, err := svc.BookDirect("Elaine", target)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := b.Await(2 * time.Second); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Elaine booked flight %d directly to join her friends.\n", target)
	}
}
