// Cold history: a dataset several times larger than RAM — or here, larger
// than a deliberately tiny buffer pool — in the shape `youtopia-server
// -pool-pages N -pin Flights` runs in. A durable system pages a cold
// History relation through 64 8-KiB frames (512 KiB of memory for ~2.5 MiB
// of heap), while the Flights relation and the shared answer store stay
// pinned fully resident. The walkthrough shows:
//
//  1. the heap outgrowing the pool (~5x) with scans and point reads still
//     answering correctly, evictions and the hit ratio visible live via
//     the admin surface (`youtopia-admin -pool`, CLI `\pool`);
//  2. a hot key window settling into the pool — the hit ratio climbing
//     once the working set fits even though the relation never does;
//  3. pair coordination on the pinned relations causing zero pool misses:
//     entangled matching never waits on a page fault;
//  4. checkpoint + kill + restart: heap files are scratch, so recovery
//     rebuilds them from the newest WAL snapshot plus the tail, and the
//     cold rows and coordinated reservations both survive.
//
// Run: go run ./examples/coldhistory
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

const (
	poolPages = 64    // 512 KiB of frames
	coldRows  = 20000 // ~2.5 MiB of heap records — ~5x the pool
)

func main() {
	dir, err := os.MkdirTemp("", "youtopia-cold-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "youtopia.wal")

	cfg := core.Config{
		WALPath:         walPath,
		BufferPoolPages: poolPages,
		PinnedRelations: []string{"Flights"},
	}

	// --- first life: load cold data, watch it page, coordinate hot ---
	sys := core.NewSystem(cfg)
	if err := sys.Err(); err != nil {
		log.Fatal(err)
	}
	if err := sys.Exec(`
		CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno));
		INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome');
		CREATE TABLE History (id INT, body STRING, PRIMARY KEY (id));
	`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading %d cold rows through a %d-frame pool...\n", coldRows, poolPages)
	pad := strings.Repeat("x", 100)
	for lo := 0; lo < coldRows; lo += 250 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO History VALUES ")
		for i := lo; i < lo+250; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'event-%06d-%s')", i, i, pad)
		}
		if err := sys.Exec(sb.String()); err != nil {
			log.Fatal(err)
		}
	}

	// The operator's view: the same text `youtopia-admin -pool` and the
	// CLI's \pool print, fetched over the wire-v2 typed admin frame.
	srv, err := server.Listen(sys, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	c, err := server.Dial(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	poolDump := func(label string) {
		text, err := c.AdminPool()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[%s]\n%s", label, text)
	}
	poolDump("after load")

	st, _ := sys.PoolStats()
	fmt.Printf("\nheap is %dx the pool; %d evictions so far\n",
		st.HeapPages/st.Capacity, st.Evictions)

	// A cold sweep touches every page once: the pool can only miss.
	for i := 0; i < coldRows; i += 100 {
		if _, err := sys.Query(fmt.Sprintf("SELECT body FROM History WHERE id = %d", i)); err != nil {
			log.Fatal(err)
		}
	}
	// A hot window smaller than the pool settles in: hits from here on.
	pre, _ := sys.PoolStats()
	for pass := 0; pass < 20; pass++ {
		for i := 0; i < 1000; i += 100 {
			if _, err := sys.Query(fmt.Sprintf("SELECT body FROM History WHERE id = %d", i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	post, _ := sys.PoolStats()
	fmt.Printf("hot window: +%d hits, +%d misses after the first pass\n",
		post.Hits-pre.Hits, post.Misses-pre.Misses)

	// Coordination runs entirely on pinned relations (Flights by config,
	// the Reservation answer store always): zero pool traffic.
	pre, _ = sys.PoolStats()
	kramer, err := sys.Submit(`
		SELECT 'Kramer', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Jerry', fno) IN ANSWER Reservation
		CHOOSE 1`, "kramer")
	if err != nil {
		log.Fatal(err)
	}
	jerry, err := sys.Submit(`
		SELECT 'Jerry', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Kramer', fno) IN ANSWER Reservation
		CHOOSE 1`, "jerry")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	timer := time.AfterFunc(5*time.Second, func() { close(done) })
	defer timer.Stop()
	outK, ok := kramer.Wait(done)
	if !ok {
		log.Fatal("coordination timed out")
	}
	jerry.Wait(done)
	post, _ = sys.PoolStats()
	fmt.Printf("coordinated Reservation%s with %d pool misses\n",
		outK.Answers[0].Tuples[0], post.Misses-pre.Misses)

	// --- checkpoint, die, recover ---
	// Heap files are scratch: a checkpoint flushes dirty pages and folds
	// the sealed WAL into a snapshot segment, and recovery rebuilds every
	// heap from the log. Closing uncleanly here loses nothing committed.
	if err := sys.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	c.Close()
	srv.Close()
	sys.Close()
	fmt.Println("\ncheckpointed and shut down; restarting from the WAL...")

	sys2 := core.NewSystem(cfg)
	if err := sys2.Err(); err != nil {
		log.Fatal(err)
	}
	defer sys2.Close()
	res, err := sys2.Query("SELECT COUNT(*) FROM History")
	if err != nil {
		log.Fatal(err)
	}
	booked, err := sys2.Query("SELECT * FROM Reservation ORDER BY a1")
	if err != nil {
		log.Fatal(err)
	}
	st2, _ := sys2.PoolStats()
	fmt.Printf("recovered %s cold rows (%d heap pages re-spilled) and %d reservations\n",
		res.Rows[0][0], st2.HeapPages, len(booked.Rows))
}
