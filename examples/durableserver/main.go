// Durable server: Youtopia as a standalone database process with a
// write-ahead log — the production shape of the paper's three-tier
// architecture. Two "middle tier" clients connect over TCP, coordinate a
// flight through entangled queries, the server restarts, and the coordinated
// reservations are still there (pending queries, by design, are not).
//
// The log is the segmented binary WAL (on-disk format v2): length-prefixed
// CRC32C-checksummed records in rotating segment files, group-committed
// fsyncs at every statement boundary (WALSync), and torn-tail-tolerant
// recovery. The clients speak wire protocol v2 (binary frames, multiplexed
// requests, typed admin responses). The first life ends by asking the
// server for its durability snapshot over the wire — as a typed
// core.WALStats the middle tier can compute with, rendered to text
// client-side.
//
// Run: go run ./examples/durableserver
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/travel"
)

func main() {
	dir, err := os.MkdirTemp("", "youtopia-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "youtopia.wal")

	// --- first life: seed, serve, coordinate ---
	sys := core.NewSystem(core.Config{WALPath: walPath, WALSync: true})
	if err := sys.Err(); err != nil {
		log.Fatal(err)
	}
	if err := travel.SeedFigure1(sys); err != nil {
		log.Fatal(err)
	}
	srv, err := server.Listen(sys, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Printf("youtopia-server up at %s (wal: %s)\n", addr, walPath)

	kramer, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	jerry, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}

	qK := travel.BuildFlightQuery("Kramer", []string{"Jerry"}, travel.FlightFilter{Dest: "Paris"})
	qJ := travel.BuildFlightQuery("Jerry", []string{"Kramer"}, travel.FlightFilter{Dest: "Paris"})

	idK, evK, err := kramer.Submit(qK, "kramer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kramer's entangled query registered remotely as q%d; waiting…\n", idK)
	if _, _, err := jerry.Submit(qJ, "jerry"); err != nil {
		log.Fatal(err)
	}
	select {
	case ev := <-evK:
		fmt.Printf("coordination event pushed to Kramer's connection: %s%v (match of %d)\n",
			ev.Answers[0].Relation, ev.Answers[0].Tuples[0], ev.MatchSize)
	case <-time.After(3 * time.Second):
		log.Fatal("timed out")
	}

	// A pending query that will never match — to show volatility.
	if _, _, err := kramer.Submit(travel.BuildFlightQuery("Kramer", []string{"Godot"},
		travel.FlightFilter{Dest: "Rome"}), "kramer"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pending before shutdown: %d\n", sys.Coordinator().PendingCount())

	// The durability layer, as any remote admin sees it: a typed snapshot —
	// the middle tier can read counters instead of parsing text — plus the
	// classic rendering, now produced client-side from the same data.
	if st, durable, err := kramer.AdminWALStats(context.Background()); err == nil && durable {
		fmt.Printf("admin wal (typed) → %d records in %d fsyncs across %d segment(s)\n",
			st.Commits.Records, st.Commits.Syncs, len(st.Segments))
	}
	if text, err := kramer.AdminWAL(); err == nil {
		fmt.Printf("admin wal →\n%s", text)
	}

	kramer.Close()
	jerry.Close()
	srv.Close()
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("— server down —")

	// --- second life: recover from the WAL ---
	sys2 := core.NewSystem(core.Config{WALPath: walPath})
	if err := sys2.Err(); err != nil {
		log.Fatal(err)
	}
	defer sys2.Close()
	res, err := sys2.Query("SELECT a1, a2 FROM Reservation ORDER BY a1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after restart, SELECT * FROM Reservation:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row)
	}
	fmt.Printf("pending after restart: %d (pending queries are session state, not durable)\n",
		sys2.Coordinator().PendingCount())
}
