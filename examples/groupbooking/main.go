// Group booking: §3.1 "Group flight booking" and "Group flight and hotel
// booking" through the travel middle tier.
//
// Four friends each submit a coordination request naming the other three;
// the match answers all four at once with a single flight. The second act
// repeats the trip (flight + hotel) variant.
//
// Run: go run ./examples/groupbooking
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/travel"
)

var group = []string{"Jerry", "Kramer", "Elaine", "George"}

func friendsOf(i int) []string {
	var out []string
	for j, f := range group {
		if j != i {
			out = append(out, f)
		}
	}
	return out
}

func main() {
	sys := core.NewSystem(core.Config{})
	if err := travel.Seed(sys, travel.SeedConfig{Seed: 7}); err != nil {
		log.Fatal(err)
	}
	svc := travel.NewService(sys)
	for i, a := range group {
		for _, b := range group[i+1:] {
			svc.Befriend(a, b)
		}
	}

	fmt.Println("== Act 1: group flight booking (4 friends, one flight) ==")
	var bookings []*travel.Booking
	for i, self := range group {
		b, err := svc.BookFlight(self, friendsOf(i), travel.FlightFilter{Dest: "Paris", MaxPrice: 500})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s submitted (status %s, pending queries: %d)\n",
			self, b.Status(), sys.Coordinator().PendingCount())
		bookings = append(bookings, b)
	}
	for _, b := range bookings {
		if _, err := b.Await(2 * time.Second); err != nil {
			log.Fatal(err)
		}
	}
	f0, _, _ := bookings[0].Details()
	fmt.Printf("  all four confirmed on flight %d\n", f0)
	for _, self := range group {
		for _, m := range svc.Inbox(self) {
			fmt.Printf("  [msg→%s] %s\n", self, m.Text)
		}
	}

	fmt.Println("\n== Act 2: group flight AND hotel booking ==")
	group2 := []string{"Newman", "Frank", "Estelle"}
	var trips []*travel.Booking
	for i, self := range group2 {
		var friends []string
		for j, f := range group2 {
			if j != i {
				friends = append(friends, f)
			}
		}
		b, err := svc.BookTrip(self, friends,
			travel.FlightFilter{Dest: "Rome"}, travel.HotelFilter{City: "Rome"})
		if err != nil {
			log.Fatal(err)
		}
		trips = append(trips, b)
	}
	for _, b := range trips {
		if _, err := b.Await(2 * time.Second); err != nil {
			log.Fatal(err)
		}
	}
	fl, ho, _ := trips[0].Details()
	fmt.Printf("  all three confirmed: flight %d, hotel %d\n", fl, ho)

	fmt.Println("\nCoordinator stats:")
	s := sys.Coordinator().Stats()
	fmt.Printf("  submitted=%d answered=%d matches=%d nodes=%d\n",
		s.Submitted, s.Answered, s.Matches, s.NodesExplored)
}
