// Quickstart: the paper's §2.1 example, verbatim.
//
// Kramer and Jerry each submit an entangled query asking for a seat on a
// flight to Paris — each conditional on the other being on the same flight.
// Youtopia parks Kramer's query, matches it when Jerry's symmetric query
// arrives, nondeterministically picks one of the mutually acceptable flights,
// and answers both atomically through the shared answer relation.
//
// This quickstart runs in-memory. To make it durable, set
// core.Config.WALPath to a directory: the system then logs every mutation
// in the segmented binary WAL (on-disk format v2 — CRC32C-checksummed
// records, group commit, crash recovery; see examples/durableserver).
// Logs written by older builds in the v1 single-file JSON format are
// migrated in place on first open.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	sys := core.NewSystem(core.Config{})

	// Figure 1(a): the flight database.
	if err := sys.Exec(`
		CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno));
		CREATE TABLE Airlines (fno INT, airline STRING, PRIMARY KEY (fno));
		INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), (136, 'Rome');
		INSERT INTO Airlines VALUES (122, 'United'), (123, 'United'), (134, 'Lufthansa'), (136, 'Alitalia');
	`); err != nil {
		log.Fatal(err)
	}

	// Kramer's query — exactly the SQL of §2.1.
	kramer, err := sys.Submit(`
		SELECT 'Kramer', fno INTO ANSWER Reservation
		WHERE
		fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Jerry', fno) IN ANSWER Reservation
		CHOOSE 1`, "kramer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kramer's query registered as q%d — cannot be answered alone, parked.\n", kramer.ID)
	fmt.Printf("Pending queries: %d\n\n", sys.Coordinator().PendingCount())

	// Jerry's symmetric query: names swapped.
	jerry, err := sys.Submit(`
		SELECT 'Jerry', fno INTO ANSWER Reservation
		WHERE
		fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Kramer', fno) IN ANSWER Reservation
		CHOOSE 1`, "jerry")
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan struct{})
	timer := time.AfterFunc(2*time.Second, func() { close(done) })
	defer timer.Stop()
	outK, ok := kramer.Wait(done)
	if !ok {
		log.Fatal("Kramer timed out")
	}
	outJ, _ := jerry.Wait(done)

	fmt.Println("Matched! (Figure 1b: mutual constraint satisfaction)")
	fmt.Printf("  Kramer's answer tuple: Reservation%s\n", outK.Answers[0].Tuples[0])
	fmt.Printf("  Jerry's  answer tuple: Reservation%s\n", outJ.Answers[0].Tuples[0])

	// The shared answer relation is an ordinary queryable table.
	res, err := sys.Query("SELECT * FROM Reservation ORDER BY a1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSELECT * FROM Reservation:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row)
	}
	fmt.Printf("\nBoth on flight %d — the system chose it nondeterministically among {122, 123, 134}.\n",
		outK.Answers[0].Tuples[0][1].Int())
}
