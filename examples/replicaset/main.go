// Replica set: a three-node Youtopia deployment — one primary and two
// followers — in the shape `youtopia-server` runs in production: each node
// owns a WAL directory, a wire-protocol listener for clients, and a
// replication link (the primary serves the WAL-shipping stream, followers
// pull and replay it). The walkthrough shows:
//
//  1. followers converging on the primary's chain and serving snapshot
//     reads, with replication lag visible on the primary's admin surface;
//  2. a write sent to a follower bouncing with a typed redirect to the
//     primary, and the retry/backoff ReplicaClient spreading reads across
//     the follower list;
//  3. kill -9 on a follower mid-stream (the fault layer drops every write
//     cold, like the process dying) and catch-up after restart from its own
//     torn chain — resumed byte-exactly, or re-shipped from a snapshot if
//     the primary compacted meanwhile;
//  4. failover: promoting a follower, which seals its chain, bumps the
//     fencing epoch past the old primary's, and starts accepting writes.
//
// Run: go run ./examples/replicaset
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
)

// node is one member of the replica set: system + replication link + client
// listener, exactly what one youtopia-server process holds.
type node struct {
	name string
	dir  string
	sys  *core.System
	rn   *repl.Node
	srv  *server.Server
	fs   *fault.FS // follower-only: the kill-9 seam
}

func (n *node) clientAddr() string { return n.srv.Addr().String() }

func (n *node) stop() {
	n.srv.Close() //nolint:errcheck
	n.rn.Close()  //nolint:errcheck
	n.sys.Close() //nolint:errcheck
}

func startPrimary(dir string) *node {
	sys := core.NewSystem(core.Config{WALPath: dir, WALSync: true})
	must(sys.Err())
	rn, err := repl.Start(repl.Config{System: sys, Dir: dir, ListenAddr: "127.0.0.1:0"})
	must(err)
	srv, err := server.Listen(sys, "127.0.0.1:0")
	must(err)
	return &node{name: "primary", dir: dir, sys: sys, rn: rn, srv: srv}
}

func startFollower(name, dir, primaryRepl, primarySQL string) *node {
	fs := fault.NewFS(wal.OSFS())
	sys := core.NewSystem(core.Config{WALPath: dir, WALSync: true, WALFollower: true, WALFS: fs})
	must(sys.Err())
	rn, err := repl.Start(repl.Config{
		System: sys, Dir: dir, PrimaryAddr: primaryRepl, PrimaryClientAddr: primarySQL,
	})
	must(err)
	srv, err := server.Listen(sys, "127.0.0.1:0")
	must(err)
	return &node{name: name, dir: dir, sys: sys, rn: rn, srv: srv, fs: fs}
}

func main() {
	root, err := os.MkdirTemp("", "youtopia-replicaset-*")
	must(err)
	defer os.RemoveAll(root)

	// --- boot the set: one primary, two followers -----------------------
	p := startPrimary(filepath.Join(root, "primary"))
	f1 := startFollower("follower-1", filepath.Join(root, "f1"), p.rn.Addr(), p.clientAddr())
	f2 := startFollower("follower-2", filepath.Join(root, "f2"), p.rn.Addr(), p.clientAddr())
	fmt.Printf("primary    %s  (stream %s)\n", p.clientAddr(), p.rn.Addr())
	fmt.Printf("follower-1 %s\nfollower-2 %s\n\n", f1.clientAddr(), f2.clientAddr())

	pc, err := server.Dial(p.clientAddr())
	must(err)
	defer pc.Close()

	exec := func(sql string) {
		if _, err := pc.Query(sql); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	exec("CREATE TABLE Itinerary (id INT, leg STRING, PRIMARY KEY(id))")
	rows := 0
	write := func(n int) {
		for i := 0; i < n; i++ {
			exec(fmt.Sprintf("INSERT INTO Itinerary VALUES (%d, 'CDG-JFK')", rows))
			rows++
		}
	}
	write(50)

	// --- 1. convergence and the lag surface -----------------------------
	waitConverged(p, f1, f2)
	st, err := pc.AdminRepl(context.Background())
	must(err)
	fmt.Printf("primary admin `repl` after 50 writes:\n%s\n", st)

	// --- 2. follower reads; writes redirect -----------------------------
	f1c, err := server.Dial(f1.clientAddr())
	must(err)
	res, err := f1c.Query("SELECT id FROM Itinerary")
	must(err)
	fmt.Printf("follower-1 snapshot read: %d rows\n", len(res.Rows))
	_, err = f1c.Query("INSERT INTO Itinerary VALUES (999, 'nope')")
	if !errors.Is(err, server.ErrNotPrimary) {
		log.Fatalf("expected a not-primary redirect, got %v", err)
	}
	fmt.Printf("follower-1 write bounced: %v\n", err)
	f1c.Close()

	rc := repl.NewReplicaClient([]string{f1.clientAddr(), f2.clientAddr()})
	for i := 0; i < 4; i++ {
		_, addr, err := rc.QueryContext(context.Background(), "SELECT id FROM Itinerary WHERE id = 0")
		must(err)
		fmt.Printf("replica read %d served by %s\n", i+1, addr)
	}
	rc.Close()

	// --- 3. kill -9 a follower, write on, restart it, catch up ----------
	fmt.Println("\nkill -9 follower-1 mid-stream…")
	f1.fs.Kill() // every subsequent file write on f1 fails cold
	f1.stop()
	write(50)
	fmt.Printf("primary is at %d rows; restarting follower-1 from its torn chain\n", rows)
	f1 = startFollower("follower-1", f1.dir, p.rn.Addr(), p.clientAddr())
	waitConverged(p, f1, f2)
	fmt.Printf("follower-1 caught up: %s\n", f1.sys.ReplStatus())

	// --- 4. failover ----------------------------------------------------
	fmt.Println("promoting follower-1…")
	f1a, err := server.Dial(f1.clientAddr())
	must(err)
	nst, err := f1a.AdminPromote(context.Background())
	must(err)
	fmt.Printf("promoted: role=%s epoch=%d\n", nst.Role, nst.Epoch)
	if _, err := f1a.Query(fmt.Sprintf("INSERT INTO Itinerary VALUES (%d, 'post-failover')", rows)); err != nil {
		log.Fatal(err)
	}
	res, err = f1a.Query("SELECT id FROM Itinerary")
	must(err)
	fmt.Printf("new primary accepts writes: %d rows (%d pre-failover + 1)\n", len(res.Rows), rows)
	f1a.Close()

	f1.stop()
	f2.stop()
	p.stop()
}

func waitConverged(p *node, followers ...*node) {
	target := p.sys.WAL().End()
	deadline := time.Now().Add(10 * time.Second)
	for _, f := range followers {
		for {
			cur, _ := f.sys.WAL().TailInfo()
			if cur == target && f.sys.Ready() {
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("%s did not converge to %+v (at %+v)", f.name, target, cur)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
