// Integration tests spanning the whole stack: SQL text in → coordinated
// answers out, across the facade, the travel middle tier, the wire server
// and the write-ahead log — plus system-level property tests on the
// coordination invariants.
package repro

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/travel"
	"repro/internal/value"
	"repro/internal/workload"
)

func waitOut(t *testing.T, h *coord.Handle) coord.Outcome {
	t.Helper()
	done := make(chan struct{})
	timer := time.AfterFunc(5*time.Second, func() { close(done) })
	defer timer.Stop()
	out, ok := h.Wait(done)
	if !ok {
		t.Fatalf("q%d timed out", h.ID)
	}
	return out
}

// TestArchitecturePipeline (F2): a statement flows compiler → coordination →
// execution and every stage's state is observable through the admin surface.
func TestArchitecturePipeline(t *testing.T) {
	sys := core.NewSystem(core.Config{})
	if err := travel.SeedFigure1(sys); err != nil {
		t.Fatal(err)
	}
	h, err := sys.Submit(travel.BuildFlightQuery("Kramer", []string{"Jerry"},
		travel.FlightFilter{Dest: "Paris"}), "kramer")
	if err != nil {
		t.Fatal(err)
	}
	// Compiler output visible in pending info.
	pend := sys.Coordinator().Pending()
	if len(pend) != 1 || pend[0].ID != h.ID {
		t.Fatalf("pending = %+v", pend)
	}
	if pend[0].Logic == "" || pend[0].Source == "" {
		t.Error("compiler stage not observable")
	}
	// Coordination state visible in the dump; execution engine answers SQL.
	if sys.Coordinator().DumpState() == "" {
		t.Error("empty state dump")
	}
	res, err := sys.Query("SELECT COUNT(*) FROM Flights")
	if err != nil || res.Rows[0][0].Int() != 4 {
		t.Fatalf("engine: %v %v", res, err)
	}
	sys.Cancel(h.ID)
}

// TestFullDemoOutline runs every §3.1 scenario in sequence on ONE system —
// the complete demonstration script.
func TestFullDemoOutline(t *testing.T) {
	sys := core.NewSystem(core.Config{})
	if err := travel.Seed(sys, travel.SeedConfig{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	svc := travel.NewService(sys)
	awaitB := func(b *travel.Booking) {
		t.Helper()
		if st, err := b.Await(5 * time.Second); err != nil || st != travel.StatusConfirmed {
			t.Fatalf("booking %d: %s, %v", b.ID, st, err)
		}
	}

	// 1. Book a flight with a friend.
	svc.Befriend("Jerry", "Kramer")
	b1, _ := svc.BookFlight("Jerry", []string{"Kramer"}, travel.FlightFilter{Dest: "Paris"})
	b2, _ := svc.BookFlight("Kramer", []string{"Jerry"}, travel.FlightFilter{Dest: "Paris"})
	awaitB(b1)
	awaitB(b2)

	// 2. Book a flight and a hotel with a friend.
	b3, _ := svc.BookTrip("Jerry2", []string{"Kramer2"}, travel.FlightFilter{Dest: "Rome"}, travel.HotelFilter{City: "Rome"})
	b4, _ := svc.BookTrip("Kramer2", []string{"Jerry2"}, travel.FlightFilter{Dest: "Rome"}, travel.HotelFilter{City: "Rome"})
	awaitB(b3)
	awaitB(b4)

	// 3. Multiple simultaneous bookings.
	var wg sync.WaitGroup
	for p := 0; p < 6; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			a := fmt.Sprintf("m%d_a", p)
			bName := fmt.Sprintf("m%d_b", p)
			x, err := svc.BookFlight(a, []string{bName}, travel.FlightFilter{Dest: "London"})
			if err != nil {
				t.Error(err)
				return
			}
			y, err := svc.BookFlight(bName, []string{a}, travel.FlightFilter{Dest: "London"})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := x.Await(5 * time.Second); err != nil {
				t.Error(err)
			}
			if _, err := y.Await(5 * time.Second); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()

	// 4+5. Group flight, then group flight+hotel.
	group := []string{"g1", "g2", "g3", "g4"}
	var gb []*travel.Booking
	for i, self := range group {
		var friends []string
		for j, o := range group {
			if j != i {
				friends = append(friends, o)
			}
		}
		b, err := svc.BookTrip(self, friends, travel.FlightFilter{Dest: "Berlin"}, travel.HotelFilter{City: "Berlin"})
		if err != nil {
			t.Fatal(err)
		}
		gb = append(gb, b)
	}
	flights := map[int64]bool{}
	hotels := map[int64]bool{}
	for _, b := range gb {
		awaitB(b)
		f, h, _ := b.Details()
		flights[f] = true
		hotels[h] = true
	}
	if len(flights) != 1 || len(hotels) != 1 {
		t.Errorf("group split: flights %v hotels %v", flights, hotels)
	}

	// 6. Ad-hoc: a1↔a2 flights; a2↔a3 flights+hotels.
	h1, _ := sys.Submit(travel.BuildFlightQuery("a1", []string{"a2"}, travel.FlightFilter{Dest: "Oslo"}), "a1")
	kramer := `SELECT ('a2', fno) INTO ANSWER Reservation, ('a2', hno) INTO ANSWER HotelReservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Oslo')
		AND hno IN (SELECT hno FROM Hotels WHERE city = 'Oslo')
		AND ('a1', fno) IN ANSWER Reservation
		AND ('a3', hno) IN ANSWER HotelReservation CHOOSE 1`
	h2, err := sys.Submit(kramer, "a2")
	if err != nil {
		t.Fatal(err)
	}
	h3, _ := sys.Submit(`SELECT 'a3', hno INTO ANSWER HotelReservation
		WHERE hno IN (SELECT hno FROM Hotels WHERE city = 'Oslo')
		AND ('a2', hno) IN ANSWER HotelReservation CHOOSE 1`, "a3")
	out2 := waitOut(t, h2)
	waitOut(t, h1)
	waitOut(t, h3)
	if out2.MatchSize != 3 {
		t.Errorf("ad-hoc match size = %d", out2.MatchSize)
	}

	// Final bookkeeping: everything answered, nothing pending.
	if n := sys.Coordinator().PendingCount(); n != 0 {
		t.Errorf("pending at end of demo = %d", n)
	}
	st := sys.Coordinator().Stats()
	if st.Answered != st.Submitted {
		t.Errorf("answered %d of %d", st.Answered, st.Submitted)
	}
}

// TestServerWALTravelStack: the full production stack — wire server over a
// WAL-backed system — coordinates a pair, then recovers after restart.
func TestServerWALTravelStack(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "stack.wal")

	sys := core.NewSystem(core.Config{WALPath: walPath})
	if err := sys.Err(); err != nil {
		t.Fatal(err)
	}
	if err := travel.SeedFigure1(sys); err != nil {
		t.Fatal(err)
	}
	srv, err := server.Listen(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	c1, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	_, ev1, err := c1.Submit(travel.BuildFlightQuery("K", []string{"J"}, travel.FlightFilter{Dest: "Paris"}), "k")
	if err != nil {
		t.Fatal(err)
	}
	_, ev2, err := c2.Submit(travel.BuildFlightQuery("J", []string{"K"}, travel.FlightFilter{Dest: "Paris"}), "j")
	if err != nil {
		t.Fatal(err)
	}
	var flight int64
	select {
	case ev := <-ev1:
		flight = ev.Answers[0].Tuples[0][1].Int()
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	<-ev2
	c1.Close()
	c2.Close()
	srv.Close()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the WAL; the reservation must be there.
	sys2 := core.NewSystem(core.Config{WALPath: walPath})
	if err := sys2.Err(); err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	res, err := sys2.Query(fmt.Sprintf("SELECT a1 FROM Reservation WHERE a2 = %d ORDER BY a1", flight))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "J" || res.Rows[1][0].Str() != "K" {
		t.Errorf("recovered reservation = %v", res.Rows)
	}
}

// TestCompactPreservesLiveSystem: compaction mid-life keeps the database
// usable and the WAL smaller.
func TestCompactPreservesLiveSystem(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "compact.wal")
	sys := core.NewSystem(core.Config{WALPath: walPath})
	if err := travel.SeedFigure1(sys); err != nil {
		t.Fatal(err)
	}
	// Churn to bloat the log.
	for i := 0; i < 50; i++ {
		if err := sys.Exec(fmt.Sprintf("INSERT INTO Flights VALUES (%d, 'X', 'Nowhere', 1, 1.0, 'Z')", 1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Exec("DELETE FROM Flights WHERE dest = 'Nowhere'"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	// Still fully functional post-compaction (logging reattached).
	h1, _ := sys.Submit(travel.BuildFlightQuery("K", []string{"J"}, travel.FlightFilter{Dest: "Paris"}), "")
	sys.Submit(travel.BuildFlightQuery("J", []string{"K"}, travel.FlightFilter{Dest: "Paris"}), "") //nolint:errcheck
	waitOut(t, h1)
	sys.Close()

	sys2 := core.NewSystem(core.Config{WALPath: walPath})
	if err := sys2.Err(); err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	res, err := sys2.Query("SELECT COUNT(*) FROM Reservation")
	if err != nil || res.Rows[0][0].Int() != 2 {
		t.Fatalf("post-compact recovery: %v %v", res, err)
	}
}

// TestPropertyCoordinationInvariants: random pair/group workloads always end
// with (a) every constraint of every answered query satisfied by the answer
// relation contents, and (b) equal per-relation contribution counts.
func TestPropertyCoordinationInvariants(t *testing.T) {
	f := func(seed int64, pairsRaw, groupsRaw uint8) bool {
		pairs := int(pairsRaw%5) + 1
		groups := int(groupsRaw % 3)
		sys, err := workload.NewSystem(seed)
		if err != nil {
			return false
		}
		res, err := workload.Run(sys, workload.Config{
			Pairs: pairs, Groups: groups, GroupSize: 3, Seed: seed, Concurrency: 4,
		})
		if err != nil {
			return false
		}
		want := pairs*2 + groups*3
		if res.Answered != want {
			t.Logf("answered %d, want %d", res.Answered, want)
			return false
		}
		// Invariant: every participant appears exactly once in Reservation,
		// and every pair/group shares one flight.
		byTraveler := map[string]int64{}
		for _, tup := range sys.Answers().Tuples(travel.RelFlight) {
			name := tup[0].Str()
			if _, dup := byTraveler[name]; dup {
				t.Logf("traveler %s answered twice", name)
				return false
			}
			byTraveler[name] = tup[1].Int()
		}
		for i := 0; i < pairs; i++ {
			a := byTraveler[fmt.Sprintf("p%d_a", i)]
			b := byTraveler[fmt.Sprintf("p%d_b", i)]
			if a == 0 || a != b {
				t.Logf("pair %d mismatched: %d vs %d", i, a, b)
				return false
			}
		}
		for g := 0; g < groups; g++ {
			first := byTraveler[fmt.Sprintf("g%d_m0", g)]
			for m := 1; m < 3; m++ {
				if byTraveler[fmt.Sprintf("g%d_m%d", g, m)] != first {
					t.Logf("group %d split", g)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyChooseWithinCandidates: whatever the seed, the coordinated
// flight is always drawn from the legal candidate set.
func TestPropertyChooseWithinCandidates(t *testing.T) {
	legal := map[int64]bool{122: true, 123: true, 134: true}
	f := func(seed int64) bool {
		sys := core.NewSystem(core.Config{Coord: coord.Options{
			UseIndex: true, GroundSmallestFirst: true, Seed: seed,
		}})
		if err := travel.SeedFigure1(sys); err != nil {
			return false
		}
		h, err := sys.Submit(travel.BuildFlightQuery("K", []string{"J"}, travel.FlightFilter{Dest: "Paris"}), "")
		if err != nil {
			return false
		}
		if _, err := sys.Submit(travel.BuildFlightQuery("J", []string{"K"}, travel.FlightFilter{Dest: "Paris"}), ""); err != nil {
			return false
		}
		out, ok := h.TryOutcome()
		if !ok {
			return false
		}
		return legal[out.Answers[0].Tuples[0][1].Int()]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRandomInterleavingsAlwaysMatch: submit a batch of pair queries in a
// random global order (partners far apart); everyone still gets answered.
func TestRandomInterleavingsAlwaysMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 5; round++ {
		sys, err := workload.NewSystem(int64(round))
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewGenerator(workload.Config{Seed: int64(round)})
		var queries []string
		const pairs = 10
		for i := 0; i < pairs; i++ {
			a, b := gen.PairQueries(i)
			queries = append(queries, a, b)
		}
		rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
		var handles []*coord.Handle
		for _, q := range queries {
			h, err := sys.Submit(q, "shuffle")
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			waitOut(t, h)
		}
		if sys.Coordinator().PendingCount() != 0 {
			t.Fatalf("round %d: %d still pending", round, sys.Coordinator().PendingCount())
		}
	}
}

// TestAnswersAreImmutableHistory: coordinated answers accumulate; matching
// never deletes or rewrites previously installed tuples.
func TestAnswersAreImmutableHistory(t *testing.T) {
	sys, err := workload.NewSystem(5)
	if err != nil {
		t.Fatal(err)
	}
	var snapshots [][]value.Tuple
	gen := workload.NewGenerator(workload.Config{Seed: 5})
	for i := 0; i < 5; i++ {
		a, b := gen.PairQueries(i)
		h1, _ := sys.Submit(a, "")
		h2, _ := sys.Submit(b, "")
		waitOut(t, h1)
		waitOut(t, h2)
		snapshots = append(snapshots, sys.Answers().Tuples(travel.RelFlight))
	}
	for i := 1; i < len(snapshots); i++ {
		prev, cur := snapshots[i-1], snapshots[i]
		if len(cur) != len(prev)+2 {
			t.Fatalf("snapshot %d: %d tuples, want %d", i, len(cur), len(prev)+2)
		}
		for j, tup := range prev {
			if !cur[j].Equal(tup) {
				t.Errorf("answer history rewritten at %d: %v → %v", j, tup, cur[j])
			}
		}
	}
}
