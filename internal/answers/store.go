// Package answers manages the system-wide shared answer relations of the
// paper's §2.1: "the answer to the query is returned through an answer
// relation that is shared among multiple queries in the system".
//
// Answer relations live in the ordinary catalog as real tables, so the SQL
// command-line interface and the administrative interface can inspect them
// with plain SELECTs — matching the demo, where confirmed reservations are
// visible system state. Their schemas are fixed by the first tuple installed.
package answers

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/eq"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// ErrArityMismatch is returned when a tuple's arity disagrees with the answer
// relation's established schema.
var ErrArityMismatch = errors.New("answers: arity mismatch")

// ErrNameTaken is returned when an answer relation's name collides with a
// pre-existing base table.
var ErrNameTaken = errors.New("answers: name collides with an existing base table")

// Store tracks which catalog tables are answer relations and mediates all
// writes to them.
type Store struct {
	cat *storage.Catalog

	mu   sync.RWMutex
	rels map[string]*relInfo // canonical name → info
}

type relInfo struct {
	display string
	arity   int
}

// NewStore returns a Store over the catalog.
func NewStore(cat *storage.Catalog) *Store {
	return &Store{cat: cat, rels: make(map[string]*relInfo)}
}

// Ensure creates (or validates) the answer relation for a tuple shaped like
// proto, returning its backing table. Column types come from the first
// installed tuple; NULLs default to STRING columns.
func (s *Store) Ensure(name string, proto value.Tuple) (*storage.Table, error) {
	key := strings.ToLower(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if info, ok := s.rels[key]; ok {
		if info.arity != len(proto) {
			return nil, fmt.Errorf("%w: relation %s has arity %d, tuple %s has %d",
				ErrArityMismatch, info.display, info.arity, proto, len(proto))
		}
		return s.cat.Get(key)
	}
	if s.cat.Has(key) {
		return nil, fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	schema := value.NewSchema()
	for i, v := range proto {
		t := v.Type()
		if t == value.TypeNull {
			t = value.TypeString
		}
		schema.Columns = append(schema.Columns, value.Col(fmt.Sprintf("a%d", i+1), t))
	}
	// Answer relations are hot coordination state — probed at every matcher
	// search node — so when the catalog pages cold tables to disk, they stay
	// fully resident (no-op without a buffer pool).
	s.cat.PinResident(name)
	tbl, err := s.cat.Create(name, schema)
	if err != nil {
		return nil, err
	}
	// Index the first column: answer constraints almost always pin it to a
	// constant (the traveler name in every travel-app atom), so Matching can
	// probe instead of scanning the whole relation.
	if err := tbl.CreateIndex(schema.Columns[0].Name); err != nil {
		return nil, err
	}
	s.rels[key] = &relInfo{display: name, arity: len(proto)}
	return tbl, nil
}

// Install appends one answer tuple inside the given transaction, creating the
// relation if needed.
func (s *Store) Install(tx *txn.Txn, name string, tup value.Tuple) error {
	if _, err := s.Ensure(name, tup); err != nil {
		return err
	}
	_, err := tx.Insert(name, tup)
	return err
}

// Is reports whether name refers to an answer relation.
func (s *Store) Is(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.rels[strings.ToLower(name)]
	return ok
}

// Arity returns the relation's arity, or -1 if the relation does not exist
// yet (in which case any arity is acceptable).
func (s *Store) Arity(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if info, ok := s.rels[strings.ToLower(name)]; ok {
		return info.arity
	}
	return -1
}

// Tuples returns a snapshot of the relation's contents ([] if absent).
func (s *Store) Tuples(name string) []value.Tuple {
	if !s.Is(name) {
		return nil
	}
	tbl, err := s.cat.Get(name)
	if err != nil {
		return nil
	}
	return tbl.All()
}

// Matching returns the tuples of the relation consistent with the pattern
// atom: constants must match positionally; variables match anything. Repeated
// variables in the pattern must match identical values. When the pattern's
// first position is a constant the first-column index is probed instead of
// scanning the relation.
func (s *Store) Matching(pattern eq.Atom) []value.Tuple {
	return s.AppendMatching(nil, pattern)
}

// col0 is the first-column index key shared by every probe.
var col0 = []int{0}

// idScratch pools the RowID buffers of concurrent index probes.
var idScratch = sync.Pool{New: func() any { return new([]storage.RowID) }}

// AppendMatching is Matching appending into dst (reused from length 0). The
// matcher calls it at every search node, so the probe path is zero-copy:
// returned tuples are shared references into the relation (values are
// immutable — callers must not mutate them), the RowID buffer is pooled, and
// the repeated-variable check is precomputed per pattern instead of
// allocating a bindings map per tuple.
func (s *Store) AppendMatching(dst []value.Tuple, pattern eq.Atom) []value.Tuple {
	return s.AppendMatchingAt(storage.Latest(), dst, pattern)
}

// AppendMatchingAt is AppendMatching against a snapshot: the coordinator
// pins one snapshot per match search so every candidate probe across the
// search tree observes the same consistent answer state, without blocking
// the writers installing new matches underneath.
func (s *Store) AppendMatchingAt(snap storage.Snapshot, dst []value.Tuple, pattern eq.Atom) []value.Tuple {
	if s.Arity(pattern.Relation) != pattern.Arity() {
		return dst
	}
	tbl, err := s.cat.Get(pattern.Relation)
	if err != nil {
		return dst
	}
	// Precompute, once per pattern, the pairs of positions that must agree
	// because they repeat a variable. Patterns without repeated variables —
	// every travel-app pattern — take a map-free, pair-free fast path; the
	// quadratic scan is over the atom's arity (tiny) and allocates only when
	// a repeat actually exists.
	var repeats [][2]int
	for i, t := range pattern.Terms {
		if !t.IsVar {
			continue
		}
		for j := 0; j < i; j++ {
			if pattern.Terms[j].IsVar && pattern.Terms[j].Var == t.Var {
				repeats = append(repeats, [2]int{i, j})
				break
			}
		}
	}
	if len(pattern.Terms) > 0 && !pattern.Terms[0].IsVar {
		idsp := idScratch.Get().(*[]storage.RowID)
		ids := tbl.LookupEqAppendAt(snap, (*idsp)[:0], col0, value.Tuple{pattern.Terms[0].Const})
		for _, id := range ids {
			tup, ok := tbl.GetRefAt(snap, id)
			if ok && matches(pattern, repeats, tup) {
				dst = append(dst, tup)
			}
		}
		*idsp = ids
		idScratch.Put(idsp)
		return dst
	}
	tbl.ScanAt(snap, func(_ storage.RowID, tup value.Tuple) bool {
		if matches(pattern, repeats, tup) {
			dst = append(dst, tup)
		}
		return true
	})
	return dst
}

// matches checks tup against the pattern's constants and the precomputed
// repeated-variable position pairs.
func matches(pattern eq.Atom, repeats [][2]int, tup value.Tuple) bool {
	for i, t := range pattern.Terms {
		if !t.IsVar && !t.Const.Identical(tup[i]) {
			return false
		}
	}
	for _, r := range repeats {
		if !tup[r[0]].Identical(tup[r[1]]) {
			return false
		}
	}
	return true
}

// AdoptFromCatalog registers as answer relations every existing catalog
// table whose columns all follow the answer-schema naming convention
// (a1, a2, …, aN in order). It is called after write-ahead-log recovery,
// which reconstructs answer relations as plain tables; adopting them lets
// new entangled queries keep coordinating against pre-crash answers. It
// returns the number of relations adopted.
func (s *Store) AdoptFromCatalog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	adopted := 0
	for _, name := range s.cat.Names() {
		key := strings.ToLower(name)
		if _, known := s.rels[key]; known {
			continue
		}
		tbl, err := s.cat.Get(name)
		if err != nil {
			continue
		}
		schema := tbl.Schema()
		match := schema.Arity() > 0
		for i, col := range schema.Columns {
			if !strings.EqualFold(col.Name, fmt.Sprintf("a%d", i+1)) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		// Recovery replayed this relation as a plain (possibly spilled)
		// table; adopting it also restores the hot-set pinning policy,
		// materializing any paged-out answers back into memory.
		s.cat.PinResident(name)
		s.rels[key] = &relInfo{display: name, arity: schema.Arity()}
		adopted++
	}
	return adopted
}

// Relations lists the display names of all answer relations, sorted.
func (s *Store) Relations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.rels))
	for _, info := range s.rels {
		out = append(out, info.display)
	}
	sort.Strings(out)
	return out
}
