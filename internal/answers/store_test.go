package answers

import (
	"errors"
	"testing"

	"repro/internal/eq"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

func setup(t *testing.T) (*Store, *txn.Manager) {
	t.Helper()
	cat := storage.NewCatalog()
	return NewStore(cat), txn.NewManager(cat)
}

func install(t *testing.T, s *Store, m *txn.Manager, rel string, tup value.Tuple) {
	t.Helper()
	if err := m.RunAtomic(func(tx *txn.Txn) error {
		return s.Install(tx, rel, tup)
	}); err != nil {
		t.Fatalf("install %s %s: %v", rel, tup, err)
	}
}

func TestInstallAndRead(t *testing.T) {
	s, m := setup(t)
	install(t, s, m, "Reservation", value.NewTuple("Kramer", 122))
	install(t, s, m, "Reservation", value.NewTuple("Jerry", 122))
	tups := s.Tuples("reservation")
	if len(tups) != 2 {
		t.Fatalf("tuples = %v", tups)
	}
	if !s.Is("RESERVATION") || s.Is("Hotel") {
		t.Error("Is")
	}
	if s.Arity("Reservation") != 2 || s.Arity("Nope") != -1 {
		t.Error("Arity")
	}
	if rels := s.Relations(); len(rels) != 1 || rels[0] != "Reservation" {
		t.Errorf("Relations = %v", rels)
	}
}

func TestSchemaFixedByFirstTuple(t *testing.T) {
	s, m := setup(t)
	install(t, s, m, "R", value.NewTuple("x", 1))
	// Wrong arity.
	err := m.RunAtomic(func(tx *txn.Txn) error {
		return s.Install(tx, "R", value.NewTuple("x", 1, 2))
	})
	if !errors.Is(err, ErrArityMismatch) {
		t.Errorf("arity err = %v", err)
	}
	// Wrong type in same arity.
	err = m.RunAtomic(func(tx *txn.Txn) error {
		return s.Install(tx, "R", value.NewTuple(5, 1))
	})
	if err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestNullDefaultsToString(t *testing.T) {
	s, m := setup(t)
	install(t, s, m, "R", value.NewTuple(nil, 1))
	install(t, s, m, "R", value.NewTuple("later", 2))
	if len(s.Tuples("R")) != 2 {
		t.Error("null-first install broke schema inference")
	}
}

func TestNameCollisionWithBaseTable(t *testing.T) {
	cat := storage.NewCatalog()
	cat.Create("Reservation", value.NewSchema(value.Col("x", value.TypeInt)))
	s := NewStore(cat)
	m := txn.NewManager(cat)
	err := m.RunAtomic(func(tx *txn.Txn) error {
		return s.Install(tx, "Reservation", value.NewTuple(1))
	})
	if !errors.Is(err, ErrNameTaken) {
		t.Errorf("err = %v, want ErrNameTaken", err)
	}
}

func TestInstallRollsBackWithTxn(t *testing.T) {
	s, m := setup(t)
	install(t, s, m, "R", value.NewTuple("seed", 0)) // fix schema
	boom := errors.New("boom")
	err := m.RunAtomic(func(tx *txn.Txn) error {
		if err := s.Install(tx, "R", value.NewTuple("k", 1)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if len(s.Tuples("R")) != 1 {
		t.Error("rolled-back install is visible")
	}
}

func TestMatching(t *testing.T) {
	s, m := setup(t)
	install(t, s, m, "R", value.NewTuple("Jerry", 122))
	install(t, s, m, "R", value.NewTuple("Jerry", 123))
	install(t, s, m, "R", value.NewTuple("Kramer", 122))

	// R('Jerry', x) → two tuples.
	got := s.Matching(eq.NewAtom("R", eq.ConstTerm(value.NewString("Jerry")), eq.VarTerm("x")))
	if len(got) != 2 {
		t.Errorf("Matching Jerry = %v", got)
	}
	// R(who, 122) → two tuples.
	got = s.Matching(eq.NewAtom("R", eq.VarTerm("who"), eq.ConstTerm(value.NewInt(122))))
	if len(got) != 2 {
		t.Errorf("Matching 122 = %v", got)
	}
	// Repeated variable: R(x, x) → none here.
	got = s.Matching(eq.NewAtom("R", eq.VarTerm("x"), eq.VarTerm("x")))
	if len(got) != 0 {
		t.Errorf("Matching (x,x) = %v", got)
	}
	// Wrong arity pattern.
	got = s.Matching(eq.NewAtom("R", eq.VarTerm("x")))
	if got != nil {
		t.Errorf("arity-mismatched pattern = %v", got)
	}
	// Unknown relation.
	if s.Matching(eq.NewAtom("Nope", eq.VarTerm("x"))) != nil {
		t.Error("unknown relation should match nothing")
	}
}

func TestMatchingRepeatedVarPositive(t *testing.T) {
	s, m := setup(t)
	install(t, s, m, "P", value.NewTuple(7, 7))
	install(t, s, m, "P", value.NewTuple(7, 8))
	got := s.Matching(eq.NewAtom("P", eq.VarTerm("x"), eq.VarTerm("x")))
	if len(got) != 1 || got[0][0].Int() != 7 {
		t.Errorf("got %v", got)
	}
}

func TestTuplesUnknownRelation(t *testing.T) {
	s, _ := setup(t)
	if s.Tuples("nope") != nil {
		t.Error("unknown relation should return nil")
	}
}

func TestAdoptFromCatalog(t *testing.T) {
	cat := storage.NewCatalog()
	// Follows the a1..aN convention → adopted.
	cat.Create("Reservation", value.NewSchema(value.Col("a1", value.TypeString), value.Col("a2", value.TypeInt))) //nolint:errcheck
	// Does not follow the convention → ignored.
	cat.Create("Flights", value.NewSchema(value.Col("fno", value.TypeInt), value.Col("dest", value.TypeString))) //nolint:errcheck
	// Wrong order of convention names → ignored.
	cat.Create("Weird", value.NewSchema(value.Col("a2", value.TypeInt), value.Col("a1", value.TypeString))) //nolint:errcheck

	s := NewStore(cat)
	if n := s.AdoptFromCatalog(); n != 1 {
		t.Fatalf("adopted %d, want 1", n)
	}
	if !s.Is("Reservation") || s.Is("Flights") || s.Is("Weird") {
		t.Errorf("adoption targets wrong: %v", s.Relations())
	}
	if s.Arity("Reservation") != 2 {
		t.Errorf("arity = %d", s.Arity("Reservation"))
	}
	// Idempotent.
	if n := s.AdoptFromCatalog(); n != 0 {
		t.Errorf("second adopt = %d", n)
	}
	// Adopted relations accept installs with the established schema.
	m := txn.NewManager(cat)
	install(t, s, m, "Reservation", value.NewTuple("K", 122))
}
