// Package baseline implements the alternative the paper's introduction says
// users are forced into WITHOUT Youtopia: "coordinating out-of-band to choose
// the flight and trying to make near-simultaneous bookings". It is a
// middle-tier polling protocol over ordinary (non-entangled) SQL — no
// coordination support from the DBMS — used as the comparison point for
// experiment E9.
//
// Protocol (per user, for a pair {a, b} wanting the same flight):
//
//  1. read the candidate flights and the partner's current tentative booking
//     from a plain Bookings table;
//  2. if the partner has booked a flight we also find acceptable, book the
//     same one — done;
//  3. otherwise book a tentative flight ourselves (lexicographically smaller
//     user leads, the other follows), then poll; a follower switches its
//     booking to the leader's choice when it appears.
//
// The protocol eventually converges for a pair, but unlike entangled queries
// it (a) costs a number of round trips that grows with polling, (b) holds
// tentative bookings visible to everyone in the meantime, and (c) gives no
// atomicity: a crash between "cancel mine" and "book theirs" strands the
// pair. The benchmark measures statements executed and convergence latency
// against Youtopia's single coordinated match.
package baseline

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Coordinator runs out-of-band pair coordination over plain SQL.
type Coordinator struct {
	sys *core.System
	// PollInterval is the delay between polling rounds (the out-of-band
	// "check if my friend booked yet" loop).
	PollInterval time.Duration
	// MaxRounds bounds polling before giving up.
	MaxRounds int

	statements atomic.Uint64 // SQL statements executed (round-trip proxy)
}

// New builds a baseline coordinator over a seeded system. It creates the
// shared Bookings table on first use.
func New(sys *core.System) (*Coordinator, error) {
	c := &Coordinator{sys: sys, PollInterval: 200 * time.Microsecond, MaxRounds: 500}
	if !sys.Catalog().Has("BaselineBookings") {
		if err := sys.Exec("CREATE TABLE BaselineBookings (traveler STRING, fno INT, PRIMARY KEY (traveler))"); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Statements returns the cumulative number of SQL statements issued.
func (c *Coordinator) Statements() uint64 { return c.statements.Load() }

// flights returns the acceptable flight numbers for a destination.
func (c *Coordinator) flights(dest string) ([]int64, error) {
	c.statements.Add(1)
	res, err := c.sys.Query(fmt.Sprintf("SELECT fno FROM Flights WHERE dest = '%s' ORDER BY fno", dest))
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[0].Int()
	}
	return out, nil
}

// partnerBooking reads the partner's current tentative booking (0 if none).
func (c *Coordinator) partnerBooking(partner string) (int64, error) {
	c.statements.Add(1)
	res, err := c.sys.Query(fmt.Sprintf("SELECT fno FROM BaselineBookings WHERE traveler = '%s'", partner))
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, nil
	}
	return res.Rows[0][0].Int(), nil
}

// setBooking upserts the caller's tentative booking.
func (c *Coordinator) setBooking(user string, fno int64) error {
	c.statements.Add(1)
	res, err := c.sys.Query(fmt.Sprintf("SELECT fno FROM BaselineBookings WHERE traveler = '%s'", user))
	if err != nil {
		return err
	}
	c.statements.Add(1)
	if len(res.Rows) == 0 {
		_, err = c.sys.Query(fmt.Sprintf("INSERT INTO BaselineBookings VALUES ('%s', %d)", user, fno))
	} else {
		_, err = c.sys.Query(fmt.Sprintf("UPDATE BaselineBookings SET fno = %d WHERE traveler = '%s'", fno, user))
	}
	return err
}

// BookSameFlight coordinates user with partner on a flight to dest. It
// returns the agreed flight number once both sides' bookings coincide.
func (c *Coordinator) BookSameFlight(user, partner, dest string) (int64, error) {
	candidates, err := c.flights(dest)
	if err != nil {
		return 0, err
	}
	if len(candidates) == 0 {
		return 0, fmt.Errorf("baseline: no flights to %s", dest)
	}
	acceptable := make(map[int64]bool, len(candidates))
	for _, f := range candidates {
		acceptable[f] = true
	}
	leader := user < partner

	for round := 0; round < c.MaxRounds; round++ {
		theirs, err := c.partnerBooking(partner)
		if err != nil {
			return 0, err
		}
		if theirs != 0 && acceptable[theirs] {
			// Adopt the partner's choice.
			if err := c.setBooking(user, theirs); err != nil {
				return 0, err
			}
			// Confirm the partner hasn't moved meanwhile (they can, which is
			// exactly the race entangled queries eliminate).
			again, err := c.partnerBooking(partner)
			if err != nil {
				return 0, err
			}
			if again == theirs {
				return theirs, nil
			}
		} else if leader {
			// Leader proposes its first acceptable flight.
			if err := c.setBooking(user, candidates[0]); err != nil {
				return 0, err
			}
			// Wait for the follower to adopt it.
			again, err := c.partnerBooking(partner)
			if err != nil {
				return 0, err
			}
			if again == candidates[0] {
				return candidates[0], nil
			}
		}
		time.Sleep(c.PollInterval)
	}
	return 0, fmt.Errorf("baseline: %s/%s did not converge within %d rounds", user, partner, c.MaxRounds)
}
