package baseline

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/travel"
)

func seeded(t *testing.T) *core.System {
	t.Helper()
	sys := core.NewSystem(core.Config{})
	if err := travel.SeedFigure1(sys); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPairConverges(t *testing.T) {
	sys := seeded(t)
	c, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	c.PollInterval = 100 * time.Microsecond

	var fA, fB int64
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); fA, errA = c.BookSameFlight("alice", "bob", "Paris") }()
	go func() { defer wg.Done(); fB, errB = c.BookSameFlight("bob", "alice", "Paris") }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v, %v", errA, errB)
	}
	if fA != fB {
		t.Errorf("flights differ: %d vs %d", fA, fB)
	}
	if c.Statements() < 4 {
		t.Errorf("implausibly few statements: %d", c.Statements())
	}
}

func TestNoFlights(t *testing.T) {
	sys := seeded(t)
	c, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.BookSameFlight("alice", "bob", "Atlantis"); err == nil {
		t.Error("expected error for unknown destination")
	}
}

func TestFollowerTimesOutWithoutLeader(t *testing.T) {
	sys := seeded(t)
	c, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	c.PollInterval = 50 * time.Microsecond
	c.MaxRounds = 5
	// "bob" is the follower (alice < bob) and alice never shows up.
	if _, err := c.BookSameFlight("bob", "alice", "Paris"); err == nil {
		t.Error("follower should not converge without the leader")
	}
}

func TestManyPairsConverge(t *testing.T) {
	sys := seeded(t)
	c, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	c.PollInterval = 50 * time.Microsecond
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for p := 0; p < 8; p++ {
		a := "u" + string(rune('a'+p)) + "1"
		b := "u" + string(rune('a'+p)) + "2"
		wg.Add(2)
		go func() { defer wg.Done(); _, err := c.BookSameFlight(a, b, "Paris"); errs <- err }()
		go func() { defer wg.Done(); _, err := c.BookSameFlight(b, a, "Paris"); errs <- err }()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewIdempotentTable(t *testing.T) {
	sys := seeded(t)
	if _, err := New(sys); err != nil {
		t.Fatal(err)
	}
	if _, err := New(sys); err != nil {
		t.Errorf("second New failed: %v", err)
	}
}
