package coord

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/eq"
)

// PendingInfo describes one parked entangled query for the administrative
// interface (§3.2: "facts about the system state such as the set of queries
// pending to be entangled and their representation in the system").
type PendingInfo struct {
	ID        uint64
	Owner     string
	Source    string // original SQL
	Logic     string // compiled IR rendering
	Relations []string
	Waiting   time.Duration
}

// Pending lists parked queries in submission order, merged across shards.
func (c *Coordinator) Pending() []PendingInfo {
	ps := c.allPending()
	out := make([]PendingInfo, len(ps))
	now := time.Now()
	for i, p := range ps {
		out[i] = PendingInfo{
			ID:        p.id,
			Owner:     p.owner,
			Source:    p.q.Source,
			Logic:     p.q.String(),
			Relations: relationsOf(p.q),
			Waiting:   now.Sub(p.submitted),
		}
	}
	return out
}

// Edge is one potential-partner edge in the entanglement graph: a constraint
// atom of From that could be covered by a head atom of To.
type Edge struct {
	From, To   uint64
	Constraint string
	Head       string
}

// EntanglementGraph computes the potential-partner edges among pending
// queries — the state the demo's admin interface visualizes. An edge is
// drawn when a constraint atom of one query locally unifies with a head atom
// of another (it may still fail joint unification or grounding).
func (c *Coordinator) EntanglementGraph() []Edge {
	ps := c.allPending()
	var edges []Edge
	for _, from := range ps {
		for _, cons := range from.q.Constraints {
			for _, to := range ps {
				if to.id == from.id {
					continue
				}
				for _, h := range to.q.Heads {
					if eq.Unifiable(cons, h) {
						edges = append(edges, Edge{
							From:       from.id,
							To:         to.id,
							Constraint: cons.String(),
							Head:       h.String(),
						})
					}
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// DOT renders the entanglement graph in Graphviz DOT format — the "special
// mode that enables visual inspection of the state of the system" of §3.2.
// Nodes are pending queries (labelled with owner and logic); edges are
// potential covers between constraint and head atoms.
func (c *Coordinator) DOT() string {
	var b strings.Builder
	b.WriteString("digraph entanglement {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, p := range c.Pending() {
		owner := p.Owner
		if owner == "" {
			owner = "?"
		}
		fmt.Fprintf(&b, "  q%d [label=%q];\n", p.ID, fmt.Sprintf("q%d (%s)\n%s", p.ID, owner, p.Logic))
	}
	for _, e := range c.EntanglementGraph() {
		fmt.Fprintf(&b, "  q%d -> q%d [label=%q];\n", e.From, e.To, e.Constraint)
	}
	b.WriteString("}\n")
	return b.String()
}

// Diagnosis explains why a pending query has not been answered.
type Diagnosis struct {
	ID    uint64
	Logic string
	// PerConstraint lists, for each positive constraint atom, how many
	// covering candidates exist right now: pending head atoms that locally
	// unify, and installed answer tuples that match.
	PerConstraint []ConstraintDiag
	// Summary is a one-line human-readable verdict.
	Summary string
}

// ConstraintDiag is the candidate census of one constraint atom.
type ConstraintDiag struct {
	Constraint    string
	PendingHeads  int // unifiable head atoms of other pending queries
	InstalledHits int // matching tuples already in the answer relation
}

// Diagnose explains a pending query's wait: which constraint atoms currently
// have no cover at all (the demo's admin interface answers exactly this kind
// of "why is Jerry still waiting?" question). It returns false when the
// query is not pending.
func (c *Coordinator) Diagnose(id uint64) (Diagnosis, bool) {
	v, ok := c.byID.Load(id)
	if !ok {
		return Diagnosis{}, false
	}
	p := v.(*pending)
	d := Diagnosis{ID: id, Logic: p.q.String()}
	self := map[uint64]*pending{id: p}
	uncovered := 0
	for _, cons := range p.q.Constraints {
		cd := ConstraintDiag{Constraint: cons.String()}
		cd.PendingHeads = len(c.candidates(cons, self, nil, nil, nil))
		// Self-covering heads count too (a reflexive constraint).
		for _, h := range p.q.Heads {
			if eq.Unifiable(cons, h) {
				cd.PendingHeads++
			}
		}
		cd.InstalledHits = len(c.store.Matching(cons))
		if cd.PendingHeads == 0 && cd.InstalledHits == 0 {
			uncovered++
		}
		d.PerConstraint = append(d.PerConstraint, cd)
	}
	switch {
	case len(p.q.Constraints) == 0:
		d.Summary = "no answer constraints — pending means grounding failed; check the base tables its generators read"
	case uncovered > 0:
		d.Summary = fmt.Sprintf("%d of %d constraint(s) have no candidate cover — waiting for partner queries", uncovered, len(p.q.Constraints))
	default:
		d.Summary = "every constraint has candidates, but no joint match grounded — partners' filters may be incompatible or candidate sets disjoint"
	}
	return d, true
}

// DumpState renders a human-readable report of the coordination state: the
// pending-query table, the entanglement graph, the answer relations and the
// MVCC storage counters (commit clock, GC watermark, live version chains).
func (c *Coordinator) DumpState() string {
	var b strings.Builder
	pend := c.Pending()
	fmt.Fprintf(&b, "=== Pending entangled queries (%d) ===\n", len(pend))
	for _, p := range pend {
		owner := p.Owner
		if owner == "" {
			owner = "-"
		}
		fmt.Fprintf(&b, "  [q%d] owner=%s waiting=%s\n        %s\n", p.ID, owner, p.Waiting.Round(time.Millisecond), p.Logic)
	}
	edges := c.EntanglementGraph()
	fmt.Fprintf(&b, "=== Entanglement graph (%d potential edges) ===\n", len(edges))
	for _, e := range edges {
		fmt.Fprintf(&b, "  q%d --[%s ~ %s]--> q%d\n", e.From, e.Constraint, e.Head, e.To)
	}
	rels := c.store.Relations()
	fmt.Fprintf(&b, "=== Answer relations (%d) ===\n", len(rels))
	for _, r := range rels {
		tuples := c.store.Tuples(r)
		fmt.Fprintf(&b, "  %s: %d tuple(s)\n", r, len(tuples))
		for _, t := range tuples {
			fmt.Fprintf(&b, "    %s\n", t)
		}
	}
	shards := c.Shards()
	fmt.Fprintf(&b, "=== Coordination lanes (%d) ===\n", len(shards))
	for _, si := range shards {
		fmt.Fprintf(&b, "  shard %d: pending=%d matches=%d answered=%d escalations=%d relations=%v\n",
			si.ID, si.Pending, si.Stats.Matches, si.Stats.Answered, si.Stats.Escalations, si.Relations)
	}
	s := c.Stats()
	fmt.Fprintf(&b, "=== Stats ===\n  submitted=%d answered=%d matches=%d parked=%d canceled=%d retries=%d escalations=%d nodes=%d groundings=%d/%d ok\n",
		s.Submitted, s.Answered, s.Matches, s.Parked, s.Canceled, s.Retries, s.Escalations, s.NodesExplored,
		s.GroundingAttempts-s.GroundingFailures, s.GroundingAttempts)
	cat := c.eng.Catalog()
	chains, versions := cat.VersionStats()
	fmt.Fprintf(&b, "=== MVCC ===\n  clock=%d watermark=%d active-snapshots=%d version-chains=%d live-versions=%d write-conflicts=%d gc-reclaimed=%d\n",
		cat.Clock(), cat.Watermark(), cat.ActiveSnapshots(), chains, versions, cat.Conflicts(), cat.GCReclaimed())
	if ps, ok := cat.PoolStats(); ok {
		fmt.Fprintf(&b, "=== Buffer pool ===\n  frames=%d resident=%d dirty=%d hit-ratio=%.1f%% (hits=%d misses=%d) evictions=%d writebacks=%d\n  spilled-tables=%d pinned-relations=%d heap-pages=%d\n",
			ps.Capacity, ps.Resident, ps.Dirty, 100*ps.HitRatio(), ps.Hits, ps.Misses,
			ps.Evictions, ps.Writebacks, ps.SpilledTables, ps.PinnedTables, ps.HeapPages)
		for _, tb := range ps.Tables {
			fmt.Fprintf(&b, "    %s: %d page(s)\n", tb.Name, tb.Pages)
		}
	}
	return b.String()
}
