package coord

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/answers"
	"repro/internal/engine"
	"repro/internal/eq"
	"repro/internal/value"
)

// Options tune the coordination component. The zero value is usable; New
// fills in defaults. The knobs double as the ablation switches indexed in
// DESIGN.md (A1–A3, A5, A7).
type Options struct {
	// MaxMatchSize bounds how many queries one match may join (A2). Matching
	// is NP-hard in general; the bound keeps arrival latency predictable.
	MaxMatchSize int
	// MaxNodes bounds the coverage search per arrival.
	MaxNodes int
	// UseIndex enables the pending-head candidate index (A1); disabled, the
	// matcher scans every pending head.
	UseIndex bool
	// GroundSmallestFirst orders grounding domain sources by ascending
	// candidate count (A3); disabled, sources are used in discovery order.
	GroundSmallestFirst bool
	// FullRetryOnMatch re-attempts EVERY pending query after each successful
	// match (A5 ablation). The default (false) retries only pending queries
	// with a constraint atom that could unify with one of the answer tuples
	// the match just installed — on loaded systems this skips the unrelated
	// noise queries entirely.
	FullRetryOnMatch bool
	// Shards is the number of relation-partitioned coordination lanes (A7
	// ablation at 1). Each arriving query is routed to the shards owning the
	// relations of its footprint; queries on disjoint footprints coordinate
	// fully in parallel, and footprint-spanning queries escalate to a
	// deterministic multi-shard lock acquisition (see shard.go). Zero means
	// 1 — the paper's single serialized coordination round.
	Shards int
	// Seed drives the nondeterministic CHOOSE; a fixed seed makes runs
	// reproducible (per shard, each shard derives its own stream).
	Seed int64
	// PendingTTL, when positive, bounds how long a query may wait for
	// coordination: queries pending longer are withdrawn (Canceled outcome)
	// during the expiry pass run at the start of every coordination round on
	// the shards the round locks, and by ExpirePending. The paper parks
	// unmatched queries indefinitely; a production deployment needs the
	// lease. Zero disables expiry.
	PendingTTL time.Duration
	// ValidateMatches re-verifies, after every successful match, that each
	// delivered answer's constraints are satisfied by the answer relations —
	// a self-check of the matcher's central invariant (Figure 1b). It panics
	// on violation; enable it in tests and debugging, not in benchmarks.
	ValidateMatches bool
}

func (o Options) withDefaults() Options {
	if o.MaxMatchSize == 0 {
		o.MaxMatchSize = 16
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200_000
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// DefaultOptions returns the defaults used by New when no options are given:
// index on, smallest-first grounding, match bound 16, one shard.
func DefaultOptions() Options {
	return Options{UseIndex: true, GroundSmallestFirst: true}.withDefaults()
}

// Stats counts coordination activity; all fields are cumulative. Each shard
// keeps its own instance; Coordinator.Stats merges them.
type Stats struct {
	Submitted         atomic.Uint64
	Answered          atomic.Uint64 // queries answered (across all matches)
	Matches           atomic.Uint64 // successful joint executions
	Parked            atomic.Uint64 // arrivals that found no match and waited
	Canceled          atomic.Uint64
	Expired           atomic.Uint64 // pending queries withdrawn by TTL
	Retries           atomic.Uint64 // pending queries re-attempted
	Escalations       atomic.Uint64 // rounds widened to a cross-shard lane
	NodesExplored     atomic.Uint64
	GroundingAttempts atomic.Uint64
	GroundingFailures atomic.Uint64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Submitted:         s.Submitted.Load(),
		Answered:          s.Answered.Load(),
		Matches:           s.Matches.Load(),
		Parked:            s.Parked.Load(),
		Canceled:          s.Canceled.Load(),
		Expired:           s.Expired.Load(),
		Retries:           s.Retries.Load(),
		Escalations:       s.Escalations.Load(),
		NodesExplored:     s.NodesExplored.Load(),
		GroundingAttempts: s.GroundingAttempts.Load(),
		GroundingFailures: s.GroundingFailures.Load(),
	}
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Submitted, Answered, Matches, Parked, Canceled uint64
	Expired, Retries, Escalations, NodesExplored   uint64
	GroundingAttempts, GroundingFailures           uint64
}

func (s *StatsSnapshot) add(o StatsSnapshot) {
	s.Submitted += o.Submitted
	s.Answered += o.Answered
	s.Matches += o.Matches
	s.Parked += o.Parked
	s.Canceled += o.Canceled
	s.Expired += o.Expired
	s.Retries += o.Retries
	s.Escalations += o.Escalations
	s.NodesExplored += o.NodesExplored
	s.GroundingAttempts += o.GroundingAttempts
	s.GroundingFailures += o.GroundingFailures
}

// Coordinator is the coordination component. The paper's design runs the
// coordination logic "whenever an entangled query arrives in the system";
// here that logic is partitioned into Options.Shards relation-sharded lanes,
// each serializing only the rounds that touch its relations. With one shard
// this degenerates to the paper's single serialized round.
type Coordinator struct {
	eng   *engine.Engine
	store *answers.Store
	opts  Options

	shards []*coordShard
	// byID is the global pending-query directory: id → *pending. Its
	// LoadAndDelete in unregister is the single claim gate deciding which
	// round (match, expiry, cancel) delivers a query's outcome.
	byID sync.Map

	nextID atomic.Uint64

	// lanePool recycles lane lock-sets; every coordination round takes one.
	lanePool sync.Pool

	// searchHook, when non-nil, replaces the trailed matcher for the round's
	// coverage search. The differential test installs the reference
	// clone-based implementation here to prove outcome/stats equivalence.
	searchHook func(ln *lane, trigger *pending) (*installResult, bool, bool)
}

// New builds a Coordinator over an execution engine and an answer store.
func New(eng *engine.Engine, store *answers.Store, opts Options) *Coordinator {
	o := opts.withDefaults()
	c := &Coordinator{
		eng:    eng,
		store:  store,
		opts:   o,
		shards: make([]*coordShard, o.Shards),
	}
	for i := range c.shards {
		c.shards[i] = &coordShard{
			id:  i,
			reg: newRegistry(),
			// Each shard derives its own deterministic stream; shard 0 uses
			// the seed itself, so shards=1 reproduces the unsharded runs.
			rng: rand.New(rand.NewSource(o.Seed + int64(i)*0x9E3779B9)),
		}
	}
	return c
}

// Store exposes the coordinator's answer store.
func (c *Coordinator) Store() *answers.Store { return c.store }

// Engine exposes the coordinator's execution engine.
func (c *Coordinator) Engine() *engine.Engine { return c.eng }

// NumShards returns the number of coordination lanes.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Submit registers a compiled entangled query under an optional owner label
// and immediately runs a coordination round on the lane(s) its relation
// footprint maps to. If the query can be matched now (possibly recruiting
// other pending queries), everyone involved is answered atomically and
// their handles fire; otherwise the query parks in the pending tables and
// the returned handle fires on a later round.
func (c *Coordinator) Submit(q *eq.Query, owner string) (*Handle, error) {
	if q == nil || len(q.Heads) == 0 {
		return nil, fmt.Errorf("coord: empty query")
	}
	// Validate answer-relation names and arities up front so the submitter
	// gets the error, not a forever-pending query. The canonical footprint
	// doubles as the pending query's relation set below.
	rels := relationsOf(q)
	for _, rel := range rels {
		if !c.store.Is(rel) && c.eng.Catalog().Has(rel) {
			return nil, fmt.Errorf("%w: %q", answers.ErrNameTaken, rel)
		}
		if ar := c.store.Arity(rel); ar >= 0 {
			for _, h := range q.Heads {
				if h.Relation == rel && h.Arity() != ar {
					return nil, fmt.Errorf("%w: relation %s has arity %d, head %s",
						answers.ErrArityMismatch, rel, ar, h)
				}
			}
			checkAtoms := func(atoms []eq.Atom) error {
				for _, a := range atoms {
					if a.Relation == rel && a.Arity() != ar {
						return fmt.Errorf("%w: relation %s has arity %d, constraint %s",
							answers.ErrArityMismatch, rel, ar, a)
					}
				}
				return nil
			}
			if err := checkAtoms(q.Constraints); err != nil {
				return nil, err
			}
			if err := checkAtoms(q.NegConstraints); err != nil {
				return nil, err
			}
		}
	}

	p := &pending{
		id:        c.nextID.Add(1),
		q:         q,
		owner:     owner,
		submitted: time.Now(),
		rels:      rels,
	}
	p.shards = c.shardSet(p.rels)
	p.home = p.shards[0]
	p.handle = &Handle{ID: p.id, ch: make(chan Outcome, 1)}
	c.shards[p.home].stats.Submitted.Add(1)

	_, deferred := c.coordinate(p, true)
	c.runDeferred(deferred)
	return p.handle, nil
}

// SubmitSQL compiles and submits entangled SQL.
func (c *Coordinator) SubmitSQL(src, owner string) (*Handle, error) {
	q, err := eq.CompileSQL(src)
	if err != nil {
		return nil, err
	}
	return c.Submit(q, owner)
}

// coordinate runs one coordination round for p: lock the lane of p's
// footprint, run the coverage search, and on success finalize the match and
// cascade targeted retries within the lane. When the search fails only
// because candidates were foreign to the lane (their footprints span
// unlocked shards), the round escalates: it widens the lane to the shard
// closure of p's footprint — deterministically, in shard-id order — and
// retries. Arrival rounds (arrival=true) register p first and count Parked
// on failure; retry rounds re-check that p is still pending after every
// lock acquisition and count Retries.
//
// It returns whether a match was finalized, plus the ids of affected
// pending queries that could not be retried inside this lane (their
// footprints span shards the lane does not hold) — the caller runs those
// through runDeferred after the lane is released.
func (c *Coordinator) coordinate(p *pending, arrival bool) (matched bool, deferred []uint64) {
	home := &c.shards[p.home].stats
	want := p.shards
	for attempt := 0; ; attempt++ {
		ln := c.lockLane(want)
		if arrival && attempt == 0 {
			c.expireIn(ln, time.Now())
			// Register first: the query's own head is a legitimate cover for
			// its own or recruited queries' constraints, and search excludes
			// members from recruitment by id.
			c.register(p)
		} else if !c.isPending(p.id) {
			// Another lane answered, expired or canceled p while this round
			// was waiting for locks.
			ln.unlock()
			return false, nil
		}
		if !arrival {
			home.Retries.Add(1)
		}
		res, ok, sawForeign := c.search(ln, p)
		if ok {
			installed := c.finalize(res)
			// A successful match may unblock previously parked queries whose
			// constraints refer to the just-installed answers.
			if c.opts.FullRetryOnMatch {
				installed = nil
			}
			deferred = c.retryIn(ln, installed)
			ln.unlock()
			return true, deferred
		}
		if sawForeign && attempt < len(c.shards) {
			wider := c.closure(want)
			if len(wider) > len(want) {
				ln.unlock()
				home.Escalations.Add(1)
				want = wider
				continue
			}
		}
		if arrival {
			home.Parked.Add(1)
		}
		ln.unlock()
		return false, nil
	}
}

// runDeferred drives escalated coordination rounds for queries a lane could
// not retry in place. Each deferred query gets its own round (with its own
// lane and escalation); matches there may defer further queries, which join
// the queue. The queue drains because every matching round removes at least
// one pending query and non-matching rounds add nothing.
func (c *Coordinator) runDeferred(ids []uint64) {
	for qi := 0; qi < len(ids); qi++ {
		v, ok := c.byID.Load(ids[qi])
		if !ok {
			continue // already answered or withdrawn
		}
		_, more := c.coordinate(v.(*pending), false)
		ids = append(ids, more...)
	}
}

// finalize removes matched queries from the pending tables and delivers
// outcomes, returning the tuples the match installed (relation → tuples).
// Caller holds the lane covering every member.
func (c *Coordinator) finalize(res *installResult) map[string][]value.Tuple {
	if c.opts.ValidateMatches {
		c.validateMatch(res)
	}
	c.shards[res.members[0].home].stats.Matches.Add(1)
	var installed map[string][]value.Tuple
	for _, m := range res.members {
		if c.unregister(m.id) == nil {
			continue // defensive: lane coverage should make this impossible
		}
		c.shards[m.home].stats.Answered.Add(1)
		answers := res.perQuery[m.id]
		for _, a := range answers {
			rel := strings.ToLower(a.Relation)
			if installed == nil {
				installed = make(map[string][]value.Tuple, 2)
			}
			installed[rel] = append(installed[rel], a.Tuples...)
		}
		m.handle.deliver(Outcome{
			QueryID:   m.id,
			Answers:   answers,
			MatchSize: len(res.members),
		})
	}
	if installed == nil {
		// Defensive: a nil map means FullRetryOnMatch to retryIn; an
		// (impossible) match that installed nothing must not widen into a
		// full retry pass.
		installed = make(map[string][]value.Tuple)
	}
	return installed
}

// validateMatch asserts the matcher's central invariant on a finished match:
// for every member and every grounding, each positive constraint atom —
// with the member's own delivered bindings substituted in — has a witness in
// the (just-updated) answer relations, and no negative constraint does.
func (c *Coordinator) validateMatch(res *installResult) {
	for _, m := range res.members {
		answers := res.perQuery[m.id]
		for g := 0; g < res.groundings; g++ {
			// Recover this grounding's variable bindings from the member's
			// own delivered head tuples.
			binding := make(map[string]value.Value)
			for hi, h := range m.q.Heads {
				if g >= len(answers[hi].Tuples) {
					continue
				}
				tup := answers[hi].Tuples[g]
				for i, term := range h.Terms {
					if term.IsVar {
						binding[term.Var] = tup[i]
					}
				}
			}
			substitute := func(a eq.Atom) eq.Atom {
				out := eq.Atom{Relation: a.Relation, Display: a.Display, Terms: make([]eq.Term, len(a.Terms))}
				for i, term := range a.Terms {
					if term.IsVar {
						if v, ok := binding[term.Var]; ok {
							out.Terms[i] = eq.ConstTerm(v)
							continue
						}
					}
					out.Terms[i] = term
				}
				return out
			}
			for _, cons := range m.q.Constraints {
				if len(c.store.Matching(substitute(cons))) == 0 {
					panic(fmt.Sprintf("coord: INVARIANT VIOLATION: q%d delivered but constraint %s unsatisfied (grounding %d)",
						m.id, substitute(cons), g))
				}
			}
			for _, neg := range m.q.NegConstraints {
				if len(c.store.Matching(substitute(neg))) > 0 {
					panic(fmt.Sprintf("coord: INVARIANT VIOLATION: q%d delivered but exclusion %s violated (grounding %d)",
						m.id, substitute(neg), g))
				}
			}
		}
	}
}

// affectedBy reports whether any constraint atom of q could unify with one of
// the freshly installed tuples — the trigger condition for a targeted retry.
func affectedBy(q *eq.Query, installed map[string][]value.Tuple) bool {
	for _, cons := range q.Constraints {
		for _, tup := range installed[cons.Relation] {
			if len(tup) != cons.Arity() {
				continue
			}
			ok := true
			for i, t := range cons.Terms {
				if !t.IsVar && !t.Const.Identical(tup[i]) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// Retry re-attempts coordination for every pending query. Call it after base
// table updates that might unblock waiting queries ("a query whose
// postcondition is not satisfied … waits for an opportunity to retry").
// It loops until a full pass makes no progress. Each pending query gets its
// own coordination round on its own lane, so a Retry never stops the world.
func (c *Coordinator) Retry() {
	for {
		progressed := false
		for _, p := range c.allPending() {
			if !c.isPending(p.id) {
				continue // answered earlier in this pass
			}
			matched, deferred := c.coordinate(p, false)
			if matched {
				progressed = true
			}
			c.runDeferred(deferred)
		}
		if !progressed {
			return
		}
	}
}

// retryIn re-attempts pending queries inside a held lane, after a match.
// When installed is non-nil, only queries with a constraint that could unify
// with a freshly installed tuple are tried (targeted retry); tuples
// installed by those retries extend the trigger set, so chains of unblocking
// still cascade. Affected queries whose footprints the lane does not cover
// cannot be searched under these locks; their ids are returned for the
// caller to coordinate on their own lanes after this one is released — the
// cross-shard half of the cascade.
func (c *Coordinator) retryIn(ln *lane, installed map[string][]value.Tuple) (deferred []uint64) {
	deferredSeen := make(map[uint64]bool)
	for {
		progressed := false
		for _, p := range c.allPending() {
			if !c.isPending(p.id) {
				continue // answered earlier in this pass
			}
			if installed != nil && !affectedBy(p.q, installed) {
				continue
			}
			if !ln.covers(p) {
				if !deferredSeen[p.id] {
					deferredSeen[p.id] = true
					deferred = append(deferred, p.id)
				}
				continue
			}
			c.shards[p.home].stats.Retries.Add(1)
			res, ok, sawForeign := c.search(ln, p)
			if ok {
				more := c.finalize(res)
				progressed = true
				if installed != nil {
					for rel, tuples := range more {
						installed[rel] = append(installed[rel], tuples...)
					}
				}
			} else if sawForeign && !deferredSeen[p.id] {
				// The lane-local search skipped cross-shard candidates; give
				// the query an escalated round of its own later.
				deferredSeen[p.id] = true
				deferred = append(deferred, p.id)
			}
		}
		if !progressed {
			return deferred
		}
	}
}

// ExpirePending withdraws every query that has been pending longer than
// Options.PendingTTL, returning how many were expired. It locks every lane
// (in shard-id order); per-shard expiry also runs automatically at the start
// of each arrival round, on the shards that round locks.
func (c *Coordinator) ExpirePending() int {
	if c.opts.PendingTTL <= 0 {
		return 0
	}
	ln := c.lockLane(c.allShardIDs())
	defer ln.unlock()
	return c.expireIn(ln, time.Now())
}

// expireIn cancels over-age pending queries homed on the lane's shards.
// Caller holds the lane. A query is only ever expired by a lane holding its
// home shard, which excludes concurrent matches recruiting it.
func (c *Coordinator) expireIn(ln *lane, now time.Time) int {
	if c.opts.PendingTTL <= 0 {
		return 0
	}
	expired := 0
	for _, id := range ln.shardIDs() {
		sh := c.shards[id]
		for _, p := range sh.reg.homed() {
			if now.Sub(p.submitted) < c.opts.PendingTTL {
				continue
			}
			if c.unregister(p.id) == nil {
				continue
			}
			sh.stats.Expired.Add(1)
			expired++
			p.handle.deliver(Outcome{QueryID: p.id, Canceled: true})
		}
	}
	return expired
}

// Cancel withdraws a pending query. It returns false when the query is not
// pending (already answered, canceled, or unknown). Only the query's home
// shard is locked; lanes that could recruit the query must hold that same
// lock, so a delivered query can never be canceled.
func (c *Coordinator) Cancel(id uint64) bool {
	v, ok := c.byID.Load(id)
	if !ok {
		return false
	}
	p := v.(*pending)
	sh := c.shards[p.home]
	sh.round.Lock()
	defer sh.round.Unlock()
	if c.unregister(id) == nil {
		return false
	}
	sh.stats.Canceled.Add(1)
	p.handle.deliver(Outcome{QueryID: id, Canceled: true})
	return true
}

// PendingCount returns the number of queries currently parked. It sums the
// per-shard home counts (every pending query is homed on exactly one shard),
// staying O(shards) on the per-DML auto-retry check.
func (c *Coordinator) PendingCount() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.reg.size()
	}
	return n
}

// Stats returns a snapshot of the coordination counters, merged across
// shards.
func (c *Coordinator) Stats() StatsSnapshot {
	var out StatsSnapshot
	for _, sh := range c.shards {
		snap := sh.stats.snapshot()
		out.add(snap)
	}
	return out
}

// ShardInfo describes one coordination lane for the admin interface.
type ShardInfo struct {
	ID int
	// Pending counts the queries homed on this shard.
	Pending int
	// Relations lists the answer relations currently present in the shard's
	// candidate index (i.e. with at least one pending head atom).
	Relations []string
	// Stats is the shard's own counter snapshot.
	Stats StatsSnapshot
}

// Shards returns per-lane diagnostics: pending counts, indexed relations and
// per-shard counters.
func (c *Coordinator) Shards() []ShardInfo {
	out := make([]ShardInfo, len(c.shards))
	for i, sh := range c.shards {
		out[i] = ShardInfo{
			ID:        i,
			Pending:   sh.reg.size(),
			Relations: sh.reg.relations(),
			Stats:     sh.stats.snapshot(),
		}
	}
	return out
}
