package coord

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/answers"
	"repro/internal/engine"
	"repro/internal/eq"
	"repro/internal/value"
)

// Options tune the coordination component. The zero value is usable; New
// fills in defaults. The knobs double as the ablation switches indexed in
// DESIGN.md (A1–A3).
type Options struct {
	// MaxMatchSize bounds how many queries one match may join (A2). Matching
	// is NP-hard in general; the bound keeps arrival latency predictable.
	MaxMatchSize int
	// MaxNodes bounds the coverage search per arrival.
	MaxNodes int
	// UseIndex enables the pending-head candidate index (A1); disabled, the
	// matcher scans every pending head.
	UseIndex bool
	// GroundSmallestFirst orders grounding domain sources by ascending
	// candidate count (A3); disabled, sources are used in discovery order.
	GroundSmallestFirst bool
	// FullRetryOnMatch re-attempts EVERY pending query after each successful
	// match (A5 ablation). The default (false) retries only pending queries
	// with a constraint atom that could unify with one of the answer tuples
	// the match just installed — on loaded systems this skips the unrelated
	// noise queries entirely.
	FullRetryOnMatch bool
	// Seed drives the nondeterministic CHOOSE; a fixed seed makes runs
	// reproducible.
	Seed int64
	// PendingTTL, when positive, bounds how long a query may wait for
	// coordination: queries pending longer are withdrawn (Canceled outcome)
	// during the expiry pass run at the start of every coordination round,
	// and by ExpirePending. The paper parks unmatched queries indefinitely;
	// a production deployment needs the lease. Zero disables expiry.
	PendingTTL time.Duration
	// ValidateMatches re-verifies, after every successful match, that each
	// delivered answer's constraints are satisfied by the answer relations —
	// a self-check of the matcher's central invariant (Figure 1b). It panics
	// on violation; enable it in tests and debugging, not in benchmarks.
	ValidateMatches bool
}

func (o Options) withDefaults() Options {
	if o.MaxMatchSize == 0 {
		o.MaxMatchSize = 16
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200_000
	}
	return o
}

// DefaultOptions returns the defaults used by New when no options are given:
// index on, smallest-first grounding, match bound 16.
func DefaultOptions() Options {
	return Options{UseIndex: true, GroundSmallestFirst: true}.withDefaults()
}

// Stats counts coordination activity; all fields are cumulative.
type Stats struct {
	Submitted         atomic.Uint64
	Answered          atomic.Uint64 // queries answered (across all matches)
	Matches           atomic.Uint64 // successful joint executions
	Parked            atomic.Uint64 // arrivals that found no match and waited
	Canceled          atomic.Uint64
	Expired           atomic.Uint64 // pending queries withdrawn by TTL
	Retries           atomic.Uint64 // pending queries re-attempted
	NodesExplored     atomic.Uint64
	GroundingAttempts atomic.Uint64
	GroundingFailures atomic.Uint64
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Submitted, Answered, Matches, Parked, Canceled uint64
	Expired, Retries, NodesExplored                uint64
	GroundingAttempts, GroundingFailures           uint64
}

// Coordinator is the coordination component. One instance serializes all
// coordination rounds — mirroring the paper's design, where the coordination
// logic "runs whenever an entangled query arrives in the system".
type Coordinator struct {
	eng   *engine.Engine
	store *answers.Store
	opts  Options

	// round serializes coordination rounds (arrival processing and retries).
	round sync.Mutex
	reg   *registry

	nextID atomic.Uint64
	stats  Stats

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New builds a Coordinator over an execution engine and an answer store.
func New(eng *engine.Engine, store *answers.Store, opts Options) *Coordinator {
	o := opts.withDefaults()
	return &Coordinator{
		eng:   eng,
		store: store,
		opts:  o,
		reg:   newRegistry(),
		rng:   rand.New(rand.NewSource(o.Seed)),
	}
}

// Store exposes the coordinator's answer store.
func (c *Coordinator) Store() *answers.Store { return c.store }

// Engine exposes the coordinator's execution engine.
func (c *Coordinator) Engine() *engine.Engine { return c.eng }

// shuffle permutes tuples using the coordinator's seeded RNG — the
// nondeterministic choice of §2.1.
func (c *Coordinator) shuffle(tuples []value.Tuple) {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	c.rng.Shuffle(len(tuples), func(i, j int) {
		tuples[i], tuples[j] = tuples[j], tuples[i]
	})
}

// Submit registers a compiled entangled query under an optional owner label
// and immediately runs a coordination round. If the query can be matched now
// (possibly recruiting other pending queries), everyone involved is answered
// atomically and their handles fire; otherwise the query parks in the
// pending tables and the returned handle fires on a later round.
func (c *Coordinator) Submit(q *eq.Query, owner string) (*Handle, error) {
	if q == nil || len(q.Heads) == 0 {
		return nil, fmt.Errorf("coord: empty query")
	}
	// Validate answer-relation names and arities up front so the submitter
	// gets the error, not a forever-pending query.
	for _, rel := range q.AnswerRelations() {
		if !c.store.Is(rel) && c.eng.Catalog().Has(rel) {
			return nil, fmt.Errorf("%w: %q", answers.ErrNameTaken, rel)
		}
		if ar := c.store.Arity(rel); ar >= 0 {
			for _, h := range q.Heads {
				if h.Relation == rel && h.Arity() != ar {
					return nil, fmt.Errorf("%w: relation %s has arity %d, head %s",
						answers.ErrArityMismatch, rel, ar, h)
				}
			}
			for _, a := range append(append([]eq.Atom{}, q.Constraints...), q.NegConstraints...) {
				if a.Relation == rel && a.Arity() != ar {
					return nil, fmt.Errorf("%w: relation %s has arity %d, constraint %s",
						answers.ErrArityMismatch, rel, ar, a)
				}
			}
		}
	}

	p := &pending{
		id:        c.nextID.Add(1),
		q:         q,
		owner:     owner,
		submitted: time.Now(),
		handle:    nil,
	}
	p.handle = &Handle{ID: p.id, ch: make(chan Outcome, 1)}
	c.stats.Submitted.Add(1)

	c.round.Lock()
	defer c.round.Unlock()
	c.expireLocked(time.Now())
	// Register first: the query's own head is a legitimate cover for its own
	// or recruited queries' constraints, and search excludes members from
	// recruitment by id.
	c.reg.add(p)
	if res, ok := c.search(p); ok {
		installed := c.finalize(res)
		// A successful match may unblock previously parked queries whose
		// constraints refer to the just-installed answers.
		if c.opts.FullRetryOnMatch {
			c.retryLocked(nil)
		} else {
			c.retryLocked(installed)
		}
	} else {
		c.stats.Parked.Add(1)
	}
	return p.handle, nil
}

// SubmitSQL compiles and submits entangled SQL.
func (c *Coordinator) SubmitSQL(src, owner string) (*Handle, error) {
	q, err := eq.CompileSQL(src)
	if err != nil {
		return nil, err
	}
	return c.Submit(q, owner)
}

// finalize removes matched queries from the pending tables and delivers
// outcomes, returning the tuples the match installed (relation → tuples).
// Caller holds c.round.
func (c *Coordinator) finalize(res *installResult) map[string][]value.Tuple {
	if c.opts.ValidateMatches {
		c.validateMatch(res)
	}
	c.stats.Matches.Add(1)
	installed := make(map[string][]value.Tuple)
	for _, m := range res.members {
		c.reg.remove(m.id)
		c.stats.Answered.Add(1)
		answers := res.perQuery[m.id]
		for _, a := range answers {
			rel := strings.ToLower(a.Relation)
			installed[rel] = append(installed[rel], a.Tuples...)
		}
		m.handle.ch <- Outcome{
			QueryID:   m.id,
			Answers:   answers,
			MatchSize: len(res.members),
		}
	}
	return installed
}

// validateMatch asserts the matcher's central invariant on a finished match:
// for every member and every grounding, each positive constraint atom —
// with the member's own delivered bindings substituted in — has a witness in
// the (just-updated) answer relations, and no negative constraint does.
func (c *Coordinator) validateMatch(res *installResult) {
	for _, m := range res.members {
		answers := res.perQuery[m.id]
		for g := 0; g < res.groundings; g++ {
			// Recover this grounding's variable bindings from the member's
			// own delivered head tuples.
			binding := make(map[string]value.Value)
			for hi, h := range m.q.Heads {
				if g >= len(answers[hi].Tuples) {
					continue
				}
				tup := answers[hi].Tuples[g]
				for i, term := range h.Terms {
					if term.IsVar {
						binding[term.Var] = tup[i]
					}
				}
			}
			substitute := func(a eq.Atom) eq.Atom {
				out := eq.Atom{Relation: a.Relation, Display: a.Display, Terms: make([]eq.Term, len(a.Terms))}
				for i, term := range a.Terms {
					if term.IsVar {
						if v, ok := binding[term.Var]; ok {
							out.Terms[i] = eq.ConstTerm(v)
							continue
						}
					}
					out.Terms[i] = term
				}
				return out
			}
			for _, cons := range m.q.Constraints {
				if len(c.store.Matching(substitute(cons))) == 0 {
					panic(fmt.Sprintf("coord: INVARIANT VIOLATION: q%d delivered but constraint %s unsatisfied (grounding %d)",
						m.id, substitute(cons), g))
				}
			}
			for _, neg := range m.q.NegConstraints {
				if len(c.store.Matching(substitute(neg))) > 0 {
					panic(fmt.Sprintf("coord: INVARIANT VIOLATION: q%d delivered but exclusion %s violated (grounding %d)",
						m.id, substitute(neg), g))
				}
			}
		}
	}
}

// affectedBy reports whether any constraint atom of q could unify with one of
// the freshly installed tuples — the trigger condition for a targeted retry.
func affectedBy(q *eq.Query, installed map[string][]value.Tuple) bool {
	for _, cons := range q.Constraints {
		for _, tup := range installed[cons.Relation] {
			if len(tup) != cons.Arity() {
				continue
			}
			ok := true
			for i, t := range cons.Terms {
				if !t.IsVar && !t.Const.Identical(tup[i]) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// Retry re-attempts coordination for every pending query. Call it after base
// table updates that might unblock waiting queries ("a query whose
// postcondition is not satisfied … waits for an opportunity to retry").
// It loops until a full pass makes no progress.
func (c *Coordinator) Retry() {
	c.round.Lock()
	defer c.round.Unlock()
	c.retryLocked(nil)
}

// retryLocked re-attempts pending queries. When installed is non-nil, only
// queries with a constraint that could unify with a freshly installed tuple
// are tried (targeted retry); tuples installed by those retries extend the
// trigger set, so chains of unblocking still cascade. Caller holds c.round.
func (c *Coordinator) retryLocked(installed map[string][]value.Tuple) {
	for {
		progressed := false
		for _, p := range c.reg.all() {
			if c.reg.get(p.id) == nil {
				continue // answered earlier in this pass
			}
			if installed != nil && !affectedBy(p.q, installed) {
				continue
			}
			c.stats.Retries.Add(1)
			if res, ok := c.search(p); ok {
				more := c.finalize(res)
				progressed = true
				if installed != nil {
					for rel, tuples := range more {
						installed[rel] = append(installed[rel], tuples...)
					}
				}
			}
		}
		if !progressed {
			return
		}
	}
}

// ExpirePending withdraws every query that has been pending longer than
// Options.PendingTTL, returning how many were expired. It is also run
// automatically at the start of each coordination round.
func (c *Coordinator) ExpirePending() int {
	c.round.Lock()
	defer c.round.Unlock()
	return c.expireLocked(time.Now())
}

// expireLocked cancels over-age pending queries. Caller holds c.round.
func (c *Coordinator) expireLocked(now time.Time) int {
	if c.opts.PendingTTL <= 0 {
		return 0
	}
	expired := 0
	for _, p := range c.reg.all() {
		if now.Sub(p.submitted) < c.opts.PendingTTL {
			continue
		}
		if c.reg.remove(p.id) == nil {
			continue
		}
		c.stats.Expired.Add(1)
		expired++
		p.handle.ch <- Outcome{QueryID: p.id, Canceled: true}
	}
	return expired
}

// Cancel withdraws a pending query. It returns false when the query is not
// pending (already answered, canceled, or unknown).
func (c *Coordinator) Cancel(id uint64) bool {
	c.round.Lock()
	defer c.round.Unlock()
	p := c.reg.remove(id)
	if p == nil {
		return false
	}
	c.stats.Canceled.Add(1)
	p.handle.ch <- Outcome{QueryID: id, Canceled: true}
	return true
}

// PendingCount returns the number of queries currently parked.
func (c *Coordinator) PendingCount() int { return c.reg.size() }

// Stats returns a snapshot of the coordination counters.
func (c *Coordinator) Stats() StatsSnapshot {
	return StatsSnapshot{
		Submitted:         c.stats.Submitted.Load(),
		Answered:          c.stats.Answered.Load(),
		Matches:           c.stats.Matches.Load(),
		Parked:            c.stats.Parked.Load(),
		Canceled:          c.stats.Canceled.Load(),
		Expired:           c.stats.Expired.Load(),
		Retries:           c.stats.Retries.Load(),
		NodesExplored:     c.stats.NodesExplored.Load(),
		GroundingAttempts: c.stats.GroundingAttempts.Load(),
		GroundingFailures: c.stats.GroundingFailures.Load(),
	}
}
