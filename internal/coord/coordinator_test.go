package coord

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/answers"
	"repro/internal/engine"
	"repro/internal/eq"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// newSystem builds a coordinator over the Figure 1(a) database.
func newSystem(t *testing.T, opts Options) (*Coordinator, *engine.Engine) {
	t.Helper()
	cat := storage.NewCatalog()
	eng := engine.New(txn.NewManager(cat))
	script := `
		CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno));
		CREATE TABLE Hotels (hno INT, city STRING, PRIMARY KEY (hno));
		INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), (136, 'Rome');
		INSERT INTO Hotels VALUES (7, 'Paris'), (8, 'Paris'), (9, 'Rome');
	`
	stmts, err := sql.ParseAll(script)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		if _, err := eng.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	return New(eng, answers.NewStore(cat), opts), eng
}

func pairQuery(self, friend string) string {
	return fmt.Sprintf(`SELECT '%s', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('%s', fno) IN ANSWER Reservation
		CHOOSE 1`, self, friend)
}

func waitOutcome(t *testing.T, h *Handle) Outcome {
	t.Helper()
	timer := time.NewTimer(2 * time.Second)
	defer timer.Stop()
	done := make(chan struct{})
	go func() { <-timer.C; close(done) }()
	out, ok := h.Wait(done)
	if !ok {
		t.Fatalf("query q%d not answered within timeout", h.ID)
	}
	return out
}

// TestFigure1 reproduces Figure 1 end to end: Kramer submits, waits; Jerry
// submits the symmetric query; both receive the SAME flight number, and it is
// one of the Paris flights.
func TestFigure1(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())

	hK, err := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "kramer")
	if err != nil {
		t.Fatal(err)
	}
	// Kramer alone cannot be answered: parked.
	if _, ok := hK.TryOutcome(); ok {
		t.Fatal("Kramer answered without Jerry")
	}
	if c.PendingCount() != 1 {
		t.Fatalf("pending = %d", c.PendingCount())
	}

	hJ, err := c.SubmitSQL(pairQuery("Jerry", "Kramer"), "jerry")
	if err != nil {
		t.Fatal(err)
	}
	outK, outJ := waitOutcome(t, hK), waitOutcome(t, hJ)

	if outK.MatchSize != 2 || outJ.MatchSize != 2 {
		t.Errorf("match sizes = %d, %d", outK.MatchSize, outJ.MatchSize)
	}
	kTup := outK.Answers[0].Tuples[0]
	jTup := outJ.Answers[0].Tuples[0]
	if kTup[0].Str() != "Kramer" || jTup[0].Str() != "Jerry" {
		t.Errorf("travelers: %v, %v", kTup, jTup)
	}
	kf, jf := kTup[1].Int(), jTup[1].Int()
	if kf != jf {
		t.Errorf("flights differ: Kramer %d, Jerry %d — coordination failed", kf, jf)
	}
	if kf != 122 && kf != 123 && kf != 134 {
		t.Errorf("flight %d is not a Paris flight", kf)
	}
	// Answer relation holds both tuples and is queryable as a table.
	if got := len(c.Store().Tuples("Reservation")); got != 2 {
		t.Errorf("Reservation has %d tuples", got)
	}
	if c.PendingCount() != 0 {
		t.Error("queries still pending after match")
	}
	s := c.Stats()
	if s.Matches != 1 || s.Answered != 2 || s.Parked != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestFigure1Nondeterminism: across seeds, both 122 and 123 (and 134) must be
// achievable — "the system nondeterministically chooses" (§2.1).
func TestFigure1Nondeterminism(t *testing.T) {
	got := make(map[int64]bool)
	for seed := int64(0); seed < 20; seed++ {
		c, _ := newSystem(t, Options{Seed: seed, UseIndex: true, GroundSmallestFirst: true})
		hK, err := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.SubmitSQL(pairQuery("Jerry", "Kramer"), ""); err != nil {
			t.Fatal(err)
		}
		out := waitOutcome(t, hK)
		got[out.Answers[0].Tuples[0][1].Int()] = true
	}
	if len(got) < 2 {
		t.Errorf("choice not nondeterministic across seeds: %v", got)
	}
	for f := range got {
		if f != 122 && f != 123 && f != 134 {
			t.Errorf("non-Paris flight chosen: %d", f)
		}
	}
}

// TestSameSeedDeterministic: identical seeds give identical choices.
func TestSameSeedDeterministic(t *testing.T) {
	run := func() int64 {
		c, _ := newSystem(t, Options{Seed: 42, UseIndex: true, GroundSmallestFirst: true})
		hK, _ := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
		c.SubmitSQL(pairQuery("Jerry", "Kramer"), "")
		return waitOutcome(t, hK).Answers[0].Tuples[0][1].Int()
	}
	if run() != run() {
		t.Error("same seed produced different choices")
	}
}

// TestConstraintSatisfiedByInstalledAnswer: after Kramer & Jerry match,
// Elaine can entangle with Kramer's already-installed answer.
func TestConstraintSatisfiedByInstalledAnswer(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	hK, _ := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
	c.SubmitSQL(pairQuery("Jerry", "Kramer"), "")
	flight := waitOutcome(t, hK).Answers[0].Tuples[0][1].Int()

	hE, err := c.SubmitSQL(pairQuery("Elaine", "Kramer"), "elaine")
	if err != nil {
		t.Fatal(err)
	}
	out := waitOutcome(t, hE)
	if out.MatchSize != 1 {
		t.Errorf("Elaine should match alone against installed answers, size=%d", out.MatchSize)
	}
	if got := out.Answers[0].Tuples[0][1].Int(); got != flight {
		t.Errorf("Elaine got flight %d, friends are on %d", got, flight)
	}
}

// TestUnsatisfiableConstraintStaysPending: a constraint about a traveler who
// never shows up parks forever (until cancel).
func TestUnsatisfiableConstraintStaysPending(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	h, err := c.SubmitSQL(pairQuery("Kramer", "Godot"), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.TryOutcome(); ok {
		t.Fatal("answered without partner")
	}
	if !c.Cancel(h.ID) {
		t.Fatal("cancel failed")
	}
	out, ok := h.TryOutcome()
	if !ok || !out.Canceled {
		t.Errorf("outcome = %+v, %v", out, ok)
	}
	if c.Cancel(h.ID) {
		t.Error("double cancel succeeded")
	}
	if c.Stats().Canceled != 1 {
		t.Error("cancel not counted")
	}
}

// TestGroundingFailureNoParisFlights: constraints match but the DB offers no
// satisfying flight — both queries stay pending, nothing is installed.
func TestGroundingFailureKeepsPending(t *testing.T) {
	c, eng := newSystem(t, DefaultOptions())
	if _, err := eng.ExecuteSQL("DELETE FROM Flights WHERE dest = 'Paris'"); err != nil {
		t.Fatal(err)
	}
	hK, _ := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
	hJ, _ := c.SubmitSQL(pairQuery("Jerry", "Kramer"), "")
	if _, ok := hK.TryOutcome(); ok {
		t.Fatal("answered with empty candidate set")
	}
	if c.PendingCount() != 2 {
		t.Errorf("pending = %d", c.PendingCount())
	}
	if len(c.Store().Tuples("Reservation")) != 0 {
		t.Error("partial answers installed")
	}

	// Now a Paris flight appears; Retry (the update hook) unblocks them.
	if _, err := eng.ExecuteSQL("INSERT INTO Flights VALUES (200, 'Paris')"); err != nil {
		t.Fatal(err)
	}
	c.Retry()
	outK, outJ := waitOutcome(t, hK), waitOutcome(t, hJ)
	if outK.Answers[0].Tuples[0][1].Int() != 200 || outJ.Answers[0].Tuples[0][1].Int() != 200 {
		t.Errorf("answers: %v, %v", outK.Answers, outJ.Answers)
	}
}

// TestGroupOfFour reproduces §3.1 "Group flight booking": four friends, each
// constraining on the other three; all four must land on one flight.
func TestGroupOfFour(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	friends := []string{"Jerry", "Kramer", "Elaine", "George"}
	handles := make([]*Handle, len(friends))
	for i, self := range friends {
		var cons []string
		for j, f := range friends {
			if i != j {
				cons = append(cons, fmt.Sprintf("('%s', fno) IN ANSWER Reservation", f))
			}
		}
		src := fmt.Sprintf(`SELECT '%s', fno INTO ANSWER Reservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') AND %s
			CHOOSE 1`, self, strings.Join(cons, " AND "))
		h, err := c.SubmitSQL(src, self)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		if i < len(friends)-1 {
			if _, ok := h.TryOutcome(); ok {
				t.Fatalf("%s answered before the group was complete", self)
			}
		}
	}
	flights := make(map[int64]bool)
	for i, h := range handles {
		out := waitOutcome(t, h)
		if out.MatchSize != 4 {
			t.Errorf("%s match size = %d", friends[i], out.MatchSize)
		}
		flights[out.Answers[0].Tuples[0][1].Int()] = true
	}
	if len(flights) != 1 {
		t.Errorf("group split across flights: %v", flights)
	}
}

// TestFlightAndHotel reproduces §3.1 "Book a flight and a hotel with a
// friend": one entangled query with two answer atoms.
func TestFlightAndHotel(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	mk := func(self, friend string) string {
		return fmt.Sprintf(`SELECT ('%[1]s', fno) INTO ANSWER Reservation, ('%[1]s', hno) INTO ANSWER HotelReservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
			AND hno IN (SELECT hno FROM Hotels WHERE city='Paris')
			AND ('%[2]s', fno) IN ANSWER Reservation
			AND ('%[2]s', hno) IN ANSWER HotelReservation
			CHOOSE 1`, self, friend)
	}
	hJ, err := c.SubmitSQL(mk("Jerry", "Kramer"), "jerry")
	if err != nil {
		t.Fatal(err)
	}
	hK, err := c.SubmitSQL(mk("Kramer", "Jerry"), "kramer")
	if err != nil {
		t.Fatal(err)
	}
	outJ, outK := waitOutcome(t, hJ), waitOutcome(t, hK)
	if len(outJ.Answers) != 2 || len(outK.Answers) != 2 {
		t.Fatalf("answers: %v / %v", outJ.Answers, outK.Answers)
	}
	if outJ.Answers[0].Tuples[0][1].Int() != outK.Answers[0].Tuples[0][1].Int() {
		t.Error("different flights")
	}
	if outJ.Answers[1].Tuples[0][1].Int() != outK.Answers[1].Tuples[0][1].Int() {
		t.Error("different hotels")
	}
	if outJ.Answers[0].Relation != "Reservation" || outJ.Answers[1].Relation != "HotelReservation" {
		t.Errorf("relations: %v", outJ.Answers)
	}
}

// TestAdHocOverlap reproduces §3.1 "Ad-hoc examples": Jerry↔Kramer coordinate
// on flights only; Kramer↔Elaine on flights and hotels.
func TestAdHocOverlap(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	jerry := fmt.Sprintf(`SELECT 'Jerry', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1`)
	kramer := `SELECT ('Kramer', fno) INTO ANSWER Reservation, ('Kramer', hno) INTO ANSWER HotelReservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND hno IN (SELECT hno FROM Hotels WHERE city='Paris')
		AND ('Jerry', fno) IN ANSWER Reservation
		AND ('Elaine', hno) IN ANSWER HotelReservation
		CHOOSE 1`
	elaine := `SELECT 'Elaine', hno INTO ANSWER HotelReservation
		WHERE hno IN (SELECT hno FROM Hotels WHERE city='Paris')
		AND ('Kramer', hno) IN ANSWER HotelReservation CHOOSE 1`

	hJ, err := c.SubmitSQL(jerry, "jerry")
	if err != nil {
		t.Fatal(err)
	}
	hK, err := c.SubmitSQL(kramer, "kramer")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hK.TryOutcome(); ok {
		t.Fatal("Kramer answered before Elaine arrived")
	}
	hE, err := c.SubmitSQL(elaine, "elaine")
	if err != nil {
		t.Fatal(err)
	}
	outJ, outK, outE := waitOutcome(t, hJ), waitOutcome(t, hK), waitOutcome(t, hE)
	if outK.MatchSize != 3 {
		t.Errorf("Kramer match size = %d, want 3", outK.MatchSize)
	}
	if outJ.Answers[0].Tuples[0][1].Int() != outK.Answers[0].Tuples[0][1].Int() {
		t.Error("Jerry and Kramer on different flights")
	}
	if outE.Answers[0].Tuples[0][1].Int() != outK.Answers[1].Tuples[0][1].Int() {
		t.Error("Elaine and Kramer in different hotels")
	}
}

// TestMultipleSimultaneousPairs reproduces §3.1 "Multiple simultaneous
// bookings": concurrent pairs must each coordinate internally.
func TestMultipleSimultaneousPairs(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	const pairs = 20
	type res struct {
		pair   int
		flight int64
	}
	results := make(chan res, 2*pairs)
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		for side := 0; side < 2; side++ {
			wg.Add(1)
			go func(p, side int) {
				defer wg.Done()
				self := fmt.Sprintf("u%d_%d", p, side)
				friend := fmt.Sprintf("u%d_%d", p, 1-side)
				h, err := c.SubmitSQL(pairQuery(self, friend), self)
				if err != nil {
					t.Error(err)
					return
				}
				out := waitOutcome(t, h)
				results <- res{pair: p, flight: out.Answers[0].Tuples[0][1].Int()}
			}(p, side)
		}
	}
	wg.Wait()
	close(results)
	flights := make(map[int][]int64)
	for r := range results {
		flights[r.pair] = append(flights[r.pair], r.flight)
	}
	if len(flights) != pairs {
		t.Fatalf("answered pairs = %d", len(flights))
	}
	for p, fs := range flights {
		if len(fs) != 2 || fs[0] != fs[1] {
			t.Errorf("pair %d flights = %v", p, fs)
		}
	}
	if c.PendingCount() != 0 {
		t.Errorf("pending = %d after all pairs matched", c.PendingCount())
	}
}

// TestChooseN: CHOOSE 2 delivers two distinct coordinated answers.
func TestChooseN(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	mk := func(self, friend string) string {
		return fmt.Sprintf(`SELECT '%s', fno INTO ANSWER Reservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
			AND ('%s', fno) IN ANSWER Reservation CHOOSE 2`, self, friend)
	}
	hK, _ := c.SubmitSQL(mk("Kramer", "Jerry"), "")
	hJ, _ := c.SubmitSQL(mk("Jerry", "Kramer"), "")
	outK, outJ := waitOutcome(t, hK), waitOutcome(t, hJ)
	if len(outK.Answers[0].Tuples) != 2 || len(outJ.Answers[0].Tuples) != 2 {
		t.Fatalf("CHOOSE 2: got %d/%d tuples", len(outK.Answers[0].Tuples), len(outJ.Answers[0].Tuples))
	}
	if outK.Answers[0].Tuples[0][1].Int() == outK.Answers[0].Tuples[1][1].Int() {
		t.Error("CHOOSE 2 delivered duplicate answers")
	}
	for i := 0; i < 2; i++ {
		if outK.Answers[0].Tuples[i][1].Int() != outJ.Answers[0].Tuples[i][1].Int() {
			t.Errorf("grounding %d differs between partners", i)
		}
	}
}

// TestChooseExceedsCandidates: CHOOSE 5 with only 3 Paris flights delivers
// all 3 distinct groundings rather than failing.
func TestChooseExceedsCandidates(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	mk := func(self, friend string) string {
		return fmt.Sprintf(`SELECT '%s', fno INTO ANSWER Reservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
			AND ('%s', fno) IN ANSWER Reservation CHOOSE 5`, self, friend)
	}
	hK, _ := c.SubmitSQL(mk("Kramer", "Jerry"), "")
	hJ, _ := c.SubmitSQL(mk("Jerry", "Kramer"), "")
	outK, outJ := waitOutcome(t, hK), waitOutcome(t, hJ)
	if len(outK.Answers[0].Tuples) != 3 || len(outJ.Answers[0].Tuples) != 3 {
		t.Fatalf("got %d/%d tuples, want all 3 distinct groundings",
			len(outK.Answers[0].Tuples), len(outJ.Answers[0].Tuples))
	}
	seen := map[int64]bool{}
	for _, tup := range outK.Answers[0].Tuples {
		seen[tup[1].Int()] = true
	}
	if len(seen) != 3 {
		t.Errorf("groundings not distinct: %v", seen)
	}
}

// TestChooseMismatchTakesMin: CHOOSE 3 meets CHOOSE 1 → 1 grounding.
func TestChooseMismatchTakesMin(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	k := `SELECT 'Kramer', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 3`
	j := `SELECT 'Jerry', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1`
	hK, _ := c.SubmitSQL(k, "")
	hJ, _ := c.SubmitSQL(j, "")
	outK, outJ := waitOutcome(t, hK), waitOutcome(t, hJ)
	if len(outK.Answers[0].Tuples) != 1 || len(outJ.Answers[0].Tuples) != 1 {
		t.Errorf("min(CHOOSE) violated: %d/%d", len(outK.Answers[0].Tuples), len(outJ.Answers[0].Tuples))
	}
}

// TestSelfSatisfiableAnswersImmediately: a reflexive query needs no partner.
func TestSelfSatisfiableAnswersImmediately(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	src := `SELECT 'Solo', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Rome')
		AND ('Solo', fno) IN ANSWER Reservation CHOOSE 1`
	h, err := c.SubmitSQL(src, "")
	if err != nil {
		t.Fatal(err)
	}
	out, ok := h.TryOutcome()
	if !ok {
		t.Fatal("self-satisfiable query not answered immediately")
	}
	if out.Answers[0].Tuples[0][1].Int() != 136 {
		t.Errorf("answer = %v", out.Answers)
	}
}

// TestNoConstraintQuery: an entangled query without answer constraints is
// answered immediately (degenerate coordination).
func TestNoConstraintQuery(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	h, err := c.SubmitSQL(`SELECT 'Solo', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1`, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.TryOutcome(); !ok {
		t.Fatal("constraint-free query not answered immediately")
	}
}

// TestNegativeConstraint: NOT IN ANSWER excludes coordination with a rival's
// choice.
func TestNegativeConstraint(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	// Newman books flight 122 directly (no constraints).
	hN, err := c.SubmitSQL(`SELECT 'Newman', fno INTO ANSWER Reservation
		WHERE fno = 122 CHOOSE 1`, "")
	if err != nil {
		t.Fatal(err)
	}
	waitOutcome(t, hN)
	// Jerry insists on a Paris flight Newman is NOT on.
	hJ, err := c.SubmitSQL(`SELECT 'Jerry', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Newman', fno) NOT IN ANSWER Reservation CHOOSE 1`, "")
	if err != nil {
		t.Fatal(err)
	}
	out := waitOutcome(t, hJ)
	if f := out.Answers[0].Tuples[0][1].Int(); f == 122 {
		t.Error("Jerry landed on Newman's flight despite NOT IN ANSWER")
	}
}

// TestArityMismatchRejectedAtSubmit guards the pre-check in Submit.
func TestArityMismatchRejectedAtSubmit(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	h, _ := c.SubmitSQL(`SELECT 'Solo', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1`, "")
	waitOutcome(t, h)
	// Reservation now has arity 2; a 3-ary head must be rejected.
	_, err := c.SubmitSQL(`SELECT 'X', fno, 9 INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1`, "")
	if err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

// TestAnswerNameCollisionRejectedAtSubmit: an answer relation may not shadow
// a base table.
func TestAnswerNameCollisionRejectedAtSubmit(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	_, err := c.SubmitSQL(`SELECT 'K', fno INTO ANSWER Flights
		WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1`, "")
	if err == nil {
		t.Fatal("answer relation shadowing base table accepted")
	}
}

// TestFIFOPartnerPreference: when two pending queries could both cover a new
// arrival's constraint, the earlier-submitted one is matched (candidate
// ordering is by submission id).
func TestFIFOPartnerPreference(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	// Two identical offers from Jerry-like users (both satisfy ('J', fno)).
	hFirst, err := c.SubmitSQL(`SELECT 'J', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('K', fno) IN ANSWER Reservation CHOOSE 1`, "first")
	if err != nil {
		t.Fatal(err)
	}
	hSecond, err := c.SubmitSQL(`SELECT 'J', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('K', fno) IN ANSWER Reservation CHOOSE 1`, "second")
	if err != nil {
		t.Fatal(err)
	}
	// K arrives. The FIRST J offer joins K's match (candidate order is by
	// submission id). The second J is then unblocked too — its constraint
	// ('K', fno) is satisfied by K's freshly installed answer tuple, which
	// the shared answer relation makes visible to everyone (§2.1).
	hK, err := c.SubmitSQL(pairQuery("K", "J"), "k")
	if err != nil {
		t.Fatal(err)
	}
	outK := waitOutcome(t, hK)
	outFirst, ok := hFirst.TryOutcome()
	if !ok {
		t.Fatal("earlier-submitted partner was not preferred")
	}
	if outFirst.MatchSize != 2 {
		t.Errorf("first J match size = %d, want 2 (joint with K)", outFirst.MatchSize)
	}
	outSecond, ok := hSecond.TryOutcome()
	if !ok {
		t.Fatal("second J not unblocked by the installed answer")
	}
	if outSecond.MatchSize != 1 {
		t.Errorf("second J match size = %d, want 1 (rides the installed answer)", outSecond.MatchSize)
	}
	fK := outK.Answers[0].Tuples[0][1].Int()
	if outFirst.Answers[0].Tuples[0][1].Int() != fK || outSecond.Answers[0].Tuples[0][1].Int() != fK {
		t.Error("flights diverge across the cascade")
	}
	if c.PendingCount() != 0 {
		t.Errorf("pending = %d", c.PendingCount())
	}
}

// TestCompileErrorsSurfaceThroughSubmitSQL.
func TestCompileErrorsSurfaceThroughSubmitSQL(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	if _, err := c.SubmitSQL("SELECT 'K', fno INTO ANSWER R WHERE ('J', fno) IN ANSWER R", ""); err == nil {
		t.Error("unsafe query accepted")
	}
	if _, err := c.SubmitSQL("SELECT fno FROM Flights", ""); err == nil {
		t.Error("plain select accepted as entangled")
	}
}

// TestAdminIntrospection exercises Pending, EntanglementGraph and DumpState.
func TestAdminIntrospection(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	c.SubmitSQL(pairQuery("Kramer", "Jerry"), "kramer")
	c.SubmitSQL(pairQuery("Elaine", "George"), "elaine")

	pend := c.Pending()
	if len(pend) != 2 {
		t.Fatalf("pending = %v", pend)
	}
	if pend[0].Owner != "kramer" || len(pend[0].Relations) != 1 {
		t.Errorf("pending[0] = %+v", pend[0])
	}
	if !strings.Contains(pend[0].Logic, "Reservation('Kramer', fno)") {
		t.Errorf("logic = %q", pend[0].Logic)
	}

	// Kramer's constraint mentions Jerry; Elaine's mentions George — no
	// cross edges between these two pending queries.
	if edges := c.EntanglementGraph(); len(edges) != 0 {
		t.Errorf("unexpected edges: %v", edges)
	}

	// Add George: Elaine→George edge appears (and George→Elaine).
	c.SubmitSQL(pairQuery("George", "Harold"), "george")
	edges := c.EntanglementGraph()
	found := false
	for _, e := range edges {
		if e.From == pend[1].ID {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an Elaine→George edge, got %v", edges)
	}

	dump := c.DumpState()
	for _, want := range []string{"Pending entangled queries (3)", "Entanglement graph", "Answer relations", "Stats", "MVCC", "watermark="} {
		if !strings.Contains(dump, want) {
			t.Errorf("DumpState missing %q", want)
		}
	}
}

// TestMatchBoundPreventsOversizedGroups: a 5-way cycle with MaxMatchSize 4
// cannot match; raising the bound allows it.
func TestMatchBoundPreventsOversizedGroups(t *testing.T) {
	mkGroup := func(c *Coordinator, n int) []*Handle {
		handles := make([]*Handle, n)
		for i := 0; i < n; i++ {
			self := fmt.Sprintf("g%d", i)
			next := fmt.Sprintf("g%d", (i+1)%n)
			src := fmt.Sprintf(`SELECT '%s', fno INTO ANSWER Reservation
				WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
				AND ('%s', fno) IN ANSWER Reservation CHOOSE 1`, self, next)
			h, err := c.SubmitSQL(src, self)
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
		}
		return handles
	}

	cSmall, _ := newSystem(t, Options{MaxMatchSize: 4, UseIndex: true, GroundSmallestFirst: true})
	hs := mkGroup(cSmall, 5)
	if _, ok := hs[4].TryOutcome(); ok {
		t.Fatal("5-cycle matched under MaxMatchSize=4")
	}
	if cSmall.PendingCount() != 5 {
		t.Errorf("pending = %d", cSmall.PendingCount())
	}

	cBig, _ := newSystem(t, Options{MaxMatchSize: 8, UseIndex: true, GroundSmallestFirst: true})
	hs = mkGroup(cBig, 5)
	for _, h := range hs {
		waitOutcome(t, h)
	}
}

// TestIndexAndLinearAgree: the A1 ablation must not change outcomes.
func TestIndexAndLinearAgree(t *testing.T) {
	for _, useIndex := range []bool{true, false} {
		c, _ := newSystem(t, Options{UseIndex: useIndex, GroundSmallestFirst: true, Seed: 7})
		hK, _ := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
		c.SubmitSQL(pairQuery("Jerry", "Kramer"), "")
		out := waitOutcome(t, hK)
		if out.MatchSize != 2 {
			t.Errorf("useIndex=%v: match size %d", useIndex, out.MatchSize)
		}
	}
}

// TestSubmitCompiledQuery uses the Compile+Submit path directly.
func TestSubmitCompiledQuery(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	q, err := eq.CompileSQL(pairQuery("Kramer", "Jerry"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(q, "kramer"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(nil, ""); err == nil {
		t.Error("nil query accepted")
	}
}

// TestRepeatedVariableInConstraint: R(x, x) style constraints bind both
// positions to one value.
func TestRepeatedVariableAcrossAtoms(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	// One traveler requires flight == hotel number (only sensible with the
	// right data): insert hotel 122 to make it satisfiable.
	if _, err := c.Engine().ExecuteSQL("INSERT INTO Hotels VALUES (122, 'Paris')"); err != nil {
		t.Fatal(err)
	}
	src := `SELECT ('Same', n) INTO ANSWER Reservation, ('Same', n) INTO ANSWER HotelReservation
		WHERE n IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND n IN (SELECT hno FROM Hotels WHERE city='Paris') CHOOSE 1`
	h, err := c.SubmitSQL(src, "")
	if err != nil {
		t.Fatal(err)
	}
	out := waitOutcome(t, h)
	if out.Answers[0].Tuples[0][1].Int() != 122 || out.Answers[1].Tuples[0][1].Int() != 122 {
		t.Errorf("answers = %v", out.Answers)
	}
}

func TestPendingCountAndStats(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	c.SubmitSQL(pairQuery("A", "B"), "")
	c.SubmitSQL(pairQuery("C", "D"), "")
	if c.PendingCount() != 2 {
		t.Errorf("pending = %d", c.PendingCount())
	}
	s := c.Stats()
	if s.Submitted != 2 || s.Parked != 2 || s.Matches != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestAnswerTuplesQueryableViaSQL: installed answers are plain tables, as in
// the demo where the SQL CLI can inspect them.
func TestAnswerTuplesQueryableViaSQL(t *testing.T) {
	c, eng := newSystem(t, DefaultOptions())
	hK, _ := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
	c.SubmitSQL(pairQuery("Jerry", "Kramer"), "")
	waitOutcome(t, hK)
	res, err := eng.ExecuteSQL("SELECT * FROM Reservation ORDER BY a1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "Jerry" || res.Rows[1][0].Str() != "Kramer" {
		t.Errorf("rows = %v", res.Rows)
	}
	if !res.Rows[0][1].Equal(value.NewTuple(res.Rows[1][1])[0]) {
		t.Error("flight numbers differ")
	}
}
