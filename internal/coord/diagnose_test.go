package coord

import (
	"strings"
	"testing"
)

func TestDiagnoseNoPartner(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	h, _ := c.SubmitSQL(pairQuery("Kramer", "Godot"), "")
	d, ok := c.Diagnose(h.ID)
	if !ok {
		t.Fatal("pending query not diagnosable")
	}
	if len(d.PerConstraint) != 1 {
		t.Fatalf("diag = %+v", d)
	}
	if d.PerConstraint[0].PendingHeads != 0 || d.PerConstraint[0].InstalledHits != 0 {
		t.Errorf("census = %+v", d.PerConstraint[0])
	}
	if !strings.Contains(d.Summary, "no candidate cover") {
		t.Errorf("summary = %q", d.Summary)
	}
}

func TestDiagnoseIncompatibleFilters(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	// Partners whose candidate sets are disjoint (day 10 only vs day 12 only
	// → flights 122 vs 134).
	k := `SELECT 'K', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris' AND fno < 123)
		AND ('J', fno) IN ANSWER Reservation CHOOSE 1`
	j := `SELECT 'J', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris' AND fno > 130)
		AND ('K', fno) IN ANSWER Reservation CHOOSE 1`
	hK, _ := c.SubmitSQL(k, "")
	c.SubmitSQL(j, "") //nolint:errcheck
	d, ok := c.Diagnose(hK.ID)
	if !ok {
		t.Fatal("not diagnosable")
	}
	if d.PerConstraint[0].PendingHeads == 0 {
		t.Error("partner head should be a candidate")
	}
	if !strings.Contains(d.Summary, "no joint match grounded") {
		t.Errorf("summary = %q", d.Summary)
	}
}

func TestDiagnoseGroundingOnlyQuery(t *testing.T) {
	c, eng := newSystem(t, DefaultOptions())
	eng.ExecuteSQL("DELETE FROM Flights") //nolint:errcheck
	h, _ := c.SubmitSQL(`SELECT 'Solo', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1`, "")
	d, ok := c.Diagnose(h.ID)
	if !ok {
		t.Fatal("not diagnosable")
	}
	if !strings.Contains(d.Summary, "grounding failed") {
		t.Errorf("summary = %q", d.Summary)
	}
}

func TestDiagnoseUnknownOrAnswered(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	if _, ok := c.Diagnose(999); ok {
		t.Error("unknown id diagnosable")
	}
	hK, _ := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
	c.SubmitSQL(pairQuery("Jerry", "Kramer"), "") //nolint:errcheck
	waitOutcome(t, hK)
	if _, ok := c.Diagnose(hK.ID); ok {
		t.Error("answered query still diagnosable")
	}
}

// TestMatchMinimality: the matcher prefers the smallest closed match — a
// satisfied pair never drags in a compatible third query.
func TestMatchMinimality(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	// A third party offering the same head shape as Jerry's.
	hX, _ := c.SubmitSQL(`SELECT 'J', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('SomeoneElse', fno) IN ANSWER Reservation CHOOSE 1`, "")
	hK, _ := c.SubmitSQL(pairQuery("K", "J"), "")
	hJ, _ := c.SubmitSQL(pairQuery("J", "K"), "")
	outK := waitOutcome(t, hK)
	waitOutcome(t, hJ)
	if outK.MatchSize != 2 {
		t.Errorf("match size = %d, want 2 (minimal)", outK.MatchSize)
	}
	if _, ok := hX.TryOutcome(); ok {
		t.Error("unrelated query swept into the match")
	}
}
