package coord

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBaseTableDroppedWhilePending: dropping the table a pending query's
// generator reads must not crash the coordinator; the pair simply cannot
// ground and stays pending, and recreating the table unblocks it via Retry.
func TestBaseTableDroppedWhilePending(t *testing.T) {
	c, eng := newSystem(t, DefaultOptions())
	hK, err := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecuteSQL("DROP TABLE Flights"); err != nil {
		t.Fatal(err)
	}
	// Partner arrival: coverage succeeds, grounding fails (no table).
	hJ, err := c.SubmitSQL(pairQuery("Jerry", "Kramer"), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hK.TryOutcome(); ok {
		t.Fatal("answered with the Flights table dropped")
	}
	if c.PendingCount() != 2 {
		t.Errorf("pending = %d", c.PendingCount())
	}
	// Bring the world back; Retry unblocks.
	if _, err := eng.ExecuteSQL("CREATE TABLE Flights (fno INT, dest STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecuteSQL("INSERT INTO Flights VALUES (900, 'Paris')"); err != nil {
		t.Fatal(err)
	}
	c.Retry()
	outK, outJ := waitOutcome(t, hK), waitOutcome(t, hJ)
	if outK.Answers[0].Tuples[0][1].Int() != 900 || outJ.Answers[0].Tuples[0][1].Int() != 900 {
		t.Errorf("answers: %v / %v", outK.Answers, outJ.Answers)
	}
}

// TestConcurrentCancelAndSubmit: canceling from other goroutines while
// arrivals trigger matches must neither deadlock nor double-deliver.
func TestConcurrentCancelAndSubmit(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	const n = 30
	var wg sync.WaitGroup
	deliveries := make(chan Outcome, n*2)

	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			self := fmt.Sprintf("x%d", i)
			ghost := fmt.Sprintf("ghost%d", i)
			h, err := c.SubmitSQL(pairQuery(self, ghost), self)
			if err != nil {
				t.Error(err)
				return
			}
			// Half are canceled concurrently, half wait forever.
			if i%2 == 0 {
				c.Cancel(h.ID)
			}
			if out, ok := h.TryOutcome(); ok {
				deliveries <- out
			}
		}(i)
	}
	wg.Wait()
	close(deliveries)
	for out := range deliveries {
		if !out.Canceled {
			t.Errorf("unexpected non-cancel outcome %+v", out)
		}
	}
	if got := c.PendingCount(); got != n/2 {
		t.Errorf("pending = %d, want %d", got, n/2)
	}
	s := c.Stats()
	if s.Canceled != n/2 {
		t.Errorf("canceled = %d", s.Canceled)
	}
}

// TestCancelRaceWithMatch: a cancel racing the partner's arrival resolves to
// exactly one outcome — either canceled or matched, never both/neither.
func TestCancelRaceWithMatch(t *testing.T) {
	for round := 0; round < 20; round++ {
		c, _ := newSystem(t, DefaultOptions())
		hK, err := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			c.Cancel(hK.ID)
		}()
		var hJ *Handle
		var errJ error
		go func() {
			defer wg.Done()
			hJ, errJ = c.SubmitSQL(pairQuery("Jerry", "Kramer"), "")
		}()
		wg.Wait()
		if errJ != nil {
			t.Fatal(errJ)
		}
		outK, ok := hK.TryOutcome()
		if !ok {
			t.Fatal("Kramer got no outcome at all")
		}
		if outK.Canceled {
			// Jerry must still be pending (his partner vanished).
			if _, ok := hJ.TryOutcome(); ok {
				t.Error("Jerry answered although Kramer was canceled first")
			}
		} else {
			// Matched: Jerry must be answered too, and the flights agree.
			outJ, ok := hJ.TryOutcome()
			if !ok {
				t.Error("match delivered to Kramer but not Jerry")
			} else if outJ.Answers[0].Tuples[0][1].Int() != outK.Answers[0].Tuples[0][1].Int() {
				t.Error("split match")
			}
		}
	}
}

// TestSubmitDuringRetryStorm: heavy concurrent submits with auto-retry style
// Retry calls interleaved must stay consistent.
func TestSubmitDuringRetryStorm(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	var wg sync.WaitGroup
	for p := 0; p < 10; p++ {
		wg.Add(3)
		go func(p int) {
			defer wg.Done()
			h, err := c.SubmitSQL(pairQuery(fmt.Sprintf("s%d_a", p), fmt.Sprintf("s%d_b", p)), "")
			if err != nil {
				t.Error(err)
				return
			}
			waitOutcome(t, h)
		}(p)
		go func(p int) {
			defer wg.Done()
			h, err := c.SubmitSQL(pairQuery(fmt.Sprintf("s%d_b", p), fmt.Sprintf("s%d_a", p)), "")
			if err != nil {
				t.Error(err)
				return
			}
			waitOutcome(t, h)
		}(p)
		go func() {
			defer wg.Done()
			c.Retry()
		}()
	}
	wg.Wait()
	if c.PendingCount() != 0 {
		t.Errorf("pending = %d", c.PendingCount())
	}
}

// TestEmptyDatabaseGroundingFailure: coordination against an empty catalog
// parks cleanly and recovers once data exists.
func TestEmptyDatabaseGroundingFailure(t *testing.T) {
	c, eng := newSystem(t, DefaultOptions())
	if _, err := eng.ExecuteSQL("DELETE FROM Flights"); err != nil {
		t.Fatal(err)
	}
	hK, _ := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
	c.SubmitSQL(pairQuery("Jerry", "Kramer"), "") //nolint:errcheck
	time.Sleep(20 * time.Millisecond)
	if _, ok := hK.TryOutcome(); ok {
		t.Fatal("matched against empty Flights")
	}
	st := c.Stats()
	if st.GroundingFailures == 0 {
		t.Error("grounding failure not counted")
	}
}

// TestStressManyGroupsInterleaved: members of many groups arrive round-robin
// (worst interleaving for partial matches).
func TestStressManyGroupsInterleaved(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	const groups, size = 8, 3
	handles := make([][]*Handle, groups)
	// Submit member j of every group before member j+1 of any group.
	for j := 0; j < size; j++ {
		for g := 0; g < groups; g++ {
			var cons []string
			for k := 0; k < size; k++ {
				if k != j {
					cons = append(cons, fmt.Sprintf("('m%d_%d', fno) IN ANSWER Reservation", g, k))
				}
			}
			src := fmt.Sprintf(`SELECT 'm%d_%d', fno INTO ANSWER Reservation
				WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') AND %s CHOOSE 1`,
				g, j, joinAnd(cons))
			h, err := c.SubmitSQL(src, "")
			if err != nil {
				t.Fatal(err)
			}
			handles[g] = append(handles[g], h)
		}
	}
	for g := 0; g < groups; g++ {
		flights := map[int64]bool{}
		for _, h := range handles[g] {
			out := waitOutcome(t, h)
			flights[out.Answers[0].Tuples[0][1].Int()] = true
		}
		if len(flights) != 1 {
			t.Errorf("group %d split: %v", g, flights)
		}
	}
}

func joinAnd(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " AND "
		}
		out += p
	}
	return out
}
