package coord

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/eq"
	"repro/internal/sql"
	"repro/internal/txn"
	"repro/internal/value"
)

// errNoGrounding aborts the grounding transaction without surfacing an error
// to the caller: the covered match simply has no satisfying assignment in the
// current database, so the search continues.
var errNoGrounding = errors.New("coord: no grounding")

// installResult carries what a successful match installed.
type installResult struct {
	members []*pending
	// perQuery maps member id → its outcome answers (parallel to its heads).
	perQuery map[uint64][]Answer
	// groundings is how many distinct assignments were installed (CHOOSE n).
	groundings int
}

// domainSource is one enumerable candidate set for a group of variable
// classes, obtained by evaluating a generator through the execution engine.
// A lazy source is a correlated generator — its subquery references other
// coordination variables — and is (re-)evaluated during backtracking once
// the variables it depends on are assigned.
type domainSource struct {
	classIdx []int // indexes into the class list, parallel to tuple positions
	tuples   []value.Tuple
	qid      uint64 // owning member
	predIdx  int    // index into the owner's Preds of the generating conjunct

	// Lazy (correlated) sources only:
	lazy bool
	sub  *sql.Select
}

// groundScratch holds the grounder's reusable buffers. Grounding runs under
// the trigger's home-shard round lock (inside a search), so the home shard's
// scratch is exclusively owned; everything here persists across backtrack
// levels, grounding attempts, and searches instead of being reallocated.
type groundScratch struct {
	vars     []eq.ScopedVar
	classOf  map[eq.ScopedVar]int
	assign   []value.Value
	assigned []bool
	covered  []bool
	sources  []domainSource
	lazy     []domainSource
	chosen   []domainSource
	idxArena []int   // backing storage for domainSource.classIdx slices
	touched  [][]int // per backtrack level
	seen     map[string]bool
	keyBuf   []byte
	env      *engine.Env
	grounds  [][]value.Value
}

// touchedAt returns the (reset) touched buffer of backtrack level i.
func (sc *groundScratch) touchedAt(i int) []int {
	for len(sc.touched) <= i {
		sc.touched = append(sc.touched, nil)
	}
	return sc.touched[i][:0]
}

// envFor returns the pooled environment reset and rebound to the member's
// currently assigned coordination variables.
func (sc *groundScratch) envFor(st *matchState, qid uint64, classOf map[eq.ScopedVar]int, assign []value.Value, assigned []bool) *engine.Env {
	if sc.env == nil {
		sc.env = engine.NewEnv()
	}
	sc.env.Reset()
	member := st.members[qid]
	// A template-bound member's residual predicates still carry symbolic
	// parameter slots; its vector rides on the query.
	sc.env.BindParams(member.q.Params)
	for _, v := range member.q.Vars {
		if ci, ok := classOf[eq.ScopedVar{QID: qid, Name: v}]; ok && (assigned == nil || assigned[ci]) {
			sc.env.BindVar(v, assign[ci])
		}
	}
	return sc.env
}

// ground takes a fully covered match and attempts to extend the unifier to a
// full assignment of every variable class such that every member query's
// residual predicates hold in the current database. On success it atomically
// installs one answer tuple per head atom per chosen grounding and delivers
// nothing yet (delivery happens after commit, in the coordinator).
//
// Grounding and installation run inside one transaction: generator
// subqueries take shared locks on the base tables they read and the
// installation takes exclusive locks on the answer relations, so the
// coordinated answers are consistent with the database state they were
// justified by — the paper's joint, atomic evaluation of matched queries.
func (c *Coordinator) ground(sh *coordShard, st *matchState) (*installResult, bool) {
	sh.stats.GroundingAttempts.Add(1)
	var res *installResult
	err := c.eng.Manager().RunAtomic(func(tx *txn.Txn) error {
		r, err := c.groundIn(tx, sh, st)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, false
	}
	return res, true
}

func (c *Coordinator) groundIn(tx *txn.Txn, sh *coordShard, st *matchState) (*installResult, error) {
	sc := &sh.gscratch
	// Collect every scoped variable of every member and group into classes.
	vars := sc.vars[:0]
	for _, qid := range st.order {
		for _, v := range st.members[qid].q.Vars {
			vars = append(vars, eq.ScopedVar{QID: qid, Name: v})
		}
	}
	sc.vars = vars
	classes := st.subst.Classes(vars)
	if sc.classOf == nil {
		sc.classOf = make(map[eq.ScopedVar]int, len(vars))
	} else {
		clear(sc.classOf)
	}
	classOf := sc.classOf
	for i, cl := range classes {
		for _, m := range cl.Members {
			classOf[m] = i
		}
	}

	// Assignment: one constant per class; pre-bound classes are fixed.
	assign := grow(sc.assign, len(classes))
	assigned := grow(sc.assigned, len(classes))
	sc.assign, sc.assigned = assign, assigned
	for i, cl := range classes {
		if cl.Bound {
			assign[i] = cl.Const
			assigned[i] = true
		}
	}

	// Evaluate generators into domain sources for the unassigned classes.
	sources, lazySources, err := c.collectSources(tx, st, sc, classOf)
	if err != nil {
		return nil, err
	}

	// Greedy cover: every unassigned class needs at least one source.
	// Correlated (lazy) sources cover their classes too, but are ordered
	// after every independent source so their inputs are assigned first.
	chosen, err := chooseSources(sc, classes, assigned, sources, lazySources, c.opts.GroundSmallestFirst)
	if err != nil {
		return nil, err
	}

	// Nondeterministic choice (§2.1: "the system nondeterministically
	// chooses either flight 122 or 123"): shuffle candidate tuples.
	for _, s := range chosen {
		sh.shuffle(s.tuples)
	}

	want := c.chooseCount(st)
	groundings := sc.grounds[:0]
	defer func() { sc.grounds = groundings[:0] }()
	if sc.seen == nil {
		sc.seen = make(map[string]bool)
	} else {
		clear(sc.seen)
	}
	seen := sc.seen // dedup: CHOOSE n wants n DISTINCT answers

	var backtrack func(i int) bool
	backtrack = func(i int) bool {
		if i == len(chosen) {
			kb := value.Tuple(assign).AppendKey(sc.keyBuf[:0])
			sc.keyBuf = kb
			if seen[string(kb)] {
				return false
			}
			if !c.checkFilters(tx, st, sc, classOf, assign, sources) {
				return false
			}
			if !c.checkNegConstraints(st, classOf, assign, groundings) {
				return false
			}
			seen[string(kb)] = true
			g := make([]value.Value, len(assign))
			copy(g, assign)
			groundings = append(groundings, g)
			return len(groundings) >= want
		}
		src := chosen[i]
		tuples := src.tuples
		if src.lazy {
			// Evaluate the correlated generator under the current partial
			// assignment of its owner's variables.
			env := sc.envFor(st, src.qid, classOf, assign, assigned)
			r, err := c.eng.EvalSelect(tx, src.sub, env)
			if err != nil || len(r.Cols) != len(src.classIdx) {
				// Still-unbound dependency, missing table or arity mismatch:
				// this branch cannot ground.
				return false
			}
			tuples = r.Rows
			sh.shuffle(tuples)
		}
		for _, tup := range tuples {
			// Tentatively assign this source's classes, respecting earlier
			// assignments (joint consistency).
			touched := sc.touchedAt(i)
			ok := true
			for k, ci := range src.classIdx {
				if assigned[ci] {
					if !assign[ci].Identical(tup[k]) {
						ok = false
						break
					}
					continue
				}
				assign[ci] = tup[k]
				assigned[ci] = true
				touched = append(touched, ci)
			}
			sc.touched[i] = touched
			if ok && backtrack(i+1) {
				// Keep going for more groundings unless done.
				for _, ci := range touched {
					assigned[ci] = false
				}
				if len(groundings) >= want {
					return true
				}
				continue
			}
			for _, ci := range touched {
				assigned[ci] = false
			}
		}
		return len(groundings) >= want
	}
	backtrack(0)

	// All-constant matches (no unbound classes, no sources) reach here with
	// chosen == nil; backtrack(0) handled them via the i==len(chosen) case.
	if len(groundings) == 0 {
		return nil, errNoGrounding
	}

	// Install: one answer tuple per head atom per grounding, atomically.
	res := &installResult{
		members:    make([]*pending, 0, len(st.order)),
		perQuery:   make(map[uint64][]Answer, len(st.order)),
		groundings: len(groundings),
	}
	for _, qid := range st.order {
		member := st.members[qid]
		res.members = append(res.members, member)
		answersForQ := make([]Answer, len(member.q.Heads))
		for hi, h := range member.q.Heads {
			answersForQ[hi].Relation = h.Display
			for _, g := range groundings {
				tup, err := resolveHead(st, qid, h, classOf, g)
				if err != nil {
					return nil, err
				}
				if err := c.store.Install(tx, h.Display, tup); err != nil {
					return nil, err
				}
				answersForQ[hi].Tuples = append(answersForQ[hi].Tuples, tup)
			}
		}
		res.perQuery[qid] = answersForQ
	}
	return res, nil
}

// grow resizes s to n zeroed entries, reusing capacity when possible.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// collectSources evaluates each member's generators into candidate sets.
// Generators whose subquery references still-unbound coordination variables
// (correlated generators) cannot be enumerated up front; they are returned
// separately as lazy sources and evaluated during backtracking once their
// inputs are assigned. Source slices and classIdx storage live in the shard
// scratch, reused across grounding attempts.
func (c *Coordinator) collectSources(tx *txn.Txn, st *matchState, sc *groundScratch, classOf map[eq.ScopedVar]int) (sources, lazySources []domainSource, err error) {
	sources, lazySources = sc.sources[:0], sc.lazy[:0]
	arena := sc.idxArena[:0]
	defer func() { sc.sources, sc.lazy, sc.idxArena = sources[:0], lazySources[:0], arena }()
	for _, qid := range st.order {
		member := st.members[qid]
		for _, g := range member.q.Generators {
			start := len(arena)
			bad := false
			for _, v := range g.Vars {
				ci, ok := classOf[eq.ScopedVar{QID: qid, Name: v}]
				if !ok {
					bad = true
					break
				}
				arena = append(arena, ci)
			}
			if bad {
				return nil, nil, fmt.Errorf("coord: internal: variable %s has no class in %s", g.Vars, member.q.Source)
			}
			idx := arena[start:len(arena):len(arena)]
			var tuples []value.Tuple
			if g.Sub != nil {
				if sc.env == nil {
					sc.env = engine.NewEnv()
				}
				sc.env.Reset()
				sc.env.BindParams(member.q.Params)
				r, err := c.eng.EvalSelect(tx, g.Sub, sc.env)
				if err != nil {
					if errors.Is(err, engine.ErrUnboundVariable) {
						lazySources = append(lazySources, domainSource{
							classIdx: idx, lazy: true, sub: g.Sub, qid: qid, predIdx: g.Pred,
						})
						continue
					}
					return nil, nil, err
				}
				if len(r.Cols) != len(g.Vars) {
					return nil, nil, fmt.Errorf("coord: generator arity %d vs %d in %s", len(r.Cols), len(g.Vars), g)
				}
				tuples = r.Rows
			} else {
				tuples = g.Tuples
			}
			sources = append(sources, domainSource{classIdx: idx, tuples: tuples, qid: qid, predIdx: g.Pred})
		}
	}
	return sources, lazySources, nil
}

// chooseSources selects, for every unassigned class, one domain source that
// enumerates it, then orders the selection (smallest candidate set first when
// smallestFirst — the A3 ablation knob). Independent sources are preferred;
// lazy (correlated) sources cover leftover classes and always run after every
// independent source, so their inputs are assigned when they evaluate.
func chooseSources(sc *groundScratch, classes []eq.Class, assigned []bool, sources, lazySources []domainSource, smallestFirst bool) ([]domainSource, error) {
	covered := grow(sc.covered, len(classes))
	sc.covered = covered
	for i := range classes {
		covered[i] = assigned[i]
	}
	chosen := sc.chosen[:0]
	defer func() { sc.chosen = chosen[:0] }()
	// Repeatedly pick independent sources until no more help.
	for {
		next := -1
		for si, s := range sources {
			helps := false
			for _, ci := range s.classIdx {
				if !covered[ci] {
					helps = true
					break
				}
			}
			if !helps {
				continue
			}
			if next == -1 {
				next = si
				continue
			}
			if smallestFirst && len(s.tuples) < len(sources[next].tuples) {
				next = si
			}
		}
		if next == -1 {
			break
		}
		chosen = append(chosen, sources[next])
		for _, ci := range sources[next].classIdx {
			covered[ci] = true
		}
	}
	if smallestFirst {
		sort.SliceStable(chosen, func(i, j int) bool {
			return len(chosen[i].tuples) < len(chosen[j].tuples)
		})
	}
	// Lazy sources cover what remains; they always run after every
	// independent source, so appending them here preserves that order.
	for _, s := range lazySources {
		helps := false
		for _, ci := range s.classIdx {
			if !covered[ci] {
				helps = true
				break
			}
		}
		if !helps {
			continue
		}
		chosen = append(chosen, s)
		for _, ci := range s.classIdx {
			covered[ci] = true
		}
	}
	for i := range classes {
		if !covered[i] {
			return nil, errNoGrounding // some class cannot be enumerated
		}
	}
	return chosen, nil
}

// checkFilters evaluates every member's residual predicates under the full
// assignment. Predicates whose generator was already evaluated into an
// (uncorrelated) domain source in this same transaction are checked by
// membership against that source's candidate set — the set IS the
// predicate's satisfying set, so re-running the subquery through the engine
// would recompute the identical rows. Everything else (correlated
// generators, non-generating predicates) is evaluated by the engine in the
// pooled environment rebound to that member's variable names.
func (c *Coordinator) checkFilters(tx *txn.Txn, st *matchState, sc *groundScratch, classOf map[eq.ScopedVar]int, assign []value.Value, sources []domainSource) bool {
	for _, qid := range st.order {
		member := st.members[qid]
		var env *engine.Env
		for pi, p := range member.q.Preds {
			if s := findSource(sources, qid, pi); s != nil {
				if !sourceContains(s, assign) {
					return false
				}
				continue
			}
			if env == nil {
				env = sc.envFor(st, qid, classOf, assign, nil)
			}
			v, err := c.eng.EvalExpr(tx, p, env)
			if err != nil || v.Type() != value.TypeBool || !v.Bool() {
				return false
			}
		}
	}
	return true
}

// findSource returns the uncorrelated domain source derived from predicate
// pi of member qid, if one exists. Sources are few (one per generating
// conjunct of the match), so a linear scan beats any index.
func findSource(sources []domainSource, qid uint64, pi int) *domainSource {
	for i := range sources {
		if sources[i].qid == qid && sources[i].predIdx == pi {
			return &sources[i]
		}
	}
	return nil
}

// sourceContains reports whether the assignment restricted to the source's
// classes appears among its candidate tuples, using the engine's IN
// comparison semantics (value.Equal positionally — so a NULL never matches,
// exactly as `IN (SELECT ...)` evaluates).
func sourceContains(s *domainSource, assign []value.Value) bool {
outer:
	for _, tup := range s.tuples {
		for k, ci := range s.classIdx {
			if !assign[ci].Equal(tup[k]) {
				continue outer
			}
		}
		return true
	}
	return false
}

// checkNegConstraints verifies NOT IN ANSWER exclusions against the
// installed answer relations, the groundings already accepted in this match,
// AND the tuples the current grounding itself would co-install — a member's
// exclusion must not be violated by a partner's (or its own) contribution in
// the same joint execution.
func (c *Coordinator) checkNegConstraints(st *matchState, classOf map[eq.ScopedVar]int, assign []value.Value, prior [][]value.Value) bool {
	pendingInstalls := append(append([][]value.Value{}, prior...), assign)
	for _, qid := range st.order {
		member := st.members[qid]
		for _, n := range member.q.NegConstraints {
			pattern, err := resolveAtom(st, qid, n, classOf, assign)
			if err != nil {
				return false
			}
			if len(c.store.Matching(pattern)) > 0 {
				return false
			}
			// Also exclude clashes with this match's own installs (earlier
			// groundings and the one under consideration).
			for _, g := range pendingInstalls {
				for _, qid2 := range st.order {
					m2 := st.members[qid2]
					for _, h := range m2.q.Heads {
						if h.Relation != pattern.Relation {
							continue
						}
						tup, err := resolveHead(st, qid2, h, classOf, g)
						if err != nil {
							continue
						}
						if groundAtomMatches(pattern, tup) {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

func groundAtomMatches(pattern eq.Atom, tup value.Tuple) bool {
	if pattern.Arity() != len(tup) {
		return false
	}
	for i, t := range pattern.Terms {
		if t.IsVar {
			continue // unbound pattern position matches anything
		}
		if !t.Const.Identical(tup[i]) {
			return false
		}
	}
	return true
}

// resolveHead grounds a head atom under the class assignment.
func resolveHead(st *matchState, qid uint64, h eq.Atom, classOf map[eq.ScopedVar]int, assign []value.Value) (value.Tuple, error) {
	a, err := resolveAtom(st, qid, h, classOf, assign)
	if err != nil {
		return nil, err
	}
	if !a.Ground() {
		return nil, fmt.Errorf("coord: head %s not ground after assignment", a)
	}
	return a.GroundTuple(), nil
}

func resolveAtom(st *matchState, qid uint64, a eq.Atom, classOf map[eq.ScopedVar]int, assign []value.Value) (eq.Atom, error) {
	out := eq.Atom{Relation: a.Relation, Display: a.Display, Terms: make([]eq.Term, len(a.Terms))}
	for i, t := range a.Terms {
		if !t.IsVar {
			out.Terms[i] = t
			continue
		}
		if cnst, ok := st.subst.Binding(eq.ScopedVar{QID: qid, Name: t.Var}); ok {
			out.Terms[i] = eq.ConstTerm(cnst)
			continue
		}
		if ci, ok := classOf[eq.ScopedVar{QID: qid, Name: t.Var}]; ok && assign[ci].Type() != value.TypeNull {
			out.Terms[i] = eq.ConstTerm(assign[ci])
			continue
		}
		out.Terms[i] = t
	}
	return out, nil
}

// chooseCount returns how many groundings to install: the minimum CHOOSE
// across members — every participant must be willing to receive that many
// coordinated answers, and the paper's examples all use CHOOSE 1.
func (c *Coordinator) chooseCount(st *matchState) int {
	want := 0
	for _, qid := range st.order {
		ch := st.members[qid].q.Choose
		if ch < 1 {
			ch = 1
		}
		if want == 0 || ch < want {
			want = ch
		}
	}
	if want == 0 {
		want = 1
	}
	return want
}
