package coord

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/eq"
	"repro/internal/sql"
	"repro/internal/txn"
	"repro/internal/value"
)

// errNoGrounding aborts the grounding transaction without surfacing an error
// to the caller: the covered match simply has no satisfying assignment in the
// current database, so the search continues.
var errNoGrounding = errors.New("coord: no grounding")

// installResult carries what a successful match installed.
type installResult struct {
	members []*pending
	// perQuery maps member id → its outcome answers (parallel to its heads).
	perQuery map[uint64][]Answer
	// groundings is how many distinct assignments were installed (CHOOSE n).
	groundings int
}

// domainSource is one enumerable candidate set for a group of variable
// classes, obtained by evaluating a generator through the execution engine.
// A lazy source is a correlated generator — its subquery references other
// coordination variables — and is (re-)evaluated during backtracking once
// the variables it depends on are assigned.
type domainSource struct {
	classIdx []int // indexes into the class list, parallel to tuple positions
	tuples   []value.Tuple

	// Lazy (correlated) sources only:
	lazy bool
	sub  *sql.Select
	qid  uint64 // owning member, whose variable scope the subquery sees
}

// ground takes a fully covered match and attempts to extend the unifier to a
// full assignment of every variable class such that every member query's
// residual predicates hold in the current database. On success it atomically
// installs one answer tuple per head atom per chosen grounding and delivers
// nothing yet (delivery happens after commit, in the coordinator).
//
// Grounding and installation run inside one transaction: generator
// subqueries take shared locks on the base tables they read and the
// installation takes exclusive locks on the answer relations, so the
// coordinated answers are consistent with the database state they were
// justified by — the paper's joint, atomic evaluation of matched queries.
func (c *Coordinator) ground(sh *coordShard, st *matchState) (*installResult, bool) {
	sh.stats.GroundingAttempts.Add(1)
	var res *installResult
	err := c.eng.Manager().RunAtomic(func(tx *txn.Txn) error {
		r, err := c.groundIn(tx, sh, st)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, false
	}
	return res, true
}

func (c *Coordinator) groundIn(tx *txn.Txn, sh *coordShard, st *matchState) (*installResult, error) {
	// Collect every scoped variable of every member and group into classes.
	var vars []eq.ScopedVar
	for _, qid := range st.order {
		for _, v := range st.members[qid].q.Vars {
			vars = append(vars, eq.ScopedVar{QID: qid, Name: v})
		}
	}
	classes := st.subst.Classes(vars)
	classOf := make(map[eq.ScopedVar]int, len(vars))
	for i, cl := range classes {
		for _, m := range cl.Members {
			classOf[m] = i
		}
	}

	// Assignment: one constant per class; pre-bound classes are fixed.
	assign := make([]value.Value, len(classes))
	assigned := make([]bool, len(classes))
	for i, cl := range classes {
		if cl.Bound {
			assign[i] = cl.Const
			assigned[i] = true
		}
	}

	// Evaluate generators into domain sources for the unassigned classes.
	sources, lazySources, err := c.collectSources(tx, st, classOf, assigned)
	if err != nil {
		return nil, err
	}

	// Greedy cover: every unassigned class needs at least one source.
	// Correlated (lazy) sources cover their classes too, but are ordered
	// after every independent source so their inputs are assigned first.
	chosen, err := chooseSources(classes, assigned, sources, lazySources, c.opts.GroundSmallestFirst)
	if err != nil {
		return nil, err
	}

	// Nondeterministic choice (§2.1: "the system nondeterministically
	// chooses either flight 122 or 123"): shuffle candidate tuples.
	for _, s := range chosen {
		sh.shuffle(s.tuples)
	}

	want := c.chooseCount(st)
	var groundings [][]value.Value
	seen := make(map[string]bool) // dedup: CHOOSE n wants n DISTINCT answers

	var backtrack func(i int) bool
	backtrack = func(i int) bool {
		if i == len(chosen) {
			k := value.Tuple(assign).Key()
			if seen[k] {
				return false
			}
			if !c.checkFilters(tx, st, classOf, assign) {
				return false
			}
			if !c.checkNegConstraints(st, classOf, assign, groundings) {
				return false
			}
			seen[k] = true
			g := make([]value.Value, len(assign))
			copy(g, assign)
			groundings = append(groundings, g)
			return len(groundings) >= want
		}
		src := chosen[i]
		tuples := src.tuples
		if src.lazy {
			// Evaluate the correlated generator under the current partial
			// assignment of its owner's variables.
			env := engine.NewEnv()
			member := st.members[src.qid]
			for _, v := range member.q.Vars {
				if ci, ok := classOf[eq.ScopedVar{QID: src.qid, Name: v}]; ok && assigned[ci] {
					env.BindVar(v, assign[ci])
				}
			}
			r, err := c.eng.EvalSelect(tx, src.sub, env)
			if err != nil || len(r.Cols) != len(src.classIdx) {
				// Still-unbound dependency, missing table or arity mismatch:
				// this branch cannot ground.
				return false
			}
			tuples = r.Rows
			sh.shuffle(tuples)
		}
		for _, tup := range tuples {
			// Tentatively assign this source's classes, respecting earlier
			// assignments (joint consistency).
			touched := make([]int, 0, len(src.classIdx))
			ok := true
			for k, ci := range src.classIdx {
				if assigned[ci] {
					if !assign[ci].Identical(tup[k]) {
						ok = false
						break
					}
					continue
				}
				assign[ci] = tup[k]
				assigned[ci] = true
				touched = append(touched, ci)
			}
			if ok && backtrack(i+1) {
				// Keep going for more groundings unless done.
				for _, ci := range touched {
					assigned[ci] = false
				}
				if len(groundings) >= want {
					return true
				}
				continue
			}
			for _, ci := range touched {
				assigned[ci] = false
			}
		}
		return len(groundings) >= want
	}
	backtrack(0)

	// All-constant matches (no unbound classes, no sources) reach here with
	// chosen == nil; backtrack(0) handled them via the i==len(chosen) case.
	if len(groundings) == 0 {
		return nil, errNoGrounding
	}

	// Install: one answer tuple per head atom per grounding, atomically.
	res := &installResult{
		members:    make([]*pending, 0, len(st.order)),
		perQuery:   make(map[uint64][]Answer, len(st.order)),
		groundings: len(groundings),
	}
	for _, qid := range st.order {
		member := st.members[qid]
		res.members = append(res.members, member)
		answersForQ := make([]Answer, len(member.q.Heads))
		for hi, h := range member.q.Heads {
			answersForQ[hi].Relation = h.Display
			for _, g := range groundings {
				tup, err := resolveHead(st, qid, h, classOf, g)
				if err != nil {
					return nil, err
				}
				if err := c.store.Install(tx, h.Display, tup); err != nil {
					return nil, err
				}
				answersForQ[hi].Tuples = append(answersForQ[hi].Tuples, tup)
			}
		}
		res.perQuery[qid] = answersForQ
	}
	return res, nil
}

// collectSources evaluates each member's generators into candidate sets.
// Generators whose subquery references still-unbound coordination variables
// (correlated generators) cannot be enumerated up front; they are returned
// separately as lazy sources and evaluated during backtracking once their
// inputs are assigned.
func (c *Coordinator) collectSources(tx *txn.Txn, st *matchState, classOf map[eq.ScopedVar]int, assigned []bool) (sources, lazySources []domainSource, err error) {
	for _, qid := range st.order {
		member := st.members[qid]
		for _, g := range member.q.Generators {
			idx := make([]int, len(g.Vars))
			for i, v := range g.Vars {
				ci, ok := classOf[eq.ScopedVar{QID: qid, Name: v}]
				if !ok {
					return nil, nil, fmt.Errorf("coord: internal: variable %s.%s has no class", member.q.Source, v)
				}
				idx[i] = ci
			}
			var tuples []value.Tuple
			if g.Sub != nil {
				r, err := c.eng.EvalSelect(tx, g.Sub, engine.NewEnv())
				if err != nil {
					if errors.Is(err, engine.ErrUnboundVariable) {
						lazySources = append(lazySources, domainSource{
							classIdx: idx, lazy: true, sub: g.Sub, qid: qid,
						})
						continue
					}
					return nil, nil, err
				}
				if len(r.Cols) != len(g.Vars) {
					return nil, nil, fmt.Errorf("coord: generator arity %d vs %d in %s", len(r.Cols), len(g.Vars), g)
				}
				tuples = r.Rows
			} else {
				tuples = g.Tuples
			}
			sources = append(sources, domainSource{classIdx: idx, tuples: tuples})
		}
	}
	return sources, lazySources, nil
}

// chooseSources selects, for every unassigned class, one domain source that
// enumerates it, then orders the selection (smallest candidate set first when
// smallestFirst — the A3 ablation knob). Independent sources are preferred;
// lazy (correlated) sources cover leftover classes and always run after every
// independent source, so their inputs are assigned when they evaluate.
func chooseSources(classes []eq.Class, assigned []bool, sources, lazySources []domainSource, smallestFirst bool) ([]domainSource, error) {
	covered := make([]bool, len(classes))
	for i := range classes {
		covered[i] = assigned[i]
	}
	var chosen []domainSource
	// Repeatedly pick independent sources until no more help.
	for {
		next := -1
		for si, s := range sources {
			helps := false
			for _, ci := range s.classIdx {
				if !covered[ci] {
					helps = true
					break
				}
			}
			if !helps {
				continue
			}
			if next == -1 {
				next = si
				continue
			}
			if smallestFirst && len(s.tuples) < len(sources[next].tuples) {
				next = si
			}
		}
		if next == -1 {
			break
		}
		chosen = append(chosen, sources[next])
		for _, ci := range sources[next].classIdx {
			covered[ci] = true
		}
	}
	if smallestFirst {
		sort.SliceStable(chosen, func(i, j int) bool {
			return len(chosen[i].tuples) < len(chosen[j].tuples)
		})
	}
	// Lazy sources cover what remains.
	var lazyChosen []domainSource
	for _, s := range lazySources {
		helps := false
		for _, ci := range s.classIdx {
			if !covered[ci] {
				helps = true
				break
			}
		}
		if !helps {
			continue
		}
		lazyChosen = append(lazyChosen, s)
		for _, ci := range s.classIdx {
			covered[ci] = true
		}
	}
	for i := range classes {
		if !covered[i] {
			return nil, errNoGrounding // some class cannot be enumerated
		}
	}
	return append(chosen, lazyChosen...), nil
}

// checkFilters evaluates every member's residual predicates under the full
// assignment, each in an environment binding that member's variable names.
func (c *Coordinator) checkFilters(tx *txn.Txn, st *matchState, classOf map[eq.ScopedVar]int, assign []value.Value) bool {
	for _, qid := range st.order {
		member := st.members[qid]
		env := engine.NewEnv()
		for _, v := range member.q.Vars {
			ci := classOf[eq.ScopedVar{QID: qid, Name: v}]
			env.BindVar(v, assign[ci])
		}
		for _, p := range member.q.Preds {
			v, err := c.eng.EvalExpr(tx, p, env)
			if err != nil || v.Type() != value.TypeBool || !v.Bool() {
				return false
			}
		}
	}
	return true
}

// checkNegConstraints verifies NOT IN ANSWER exclusions against the
// installed answer relations, the groundings already accepted in this match,
// AND the tuples the current grounding itself would co-install — a member's
// exclusion must not be violated by a partner's (or its own) contribution in
// the same joint execution.
func (c *Coordinator) checkNegConstraints(st *matchState, classOf map[eq.ScopedVar]int, assign []value.Value, prior [][]value.Value) bool {
	pendingInstalls := append(append([][]value.Value{}, prior...), assign)
	for _, qid := range st.order {
		member := st.members[qid]
		for _, n := range member.q.NegConstraints {
			pattern, err := resolveAtom(st, qid, n, classOf, assign)
			if err != nil {
				return false
			}
			if len(c.store.Matching(pattern)) > 0 {
				return false
			}
			// Also exclude clashes with this match's own installs (earlier
			// groundings and the one under consideration).
			for _, g := range pendingInstalls {
				for _, qid2 := range st.order {
					m2 := st.members[qid2]
					for _, h := range m2.q.Heads {
						if h.Relation != pattern.Relation {
							continue
						}
						tup, err := resolveHead(st, qid2, h, classOf, g)
						if err != nil {
							continue
						}
						if groundAtomMatches(pattern, tup) {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

func groundAtomMatches(pattern eq.Atom, tup value.Tuple) bool {
	if pattern.Arity() != len(tup) {
		return false
	}
	for i, t := range pattern.Terms {
		if t.IsVar {
			continue // unbound pattern position matches anything
		}
		if !t.Const.Identical(tup[i]) {
			return false
		}
	}
	return true
}

// resolveHead grounds a head atom under the class assignment.
func resolveHead(st *matchState, qid uint64, h eq.Atom, classOf map[eq.ScopedVar]int, assign []value.Value) (value.Tuple, error) {
	a, err := resolveAtom(st, qid, h, classOf, assign)
	if err != nil {
		return nil, err
	}
	if !a.Ground() {
		return nil, fmt.Errorf("coord: head %s not ground after assignment", a)
	}
	return a.GroundTuple(), nil
}

func resolveAtom(st *matchState, qid uint64, a eq.Atom, classOf map[eq.ScopedVar]int, assign []value.Value) (eq.Atom, error) {
	out := eq.Atom{Relation: a.Relation, Display: a.Display, Terms: make([]eq.Term, len(a.Terms))}
	for i, t := range a.Terms {
		if !t.IsVar {
			out.Terms[i] = t
			continue
		}
		if cnst, ok := st.subst.Binding(eq.ScopedVar{QID: qid, Name: t.Var}); ok {
			out.Terms[i] = eq.ConstTerm(cnst)
			continue
		}
		if ci, ok := classOf[eq.ScopedVar{QID: qid, Name: t.Var}]; ok && assign[ci].Type() != value.TypeNull {
			out.Terms[i] = eq.ConstTerm(assign[ci])
			continue
		}
		out.Terms[i] = t
	}
	return out, nil
}

// chooseCount returns how many groundings to install: the minimum CHOOSE
// across members — every participant must be willing to receive that many
// coordinated answers, and the paper's examples all use CHOOSE 1.
func (c *Coordinator) chooseCount(st *matchState) int {
	want := 0
	for _, qid := range st.order {
		ch := st.members[qid].q.Choose
		if ch < 1 {
			ch = 1
		}
		if want == 0 || ch < want {
			want = ch
		}
	}
	if want == 0 {
		want = 1
	}
	return want
}
