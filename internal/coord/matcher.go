package coord

import (
	"repro/internal/eq"
	"repro/internal/storage"
	"repro/internal/value"
)

// scopedAtom is a constraint atom tagged with the query instance it belongs
// to; the matcher's worklist holds these.
type scopedAtom struct {
	qid  uint64
	atom eq.Atom
}

// matchState is the single, mutated-in-place state of the backtracking
// coverage search: the partial match set, the most-general unifier
// accumulated so far (trailed — see eq.Subst.Mark/Undo), and the worklist of
// constraint atoms. The worklist is append-only with a cursor: covering an
// atom advances wi, joining a query appends its constraints, and
// backtracking rewinds the cursor and truncates the appended tail — no
// copies. The search clones nothing per branch; every mutation (subst,
// members, order, worklist) is undone on the way back up.
type matchState struct {
	members   map[uint64]*pending
	order     []uint64     // member ids in join order (trigger first)
	subst     *eq.Subst    // trailed MGU; Mark/Undo per branch
	uncovered []scopedAtom // worklist; entries before wi are covered
	wi        int          // cursor of the next uncovered constraint
}

// reset re-initializes the state for a new search rooted at trigger,
// retaining map/slice storage from previous searches on the same shard.
func (st *matchState) reset(trigger *pending) {
	if st.members == nil {
		st.members = make(map[uint64]*pending, 8)
	} else {
		clear(st.members)
	}
	if st.subst == nil {
		st.subst = eq.NewSubst()
	} else {
		st.subst.Reset()
	}
	st.order = st.order[:0]
	st.uncovered = st.uncovered[:0]
	st.wi = 0
	st.members[trigger.id] = trigger
	st.order = append(st.order, trigger.id)
	for _, c := range trigger.q.Constraints {
		st.uncovered = append(st.uncovered, scopedAtom{qid: trigger.id, atom: c})
	}
}

// join adds a pending query to the match set, pushing its constraints onto
// the worklist.
func (st *matchState) join(p *pending) {
	st.members[p.id] = p
	st.order = append(st.order, p.id)
	for _, c := range p.q.Constraints {
		st.uncovered = append(st.uncovered, scopedAtom{qid: p.id, atom: c})
	}
}

// unjoin reverses join: p must be the most recently joined member.
func (st *matchState) unjoin(p *pending) {
	delete(st.members, p.id)
	st.order = st.order[:len(st.order)-1]
	st.uncovered = st.uncovered[:len(st.uncovered)-len(p.q.Constraints)]
}

// searchScratch is the per-shard allocation arena of the matcher. A search
// runs while holding its trigger's home-shard round lock, so the home
// shard's scratch is exclusively owned for the duration; buffers are reused
// across searches and, within a search, per backtracking depth (deeper
// recursion must not stomp the buffers a shallower node is iterating).
type searchScratch struct {
	st      matchState
	resolve [][]eq.Term     // per-depth ResolveInto buffers
	cands   [][]headRef     // per-depth candidate buffers
	tuples  [][]value.Tuple // per-depth installed-answer buffers
	snapRef storage.SnapRef // intrusive pin for the per-search MVCC snapshot
}

// atDepth grows the per-depth buffer slots to cover depth.
func (sc *searchScratch) atDepth(depth int) {
	for len(sc.resolve) <= depth {
		sc.resolve = append(sc.resolve, nil)
		sc.cands = append(sc.cands, nil)
		sc.tuples = append(sc.tuples, nil)
	}
}

// candidates returns head refs that may unify with the constraint atom,
// excluding refs belonging to queries already in the match set and queries
// the lane does not cover (those set *foreign). The index lives on the shard
// owning the constraint's relation — which the lane necessarily holds, since
// the constraint belongs to a covered member. Results are appended to buf
// (reused from length 0) in (query id, head index) order; the index keeps
// its buckets sorted at insert time, so the common constant-first probe
// merges two sorted buckets instead of sorting per call. When UseIndex is
// off it degrades to a linear scan over every head of every pending query in
// the system (the A1 ablation baseline).
func (c *Coordinator) candidates(a eq.Atom, members map[uint64]*pending, ln *lane, foreign *bool, buf []headRef) []headRef {
	if c.opts.UseIndex {
		return c.shardFor(a.Relation).reg.candidates(a, members, ln, foreign, buf)
	}
	out := buf[:0]
	for _, sh := range c.shards {
		sh.reg.mu.RLock()
		for _, p := range sh.reg.queries {
			if _, in := members[p.id]; in {
				continue
			}
			for i, h := range p.q.Heads {
				if !eq.Unifiable(a, h) {
					continue
				}
				if ln != nil && !ln.covers(p) {
					if foreign != nil {
						*foreign = true
					}
					continue
				}
				out = append(out, headRef{p: p, headIdx: i})
			}
		}
		sh.reg.mu.RUnlock()
	}
	sortRefs(out)
	return out
}

// search runs the coverage phase of the matching algorithm: starting from the
// trigger query, repeatedly pick an uncovered constraint atom and try to
// cover it with
//
//  1. a tuple already installed in the shared answer relation (a previous
//     match's coordinated answer),
//  2. a head atom of a query already in the match set (mutual satisfaction,
//     Figure 1b), or
//  3. a head atom of another pending query, which then joins the match set
//     and contributes its own constraints to the worklist.
//
// Whenever the worklist empties the candidate match is handed to ground();
// if grounding succeeds the match is final (ground also installs it). The
// search backtracks over candidate covers with a bound on the match-set size
// (opts.MaxMatchSize) and a global node budget (opts.MaxNodes); matching is
// NP-hard in general, and the bound + candidate index keep the common
// pairwise and small-group workloads polynomial.
//
// The exploration is trailed mutate-and-undo over ONE matchState: each
// branch takes a subst Mark, unifies in place, recurses, and rewinds —
// there is no per-branch clone. Candidate order and node accounting are
// identical to the clone-based matcher (the differential test in
// matcher_diff_test.go locks this in), so fixed-seed runs are unchanged.
//
// Recruitment is restricted to queries the lane covers (every shard of their
// footprint is locked); skipping a candidate for that reason alone sets
// sawForeign, which tells the caller a wider — escalated — lane might
// succeed where this one failed.
func (c *Coordinator) search(ln *lane, trigger *pending) (res *installResult, ok, sawForeign bool) {
	if c.searchHook != nil {
		return c.searchHook(ln, trigger)
	}
	home := c.shards[trigger.home]
	sc := &home.scratch
	st := &sc.st
	st.reset(trigger)
	// Pin one MVCC snapshot for the whole search: every installed-answer
	// probe across the backtracking tree sees the same consistent answer
	// state, without blocking concurrent match installs (they become visible
	// to the NEXT search round — exactly the round-based semantics the
	// version-bump wakeup already implements). The pin is intrusive (no
	// allocation) and released before returning so GC is never held up.
	cat := c.eng.Catalog()
	snap := storage.SnapshotAt(cat.PinSnapshot(&sc.snapRef), nil)
	defer cat.UnpinSnapshot(&sc.snapRef)
	nodes := 0
	var dfs func(depth int) (*installResult, bool)
	dfs = func(depth int) (*installResult, bool) {
		nodes++
		home.stats.NodesExplored.Add(1)
		if nodes > c.opts.MaxNodes {
			return nil, false
		}
		if st.wi == len(st.uncovered) {
			res, ok := c.ground(home, st)
			if ok {
				return res, true
			}
			home.stats.GroundingFailures.Add(1)
			return nil, false
		}
		sa := st.uncovered[st.wi]
		sc.atDepth(depth)

		// Resolve the constraint under the current substitution so installed
		// answers and the candidate index see bindings made so far.
		resolved := st.subst.ResolveInto(sc.resolve[depth], sa.qid, sa.atom)
		sc.resolve[depth] = resolved.Terms

		st.wi++

		// (1) Cover with an already-installed answer tuple.
		tups := c.store.AppendMatchingAt(snap, sc.tuples[depth][:0], resolved)
		sc.tuples[depth] = tups
		for _, tup := range tups {
			mark := st.subst.Mark()
			if eq.UnifyGround(st.subst, sa.qid, sa.atom, tup) {
				if res, ok := dfs(depth + 1); ok {
					return res, true
				}
			}
			st.subst.Undo(mark)
		}

		// (2) Cover with a head atom of a query already in the set.
		for i := 0; i < len(st.order); i++ {
			member := st.members[st.order[i]]
			for _, h := range member.q.Heads {
				if !eq.Unifiable(resolved, h) {
					continue
				}
				mark := st.subst.Mark()
				if eq.UnifyAtoms(st.subst, sa.qid, sa.atom, member.id, h) {
					if res, ok := dfs(depth + 1); ok {
						return res, true
					}
				}
				st.subst.Undo(mark)
			}
		}

		// (3) Recruit another pending query whose head covers the constraint.
		if len(st.members) < c.opts.MaxMatchSize {
			cands := c.candidates(resolved, st.members, ln, &sawForeign, sc.cands[depth])
			sc.cands[depth] = cands
			for _, ref := range cands {
				mark := st.subst.Mark()
				if eq.UnifyAtoms(st.subst, sa.qid, sa.atom, ref.p.id, ref.p.q.Heads[ref.headIdx]) {
					st.join(ref.p)
					if res, ok := dfs(depth + 1); ok {
						return res, true
					}
					st.unjoin(ref.p)
				}
				st.subst.Undo(mark)
			}
		}
		st.wi--
		return nil, false
	}
	res, ok = dfs(0)
	return res, ok, sawForeign
}
