package coord

import (
	"repro/internal/eq"
)

// scopedAtom is a constraint atom tagged with the query instance it belongs
// to; the matcher's worklist holds these.
type scopedAtom struct {
	qid  uint64
	atom eq.Atom
}

// matchState is one node of the backtracking coverage search: a partial match
// set, the most-general unifier accumulated so far, and the worklist of
// constraint atoms not yet covered by a head atom or an installed answer.
type matchState struct {
	members   map[uint64]*pending
	order     []uint64 // member ids in join order (trigger first)
	subst     *eq.Subst
	uncovered []scopedAtom
}

func newMatchState(trigger *pending) *matchState {
	st := &matchState{
		members: map[uint64]*pending{trigger.id: trigger},
		order:   []uint64{trigger.id},
		subst:   eq.NewSubst(),
	}
	for _, c := range trigger.q.Constraints {
		st.uncovered = append(st.uncovered, scopedAtom{qid: trigger.id, atom: c})
	}
	return st
}

// clone copies the state for a backtracking branch.
func (st *matchState) clone() *matchState {
	c := &matchState{
		members:   make(map[uint64]*pending, len(st.members)),
		order:     append([]uint64(nil), st.order...),
		subst:     st.subst.Clone(),
		uncovered: append([]scopedAtom(nil), st.uncovered...),
	}
	for k, v := range st.members {
		c.members[k] = v
	}
	return c
}

// join adds a pending query to the match set, pushing its constraints onto
// the worklist.
func (st *matchState) join(p *pending) {
	st.members[p.id] = p
	st.order = append(st.order, p.id)
	for _, c := range p.q.Constraints {
		st.uncovered = append(st.uncovered, scopedAtom{qid: p.id, atom: c})
	}
}

// candidates returns head refs that may unify with the constraint atom,
// excluding refs belonging to queries in the exclude set and queries the
// lane does not cover (those set *foreign). The index lives on the shard
// owning the constraint's relation — which the lane necessarily holds, since
// the constraint belongs to a covered member. When UseIndex is off it
// degrades to a linear scan over every head of every pending query in the
// system (the A1 ablation baseline).
func (c *Coordinator) candidates(a eq.Atom, exclude map[uint64]bool, ln *lane, foreign *bool) []headRef {
	if c.opts.UseIndex {
		return c.shardFor(a.Relation).reg.candidates(a, exclude, ln, foreign)
	}
	var out []headRef
	for _, sh := range c.shards {
		sh.reg.mu.RLock()
		for _, p := range sh.reg.queries {
			if exclude[p.id] {
				continue
			}
			for i, h := range p.q.Heads {
				if !eq.Unifiable(a, h) {
					continue
				}
				if ln != nil && !ln.covers(p) {
					if foreign != nil {
						*foreign = true
					}
					continue
				}
				out = append(out, headRef{p: p, headIdx: i})
			}
		}
		sh.reg.mu.RUnlock()
	}
	sortRefs(out)
	return out
}

// search runs the coverage phase of the matching algorithm: starting from the
// trigger query, repeatedly pick an uncovered constraint atom and try to
// cover it with
//
//  1. a tuple already installed in the shared answer relation (a previous
//     match's coordinated answer),
//  2. a head atom of a query already in the match set (mutual satisfaction,
//     Figure 1b), or
//  3. a head atom of another pending query, which then joins the match set
//     and contributes its own constraints to the worklist.
//
// Whenever the worklist empties the candidate match is handed to ground();
// if grounding succeeds the match is final (ground also installs it). The
// search backtracks over candidate covers with a bound on the match-set size
// (opts.MaxMatchSize) and a global node budget (opts.MaxNodes); matching is
// NP-hard in general, and the bound + candidate index keep the common
// pairwise and small-group workloads polynomial.
//
// Recruitment is restricted to queries the lane covers (every shard of their
// footprint is locked); skipping a candidate for that reason alone sets
// sawForeign, which tells the caller a wider — escalated — lane might
// succeed where this one failed.
func (c *Coordinator) search(ln *lane, trigger *pending) (res *installResult, ok, sawForeign bool) {
	home := c.shards[trigger.home]
	nodes := 0
	var dfs func(st *matchState) (*installResult, bool)
	dfs = func(st *matchState) (*installResult, bool) {
		nodes++
		home.stats.NodesExplored.Add(1)
		if nodes > c.opts.MaxNodes {
			return nil, false
		}
		if len(st.uncovered) == 0 {
			res, ok := c.ground(home, st)
			if ok {
				return res, true
			}
			home.stats.GroundingFailures.Add(1)
			return nil, false
		}
		sa := st.uncovered[0]
		rest := st.uncovered[1:]

		// Resolve the constraint under the current substitution so installed
		// answers and the candidate index see bindings made so far.
		resolved := st.subst.Resolve(sa.qid, sa.atom)

		// (1) Cover with an already-installed answer tuple.
		for _, tup := range c.store.Matching(resolved) {
			branch := st.clone()
			branch.uncovered = append([]scopedAtom(nil), rest...)
			if eq.UnifyGround(branch.subst, sa.qid, sa.atom, tup) {
				if res, ok := dfs(branch); ok {
					return res, true
				}
			}
		}

		// (2) Cover with a head atom of a query already in the set.
		for _, qid := range st.order {
			member := st.members[qid]
			for _, h := range member.q.Heads {
				if !eq.Unifiable(resolved, h) {
					continue
				}
				branch := st.clone()
				branch.uncovered = append([]scopedAtom(nil), rest...)
				if eq.UnifyAtoms(branch.subst, sa.qid, sa.atom, qid, h) {
					if res, ok := dfs(branch); ok {
						return res, true
					}
				}
			}
		}

		// (3) Recruit another pending query whose head covers the constraint.
		if len(st.members) < c.opts.MaxMatchSize {
			exclude := make(map[uint64]bool, len(st.members))
			for id := range st.members {
				exclude[id] = true
			}
			for _, ref := range c.candidates(resolved, exclude, ln, &sawForeign) {
				branch := st.clone()
				branch.uncovered = append([]scopedAtom(nil), rest...)
				if eq.UnifyAtoms(branch.subst, sa.qid, sa.atom, ref.p.id, ref.p.q.Heads[ref.headIdx]) {
					branch.join(ref.p)
					if res, ok := dfs(branch); ok {
						return res, true
					}
				}
			}
		}
		return nil, false
	}
	res, ok = dfs(newMatchState(trigger))
	return res, ok, sawForeign
}
