package coord

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/eq"
)

// refSearch is the PR-1 clone-per-branch matcher, kept verbatim as the
// semantic reference: every backtracking branch deep-copies the match state
// (substitution maps, member map, order slice, and the uncovered worklist)
// exactly like the pre-trail implementation. The differential tests install
// it via Coordinator.searchHook and assert the trailed matcher is
// observationally identical — same outcomes, same candidate order, same
// NodesExplored — for fixed seeds.
func refSearch(c *Coordinator, ln *lane, trigger *pending) (res *installResult, ok, sawForeign bool) {
	type refState struct {
		members   map[uint64]*pending
		order     []uint64
		subst     *eq.Subst
		uncovered []scopedAtom
	}
	newState := func(p *pending) *refState {
		st := &refState{
			members: map[uint64]*pending{p.id: p},
			order:   []uint64{p.id},
			subst:   eq.NewSubst(),
		}
		for _, cns := range p.q.Constraints {
			st.uncovered = append(st.uncovered, scopedAtom{qid: p.id, atom: cns})
		}
		return st
	}
	cloneState := func(st *refState) *refState {
		cl := &refState{
			members:   make(map[uint64]*pending, len(st.members)),
			order:     append([]uint64(nil), st.order...),
			subst:     st.subst.Clone(),
			uncovered: append([]scopedAtom(nil), st.uncovered...),
		}
		for k, v := range st.members {
			cl.members[k] = v
		}
		return cl
	}
	join := func(st *refState, p *pending) {
		st.members[p.id] = p
		st.order = append(st.order, p.id)
		for _, cns := range p.q.Constraints {
			st.uncovered = append(st.uncovered, scopedAtom{qid: p.id, atom: cns})
		}
	}
	// ground wants a *matchState; the shared fields are what it reads.
	groundable := func(st *refState) *matchState {
		return &matchState{members: st.members, order: st.order, subst: st.subst}
	}

	home := c.shards[trigger.home]
	nodes := 0
	var dfs func(st *refState) (*installResult, bool)
	dfs = func(st *refState) (*installResult, bool) {
		nodes++
		home.stats.NodesExplored.Add(1)
		if nodes > c.opts.MaxNodes {
			return nil, false
		}
		if len(st.uncovered) == 0 {
			res, ok := c.ground(home, groundable(st))
			if ok {
				return res, true
			}
			home.stats.GroundingFailures.Add(1)
			return nil, false
		}
		sa := st.uncovered[0]
		rest := st.uncovered[1:]
		resolved := st.subst.Resolve(sa.qid, sa.atom)

		for _, tup := range c.store.Matching(resolved) {
			branch := cloneState(st)
			branch.uncovered = append([]scopedAtom(nil), rest...)
			if eq.UnifyGround(branch.subst, sa.qid, sa.atom, tup) {
				if res, ok := dfs(branch); ok {
					return res, true
				}
			}
		}
		for _, qid := range st.order {
			member := st.members[qid]
			for _, h := range member.q.Heads {
				if !eq.Unifiable(resolved, h) {
					continue
				}
				branch := cloneState(st)
				branch.uncovered = append([]scopedAtom(nil), rest...)
				if eq.UnifyAtoms(branch.subst, sa.qid, sa.atom, qid, h) {
					if res, ok := dfs(branch); ok {
						return res, true
					}
				}
			}
		}
		if len(st.members) < c.opts.MaxMatchSize {
			for _, ref := range c.candidates(resolved, st.members, ln, &sawForeign, nil) {
				branch := cloneState(st)
				branch.uncovered = append([]scopedAtom(nil), rest...)
				if eq.UnifyAtoms(branch.subst, sa.qid, sa.atom, ref.p.id, ref.p.q.Heads[ref.headIdx]) {
					join(branch, ref.p)
					if res, ok := dfs(branch); ok {
						return res, true
					}
				}
			}
		}
		return nil, false
	}
	res, ok = dfs(newState(trigger))
	return res, ok, sawForeign
}

// diffOutcome is the observable result of one submission.
type diffOutcome struct {
	Answered  bool
	MatchSize int
	Answers   []Answer
}

// runDiffScenario submits the scripted queries in order and returns the
// per-submission outcomes, the final answer-relation contents, and the
// merged + per-shard stats.
func runDiffScenario(t *testing.T, c *Coordinator, subs []string) ([]diffOutcome, map[string][]string, StatsSnapshot, []StatsSnapshot) {
	t.Helper()
	handles := make([]*Handle, len(subs))
	for i, src := range subs {
		h, err := c.SubmitSQL(src, fmt.Sprintf("q%d", i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[i] = h
	}
	outs := make([]diffOutcome, len(subs))
	for i, h := range handles {
		if out, ok := h.TryOutcome(); ok {
			outs[i] = diffOutcome{Answered: true, MatchSize: out.MatchSize, Answers: out.Answers}
		}
	}
	rels := make(map[string][]string)
	for _, r := range c.Store().Relations() {
		var tups []string
		for _, tup := range c.Store().Tuples(r) {
			tups = append(tups, tup.Key())
		}
		sort.Strings(tups)
		rels[r] = tups
	}
	var perShard []StatsSnapshot
	for _, si := range c.Shards() {
		perShard = append(perShard, si.Stats)
	}
	return outs, rels, c.Stats(), perShard
}

// groupScenario is the E5 shape: a k-clique where every member constrains
// every other member's Reservation tuple.
func groupScenario(k int) []string {
	members := make([]string, k)
	for i := range members {
		members[i] = fmt.Sprintf("m%d", i)
	}
	var subs []string
	for i, self := range members {
		src := fmt.Sprintf("SELECT '%s', fno INTO ANSWER Reservation\nWHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')", self)
		for j, other := range members {
			if j != i {
				src += fmt.Sprintf("\nAND ('%s', fno) IN ANSWER Reservation", other)
			}
		}
		subs = append(subs, src+"\nCHOOSE 1")
	}
	return subs
}

// adHocScenario is the E7 shape: the Jerry–Kramer–Elaine overlap graph
// (flights-only edge plus a flights-and-hotels edge).
func adHocScenario() []string {
	jerry := `SELECT 'Jerry', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1`
	kramer := `SELECT ('Kramer', fno) INTO ANSWER Reservation, ('Kramer', hno) INTO ANSWER HotelReservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris')
		AND hno IN (SELECT hno FROM Hotels WHERE city = 'Paris')
		AND ('Jerry', fno) IN ANSWER Reservation
		AND ('Elaine', hno) IN ANSWER HotelReservation CHOOSE 1`
	elaine := `SELECT 'Elaine', hno INTO ANSWER HotelReservation
		WHERE hno IN (SELECT hno FROM Hotels WHERE city = 'Paris')
		AND ('Kramer', hno) IN ANSWER HotelReservation CHOOSE 1`
	return []string{jerry, kramer, elaine}
}

// loadedScenario parks never-matching loners around a pair, exercising the
// targeted-retry path and the candidate index under noise.
func loadedScenario() []string {
	var subs []string
	for i := 0; i < 12; i++ {
		subs = append(subs, fmt.Sprintf(`SELECT 'noise%d', fno INTO ANSWER Reservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
			AND ('ghost%d', fno) IN ANSWER Reservation CHOOSE 1`, i, i))
	}
	subs = append(subs, pairQuery("Kramer", "Jerry"), pairQuery("Jerry", "Kramer"))
	// A latecomer answered purely from installed answers.
	subs = append(subs, `SELECT 'Newman', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1`)
	return subs
}

// TestTrailedMatcherMatchesCloneReference is the PR-2 differential test:
// for fixed seeds and shard counts, the trailed mutate-and-undo matcher
// must produce outcomes, match sizes, answer relations, merged stats AND
// per-shard stats (including NodesExplored) identical to the clone-based
// PR-1 matcher on the E5/E7 scenario shapes.
func TestTrailedMatcherMatchesCloneReference(t *testing.T) {
	scenarios := map[string]func() []string{
		"E5_k2":  func() []string { return groupScenario(2) },
		"E5_k3":  func() []string { return groupScenario(3) },
		"E5_k4":  func() []string { return groupScenario(4) },
		"E5_k6":  func() []string { return groupScenario(6) },
		"E7":     adHocScenario,
		"loaded": loadedScenario,
	}
	for name, mk := range scenarios {
		for _, shards := range []int{1, 2} {
			for seed := int64(0); seed < 4; seed++ {
				t.Run(fmt.Sprintf("%s/shards=%d/seed=%d", name, shards, seed), func(t *testing.T) {
					opts := Options{UseIndex: true, GroundSmallestFirst: true, Seed: seed, Shards: shards}
					trailed, _ := newSystem(t, opts)
					ref, _ := newSystem(t, opts)
					ref.searchHook = func(ln *lane, trigger *pending) (*installResult, bool, bool) {
						return refSearch(ref, ln, trigger)
					}

					wantOuts, wantRels, wantStats, wantShards := runDiffScenario(t, ref, mk())
					gotOuts, gotRels, gotStats, gotShards := runDiffScenario(t, trailed, mk())

					if !reflect.DeepEqual(gotOuts, wantOuts) {
						t.Errorf("outcomes differ:\n got: %+v\nwant: %+v", gotOuts, wantOuts)
					}
					if !reflect.DeepEqual(gotRels, wantRels) {
						t.Errorf("answer relations differ:\n got: %v\nwant: %v", gotRels, wantRels)
					}
					if gotStats != wantStats {
						t.Errorf("stats differ:\n got: %+v\nwant: %+v", gotStats, wantStats)
					}
					if !reflect.DeepEqual(gotShards, wantShards) {
						t.Errorf("per-shard stats differ:\n got: %+v\nwant: %+v", gotShards, wantShards)
					}
				})
			}
		}
	}
}

// TestTrailedMatcherNegAndChoose extends the differential check to CHOOSE n
// and NOT IN ANSWER exclusions, which exercise grounding dedup and the
// negative-constraint path.
func TestTrailedMatcherNegAndChoose(t *testing.T) {
	mk := func() []string {
		a := `SELECT 'A', fno INTO ANSWER Reservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
			AND ('B', fno) IN ANSWER Reservation
			AND ('A', fno) NOT IN ANSWER Blacklist CHOOSE 2`
		b := `SELECT 'B', fno INTO ANSWER Reservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
			AND ('A', fno) IN ANSWER Reservation CHOOSE 2`
		return []string{a, b}
	}
	for seed := int64(0); seed < 6; seed++ {
		opts := Options{UseIndex: true, GroundSmallestFirst: true, Seed: seed}
		trailed, _ := newSystem(t, opts)
		ref, _ := newSystem(t, opts)
		ref.searchHook = func(ln *lane, trigger *pending) (*installResult, bool, bool) {
			return refSearch(ref, ln, trigger)
		}
		wantOuts, wantRels, wantStats, _ := runDiffScenario(t, ref, mk())
		gotOuts, gotRels, gotStats, _ := runDiffScenario(t, trailed, mk())
		if !reflect.DeepEqual(gotOuts, wantOuts) || !reflect.DeepEqual(gotRels, wantRels) || gotStats != wantStats {
			t.Errorf("seed %d: trailed and reference diverge\n got: %+v %v %+v\nwant: %+v %v %+v",
				seed, gotOuts, gotRels, gotStats, wantOuts, wantRels, wantStats)
		}
	}
}

// TestTrailedMatcherValidated runs a group scenario with ValidateMatches on:
// the matcher's central invariant is re-checked against the answer store
// after every finalized match (it panics on violation).
func TestTrailedMatcherValidated(t *testing.T) {
	opts := Options{UseIndex: true, GroundSmallestFirst: true, Seed: 9, ValidateMatches: true}
	c, _ := newSystem(t, opts)
	outs, _, stats, _ := runDiffScenario(t, c, groupScenario(4))
	answered := 0
	for _, o := range outs {
		if o.Answered {
			answered++
			if o.MatchSize != 4 {
				t.Errorf("match size %d, want 4", o.MatchSize)
			}
		}
	}
	if answered != 4 || stats.Matches != 1 {
		t.Errorf("answered=%d matches=%d", answered, stats.Matches)
	}
	// All four received the same flight.
	var flights []string
	for _, o := range outs {
		flights = append(flights, o.Answers[0].Tuples[0][1].String())
	}
	for _, f := range flights {
		if f != flights[0] {
			t.Fatalf("group split across flights: %v", flights)
		}
	}
}
