package coord

import (
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

// TestScanCompletesWhileMatchCommitsMidScan: a long snapshot scan over the
// shared answer relation parks mid-row while a fresh entangled pair matches,
// grounds, and commits new answer tuples underneath it. The scan must run to
// completion (no reader/writer blocking under MVCC), observe exactly its
// snapshot's tuples, and the committed match must be visible to the next
// snapshot. Run under -race this pins that coordination commits and
// concurrent snapshot reads are properly synchronized.
func TestScanCompletesWhileMatchCommitsMidScan(t *testing.T) {
	c, eng := newSystem(t, DefaultOptions())

	// Seed the answer relation: one matched pair → two Reservation tuples.
	h1, err := c.SubmitSQL(pairQuery("A", "B"), "a")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.SubmitSQL(pairQuery("B", "A"), "b")
	if err != nil {
		t.Fatal(err)
	}
	waitOutcome(t, h1)
	waitOutcome(t, h2)

	cat := eng.Catalog()
	rel, err := cat.Get("Reservation")
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Len(); got != 2 {
		t.Fatalf("Reservation has %d tuples before the scan, want 2", got)
	}

	var pin storage.SnapRef
	snap := storage.SnapshotAt(cat.PinSnapshot(&pin), nil)
	defer cat.UnpinSnapshot(&pin)

	parked := make(chan struct{})
	installed := make(chan struct{})
	go func() {
		defer close(installed)
		<-parked
		h3, err := c.SubmitSQL(pairQuery("C", "D"), "c")
		if err != nil {
			t.Error(err)
			return
		}
		h4, err := c.SubmitSQL(pairQuery("D", "C"), "d")
		if err != nil {
			t.Error(err)
			return
		}
		timeout := make(chan struct{})
		timer := time.AfterFunc(2*time.Second, func() { close(timeout) })
		defer timer.Stop()
		for _, h := range []*Handle{h3, h4} {
			if _, ok := h.Wait(timeout); !ok {
				t.Errorf("q%d not answered while a scan was in flight", h.ID)
				return
			}
		}
	}()

	n := 0
	rel.ScanAt(snap, func(_ storage.RowID, tup value.Tuple) bool {
		if n == 0 {
			close(parked)
			<-installed // the C/D match commits while this scan is mid-flight
		}
		if name := tup[0].Str(); name != "A" && name != "B" {
			t.Errorf("snapshot scan saw post-snapshot tuple %v", tup)
		}
		n++
		return true
	})
	if n != 2 {
		t.Fatalf("scan visited %d tuples, want the 2 in its snapshot", n)
	}
	if got := rel.Len(); got != 4 {
		t.Fatalf("Reservation has %d tuples after the mid-scan match, want 4", got)
	}
}
