package coord

import (
	"sync"
	"testing"
)

// TestHandleNotify pins the delivery contract the wire server relies on:
// every callback runs exactly once with the outcome, whether registered
// before or after delivery, and channel consumers still see the outcome.
func TestHandleNotify(t *testing.T) {
	h := &Handle{ID: 7, ch: make(chan Outcome, 1)}
	var got []Outcome
	h.Notify(func(o Outcome) { got = append(got, o) })
	h.Notify(func(o Outcome) { got = append(got, o) })
	h.deliver(Outcome{QueryID: 7, MatchSize: 2})
	if len(got) != 2 || got[0].MatchSize != 2 || got[1].MatchSize != 2 {
		t.Fatalf("callbacks = %+v", got)
	}
	// The channel got the outcome too (Wait/Done callers are unaffected).
	if out, ok := h.TryOutcome(); !ok || out.QueryID != 7 {
		t.Fatalf("channel delivery lost: %+v %v", out, ok)
	}
	// Late registration fires immediately with the stored outcome.
	fired := false
	h.Notify(func(o Outcome) { fired = o.QueryID == 7 })
	if !fired {
		t.Fatal("post-delivery Notify did not fire")
	}
}

// TestHandleNotifyConcurrent races registration against delivery: the
// callback must fire exactly once either way.
func TestHandleNotifyConcurrent(t *testing.T) {
	for i := 0; i < 200; i++ {
		h := &Handle{ID: 1, ch: make(chan Outcome, 1)}
		var mu sync.Mutex
		fires := 0
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			h.deliver(Outcome{QueryID: 1})
		}()
		go func() {
			defer wg.Done()
			h.Notify(func(Outcome) { mu.Lock(); fires++; mu.Unlock() })
		}()
		wg.Wait()
		if fires != 1 {
			t.Fatalf("iteration %d: callback fired %d times", i, fires)
		}
	}
}
