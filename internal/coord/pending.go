// Package coord implements the paper's coordination component (Figure 2):
// the pending-query tables, the matching algorithm that unifies entangled
// queries' answer constraints with other queries' contributions, the
// grounding of matched variable classes against the database through the
// execution engine, and the atomic installation of coordinated answers.
//
// The coordination logic runs whenever an entangled query arrives in the
// system (§2.2). A query whose constraints cannot yet be satisfied "is not
// rejected, but rather gets registered in the system for possible later
// execution" (§2.1) — that registration is the pending set kept here.
//
// The component is partitioned into relation-sharded coordination lanes
// (see shard.go): each answer relation is owned by one shard, each pending
// query is homed on one shard, and arrivals on disjoint relation footprints
// coordinate fully in parallel.
package coord

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/eq"
	"repro/internal/value"
)

// Outcome is what a coordinated query eventually receives.
type Outcome struct {
	QueryID uint64
	// Answers holds, parallel to the query's head atoms, the answer tuples
	// installed for this query — one tuple per grounding chosen (CHOOSE n).
	Answers []Answer
	// MatchSize is the number of queries answered jointly in the match.
	MatchSize int
	// Canceled is set when the query was withdrawn instead of answered.
	Canceled bool
}

// Answer is the contribution installed into one answer relation.
type Answer struct {
	Relation string
	Tuples   []value.Tuple
}

// Handle is the caller's side of a submitted entangled query.
type Handle struct {
	ID uint64
	ch chan Outcome
}

// Wait blocks until the query is answered or canceled, or until done is
// closed (e.g. a context's Done channel); ok is false in the latter case.
func (h *Handle) Wait(done <-chan struct{}) (Outcome, bool) {
	select {
	case out := <-h.ch:
		return out, true
	case <-done:
		return Outcome{QueryID: h.ID}, false
	}
}

// TryOutcome returns the outcome if it is already available.
func (h *Handle) TryOutcome() (Outcome, bool) {
	select {
	case out := <-h.ch:
		return out, true
	default:
		return Outcome{}, false
	}
}

// Done returns a channel that yields the outcome exactly once.
func (h *Handle) Done() <-chan Outcome { return h.ch }

// pending is one registered entangled query awaiting coordination.
type pending struct {
	id        uint64
	q         *eq.Query
	owner     string // optional submitter label for the admin interface
	submitted time.Time
	handle    *Handle

	// rels is the query's relation footprint (canonical answer relations of
	// its head, constraint and exclusion atoms); shards maps that footprint
	// to the sorted set of shard ids it spans, and home is shards[0] — the
	// shard whose pending table owns this query.
	rels   []string
	shards []int
	home   int
}

// headRef points at one head atom of a pending query — an entry in the
// paper's internal "pending query tables".
type headRef struct {
	p       *pending
	headIdx int
}

// registry is one shard's slice of the pending-query tables: the queries
// homed on the shard plus the candidate index over every head atom whose
// answer relation the shard owns (a cross-shard query's heads are indexed on
// the shards owning their relations, not on the query's home shard).
//
// The registry's own mutex makes the maps physically safe to read from any
// goroutine; logical consistency — no recruiting, finalizing, expiring or
// canceling a query concurrently — comes from the lane locking protocol in
// shard.go: every such action requires holding the query's home-shard round
// lock.
type registry struct {
	mu      sync.RWMutex
	queries map[uint64]*pending
	// byRelation indexes head atoms by answer-relation name; within a
	// relation, refs are stored under the Key() of their first constant
	// position ("" when the first position is a variable), which prunes
	// most non-unifiable candidates for constraint atoms that start with a
	// constant — like every traveler-name position in the travel app.
	byRelation map[string]map[string][]headRef
}

func newRegistry() *registry {
	return &registry{
		queries:    make(map[uint64]*pending),
		byRelation: make(map[string]map[string][]headRef),
	}
}

// indexKey buckets a head atom by its first-position constant.
func indexKey(a eq.Atom) string {
	if len(a.Terms) == 0 || a.Terms[0].IsVar {
		return ""
	}
	return value.Tuple{a.Terms[0].Const}.Key()
}

// probeKeys returns the index buckets that may contain heads unifiable with
// the constraint atom: the bucket of its first constant (or all buckets when
// it starts with a variable) plus the variable-headed bucket.
func probeKeys(a eq.Atom) (exact string, wildcardOnly bool) {
	if len(a.Terms) == 0 || a.Terms[0].IsVar {
		return "", false // must scan every bucket
	}
	return value.Tuple{a.Terms[0].Const}.Key(), true
}

// addQuery homes a pending query on this shard.
func (r *registry) addQuery(p *pending) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries[p.id] = p
}

// removeQuery drops a homed query.
func (r *registry) removeQuery(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.queries, id)
}

// addHead indexes one head atom of a pending query under this shard's
// candidate index (the shard owns the atom's relation).
func (r *registry) addHead(ref headRef, h eq.Atom) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rel := r.byRelation[h.Relation]
	if rel == nil {
		rel = make(map[string][]headRef)
		r.byRelation[h.Relation] = rel
	}
	k := indexKey(h)
	rel[k] = append(rel[k], ref)
}

// removeHeads prunes every index entry of query id under the given relation.
func (r *registry) removeHeads(id uint64, relation string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rel := r.byRelation[relation]
	for k, refs := range rel {
		out := refs[:0]
		for _, ref := range refs {
			if ref.p.id != id {
				out = append(out, ref)
			}
		}
		if len(out) == 0 {
			delete(rel, k)
		} else {
			rel[k] = out
		}
	}
	if len(rel) == 0 {
		delete(r.byRelation, relation)
	}
}

func (r *registry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.queries)
}

// homed returns a snapshot of this shard's pending queries ordered by
// submission id.
func (r *registry) homed() []*pending {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*pending, 0, len(r.queries))
	for _, p := range r.queries {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// relations lists the answer relations currently present in this shard's
// candidate index, sorted.
func (r *registry) relations() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byRelation))
	for rel := range r.byRelation {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out
}

// candidates returns head refs indexed under this shard that may unify with
// the constraint atom, excluding refs in the exclude set. Refs whose query
// the lane does not cover (its footprint spans shards outside the lane's
// lock set) are skipped, and *foreign is set so the caller can escalate; a
// nil lane covers everything (advisory reads like Diagnose).
func (r *registry) candidates(c eq.Atom, exclude map[uint64]bool, ln *lane, foreign *bool) []headRef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []headRef
	collect := func(refs []headRef) {
		for _, ref := range refs {
			if exclude[ref.p.id] {
				continue
			}
			if !eq.Unifiable(c, ref.p.q.Heads[ref.headIdx]) {
				continue
			}
			if ln != nil && !ln.covers(ref.p) {
				if foreign != nil {
					*foreign = true
				}
				continue
			}
			out = append(out, ref)
		}
	}
	rel, ok := r.byRelation[c.Relation]
	if !ok {
		return nil
	}
	exact, constFirst := probeKeys(c)
	if constFirst {
		collect(rel[exact])
		collect(rel[""]) // heads whose first position is a variable
	} else {
		for _, refs := range rel {
			collect(refs)
		}
	}
	sortRefs(out)
	return out
}

// sortRefs orders candidates by (query id, head index) so exploration is
// deterministic for a fixed seed.
func sortRefs(refs []headRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].p.id != refs[j].p.id {
			return refs[i].p.id < refs[j].p.id
		}
		return refs[i].headIdx < refs[j].headIdx
	})
}

// relationsOf returns the canonical answer relations a query touches.
func relationsOf(q *eq.Query) []string {
	rels := q.AnswerRelations()
	out := make([]string, len(rels))
	for i, r := range rels {
		out[i] = strings.ToLower(r)
	}
	return out
}
