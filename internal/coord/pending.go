// Package coord implements the paper's coordination component (Figure 2):
// the pending-query tables, the matching algorithm that unifies entangled
// queries' answer constraints with other queries' contributions, the
// grounding of matched variable classes against the database through the
// execution engine, and the atomic installation of coordinated answers.
//
// The coordination logic runs whenever an entangled query arrives in the
// system (§2.2). A query whose constraints cannot yet be satisfied "is not
// rejected, but rather gets registered in the system for possible later
// execution" (§2.1) — that registration is the pending set kept here.
package coord

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/eq"
	"repro/internal/value"
)

// Outcome is what a coordinated query eventually receives.
type Outcome struct {
	QueryID uint64
	// Answers holds, parallel to the query's head atoms, the answer tuples
	// installed for this query — one tuple per grounding chosen (CHOOSE n).
	Answers []Answer
	// MatchSize is the number of queries answered jointly in the match.
	MatchSize int
	// Canceled is set when the query was withdrawn instead of answered.
	Canceled bool
}

// Answer is the contribution installed into one answer relation.
type Answer struct {
	Relation string
	Tuples   []value.Tuple
}

// Handle is the caller's side of a submitted entangled query.
type Handle struct {
	ID uint64
	ch chan Outcome
}

// Wait blocks until the query is answered or canceled, or until done is
// closed (e.g. a context's Done channel); ok is false in the latter case.
func (h *Handle) Wait(done <-chan struct{}) (Outcome, bool) {
	select {
	case out := <-h.ch:
		return out, true
	case <-done:
		return Outcome{QueryID: h.ID}, false
	}
}

// TryOutcome returns the outcome if it is already available.
func (h *Handle) TryOutcome() (Outcome, bool) {
	select {
	case out := <-h.ch:
		return out, true
	default:
		return Outcome{}, false
	}
}

// Done returns a channel that yields the outcome exactly once.
func (h *Handle) Done() <-chan Outcome { return h.ch }

// pending is one registered entangled query awaiting coordination.
type pending struct {
	id        uint64
	q         *eq.Query
	owner     string // optional submitter label for the admin interface
	submitted time.Time
	handle    *Handle
}

// headRef points at one head atom of a pending query — an entry in the
// paper's internal "pending query tables".
type headRef struct {
	p       *pending
	headIdx int
}

// registry is the pending-query table plus the candidate index that the
// matcher probes for covering head atoms.
type registry struct {
	mu      sync.RWMutex
	queries map[uint64]*pending
	// byRelation indexes head atoms by answer-relation name; within a
	// relation, refs are stored under the Key() of their first constant
	// position ("" when the first position is a variable), which prunes
	// most non-unifiable candidates for constraint atoms that start with a
	// constant — like every traveler-name position in the travel app.
	byRelation map[string]map[string][]headRef
}

func newRegistry() *registry {
	return &registry{
		queries:    make(map[uint64]*pending),
		byRelation: make(map[string]map[string][]headRef),
	}
}

// indexKey buckets a head atom by its first-position constant.
func indexKey(a eq.Atom) string {
	if len(a.Terms) == 0 || a.Terms[0].IsVar {
		return ""
	}
	return value.Tuple{a.Terms[0].Const}.Key()
}

// probeKeys returns the index buckets that may contain heads unifiable with
// the constraint atom: the bucket of its first constant (or all buckets when
// it starts with a variable) plus the variable-headed bucket.
func probeKeys(a eq.Atom) (exact string, wildcardOnly bool) {
	if len(a.Terms) == 0 || a.Terms[0].IsVar {
		return "", false // must scan every bucket
	}
	return value.Tuple{a.Terms[0].Const}.Key(), true
}

func (r *registry) add(p *pending) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries[p.id] = p
	for i, h := range p.q.Heads {
		rel := r.byRelation[h.Relation]
		if rel == nil {
			rel = make(map[string][]headRef)
			r.byRelation[h.Relation] = rel
		}
		k := indexKey(h)
		rel[k] = append(rel[k], headRef{p: p, headIdx: i})
	}
}

func (r *registry) remove(id uint64) *pending {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.queries[id]
	if !ok {
		return nil
	}
	delete(r.queries, id)
	for _, h := range p.q.Heads {
		rel := r.byRelation[h.Relation]
		for k, refs := range rel {
			out := refs[:0]
			for _, ref := range refs {
				if ref.p.id != id {
					out = append(out, ref)
				}
			}
			if len(out) == 0 {
				delete(rel, k)
			} else {
				rel[k] = out
			}
		}
		if len(rel) == 0 {
			delete(r.byRelation, h.Relation)
		}
	}
	return p
}

func (r *registry) get(id uint64) *pending {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.queries[id]
}

func (r *registry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.queries)
}

// all returns a snapshot of pending queries ordered by submission id.
func (r *registry) all() []*pending {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*pending, 0, len(r.queries))
	for _, p := range r.queries {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// candidates returns head refs that may unify with the constraint atom,
// excluding refs belonging to queries in the exclude set. When useIndex is
// false it degrades to a linear scan over every head of every pending query
// (the A1 ablation baseline).
func (r *registry) candidates(c eq.Atom, exclude map[uint64]bool, useIndex bool) []headRef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []headRef
	if !useIndex {
		for _, p := range r.queries {
			if exclude[p.id] {
				continue
			}
			for i, h := range p.q.Heads {
				if eq.Unifiable(c, h) {
					out = append(out, headRef{p: p, headIdx: i})
				}
			}
		}
		sortRefs(out)
		return out
	}
	rel, ok := r.byRelation[c.Relation]
	if !ok {
		return nil
	}
	collect := func(refs []headRef) {
		for _, ref := range refs {
			if exclude[ref.p.id] {
				continue
			}
			if eq.Unifiable(c, ref.p.q.Heads[ref.headIdx]) {
				out = append(out, ref)
			}
		}
	}
	exact, constFirst := probeKeys(c)
	if constFirst {
		collect(rel[exact])
		collect(rel[""]) // heads whose first position is a variable
	} else {
		for _, refs := range rel {
			collect(refs)
		}
	}
	sortRefs(out)
	return out
}

// sortRefs orders candidates by (query id, head index) so exploration is
// deterministic for a fixed seed.
func sortRefs(refs []headRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].p.id != refs[j].p.id {
			return refs[i].p.id < refs[j].p.id
		}
		return refs[i].headIdx < refs[j].headIdx
	})
}

// relationsOf returns the canonical answer relations a query touches.
func relationsOf(q *eq.Query) []string {
	rels := q.AnswerRelations()
	out := make([]string, len(rels))
	for i, r := range rels {
		out[i] = strings.ToLower(r)
	}
	return out
}
