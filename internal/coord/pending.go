// Package coord implements the paper's coordination component (Figure 2):
// the pending-query tables, the matching algorithm that unifies entangled
// queries' answer constraints with other queries' contributions, the
// grounding of matched variable classes against the database through the
// execution engine, and the atomic installation of coordinated answers.
//
// The coordination logic runs whenever an entangled query arrives in the
// system (§2.2). A query whose constraints cannot yet be satisfied "is not
// rejected, but rather gets registered in the system for possible later
// execution" (§2.1) — that registration is the pending set kept here.
//
// The component is partitioned into relation-sharded coordination lanes
// (see shard.go): each answer relation is owned by one shard, each pending
// query is homed on one shard, and arrivals on disjoint relation footprints
// coordinate fully in parallel.
package coord

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/eq"
	"repro/internal/value"
)

// Outcome is what a coordinated query eventually receives.
type Outcome struct {
	QueryID uint64
	// Answers holds, parallel to the query's head atoms, the answer tuples
	// installed for this query — one tuple per grounding chosen (CHOOSE n).
	Answers []Answer
	// MatchSize is the number of queries answered jointly in the match.
	MatchSize int
	// Canceled is set when the query was withdrawn instead of answered.
	Canceled bool
}

// Answer is the contribution installed into one answer relation.
type Answer struct {
	Relation string
	Tuples   []value.Tuple
}

// Handle is the caller's side of a submitted entangled query.
type Handle struct {
	ID uint64
	ch chan Outcome

	mu        sync.Mutex
	notify    []func(Outcome)
	delivered bool
	out       Outcome
}

// deliver publishes the outcome exactly once: into the buffered channel
// (Wait/Done/TryOutcome) and to every registered Notify callback. It is
// called by the coordinator with lane locks held, so callbacks must not
// block.
func (h *Handle) deliver(out Outcome) {
	h.mu.Lock()
	h.delivered, h.out = true, out
	fns := h.notify
	h.notify = nil
	h.mu.Unlock()
	h.ch <- out // cap 1; delivery happens exactly once, so this never blocks
	for _, fn := range fns {
		fn(out)
	}
}

// Notify registers fn to run exactly once with the outcome, as soon as it is
// delivered — or immediately if it already was. Unlike Wait, Notify costs no
// goroutine: the server's connection writer uses it to turn coordination
// outcomes into queued wire events without a goroutine per pending query.
// fn runs on the delivering goroutine, which may hold coordination locks:
// it must not block and must not call back into the coordinator.
func (h *Handle) Notify(fn func(Outcome)) {
	h.mu.Lock()
	if h.delivered {
		out := h.out
		h.mu.Unlock()
		fn(out)
		return
	}
	h.notify = append(h.notify, fn)
	h.mu.Unlock()
}

// Wait blocks until the query is answered or canceled, or until done is
// closed (e.g. a context's Done channel); ok is false in the latter case.
func (h *Handle) Wait(done <-chan struct{}) (Outcome, bool) {
	select {
	case out := <-h.ch:
		return out, true
	case <-done:
		return Outcome{QueryID: h.ID}, false
	}
}

// TryOutcome returns the outcome if it is already available.
func (h *Handle) TryOutcome() (Outcome, bool) {
	select {
	case out := <-h.ch:
		return out, true
	default:
		return Outcome{}, false
	}
}

// Done returns a channel that yields the outcome exactly once.
func (h *Handle) Done() <-chan Outcome { return h.ch }

// pending is one registered entangled query awaiting coordination.
type pending struct {
	id        uint64
	q         *eq.Query
	owner     string // optional submitter label for the admin interface
	submitted time.Time
	handle    *Handle

	// rels is the query's relation footprint (canonical answer relations of
	// its head, constraint and exclusion atoms); shards maps that footprint
	// to the sorted set of shard ids it spans, and home is shards[0] — the
	// shard whose pending table owns this query.
	rels   []string
	shards []int
	home   int
}

// headRef points at one head atom of a pending query — an entry in the
// paper's internal "pending query tables".
type headRef struct {
	p       *pending
	headIdx int
}

// registry is one shard's slice of the pending-query tables: the queries
// homed on the shard plus the candidate index over every head atom whose
// answer relation the shard owns (a cross-shard query's heads are indexed on
// the shards owning their relations, not on the query's home shard).
//
// The registry's own mutex makes the maps physically safe to read from any
// goroutine; logical consistency — no recruiting, finalizing, expiring or
// canceling a query concurrently — comes from the lane locking protocol in
// shard.go: every such action requires holding the query's home-shard round
// lock.
type registry struct {
	mu      sync.RWMutex
	queries map[uint64]*pending
	// byRelation indexes head atoms by answer-relation name; within a
	// relation, refs are stored under the key of their first constant
	// position ("" when the first position is a variable), which prunes
	// most non-unifiable candidates for constraint atoms that start with a
	// constant — like every traveler-name position in the travel app.
	// Buckets are kept sorted by (query id, head index) at insert time, so
	// the probe path returns deterministically ordered candidates without a
	// per-call sort: ordering work happens once per head registration, not
	// once per search node.
	byRelation map[string]map[string][]headRef
}

func newRegistry() *registry {
	return &registry{
		queries:    make(map[uint64]*pending),
		byRelation: make(map[string]map[string][]headRef),
	}
}

// indexKey buckets a head atom by its first-position constant.
func indexKey(a eq.Atom) string {
	if len(a.Terms) == 0 || a.Terms[0].IsVar {
		return ""
	}
	var kb [64]byte
	return string(a.Terms[0].Const.AppendKey(kb[:0]))
}

// probeKey appends the index-bucket key of the constraint atom's first
// constant to b (a stack scratch buffer on the probe path, so the per-node
// candidate lookup allocates nothing). constFirst is false when the atom
// starts with a variable and every bucket must be scanned.
func probeKey(b []byte, a eq.Atom) (key []byte, constFirst bool) {
	if len(a.Terms) == 0 || a.Terms[0].IsVar {
		return nil, false // must scan every bucket
	}
	return a.Terms[0].Const.AppendKey(b), true
}

// addQuery homes a pending query on this shard.
func (r *registry) addQuery(p *pending) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries[p.id] = p
}

// removeQuery drops a homed query.
func (r *registry) removeQuery(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.queries, id)
}

// addHead indexes one head atom of a pending query under this shard's
// candidate index (the shard owns the atom's relation). The ref is inserted
// at its sorted (query id, head index) position, keeping the bucket ordered
// so candidates never sorts on the probe path.
func (r *registry) addHead(ref headRef, h eq.Atom) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rel := r.byRelation[h.Relation]
	if rel == nil {
		rel = make(map[string][]headRef)
		r.byRelation[h.Relation] = rel
	}
	k := indexKey(h)
	refs := rel[k]
	i := sort.Search(len(refs), func(i int) bool { return refLess(ref, refs[i]) })
	refs = append(refs, headRef{})
	copy(refs[i+1:], refs[i:])
	refs[i] = ref
	rel[k] = refs
}

// removeHeads prunes every index entry of query id under the given relation.
func (r *registry) removeHeads(id uint64, relation string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rel := r.byRelation[relation]
	for k, refs := range rel {
		out := refs[:0]
		for _, ref := range refs {
			if ref.p.id != id {
				out = append(out, ref)
			}
		}
		if len(out) == 0 {
			delete(rel, k)
		} else {
			rel[k] = out
		}
	}
	if len(rel) == 0 {
		delete(r.byRelation, relation)
	}
}

func (r *registry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.queries)
}

// homed returns a snapshot of this shard's pending queries ordered by
// submission id.
func (r *registry) homed() []*pending {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*pending, 0, len(r.queries))
	for _, p := range r.queries {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// relations lists the answer relations currently present in this shard's
// candidate index, sorted.
func (r *registry) relations() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byRelation))
	for rel := range r.byRelation {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out
}

// candidates appends to buf (reused from length 0) the head refs indexed
// under this shard that may unify with the constraint atom, excluding refs
// of queries already in the match set. Refs whose query the lane does not
// cover (its footprint spans shards outside the lane's lock set) are
// skipped, and *foreign is set so the caller can escalate; a nil lane covers
// everything (advisory reads like Diagnose).
//
// Output is ordered by (query id, head index). The common constant-first
// probe merges the two relevant buckets — already sorted at insert time —
// with two cursors; only the rare variable-first probe, which must visit
// every bucket of the relation, still sorts.
func (r *registry) candidates(c eq.Atom, members map[uint64]*pending, ln *lane, foreign *bool, buf []headRef) []headRef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := buf[:0]
	keep := func(ref headRef) bool {
		if _, in := members[ref.p.id]; in {
			return false
		}
		if !eq.Unifiable(c, ref.p.q.Heads[ref.headIdx]) {
			return false
		}
		if ln != nil && !ln.covers(ref.p) {
			if foreign != nil {
				*foreign = true
			}
			return false
		}
		return true
	}
	rel, ok := r.byRelation[c.Relation]
	if !ok {
		return out
	}
	var kb [64]byte
	exact, constFirst := probeKey(kb[:0], c)
	if constFirst {
		// Merge the first-constant bucket with the variable-headed bucket.
		a, b := rel[string(exact)], rel[""]
		for len(a) > 0 || len(b) > 0 {
			var ref headRef
			if len(b) == 0 || (len(a) > 0 && refLess(a[0], b[0])) {
				ref, a = a[0], a[1:]
			} else {
				ref, b = b[0], b[1:]
			}
			if keep(ref) {
				out = append(out, ref)
			}
		}
	} else {
		for _, refs := range rel {
			for _, ref := range refs {
				if keep(ref) {
					out = append(out, ref)
				}
			}
		}
		sortRefs(out)
	}
	return out
}

// refLess orders candidates by (query id, head index) — the deterministic
// exploration order of the matcher.
func refLess(a, b headRef) bool {
	if a.p.id != b.p.id {
		return a.p.id < b.p.id
	}
	return a.headIdx < b.headIdx
}

// sortRefs sorts refs by refLess; only the variable-first probe and the A1
// no-index ablation still need it.
func sortRefs(refs []headRef) {
	sort.Slice(refs, func(i, j int) bool { return refLess(refs[i], refs[j]) })
}

// relationsOf returns the canonical answer relations a query touches.
func relationsOf(q *eq.Query) []string {
	rels := q.AnswerRelations()
	out := make([]string, len(rels))
	for i, r := range rels {
		out[i] = strings.ToLower(r)
	}
	return out
}
