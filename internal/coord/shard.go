package coord

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/value"
)

// coordShard is one relation-partitioned coordination lane. Every answer
// relation is owned by exactly one shard (shardID hashes the relation name),
// and every pending query is homed on the lowest shard its footprint
// touches. A shard carries its own round lock, pending registry, candidate
// index, RNG and counters, so arrivals whose footprints map to different
// shards match, ground and install answers fully in parallel.
type coordShard struct {
	id    int
	round sync.Mutex // serializes coordination rounds involving this shard
	reg   *registry
	stats Stats

	rngMu sync.Mutex
	rng   *rand.Rand

	// scratch holds the matcher's and grounder's reusable buffers. A search
	// (and its groundings) runs while holding the trigger's home-shard round
	// lock, so the home shard's scratch is exclusively owned for the whole
	// search — no pools, no per-branch allocation.
	scratch  searchScratch
	gscratch groundScratch
}

// shuffle permutes tuples using the shard's seeded RNG — the
// nondeterministic choice of §2.1.
func (s *coordShard) shuffle(tuples []value.Tuple) {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	s.rng.Shuffle(len(tuples), func(i, j int) {
		tuples[i], tuples[j] = tuples[j], tuples[i]
	})
}

// shardID maps a canonical relation name to its owning shard.
func (c *Coordinator) shardID(relation string) int {
	if len(c.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(strings.ToLower(relation))) //nolint:errcheck // fnv never fails
	return int(h.Sum32() % uint32(len(c.shards)))
}

// shardFor returns the shard owning a relation.
func (c *Coordinator) shardFor(relation string) *coordShard {
	return c.shards[c.shardID(relation)]
}

// shardSet maps a relation footprint to the sorted set of shard ids it
// spans. Footprints are tiny, so dedup is a linear scan rather than a map.
func (c *Coordinator) shardSet(rels []string) []int {
	out := make([]int, 0, len(rels))
	for _, r := range rels {
		id := c.shardID(r)
		dup := false
		for _, s := range out {
			if s == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// lane is a set of shard round locks held by one coordination round. Locks
// are always acquired in ascending shard-id order, so concurrent lanes —
// single-shard arrivals, cross-shard escalations, expiry sweeps — are
// deadlock-free by the ordered-resource argument.
//
// The locking invariant the matcher relies on: a round may recruit,
// finalize, expire or cancel a pending query only while holding every shard
// of that query's footprint (covers). Since a query's home shard is part of
// its footprint, two rounds can never act on the same query concurrently.
type lane struct {
	c  *Coordinator
	in []bool // shard id → locked by this lane
}

// lockLane acquires the round locks of the given shards (sorted unique ids)
// in ascending order. Lanes are pooled: unlock zeroes the held set and
// returns the lane for the next round.
func (c *Coordinator) lockLane(ids []int) *lane {
	ln, _ := c.lanePool.Get().(*lane)
	if ln == nil {
		ln = &lane{c: c, in: make([]bool, len(c.shards))}
	}
	for _, id := range ids {
		c.shards[id].round.Lock()
		ln.in[id] = true
	}
	return ln
}

// unlock releases every held round lock and recycles the lane; the caller
// must not touch the lane afterwards.
func (ln *lane) unlock() {
	for id := len(ln.in) - 1; id >= 0; id-- {
		if ln.in[id] {
			ln.c.shards[id].round.Unlock()
			ln.in[id] = false
		}
	}
	ln.c.lanePool.Put(ln)
}

// covers reports whether the lane holds every shard of p's footprint — the
// precondition for recruiting p into a match or delivering its outcome.
func (ln *lane) covers(p *pending) bool {
	for _, s := range p.shards {
		if !ln.in[s] {
			return false
		}
	}
	return true
}

// shardIDs returns the sorted ids the lane holds.
func (ln *lane) shardIDs() []int {
	var out []int
	for id, held := range ln.in {
		if held {
			out = append(out, id)
		}
	}
	return out
}

// allShardIDs returns every shard id, ascending.
func (c *Coordinator) allShardIDs() []int {
	out := make([]int, len(c.shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// closure widens a shard set to its transitive closure over the footprints
// of currently pending queries: any pending query whose footprint intersects
// the set pulls its remaining shards in, repeatedly, until a fixpoint. A
// round that locks the closure can recruit every pending query transitively
// reachable from its trigger through shared relations — the cross-shard
// escalation path. The computation is advisory (it reads the pending set
// without round locks); safety never depends on it, because covers() is
// re-checked at recruit time under the locks actually held.
func (c *Coordinator) closure(seed []int) []int {
	in := make([]bool, len(c.shards))
	n := 0
	add := func(s int) {
		if !in[s] {
			in[s] = true
			n++
		}
	}
	for _, s := range seed {
		add(s)
	}
	for {
		grew := false
		c.byID.Range(func(_, v any) bool {
			p := v.(*pending)
			hit, sub := false, true
			for _, s := range p.shards {
				if in[s] {
					hit = true
				} else {
					sub = false
				}
			}
			if hit && !sub {
				for _, s := range p.shards {
					add(s)
				}
				grew = true
			}
			return n < len(c.shards) // stop early at the full set
		})
		if !grew || n == len(c.shards) {
			break
		}
	}
	out := make([]int, 0, n)
	for s, ok := range in {
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// register installs a pending query into the sharded tables: the query is
// homed on its lowest-footprint shard, and each head atom is indexed on the
// shard owning its relation. Caller holds every shard of p's footprint.
func (c *Coordinator) register(p *pending) {
	c.shards[p.home].reg.addQuery(p)
	for i, h := range p.q.Heads {
		c.shardFor(h.Relation).reg.addHead(headRef{p: p, headIdx: i}, h)
	}
	c.byID.Store(p.id, p)
}

// unregister atomically claims and removes a pending query from every
// sharded table, returning nil when some other round already claimed it.
// The byID LoadAndDelete is the single claim gate: exactly one of match
// finalization, TTL expiry and cancellation wins. Caller holds p's home
// shard round lock.
func (c *Coordinator) unregister(id uint64) *pending {
	v, ok := c.byID.LoadAndDelete(id)
	if !ok {
		return nil
	}
	p := v.(*pending)
	c.shards[p.home].reg.removeQuery(id)
	seen := make(map[string]bool, len(p.q.Heads))
	for _, h := range p.q.Heads {
		if seen[h.Relation] {
			continue
		}
		seen[h.Relation] = true
		c.shardFor(h.Relation).reg.removeHeads(id, h.Relation)
	}
	return p
}

// isPending reports whether the query is still registered.
func (c *Coordinator) isPending(id uint64) bool {
	_, ok := c.byID.Load(id)
	return ok
}

// allPending snapshots every pending query across shards, ordered by
// submission id.
func (c *Coordinator) allPending() []*pending {
	var out []*pending
	c.byID.Range(func(_, v any) bool {
		out = append(out, v.(*pending))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
