package coord

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// relOnShard finds a relation name (with the given prefix) that the
// coordinator routes to the wanted shard.
func relOnShard(t *testing.T, c *Coordinator, prefix string, shard int) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if c.shardID(name) == shard {
			return name
		}
	}
	t.Fatalf("no %q relation hashes to shard %d of %d", prefix, shard, c.NumShards())
	return ""
}

// pairQueryInto is pairQuery over an arbitrary answer relation.
func pairQueryInto(rel, self, friend string) string {
	return fmt.Sprintf(`SELECT '%s', fno INTO ANSWER %s
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('%s', fno) IN ANSWER %s
		CHOOSE 1`, self, rel, friend, rel)
}

// tripQueryInto renders a two-atom query contributing to relA and relB,
// constrained on friend in both — a footprint spanning both relations.
func tripQueryInto(relA, relB, self, friend string) string {
	return fmt.Sprintf(`SELECT ('%[1]s', fno) INTO ANSWER %[3]s, ('%[1]s', hno) INTO ANSWER %[4]s
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND hno IN (SELECT hno FROM Hotels WHERE city='Paris')
		AND ('%[2]s', fno) IN ANSWER %[3]s
		AND ('%[2]s', hno) IN ANSWER %[4]s
		CHOOSE 1`, self, friend, relA, relB)
}

// TestShardRouting pins the routing rules: every relation maps to shard 0
// when there is one shard, a query's shard set is sorted and deduplicated,
// and its home is the lowest shard of the footprint.
func TestShardRouting(t *testing.T) {
	single, _ := newSystem(t, DefaultOptions())
	if single.NumShards() != 1 {
		t.Fatalf("default shards = %d, want 1", single.NumShards())
	}
	for _, rel := range []string{"reservation", "hotelreservation", "anything"} {
		if id := single.shardID(rel); id != 0 {
			t.Errorf("shards=1: shardID(%s) = %d", rel, id)
		}
	}

	c, _ := newSystem(t, Options{Shards: 4, UseIndex: true, GroundSmallestFirst: true})
	rel0 := relOnShard(t, c, "ra", 0)
	rel3 := relOnShard(t, c, "rb", 3)
	set := c.shardSet([]string{rel3, rel0, rel3})
	if len(set) != 2 || set[0] != 0 || set[1] != 3 {
		t.Fatalf("shardSet = %v, want [0 3]", set)
	}

	h, err := c.SubmitSQL(tripQueryInto(rel0, rel3, "A", "B"), "a")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c.byID.Load(h.ID)
	if !ok {
		t.Fatal("query not pending")
	}
	p := v.(*pending)
	if p.home != 0 || len(p.shards) != 2 || p.shards[1] != 3 {
		t.Fatalf("home=%d shards=%v, want home=0 shards=[0 3]", p.home, p.shards)
	}
}

// TestCrossShardMatching is the cross-shard correctness table: the same
// scenario — pairs on one relation, spanning trips over two, and the 3-way
// ad-hoc chain needing escalation — must coordinate to the same outcomes
// under every shard count, with stats snapshots consistent with the
// shards=1 run. ValidateMatches re-checks the matcher invariant throughout.
func TestCrossShardMatching(t *testing.T) {
	type scenario struct {
		name string
		// run submits the scenario's queries and returns the handles that
		// must all be answered.
		run func(t *testing.T, c *Coordinator) []*Handle
	}
	scenarios := []scenario{
		{"pair/one-relation", func(t *testing.T, c *Coordinator) []*Handle {
			h1, err := c.SubmitSQL(pairQueryInto("resp", "Jerry", "Kramer"), "j")
			if err != nil {
				t.Fatal(err)
			}
			h2, err := c.SubmitSQL(pairQueryInto("resp", "Kramer", "Jerry"), "k")
			if err != nil {
				t.Fatal(err)
			}
			return []*Handle{h1, h2}
		}},
		{"trip/spanning-two-relations", func(t *testing.T, c *Coordinator) []*Handle {
			h1, err := c.SubmitSQL(tripQueryInto("resf", "resh", "Jerry", "Kramer"), "j")
			if err != nil {
				t.Fatal(err)
			}
			h2, err := c.SubmitSQL(tripQueryInto("resf", "resh", "Kramer", "Jerry"), "k")
			if err != nil {
				t.Fatal(err)
			}
			return []*Handle{h1, h2}
		}},
		{"adhoc/3-way-chain-escalation", func(t *testing.T, c *Coordinator) []*Handle {
			// Jerry↔Kramer entangle on flights, Kramer↔Elaine on hotels;
			// Elaine's single-relation arrival must escalate to recruit
			// Kramer, whose footprint spans both relations.
			jerry := pairQueryInto("resf", "Jerry", "Kramer")
			kramer := tripQueryInto("resf", "resh", "Kramer", "Jerry")
			// Kramer's hotel partner is Elaine, not Jerry: patch the hotel
			// constraint by building it explicitly instead.
			kramer = `SELECT ('Kramer', fno) INTO ANSWER resf, ('Kramer', hno) INTO ANSWER resh
				WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
				AND hno IN (SELECT hno FROM Hotels WHERE city='Paris')
				AND ('Jerry', fno) IN ANSWER resf
				AND ('Elaine', hno) IN ANSWER resh CHOOSE 1`
			elaine := `SELECT 'Elaine', hno INTO ANSWER resh
				WHERE hno IN (SELECT hno FROM Hotels WHERE city='Paris')
				AND ('Kramer', hno) IN ANSWER resh CHOOSE 1`
			var hs []*Handle
			for _, q := range []struct{ src, owner string }{
				{jerry, "j"}, {kramer, "k"}, {elaine, "e"},
			} {
				h, err := c.SubmitSQL(q.src, q.owner)
				if err != nil {
					t.Fatal(err)
				}
				hs = append(hs, h)
			}
			return hs
		}},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var baseline StatsSnapshot
			for _, shards := range []int{1, 2, 3, 8} {
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					c, _ := newSystem(t, Options{
						Shards: shards, UseIndex: true, GroundSmallestFirst: true,
						ValidateMatches: true,
					})
					handles := sc.run(t, c)
					for _, h := range handles {
						out := waitOutcome(t, h)
						if out.Canceled || len(out.Answers) == 0 {
							t.Fatalf("q%d not answered: %+v", h.ID, out)
						}
					}
					if n := c.PendingCount(); n != 0 {
						t.Fatalf("pending = %d after full coordination", n)
					}
					s := c.Stats()
					if shards == 1 {
						baseline = s
						return
					}
					// The merged snapshot of a sharded run must agree with
					// the serialized run on the coordination outcome
					// counters (search effort and escalations may differ).
					if s.Submitted != baseline.Submitted || s.Answered != baseline.Answered ||
						s.Matches != baseline.Matches || s.Parked != baseline.Parked {
						t.Fatalf("stats diverged from shards=1:\n got %+v\nwant submitted=%d answered=%d matches=%d parked=%d",
							s, baseline.Submitted, baseline.Answered, baseline.Matches, baseline.Parked)
					}
				})
			}
		})
	}
}

// TestCrossShardEscalationOrder exercises both arrival orders around the
// escalation path with relations pinned to distinct shards: the spanning
// query arriving before AND after its single-relation partners.
func TestCrossShardEscalationOrder(t *testing.T) {
	for _, spanningFirst := range []bool{true, false} {
		t.Run(fmt.Sprintf("spanningFirst=%v", spanningFirst), func(t *testing.T) {
			c, _ := newSystem(t, Options{
				Shards: 2, UseIndex: true, GroundSmallestFirst: true, ValidateMatches: true,
			})
			relA := relOnShard(t, c, "qa", 0)
			relB := relOnShard(t, c, "qb", 1)
			spanning := tripQueryInto(relA, relB, "Kramer", "Jerry")
			partner := fmt.Sprintf(`SELECT ('Jerry', fno) INTO ANSWER %[1]s, ('Jerry', hno) INTO ANSWER %[2]s
				WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
				AND hno IN (SELECT hno FROM Hotels WHERE city='Paris')
				AND ('Kramer', fno) IN ANSWER %[1]s
				AND ('Kramer', hno) IN ANSWER %[2]s CHOOSE 1`, relA, relB)
			srcs := []string{spanning, partner}
			if !spanningFirst {
				srcs = []string{partner, spanning}
			}
			h1, err := c.SubmitSQL(srcs[0], "first")
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := h1.TryOutcome(); ok {
				t.Fatal("first query answered without its partner")
			}
			h2, err := c.SubmitSQL(srcs[1], "second")
			if err != nil {
				t.Fatal(err)
			}
			o1, o2 := waitOutcome(t, h1), waitOutcome(t, h2)
			if o1.MatchSize != 2 || o2.MatchSize != 2 {
				t.Fatalf("match sizes %d/%d, want 2/2", o1.MatchSize, o2.MatchSize)
			}
		})
	}
}

// TestSingleRelationPartnerEscalates pins the subtle half of the escalation
// path: a SINGLE-relation arrival whose only possible partner spans two
// shards. The arrival's own lane cannot recruit the spanning query (its
// footprint is not covered), so the round must widen to the footprint
// closure and match there.
func TestSingleRelationPartnerEscalates(t *testing.T) {
	c, _ := newSystem(t, Options{
		Shards: 2, UseIndex: true, GroundSmallestFirst: true, ValidateMatches: true,
	})
	relA := relOnShard(t, c, "ea", 0)
	relB := relOnShard(t, c, "eb", 1)

	// Kramer spans both relations; Jerry and Elaine each touch one.
	kramer := fmt.Sprintf(`SELECT ('Kramer', fno) INTO ANSWER %[1]s, ('Kramer', hno) INTO ANSWER %[2]s
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND hno IN (SELECT hno FROM Hotels WHERE city='Paris')
		AND ('Jerry', fno) IN ANSWER %[1]s
		AND ('Elaine', hno) IN ANSWER %[2]s CHOOSE 1`, relA, relB)
	jerry := pairQueryInto(relA, "Jerry", "Kramer")
	elaine := fmt.Sprintf(`SELECT 'Elaine', hno INTO ANSWER %[1]s
		WHERE hno IN (SELECT hno FROM Hotels WHERE city='Paris')
		AND ('Kramer', hno) IN ANSWER %[1]s CHOOSE 1`, relB)

	hK, err := c.SubmitSQL(kramer, "k")
	if err != nil {
		t.Fatal(err)
	}
	hJ, err := c.SubmitSQL(jerry, "j")
	if err != nil {
		t.Fatal(err)
	}
	// Jerry+Kramer alone cannot complete (Kramer also needs Elaine).
	if _, ok := hK.TryOutcome(); ok {
		t.Fatal("Kramer answered without Elaine")
	}
	hE, err := c.SubmitSQL(elaine, "e")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*Handle{hK, hJ, hE} {
		out := waitOutcome(t, h)
		if out.MatchSize != 3 {
			t.Fatalf("q%d match size = %d, want 3", h.ID, out.MatchSize)
		}
	}
	if s := c.Stats(); s.Escalations == 0 {
		t.Fatal("expected at least one cross-shard escalation")
	}
}

// TestTTLExpiryPerShard verifies the lease fires per shard: an arrival's
// expiry pass sweeps only the lanes it locks, and ExpirePending sweeps all.
func TestTTLExpiryPerShard(t *testing.T) {
	c, _ := newSystem(t, Options{
		Shards: 2, UseIndex: true, GroundSmallestFirst: true,
		PendingTTL: 30 * time.Millisecond,
	})
	relA := relOnShard(t, c, "ta", 0)
	relB := relOnShard(t, c, "tb", 1)

	hA, err := c.SubmitSQL(pairQueryInto(relA, "lonerA", "ghostA"), "a")
	if err != nil {
		t.Fatal(err)
	}
	hB, err := c.SubmitSQL(pairQueryInto(relB, "lonerB", "ghostB"), "b")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// A fresh arrival on relA's shard sweeps only that lane.
	if _, err := c.SubmitSQL(pairQueryInto(relA, "fresh", "ghostC"), "c"); err != nil {
		t.Fatal(err)
	}
	if out, ok := hA.TryOutcome(); !ok || !out.Canceled {
		t.Fatalf("lonerA not expired by same-shard arrival (ok=%v out=%+v)", ok, out)
	}
	if _, ok := hB.TryOutcome(); ok {
		t.Fatal("lonerB expired by an arrival on the other shard")
	}
	shardB := c.shardID(relB)
	if exp := c.Shards()[shardB].Stats.Expired; exp != 0 {
		t.Fatalf("shard %d expired = %d before its sweep", shardB, exp)
	}

	// The global sweep locks every lane and clears the rest.
	time.Sleep(50 * time.Millisecond)
	n := c.ExpirePending()
	if n < 1 {
		t.Fatalf("ExpirePending = %d, want >= 1", n)
	}
	if out, ok := hB.TryOutcome(); !ok || !out.Canceled {
		t.Fatalf("lonerB not expired by global sweep (ok=%v out=%+v)", ok, out)
	}
	if exp := c.Shards()[shardB].Stats.Expired; exp == 0 {
		t.Fatalf("shard %d Expired counter not incremented", shardB)
	}
}

// TestLaneIndependence is the hardware-independent form of the sharding
// payoff: while one lane's round lock is held (a slow coordination round in
// flight), an arrival routed to a different lane still coordinates to
// completion — with a single serialized round it would block.
func TestLaneIndependence(t *testing.T) {
	c, _ := newSystem(t, Options{Shards: 4, UseIndex: true, GroundSmallestFirst: true})
	relBusy := relOnShard(t, c, "busy", 1)
	relFree := relOnShard(t, c, "free", 2)

	c.shards[c.shardID(relBusy)].round.Lock()
	defer c.shards[c.shardID(relBusy)].round.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		h1, err := c.SubmitSQL(pairQueryInto(relFree, "A", "B"), "a")
		if err != nil {
			t.Error(err)
			return
		}
		h2, err := c.SubmitSQL(pairQueryInto(relFree, "B", "A"), "b")
		if err != nil {
			t.Error(err)
			return
		}
		waitOutcome(t, h1)
		waitOutcome(t, h2)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("arrival on an independent lane blocked behind a busy lane")
	}
}

// TestCancelCrossShard cancels a footprint-spanning query and verifies the
// withdrawal is delivered exactly once and the pending tables are clean.
func TestCancelCrossShard(t *testing.T) {
	c, _ := newSystem(t, Options{Shards: 4, UseIndex: true, GroundSmallestFirst: true})
	relA := relOnShard(t, c, "ca", 0)
	relB := relOnShard(t, c, "cb", 3)
	h, err := c.SubmitSQL(tripQueryInto(relA, relB, "A", "B"), "a")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Cancel(h.ID) {
		t.Fatal("Cancel returned false for a pending query")
	}
	if out, ok := h.TryOutcome(); !ok || !out.Canceled {
		t.Fatalf("canceled outcome not delivered: ok=%v out=%+v", ok, out)
	}
	if c.Cancel(h.ID) {
		t.Fatal("second Cancel succeeded")
	}
	if n := c.PendingCount(); n != 0 {
		t.Fatalf("pending = %d after cancel", n)
	}
	for _, si := range c.Shards() {
		if len(si.Relations) != 0 {
			t.Fatalf("shard %d still indexes %v after cancel", si.ID, si.Relations)
		}
	}
}

// TestConcurrentDisjointLanes hammers independent lanes from concurrent
// submitters with the matcher self-check on: every pair must coordinate,
// and the merged counters must account for every query.
func TestConcurrentDisjointLanes(t *testing.T) {
	c, _ := newSystem(t, Options{
		Shards: 4, UseIndex: true, GroundSmallestFirst: true, ValidateMatches: true,
	})
	const workers, pairsEach = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rel := fmt.Sprintf("lane%d", w)
			for i := 0; i < pairsEach; i++ {
				a := fmt.Sprintf("w%d_p%d_a", w, i)
				b := fmt.Sprintf("w%d_p%d_b", w, i)
				h1, err := c.SubmitSQL(pairQueryInto(rel, a, b), a)
				if err != nil {
					errs <- err
					return
				}
				h2, err := c.SubmitSQL(pairQueryInto(rel, b, a), b)
				if err != nil {
					errs <- err
					return
				}
				done := make(chan struct{})
				timer := time.AfterFunc(10*time.Second, func() { close(done) })
				if _, ok := h1.Wait(done); !ok {
					errs <- fmt.Errorf("worker %d pair %d: q%d unanswered", w, i, h1.ID)
					return
				}
				if _, ok := h2.Wait(done); !ok {
					errs <- fmt.Errorf("worker %d pair %d: q%d unanswered", w, i, h2.ID)
					return
				}
				timer.Stop()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := c.Stats()
	want := uint64(workers * pairsEach * 2)
	if s.Submitted != want || s.Answered != want {
		t.Fatalf("submitted=%d answered=%d, want %d each", s.Submitted, s.Answered, want)
	}
	if s.Matches != want/2 {
		t.Fatalf("matches = %d, want %d", s.Matches, want/2)
	}
	if n := c.PendingCount(); n != 0 {
		t.Fatalf("pending = %d", n)
	}
}
