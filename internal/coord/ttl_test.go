package coord

import (
	"strings"
	"testing"
	"time"
)

func TestPendingTTLExpires(t *testing.T) {
	c, _ := newSystem(t, Options{
		UseIndex: true, GroundSmallestFirst: true, PendingTTL: 20 * time.Millisecond,
	})
	h, err := c.SubmitSQL(pairQuery("Kramer", "Godot"), "kramer")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if n := c.ExpirePending(); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	out, ok := h.TryOutcome()
	if !ok || !out.Canceled {
		t.Errorf("outcome = %+v, %v", out, ok)
	}
	if c.Stats().Expired != 1 {
		t.Error("expiry not counted")
	}
	if c.PendingCount() != 0 {
		t.Error("expired query still pending")
	}
}

func TestPendingTTLExpiryRunsOnArrival(t *testing.T) {
	c, _ := newSystem(t, Options{
		UseIndex: true, GroundSmallestFirst: true, PendingTTL: 20 * time.Millisecond,
	})
	hOld, _ := c.SubmitSQL(pairQuery("Old", "Nobody"), "")
	time.Sleep(30 * time.Millisecond)
	// A fresh arrival triggers the expiry pass before matching.
	c.SubmitSQL(pairQuery("Fresh", "AlsoNobody"), "") //nolint:errcheck
	if out, ok := hOld.TryOutcome(); !ok || !out.Canceled {
		t.Errorf("old query not expired on arrival: %+v, %v", out, ok)
	}
	if c.PendingCount() != 1 {
		t.Errorf("pending = %d, want just the fresh query", c.PendingCount())
	}
}

func TestPendingTTLDoesNotExpireFreshOrMatched(t *testing.T) {
	c, _ := newSystem(t, Options{
		UseIndex: true, GroundSmallestFirst: true, PendingTTL: time.Hour,
	})
	hK, _ := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
	c.SubmitSQL(pairQuery("Jerry", "Kramer"), "") //nolint:errcheck
	out := waitOutcome(t, hK)
	if out.Canceled {
		t.Fatal("matched query delivered as canceled")
	}
	if c.ExpirePending() != 0 {
		t.Error("fresh queries expired")
	}
}

func TestTTLDisabledByDefault(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	c.SubmitSQL(pairQuery("K", "Nobody"), "") //nolint:errcheck
	if c.ExpirePending() != 0 {
		t.Error("expiry ran with TTL disabled")
	}
}

func TestDOTOutput(t *testing.T) {
	c, _ := newSystem(t, DefaultOptions())
	c.SubmitSQL(pairQuery("Kramer", "Jerry"), "kramer")  //nolint:errcheck
	c.SubmitSQL(pairQuery("Elaine", "Kramer"), "elaine") //nolint:errcheck
	dot := c.DOT()
	for _, want := range []string{
		"digraph entanglement",
		"q1 [label=",
		"q2 -> q1", // Elaine's constraint can be covered by Kramer's head
		"Reservation('Kramer', fno)",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
