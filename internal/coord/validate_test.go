package coord

import (
	"fmt"
	"testing"
)

// validated returns a coordinator with the match-invariant self-check armed.
func validated(t *testing.T) *Coordinator {
	t.Helper()
	c, _ := newSystem(t, Options{
		UseIndex: true, GroundSmallestFirst: true, ValidateMatches: true,
	})
	return c
}

// TestValidateMatchesHoldsAcrossScenarios re-runs the main coordination
// shapes with the invariant checker armed; any violation panics.
func TestValidateMatchesHoldsAcrossScenarios(t *testing.T) {
	c := validated(t)
	// Pair.
	hK, _ := c.SubmitSQL(pairQuery("Kramer", "Jerry"), "")
	c.SubmitSQL(pairQuery("Jerry", "Kramer"), "") //nolint:errcheck
	waitOutcome(t, hK)

	// Group of three.
	for i := 0; i < 3; i++ {
		var cons string
		for j := 0; j < 3; j++ {
			if j != i {
				cons += fmt.Sprintf(" AND ('v%d', fno) IN ANSWER Reservation", j)
			}
		}
		src := fmt.Sprintf(`SELECT 'v%d', fno INTO ANSWER Reservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')%s CHOOSE 1`, i, cons)
		if _, err := c.SubmitSQL(src, ""); err != nil {
			t.Fatal(err)
		}
	}

	// Trip (two atoms), CHOOSE 2.
	mk := func(self, friend string) string {
		return fmt.Sprintf(`SELECT ('%[1]s', fno) INTO ANSWER Reservation, ('%[1]s', hno) INTO ANSWER HotelReservation
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
			AND hno IN (SELECT hno FROM Hotels WHERE city='Paris')
			AND ('%[2]s', fno) IN ANSWER Reservation
			AND ('%[2]s', hno) IN ANSWER HotelReservation CHOOSE 2`, self, friend)
	}
	hA, _ := c.SubmitSQL(mk("ta", "tb"), "")
	c.SubmitSQL(mk("tb", "ta"), "") //nolint:errcheck
	waitOutcome(t, hA)

	// Negative constraint.
	hSolo, _ := c.SubmitSQL(`SELECT 'solo', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Rome')
		AND ('Kramer', fno) NOT IN ANSWER Reservation CHOOSE 1`, "")
	waitOutcome(t, hSolo)

	if c.PendingCount() != 0 {
		t.Errorf("pending = %d", c.PendingCount())
	}
}

// TestNegConstraintAgainstCoInstall: a member's exclusion must block a match
// whose OWN installs would violate it — here A insists on a flight with B
// while also excluding B's tuple, a contradiction that must park (with the
// invariant checker armed: must not install-then-panic).
func TestNegConstraintAgainstCoInstall(t *testing.T) {
	c := validated(t)
	a := `SELECT 'A', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('B', fno) IN ANSWER Reservation
		AND ('B', fno) NOT IN ANSWER Reservation CHOOSE 1`
	b := `SELECT 'B', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('A', fno) IN ANSWER Reservation CHOOSE 1`
	hA, err := c.SubmitSQL(a, "")
	if err != nil {
		t.Fatal(err)
	}
	hB, err := c.SubmitSQL(b, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hA.TryOutcome(); ok {
		t.Fatal("contradictory query answered")
	}
	if _, ok := hB.TryOutcome(); ok {
		t.Fatal("partner of contradictory query answered")
	}
	if c.PendingCount() != 2 {
		t.Errorf("pending = %d", c.PendingCount())
	}
}

// TestNegConstraintSelfExclusionChoose2: with CHOOSE 2 the second grounding
// must not collide with the first one's install when an exclusion names it.
func TestNegConstraintSelfExclusionChoose2(t *testing.T) {
	c := validated(t)
	// Partner-free CHOOSE 2 with an exclusion of one specific flight for a
	// ghost traveler: store empty, so only the co-install path could bite;
	// groundings for 'S' never produce ('Ghost', …), so both succeed.
	h, err := c.SubmitSQL(`SELECT 'S', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('Ghost', fno) NOT IN ANSWER Reservation CHOOSE 2`, "")
	if err != nil {
		t.Fatal(err)
	}
	out := waitOutcome(t, h)
	if len(out.Answers[0].Tuples) != 2 {
		t.Errorf("tuples = %v", out.Answers[0].Tuples)
	}
}
