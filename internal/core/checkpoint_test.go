package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/wal"
)

// poolConfig is the durable spill-enabled configuration the checkpoint crash
// tests share: tiny segments so compaction has real work, auto-compaction off
// so the test controls the checkpoint boundary, and a pool far smaller than
// the dataset.
func poolConfig(path string, fs wal.FS) Config {
	return Config{
		WALPath:         path,
		WALFS:           fs,
		WALSegmentBytes: 4 << 10,
		WALCompactAfter: -1,
		BufferPoolPages: 4,
	}
}

// loadColdRows inserts n derivable rows into History through the SQL surface.
func loadColdRows(t *testing.T, s *System, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		stmt := fmt.Sprintf("INSERT INTO History VALUES (%d, '%s');", i, coldPayload(i))
		if err := s.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
}

func coldPayload(i int) string {
	return fmt.Sprintf("event-%06d-%s", i, strings.Repeat("p", 80))
}

// verifyColdRows checks every row is present with its derived payload and
// that the reopened system is actually paging (heaps rebuilt by replay).
func verifyColdRows(t *testing.T, s *System, n int) {
	t.Helper()
	res, err := s.Query("SELECT id, body FROM History;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != n {
		t.Fatalf("recovered %d rows, want %d", len(res.Rows), n)
	}
	for _, row := range res.Rows {
		if row[1].Str() != coldPayload(int(row[0].Int())) {
			t.Fatalf("row %d recovered with inconsistent payload", row[0].Int())
		}
	}
	stats, ok := s.PoolStats()
	if !ok {
		t.Fatal("reopened system lost its buffer pool")
	}
	if stats.HeapPages <= stats.Capacity {
		t.Errorf("replay did not spill: %d heap pages through %d frames", stats.HeapPages, stats.Capacity)
	}
}

// TestCheckpointKillBeforeCompaction: the process dies after the dirty-page
// flush but before the log compacts — the first half of a checkpoint. The
// heap writes that landed are scratch; recovery replays the untouched segment
// chain and rebuilds them.
func TestCheckpointKillBeforeCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	fs := fault.NewFS(wal.OSFS())
	s1 := NewSystem(poolConfig(path, fs))
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec("CREATE TABLE History (id INT, body STRING, PRIMARY KEY (id));"); err != nil {
		t.Fatal(err)
	}
	const n = 400
	loadColdRows(t, s1, 0, n)
	if err := s1.Catalog().FlushPool(); err != nil {
		t.Fatal(err)
	}
	// kill -9 between the page flush and the compaction: every WAL operation
	// from here on fails; whatever reached the disk stays.
	fs.Kill()
	if err := s1.Compact(); err == nil {
		t.Fatal("compaction succeeded on a dead disk")
	}
	s1.Close() //nolint:errcheck // the "process" is dead; errors expected

	s2 := NewSystem(poolConfig(path, wal.OSFS()))
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyColdRows(t, s2, n)
}

// TestCheckpointKillBeforeTruncation: the crash lands after the snapshot
// segment is atomically in place but before the stale pre-snapshot segments
// are removed. Recovery must ignore everything older than the snapshot and
// still replay the tail that followed it.
func TestCheckpointKillBeforeTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	s1 := NewSystem(poolConfig(path, wal.OSFS()))
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec("CREATE TABLE History (id INT, body STRING, PRIMARY KEY (id));"); err != nil {
		t.Fatal(err)
	}
	const n = 300
	loadColdRows(t, s1, 0, n)

	// Preserve the sealed pre-checkpoint chain, then checkpoint for real.
	type saved struct {
		path string
		data []byte
	}
	var stale []saved
	for _, seg := range s1.WAL().Segments() {
		data, err := os.ReadFile(seg.Path)
		if err != nil {
			t.Fatal(err)
		}
		stale = append(stale, saved{path: seg.Path, data: data})
	}
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var snapSeq uint64
	for _, seg := range s1.WAL().Segments() {
		if seg.Snapshot {
			snapSeq = seg.Seq
		}
	}
	if snapSeq == 0 {
		t.Fatal("checkpoint produced no snapshot segment")
	}
	// More writes after the checkpoint form the tail recovery must replay on
	// top of the snapshot.
	loadColdRows(t, s1, n, 50)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reconstruct the crash-before-truncation disk state: the snapshot is in
	// place (it replaced its own sequence number via rename — leave that one),
	// and every older segment the crash prevented removing is back.
	restored := 0
	for _, sv := range stale {
		base := filepath.Base(sv.path)
		var seq uint64
		if _, err := fmt.Sscanf(base, "%d.wal", &seq); err == nil && seq == snapSeq {
			continue
		}
		if err := os.WriteFile(sv.path, sv.data, 0o644); err != nil {
			t.Fatal(err)
		}
		restored++
	}
	if restored == 0 {
		t.Fatal("no stale segments to restore; segment size too large for the workload")
	}

	s2 := NewSystem(poolConfig(path, wal.OSFS()))
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyColdRows(t, s2, n+50)
}

// TestCheckpointPinnedSurvivesRecovery: answer relations (auto-pinned) and
// explicitly pinned relations come back resident after a spill-enabled
// recovery, while cold relations come back paged.
func TestCheckpointPinnedSurvivesRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	cfg := poolConfig(path, wal.OSFS())
	cfg.PinnedRelations = []string{"Flights"}
	s1 := NewSystem(cfg)
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec(`
		CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno));
		CREATE TABLE History (id INT, body STRING, PRIMARY KEY (id));
		INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris');
	`); err != nil {
		t.Fatal(err)
	}
	loadColdRows(t, s1, 0, 200)
	// A matched pair installs durable answers into an auto-pinned relation.
	h, err := s1.Submit(`SELECT 'K', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('J', fno) IN ANSWER Reservation CHOOSE 1`, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Submit(`SELECT 'J', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('K', fno) IN ANSWER Reservation CHOOSE 1`, "j"); err != nil {
		t.Fatal(err)
	}
	wait(t, h)
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := NewSystem(cfg)
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Query("SELECT * FROM Reservation;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("recovered %d answers, want 2", len(res.Rows))
	}
	stats, ok := s2.PoolStats()
	if !ok {
		t.Fatal("pool stats unavailable after recovery")
	}
	// Only History pages; Flights and Reservation are pinned resident.
	for _, tbl := range stats.Tables {
		if tbl.Name != "history" {
			t.Errorf("pinned relation %q has a heap", tbl.Name)
		}
	}
	if stats.SpilledTables != 1 {
		t.Errorf("spilled tables = %d, want 1 (history)", stats.SpilledTables)
	}
}
