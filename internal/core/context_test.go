package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func ctxSystem(t *testing.T) *System { return seeded(t) }

// pairCtxQuery is self's half of a two-person coordination on R.
func pairCtxQuery(self, friend string) string {
	return `SELECT '` + self + `', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('` + friend + `', fno) IN ANSWER R CHOOSE 1`
}

// lonerQuery's partner never arrives, so it parks forever.
func lonerQuery() string { return pairCtxQuery("K", "Ghost") }

// TestExecuteContextPreflight: a dead context gates entry before any work.
func TestExecuteContextPreflight(t *testing.T) {
	sys := ctxSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.ExecuteContext(ctx, "SELECT fno FROM Flights", ""); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if _, err := sys.SubmitContext(ctx, lonerQuery(), "k"); !errors.Is(err, context.Canceled) {
		t.Errorf("submit err = %v, want context.Canceled", err)
	}
}

// TestSubmitContextCancelWithdraws: canceling the context withdraws a
// pending entangled query; its handle fires with Canceled.
func TestSubmitContextCancelWithdraws(t *testing.T) {
	sys := ctxSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	h, err := sys.SubmitContext(ctx, lonerQuery(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if sys.Coordinator().PendingCount() != 1 {
		t.Fatalf("pending = %d", sys.Coordinator().PendingCount())
	}
	cancel()
	select {
	case out := <-h.Done():
		if !out.Canceled {
			t.Errorf("outcome = %+v, want canceled", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("context cancel did not withdraw the query")
	}
	deadline := time.Now().Add(2 * time.Second)
	for sys.Coordinator().PendingCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("query still pending")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitContextDeadlineExpires: a deadline alone (no explicit cancel)
// withdraws the query when it passes — the coordinator TTL mapping.
func TestSubmitContextDeadlineExpires(t *testing.T) {
	sys := ctxSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	h, err := sys.SubmitContext(ctx, lonerQuery(), "k")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-h.Done():
		if !out.Canceled {
			t.Errorf("outcome = %+v, want canceled", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline did not withdraw the query")
	}
}

// TestSubmitContextAnsweredBeforeCancel: a query answered while the context
// is still live is unaffected by a later cancel — the watch was released at
// delivery (no spurious coordinator call, no stuck state).
func TestSubmitContextAnsweredBeforeCancel(t *testing.T) {
	sys := ctxSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	hK, err := sys.SubmitContext(ctx, pairCtxQuery("Kramer", "Jerry"), "kramer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(pairCtxQuery("Jerry", "Kramer"), "jerry"); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-hK.Done():
		if out.Canceled {
			t.Fatalf("outcome = %+v", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no match")
	}
	cancel() // must be a no-op for the already-answered query
	if got := sys.Coordinator().Stats().Canceled; got != 0 {
		t.Errorf("canceled = %d after post-answer ctx cancel", got)
	}
}

// TestSessionExecuteContext: the session path binds entangled submissions to
// the context exactly like the system path (the server's per-connection
// context relies on this).
func TestSessionExecuteContext(t *testing.T) {
	sys := ctxSystem(t)
	sess := NewSession(sys)
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	resp, err := sess.ExecuteContext(ctx, lonerQuery(), "k")
	if err != nil || !resp.Entangled {
		t.Fatalf("%+v %v", resp, err)
	}
	cancel()
	select {
	case out := <-resp.Handle.Done():
		if !out.Canceled {
			t.Errorf("outcome = %+v", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session ctx cancel did not withdraw")
	}
}
