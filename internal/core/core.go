// Package core assembles the Youtopia system of the paper: the query
// compiler, the coordination component and the execution engine behind one
// public API (Figure 2). The middle tier of an application — like the travel
// site in internal/travel — talks to a core.System exactly the way the
// paper's middle tier talks to Youtopia: it submits ordinary SQL and
// entangled queries, and receives coordinated answers asynchronously.
package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/answers"
	"repro/internal/coord"
	"repro/internal/engine"
	"repro/internal/eq"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Config tunes a System.
type Config struct {
	// Coord configures the coordination component (see coord.Options). The
	// zero value selects coord.DefaultOptions().
	Coord coord.Options
	// CoordShards is the number of relation-partitioned coordination lanes.
	// Zero selects GOMAXPROCS — one lane per schedulable core, so arrivals
	// on disjoint relation footprints coordinate in parallel. Set 1 (or
	// Coord.Shards) to force the paper's single serialized round. An
	// explicit Coord.Shards wins over this knob.
	CoordShards int
	// DisableAutoRetry turns off the automatic re-coordination pass after
	// DML statements. The paper's coordination component re-examines pending
	// queries when the world changes; auto-retry is that hook. Benchmarks
	// that want to isolate arrival-time matching disable it.
	DisableAutoRetry bool
	// WALPath, when set, makes base tables and answer relations durable: the
	// log rooted at this path is replayed on startup and every mutation is
	// appended to it. Pending (unanswered) entangled queries are deliberately
	// volatile — they belong to live sessions.
	//
	// The path names a directory of binary log segments (format v2:
	// length-prefixed, CRC32C-checksummed records; size-based rotation). A
	// legacy single-file JSON log found at this path is migrated in place on
	// open and absorbed by the next compaction.
	WALPath string
	// WALSync moves the durability point to a group-committed fsync:
	// mutations stream into the log buffer and each API-level statement
	// (Execute/Exec/Submit, Session COMMIT) returns only after its records
	// are on disk — one fsync is amortized across every record and every
	// concurrent lane that reached the log meanwhile. Without it, commit
	// batches are handed to the OS without fsync (the pre-v2 behavior:
	// process-crash safe, not power-failure safe).
	WALSync bool
	// WALSegmentBytes overrides the segment rotation threshold
	// (0 = wal.DefaultSegmentBytes).
	WALSegmentBytes int64
	// WALCompactAfter starts a background compaction of sealed segments
	// whenever at least this many have accumulated. 0 selects 8; negative
	// disables auto-compaction (Compact still works explicitly).
	WALCompactAfter int
	// WALFollower opens the log as a replication follower: recovery replays
	// through a transaction-demultiplexing applier (so later streamed records
	// never expose half a transaction to readers), no log hook is attached
	// (records arrive from the primary, already logged), auto-compaction is
	// off (the follower's segment chain must stay byte-identical to the
	// primary's), and every statement but a plain SELECT is rejected with a
	// NotPrimaryError until promotion.
	WALFollower bool
	// WALFS overrides the log's filesystem (fault injection, tests). Nil
	// selects the real filesystem.
	WALFS wal.FS
	// BufferPoolPages, when positive, enables the disk-backed paged store:
	// tables spill committed tuples to 8 KiB heap pages cached in a buffer
	// pool of this many frames, so datasets several times larger than RAM
	// stay queryable. Heap files live under WALPath/pages (or a private
	// temporary directory when the system is not durable); they are scratch —
	// the WAL remains the only recovery source, and startup rebuilds them by
	// replay. Zero keeps the pre-PR-8 all-in-memory layout.
	BufferPoolPages int
	// BufferPoolShards splits the buffer pool into independently latched
	// shards so concurrent fetches on different pages never contend on one
	// mutex. Zero auto-sizes to min(GOMAXPROCS, BufferPoolPages/8), at
	// least 1. Ignored when BufferPoolPages is zero.
	BufferPoolShards int
	// PinnedRelations names tables kept fully in memory despite
	// BufferPoolPages — the hot coordination relations of the workload.
	// Answer relations are always pinned; matching is case-insensitive.
	PinnedRelations []string
	// StmtCacheSize bounds the text→artifact LRU behind Prepare and plain
	// Execute: up to this many statement texts keep their parsed/compiled
	// artifacts alive, so identical text is parsed once. 0 selects 256;
	// negative disables the cache (every Execute parses, Prepare still
	// returns uncached handles).
	StmtCacheSize int
	// GCInterval is the cadence of the background MVCC garbage collector
	// that prunes tuple versions below the oldest-active-snapshot watermark.
	// 0 selects one second; negative disables background collection
	// (storage.Catalog.GC still works explicitly).
	GCInterval time.Duration
}

// gcInterval resolves the Config.GCInterval convention.
func gcInterval(d time.Duration) time.Duration {
	if d == 0 {
		return time.Second
	}
	return d
}

// System is one Youtopia database instance.
type System struct {
	cat       *storage.Catalog
	mgr       *txn.Manager
	eng       *engine.Engine
	store     *answers.Store
	coord     *coord.Coordinator
	autoRetry bool
	wal       *wal.Log
	walSync   bool
	stmts     *stmtCache
	stopGC    func() // halts the MVCC version-chain garbage collector
	repl      repl   // replication role/state (zero value: standalone primary)
	pagesDir  string // ephemeral pages directory to remove on Close ("" = none)
	err       error  // startup (recovery) error
}

// NewSystem creates a Youtopia instance. With Config.WALPath set, the
// existing log is recovered first; check Err before use.
func NewSystem(cfg Config) *System {
	cat := storage.NewCatalog()
	mgr := txn.NewManager(cat)
	eng := engine.New(mgr)
	store := answers.NewStore(cat)
	shards := cfg.Coord.Shards // an explicit coord-level setting wins
	if shards == 0 {
		shards = cfg.CoordShards
	}
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	// A config that only picks a lane count still gets the default matcher
	// knobs: compare against the zero Options with Shards masked out.
	allButShards := cfg.Coord
	allButShards.Shards = 0
	if allButShards == (coord.Options{}) {
		cfg.Coord = coord.DefaultOptions()
	}
	cfg.Coord.Shards = shards
	cacheSize := cfg.StmtCacheSize
	if cacheSize == 0 {
		cacheSize = 256
	}
	s := &System{
		cat:       cat,
		mgr:       mgr,
		eng:       eng,
		store:     store,
		coord:     coord.New(eng, store, cfg.Coord),
		autoRetry: !cfg.DisableAutoRetry,
		stmts:     newStmtCache(cacheSize),
	}
	// Background MVCC garbage collection: prune version chains no snapshot
	// can read, at a cadence comfortably above the per-search pin lifetime.
	if iv := gcInterval(cfg.GCInterval); iv > 0 {
		s.stopGC = mgr.StartGC(iv)
	}
	// Paged storage must be armed before WAL recovery so replay writes cold
	// relations through the buffer pool instead of materializing them.
	if cfg.BufferPoolPages > 0 {
		dir := ""
		if cfg.WALPath != "" {
			// Lives inside the WAL directory; segment discovery skips
			// subdirectories, so the chain scan never mistakes heap files
			// for segments.
			dir = filepath.Join(cfg.WALPath, "pages")
		} else {
			tmp, err := os.MkdirTemp("", "youtopia-pages-")
			if err != nil {
				s.err = fmt.Errorf("core: pages directory: %w", err)
				return s
			}
			dir = tmp
			s.pagesDir = tmp
		}
		err := cat.EnableSpillOpts(storage.SpillOptions{
			Dir:        dir,
			PoolPages:  cfg.BufferPoolPages,
			PoolShards: cfg.BufferPoolShards,
			Pinned:     cfg.PinnedRelations,
		})
		if err != nil {
			s.err = fmt.Errorf("core: enable buffer pool: %w", err)
			return s
		}
	}
	if cfg.WALPath != "" {
		opts := wal.Options{
			SegmentBytes: cfg.WALSegmentBytes,
			CompactAfter: cfg.WALCompactAfter,
			FS:           cfg.WALFS,
			// Bound checkpoint memory the same way the live catalog is
			// bounded: the compaction scratch replay spills through its own
			// pool of the same size.
			CompactPoolPages: cfg.BufferPoolPages,
		}
		if opts.CompactAfter == 0 {
			opts.CompactAfter = 8
		} else if opts.CompactAfter < 0 {
			opts.CompactAfter = 0
		}
		if cfg.WALSync {
			opts.Sync = wal.SyncAlways
		}
		if cfg.WALFollower {
			// The follower's chain must stay a byte-identical copy of the
			// primary's; compacting locally would diverge it (and could
			// materialize rows of transactions still awaiting their commit
			// record). Recovery and all streamed records replay through the
			// applier so concurrent readers only ever see committed states.
			opts.CompactAfter = 0
			s.repl.follower = true
			s.repl.applier = wal.NewApplier(cat)
			opts.Replay = s.repl.applier.Apply
		}
		l, err := wal.OpenLog(cfg.WALPath, cat, opts)
		if err != nil {
			s.err = fmt.Errorf("core: WAL recovery: %w", err)
			return s
		}
		store.AdoptFromCatalog()
		s.wal = l
		s.walSync = cfg.WALSync
		if cfg.WALFollower {
			// Recovery may end mid-transaction (the primary will re-ship the
			// rest); readers see only through the last replayed commit. No
			// log hook: shipped records are appended by the replication
			// layer, byte-for-byte.
			//
			// The read gate opens only if recovery actually replayed state: a
			// chain is always a consistent (if stale) prefix of the primary's
			// history, but a chain emptied by a crash mid-resync (IngestReset
			// ran, the replacement never landed) reopens like a brand-new
			// follower, and serving its empty catalog would present data loss
			// as truth. Such a node stays not-ready — and unpromotable —
			// until its next catch-up completes.
			s.repl.ready = s.repl.applier.Applied() > 0
			return s
		}
		if cfg.WALSync {
			// Mutations stream into the log buffer; the statement boundary
			// (commitWAL) is the durability wait.
			cat.SetLog(func(r storage.LogRecord) { l.AppendAsync(r) }) //nolint:errcheck // sticky error surfaced by commitWAL/Close
		} else {
			cat.SetLog(func(r storage.LogRecord) { l.Append(r) }) //nolint:errcheck // sticky error surfaced by Close
		}
	}
	return s
}

// commitWAL is the statement-level durability point: under Config.WALSync it
// parks on the group commit covering every record this statement streamed
// into the log. Without WALSync (or without a WAL) it is a no-op.
func (s *System) commitWAL() error {
	if s.wal == nil || !s.walSync {
		return nil
	}
	return s.wal.Commit()
}

// Err reports a startup (WAL recovery) failure; a System with a non-nil Err
// must not be used.
func (s *System) Err() error { return s.err }

// Compact seals the active log segment and rewrites every sealed segment as
// one snapshot, bounding log size. It is a no-op without a WAL. Unlike the
// pre-segmented log, no quiescence is needed: concurrent mutations land in
// the fresh active segment and survive compaction untouched.
func (s *System) Compact() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Compact()
}

// Checkpoint is the buffer-pool-aware durability point: every dirty page is
// written back to its heap file, then the log compacts into a snapshot
// segment. Recovery afterwards is the newest snapshot plus the WAL tail —
// and because heap files are rebuilt by that replay, a checkpoint bounds
// recovery work without adding a second recovery source. Compaction's
// replication retention pins are honored unchanged (Compact defers to them).
// Without a WAL this degenerates to the page flush alone.
func (s *System) Checkpoint() error {
	if err := s.cat.FlushPool(); err != nil {
		return err
	}
	return s.Compact()
}

// PoolStats reports the buffer pool and heap footprint, or false when the
// system runs without paged storage (Config.BufferPoolPages == 0).
func (s *System) PoolStats() (storage.PoolStats, bool) { return s.cat.PoolStats() }

// WAL exposes the write-ahead log for stats/introspection (nil when the
// system is not durable).
func (s *System) WAL() *wal.Log { return s.wal }

// Close stops the MVCC garbage collector and detaches and closes the
// write-ahead log (no-op without one). The returned error includes any write
// error encountered during the lifetime of the log.
func (s *System) Close() error {
	if s.stopGC != nil {
		s.stopGC()
	}
	defer func() {
		// Heap files are scratch: close descriptors and, when the system
		// owned a private temporary pages directory, remove it.
		s.cat.CloseSpill()
		if s.pagesDir != "" {
			os.RemoveAll(s.pagesDir) //nolint:errcheck // best effort
		}
	}()
	if s.wal == nil {
		return nil
	}
	s.cat.SetLog(nil)
	return s.wal.Close()
}

// WALStats summarizes the durability layer for the admin surface.
type WALStats struct {
	Commits  wal.CommitStats
	Segments []wal.SegmentInfo
	Recovery wal.RecoveryInfo
}

// String renders the snapshot as the admin surface shows it.
func (w WALStats) String() string {
	var b strings.Builder
	c := w.Commits
	fmt.Fprintf(&b, "wal: records=%d batches=%d fsyncs=%d rotations=%d compactions=%d",
		c.Records, c.Batches, c.Syncs, c.Rotations, c.Compacts)
	if c.Batches > 0 {
		fmt.Fprintf(&b, " (%.1f records/batch", float64(c.Records)/float64(c.Batches))
		if c.Syncs > 0 {
			fmt.Fprintf(&b, ", %.1f records/fsync", float64(c.Records)/float64(c.Syncs))
		}
		b.WriteString(")")
	}
	fmt.Fprintf(&b, "\nrecovery: segments=%d records=%d torn=%v migrated=%v\n",
		w.Recovery.Segments, w.Recovery.Records, w.Recovery.Torn, w.Recovery.Migrated)
	for _, s := range w.Segments {
		state := "active"
		switch {
		case s.Snapshot:
			state = "snapshot"
		case s.Sealed:
			state = "sealed"
		}
		kind := "v2"
		if s.JSON {
			kind = "json"
		}
		fmt.Fprintf(&b, "  segment %08d  %-8s %-4s %d bytes\n", s.Seq, state, kind, s.Bytes)
	}
	return b.String()
}

// WALStatsSnapshot returns the current WAL counters and segment layout, or
// false when the system is not durable.
func (s *System) WALStatsSnapshot() (WALStats, bool) {
	if s.wal == nil {
		return WALStats{}, false
	}
	return WALStats{
		Commits:  s.wal.Stats(),
		Segments: s.wal.Segments(),
		Recovery: s.wal.Recovered(),
	}, true
}

// Response is the outcome of Execute: exactly one of Result (plain
// statements) or Handle (entangled queries) is set.
type Response struct {
	// Result holds rows/affected counts for plain SQL.
	Result *engine.Result
	// Handle is the waitable handle of a submitted entangled query.
	Handle *coord.Handle
	// Entangled reports which arm is set.
	Entangled bool
}

// Execute parses and runs one statement, routing entangled queries to the
// coordination component and everything else to the execution engine.
// The optional owner labels entangled submissions in the admin interface.
//
// Execution is fronted by the statement cache: re-executing identical text
// reuses its parsed/compiled artifact (parse-once even without an explicit
// Prepare). Statements with parameter placeholders cannot run here — they
// need a bound vector, via Prepare.
func (s *System) Execute(src, owner string) (*Response, error) {
	ps, err := s.prepareCached(src)
	if err != nil {
		return nil, err
	}
	return ps.ExecuteBound(nil, owner)
}

// ExecuteContext is Execute with cancellation plumbing. The context is
// checked before any work starts, and an entangled submission stays bound to
// it afterwards: when ctx is canceled or its deadline passes while the query
// is still pending, the query is withdrawn from the coordinator (its handle
// fires with Canceled). Plain statements are not interruptible mid-execution;
// for them the context is a pre-flight gate only.
func (s *System) ExecuteContext(ctx context.Context, src, owner string) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := s.Execute(src, owner)
	if err != nil {
		return nil, err
	}
	s.bindContext(ctx, resp)
	return resp, nil
}

// SubmitContext is Submit bound to a context: cancellation or deadline
// expiry withdraws the pending query (the paper's TTL/cancel path).
func (s *System) SubmitContext(ctx context.Context, src, owner string) (*coord.Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h, err := s.Submit(src, owner)
	if err != nil {
		return nil, err
	}
	s.bindHandle(ctx, h)
	return h, nil
}

// bindContext attaches an entangled response's handle to ctx.
func (s *System) bindContext(ctx context.Context, resp *Response) {
	if resp != nil && resp.Entangled && resp.Handle != nil {
		s.bindHandle(ctx, resp.Handle)
	}
}

// bindHandle arranges for ctx's cancellation to withdraw the query, and for
// the query's own completion to release the watch (so long-lived contexts —
// e.g. one per server connection — do not accumulate dead watchers).
func (s *System) bindHandle(ctx context.Context, h *coord.Handle) {
	if ctx.Done() == nil {
		return // context.Background(): nothing to watch
	}
	id := h.ID
	stop := context.AfterFunc(ctx, func() { s.coord.Cancel(id) })
	h.Notify(func(coord.Outcome) { stop() })
}

func (s *System) submitEntangled(es *sql.EntangledSelect, src, owner string) (*Response, error) {
	q, err := eq.CompileParsed(es, src)
	if err != nil {
		return nil, err
	}
	h, err := s.coord.Submit(q, owner)
	if err != nil {
		return nil, err
	}
	// The arrival-time round may have installed answers; an acknowledged
	// arrival is durable.
	if err := s.commitWAL(); err != nil {
		return nil, err
	}
	return &Response{Handle: h, Entangled: true}, nil
}

// ExecuteStmt routes an already-parsed statement.
func (s *System) ExecuteStmt(stmt sql.Statement, owner string) (*Response, error) {
	if err := s.gate(stmt); err != nil {
		return nil, err
	}
	if _, ok := stmt.(*sql.TxnStmt); ok {
		return nil, fmt.Errorf("core: BEGIN/COMMIT/ROLLBACK require a Session (interactive transactions are per-connection)")
	}
	if es, ok := stmt.(*sql.EntangledSelect); ok {
		return s.submitEntangled(es, "", owner)
	}
	res, err := s.eng.Execute(stmt)
	if err != nil {
		return nil, err
	}
	if err := s.afterPlain(stmt); err != nil {
		return nil, err
	}
	return &Response{Result: res}, nil
}

// afterPlain is the post-execution tail of every successful plain statement:
// the auto-retry pass (base-table changes can unblock parked queries —
// "waits for an opportunity to retry", §2.1) and the statement-level
// durability point (which covers retry-installed answers too).
func (s *System) afterPlain(stmt sql.Statement) error {
	if s.autoRetry && isDML(stmt) && s.coord.PendingCount() > 0 {
		s.coord.Retry()
	}
	return s.commitWAL()
}

func isDML(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.Insert, *sql.Update, *sql.Delete:
		return true
	default:
		return false
	}
}

// Explain builds the typed plan description for one statement without
// executing it. A leading EXPLAIN keyword in src is accepted and stripped, so
// both `EXPLAIN SELECT ...` and the bare statement explain identically.
// Optional params refine the estimates the way bind-time values would.
// Entangled queries describe their generators' access paths — each generator
// subquery is costed by the same planner that grounds it.
func (s *System) Explain(src string, params value.Tuple) (*plan.Desc, error) {
	ps, err := s.prepareCached(src)
	if err != nil {
		return nil, err
	}
	stmt := ps.stmt
	if ex, ok := stmt.(*sql.Explain); ok {
		stmt = ex.Stmt
	}
	if es, ok := stmt.(*sql.EntangledSelect); ok {
		return s.explainEntangled(es, params)
	}
	return s.eng.ExplainStmt(stmt, params)
}

// explainEntangled describes an entangled query's grounding plan: one step
// per generator, costed through the execution engine's planner (generators
// ground through the same text path, so these are the access paths the
// coordinator will actually use at this catalog version).
func (s *System) explainEntangled(es *sql.EntangledSelect, params value.Tuple) (*plan.Desc, error) {
	q, err := eq.CompileParsed(es, es.String())
	if err != nil {
		return nil, err
	}
	d := &plan.Desc{SQL: es.String(), Kind: "entangled select"}
	for _, g := range q.Generators {
		if g.Sub == nil {
			d.Steps = append(d.Steps, plan.Step{
				Table: "(inline)", Path: "inline tuples",
				EstRows: float64(len(g.Tuples)), Rows: len(g.Tuples),
			})
			continue
		}
		gd, err := s.eng.ExplainStmt(g.Sub, params)
		if err != nil {
			return nil, err
		}
		d.Steps = append(d.Steps, gd.Steps...)
	}
	if len(d.Steps) == 0 {
		d.Note = "ground query — no generator table access; coordination only"
	}
	return d, nil
}

// Query runs plain SQL and returns rows; it errors on entangled statements.
func (s *System) Query(src string) (*engine.Result, error) {
	resp, err := s.Execute(src, "")
	if err != nil {
		return nil, err
	}
	if resp.Entangled {
		return nil, fmt.Errorf("core: Query cannot run entangled statements; use Submit")
	}
	return resp.Result, nil
}

// Exec runs a script of semicolon-separated plain statements, failing on the
// first error. Entangled statements are rejected (use Submit).
func (s *System) Exec(script string) error {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		resp, err := s.ExecuteStmt(st, "")
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		if resp.Entangled {
			return fmt.Errorf("core: Exec cannot run entangled statements; use Submit")
		}
	}
	return nil
}

// Submit compiles and registers an entangled query, triggering a
// coordination round.
func (s *System) Submit(src, owner string) (*coord.Handle, error) {
	resp, err := s.Execute(src, owner)
	if err != nil {
		return nil, err
	}
	if !resp.Entangled {
		return nil, fmt.Errorf("core: Submit requires an entangled query (INTO ANSWER)")
	}
	return resp.Handle, nil
}

// Cancel withdraws a pending entangled query by id.
func (s *System) Cancel(id uint64) bool { return s.coord.Cancel(id) }

// Retry forces a re-coordination pass over all pending queries.
func (s *System) Retry() { s.coord.Retry() }

// Coordinator exposes the coordination component (admin interface).
func (s *System) Coordinator() *coord.Coordinator { return s.coord }

// Engine exposes the execution engine.
func (s *System) Engine() *engine.Engine { return s.eng }

// Answers exposes the shared answer-relation store.
func (s *System) Answers() *answers.Store { return s.store }

// Catalog exposes the table catalog.
func (s *System) Catalog() *storage.Catalog { return s.cat }

// TxnStats returns the transaction manager's cumulative counters —
// committed/aborted/timeouts plus the MVCC first-committer-wins conflict and
// GC-reclaimed-version totals (admin surface).
func (s *System) TxnStats() txn.Stats { return s.mgr.Stats() }

// TxnManager exposes the transaction manager, so benchmarks and tests can
// flip compatibility knobs such as LockReads (the pre-MVCC shared-lock read
// protocol) before driving load.
func (s *System) TxnManager() *txn.Manager { return s.mgr }
