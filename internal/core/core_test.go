package core

import (
	"testing"
	"time"

	"repro/internal/coord"
)

func seeded(t *testing.T) *System {
	t.Helper()
	s := NewSystem(Config{})
	err := s.Exec(`
		CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno));
		INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome');
	`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wait(t *testing.T, h *coord.Handle) coord.Outcome {
	t.Helper()
	done := make(chan struct{})
	timer := time.AfterFunc(2*time.Second, func() { close(done) })
	defer timer.Stop()
	out, ok := h.Wait(done)
	if !ok {
		t.Fatalf("q%d timed out", h.ID)
	}
	return out
}

func TestExecuteRoutesPlainSQL(t *testing.T) {
	s := seeded(t)
	resp, err := s.Execute("SELECT fno FROM Flights WHERE dest = 'Paris'", "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Entangled || len(resp.Result.Rows) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestExecuteRoutesEntangled(t *testing.T) {
	s := seeded(t)
	resp, err := s.Execute(`SELECT 'K', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('J', fno) IN ANSWER R CHOOSE 1`, "kramer")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Entangled || resp.Handle == nil {
		t.Fatalf("resp = %+v", resp)
	}
	resp2, err := s.Execute(`SELECT 'J', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('K', fno) IN ANSWER R CHOOSE 1`, "jerry")
	if err != nil {
		t.Fatal(err)
	}
	outK, outJ := wait(t, resp.Handle), wait(t, resp2.Handle)
	if outK.Answers[0].Tuples[0][1].Int() != outJ.Answers[0].Tuples[0][1].Int() {
		t.Error("coordination failed through the system facade")
	}
}

func TestAutoRetryOnDML(t *testing.T) {
	s := seeded(t)
	// Two partners who want an Oslo flight that doesn't exist yet.
	mk := func(self, friend string) string {
		return `SELECT '` + self + `', fno INTO ANSWER R
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Oslo')
			AND ('` + friend + `', fno) IN ANSWER R CHOOSE 1`
	}
	hA, err := s.Submit(mk("A", "B"), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(mk("B", "A"), ""); err != nil {
		t.Fatal(err)
	}
	if _, ok := hA.TryOutcome(); ok {
		t.Fatal("matched without any Oslo flight")
	}
	// Inserting the flight must trigger auto-retry and unblock the pair.
	if err := s.Exec("INSERT INTO Flights VALUES (500, 'Oslo')"); err != nil {
		t.Fatal(err)
	}
	out := wait(t, hA)
	if out.Answers[0].Tuples[0][1].Int() != 500 {
		t.Errorf("answer = %v", out.Answers)
	}
}

func TestAutoRetryDisabled(t *testing.T) {
	s := NewSystem(Config{DisableAutoRetry: true})
	if err := s.Exec(`CREATE TABLE Flights (fno INT, dest STRING)`); err != nil {
		t.Fatal(err)
	}
	mk := func(self, friend string) string {
		return `SELECT '` + self + `', fno INTO ANSWER R
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Oslo')
			AND ('` + friend + `', fno) IN ANSWER R CHOOSE 1`
	}
	hA, _ := s.Submit(mk("A", "B"), "")
	s.Submit(mk("B", "A"), "")
	s.Exec("INSERT INTO Flights VALUES (500, 'Oslo')")
	if _, ok := hA.TryOutcome(); ok {
		t.Fatal("auto-retry ran despite being disabled")
	}
	s.Retry() // manual retry still works
	out := wait(t, hA)
	if out.Answers[0].Tuples[0][1].Int() != 500 {
		t.Errorf("answer = %v", out.Answers)
	}
}

func TestQueryRejectsEntangled(t *testing.T) {
	s := seeded(t)
	if _, err := s.Query("SELECT 'K', 1 INTO ANSWER R"); err == nil {
		t.Error("Query accepted an entangled statement")
	}
}

func TestSubmitRejectsPlain(t *testing.T) {
	s := seeded(t)
	if _, err := s.Submit("SELECT fno FROM Flights", ""); err == nil {
		t.Error("Submit accepted a plain statement")
	}
}

func TestExecRejectsEntangledAndBadSQL(t *testing.T) {
	s := seeded(t)
	if err := s.Exec("SELECT 'K', 1 INTO ANSWER R; SELECT 1"); err == nil {
		t.Error("Exec accepted an entangled statement")
	}
	if err := s.Exec("SELEC"); err == nil {
		t.Error("Exec accepted a parse error")
	}
	if err := s.Exec("SELECT nosuch FROM Flights"); err == nil {
		t.Error("Exec swallowed an execution error")
	}
}

func TestCancelThroughFacade(t *testing.T) {
	s := seeded(t)
	h, err := s.Submit(`SELECT 'K', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights) AND ('Nobody', fno) IN ANSWER R`, "")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(h.ID) {
		t.Fatal("cancel failed")
	}
	out, ok := h.TryOutcome()
	if !ok || !out.Canceled {
		t.Errorf("outcome = %+v", out)
	}
}

func TestAccessors(t *testing.T) {
	s := seeded(t)
	if s.Coordinator() == nil || s.Engine() == nil || s.Answers() == nil || s.Catalog() == nil {
		t.Error("nil accessor")
	}
	if !s.Catalog().Has("Flights") {
		t.Error("catalog missing Flights")
	}
}

func TestExecuteParseError(t *testing.T) {
	s := seeded(t)
	if _, err := s.Execute("NOT SQL AT ALL", ""); err == nil {
		t.Error("parse error not surfaced")
	}
}
