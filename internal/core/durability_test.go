package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
)

func walSystem(t *testing.T, path string) *System {
	t.Helper()
	s := NewSystem(Config{WALPath: path})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDurableRestart: base tables AND installed coordinated answers survive a
// restart; pending queries do not (they belong to live sessions).
func TestDurableRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")

	s1 := walSystem(t, path)
	if err := s1.Exec(`
		CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno));
		INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris');
	`); err != nil {
		t.Fatal(err)
	}
	// A matched pair installs durable answers.
	h1, err := s1.Submit(`SELECT 'K', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('J', fno) IN ANSWER Reservation CHOOSE 1`, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Submit(`SELECT 'J', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('K', fno) IN ANSWER Reservation CHOOSE 1`, "j"); err != nil {
		t.Fatal(err)
	}
	out := wait(t, h1)
	flight := out.Answers[0].Tuples[0][1].Int()
	// Plus one forever-pending query (must NOT survive).
	if _, err := s1.Submit(`SELECT 'X', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights) AND ('Ghost', fno) IN ANSWER Reservation`, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart.
	s2 := walSystem(t, path)
	defer s2.Close()
	res, err := s2.Query("SELECT fno FROM Flights ORDER BY fno")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("flights after restart = %v", res.Rows)
	}
	// Installed answers recovered and queryable.
	res, err = s2.Query("SELECT * FROM Reservation")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("reservation after restart = %v", res.Rows)
	}
	// Pending queries are volatile.
	if n := s2.Coordinator().PendingCount(); n != 0 {
		t.Errorf("pending after restart = %d", n)
	}
	// The recovered Reservation is adopted as an answer relation: a new
	// partner can entangle with the pre-crash answer.
	h3, err := s2.Submit(`SELECT 'E', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('K', fno) IN ANSWER Reservation CHOOSE 1`, "e")
	if err != nil {
		t.Fatal(err)
	}
	out3 := wait(t, h3)
	if got := out3.Answers[0].Tuples[0][1].Int(); got != flight {
		t.Errorf("post-restart coordination got flight %d, pre-crash friends on %d", got, flight)
	}
}

// TestDurableRollbackConverges: a statement that fails mid-way (duplicate PK
// on the second row) leaves no trace after replay.
func TestDurableRollbackConverges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	s1 := walSystem(t, path)
	if err := s1.Exec(`CREATE TABLE T (x INT, PRIMARY KEY (x)); INSERT INTO T VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec(`INSERT INTO T VALUES (2), (1)`); err == nil {
		t.Fatal("duplicate PK accepted")
	}
	s1.Close()

	s2 := walSystem(t, path)
	defer s2.Close()
	res, err := s2.Query("SELECT x FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("rows after replayed rollback = %v", res.Rows)
	}
}

// TestWALRecoveryError: corruption in a sealed segment surfaces through Err.
// (A damaged tail is truncated, not an error — that is the torn-write path.)
func TestWALRecoveryError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	// Auto-compaction off: the test needs the sealed segment file to still
	// exist (un-absorbed) after Close so it can corrupt it.
	s1 := NewSystem(Config{WALPath: path, WALSegmentBytes: 128, WALCompactAfter: -1})
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	s1.Exec("CREATE TABLE T (x INT)") //nolint:errcheck
	for i := 0; i < 40; i++ {
		s1.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d)", i)) //nolint:errcheck
	}
	segs := s1.WAL().Segments()
	if len(segs) < 2 {
		t.Fatalf("need a sealed segment, got %+v", segs)
	}
	sealedPath := segs[0].Path
	s1.Close()

	// Corrupt the sealed segment mid-record.
	data, err := os.ReadFile(sealedPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(sealedPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewSystem(Config{WALPath: path})
	if s2.Err() == nil || !strings.Contains(s2.Err().Error(), "recovery") {
		t.Errorf("Err = %v", s2.Err())
	}
}

// TestDurableSyncRestart: the group-committed fsync mode round-trips and the
// WAL stats show fsyncs amortized below one per record.
func TestDurableSyncRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	s1 := NewSystem(Config{WALPath: path, WALSync: true})
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec(`
		CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno));
		INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Rome'), (3, 'Oslo');
		UPDATE Flights SET dest = 'Milan' WHERE fno = 2;
	`); err != nil {
		t.Fatal(err)
	}
	st, ok := s1.WALStatsSnapshot()
	if !ok {
		t.Fatal("no WAL stats on a durable system")
	}
	if st.Commits.Syncs == 0 || st.Commits.Syncs >= st.Commits.Records {
		t.Errorf("sync mode stats: %+v (want 0 < syncs < records)", st.Commits)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := NewSystem(Config{WALPath: path, WALSync: true})
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Query("SELECT dest FROM Flights WHERE fno = 2")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str() != "Milan" {
		t.Errorf("rows = %v, %v", res, err)
	}
}

// TestRollbackCompensationsDurable: under WALSync a ROLLBACK must flush its
// compensation records. If a concurrent statement's group commit already
// carried the transaction's forward records to disk, an un-flushed rollback
// followed by a crash would resurrect the rolled-back rows on replay.
func TestRollbackCompensationsDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	s1 := NewSystem(Config{WALPath: path, WALSync: true})
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec("CREATE TABLE T (x INT, PRIMARY KEY (x)); CREATE TABLE Other (y INT)"); err != nil {
		t.Fatal(err)
	}
	sess := NewSession(s1)
	for _, stmt := range []string{"BEGIN", "INSERT INTO T VALUES (1)"} {
		if _, err := sess.Execute(stmt, ""); err != nil {
			t.Fatal(err)
		}
	}
	// A concurrent plain statement group-commits, carrying the open
	// transaction's buffered forward records to disk with it.
	if err := s1.Exec("INSERT INTO Other VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("ROLLBACK", ""); err != nil {
		t.Fatal(err)
	}

	// Crash: abandon s1 without Close and replay the directory.
	s2 := NewSystem(Config{WALPath: path})
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Query("SELECT x FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rolled-back row resurrected by recovery: %v", res.Rows)
	}
}

// TestLegacyJSONMigration: a system that logged with the pre-segmented JSON
// WAL reopens through the new one, state intact, and keeps growing.
func TestLegacyJSONMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")

	// Write an old-format log directly (the legacy API is kept exactly for
	// this migration path).
	cat := storage.NewCatalog()
	w, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetLog(func(r storage.LogRecord) { w.Append(r) }) //nolint:errcheck
	tbl, err := cat.Create("Flights", value.NewSchema(
		value.Col("fno", value.TypeInt), value.Col("dest", value.TypeString)), "fno")
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(value.NewTuple(122, "Paris")) //nolint:errcheck
	tbl.Insert(value.NewTuple(136, "Rome"))  //nolint:errcheck
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s := walSystem(t, path)
	res, err := s.Query("SELECT fno FROM Flights ORDER BY fno")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("migrated rows = %v, %v", res, err)
	}
	if st, ok := s.WALStatsSnapshot(); !ok || !st.Recovery.Migrated {
		t.Errorf("migration not reported: %+v", st.Recovery)
	}
	if err := s.Exec("INSERT INTO Flights VALUES (140, 'Oslo')"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := walSystem(t, path)
	defer s2.Close()
	res, err = s2.Query("SELECT fno FROM Flights ORDER BY fno")
	if err != nil || len(res.Rows) != 3 {
		t.Errorf("post-migration rows = %v, %v", res, err)
	}
}

// TestCompactUnderConcurrentWrites: compaction does not quiesce the system —
// writers keep committing while it runs, and nothing is lost on restart.
func TestCompactUnderConcurrentWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	s1 := NewSystem(Config{WALPath: path, WALSegmentBytes: 512, WALCompactAfter: -1})
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec("CREATE TABLE T (x INT, PRIMARY KEY (x))"); err != nil {
		t.Fatal(err)
	}
	const writers, each = 4, 50
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := s1.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d)", w*each+i)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		if err := s1.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := s1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := walSystem(t, path)
	defer s2.Close()
	res, err := s2.Query("SELECT COUNT(*) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != writers*each {
		t.Errorf("rows after compaction under load = %d, want %d", got, writers*each)
	}
}
