package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func walSystem(t *testing.T, path string) *System {
	t.Helper()
	s := NewSystem(Config{WALPath: path})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDurableRestart: base tables AND installed coordinated answers survive a
// restart; pending queries do not (they belong to live sessions).
func TestDurableRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")

	s1 := walSystem(t, path)
	if err := s1.Exec(`
		CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno));
		INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris');
	`); err != nil {
		t.Fatal(err)
	}
	// A matched pair installs durable answers.
	h1, err := s1.Submit(`SELECT 'K', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('J', fno) IN ANSWER Reservation CHOOSE 1`, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Submit(`SELECT 'J', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('K', fno) IN ANSWER Reservation CHOOSE 1`, "j"); err != nil {
		t.Fatal(err)
	}
	out := wait(t, h1)
	flight := out.Answers[0].Tuples[0][1].Int()
	// Plus one forever-pending query (must NOT survive).
	if _, err := s1.Submit(`SELECT 'X', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights) AND ('Ghost', fno) IN ANSWER Reservation`, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart.
	s2 := walSystem(t, path)
	defer s2.Close()
	res, err := s2.Query("SELECT fno FROM Flights ORDER BY fno")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("flights after restart = %v", res.Rows)
	}
	// Installed answers recovered and queryable.
	res, err = s2.Query("SELECT * FROM Reservation")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("reservation after restart = %v", res.Rows)
	}
	// Pending queries are volatile.
	if n := s2.Coordinator().PendingCount(); n != 0 {
		t.Errorf("pending after restart = %d", n)
	}
	// The recovered Reservation is adopted as an answer relation: a new
	// partner can entangle with the pre-crash answer.
	h3, err := s2.Submit(`SELECT 'E', fno INTO ANSWER Reservation
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
		AND ('K', fno) IN ANSWER Reservation CHOOSE 1`, "e")
	if err != nil {
		t.Fatal(err)
	}
	out3 := wait(t, h3)
	if got := out3.Answers[0].Tuples[0][1].Int(); got != flight {
		t.Errorf("post-restart coordination got flight %d, pre-crash friends on %d", got, flight)
	}
}

// TestDurableRollbackConverges: a statement that fails mid-way (duplicate PK
// on the second row) leaves no trace after replay.
func TestDurableRollbackConverges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	s1 := walSystem(t, path)
	if err := s1.Exec(`CREATE TABLE T (x INT, PRIMARY KEY (x)); INSERT INTO T VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec(`INSERT INTO T VALUES (2), (1)`); err == nil {
		t.Fatal("duplicate PK accepted")
	}
	s1.Close()

	s2 := walSystem(t, path)
	defer s2.Close()
	res, err := s2.Query("SELECT x FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("rows after replayed rollback = %v", res.Rows)
	}
}

// TestWALRecoveryError: a corrupt log surfaces through Err.
func TestWALRecoveryError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	s1 := walSystem(t, path)
	s1.Exec("CREATE TABLE T (x INT)") //nolint:errcheck
	s1.Close()

	// Corrupt the first record.
	data := []byte("NOT JSON\n")
	if err := appendFileFront(path, data); err != nil {
		t.Fatal(err)
	}
	s2 := NewSystem(Config{WALPath: path})
	if s2.Err() == nil || !strings.Contains(s2.Err().Error(), "recovery") {
		t.Errorf("Err = %v", s2.Err())
	}
}

func appendFileFront(path string, prefix []byte) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(prefix, data...), 0o644)
}
