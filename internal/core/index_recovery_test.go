package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/value"
)

// TestCreateIndexCrashRecovery: kill -9 between CREATE INDEX and the next
// checkpoint. The index DDL lives only in the WAL tail, so recovery must
// rebuild the ordered index from the replayed records — including writes
// that landed after the CREATE INDEX — and the recovered catalog must serve
// it to the planner with DDL-version stamping intact.
func TestCreateIndexCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.wal")
	s1 := walSystem(t, path)
	if err := s1.Exec("CREATE TABLE Fares (id INT, price INT, hops INT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := s1.Exec(fmt.Sprintf("INSERT INTO Fares VALUES (%d, %d, %d)", i, i%10, i%4)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint: the table snapshot is sealed without the index.
	if err := s1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec("CREATE INDEX fares_price ON Fares (price)"); err != nil {
		t.Fatal(err)
	}
	// Post-index writes: replay must maintain the rebuilt index through them.
	if err := s1.Exec(`
		INSERT INTO Fares VALUES (100, 3, 0);
		UPDATE Fares SET price = 3 WHERE id = 4;
		DELETE FROM Fares WHERE id = 13;
	`); err != nil {
		t.Fatal(err)
	}
	// kill -9: abandon s1 without Close and replay the directory.

	s2 := walSystem(t, path)
	defer s2.Close()
	d, err := s2.Explain("SELECT id FROM Fares WHERE price = 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.String(), "eq probe (ordered) via fares_price") {
		t.Fatalf("recovered plan does not use the rebuilt index:\n%s", d.String())
	}
	res, err := s2.Query("SELECT id FROM Fares WHERE price = 3 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	// price = 3 ⇒ ids 3, 23, 33, 43, 53 (13 deleted), plus post-index 4 and 100.
	want := []int64{3, 4, 23, 33, 43, 53, 100}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows through rebuilt index = %v, want ids %v", res.Rows, want)
	}
	for i, id := range want {
		if got := res.Rows[i][0].Int(); got != id {
			t.Fatalf("row %d = %d, want %d (all: %v)", i, got, id, res.Rows)
		}
	}

	// DDL-stamped replan on the recovered system: a handle prepared while
	// hops has no index transparently switches to one created afterwards.
	ps, err := s2.Prepare("SELECT id FROM Fares WHERE hops = ?")
	if err != nil {
		t.Fatal(err)
	}
	before, err := ps.Exec("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, err = s2.Explain("SELECT id FROM Fares WHERE hops = ?", nil); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(d.Steps[0].Path, "scan") {
		t.Fatalf("expected scan before the index exists, got:\n%s", d.String())
	}
	if err := s2.Exec("CREATE INDEX fares_hops ON Fares (hops)"); err != nil {
		t.Fatal(err)
	}
	after, err := ps.Exec("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Result.Rows) != len(before.Result.Rows) {
		t.Fatalf("replanned handle changed the answer: %d vs %d rows",
			len(after.Result.Rows), len(before.Result.Rows))
	}
	if d, err = s2.Explain("SELECT id FROM Fares WHERE hops = ?", nil); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(d.Steps[0].Path, "eq probe (ordered)") {
		t.Fatalf("expected ordered probe after CREATE INDEX, got:\n%s", d.String())
	}

	// Second crash, this time after a checkpoint: both indexes must survive
	// through the snapshot's index metadata rather than tail replay.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	s3 := walSystem(t, path)
	defer s3.Close()
	for _, q := range []string{
		"SELECT id FROM Fares WHERE price = ?",
		"SELECT id FROM Fares WHERE hops = ?",
	} {
		d, err := s3.Explain(q, value.NewTuple(int64(3)))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(d.Steps[0].Path, "eq probe (ordered)") {
			t.Errorf("index lost across checkpointed restart for %s:\n%s", q, d.String())
		}
	}
}
