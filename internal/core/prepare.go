package core

import (
	"context"
	"fmt"

	"repro/internal/coord"
	"repro/internal/engine"
	"repro/internal/eq"
	"repro/internal/sql"
	"repro/internal/value"
)

// PreparedStmt is a reusable statement handle: the text was parsed once, and
// the layer-specific artifact — an engine plan for plain SQL, a compiled
// coordination template for entangled queries — was built once. Executing it
// binds a parameter vector (`?` / `$n` slots in the text) without touching
// the parser or compiler again.
//
// Handles are immutable and safe for concurrent use; they are also what the
// text→artifact LRU behind plain Execute stores, so one handle may serve
// many sessions.
type PreparedStmt struct {
	sys  *System
	src  string
	stmt sql.Statement
	n    int

	plan *engine.Prepared // plain statements (nil for entangled/txn control)
	tmpl *eq.Template     // entangled queries
}

// Source returns the SQL text the statement was prepared from.
func (ps *PreparedStmt) Source() string { return ps.src }

// NumParams returns the parameter-vector length ExecuteBound expects.
func (ps *PreparedStmt) NumParams() int { return ps.n }

// Entangled reports whether execution submits to the coordination component.
func (ps *PreparedStmt) Entangled() bool { return ps.tmpl != nil }

// Prepare parses and compiles one statement for repeated execution. The
// result is cached: preparing the same text again (on this System, while the
// entry survives the LRU) returns the same handle without re-parsing.
func (s *System) Prepare(src string) (*PreparedStmt, error) {
	return s.prepareCached(src)
}

// prepareCached is the cache-fronted compile path shared by Prepare,
// Execute and Session.Execute.
func (s *System) prepareCached(src string) (*PreparedStmt, error) {
	ddl := s.cat.DDLVersion()
	if ps := s.stmts.get(src, ddl); ps != nil {
		return ps, nil
	}
	ps, err := s.compile(src)
	if err != nil {
		return nil, err
	}
	s.stmts.put(src, ps, ddl)
	return ps, nil
}

// compile builds the layered artifact for one statement.
func (s *System) compile(src string) (*PreparedStmt, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	ps := &PreparedStmt{sys: s, src: src, stmt: stmt, n: sql.NumParams(stmt)}
	switch es := stmt.(type) {
	case *sql.EntangledSelect:
		tmpl, err := eq.CompileTemplate(es, src)
		if err != nil {
			return nil, err
		}
		ps.tmpl = tmpl
	case *sql.TxnStmt:
		// Transaction control has no artifact; Session routes it.
	default:
		plan, err := s.eng.Prepare(stmt)
		if err != nil {
			return nil, err
		}
		ps.plan = plan
	}
	return ps, nil
}

// checkParams validates the bound vector's arity.
func (ps *PreparedStmt) checkParams(params value.Tuple) error {
	if len(params) < ps.n {
		return fmt.Errorf("core: statement needs %d parameter(s), got %d", ps.n, len(params))
	}
	return nil
}

// ExecuteBound runs the prepared statement with params bound, outside any
// interactive transaction. Entangled statements submit a template-bound
// query to the coordinator — skipping sql.Parse and eq compilation entirely
// — and return a waitable handle, exactly like Execute does for text.
func (ps *PreparedStmt) ExecuteBound(params value.Tuple, owner string) (*Response, error) {
	if err := ps.sys.gate(ps.stmt); err != nil {
		return nil, err
	}
	if err := ps.checkParams(params); err != nil {
		return nil, err
	}
	if ps.tmpl != nil {
		h, err := ps.SubmitBound(params, owner)
		if err != nil {
			return nil, err
		}
		return &Response{Handle: h, Entangled: true}, nil
	}
	if _, ok := ps.stmt.(*sql.TxnStmt); ok {
		return nil, fmt.Errorf("core: BEGIN/COMMIT/ROLLBACK require a Session (interactive transactions are per-connection)")
	}
	res, err := ps.plan.Execute(params)
	if err != nil {
		return nil, err
	}
	if err := ps.sys.afterPlain(ps.stmt); err != nil {
		return nil, err
	}
	return &Response{Result: res}, nil
}

// ExecuteBoundContext is ExecuteBound with cancellation plumbing (see
// System.ExecuteContext for the semantics).
func (ps *PreparedStmt) ExecuteBoundContext(ctx context.Context, params value.Tuple, owner string) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := ps.ExecuteBound(params, owner)
	if err != nil {
		return nil, err
	}
	ps.sys.bindContext(ctx, resp)
	return resp, nil
}

// SubmitBound binds params into the entangled template and registers the
// query with the coordination component — the bind-many half of the
// pipeline: no parse, no compile, just atom substitution and submission.
func (ps *PreparedStmt) SubmitBound(params value.Tuple, owner string) (*coord.Handle, error) {
	if err := ps.sys.gate(ps.stmt); err != nil {
		return nil, err
	}
	if ps.tmpl == nil {
		return nil, fmt.Errorf("core: SubmitBound requires an entangled statement (INTO ANSWER)")
	}
	if err := ps.checkParams(params); err != nil {
		return nil, err
	}
	q, err := ps.tmpl.Bind(params)
	if err != nil {
		return nil, err
	}
	h, err := ps.sys.coord.Submit(q, owner)
	if err != nil {
		return nil, err
	}
	if err := ps.sys.commitWAL(); err != nil {
		return nil, err
	}
	return h, nil
}

// Exec is ExecuteBound with Go-native arguments (see value.NewTuple for the
// accepted kinds).
func (ps *PreparedStmt) Exec(owner string, args ...any) (*Response, error) {
	return ps.ExecuteBound(value.NewTuple(args...), owner)
}

// Prepare is System.Prepare; prepared handles are session-independent, but
// executing one through ExecutePrepared respects this session's open
// transaction.
func (s *Session) Prepare(src string) (*PreparedStmt, error) {
	return s.sys.Prepare(src)
}

// ExecutePrepared runs a prepared statement in this session: inside an open
// interactive transaction plain statements join it (entangled queries are
// rejected, as with text), outside one the system-level path applies.
func (s *Session) ExecutePrepared(ps *PreparedStmt, params value.Tuple, owner string) (*Response, error) {
	if _, ok := ps.stmt.(*sql.TxnStmt); ok {
		return s.ExecuteStmt(ps.stmt, owner)
	}
	if ps.tmpl != nil {
		if s.tx != nil {
			return nil, fmt.Errorf("%w: entangled queries coordinate in their own transaction; COMMIT or ROLLBACK first", ErrTxnOpen)
		}
		return ps.ExecuteBound(params, owner)
	}
	if err := ps.checkParams(params); err != nil {
		return nil, err
	}
	if s.tx == nil {
		return ps.ExecuteBound(params, owner)
	}
	res, err := ps.plan.ExecuteIn(s.tx, params)
	if err != nil {
		// Statement-level failure aborts the whole interactive transaction
		// (strict 2PL has no partial statement rollback) — same contract as
		// the text path.
		s.tx.Rollback() //nolint:errcheck
		s.tx = nil
		s.sys.commitWAL() //nolint:errcheck // compensations durable; sticky error resurfaces on the next commit
		return nil, fmt.Errorf("%w (transaction rolled back)", err)
	}
	return &Response{Result: res}, nil
}

// ExecutePreparedContext is ExecutePrepared with cancellation plumbing: an
// entangled submission stays bound to ctx (withdrawn on cancellation or
// deadline), mirroring Session.ExecuteContext.
func (s *Session) ExecutePreparedContext(ctx context.Context, ps *PreparedStmt, params value.Tuple, owner string) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := s.ExecutePrepared(ps, params, owner)
	if err != nil {
		return nil, err
	}
	s.sys.bindContext(ctx, resp)
	return resp, nil
}
