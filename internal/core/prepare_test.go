package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/value"
)

func newPrepSystem(t *testing.T) *System {
	t.Helper()
	sys := NewSystem(Config{})
	if err := sys.Exec(`CREATE TABLE Flights (fno INT, dest STRING, price FLOAT, PRIMARY KEY (fno));
CREATE INDEX ON Flights (dest);
INSERT INTO Flights VALUES (1, 'Paris', 100.0), (2, 'Paris', 250.0), (3, 'Rome', 180.0)`); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemPreparePlain(t *testing.T) {
	sys := newPrepSystem(t)
	ps, err := sys.Prepare("SELECT fno FROM Flights WHERE dest = ? ORDER BY fno")
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumParams() != 1 || ps.Entangled() {
		t.Fatalf("handle: n=%d entangled=%v", ps.NumParams(), ps.Entangled())
	}
	for i := 0; i < 3; i++ {
		resp, err := ps.Exec("", "Paris")
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Result.Rows) != 2 {
			t.Fatalf("round %d: %d rows", i, len(resp.Result.Rows))
		}
	}
	// Same text → same cached handle.
	again, err := sys.Prepare("SELECT fno FROM Flights WHERE dest = ? ORDER BY fno")
	if err != nil {
		t.Fatal(err)
	}
	if again != ps {
		t.Fatal("statement cache did not deduplicate identical text")
	}
}

func TestSystemPrepareEntangled(t *testing.T) {
	sys := newPrepSystem(t)
	ps, err := sys.Prepare(`SELECT ?, fno INTO ANSWER Reservation
WHERE fno IN (SELECT fno FROM Flights WHERE dest = ?)
AND (?, fno) IN ANSWER Reservation CHOOSE 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Entangled() || ps.NumParams() != 3 {
		t.Fatalf("handle: n=%d entangled=%v", ps.NumParams(), ps.Entangled())
	}
	h1, err := ps.SubmitBound(value.NewTuple("Kramer", "Paris", "Jerry"), "k")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ps.SubmitBound(value.NewTuple("Jerry", "Paris", "Kramer"), "j")
	if err != nil {
		t.Fatal(err)
	}
	deadline := make(chan struct{})
	timer := time.AfterFunc(10*time.Second, func() { close(deadline) })
	defer timer.Stop()
	out1, ok1 := h1.Wait(deadline)
	out2, ok2 := h2.Wait(deadline)
	if !ok1 || !ok2 {
		t.Fatal("prepared pair did not coordinate")
	}
	// Both must be answered on the same flight number.
	f1 := out1.Answers[0].Tuples[0][1]
	f2 := out2.Answers[0].Tuples[0][1]
	if !f1.Identical(f2) {
		t.Fatalf("pair coordinated on different flights: %s vs %s", f1, f2)
	}
	// And the answers carry the BOUND names, not placeholders.
	if got := out1.Answers[0].Tuples[0][0].Str(); got != "Kramer" {
		t.Fatalf("answer name %q", got)
	}
}

func TestExecuteRejectsUnboundParams(t *testing.T) {
	sys := newPrepSystem(t)
	if _, err := sys.Execute("SELECT fno FROM Flights WHERE dest = ?", ""); err == nil {
		t.Fatal("Execute of parameterized text accepted without a vector")
	}
	if _, err := sys.Submit("SELECT ?, fno INTO ANSWER R WHERE fno = ? CHOOSE 1", ""); err == nil {
		t.Fatal("Submit of parameterized entangled text accepted")
	}
}

func TestStmtCacheLRUAndDDL(t *testing.T) {
	sys := NewSystem(Config{StmtCacheSize: 2})
	if err := sys.Exec("CREATE TABLE T (x INT)"); err != nil {
		t.Fatal(err)
	}
	mk := func(i int) string { return fmt.Sprintf("SELECT x FROM T WHERE x = %d", i) }
	a, _ := sys.Prepare(mk(1))
	b, _ := sys.Prepare(mk(2))
	if got := sys.stmts.len(); got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}
	// Touch a (making b the LRU), then insert c: b must be evicted.
	if got, _ := sys.Prepare(mk(1)); got != a {
		t.Fatal("a fell out of the cache prematurely")
	}
	if _, err := sys.Prepare(mk(3)); err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.Prepare(mk(1)); got != a {
		t.Fatal("a evicted although recently used")
	}
	if got, _ := sys.Prepare(mk(2)); got == b {
		t.Fatal("b survived although least recently used")
	}

	// DDL invalidates: a re-prepare after schema change yields a fresh
	// artifact (stamped with the new version).
	before, _ := sys.Prepare(mk(1))
	if err := sys.Exec("CREATE TABLE U (y INT)"); err != nil {
		t.Fatal(err)
	}
	after, err := sys.Prepare(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("cached artifact survived DDL")
	}
}

func TestStmtCacheDisabled(t *testing.T) {
	sys := NewSystem(Config{StmtCacheSize: -1})
	if err := sys.Exec("CREATE TABLE T (x INT)"); err != nil {
		t.Fatal(err)
	}
	a, err := sys.Prepare("SELECT x FROM T")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Prepare("SELECT x FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("disabled cache still deduplicated")
	}
	if _, err := a.ExecuteBound(nil, ""); err != nil {
		t.Fatal(err)
	}
}

// TestSessionPreparedTxn: prepared DML joins an open interactive
// transaction and rolls back with it.
func TestSessionPreparedTxn(t *testing.T) {
	sys := newPrepSystem(t)
	sess := NewSession(sys)
	defer sess.Close()
	ins, err := sess.Prepare("INSERT INTO Flights VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("BEGIN", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecutePrepared(ins, value.NewTuple(50, "Lima", 300.0), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("ROLLBACK", ""); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT fno FROM Flights WHERE fno = 50")
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("rolled-back prepared insert visible: %v %v", res, err)
	}

	// Entangled prepared statements are rejected inside a transaction.
	book, err := sess.Prepare("SELECT ?, fno INTO ANSWER Reservation WHERE fno = ? CHOOSE 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("BEGIN", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecutePrepared(book, value.NewTuple("u", 1), ""); err == nil ||
		!strings.Contains(err.Error(), "COMMIT or ROLLBACK") {
		t.Fatalf("entangled prepared inside txn: %v", err)
	}
	if _, err := sess.Execute("COMMIT", ""); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedFloatRoundTrip: float64 parameters reach the answer store
// bit-exactly through the whole core pipeline (the %g text path cannot even
// represent these).
func TestPreparedFloatRoundTrip(t *testing.T) {
	sys := newPrepSystem(t)
	if err := sys.Exec("CREATE TABLE P (x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	ins, err := sys.Prepare("INSERT INTO P VALUES ($1)")
	if err != nil {
		t.Fatal(err)
	}
	const tiny = 1e-05 // %g renders as "1e-05", which text SQL cannot lex
	if _, err := ins.Exec("", tiny); err != nil {
		t.Fatal(err)
	}
	sel, err := sys.Prepare("SELECT x FROM P WHERE x = $1")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sel.Exec("", tiny)
	if err != nil || len(resp.Result.Rows) != 1 {
		t.Fatalf("tiny float lost: %v %v", resp, err)
	}
}
