package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Replication roles. A System is a primary (accepts writes, logs them) or a
// follower (replays a primary's shipped log, serves snapshot reads). The role
// can change once, at promotion.

// NotPrimaryError rejects a write or entangled submission on a follower,
// carrying the primary's address so clients can redirect.
type NotPrimaryError struct {
	Primary string // primary's client address, if the follower knows it
}

func (e *NotPrimaryError) Error() string {
	if e.Primary == "" {
		return "core: not primary (read-only follower)"
	}
	return fmt.Sprintf("core: not primary (read-only follower); retry against %s", e.Primary)
}

// ErrNotReady rejects reads on a follower that is mid-reset: its old state
// was discarded and the replacement snapshot has not landed yet. Retryable —
// the follower becomes ready as soon as the snapshot commit applies.
var ErrNotReady = errors.New("core: follower resynchronizing; snapshot not yet applied, retry")

// ReplFollowerStatus is one connected (or recently connected) follower as the
// primary sees it: how far the stream has shipped, how far the follower has
// acknowledged, and the resulting lag.
type ReplFollowerStatus struct {
	Addr       string // follower's remote address
	ShipSeq    uint64 // segment/offset the shipper has sent through
	ShipOff    int64
	AckSeq     uint64 // segment/offset the follower has applied (durable up to its last seal)
	AckOff     int64
	AckRecords uint64 // records acknowledged in this connection
	LagRecords uint64 // records shipped but not yet acknowledged
	LagMillis  int64  // age of the newest acknowledged chunk's ship time
	Connected  bool
}

// ReplStatus is the replication health surface (admin `repl`/`health`).
type ReplStatus struct {
	Role      string // "primary" or "follower"
	Ready     bool   // followers: consistent state is being served
	Epoch     uint64 // fencing epoch this node believes in
	Primary   string // followers: upstream address being pulled from
	Seq       uint64 // local log end position
	Off       int64
	LastTS    uint64 // followers: replayed commit-timestamp watermark
	Applied   uint64 // followers: records applied since open
	Open      int    // followers: transactions seen but not yet committed
	Link      bool   // followers: upstream connection is up
	Followers []ReplFollowerStatus
}

// String renders the status as the admin surface shows it.
func (r ReplStatus) String() string {
	var b []byte
	b = fmt.Appendf(b, "role=%s epoch=%d position=%d/%d", r.Role, r.Epoch, r.Seq, r.Off)
	if r.Role == "follower" {
		b = fmt.Appendf(b, " ready=%v link=%v primary=%s applied=%d open=%d watermark=%d",
			r.Ready, r.Link, r.Primary, r.Applied, r.Open, r.LastTS)
	}
	for _, f := range r.Followers {
		b = fmt.Appendf(b, "\n  follower %-21s shipped=%d/%d acked=%d/%d lag=%d records %d ms connected=%v",
			f.Addr, f.ShipSeq, f.ShipOff, f.AckSeq, f.AckOff, f.LagRecords, f.LagMillis, f.Connected)
	}
	return string(append(b, '\n'))
}

// repl is the System's replication state. Zero value = standalone primary.
type repl struct {
	mu       sync.Mutex
	follower bool   // true until promotion
	ready    bool   // follower serves consistent reads (false mid-reset)
	primary  string // upstream client address for NotPrimaryError redirects
	applier  *wal.Applier
	status   func() ReplStatus // installed by the repl.Node running this system
	promote  func() error      // installed by the repl.Node; full promotion path
}

// IsFollower reports whether the system currently rejects writes.
func (s *System) IsFollower() bool {
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	return s.repl.follower
}

// Ready reports whether reads are being served from consistent state. Always
// true on a primary.
func (s *System) Ready() bool {
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	return !s.repl.follower || s.repl.ready
}

// SetReady flips the follower read gate (replication layer: false at the
// start of a resync, true once the replacement snapshot has applied).
func (s *System) SetReady(ready bool) {
	s.repl.mu.Lock()
	s.repl.ready = ready
	s.repl.mu.Unlock()
}

// SetPrimaryAddr records the primary's client address for redirect errors.
func (s *System) SetPrimaryAddr(addr string) {
	s.repl.mu.Lock()
	s.repl.primary = addr
	s.repl.mu.Unlock()
}

// ReplApplier exposes the follower's record applier (nil on a primary).
func (s *System) ReplApplier() *wal.Applier { return s.repl.applier }

// SetReplStatus installs the replication layer's status provider.
func (s *System) SetReplStatus(fn func() ReplStatus) {
	s.repl.mu.Lock()
	s.repl.status = fn
	s.repl.mu.Unlock()
}

// SetPromote installs the replication layer's promotion hook (stops the
// puller and bumps the fencing epoch before calling BecomePrimary).
func (s *System) SetPromote(fn func() error) {
	s.repl.mu.Lock()
	s.repl.promote = fn
	s.repl.mu.Unlock()
}

// Promote runs the installed promotion hook (admin surface). On a system with
// no replication layer it reports the role as-is.
func (s *System) Promote() error {
	s.repl.mu.Lock()
	fn := s.repl.promote
	follower := s.repl.follower
	s.repl.mu.Unlock()
	if fn != nil {
		return fn()
	}
	if !follower {
		return errors.New("core: already primary")
	}
	return errors.New("core: no replication layer attached; cannot promote")
}

// ReplStatus reports replication health. Without a replication layer it
// still reports the local role and log position.
func (s *System) ReplStatus() ReplStatus {
	s.repl.mu.Lock()
	fn := s.repl.status
	follower, ready := s.repl.follower, s.repl.ready
	s.repl.mu.Unlock()
	if fn != nil {
		return fn()
	}
	st := ReplStatus{Role: "primary", Ready: true}
	if follower {
		st.Role, st.Ready = "follower", ready
	}
	if s.wal != nil {
		pos := s.wal.End()
		st.Seq, st.Off = pos.Seq, pos.Off
	}
	if a := s.repl.applier; a != nil {
		st.LastTS, st.Applied, st.Open = a.LastTS(), a.Applied(), a.OpenTxns()
	}
	return st
}

// gate rejects statements a follower cannot run: everything but a plain
// SELECT redirects to the primary, and reads are refused (retryably) while a
// resync has discarded the local state.
func (s *System) gate(stmt sql.Statement) error {
	s.repl.mu.Lock()
	follower, ready, primary := s.repl.follower, s.repl.ready, s.repl.primary
	s.repl.mu.Unlock()
	if !follower {
		return nil
	}
	switch stmt.(type) {
	case *sql.Select, *sql.Explain:
		// Read-only: EXPLAIN describes a plan without executing, so a
		// follower may serve it even for write statements.
	default:
		return &NotPrimaryError{Primary: primary}
	}
	if !ready {
		return ErrNotReady
	}
	return nil
}

// BecomePrimary flips a follower into write-accepting mode. The replication
// layer calls it after stopping the puller and bumping the fencing epoch:
// it reopens the log for appending, attaches the log hook so new writes are
// logged — and THEN publishes every transaction whose commit record the old
// primary never shipped, so those commit records land in the promoted log
// and demultiplex correctly on this node's own future followers. The MVCC
// clock was dragged past the primary's at every replayed commit, so new
// commits draw timestamps strictly above the replayed watermark.
func (s *System) BecomePrimary() error {
	s.repl.mu.Lock()
	if !s.repl.follower {
		s.repl.mu.Unlock()
		return errors.New("core: already primary")
	}
	if !s.repl.ready {
		s.repl.mu.Unlock()
		return fmt.Errorf("core: cannot promote: %w", ErrNotReady)
	}
	s.repl.mu.Unlock()
	if s.wal == nil || s.repl.applier == nil {
		return errors.New("core: not a follower system")
	}
	if err := s.wal.EnsureActive(); err != nil {
		return fmt.Errorf("core: promote: %w", err)
	}
	if s.walSync {
		s.cat.SetLog(func(r storage.LogRecord) { s.wal.AppendAsync(r) }) //nolint:errcheck // sticky error surfaced by commitWAL/Close
	} else {
		s.cat.SetLog(func(r storage.LogRecord) { s.wal.Append(r) }) //nolint:errcheck // sticky error surfaced by Close
	}
	s.repl.applier.CommitAll()
	// Defensive: replay already advanced the clock to the watermark; make
	// sure of it even if the tail commit record never arrived.
	s.cat.AdvanceClock(s.repl.applier.LastTS())
	if err := s.commitWALAlways(); err != nil {
		return fmt.Errorf("core: promote: %w", err)
	}
	s.repl.mu.Lock()
	s.repl.follower = false
	s.repl.mu.Unlock()
	return nil
}

// commitWALAlways forces the promotion commits to disk regardless of the
// configured sync mode — a promotion must not be lost to a crash.
func (s *System) commitWALAlways() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Commit()
}
