package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/sql"
	"repro/internal/txn"
)

// ErrNoTxn is returned by COMMIT/ROLLBACK outside a transaction.
var ErrNoTxn = errors.New("core: no transaction in progress")

// ErrTxnOpen is returned by BEGIN inside a transaction and by operations that
// cannot run inside one.
var ErrTxnOpen = errors.New("core: transaction already in progress")

// Session wraps a System with per-connection state: an optional open
// interactive transaction (BEGIN/COMMIT/ROLLBACK). The CLI and every wire
// connection hold one Session. A Session is not safe for concurrent use —
// like a database connection.
type Session struct {
	sys *System
	tx  *txn.Txn
}

// NewSession opens a session on the system.
func NewSession(sys *System) *Session { return &Session{sys: sys} }

// System returns the underlying system.
func (s *Session) System() *System { return s.sys }

// InTxn reports whether an interactive transaction is open.
func (s *Session) InTxn() bool { return s.tx != nil }

// Close rolls back any open transaction.
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Rollback()   //nolint:errcheck
		s.sys.commitWAL() //nolint:errcheck // see ROLLBACK: compensations must not stay buffered
		s.tx = nil
	}
}

// Execute parses and runs one statement with transaction-control support.
//
// Inside an open transaction, plain statements accumulate under its locks;
// entangled queries are rejected — a coordinated match is its own atomic
// joint execution (the paper's model), and nesting it inside a client
// transaction would entangle unrelated lock scopes.
//
// Like System.Execute, this is fronted by the statement cache: identical
// text re-sent on any session reuses one parsed/compiled artifact.
func (s *Session) Execute(src, owner string) (*Response, error) {
	ps, err := s.sys.prepareCached(src)
	if err != nil {
		return nil, err
	}
	return s.ExecutePrepared(ps, nil, owner)
}

// ExecuteContext is Execute with cancellation plumbing: the context gates
// entry, and an entangled submission is withdrawn from the coordinator when
// ctx is canceled or its deadline passes while the query is still pending
// (see System.ExecuteContext). The wire server runs every statement through
// this, with one context per connection: dropping the connection cancels the
// context, which withdraws every entangled query the connection still owns.
func (s *Session) ExecuteContext(ctx context.Context, src, owner string) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := s.Execute(src, owner)
	if err != nil {
		return nil, err
	}
	s.sys.bindContext(ctx, resp)
	return resp, nil
}

// ExecuteStmt is Execute for pre-parsed statements.
func (s *Session) ExecuteStmt(stmt sql.Statement, owner string) (*Response, error) {
	switch st := stmt.(type) {
	case *sql.TxnStmt:
		if err := s.sys.gate(stmt); err != nil {
			// A follower has no interactive transactions: BEGIN cannot open
			// one (writes would be refused anyway), and COMMIT/ROLLBACK have
			// nothing to close.
			return nil, err
		}
		switch st.Kind {
		case sql.TxnBegin:
			if s.tx != nil {
				return nil, ErrTxnOpen
			}
			s.tx = s.sys.mgr.Begin()
			return &Response{}, nil
		case sql.TxnCommit:
			if s.tx == nil {
				return nil, ErrNoTxn
			}
			err := s.tx.Commit()
			s.tx = nil
			if err != nil {
				return nil, err
			}
			// Committed writes may unblock parked entangled queries.
			if s.sys.autoRetry && s.sys.coord.PendingCount() > 0 {
				s.sys.coord.Retry()
			}
			// COMMIT is the transaction's durability point.
			if err := s.sys.commitWAL(); err != nil {
				return nil, err
			}
			return &Response{}, nil
		default: // rollback
			if s.tx == nil {
				return nil, ErrNoTxn
			}
			err := s.tx.Rollback()
			s.tx = nil
			if err != nil {
				return nil, err
			}
			// The compensation records must reach the durability point too:
			// if the forward records of this transaction made it into an
			// earlier flush, an un-flushed rollback could be resurrected by
			// crash recovery.
			if err := s.sys.commitWAL(); err != nil {
				return nil, err
			}
			return &Response{}, nil
		}

	case *sql.EntangledSelect:
		if s.tx != nil {
			return nil, fmt.Errorf("%w: entangled queries coordinate in their own transaction; COMMIT or ROLLBACK first", ErrTxnOpen)
		}
		return s.sys.ExecuteStmt(stmt, owner)

	default:
		if s.tx == nil {
			return s.sys.ExecuteStmt(stmt, owner)
		}
		res, err := s.sys.eng.ExecuteIn(s.tx, stmt)
		if err != nil {
			// Statement-level failure aborts the whole interactive
			// transaction (strict 2PL has no partial statement rollback).
			s.tx.Rollback() //nolint:errcheck
			s.tx = nil
			s.sys.commitWAL() //nolint:errcheck // compensations durable; sticky error resurfaces on the next commit
			return nil, fmt.Errorf("%w (transaction rolled back)", err)
		}
		return &Response{Result: res}, nil
	}
}
