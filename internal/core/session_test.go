package core

import (
	"errors"
	"testing"
)

func TestSessionCommit(t *testing.T) {
	sys := seeded(t)
	s := NewSession(sys)
	defer s.Close()
	mustExec := func(src string) *Response {
		t.Helper()
		r, err := s.Execute(src, "")
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return r
	}
	mustExec("BEGIN")
	if !s.InTxn() {
		t.Fatal("not in txn after BEGIN")
	}
	mustExec("INSERT INTO Flights VALUES (200, 'Oslo')")
	mustExec("INSERT INTO Flights VALUES (201, 'Oslo')")
	mustExec("COMMIT")
	if s.InTxn() {
		t.Fatal("still in txn after COMMIT")
	}
	res, err := sys.Query("SELECT COUNT(*) FROM Flights WHERE dest = 'Oslo'")
	if err != nil || res.Rows[0][0].Int() != 2 {
		t.Fatalf("committed rows: %v %v", res, err)
	}
}

func TestSessionRollback(t *testing.T) {
	sys := seeded(t)
	s := NewSession(sys)
	defer s.Close()
	s.Execute("BEGIN", "")                                    //nolint:errcheck
	s.Execute("INSERT INTO Flights VALUES (300, 'Lima')", "") //nolint:errcheck
	s.Execute("DELETE FROM Flights WHERE fno = 122", "")      //nolint:errcheck
	if _, err := s.Execute("ROLLBACK", ""); err != nil {
		t.Fatal(err)
	}
	res, _ := sys.Query("SELECT fno FROM Flights WHERE fno = 300")
	if len(res.Rows) != 0 {
		t.Error("rolled-back insert visible")
	}
	res, _ = sys.Query("SELECT fno FROM Flights WHERE fno = 122")
	if len(res.Rows) != 1 {
		t.Error("rolled-back delete applied")
	}
}

func TestSessionTxnControlErrors(t *testing.T) {
	sys := seeded(t)
	s := NewSession(sys)
	defer s.Close()
	if _, err := s.Execute("COMMIT", ""); !errors.Is(err, ErrNoTxn) {
		t.Errorf("commit outside txn: %v", err)
	}
	if _, err := s.Execute("ROLLBACK", ""); !errors.Is(err, ErrNoTxn) {
		t.Errorf("rollback outside txn: %v", err)
	}
	s.Execute("BEGIN", "") //nolint:errcheck
	if _, err := s.Execute("BEGIN", ""); !errors.Is(err, ErrTxnOpen) {
		t.Errorf("nested begin: %v", err)
	}
}

func TestSessionEntangledRejectedInTxn(t *testing.T) {
	sys := seeded(t)
	s := NewSession(sys)
	defer s.Close()
	s.Execute("BEGIN", "") //nolint:errcheck
	_, err := s.Execute(`SELECT 'K', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights) AND ('J', fno) IN ANSWER R`, "")
	if !errors.Is(err, ErrTxnOpen) {
		t.Errorf("entangled in txn: %v", err)
	}
	// Still usable after the rejection.
	if _, err := s.Execute("SELECT 1", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("COMMIT", ""); err != nil {
		t.Fatal(err)
	}
	// Outside the txn entangled works again.
	if _, err := s.Execute(`SELECT 'K', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights) AND ('J', fno) IN ANSWER R`, ""); err != nil {
		t.Fatal(err)
	}
}

func TestSessionStatementErrorAborts(t *testing.T) {
	sys := seeded(t)
	s := NewSession(sys)
	defer s.Close()
	s.Execute("BEGIN", "")                                    //nolint:errcheck
	s.Execute("INSERT INTO Flights VALUES (400, 'Kiev')", "") //nolint:errcheck
	if _, err := s.Execute("SELECT nosuch FROM Flights", ""); err == nil {
		t.Fatal("bad statement accepted")
	}
	if s.InTxn() {
		t.Error("txn still open after statement failure")
	}
	res, _ := sys.Query("SELECT fno FROM Flights WHERE fno = 400")
	if len(res.Rows) != 0 {
		t.Error("aborted txn leaked its insert")
	}
}

func TestSessionCommitTriggersRetry(t *testing.T) {
	sys := seeded(t)
	mk := func(self, friend string) string {
		return `SELECT '` + self + `', fno INTO ANSWER R
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='Oslo')
			AND ('` + friend + `', fno) IN ANSWER R CHOOSE 1`
	}
	hA, err := sys.Submit(mk("A", "B"), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(mk("B", "A"), ""); err != nil {
		t.Fatal(err)
	}

	s := NewSession(sys)
	defer s.Close()
	s.Execute("BEGIN", "")                                    //nolint:errcheck
	s.Execute("INSERT INTO Flights VALUES (500, 'Oslo')", "") //nolint:errcheck
	// Not visible to coordination until commit (the txn holds the lock, and
	// retry only runs on COMMIT).
	if _, ok := hA.TryOutcome(); ok {
		t.Fatal("uncommitted insert matched a pending query")
	}
	if _, err := s.Execute("COMMIT", ""); err != nil {
		t.Fatal(err)
	}
	out := wait(t, hA)
	if out.Answers[0].Tuples[0][1].Int() != 500 {
		t.Errorf("answer = %v", out.Answers)
	}
}

func TestSystemRejectsTxnControl(t *testing.T) {
	sys := seeded(t)
	if _, err := sys.Execute("BEGIN", ""); err == nil {
		t.Error("System.Execute accepted BEGIN (sessions only)")
	}
	if err := sys.Exec("BEGIN; COMMIT"); err == nil {
		t.Error("Exec accepted txn control")
	}
}

func TestSessionCloseRollsBack(t *testing.T) {
	sys := seeded(t)
	s := NewSession(sys)
	s.Execute("BEGIN", "")                                    //nolint:errcheck
	s.Execute("INSERT INTO Flights VALUES (600, 'Bonn')", "") //nolint:errcheck
	s.Close()
	res, _ := sys.Query("SELECT fno FROM Flights WHERE fno = 600")
	if len(res.Rows) != 0 {
		t.Error("Close did not roll back")
	}
	// Double close is safe.
	s.Close()
}
