package core

import (
	"container/list"
	"sync"
)

// stmtCache is the size-bounded LRU mapping SQL text to its compiled
// artifact (*PreparedStmt). It fronts both the explicit Prepare API and
// plain Execute/Session.Execute, so a middle tier that re-sends identical
// text still parses it once. Entries are stamped with the catalog's DDL
// version at insertion and dropped on first access after any schema change —
// the cached engine plans would replan themselves anyway, but explicit
// invalidation keeps the cache from pinning artifacts of dropped tables.
type stmtCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

type stmtCacheEnt struct {
	src     string
	ps      *PreparedStmt
	version uint64 // catalog DDL version at insertion
}

func newStmtCache(max int) *stmtCache {
	if max <= 0 {
		return &stmtCache{} // disabled
	}
	return &stmtCache{max: max, m: make(map[string]*list.Element, max), ll: list.New()}
}

// get returns the cached artifact for src, or nil. A hit moves the entry to
// the front; an entry from before the given DDL version is dropped instead.
func (c *stmtCache) get(src string, ddl uint64) *PreparedStmt {
	if c.max <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.m[src]
	if el == nil {
		return nil
	}
	ent := el.Value.(*stmtCacheEnt)
	if ent.version != ddl {
		c.ll.Remove(el)
		delete(c.m, src)
		return nil
	}
	c.ll.MoveToFront(el)
	return ent.ps
}

// put inserts (or refreshes) the artifact for src, evicting the least
// recently used entry when full.
func (c *stmtCache) put(src string, ps *PreparedStmt, ddl uint64) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.m[src]; el != nil {
		ent := el.Value.(*stmtCacheEnt)
		ent.ps, ent.version = ps, ddl
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		if back := c.ll.Back(); back != nil {
			c.ll.Remove(back)
			delete(c.m, back.Value.(*stmtCacheEnt).src)
		}
	}
	c.m[src] = c.ll.PushFront(&stmtCacheEnt{src: src, ps: ps, version: ddl})
}

// len reports the number of cached artifacts (diagnostics/tests).
func (c *stmtCache) len() int {
	if c.max <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
