package engine

import (
	"fmt"
	"sort"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// hasAggregates reports whether the select list or HAVING clause contains an
// aggregate function call.
func hasAggregates(s *sql.Select) bool {
	found := false
	check := func(e sql.Expr) {
		sql.WalkExpr(e, func(x sql.Expr) {
			if _, ok := x.(*sql.FuncCall); ok {
				found = true
			}
		})
	}
	for _, it := range s.Items {
		if !it.Star {
			check(it.Expr)
		}
	}
	check(s.Having)
	for _, ob := range s.OrderBy {
		check(ob.Expr)
	}
	return found
}

// capturedRow is one joined row: the tuple bound to each FROM table.
type capturedRow []value.Tuple

// evalAggregate evaluates a SELECT with aggregates and/or GROUP BY: it
// materializes the (filtered) join, partitions it into groups, computes each
// aggregate over each group, and evaluates items/HAVING/ORDER BY with the
// aggregate calls substituted by their computed values.
func (e *Engine) evalAggregate(tx *txn.Txn, s *sql.Select, outer *Env) (*Result, error) {
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("engine: SELECT * cannot be combined with aggregates")
		}
	}
	froms := make([]*fromTable, len(s.From))
	for i, ref := range s.From {
		if err := tx.Lock(ref.Name, txn.Shared); err != nil {
			return nil, err
		}
		tbl, err := e.Catalog().Get(ref.Name)
		if err != nil {
			return nil, err
		}
		froms[i] = &fromTable{ref: ref, tbl: tbl, rangeCol: -1}
	}
	var params value.Tuple
	if outer != nil {
		params = outer.Params()
	}
	conds, skip := pushDownPredicates(s.Where, froms, len(s.From) == 1, params)

	baseEnv := NewEnv()
	if outer != nil {
		baseEnv = outer.Child()
	}

	// Materialize the filtered join, reading one consistent snapshot.
	snap := tx.Snapshot()
	var rows []capturedRow
	var rec func(i int, cur capturedRow) error
	rec = func(i int, cur capturedRow) error {
		if i == len(froms) {
			for ci, c := range conds {
				if ci < 64 && skip&(1<<uint(ci)) != 0 {
					continue
				}
				v, err := e.EvalExpr(tx, c, baseEnv)
				if err != nil {
					return err
				}
				if !truthy(v) {
					return nil
				}
			}
			cp := make(capturedRow, len(cur))
			copy(cp, cur)
			rows = append(rows, cp)
			return nil
		}
		f := froms[i]
		iterate := func(row value.Tuple) error {
			baseEnv.Bind(f.ref.Binding(), f.tbl.Schema(), row)
			cur[i] = row
			return rec(i+1, cur)
		}
		if len(f.eqCols) > 0 {
			for _, id := range f.tbl.LookupEqAppendAt(snap, nil, f.eqCols, f.eqVals) {
				row, ok := f.tbl.GetRefAt(snap, id)
				if !ok {
					continue
				}
				if err := iterate(row); err != nil {
					return err
				}
			}
			return nil
		}
		if f.rangeCol >= 0 {
			for _, id := range f.tbl.LookupRangeAt(snap, f.rangeCol, f.lo, f.hi) {
				row, ok := f.tbl.GetRefAt(snap, id)
				if !ok {
					continue
				}
				if err := iterate(row); err != nil {
					return err
				}
			}
			return nil
		}
		var iterErr error
		f.tbl.ScanAt(snap, func(_ storage.RowID, row value.Tuple) bool {
			iterErr = iterate(row)
			return iterErr == nil
		})
		return iterErr
	}
	if err := rec(0, make(capturedRow, len(froms))); err != nil {
		return nil, err
	}

	// bindRow rebuilds the environment for one captured row.
	bindRow := func(env *Env, r capturedRow) {
		for i, f := range froms {
			env.Bind(f.ref.Binding(), f.tbl.Schema(), r[i])
		}
	}

	// Partition into groups.
	type group struct {
		rep  capturedRow // representative row for non-aggregate expressions
		rows []capturedRow
	}
	var groups []*group
	if len(s.GroupBy) == 0 {
		g := &group{rows: rows}
		if len(rows) > 0 {
			g.rep = rows[0]
		}
		groups = append(groups, g)
	} else {
		index := make(map[string]*group)
		var order []string
		env := baseEnv.Child()
		for _, r := range rows {
			bindRow(env, r)
			key := make(value.Tuple, len(s.GroupBy))
			for k, ge := range s.GroupBy {
				v, err := e.EvalExpr(tx, ge, env)
				if err != nil {
					return nil, err
				}
				key[k] = v
			}
			ks := key.Key()
			g, ok := index[ks]
			if !ok {
				g = &group{rep: r}
				index[ks] = g
				order = append(order, ks)
			}
			g.rows = append(g.rows, r)
		}
		for _, ks := range order {
			groups = append(groups, index[ks])
		}
	}

	// Collect every aggregate call appearing in the query.
	var calls []*sql.FuncCall
	collect := func(ex sql.Expr) {
		sql.WalkExpr(ex, func(x sql.Expr) {
			if fc, ok := x.(*sql.FuncCall); ok {
				calls = append(calls, fc)
			}
		})
	}
	for _, it := range s.Items {
		collect(it.Expr)
	}
	collect(s.Having)
	for _, ob := range s.OrderBy {
		collect(ob.Expr)
	}

	out := &Result{Cols: aggProjectionCols(s)}
	var orderKeys []value.Tuple
	for _, g := range groups {
		vals := make(map[*sql.FuncCall]value.Value, len(calls))
		for _, fc := range calls {
			v, err := e.computeAggregate(tx, fc, g.rows, bindRow, baseEnv)
			if err != nil {
				return nil, err
			}
			vals[fc] = v
		}
		env := baseEnv.Child()
		if g.rep != nil {
			bindRow(env, g.rep)
		}
		if s.Having != nil {
			hv, err := e.EvalExpr(tx, substituteAgg(s.Having, vals), env)
			if err != nil {
				return nil, err
			}
			if !truthy(hv) {
				continue
			}
		}
		row := make(value.Tuple, 0, len(s.Items))
		for _, it := range s.Items {
			v, err := e.EvalExpr(tx, substituteAgg(it.Expr, vals), env)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Rows = append(out.Rows, row)
		if len(s.OrderBy) > 0 {
			key := make(value.Tuple, len(s.OrderBy))
			for k, ob := range s.OrderBy {
				v, err := e.EvalExpr(tx, substituteAgg(ob.Expr, vals), env)
				if err != nil {
					return nil, err
				}
				key[k] = v
			}
			orderKeys = append(orderKeys, key)
		}
	}

	if len(s.OrderBy) > 0 {
		idx := make([]int, len(out.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, bIdx int) bool {
			ka, kb := orderKeys[idx[a]], orderKeys[idx[bIdx]]
			for k, ob := range s.OrderBy {
				c := ka[k].Compare(kb[k])
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		sorted := make([]value.Tuple, len(out.Rows))
		for i, j := range idx {
			sorted[i] = out.Rows[j]
		}
		out.Rows = sorted
	}
	if s.Limit >= 0 && len(out.Rows) > s.Limit {
		out.Rows = out.Rows[:s.Limit]
	}
	return out, nil
}

// computeAggregate evaluates one aggregate call over a group.
func (e *Engine) computeAggregate(tx *txn.Txn, fc *sql.FuncCall, rows []capturedRow, bindRow func(*Env, capturedRow), baseEnv *Env) (value.Value, error) {
	if fc.Star { // COUNT(*)
		return value.NewInt(int64(len(rows))), nil
	}
	env := baseEnv.Child()
	var (
		count    int64
		sumI     int64
		sumF     float64
		anyFloat bool
		minV     value.Value = value.Null
		maxV     value.Value = value.Null
	)
	for _, r := range rows {
		bindRow(env, r)
		v, err := e.EvalExpr(tx, fc.Arg, env)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			continue // SQL aggregates skip NULLs
		}
		count++
		switch fc.Name {
		case "SUM", "AVG":
			switch v.Type() {
			case value.TypeInt:
				sumI += v.Int()
			case value.TypeFloat:
				anyFloat = true
				sumF += v.Float()
			default:
				return value.Null, fmt.Errorf("engine: %s over non-numeric %s", fc.Name, v.Type())
			}
		case "MIN":
			if minV.IsNull() || v.Compare(minV) < 0 {
				minV = v
			}
		case "MAX":
			if maxV.IsNull() || v.Compare(maxV) > 0 {
				maxV = v
			}
		case "COUNT":
			// counted above
		default:
			return value.Null, fmt.Errorf("engine: unknown aggregate %s", fc.Name)
		}
	}
	switch fc.Name {
	case "COUNT":
		return value.NewInt(count), nil
	case "SUM":
		if count == 0 {
			return value.Null, nil
		}
		if anyFloat {
			return value.NewFloat(sumF + float64(sumI)), nil
		}
		return value.NewInt(sumI), nil
	case "AVG":
		if count == 0 {
			return value.Null, nil
		}
		return value.NewFloat((sumF + float64(sumI)) / float64(count)), nil
	case "MIN":
		return minV, nil
	case "MAX":
		return maxV, nil
	default:
		return value.Null, fmt.Errorf("engine: unknown aggregate %s", fc.Name)
	}
}

// substituteAgg rebuilds an expression with every aggregate call replaced by
// its computed value literal.
func substituteAgg(e sql.Expr, vals map[*sql.FuncCall]value.Value) sql.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *sql.FuncCall:
		return &sql.Literal{Val: vals[x]}
	case *sql.Binary:
		return &sql.Binary{Op: x.Op, L: substituteAgg(x.L, vals), R: substituteAgg(x.R, vals)}
	case *sql.Not:
		return &sql.Not{X: substituteAgg(x.X, vals)}
	case *sql.Neg:
		return &sql.Neg{X: substituteAgg(x.X, vals)}
	case *sql.Between:
		return &sql.Between{X: substituteAgg(x.X, vals), Lo: substituteAgg(x.Lo, vals), Hi: substituteAgg(x.Hi, vals)}
	case *sql.InValues:
		vs := make([]sql.Expr, len(x.Vals))
		for i, v := range x.Vals {
			vs[i] = substituteAgg(v, vals)
		}
		return &sql.InValues{X: substituteAgg(x.X, vals), Vals: vs, Neg: x.Neg}
	default:
		return e
	}
}

func aggProjectionCols(s *sql.Select) []string {
	cols := make([]string, len(s.Items))
	for i, it := range s.Items {
		switch {
		case it.Alias != "":
			cols[i] = it.Alias
		default:
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				cols[i] = cr.Name
			} else {
				cols[i] = it.Expr.String()
			}
		}
	}
	return cols
}
