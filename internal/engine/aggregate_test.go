package engine

import (
	"testing"
)

// aggEngine loads a richer Flights table for aggregate tests.
func aggEngine(t *testing.T) *Engine {
	t.Helper()
	e := newEngine(t)
	query(t, e, "CREATE TABLE Prices (fno INT, dest STRING, price FLOAT)")
	query(t, e, `INSERT INTO Prices VALUES
		(122, 'Paris', 420.0), (123, 'Paris', 380.0), (134, 'Paris', 450.0),
		(136, 'Rome', 390.0), (140, 'Rome', 310.0), (141, 'Oslo', NULL)`)
	return e
}

func TestCountStar(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT COUNT(*) FROM Prices")
	if res.Rows[0][0].Int() != 6 {
		t.Errorf("count = %v", res.Rows)
	}
	if res.Cols[0] != "COUNT(*)" {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT COUNT(price) FROM Prices")
	if res.Rows[0][0].Int() != 5 {
		t.Errorf("count(price) = %v", res.Rows)
	}
}

func TestSumAvgMinMax(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT SUM(price), AVG(price), MIN(price), MAX(price) FROM Prices WHERE dest = 'Paris'")
	row := res.Rows[0]
	if row[0].Float() != 1250.0 {
		t.Errorf("sum = %v", row[0])
	}
	if row[1].Float() < 416 || row[1].Float() > 417 {
		t.Errorf("avg = %v", row[1])
	}
	if row[2].Float() != 380.0 || row[3].Float() != 450.0 {
		t.Errorf("min/max = %v %v", row[2], row[3])
	}
}

func TestSumIntStaysInt(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT SUM(fno) FROM Prices WHERE dest = 'Rome'")
	v := res.Rows[0][0]
	if v.Type().String() != "INT" || v.Int() != 276 {
		t.Errorf("sum = %v (%v)", v, v.Type())
	}
}

func TestGroupBy(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT dest, COUNT(*), MIN(price) FROM Prices GROUP BY dest ORDER BY dest")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	// Oslo, Paris, Rome (alphabetical).
	if res.Rows[0][0].Str() != "Oslo" || res.Rows[0][1].Int() != 1 || !res.Rows[0][2].IsNull() {
		t.Errorf("Oslo = %v", res.Rows[0])
	}
	if res.Rows[1][0].Str() != "Paris" || res.Rows[1][1].Int() != 3 || res.Rows[1][2].Float() != 380.0 {
		t.Errorf("Paris = %v", res.Rows[1])
	}
	if res.Rows[2][0].Str() != "Rome" || res.Rows[2][1].Int() != 2 {
		t.Errorf("Rome = %v", res.Rows[2])
	}
}

func TestHaving(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT dest, COUNT(*) FROM Prices GROUP BY dest HAVING COUNT(*) >= 2 ORDER BY dest")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "Paris" || res.Rows[1][0].Str() != "Rome" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByAggregate(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT dest FROM Prices GROUP BY dest ORDER BY COUNT(*) DESC LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Paris" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT COUNT(*), SUM(price), MIN(price) FROM Prices WHERE dest = 'Atlantis'")
	row := res.Rows[0]
	if row[0].Int() != 0 || !row[1].IsNull() || !row[2].IsNull() {
		t.Errorf("empty aggregates = %v", row)
	}
	// With GROUP BY, an empty input yields zero groups.
	res = query(t, e, "SELECT dest, COUNT(*) FROM Prices WHERE dest = 'Atlantis' GROUP BY dest")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAggregateArithmetic(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT MAX(price) - MIN(price) FROM Prices WHERE dest = 'Paris'")
	if res.Rows[0][0].Float() != 70.0 {
		t.Errorf("spread = %v", res.Rows)
	}
}

func TestAggregateWithAlias(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, "SELECT COUNT(*) AS n FROM Prices")
	if res.Cols[0] != "n" {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestAggregateInJoin(t *testing.T) {
	e := aggEngine(t)
	res := query(t, e, `SELECT p.dest, COUNT(*) FROM Prices p, Flights f
		WHERE p.fno = f.fno GROUP BY p.dest ORDER BY p.dest`)
	// Flights has 122,123,134 (Paris), 136 (Rome).
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].Int() != 3 || res.Rows[1][1].Int() != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAggregateErrors(t *testing.T) {
	e := aggEngine(t)
	bad := []string{
		"SELECT SUM(*) FROM Prices",       // only COUNT(*)
		"SELECT SUM(dest) FROM Prices",    // non-numeric
		"SELECT * , COUNT(*) FROM Prices", // star with aggregates
	}
	for _, src := range bad {
		if _, err := e.ExecuteSQL(src); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
}

func TestAggregateSubquery(t *testing.T) {
	e := aggEngine(t)
	// Aggregate inside an IN-subquery: flights priced at the Paris minimum.
	res := query(t, e, `SELECT fno FROM Prices
		WHERE price IN (SELECT MIN(price) FROM Prices WHERE dest = 'Paris')`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 123 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	e := aggEngine(t)
	// Group by a computed bucket: price rounded to hundreds.
	res := query(t, e, "SELECT COUNT(*) FROM Prices WHERE price > 0 GROUP BY fno / 100 ORDER BY COUNT(*) DESC")
	total := int64(0)
	for _, r := range res.Rows {
		total += r[0].Int()
	}
	if total != 5 {
		t.Errorf("total = %d, rows = %v", total, res.Rows)
	}
}
