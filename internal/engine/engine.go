package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// Result is the outcome of executing a statement: column names and rows for
// queries, Affected for DML, both zero for DDL.
type Result struct {
	Cols     []string
	Rows     []value.Tuple
	Affected int
}

// Engine executes plain SQL statements.
type Engine struct {
	mgr *txn.Manager
}

// New returns an Engine over the transaction manager.
func New(mgr *txn.Manager) *Engine { return &Engine{mgr: mgr} }

// Manager exposes the engine's transaction manager.
func (e *Engine) Manager() *txn.Manager { return e.mgr }

// Catalog exposes the underlying catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.mgr.Catalog() }

// ExecuteSQL parses and executes a single statement in its own transaction.
func (e *Engine) ExecuteSQL(src string) (*Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Execute(stmt)
}

// Execute runs one statement in its own transaction (auto-commit).
func (e *Engine) Execute(stmt sql.Statement) (*Result, error) {
	var res *Result
	err := e.mgr.RunAtomic(func(tx *txn.Txn) error {
		var err error
		res, err = e.ExecuteIn(tx, stmt)
		return err
	})
	return res, err
}

// ExecuteIn runs one statement inside an existing transaction.
//
// DDL (CREATE/DROP) takes effect immediately and is not rolled back with the
// transaction; this mirrors common database behaviour and keeps the catalog
// simple.
func (e *Engine) ExecuteIn(tx *txn.Txn, stmt sql.Statement) (*Result, error) {
	return e.executeIn(tx, stmt, nil)
}

// ExecuteInBound is ExecuteIn with a bound parameter vector: sql.Param
// expressions anywhere in the statement (including subquery bodies) resolve
// against params.
func (e *Engine) ExecuteInBound(tx *txn.Txn, stmt sql.Statement, params value.Tuple) (*Result, error) {
	return e.executeIn(tx, stmt, params)
}

func (e *Engine) executeIn(tx *txn.Txn, stmt sql.Statement, params value.Tuple) (*Result, error) {
	var base *Env
	if params != nil {
		base = NewEnv()
		base.BindParams(params)
	}
	switch s := stmt.(type) {
	case *sql.CreateTable:
		schema := value.NewSchema()
		for _, c := range s.Cols {
			schema.Columns = append(schema.Columns, value.Col(c.Name, c.Type))
		}
		if _, err := e.Catalog().Create(s.Name, schema, s.PK...); err != nil {
			return nil, err
		}
		e.Catalog().BumpDDL()
		return &Result{}, nil

	case *sql.CreateIndex:
		tbl, err := e.Catalog().Get(s.Table)
		if err != nil {
			return nil, err
		}
		switch {
		case s.Ordered:
			if err := tbl.CreateOrderedIndexNamed(s.Name, s.Cols[0]); err != nil {
				return nil, err
			}
		case s.Name != "" && len(s.Cols) == 1:
			// The named single-column form creates an ordered secondary index:
			// it serves both eq probes (as a degenerate range) and range scans,
			// so it is the strictly more capable default for one column.
			if err := tbl.CreateOrderedIndexNamed(s.Name, s.Cols[0]); err != nil {
				return nil, err
			}
		default:
			if err := tbl.CreateIndexNamed(s.Name, s.Cols...); err != nil {
				return nil, err
			}
		}
		// Index presence feeds plan selection; cached plans must notice.
		e.Catalog().BumpDDL()
		return &Result{}, nil

	case *sql.Explain:
		d, err := e.ExplainStmt(s.Stmt, params)
		if err != nil {
			return nil, err
		}
		return ExplainResult(d), nil

	case *sql.DropTable:
		if err := e.Catalog().Drop(s.Name); err != nil {
			return nil, err
		}
		e.Catalog().BumpDDL()
		return &Result{}, nil

	case *sql.Insert:
		return e.execInsert(tx, s, base)

	case *sql.Delete:
		return e.execDelete(tx, s, base)

	case *sql.Update:
		return e.execUpdate(tx, s, base)

	case *sql.Select:
		return e.evalSelect(tx, s, base)

	case *sql.EntangledSelect:
		return nil, fmt.Errorf("engine: entangled query must be submitted to the coordination component, not the plain engine")

	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func (e *Engine) execInsert(tx *txn.Txn, s *sql.Insert, base *Env) (*Result, error) {
	env := base
	if env == nil {
		env = NewEnv()
	}
	if s.From != nil {
		res, err := e.evalSelect(tx, s.From, base)
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			if _, err := tx.Insert(s.Table, row); err != nil {
				return nil, err
			}
		}
		return &Result{Affected: len(res.Rows)}, nil
	}
	n := 0
	for _, row := range s.Rows {
		tup := make(value.Tuple, len(row))
		for i, ex := range row {
			v, err := e.EvalExpr(tx, ex, env)
			if err != nil {
				return nil, err
			}
			tup[i] = v
		}
		if _, err := tx.Insert(s.Table, tup); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

func (e *Engine) execDelete(tx *txn.Txn, s *sql.Delete, base *Env) (*Result, error) {
	tbl, err := e.Catalog().Get(s.Table)
	if err != nil {
		return nil, err
	}
	// Exclusive lock up front: read-then-write under one lock.
	if err := tx.Lock(s.Table, txn.Exclusive); err != nil {
		return nil, err
	}
	var ids []storage.RowID
	var evalErr error
	rowEnv := base
	if rowEnv == nil {
		rowEnv = NewEnv()
	}
	// Snapshot taken after the exclusive lock: sees every prior commit plus
	// the transaction's own writes.
	tbl.ScanAt(tx.Snapshot(), func(id storage.RowID, row value.Tuple) bool {
		if s.Where != nil {
			env := rowEnv
			env.Bind(s.Table, tbl.Schema(), row)
			v, err := e.EvalExpr(tx, s.Where, env)
			if err != nil {
				evalErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	for _, id := range ids {
		if err := tx.Delete(s.Table, id); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(ids)}, nil
}

func (e *Engine) execUpdate(tx *txn.Txn, s *sql.Update, base *Env) (*Result, error) {
	tbl, err := e.Catalog().Get(s.Table)
	if err != nil {
		return nil, err
	}
	if err := tx.Lock(s.Table, txn.Exclusive); err != nil {
		return nil, err
	}
	offsets := make([]int, len(s.Sets))
	for i, a := range s.Sets {
		o := tbl.Schema().Ordinal(a.Col)
		if o < 0 {
			return nil, fmt.Errorf("engine: no column %q in %q", a.Col, s.Table)
		}
		offsets[i] = o
	}
	type change struct {
		id  storage.RowID
		tup value.Tuple
	}
	var changes []change
	var evalErr error
	rowEnv := base
	if rowEnv == nil {
		rowEnv = NewEnv()
	}
	tbl.ScanAt(tx.Snapshot(), func(id storage.RowID, row value.Tuple) bool {
		env := rowEnv
		env.Bind(s.Table, tbl.Schema(), row)
		if s.Where != nil {
			v, err := e.EvalExpr(tx, s.Where, env)
			if err != nil {
				evalErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		newRow := row.Clone()
		for i, a := range s.Sets {
			v, err := e.EvalExpr(tx, a.Val, env)
			if err != nil {
				evalErr = err
				return false
			}
			newRow[offsets[i]] = v
		}
		changes = append(changes, change{id, newRow})
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	for _, c := range changes {
		if err := tx.Update(s.Table, c.id, c.tup); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(changes)}, nil
}

// EvalSelect evaluates a SELECT with an optional outer environment (for
// correlated subqueries and coordinator-bound variables).
func (e *Engine) EvalSelect(tx *txn.Txn, s *sql.Select, outer *Env) (*Result, error) {
	return e.evalSelect(tx, s, outer)
}

type fromTable struct {
	ref     sql.TableRef
	tbl     *storage.Table
	binding string          // canonical (lower-case) binding name
	eqCols  []int           // pushed-down equality columns
	eqVals  value.Tuple     // corresponding literal values
	ids     []storage.RowID // reusable id buffer for the equality probe
	// Pushed-down range predicate over an ordered-indexed column
	// (rangeCol < 0 when absent).
	rangeCol int
	lo, hi   storage.Bound
	// Conjunct indices absorbed by the range pushdown, un-skipped again if
	// an equality probe supersedes the range. Fixed-size so the text path
	// allocates nothing; overflow conjuncts simply stay evaluated.
	rconj  [4]int
	nrconj int
}

func (e *Engine) evalSelect(tx *txn.Txn, s *sql.Select, outer *Env) (*Result, error) {
	if hasAggregates(s) || len(s.GroupBy) > 0 {
		return e.evalAggregate(tx, s, outer)
	}
	if len(s.From) == 0 {
		return e.evalSelectNoFrom(tx, s, outer)
	}
	fts := make([]fromTable, len(s.From))
	froms := make([]*fromTable, len(s.From))
	for i, ref := range s.From {
		if err := tx.Lock(ref.Name, txn.Shared); err != nil {
			return nil, err
		}
		tbl, err := e.Catalog().Get(ref.Name)
		if err != nil {
			return nil, err
		}
		fts[i] = fromTable{ref: ref, tbl: tbl, rangeCol: -1, binding: strings.ToLower(ref.Binding())}
		froms[i] = &fts[i]
	}
	var params value.Tuple
	if outer != nil {
		params = outer.Params()
	}
	conds, skip := pushDownPredicates(s.Where, froms, len(s.From) == 1, params)

	env := NewEnv()
	if outer != nil {
		env = outer.Child()
	}
	iter := orderFroms(froms) // join iteration order; projection keeps FROM order
	return e.runSelect(tx, s, froms, iter, env, projectionCols(s, froms), conds, skip)
}

// runSelect is the shared execution half of a planned SELECT: the nested-loop
// join over already-analyzed fromTables (locks taken, pushdowns attached),
// followed by ORDER BY / DISTINCT / LIMIT. evalSelect analyzes per execution;
// Prepared replays a cached analysis and calls this directly. conds are the
// WHERE conjuncts; per joined row only those whose bit is NOT set in skip
// are evaluated — the caller's pushdown analysis marks the ones its index
// probes cover exactly, so a pure point query skips expression evaluation
// entirely. (The prepared path precomputes its residual list at plan time
// and passes skip == 0.) Evaluating conjuncts in order short-circuits on
// the first false one, exactly like the AND chain they came from.
func (e *Engine) runSelect(tx *txn.Txn, s *sql.Select, froms, iter []*fromTable, env *Env, cols []string, conds []sql.Expr, skip uint64) (*Result, error) {
	// One snapshot for the whole statement: every probe and scan below reads
	// the same consistent view, lock-free with respect to writers. Within a
	// multi-statement transaction the snapshot is the transaction's pinned
	// one, so reads are repeatable across statements too.
	snap := tx.Snapshot()

	var out struct {
		rows []value.Tuple
		data []value.Value // shared backing slab for rows
		keys []value.Tuple // ORDER BY keys, parallel to rows
		kdat []value.Value // shared backing slab for keys
	}
	// Pre-size for a small result: one allocation per slab instead of a
	// doubling chain from nil — the dominant allocation cost of a point
	// query. Large results grow past the estimate exactly as before. A
	// single-table equality plan — the point-probe shape — runs its index
	// lookup up front so the slabs are sized to the exact candidate count:
	// the common one-row probe allocates one-row slabs, and a miss allocates
	// none at all.
	est := 16
	probed := false
	if len(iter) == 1 && len(iter[0].eqCols) > 0 {
		f := iter[0]
		f.ids = f.tbl.LookupEqAppendAt(snap, f.ids[:0], f.eqCols, f.eqVals)
		probed = true
		if len(f.ids) < est {
			est = len(f.ids)
		}
	}
	out.rows = make([]value.Tuple, 0, est)
	out.data = make([]value.Value, 0, est*max(len(cols), 1))
	if len(s.OrderBy) > 0 {
		out.keys = make([]value.Tuple, 0, est)
		out.kdat = make([]value.Value, 0, est*len(s.OrderBy))
	}

	var rec func(i int) error
	rec = func(i int) error {
		if i == len(iter) {
			for ci, c := range conds {
				if ci < 64 && skip&(1<<uint(ci)) != 0 {
					continue
				}
				v, err := e.EvalExpr(tx, c, env)
				if err != nil {
					return err
				}
				if !truthy(v) {
					return nil
				}
			}
			// Rows are carved out of one shared slab: the per-row slices
			// stay valid across slab growth (values are immutable and the
			// three-index cap stops later rows from aliasing earlier ones),
			// so N result rows cost amortized one allocation, not N.
			start := len(out.data)
			data, err := e.projectRowInto(out.data, tx, s, froms, env)
			if err != nil {
				return err
			}
			out.data = data
			out.rows = append(out.rows, out.data[start:len(out.data):len(out.data)])
			if len(s.OrderBy) > 0 {
				// Keys share one slab too (same discipline as the rows).
				kstart := len(out.kdat)
				for _, ob := range s.OrderBy {
					v, err := e.EvalExpr(tx, ob.Expr, env)
					if err != nil {
						return err
					}
					out.kdat = append(out.kdat, v)
				}
				out.keys = append(out.keys, out.kdat[kstart:len(out.kdat):len(out.kdat)])
			}
			return nil
		}
		f := iter[i]
		iterate := func(row value.Tuple) error {
			env.BindCanonical(f.binding, f.tbl.Schema(), row)
			return rec(i + 1)
		}
		if len(f.eqCols) > 0 {
			// GetRef hands back shared immutable rows, like Scan below —
			// projection copies the values it emits, so nothing aliases the
			// table after evalSelect returns.
			if !probed || i > 0 {
				f.ids = f.tbl.LookupEqAppendAt(snap, f.ids[:0], f.eqCols, f.eqVals)
			}
			for _, id := range f.ids {
				row, ok := f.tbl.GetRefAt(snap, id)
				if !ok {
					continue // row vanished between lookup and get
				}
				if err := iterate(row); err != nil {
					return err
				}
			}
			return nil
		}
		if f.rangeCol >= 0 {
			for _, id := range f.tbl.LookupRangeAt(snap, f.rangeCol, f.lo, f.hi) {
				row, ok := f.tbl.GetRefAt(snap, id)
				if !ok {
					continue
				}
				if err := iterate(row); err != nil {
					return err
				}
			}
			return nil
		}
		var iterErr error
		f.tbl.ScanAt(snap, func(_ storage.RowID, row value.Tuple) bool {
			iterErr = iterate(row)
			return iterErr == nil
		})
		return iterErr
	}
	if err := rec(0); err != nil {
		return nil, err
	}

	rows := out.rows
	if len(s.OrderBy) > 0 {
		// In-place stable sort permuting rows and keys together: no index
		// slice, no second row slice.
		sort.Stable(&rowSorter{rows: rows, keys: out.keys, by: s.OrderBy})
	}
	if s.Distinct {
		seen := make(map[string]struct{}, len(rows))
		dedup := rows[:0:0]
		for _, r := range rows {
			k := r.Key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				dedup = append(dedup, r)
			}
		}
		rows = dedup
	}
	if s.Limit >= 0 && len(rows) > s.Limit {
		rows = rows[:s.Limit]
	}
	return &Result{Cols: cols, Rows: rows}, nil
}

// rowSorter sorts result rows and their ORDER BY keys together, in place.
type rowSorter struct {
	rows []value.Tuple
	keys []value.Tuple
	by   []sql.OrderItem
}

func (s *rowSorter) Len() int { return len(s.rows) }

func (s *rowSorter) Less(a, b int) bool {
	ka, kb := s.keys[a], s.keys[b]
	for k, ob := range s.by {
		c := ka[k].Compare(kb[k])
		if c != 0 {
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

func (s *rowSorter) Swap(a, b int) {
	s.rows[a], s.rows[b] = s.rows[b], s.rows[a]
	s.keys[a], s.keys[b] = s.keys[b], s.keys[a]
}

// evalSelectNoFrom handles constant selects like SELECT 1, 'x'.
func (e *Engine) evalSelectNoFrom(tx *txn.Txn, s *sql.Select, outer *Env) (*Result, error) {
	env := NewEnv()
	if outer != nil {
		env = outer.Child()
	}
	if s.Where != nil {
		v, err := e.EvalExpr(tx, s.Where, env)
		if err != nil {
			return nil, err
		}
		if !truthy(v) {
			return &Result{Cols: projectionCols(s, nil)}, nil
		}
	}
	row := make(value.Tuple, 0, len(s.Items))
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("engine: SELECT * requires FROM")
		}
		v, err := e.EvalExpr(tx, it.Expr, env)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return &Result{Cols: projectionCols(s, nil), Rows: []value.Tuple{row}}, nil
}

func (e *Engine) projectRow(tx *txn.Txn, s *sql.Select, froms []*fromTable, env *Env) (value.Tuple, error) {
	row, err := e.projectRowInto(make(value.Tuple, 0, len(s.Items)), tx, s, froms, env)
	return value.Tuple(row), err
}

// projectRowInto appends the projected values of the current join row to dst.
func (e *Engine) projectRowInto(dst []value.Value, tx *txn.Txn, s *sql.Select, froms []*fromTable, env *Env) ([]value.Value, error) {
	for _, it := range s.Items {
		if it.Star {
			for _, f := range froms {
				v, _, err := bindingRow(env, f.ref.Binding(), f.tbl.Schema())
				if err != nil {
					return nil, err
				}
				dst = append(dst, v...)
			}
			continue
		}
		v, err := e.EvalExpr(tx, it.Expr, env)
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// bindingRow fetches the currently bound row for a binding.
func bindingRow(env *Env, name string, schema *value.Schema) (value.Tuple, *value.Schema, error) {
	key := strings.ToLower(name)
	for e := env; e != nil; e = e.parent {
		for _, b := range e.bindings {
			if b.name == key {
				return b.row, b.schema, nil
			}
		}
	}
	return nil, schema, fmt.Errorf("engine: no binding %q", name)
}

func projectionCols(s *sql.Select, froms []*fromTable) []string {
	var cols []string
	for _, it := range s.Items {
		switch {
		case it.Star:
			for _, f := range froms {
				for _, c := range f.tbl.Schema().Columns {
					cols = append(cols, c.Name)
				}
			}
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				cols = append(cols, cr.Name)
			} else {
				cols = append(cols, it.Expr.String())
			}
		}
	}
	return cols
}

// orderFroms returns a cost-ranked iteration order for the nested-loop join:
// each table's candidate cardinality is estimated from the storage statistics
// (row counts, index distinct counts, ordered-index min/max) and tables are
// visited in ascending estimated order — the optimal order for this
// executor's work shape (see package plan). Only iteration order changes: the
// join is a cross product, and projection always follows the original FROM
// list. The estimate is re-costed per execution on this text path, so
// entangled templates grounding generators through EvalSelect pick up bound
// parameter values and fresh statistics every arrival.
func orderFroms(froms []*fromTable) []*fromTable {
	if len(froms) == 1 || planNaiveOrder {
		return froms // nothing to order — the common generator shape
	}
	ests := make([]float64, len(froms))
	for i, f := range froms {
		ests[i] = estimateFrom(f).Rows
	}
	out := make([]*fromTable, len(froms))
	for i, idx := range plan.Order(ests) {
		out[i] = froms[idx]
	}
	return out
}

// pushDownPredicates inspects top-level AND-ed conjuncts and attaches
// index-servable ones to the corresponding fromTable:
//
//   - binding.col = literal → hash-index equality lookup;
//   - binding.col </<=/>/>= literal and col BETWEEN a AND b → range lookup,
//     when the column carries an ordered index.
//
// A bound statement parameter counts as a literal: `dest = ?` executed
// through a prepared statement probes the index exactly like `dest = 'X'`
// in text SQL — without this, the parse-once/bind-many pipeline would trade
// the parser's allocations for full table scans.
//
// Unqualified columns are pushed only in single-table queries.
//
// The returned conds are the top-level conjuncts; skip is a bitmask of the
// ones execution need not evaluate per joined row. A conjunct is skipped
// only when its pushdown is an exact stand-in: equality values are coerced
// to the column's declared type (index probes compare with Identical, and
// stored values are always the declared type) and must be non-NULL; range
// bounds share value.Compare with evalBinary and the ordered index skips
// NULL entries, so any non-NULL bound is exact. NULL or uncoercible operands
// leave the conjunct evaluated — for equality the probe is also withheld,
// since a raw mistyped key would under-select rather than over-select.
// Conjuncts beyond the mask's 64 bits are pushed but never skipped (safe:
// re-evaluating a covered conjunct only re-confirms it).
// tighterLo/tighterHi report whether bound b narrows the scan more than the
// current bound. At equal values the exclusive bound wins: `a > 10` is
// strictly tighter than `a >= 10`.
func tighterLo(b, cur storage.Bound) bool {
	c := b.Value.Compare(cur.Value)
	return c > 0 || (c == 0 && !b.Inclusive && cur.Inclusive)
}

func tighterHi(b, cur storage.Bound) bool {
	c := b.Value.Compare(cur.Value)
	return c < 0 || (c == 0 && !b.Inclusive && cur.Inclusive)
}

func pushDownPredicates(where sql.Expr, froms []*fromTable, single bool, params value.Tuple) (conds []sql.Expr, skip uint64) {
	locate := func(cr *sql.ColumnRef) (*fromTable, int) {
		for _, f := range froms {
			if cr.Table != "" && !strings.EqualFold(cr.Table, f.ref.Binding()) {
				continue
			}
			if cr.Table == "" && !single {
				continue
			}
			if o := f.tbl.Schema().Ordinal(cr.Name); o >= 0 {
				return f, o
			}
		}
		return nil, -1
	}
	tightenLo := func(f *fromTable, o int, b storage.Bound) bool {
		if f.rangeCol >= 0 && f.rangeCol != o {
			return false // one range column per table
		}
		if !f.tbl.HasOrderedIndex(o) {
			return false
		}
		f.rangeCol = o
		if !f.lo.Set || tighterLo(b, f.lo) {
			f.lo = b
		}
		return true
	}
	tightenHi := func(f *fromTable, o int, b storage.Bound) bool {
		if f.rangeCol >= 0 && f.rangeCol != o {
			return false
		}
		if !f.tbl.HasOrderedIndex(o) {
			return false
		}
		f.rangeCol = o
		if !f.hi.Set || tighterHi(b, f.hi) {
			f.hi = b
		}
		return true
	}

	// One shape recognizer serves both the text path (resolved against
	// params right here) and the prepared planner (symbolic sources): see
	// normalizeCmpSym/srcOf in prepare.go.
	conjuncts := sql.Conjuncts(where)
	consume := func(ci int) {
		if ci < 64 {
			skip |= 1 << uint(ci)
		}
	}
	consumeRange := func(f *fromTable, ci int) {
		if ci < 64 && f.nrconj < len(f.rconj) {
			f.rconj[f.nrconj] = ci
			f.nrconj++
			skip |= 1 << uint(ci)
		}
	}
	for ci, c := range conjuncts {
		switch b := c.(type) {
		case *sql.Binary:
			cr, src, op, ok := normalizeCmpSym(b)
			if !ok {
				continue
			}
			lit, ok := src.resolve(params)
			if !ok {
				continue // unbound parameter: leave the conjunct to eval
			}
			f, o := locate(cr)
			if f == nil {
				continue
			}
			switch op {
			case sql.OpEq:
				cv, err := lit.Coerce(f.tbl.Schema().Columns[o].Type)
				if err != nil || cv.IsNull() {
					continue // probe would under-select; evaluate instead
				}
				f.eqCols = append(f.eqCols, o)
				f.eqVals = append(f.eqVals, cv)
				consume(ci)
			case sql.OpGt, sql.OpGe, sql.OpLt, sql.OpLe:
				if lit.IsNull() {
					continue // never truthy; the conjunct filters everything
				}
				var pushed bool
				switch op {
				case sql.OpGt:
					pushed = tightenLo(f, o, storage.BoundAt(lit, false))
				case sql.OpGe:
					pushed = tightenLo(f, o, storage.BoundAt(lit, true))
				case sql.OpLt:
					pushed = tightenHi(f, o, storage.BoundAt(lit, false))
				default:
					pushed = tightenHi(f, o, storage.BoundAt(lit, true))
				}
				if pushed {
					consumeRange(f, ci)
				}
			}
		case *sql.Between:
			cr, ok := b.X.(*sql.ColumnRef)
			if !ok {
				continue
			}
			loSrc, okLo := srcOf(b.Lo)
			hiSrc, okHi := srcOf(b.Hi)
			if !okLo || !okHi {
				continue
			}
			lo, okLo := loSrc.resolve(params)
			hi, okHi := hiSrc.resolve(params)
			if !okLo || !okHi {
				continue
			}
			f, o := locate(cr)
			if f == nil {
				continue
			}
			if lo.IsNull() || hi.IsNull() {
				continue
			}
			pushedLo := tightenLo(f, o, storage.BoundAt(lo, true))
			pushedHi := tightenHi(f, o, storage.BoundAt(hi, true))
			if pushedLo && pushedHi {
				consumeRange(f, ci)
			}
		}
	}
	// Post-pass per table. An index-backed equality probe wins over a range
	// scan (the discarded range conjuncts go back to being evaluated). An
	// equality WITHOUT a backing hash/PK index on a single ordered-indexed
	// column instead becomes a degenerate [v, v] range over the ordered index
	// — semantically exact for every probe value, coercion included: the scan
	// admits exactly {Compare == 0}, which agrees with SQL equality for
	// non-NULL probes across numeric types (an INT probe finds FLOAT-keyed
	// rows), and NULL probes match nothing because the index skips NULL
	// entries. The eq conjunct therefore stays masked.
	for _, f := range froms {
		if len(f.eqCols) == 0 {
			continue
		}
		if len(f.eqCols) == 1 && !f.tbl.HasEqIndex(f.eqCols) {
			if o := f.eqCols[0]; f.tbl.HasOrderedIndex(o) && (f.rangeCol < 0 || f.rangeCol == o) {
				b := storage.BoundAt(f.eqVals[0], true)
				f.rangeCol = o
				if !f.lo.Set || tighterLo(b, f.lo) {
					f.lo = b
				}
				if !f.hi.Set || tighterHi(b, f.hi) {
					f.hi = b
				}
				f.eqCols, f.eqVals = nil, f.eqVals[:0]
				continue
			}
		}
		if f.rangeCol >= 0 {
			f.rangeCol = -1
			for _, ci := range f.rconj[:f.nrconj] {
				skip &^= 1 << uint(ci)
			}
		}
	}
	return conjuncts, skip
}
