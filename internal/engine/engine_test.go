package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// newEngine builds an engine over the Figure 1(a) database: Flights and
// Airlines exactly as printed in the paper.
func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(txn.NewManager(storage.NewCatalog()))
	script := `
		CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno));
		CREATE TABLE Airlines (fno INT, airline STRING, PRIMARY KEY (fno));
		INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), (136, 'Rome');
		INSERT INTO Airlines VALUES (122, 'United'), (123, 'United'), (134, 'Lufthansa'), (136, 'Alitalia');
	`
	stmts, err := sql.ParseAll(script)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		if _, err := e.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func query(t *testing.T, e *Engine, src string) *Result {
	t.Helper()
	res, err := e.ExecuteSQL(src)
	if err != nil {
		t.Fatalf("ExecuteSQL(%q): %v", src, err)
	}
	return res
}

func TestSelectFilter(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, "SELECT fno FROM Flights WHERE dest = 'Paris'")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	want := []int64{122, 123, 134}
	for i, r := range res.Rows {
		if r[0].Int() != want[i] {
			t.Errorf("row %d = %v", i, r)
		}
	}
	if res.Cols[0] != "fno" {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestSelectStar(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, "SELECT * FROM Flights WHERE fno = 136")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 2 || res.Rows[0][1].Str() != "Rome" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Cols) != 2 || res.Cols[0] != "fno" || res.Cols[1] != "dest" {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestJoin(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, `SELECT f.fno, a.airline FROM Flights f, Airlines a
	                    WHERE f.fno = a.fno AND f.dest = 'Paris' AND a.airline = 'United'`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].Str() != "United" {
			t.Errorf("row = %v", r)
		}
	}
}

func TestJoinStarExpansion(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, "SELECT * FROM Flights f, Airlines a WHERE f.fno = a.fno AND f.fno = 122")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Cols) != 4 {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestSubqueryIn(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, `SELECT airline FROM Airlines
	                    WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Rome')`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Alitalia" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNotInSubquery(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, `SELECT airline FROM Airlines
	                    WHERE fno NOT IN (SELECT fno FROM Flights WHERE dest = 'Paris')`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Alitalia" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	e := newEngine(t)
	// Correlated: inner references outer alias f.
	res := query(t, e, `SELECT f.fno FROM Flights f
	                    WHERE f.fno IN (SELECT a.fno FROM Airlines a WHERE a.fno = f.fno AND a.airline = 'United')`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByLimitDistinct(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, "SELECT dest FROM Flights ORDER BY dest DESC")
	if res.Rows[0][0].Str() != "Rome" {
		t.Errorf("order by desc: %v", res.Rows)
	}
	res = query(t, e, "SELECT DISTINCT dest FROM Flights ORDER BY dest")
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "Paris" {
		t.Errorf("distinct: %v", res.Rows)
	}
	res = query(t, e, "SELECT fno FROM Flights ORDER BY fno DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 136 || res.Rows[1][0].Int() != 134 {
		t.Errorf("limit: %v", res.Rows)
	}
}

func TestSelectNoFrom(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, "SELECT 1 + 2, 'x'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 || res.Rows[0][1].Str() != "x" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = query(t, e, "SELECT 1 WHERE FALSE")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInsertDeleteUpdateCounts(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, "INSERT INTO Flights VALUES (150, 'Oslo'), (151, 'Oslo')")
	if res.Affected != 2 {
		t.Errorf("insert affected = %d", res.Affected)
	}
	res = query(t, e, "UPDATE Flights SET dest = 'Bergen' WHERE dest = 'Oslo'")
	if res.Affected != 2 {
		t.Errorf("update affected = %d", res.Affected)
	}
	res = query(t, e, "DELETE FROM Flights WHERE dest = 'Bergen'")
	if res.Affected != 2 {
		t.Errorf("delete affected = %d", res.Affected)
	}
	if query(t, e, "SELECT * FROM Flights").Rows == nil {
		t.Error("flights emptied unexpectedly")
	}
}

func TestUpdateSelfReference(t *testing.T) {
	e := newEngine(t)
	query(t, e, "CREATE TABLE P (x INT)")
	query(t, e, "INSERT INTO P VALUES (1), (2)")
	query(t, e, "UPDATE P SET x = x * 10")
	res := query(t, e, "SELECT x FROM P ORDER BY x")
	if res.Rows[0][0].Int() != 10 || res.Rows[1][0].Int() != 20 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDuplicatePKRollsBackWholeInsert(t *testing.T) {
	e := newEngine(t)
	_, err := e.ExecuteSQL("INSERT INTO Flights VALUES (700, 'Lima'), (122, 'Dup')")
	if err == nil {
		t.Fatal("expected duplicate key error")
	}
	// First row must have been rolled back with the failed statement.
	res := query(t, e, "SELECT * FROM Flights WHERE fno = 700")
	if len(res.Rows) != 0 {
		t.Error("partial insert survived failed statement")
	}
}

func TestArithmeticAndBetween(t *testing.T) {
	e := newEngine(t)
	res := query(t, e, "SELECT fno * 2 + 1 FROM Flights WHERE fno BETWEEN 122 AND 123 ORDER BY fno")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 245 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = query(t, e, "SELECT 7 / 2, 7.0 / 2")
	if res.Rows[0][0].Int() != 3 || res.Rows[0][1].Float() != 3.5 {
		t.Errorf("division: %v", res.Rows)
	}
	if _, err := e.ExecuteSQL("SELECT 1 / 0"); err == nil {
		t.Error("division by zero accepted")
	}
	res = query(t, e, "SELECT 'foo' + 'bar'")
	if res.Rows[0][0].Str() != "foobar" {
		t.Errorf("concat: %v", res.Rows)
	}
}

func TestComparisonOperators(t *testing.T) {
	e := newEngine(t)
	cases := map[string]int{
		"SELECT fno FROM Flights WHERE fno < 123":                1,
		"SELECT fno FROM Flights WHERE fno <= 123":               2,
		"SELECT fno FROM Flights WHERE fno > 134":                1,
		"SELECT fno FROM Flights WHERE fno >= 134":               2,
		"SELECT fno FROM Flights WHERE fno <> 122":               3,
		"SELECT fno FROM Flights WHERE NOT fno = 122":            3,
		"SELECT fno FROM Flights WHERE dest IN ('Rome', 'Oslo')": 1,
	}
	for src, want := range cases {
		if got := len(query(t, e, src).Rows); got != want {
			t.Errorf("%s: %d rows, want %d", src, got, want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	e := newEngine(t)
	query(t, e, "CREATE TABLE N (x INT, y STRING)")
	query(t, e, "INSERT INTO N VALUES (NULL, 'a'), (1, NULL)")
	if got := len(query(t, e, "SELECT * FROM N WHERE x = 1").Rows); got != 1 {
		t.Errorf("x=1: %d", got)
	}
	// NULL never satisfies comparisons.
	if got := len(query(t, e, "SELECT * FROM N WHERE x = NULL").Rows); got != 0 {
		t.Errorf("x=NULL matched %d rows", got)
	}
	if got := len(query(t, e, "SELECT * FROM N WHERE x < 5").Rows); got != 1 {
		t.Errorf("x<5: %d", got)
	}
}

func TestIndexedLookupMatchesScanResults(t *testing.T) {
	e := newEngine(t)
	noIx := query(t, e, "SELECT fno FROM Flights WHERE dest = 'Paris'")
	query(t, e, "CREATE INDEX ON Flights (dest)")
	withIx := query(t, e, "SELECT fno FROM Flights WHERE dest = 'Paris'")
	if len(noIx.Rows) != len(withIx.Rows) {
		t.Fatalf("index changed results: %v vs %v", noIx.Rows, withIx.Rows)
	}
	for i := range noIx.Rows {
		if !noIx.Rows[i].Equal(withIx.Rows[i]) {
			t.Errorf("row %d differs", i)
		}
	}
}

func TestErrorCases(t *testing.T) {
	e := newEngine(t)
	bad := []string{
		"SELECT nosuch FROM Flights",
		"SELECT f.nosuch FROM Flights f",
		"SELECT x FROM NoSuchTable",
		"UPDATE Flights SET nosuch = 1",
		"INSERT INTO Flights VALUES ('wrongtype', 'Paris')",
		"SELECT fno FROM Flights WHERE fno IN (SELECT fno, dest FROM Flights)", // arity
		"SELECT -'x'", // negate string
		"SELECT 'a' - 'b'",
	}
	for _, src := range bad {
		if _, err := e.ExecuteSQL(src); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
}

func TestAnswerConstraintRejectedInPlainEngine(t *testing.T) {
	e := newEngine(t)
	_, err := e.ExecuteSQL("SELECT fno FROM Flights WHERE ('Jerry', fno) IN ANSWER Reservation")
	if !errors.Is(err, ErrAnswerConstraint) {
		t.Errorf("err = %v, want ErrAnswerConstraint", err)
	}
}

func TestEntangledRejectedInPlainEngine(t *testing.T) {
	e := newEngine(t)
	stmt, err := sql.Parse("SELECT 'K', fno INTO ANSWER R WHERE ('J', fno) IN ANSWER R")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(stmt); err == nil || !strings.Contains(err.Error(), "coordination component") {
		t.Errorf("err = %v", err)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := newEngine(t)
	// fno exists in both tables; unqualified use in a join must error.
	if _, err := e.ExecuteSQL("SELECT fno FROM Flights f, Airlines a WHERE f.fno = a.fno"); err == nil {
		t.Error("ambiguous column accepted")
	}
}

func TestUnboundVariableError(t *testing.T) {
	e := newEngine(t)
	_, err := e.ExecuteSQL("SELECT fno FROM Flights WHERE mystery = 3")
	if !errors.Is(err, ErrUnboundVariable) {
		t.Errorf("err = %v, want ErrUnboundVariable", err)
	}
}

func TestCoordinatorVariableBinding(t *testing.T) {
	// The coordinator grounds entangled-query predicates by binding free
	// variables in the environment; check EvalExpr sees them.
	e := newEngine(t)
	expr, err := sql.ParseExpr("fno IN (SELECT fno FROM Flights WHERE dest = 'Paris')")
	if err != nil {
		t.Fatal(err)
	}
	err = e.Manager().RunAtomic(func(tx *txn.Txn) error {
		env := NewEnv()
		env.BindVar("fno", value.NewInt(122))
		v, err := e.EvalExpr(tx, expr, env)
		if err != nil {
			return err
		}
		if !v.Bool() {
			t.Error("fno=122 should satisfy the predicate")
		}
		env.BindVar("fno", value.NewInt(136))
		v, err = e.EvalExpr(tx, expr, env)
		if err != nil {
			return err
		}
		if v.Bool() {
			t.Error("fno=136 (Rome) should not satisfy the predicate")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExecuteSQLParseError(t *testing.T) {
	e := newEngine(t)
	if _, err := e.ExecuteSQL("SELEC"); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestScalarSubquery(t *testing.T) {
	e := newEngine(t)
	// Flight(s) whose fno equals the minimum Paris fno.
	res := query(t, e, "SELECT fno FROM Flights WHERE fno = (SELECT MIN(fno) FROM Flights WHERE dest = 'Paris')")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 122 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// In the select list.
	res = query(t, e, "SELECT (SELECT COUNT(*) FROM Flights), fno FROM Flights WHERE fno = 136")
	if res.Rows[0][0].Int() != 4 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Correlated scalar subquery.
	res = query(t, e, `SELECT f.fno FROM Flights f
		WHERE (SELECT a.airline FROM Airlines a WHERE a.fno = f.fno) = 'Alitalia'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 136 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Zero rows → NULL (comparison false).
	res = query(t, e, "SELECT fno FROM Flights WHERE fno = (SELECT fno FROM Flights WHERE dest = 'Atlantis')")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Errors: multi-column and multi-row.
	if _, err := e.ExecuteSQL("SELECT (SELECT fno, dest FROM Flights) FROM Flights"); err == nil {
		t.Error("multi-column scalar subquery accepted")
	}
	if _, err := e.ExecuteSQL("SELECT (SELECT fno FROM Flights) FROM Flights"); err == nil {
		t.Error("multi-row scalar subquery accepted")
	}
}

func TestDDLStatements(t *testing.T) {
	e := newEngine(t)
	query(t, e, "CREATE TABLE Tmp (x INT)")
	if !e.Catalog().Has("Tmp") {
		t.Error("create failed")
	}
	query(t, e, "DROP TABLE Tmp")
	if e.Catalog().Has("Tmp") {
		t.Error("drop failed")
	}
	if _, err := e.ExecuteSQL("DROP TABLE Tmp"); err == nil {
		t.Error("double drop accepted")
	}
	if _, err := e.ExecuteSQL("CREATE TABLE Flights (x INT)"); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := e.ExecuteSQL("CREATE INDEX ON NoSuch (x)"); err == nil {
		t.Error("index on missing table accepted")
	}
}
