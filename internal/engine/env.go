// Package engine evaluates ordinary SQL statements against the storage
// layer: DDL, DML and SELECT queries with joins, subqueries, ordering and
// limits. It is the "execution engine" box of the paper's Figure 2 — the
// coordination component calls into it both to evaluate the relational
// predicates of entangled queries and to apply the updates that install
// coordinated answers.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Env is a lexical environment mapping table bindings (table names or
// aliases) to the current row during evaluation. Environments nest: a
// subquery's environment points at the enclosing query's, which is how
// correlated subqueries and the coordinator's variable bindings resolve.
type Env struct {
	parent   *Env
	bindings []binding
	// vars are free coordination variables bound by the coordinator during
	// grounding of entangled queries; they resolve like unqualified columns.
	vars map[string]value.Value
	// params is the parameter vector of the prepared statement being
	// executed; sql.Param expressions resolve against it. Subquery (child)
	// environments find it through the parent chain, so one root binding
	// covers arbitrarily nested scopes.
	params value.Tuple
}

type binding struct {
	name   string // canonical (lower-case) binding name
	schema *value.Schema
	row    value.Tuple
}

// NewEnv returns an empty root environment.
func NewEnv() *Env { return &Env{} }

// Reset empties the environment in place for reuse, dropping table bindings
// and coordination variables but keeping their allocated storage. The
// coordinator grounds matches in a tight backtracking loop and rebinds one
// pooled environment per evaluation instead of allocating.
func (e *Env) Reset() {
	e.parent = nil
	e.bindings = e.bindings[:0]
	e.params = nil
	clear(e.vars)
}

// BindParams attaches a prepared statement's bound parameter vector.
func (e *Env) BindParams(ps value.Tuple) { e.params = ps }

// Params returns the parameter vector in scope (walking the parent chain).
func (e *Env) Params() value.Tuple {
	for env := e; env != nil; env = env.parent {
		if env.params != nil {
			return env.params
		}
	}
	return nil
}

// Param resolves parameter slot i (0-based) in scope.
func (e *Env) Param(i int) (value.Value, bool) {
	ps := e.Params()
	if i < 0 || i >= len(ps) {
		return value.Null, false
	}
	return ps[i], true
}

// Child returns a new environment nested inside e.
func (e *Env) Child() *Env { return &Env{parent: e} }

// Bind adds (or replaces) a table binding in this environment.
func (e *Env) Bind(name string, schema *value.Schema, row value.Tuple) {
	e.BindCanonical(strings.ToLower(name), schema, row)
}

// BindCanonical is Bind for an already-canonical (lower-case) name. The
// executor binds a row per join iteration; canonicalizing the binding name
// once per query instead of once per row keeps ToLower off that loop.
func (e *Env) BindCanonical(key string, schema *value.Schema, row value.Tuple) {
	for i := range e.bindings {
		if e.bindings[i].name == key {
			e.bindings[i].schema = schema
			e.bindings[i].row = row
			return
		}
	}
	e.bindings = append(e.bindings, binding{name: key, schema: schema, row: row})
}

// BindVar binds a free coordination variable to a constant.
func (e *Env) BindVar(name string, v value.Value) {
	if e.vars == nil {
		e.vars = make(map[string]value.Value)
	}
	e.vars[strings.ToLower(name)] = v
}

// Var looks up a coordination variable in this environment chain.
func (e *Env) Var(name string) (value.Value, bool) {
	key := strings.ToLower(name)
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[key]; ok {
			return v, true
		}
	}
	return value.Null, false
}

// lookupQualified resolves table.column in this environment chain.
func (e *Env) lookupQualified(table, col string) (value.Value, bool, error) {
	key := strings.ToLower(table)
	for env := e; env != nil; env = env.parent {
		for _, b := range env.bindings {
			if b.name == key {
				o := b.schema.Ordinal(col)
				if o < 0 {
					return value.Null, false, fmt.Errorf("engine: no column %q in %q", col, table)
				}
				return b.row[o], true, nil
			}
		}
	}
	return value.Null, false, nil
}

// lookupUnqualified resolves a bare column name. Within a single environment
// level the name must be unambiguous; resolution then proceeds outward, with
// coordination variables checked at each level before parent tables.
func (e *Env) lookupUnqualified(col string) (value.Value, bool, error) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[strings.ToLower(col)]; ok {
			return v, true, nil
		}
		found := false
		var val value.Value
		for _, b := range env.bindings {
			if o := b.schema.Ordinal(col); o >= 0 {
				if found {
					return value.Null, false, fmt.Errorf("engine: ambiguous column %q", col)
				}
				found = true
				val = b.row[o]
			}
		}
		if found {
			return val, true, nil
		}
	}
	return value.Null, false, nil
}
