package engine

import (
	"errors"
	"fmt"

	"repro/internal/sql"
	"repro/internal/txn"
	"repro/internal/value"
)

// ErrUnboundVariable is returned when an expression references a name that is
// neither a column in scope nor a bound coordination variable. The entangled
// query compiler relies on this error to discover which names are free
// coordination variables.
var ErrUnboundVariable = errors.New("engine: unbound variable")

// ErrAnswerConstraint is returned when an answer constraint reaches the plain
// SQL evaluator; answer constraints are only meaningful inside the
// coordination component.
var ErrAnswerConstraint = errors.New("engine: IN ANSWER constraint outside entangled query")

// ErrUnboundParam is returned when a sql.Param expression is evaluated
// without a parameter vector in scope (or with one too short) — i.e. a
// parameterized statement was executed as plain text instead of through the
// prepare/bind pipeline.
var ErrUnboundParam = errors.New("engine: unbound statement parameter")

// EvalExpr evaluates an expression in env, reading tables through tx.
func (e *Engine) EvalExpr(tx *txn.Txn, expr sql.Expr, env *Env) (value.Value, error) {
	switch x := expr.(type) {
	case *sql.Literal:
		return x.Val, nil

	case *sql.Param:
		v, ok := env.Param(x.Idx)
		if !ok {
			return value.Null, fmt.Errorf("%w: parameter $%d (bind a %d-value vector via Prepare)",
				ErrUnboundParam, x.Idx+1, x.Idx+1)
		}
		return v, nil

	case *sql.ColumnRef:
		if x.Table != "" {
			v, ok, err := env.lookupQualified(x.Table, x.Name)
			if err != nil {
				return value.Null, err
			}
			if !ok {
				return value.Null, fmt.Errorf("%w: %s.%s", ErrUnboundVariable, x.Table, x.Name)
			}
			return v, nil
		}
		v, ok, err := env.lookupUnqualified(x.Name)
		if err != nil {
			return value.Null, err
		}
		if !ok {
			return value.Null, fmt.Errorf("%w: %s", ErrUnboundVariable, x.Name)
		}
		return v, nil

	case *sql.Neg:
		v, err := e.EvalExpr(tx, x.X, env)
		if err != nil {
			return value.Null, err
		}
		switch v.Type() {
		case value.TypeInt:
			return value.NewInt(-v.Int()), nil
		case value.TypeFloat:
			return value.NewFloat(-v.Float()), nil
		case value.TypeNull:
			return value.Null, nil
		default:
			return value.Null, fmt.Errorf("engine: cannot negate %s", v.Type())
		}

	case *sql.Not:
		v, err := e.EvalExpr(tx, x.X, env)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(!truthy(v)), nil

	case *sql.Binary:
		return e.evalBinary(tx, x, env)

	case *sql.Between:
		v, err := e.EvalExpr(tx, x.X, env)
		if err != nil {
			return value.Null, err
		}
		lo, err := e.EvalExpr(tx, x.Lo, env)
		if err != nil {
			return value.Null, err
		}
		hi, err := e.EvalExpr(tx, x.Hi, env)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return value.NewBool(false), nil
		}
		return value.NewBool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0), nil

	case *sql.InValues:
		v, err := e.EvalExpr(tx, x.X, env)
		if err != nil {
			return value.Null, err
		}
		found := false
		for _, ve := range x.Vals {
			w, err := e.EvalExpr(tx, ve, env)
			if err != nil {
				return value.Null, err
			}
			if v.Equal(w) {
				found = true
				break
			}
		}
		return value.NewBool(found != x.Neg), nil

	case *sql.InSelect:
		left := make(value.Tuple, len(x.Left))
		for i, le := range x.Left {
			v, err := e.EvalExpr(tx, le, env)
			if err != nil {
				return value.Null, err
			}
			left[i] = v
		}
		res, err := e.evalSelect(tx, x.Sub, env)
		if err != nil {
			return value.Null, err
		}
		if len(res.Cols) != len(left) {
			return value.Null, fmt.Errorf("engine: IN subquery arity %d vs %d", len(res.Cols), len(left))
		}
		found := false
		for _, row := range res.Rows {
			match := true
			for i := range left {
				if !left[i].Equal(row[i]) {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		return value.NewBool(found != x.Neg), nil

	case *sql.Exists:
		res, err := e.evalSelect(tx, x.Sel, env)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool((len(res.Rows) > 0) != x.Neg), nil

	case *sql.IsNull:
		v, err := e.EvalExpr(tx, x.X, env)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(v.IsNull() != x.Neg), nil

	case *sql.Like:
		v, err := e.EvalExpr(tx, x.X, env)
		if err != nil {
			return value.Null, err
		}
		p, err := e.EvalExpr(tx, x.Pattern, env)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() || p.IsNull() {
			return value.NewBool(false), nil
		}
		if v.Type() != value.TypeString || p.Type() != value.TypeString {
			return value.Null, fmt.Errorf("engine: LIKE needs strings, got %s LIKE %s", v.Type(), p.Type())
		}
		return value.NewBool(matchLike(v.Str(), p.Str()) != x.Neg), nil

	case *sql.Subquery:
		res, err := e.evalSelect(tx, x.Sel, env)
		if err != nil {
			return value.Null, err
		}
		if len(res.Cols) != 1 {
			return value.Null, fmt.Errorf("engine: scalar subquery has %d columns", len(res.Cols))
		}
		switch len(res.Rows) {
		case 0:
			return value.Null, nil
		case 1:
			return res.Rows[0][0], nil
		default:
			return value.Null, fmt.Errorf("engine: scalar subquery returned %d rows", len(res.Rows))
		}

	case *sql.InAnswer:
		return value.Null, fmt.Errorf("%w: (%s)", ErrAnswerConstraint, x.String())

	default:
		return value.Null, fmt.Errorf("engine: unsupported expression %T", expr)
	}
}

func (e *Engine) evalBinary(tx *txn.Txn, x *sql.Binary, env *Env) (value.Value, error) {
	// Short-circuit logical operators.
	if x.Op == sql.OpAnd || x.Op == sql.OpOr {
		l, err := e.EvalExpr(tx, x.L, env)
		if err != nil {
			return value.Null, err
		}
		lt := truthy(l)
		if x.Op == sql.OpAnd && !lt {
			return value.NewBool(false), nil
		}
		if x.Op == sql.OpOr && lt {
			return value.NewBool(true), nil
		}
		r, err := e.EvalExpr(tx, x.R, env)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(truthy(r)), nil
	}

	l, err := e.EvalExpr(tx, x.L, env)
	if err != nil {
		return value.Null, err
	}
	r, err := e.EvalExpr(tx, x.R, env)
	if err != nil {
		return value.Null, err
	}
	switch x.Op {
	case sql.OpEq:
		return value.NewBool(l.Equal(r)), nil
	case sql.OpNe:
		if l.IsNull() || r.IsNull() {
			return value.NewBool(false), nil
		}
		return value.NewBool(!l.Equal(r)), nil
	case sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		if l.IsNull() || r.IsNull() {
			return value.NewBool(false), nil
		}
		c := l.Compare(r)
		switch x.Op {
		case sql.OpLt:
			return value.NewBool(c < 0), nil
		case sql.OpLe:
			return value.NewBool(c <= 0), nil
		case sql.OpGt:
			return value.NewBool(c > 0), nil
		default:
			return value.NewBool(c >= 0), nil
		}
	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv:
		return arith(x.Op, l, r)
	default:
		return value.Null, fmt.Errorf("engine: unsupported operator %s", x.Op)
	}
}

func arith(op sql.BinOp, l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	lt, rt := l.Type(), r.Type()
	numeric := func(t value.Type) bool { return t == value.TypeInt || t == value.TypeFloat }
	if !numeric(lt) || !numeric(rt) {
		// String concatenation via '+' for convenience in the travel app.
		if op == sql.OpAdd && lt == value.TypeString && rt == value.TypeString {
			return value.NewString(l.Str() + r.Str()), nil
		}
		return value.Null, fmt.Errorf("engine: arithmetic on %s and %s", lt, rt)
	}
	if lt == value.TypeInt && rt == value.TypeInt {
		a, b := l.Int(), r.Int()
		switch op {
		case sql.OpAdd:
			return value.NewInt(a + b), nil
		case sql.OpSub:
			return value.NewInt(a - b), nil
		case sql.OpMul:
			return value.NewInt(a * b), nil
		case sql.OpDiv:
			if b == 0 {
				return value.Null, errors.New("engine: division by zero")
			}
			return value.NewInt(a / b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case sql.OpAdd:
		return value.NewFloat(a + b), nil
	case sql.OpSub:
		return value.NewFloat(a - b), nil
	case sql.OpMul:
		return value.NewFloat(a * b), nil
	case sql.OpDiv:
		if b == 0 {
			return value.Null, errors.New("engine: division by zero")
		}
		return value.NewFloat(a / b), nil
	}
	return value.Null, fmt.Errorf("engine: bad arithmetic op %s", op)
}

// matchLike implements SQL LIKE: '%' matches any run (including empty),
// '_' matches exactly one character. Matching is over bytes, which is exact
// for the ASCII patterns the travel app uses.
func matchLike(s, pattern string) bool {
	// Iterative two-pointer algorithm with backtracking on the last '%'.
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// truthy maps a value to a boolean condition result: booleans are themselves,
// NULL is false, and anything else is an error surfaced as false (SQL-ish
// two-valued logic; documented in README).
func truthy(v value.Value) bool {
	return v.Type() == value.TypeBool && v.Bool()
}
