package engine

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/value"
)

// estimateFromPlan costs one planned FROM entry with the plan package.
// params, when non-nil, resolves parameter-valued pushdown sources so a
// bind-time EXPLAIN (and template grounding, which executes through the text
// path) re-costs with the actual values; unresolved parameters estimate with
// default selectivities.
func estimateFromPlan(fp *fromPlan, st storage.TableStats, params value.Tuple) plan.Access {
	in := plan.Input{Stats: st, EqCols: fp.eqCols, RangeCol: fp.rangeCol}
	for _, src := range fp.eqSrcs {
		v, known := src.lit, src.param < 0
		if !known && src.param < len(params) {
			v, known = params[src.param], true
		}
		in.EqVals = append(in.EqVals, v)
		in.EqKnown = append(in.EqKnown, known)
	}
	// A converted equality probe shows up as two inclusive bounds sharing one
	// parameter source; when that parameter is unbound the bounds stay unknown
	// but the range is still structurally degenerate.
	if len(fp.rangeConds) == 2 && len(fp.eqCols) == 0 {
		a, b := fp.rangeConds[0], fp.rangeConds[1]
		if a.lo != b.lo && a.incl && b.incl &&
			a.src.param >= 0 && a.src.param == b.src.param {
			in.EqRange = true
		}
	}
	for _, rc := range fp.rangeConds {
		v, known := rc.src.lit, rc.src.param < 0
		if !known && rc.src.param < len(params) {
			v, known = params[rc.src.param], true
		}
		if !known {
			if rc.lo {
				in.LoParam = true
			} else {
				in.HiParam = true
			}
			continue
		}
		b := storage.BoundAt(v, rc.incl)
		if rc.lo {
			if !in.Lo.Set || tighterLo(b, in.Lo) {
				in.Lo = b
			}
		} else {
			if !in.Hi.Set || tighterHi(b, in.Hi) {
				in.Hi = b
			}
		}
	}
	return plan.Estimate(in)
}

// estimateFrom costs one text-path FROM entry whose pushdown values are
// already resolved. Equality probe values are pre-coerced and non-NULL on
// this path (pushDownPredicates withholds the probe otherwise), so only the
// slots and bounds matter.
func estimateFrom(f *fromTable) plan.Access {
	return plan.Estimate(plan.Input{
		Stats: f.tbl.Stats(), EqCols: f.eqCols,
		RangeCol: f.rangeCol, Lo: f.lo, Hi: f.hi,
	})
}

// ExplainResult wraps a plan description as a one-column result set, one row
// per rendered line, so EXPLAIN flows through every execution surface
// (engine, core, wire protocol, CLIs) like any other query.
func ExplainResult(d *plan.Desc) *Result {
	text := strings.TrimRight(d.String(), "\n")
	res := &Result{Cols: []string{"plan"}}
	for _, line := range strings.Split(text, "\n") {
		res.Rows = append(res.Rows, value.Tuple{value.NewString(line)})
	}
	return res
}

func colsLabel(schema *value.Schema, cols []int) string {
	var b strings.Builder
	for i, o := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(schema.Columns[o].Name)
	}
	return b.String()
}

// ExplainStmt builds the typed plan description for a statement without
// executing it. Parameter values, when supplied, refine the estimates the
// same way they would at bind time. Statements outside the plannable SELECT
// shape get a one-line note instead of access-path steps.
func (e *Engine) ExplainStmt(stmt sql.Statement, params value.Tuple) (*plan.Desc, error) {
	d := &plan.Desc{SQL: stmt.String()}
	switch s := stmt.(type) {
	case *sql.Select:
		return e.explainSelect(d, s, params)
	case *sql.Insert:
		d.Kind, d.Note = "insert", fmt.Sprintf("row construction + index maintenance on %s", s.Table)
	case *sql.Update:
		d.Kind, d.Note = "update", fmt.Sprintf("filtered scan of %s, new version per match", s.Table)
	case *sql.Delete:
		d.Kind, d.Note = "delete", fmt.Sprintf("filtered scan of %s, tombstone per match", s.Table)
	case *sql.CreateTable:
		d.Kind, d.Note = "create table", "catalog DDL (bumps the plan-cache version)"
	case *sql.CreateIndex:
		d.Kind, d.Note = "create index", "index build over every stored version (bumps the plan-cache version)"
	case *sql.DropTable:
		d.Kind, d.Note = "drop table", "catalog DDL (bumps the plan-cache version)"
	case *sql.TxnStmt:
		d.Kind, d.Note = "transaction control", "no data access"
	case *sql.EntangledSelect:
		d.Kind, d.Note = "entangled select", "coordination plan — explain through the coordination pipeline for generator detail"
	default:
		d.Kind, d.Note = "statement", fmt.Sprintf("%T has no plan", stmt)
	}
	return d, nil
}

func (e *Engine) explainSelect(d *plan.Desc, s *sql.Select, params value.Tuple) (*plan.Desc, error) {
	d.Kind = "select"
	switch {
	case hasAggregates(s) || len(s.GroupBy) > 0:
		d.Note = "aggregation over a filtered scan"
		return d, nil
	case len(s.From) == 0:
		d.Note = "constant select (no table access)"
		return d, nil
	}
	froms := make([]fromPlan, len(s.From))
	for i, ref := range s.From {
		tbl, err := e.Catalog().Get(ref.Name)
		if err != nil {
			return nil, err
		}
		froms[i] = fromPlan{
			ref: ref, tbl: tbl, binding: strings.ToLower(ref.Binding()),
			lockName: strings.ToLower(ref.Name), rangeCol: -1,
		}
	}
	conds := sql.Conjuncts(s.Where)
	skip := planPushDowns(s.Where, froms, len(s.From) == 1)

	stats := make([]storage.TableStats, len(froms))
	ests := make([]float64, len(froms))
	accs := make([]plan.Access, len(froms))
	for i := range froms {
		stats[i] = froms[i].tbl.Stats()
		accs[i] = estimateFromPlan(&froms[i], stats[i], params)
		ests[i] = accs[i].Rows
	}
	eliminated := 0
	for ci := range conds {
		if ci < 64 && skip&(1<<uint(ci)) != 0 {
			eliminated++
		}
	}
	for _, idx := range plan.Order(ests) {
		f := &froms[idx]
		step := plan.Step{
			Table:   f.tbl.Name(),
			Binding: f.ref.Binding(),
			Path:    accs[idx].Path.String(),
			Index:   accs[idx].Index,
			Columns: colsLabel(f.tbl.Schema(), accs[idx].Cols),
			EstRows: accs[idx].Rows,
			Rows:    stats[idx].Rows,
		}
		if len(d.Steps) == 0 {
			step.Residual = len(conds) - eliminated
			step.Eliminated = eliminated
		}
		d.Steps = append(d.Steps, step)
	}
	return d, nil
}
