package engine

import "testing"

func TestInsertSelect(t *testing.T) {
	e := newEngine(t)
	query(t, e, "CREATE TABLE ParisFlights (fno INT, dest STRING)")
	res := query(t, e, "INSERT INTO ParisFlights SELECT fno, dest FROM Flights WHERE dest = 'Paris'")
	if res.Affected != 3 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := query(t, e, "SELECT COUNT(*) FROM ParisFlights")
	if got.Rows[0][0].Int() != 3 {
		t.Errorf("copied rows = %v", got.Rows)
	}
	// Type-mismatched projection fails atomically.
	if _, err := e.ExecuteSQL("INSERT INTO ParisFlights SELECT dest, fno FROM Flights"); err == nil {
		t.Error("type-mismatched INSERT..SELECT accepted")
	}
	if got := query(t, e, "SELECT COUNT(*) FROM ParisFlights"); got.Rows[0][0].Int() != 3 {
		t.Error("failed INSERT..SELECT leaked rows")
	}
	// With expressions and a PK conflict mid-way: all-or-nothing.
	query(t, e, "CREATE TABLE K (x INT, PRIMARY KEY (x))")
	query(t, e, "INSERT INTO K VALUES (123)")
	if _, err := e.ExecuteSQL("INSERT INTO K SELECT fno FROM Flights WHERE dest = 'Paris'"); err == nil {
		t.Error("PK conflict accepted")
	}
	if got := query(t, e, "SELECT COUNT(*) FROM K"); got.Rows[0][0].Int() != 1 {
		t.Error("partial INSERT..SELECT survived")
	}
}

func TestExists(t *testing.T) {
	e := newEngine(t)
	// Uncorrelated.
	res := query(t, e, "SELECT 1 WHERE EXISTS (SELECT fno FROM Flights WHERE dest = 'Rome')")
	if len(res.Rows) != 1 {
		t.Errorf("EXISTS rows = %v", res.Rows)
	}
	res = query(t, e, "SELECT 1 WHERE EXISTS (SELECT fno FROM Flights WHERE dest = 'Atlantis')")
	if len(res.Rows) != 0 {
		t.Errorf("empty EXISTS rows = %v", res.Rows)
	}
	// Correlated: flights that have an airline entry.
	res = query(t, e, `SELECT f.fno FROM Flights f
		WHERE EXISTS (SELECT 1 FROM Airlines a WHERE a.fno = f.fno AND a.airline = 'United')`)
	if len(res.Rows) != 2 {
		t.Errorf("correlated EXISTS rows = %v", res.Rows)
	}
	// NOT EXISTS.
	res = query(t, e, `SELECT f.fno FROM Flights f
		WHERE NOT EXISTS (SELECT 1 FROM Airlines a WHERE a.fno = f.fno AND a.airline = 'United')`)
	if len(res.Rows) != 2 {
		t.Errorf("NOT EXISTS rows = %v", res.Rows)
	}
	// Errors.
	if _, err := e.ExecuteSQL("SELECT 1 WHERE EXISTS (1 + 2)"); err == nil {
		t.Error("EXISTS over non-subquery accepted")
	}
}
