package engine

import (
	"testing"
	"testing/quick"
)

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"Paris", "Paris", true},
		{"Paris", "paris", false}, // case-sensitive
		{"Paris", "P%", true},
		{"Paris", "%s", true},
		{"Paris", "%ari%", true},
		{"Paris", "P_ris", true},
		{"Paris", "P__ris", false},
		{"Paris", "%", true},
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
		{"Hotel Paris 1", "Hotel%1", true},
		{"Hotel Paris 1", "Hotel%2", false},
		{"abc", "a%b%c", true},
		{"aXbYc", "a%b%c", true},
		{"ac", "a%b%c", false},
		{"aaa", "%a", true},
		{"abcd", "__", false},
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.want {
			t.Errorf("matchLike(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// Property: every string matches itself, "%"+s+"%" and prefix/suffix forms.
func TestMatchLikeProperties(t *testing.T) {
	f := func(s string) bool {
		// Strip pattern metacharacters for literal-match checks.
		clean := ""
		for _, r := range s {
			if r != '%' && r != '_' {
				clean += string(r)
			}
		}
		return matchLike(clean, clean) &&
			matchLike(clean, "%") &&
			matchLike(clean, clean+"%") &&
			matchLike(clean, "%"+clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLikeAndIsNullInSQL(t *testing.T) {
	e := newEngine(t)
	query(t, e, "CREATE TABLE H (name STRING, note STRING)")
	query(t, e, "INSERT INTO H VALUES ('Hotel Paris 1', 'ok'), ('Hotel Roma', NULL), ('Grand Paris', 'ok')")

	res := query(t, e, "SELECT name FROM H WHERE name LIKE 'Hotel%' ORDER BY name")
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "Hotel Paris 1" {
		t.Errorf("LIKE rows = %v", res.Rows)
	}
	res = query(t, e, "SELECT name FROM H WHERE name LIKE '%Paris%'")
	if len(res.Rows) != 2 {
		t.Errorf("infix rows = %v", res.Rows)
	}
	res = query(t, e, "SELECT name FROM H WHERE name NOT LIKE '%Paris%'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Hotel Roma" {
		t.Errorf("NOT LIKE rows = %v", res.Rows)
	}
	res = query(t, e, "SELECT name FROM H WHERE note IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Hotel Roma" {
		t.Errorf("IS NULL rows = %v", res.Rows)
	}
	res = query(t, e, "SELECT name FROM H WHERE note IS NOT NULL")
	if len(res.Rows) != 2 {
		t.Errorf("IS NOT NULL rows = %v", res.Rows)
	}
	// NULL LIKE anything is false; type errors surface.
	res = query(t, e, "SELECT name FROM H WHERE note LIKE '%'")
	if len(res.Rows) != 2 {
		t.Errorf("NULL LIKE rows = %v", res.Rows)
	}
	if _, err := e.ExecuteSQL("SELECT name FROM H WHERE 5 LIKE '%'"); err == nil {
		t.Error("numeric LIKE accepted")
	}
}

func TestLikeRoundTrip(t *testing.T) {
	e := newEngine(t)
	// Exercise printing via a query that parses the printed form again.
	res := query(t, e, "SELECT dest FROM Flights WHERE dest LIKE 'P%' AND dest IS NOT NULL")
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}
