package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// seedPlannerData builds a three-table schema with skewed sizes and a mix of
// index kinds, populated deterministically from seed.
func seedPlannerData(t *testing.T, seed int64) *Engine {
	t.Helper()
	e := New(txn.NewManager(storage.NewCatalog()))
	ddl := []string{
		"CREATE TABLE regions (name STRING, tier INT, PRIMARY KEY (name))",
		"CREATE TABLE users (id INT, region STRING, score INT, PRIMARY KEY (id))",
		"CREATE TABLE orders (oid INT, uid INT, amount FLOAT, PRIMARY KEY (oid))",
		"CREATE INDEX ON users (region)",           // unnamed hash
		"CREATE INDEX users_score ON users (score)", // named single-column → ordered
		"CREATE INDEX orders_uid ON orders (uid)",   // named single-column → ordered
	}
	for _, src := range ddl {
		if _, err := e.ExecuteSQL(src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"north", "south", "east", "west"}
	for i, r := range regions {
		mustExec(t, e, fmt.Sprintf("INSERT INTO regions VALUES ('%s', %d)", r, i%2))
	}
	for i := 0; i < 40; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO users VALUES (%d, '%s', %d)",
			i, regions[rng.Intn(len(regions))], rng.Intn(20)))
	}
	for i := 0; i < 80; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %.2f)",
			i, rng.Intn(40), float64(rng.Intn(10000))/100))
	}
	return e
}

func mustExec(t *testing.T, e *Engine, src string) {
	t.Helper()
	if _, err := e.ExecuteSQL(src); err != nil {
		t.Fatalf("%s: %v", src, err)
	}
}

// sortedRows renders a result's rows sorted lexicographically, so two plans
// producing the same multiset in different orders render byte-identically.
func sortedRows(r *Result) string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		lines[i] = fmt.Sprintf("%v", row)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestPlanEquivalence is the plan-equivalence suite: every query runs twice —
// cost-ranked join order vs. naive statement order — through both the text
// and the prepared path, across several data seeds. The rendered (sorted) row
// sets must be byte-identical: reordering may only change performance, never
// the answer.
func TestPlanEquivalence(t *testing.T) {
	queries := []struct {
		src    string
		params value.Tuple
	}{
		{"SELECT u.id, o.oid FROM users u, orders o WHERE u.id = o.uid", nil},
		{"SELECT o.oid, u.region FROM orders o, users u WHERE u.id = o.uid AND u.region = 'north'", nil},
		{"SELECT u.id FROM regions r, users u WHERE u.region = r.name AND r.tier = 1", nil},
		{"SELECT u.id, o.amount FROM users u, orders o WHERE u.id = o.uid AND o.amount > 50.0", nil},
		{"SELECT r.name, u.id, o.oid FROM regions r, users u, orders o " +
			"WHERE u.region = r.name AND u.id = o.uid AND u.score >= 10", nil},
		{"SELECT o.oid FROM orders o, users u WHERE u.id = o.uid AND u.score = ?", value.NewTuple(int64(7))},
		{"SELECT u.id FROM orders o, users u WHERE u.id = o.uid AND o.amount BETWEEN ? AND ?",
			value.NewTuple(10.0, 40.0)},
		{"SELECT u.id FROM users u WHERE u.score = 7 AND u.region = 'south'", nil},
	}
	for _, seed := range []int64{1, 7, 42} {
		e := seedPlannerData(t, seed)
		for _, q := range queries {
			name := fmt.Sprintf("seed%d/%s", seed, q.src)
			stmt, err := sql.Parse(q.src)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			run := func(naive bool) (text, prepped string) {
				planNaiveOrder = naive
				defer func() { planNaiveOrder = false }()
				p, err := e.Prepare(stmt)
				if err != nil {
					t.Fatalf("%s: prepare: %v", name, err)
				}
				res, err := p.Execute(q.params)
				if err != nil {
					t.Fatalf("%s: prepared exec: %v", name, err)
				}
				prepped = sortedRows(res)
				if q.params == nil {
					r2, err := e.ExecuteSQL(q.src)
					if err != nil {
						t.Fatalf("%s: text exec: %v", name, err)
					}
					text = sortedRows(r2)
				}
				return text, prepped
			}
			naiveText, naivePrepped := run(true)
			rankedText, rankedPrepped := run(false)
			if rankedPrepped != naivePrepped {
				t.Errorf("%s: prepared ranked != naive\nranked:\n%s\nnaive:\n%s", name, rankedPrepped, naivePrepped)
			}
			if rankedText != naiveText {
				t.Errorf("%s: text ranked != naive\nranked:\n%s\nnaive:\n%s", name, rankedText, naiveText)
			}
		}
	}
}

// TestOrderedEqCrossTypeCoercion pins the ordered-index analogue of the hash
// coercion bug: an eq probe routed through an ordered secondary index as a
// degenerate [v, v] range must never silently miss rows whose stored key
// compares equal under SQL `=` cross-type rules — INT probe against a
// FLOAT-keyed index and vice versa.
func TestOrderedEqCrossTypeCoercion(t *testing.T) {
	mk := func(withIndex bool) *Engine {
		e := New(txn.NewManager(storage.NewCatalog()))
		mustExec(t, e, "CREATE TABLE fares (id INT, price FLOAT, hops INT, PRIMARY KEY (id))")
		mustExec(t, e, "INSERT INTO fares VALUES (1, 2.0, 0), (2, 2.5, 1), (3, 180.0, 2), (4, NULL, 2)")
		if withIndex {
			// Named single-column indexes build ordered; eq probes against them
			// execute as degenerate ranges.
			mustExec(t, e, "CREATE INDEX fares_price ON fares (price)")
			mustExec(t, e, "CREATE INDEX fares_hops ON fares (hops)")
		}
		return e
	}
	indexed, plain := mk(true), mk(false)
	cases := []struct {
		src    string
		params value.Tuple
	}{
		// INT probe against the FLOAT-keyed ordered index: must find id 1.
		{"SELECT id FROM fares WHERE price = 2 ORDER BY id", nil},
		{"SELECT id FROM fares WHERE price = ? ORDER BY id", value.NewTuple(int64(2))},
		// FLOAT probe against the INT-keyed ordered index: 2.0 matches hops=2.
		{"SELECT id FROM fares WHERE hops = 2.0 ORDER BY id", nil},
		{"SELECT id FROM fares WHERE hops = ? ORDER BY id", value.NewTuple(2.0)},
		// Fractional FLOAT probe on the INT index: matches nothing, silently.
		{"SELECT id FROM fares WHERE hops = ? ORDER BY id", value.NewTuple(1.5)},
		// NULL probe: SQL `=` is never true against NULL.
		{"SELECT id FROM fares WHERE price = ? ORDER BY id", value.NewTuple(value.Null)},
		// Uncoercible probe type: zero rows, no error.
		{"SELECT id FROM fares WHERE price = ? ORDER BY id", value.NewTuple("cheap")},
		// eq + range on the same ordered column intersect correctly.
		{"SELECT id FROM fares WHERE hops = 2 AND hops >= ? ORDER BY id", value.NewTuple(int64(1))},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s%v", tc.src, tc.params)
		stmt, err := sql.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var want, got *Result
		for _, e := range []*Engine{plain, indexed} {
			p, err := e.Prepare(stmt)
			if err != nil {
				t.Fatalf("%s: prepare: %v", name, err)
			}
			res, err := p.Execute(tc.params)
			if err != nil {
				t.Fatalf("%s: exec: %v", name, err)
			}
			if e == plain {
				want = res
			} else {
				got = res
			}
			if tc.params == nil {
				tr, err := e.ExecuteSQL(tc.src)
				if err != nil {
					t.Fatalf("%s: text exec: %v", name, err)
				}
				if rowsString(tr) != rowsString(res) {
					t.Errorf("%s: text and prepared disagree: %v vs %v", name, tr.Rows, res.Rows)
				}
			}
		}
		if rowsString(got) != rowsString(want) {
			t.Errorf("%s: indexed = %v, scan = %v", name, got.Rows, want.Rows)
		}
	}
}

// TestExplainStatements pins the EXPLAIN surface: access-path selection per
// predicate shape, the result-set form, and non-SELECT statements.
func TestExplainStatements(t *testing.T) {
	e := seedPlannerData(t, 1)
	paths := []struct {
		src  string
		want string // substring of the first step's rendered path
	}{
		{"SELECT * FROM users WHERE id = 3", "pk probe"},
		{"SELECT * FROM users WHERE region = 'north'", "eq probe (hash)"},
		{"SELECT * FROM users WHERE score = 7", "eq probe (ordered) via users_score"},
		{"SELECT * FROM users WHERE score > 10", "range scan (ordered) via users_score"},
		{"SELECT * FROM users", "full scan"},
		{"SELECT COUNT(*) FROM users", "aggregation"},
		{"INSERT INTO users VALUES (99, 'north', 1)", "index maintenance"},
		{"DELETE FROM users WHERE id = 99", "tombstone"},
	}
	for _, tc := range paths {
		stmt, err := sql.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		d, err := e.ExplainStmt(stmt, nil)
		if err != nil {
			t.Fatalf("explain %s: %v", tc.src, err)
		}
		if !strings.Contains(d.String(), tc.want) {
			t.Errorf("EXPLAIN %s:\n%s\nwant substring %q", tc.src, d.String(), tc.want)
		}
	}

	// EXPLAIN as a statement flows through execution as a result set.
	res, err := e.ExecuteSQL("EXPLAIN SELECT * FROM users WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 1 || res.Cols[0] != "plan" || len(res.Rows) < 3 {
		t.Fatalf("EXPLAIN result shape: cols=%v rows=%d", res.Cols, len(res.Rows))
	}

	// Multi-table: the smaller/selective side must come first in the ranked
	// order even when the statement lists it last.
	stmt, err := sql.Parse("SELECT u.id, o.oid FROM orders o, users u WHERE u.id = o.uid AND u.id = 5")
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.ExplainStmt(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 2 || d.Steps[0].Table != "users" {
		t.Fatalf("expected pk-probed users first in ranked order, got:\n%s", d.String())
	}

	// Parameters refine estimates at explain time just as they would at bind
	// time: an unbound NULL-able probe keeps its generic estimate, a bound
	// NULL probe estimates near zero.
	stmt, err = sql.Parse("SELECT id FROM users WHERE score = ?")
	if err != nil {
		t.Fatal(err)
	}
	unbound, err := e.ExplainStmt(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := e.ExplainStmt(stmt, value.NewTuple(value.Null))
	if err != nil {
		t.Fatal(err)
	}
	if bound.Steps[0].EstRows >= unbound.Steps[0].EstRows {
		t.Fatalf("NULL-bound estimate %v should be below unbound %v",
			bound.Steps[0].EstRows, unbound.Steps[0].EstRows)
	}
}

// TestCreateIndexReplan pins DDL-stamped replanning: a prepared statement
// planned as a full scan transparently switches to the index once CREATE
// INDEX bumps the catalog version, with no re-prepare.
func TestCreateIndexReplan(t *testing.T) {
	e := New(txn.NewManager(storage.NewCatalog()))
	mustExec(t, e, "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
	for i := 0; i < 32; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i%8))
	}
	stmt, err := sql.Parse("SELECT k FROM kv WHERE v = ?")
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(stmt)
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Execute(value.NewTuple(int64(3)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.ExplainStmt(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Steps[0].Path, "scan") {
		t.Fatalf("expected scan before CREATE INDEX, got %s", d.Steps[0].Path)
	}
	mustExec(t, e, "CREATE INDEX kv_v ON kv (v)")
	after, err := p.Execute(value.NewTuple(int64(3)))
	if err != nil {
		t.Fatal(err)
	}
	if sortedRows(before) != sortedRows(after) {
		t.Fatalf("replanned result diverged:\n%s\nvs\n%s", sortedRows(before), sortedRows(after))
	}
	d, err = e.ExplainStmt(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Steps[0].Path, "eq probe (ordered)") {
		t.Fatalf("expected ordered eq probe after CREATE INDEX, got:\n%s", d.String())
	}
}

// FuzzExplain drives the full parse → plan → describe pipeline with
// arbitrary statement text over a populated catalog: anything that parses
// must explain without panicking, and rendering must not crash.
func FuzzExplain(f *testing.F) {
	for _, s := range []string{
		"SELECT * FROM users WHERE id = 3",
		"SELECT u.id, o.oid FROM users u, orders o WHERE u.id = o.uid",
		"SELECT * FROM users WHERE score BETWEEN 1 AND 5 AND region = 'north'",
		"EXPLAIN SELECT * FROM users",
		"INSERT INTO users VALUES (1, 'x', 2)",
		"SELECT COUNT(*) FROM orders GROUP BY uid",
		"SELECT * FROM missing WHERE x = 1",
	} {
		f.Add(s)
	}
	e := New(txn.NewManager(storage.NewCatalog()))
	for _, src := range []string{
		"CREATE TABLE users (id INT, region STRING, score INT, PRIMARY KEY (id))",
		"CREATE TABLE orders (oid INT, uid INT, amount FLOAT, PRIMARY KEY (oid))",
		"CREATE INDEX ON users (region)",
		"CREATE INDEX users_score ON users (score)",
		"INSERT INTO users VALUES (1, 'north', 5), (2, 'south', 10)",
		"INSERT INTO orders VALUES (1, 1, 10.0), (2, 2, 20.0)",
	} {
		if _, err := e.ExecuteSQL(src); err != nil {
			f.Fatal(err)
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := sql.Parse(src)
		if err != nil {
			return
		}
		if ex, ok := stmt.(*sql.Explain); ok {
			stmt = ex.Stmt
		}
		d, err := e.ExplainStmt(stmt, nil)
		if err != nil {
			return // unknown tables/columns are fine; panics are not
		}
		_ = d.String()
	})
}
