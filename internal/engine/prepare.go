package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// Prepared is the engine half of a prepared statement: one parsed statement
// whose planning — table resolution, projection columns, index selection,
// join ordering — is done once and replayed for every execution with a bound
// parameter vector. The plan is stamped with the catalog's DDL version and
// transparently rebuilt when schema changes invalidate it, so a handle
// survives CREATE INDEX (picking up the new access path) and reports a clean
// error after DROP TABLE.
//
// A Prepared is immutable after construction and safe for concurrent
// Execute/ExecuteIn calls; per-execution state lives in a pooled scratch.
type Prepared struct {
	eng  *Engine
	stmt sql.Statement
	n    int // parameter-vector length the statement needs

	plan    atomic.Pointer[stmtPlan]
	scratch sync.Pool // *execScratch
}

// stmtPlan is one version-stamped planning result. sel is non-nil for the
// plannable SELECT shape (non-aggregate, with FROM); other statements run
// through the generic executor, which re-reads the catalog itself.
type stmtPlan struct {
	version uint64
	sel     *selectPlan
}

// selectPlan caches the per-execution analysis evalSelect performs: resolved
// tables, canonical bindings, projection columns, pushdown slots (with
// symbolic value sources, so parameters participate in index selection), and
// the join iteration order.
type selectPlan struct {
	sel   *sql.Select
	cols  []string
	froms []fromPlan
	iter  []int // join iteration order: indexes into froms
	// WHERE split into top-level conjuncts, plus a bitmask of the ones
	// exactly covered by an index pushdown. When every bind-time guard holds
	// (probe values coerce to the column type and are non-NULL), execution
	// skips the masked conjuncts — for a pure point probe that is all of
	// them; when a guard fails it falls back to re-checking every conjunct.
	conds []sql.Expr
	skip  uint64
}

// fromPlan is the static part of a fromTable.
type fromPlan struct {
	ref      sql.TableRef
	tbl      *storage.Table
	binding  string
	lockName string // canonical table name for LockCanonical
	eqCols   []int
	eqSrcs   []valueSrc
	// Range pushdowns over an ordered-indexed column; bounds tighten at
	// bind time (which of two parameterized bounds is tighter depends on
	// the bound values).
	rangeCol   int
	rangeConds []rangeCond
	// Conjunct indices absorbed by the range pushdown, un-masked again if an
	// equality probe supersedes the range. Fixed-size; overflow conjuncts
	// simply stay evaluated.
	rconj  [4]int
	nrconj int
}

// valueSrc is a value known at plan time (literal) or bind time (parameter).
type valueSrc struct {
	param int // -1: lit holds the value
	lit   value.Value
}

func (v valueSrc) resolve(params value.Tuple) (value.Value, bool) {
	if v.param < 0 {
		return v.lit, true
	}
	if v.param >= len(params) {
		return value.Null, false
	}
	return params[v.param], true
}

// rangeCond is one pushable comparison over the range column: a lower or
// upper bound, inclusive or not.
type rangeCond struct {
	lo   bool
	incl bool
	src  valueSrc
}

// execScratch is the pooled per-execution state of a planned SELECT.
type execScratch struct {
	fts   []fromTable
	froms []*fromTable
	iter  []*fromTable
	env   *Env
}

// Prepare plans one parsed statement for repeated execution. Entangled
// queries are compiled by package eq instead (they execute through the
// coordination component); transaction control carries no plan.
func (e *Engine) Prepare(stmt sql.Statement) (*Prepared, error) {
	switch stmt.(type) {
	case *sql.EntangledSelect:
		return nil, fmt.Errorf("engine: entangled query must be prepared through the coordination pipeline")
	case *sql.TxnStmt:
		return nil, fmt.Errorf("engine: transaction control cannot be prepared")
	}
	return &Prepared{eng: e, stmt: stmt, n: sql.NumParams(stmt)}, nil
}

// Statement returns the parsed statement behind the handle.
func (p *Prepared) Statement() sql.Statement { return p.stmt }

// NumParams returns the length of the parameter vector Execute expects.
func (p *Prepared) NumParams() int { return p.n }

// Execute runs the statement with params bound, in its own transaction.
func (p *Prepared) Execute(params value.Tuple) (*Result, error) {
	var res *Result
	err := p.eng.mgr.RunAtomic(func(tx *txn.Txn) error {
		var err error
		res, err = p.ExecuteIn(tx, params)
		return err
	})
	return res, err
}

// ExecuteIn runs the statement with params bound inside an existing
// transaction (the session/interactive-transaction path).
func (p *Prepared) ExecuteIn(tx *txn.Txn, params value.Tuple) (*Result, error) {
	if len(params) < p.n {
		return nil, fmt.Errorf("engine: statement needs %d parameter(s), got %d", p.n, len(params))
	}
	plan := p.plan.Load()
	if plan == nil || plan.version != p.eng.Catalog().DDLVersion() {
		var err error
		if plan, err = p.buildPlan(); err != nil {
			return nil, err
		}
		p.plan.Store(plan)
	}
	if plan.sel == nil {
		return p.eng.ExecuteInBound(tx, p.stmt, params)
	}
	return p.execSelect(tx, plan.sel, params)
}

// buildPlan runs the planning work of evalSelect once, against the current
// catalog version. Statements outside the plannable shape get a plan with
// sel == nil (generic execution, still parse-free).
func (p *Prepared) buildPlan() (*stmtPlan, error) {
	version := p.eng.Catalog().DDLVersion()
	s, ok := p.stmt.(*sql.Select)
	if !ok || hasAggregates(s) || len(s.GroupBy) > 0 || len(s.From) == 0 {
		return &stmtPlan{version: version}, nil
	}
	sp := &selectPlan{sel: s, froms: make([]fromPlan, len(s.From))}
	for i, ref := range s.From {
		tbl, err := p.eng.Catalog().Get(ref.Name)
		if err != nil {
			return nil, err
		}
		sp.froms[i] = fromPlan{
			ref: ref, tbl: tbl, binding: strings.ToLower(ref.Binding()),
			lockName: strings.ToLower(ref.Name), rangeCol: -1,
		}
	}
	sp.conds = sql.Conjuncts(s.Where)
	sp.skip = planPushDowns(s.Where, sp.froms, len(s.From) == 1)
	sp.cols = projectionColsPlanned(s, sp.froms)

	// Join iteration order: cost-ranked by estimated candidate cardinality
	// from the storage statistics, decided once at plan time and rebuilt
	// whenever the DDL version moves (a new index re-ranks transparently).
	// Literal pushdown values refine the estimates; parameter slots cost with
	// default selectivities.
	if n := len(sp.froms); n == 1 || planNaiveOrder {
		// Nothing to rank — keep statement order without costing. The
		// single-table case is the hot text-path shape; skipping estimation
		// keeps per-statement planning allocation-flat.
		if n <= len(identityOrder) {
			sp.iter = identityOrder[:n:n]
		} else {
			sp.iter = make([]int, n)
			for i := range sp.iter {
				sp.iter[i] = i
			}
		}
	} else {
		ests := make([]float64, len(sp.froms))
		for i := range sp.froms {
			fp := &sp.froms[i]
			ests[i] = estimateFromPlan(fp, fp.tbl.Stats(), nil).Rows
		}
		sp.iter = plan.Order(ests)
	}
	return &stmtPlan{version: version, sel: sp}, nil
}

// identityOrder serves as the shared statement-order iteration slice for
// plans that skip ranking (read-only; capped reslices hand out prefixes).
var identityOrder = func() []int {
	ids := make([]int, 64)
	for i := range ids {
		ids[i] = i
	}
	return ids
}()

// planNaiveOrder, when set, disables cost-ranked join ordering so tables are
// visited in statement order. Test-only: the plan-equivalence suite compares
// ranked plans against this naive baseline.
var planNaiveOrder bool

// planPushDowns is pushDownPredicates with symbolic value sources: the same
// conjunct shapes are recognized, but parameter operands stay unresolved
// until bind time. It returns a bitmask of the conjuncts (in sql.Conjuncts
// order) exactly covered by an attached pushdown, which execution skips when
// the bind-time guards in execSelect hold. Conjuncts beyond the mask's 64
// bits are pushed but never skipped.
//
// A conjunct may be masked out because the pushdown that absorbed it has
// identical semantics:
//
//   - equality probes compare with Identical, which agrees with SQL = for
//     every non-NULL value once the probe is coerced to the column's declared
//     type (stored values always are, schema validation coerces on insert);
//   - range scans and evalBinary comparisons both order with value.Compare,
//     and the ordered index skips NULL entries exactly as `col < x` is never
//     truthy for a NULL column.
//
// The NULL/coercion preconditions involve bound values, so they are checked
// per execution; this function only decides coverage shape.
func planPushDowns(where sql.Expr, froms []fromPlan, single bool) (skip uint64) {
	locate := func(cr *sql.ColumnRef) (*fromPlan, int) {
		for i := range froms {
			f := &froms[i]
			if cr.Table != "" && !strings.EqualFold(cr.Table, f.ref.Binding()) {
				continue
			}
			if cr.Table == "" && !single {
				continue
			}
			if o := f.tbl.Schema().Ordinal(cr.Name); o >= 0 {
				return f, o
			}
		}
		return nil, -1
	}
	addRange := func(f *fromPlan, o int, rc rangeCond) bool {
		if f.rangeCol >= 0 && f.rangeCol != o {
			return false // one range column per table
		}
		if !f.tbl.HasOrderedIndex(o) {
			return false
		}
		f.rangeCol = o
		f.rangeConds = append(f.rangeConds, rc)
		return true
	}
	consume := func(ci int) {
		if ci < 64 {
			skip |= 1 << uint(ci)
		}
	}
	consumeRange := func(f *fromPlan, ci int) {
		if ci < 64 && f.nrconj < len(f.rconj) {
			f.rconj[f.nrconj] = ci
			f.nrconj++
			skip |= 1 << uint(ci)
		}
	}
	for ci, c := range sql.Conjuncts(where) {
		switch b := c.(type) {
		case *sql.Binary:
			cr, src, op, ok := normalizeCmpSym(b)
			if !ok {
				continue
			}
			f, o := locate(cr)
			if f == nil {
				continue
			}
			switch op {
			case sql.OpEq:
				f.eqCols = append(f.eqCols, o)
				f.eqSrcs = append(f.eqSrcs, src)
				consume(ci)
			case sql.OpGt:
				if addRange(f, o, rangeCond{lo: true, src: src}) {
					consumeRange(f, ci)
				}
			case sql.OpGe:
				if addRange(f, o, rangeCond{lo: true, incl: true, src: src}) {
					consumeRange(f, ci)
				}
			case sql.OpLt:
				if addRange(f, o, rangeCond{src: src}) {
					consumeRange(f, ci)
				}
			case sql.OpLe:
				if addRange(f, o, rangeCond{incl: true, src: src}) {
					consumeRange(f, ci)
				}
			}
		case *sql.Between:
			cr, ok := b.X.(*sql.ColumnRef)
			if !ok {
				continue
			}
			lo, okLo := srcOf(b.Lo)
			hi, okHi := srcOf(b.Hi)
			if !okLo || !okHi {
				continue
			}
			f, o := locate(cr)
			if f == nil {
				continue
			}
			pushedLo := addRange(f, o, rangeCond{lo: true, incl: true, src: lo})
			pushedHi := addRange(f, o, rangeCond{incl: true, src: hi})
			// Only full coverage lets the conjunct be masked; a half-pushed
			// BETWEEN still narrows candidates correctly.
			if pushedLo && pushedHi {
				consumeRange(f, ci)
			}
		}
	}
	// Post-pass per table, mirroring pushDownPredicates: an index-backed
	// equality probe wins over a range scan (the discarded range conjuncts go
	// back to being evaluated), and an equality without a backing hash/PK
	// index on a single ordered-indexed column becomes a degenerate [v, v]
	// range over the ordered index — exact for every probe value (coercion
	// and NULL included, see pushDownPredicates), so its conjunct stays
	// masked. The bound value may be a parameter: both range conds share the
	// eq source and resolve at bind time.
	for i := range froms {
		f := &froms[i]
		if len(f.eqCols) == 0 {
			continue
		}
		if len(f.eqCols) == 1 && !f.tbl.HasEqIndex(f.eqCols) {
			if o := f.eqCols[0]; f.tbl.HasOrderedIndex(o) && (f.rangeCol < 0 || f.rangeCol == o) {
				src := f.eqSrcs[0]
				f.rangeCol = o
				f.rangeConds = append(f.rangeConds,
					rangeCond{lo: true, incl: true, src: src},
					rangeCond{incl: true, src: src})
				f.eqCols, f.eqSrcs = nil, nil
				continue
			}
		}
		if f.rangeCol >= 0 {
			f.rangeCol = -1
			f.rangeConds = nil
			for _, ci := range f.rconj[:f.nrconj] {
				skip &^= 1 << uint(ci)
			}
		}
	}
	return skip
}

func normalizeCmpSym(b *sql.Binary) (*sql.ColumnRef, valueSrc, sql.BinOp, bool) {
	var flipped sql.BinOp
	switch b.Op {
	case sql.OpEq:
		flipped = sql.OpEq
	case sql.OpLt:
		flipped = sql.OpGt
	case sql.OpLe:
		flipped = sql.OpGe
	case sql.OpGt:
		flipped = sql.OpLt
	case sql.OpGe:
		flipped = sql.OpLe
	default:
		return nil, valueSrc{}, 0, false
	}
	if cr, ok := b.L.(*sql.ColumnRef); ok {
		if src, ok := srcOf(b.R); ok {
			return cr, src, b.Op, true
		}
	}
	if cr, ok := b.R.(*sql.ColumnRef); ok {
		if src, ok := srcOf(b.L); ok {
			return cr, src, flipped, true
		}
	}
	return nil, valueSrc{}, 0, false
}

func srcOf(e sql.Expr) (valueSrc, bool) {
	switch x := e.(type) {
	case *sql.Literal:
		return valueSrc{param: -1, lit: x.Val}, true
	case *sql.Param:
		return valueSrc{param: x.Idx}, true
	}
	return valueSrc{}, false
}

// projectionColsPlanned is projectionCols over fromPlans.
func projectionColsPlanned(s *sql.Select, froms []fromPlan) []string {
	var cols []string
	for _, it := range s.Items {
		switch {
		case it.Star:
			for i := range froms {
				for _, c := range froms[i].tbl.Schema().Columns {
					cols = append(cols, c.Name)
				}
			}
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				cols = append(cols, cr.Name)
			} else {
				cols = append(cols, it.Expr.String())
			}
		}
	}
	return cols
}

// execSelect replays the cached analysis: locks, bind-time pushdown value
// resolution, then the shared join loop. Everything per-execution lives in
// the pooled scratch; only the result rows are freshly allocated (they
// escape to the caller).
func (p *Prepared) execSelect(tx *txn.Txn, sp *selectPlan, params value.Tuple) (*Result, error) {
	sc, _ := p.scratch.Get().(*execScratch)
	if sc == nil {
		sc = &execScratch{env: NewEnv()}
	}
	defer p.scratch.Put(sc)
	if cap(sc.fts) < len(sp.froms) {
		sc.fts = make([]fromTable, len(sp.froms))
		sc.froms = make([]*fromTable, len(sp.froms))
		sc.iter = make([]*fromTable, len(sp.froms))
	}
	fts := sc.fts[:len(sp.froms)]
	froms := sc.froms[:len(sp.froms)]
	iter := sc.iter[:len(sp.froms)]

	// exact tracks whether every pushdown is a semantically exact stand-in
	// for its conjunct this execution: equality probes must coerce to the
	// column type (the index compares with Identical; a raw INT probe would
	// miss FLOAT-keyed rows) and be non-NULL, range bounds must be non-NULL.
	// While exact, the plan's skip mask suppresses the covered conjuncts.
	exact := true
	for i := range sp.froms {
		fp := &sp.froms[i]
		if err := tx.LockCanonical(fp.lockName, txn.Shared); err != nil {
			return nil, err
		}
		ft := &fts[i]
		eqVals := ft.eqVals[:0] // keep the scratch tuple's capacity
		ids := ft.ids           // keep the reusable id buffer
		*ft = fromTable{ref: fp.ref, tbl: fp.tbl, binding: fp.binding, rangeCol: -1, ids: ids}
		for j, src := range fp.eqSrcs {
			v, ok := src.resolve(params)
			if !ok {
				return nil, fmt.Errorf("engine: parameter $%d out of range", src.param+1)
			}
			colType := fp.tbl.Schema().Columns[fp.eqCols[j]].Type
			if cv, err := v.Coerce(colType); err == nil && !cv.IsNull() {
				v = cv
			} else {
				exact = false // NULL or uncoercible: probe raw, re-check WHERE
			}
			eqVals = append(eqVals, v)
		}
		ft.eqVals = eqVals
		ft.eqCols = fp.eqCols // plan-owned, read-only during execution
		for _, rc := range fp.rangeConds {
			v, ok := rc.src.resolve(params)
			if !ok {
				return nil, fmt.Errorf("engine: parameter $%d out of range", rc.src.param+1)
			}
			if v.IsNull() {
				exact = false // NULL bound scans wide; WHERE filters exactly
			}
			ft.rangeCol = fp.rangeCol
			b := storage.BoundAt(v, rc.incl)
			if rc.lo {
				if !ft.lo.Set || tighterLo(b, ft.lo) {
					ft.lo = b
				}
			} else {
				if !ft.hi.Set || tighterHi(b, ft.hi) {
					ft.hi = b
				}
			}
		}
		froms[i] = ft
	}
	for i, idx := range sp.iter {
		iter[i] = &fts[idx]
	}

	skip := sp.skip
	if !exact {
		skip = 0
	}
	env := sc.env
	env.Reset()
	env.BindParams(params)
	return p.eng.runSelect(tx, sp.sel, froms, iter, env, sp.cols, sp.conds, skip)
}
