package engine

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(txn.NewManager(storage.NewCatalog()))
	for _, src := range []string{
		"CREATE TABLE Flights (fno INT, dest STRING, price FLOAT, PRIMARY KEY (fno))",
		"CREATE INDEX ON Flights (dest)",
		"INSERT INTO Flights VALUES (1, 'Paris', 100.0), (2, 'Paris', 250.0), (3, 'Rome', 180.0), (4, 'Oslo', 90.0)",
	} {
		if _, err := e.ExecuteSQL(src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	return e
}

func prep(t *testing.T, e *Engine, src string) *Prepared {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(stmt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPreparedMatchesText: a prepared execution with bound parameters must
// return exactly what the equivalent literal text returns, across statement
// shapes and repeated executions.
func TestPreparedMatchesText(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		tmpl   string
		params value.Tuple
		text   string
	}{
		{"SELECT fno FROM Flights WHERE dest = ? ORDER BY fno", value.NewTuple("Paris"),
			"SELECT fno FROM Flights WHERE dest = 'Paris' ORDER BY fno"},
		{"SELECT fno FROM Flights WHERE dest = ? AND price <= ? ORDER BY fno", value.NewTuple("Paris", 150.0),
			"SELECT fno FROM Flights WHERE dest = 'Paris' AND price <= 150.0 ORDER BY fno"},
		{"SELECT fno FROM Flights WHERE price BETWEEN ? AND ? ORDER BY fno", value.NewTuple(90.0, 190.0),
			"SELECT fno FROM Flights WHERE price BETWEEN 90.0 AND 190.0 ORDER BY fno"},
		{"SELECT COUNT(*) FROM Flights WHERE dest = ?", value.NewTuple("Paris"),
			"SELECT COUNT(*) FROM Flights WHERE dest = 'Paris'"},
		{"SELECT fno FROM Flights WHERE fno IN (SELECT fno FROM Flights WHERE dest = ?) ORDER BY fno", value.NewTuple("Rome"),
			"SELECT fno FROM Flights WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Rome') ORDER BY fno"},
		{"SELECT dest FROM Flights WHERE fno = $1", value.NewTuple(3),
			"SELECT dest FROM Flights WHERE fno = 3"},
	}
	for _, c := range cases {
		p := prep(t, e, c.tmpl)
		want, err := e.ExecuteSQL(c.text)
		if err != nil {
			t.Fatalf("%s: %v", c.text, err)
		}
		for round := 0; round < 3; round++ { // bind-many: reuse the plan
			got, err := p.Execute(c.params)
			if err != nil {
				t.Fatalf("%s round %d: %v", c.tmpl, round, err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("%s: %d rows, want %d", c.tmpl, len(got.Rows), len(want.Rows))
			}
			for i := range got.Rows {
				if !got.Rows[i].Equal(want.Rows[i]) {
					t.Fatalf("%s row %d: %v, want %v", c.tmpl, i, got.Rows[i], want.Rows[i])
				}
			}
		}
	}
}

// TestPreparedDML: parameters bind in INSERT/UPDATE/DELETE.
func TestPreparedDML(t *testing.T) {
	e := newTestEngine(t)
	ins := prep(t, e, "INSERT INTO Flights VALUES (?, ?, ?)")
	if _, err := ins.Execute(value.NewTuple(10, "Lima", 420.5)); err != nil {
		t.Fatal(err)
	}
	upd := prep(t, e, "UPDATE Flights SET price = ? WHERE fno = ?")
	if res, err := upd.Execute(value.NewTuple(99.5, 10)); err != nil || res.Affected != 1 {
		t.Fatalf("update: %v %v", res, err)
	}
	got, err := e.ExecuteSQL("SELECT price FROM Flights WHERE fno = 10")
	if err != nil || len(got.Rows) != 1 || got.Rows[0][0].Float() != 99.5 {
		t.Fatalf("after update: %v %v", got, err)
	}
	del := prep(t, e, "DELETE FROM Flights WHERE fno = ?")
	if res, err := del.Execute(value.NewTuple(10)); err != nil || res.Affected != 1 {
		t.Fatalf("delete: %v %v", res, err)
	}
}

// TestPreparedParamPushdown: an equality parameter must probe the hash index
// exactly like a literal — observed through the storage layer's lookup
// counters being unavailable, we assert behaviorally: rows come back right
// AND the plan records an eq pushdown slot for the parameter.
func TestPreparedParamPushdown(t *testing.T) {
	e := newTestEngine(t)
	p := prep(t, e, "SELECT fno FROM Flights WHERE dest = ?")
	if _, err := p.Execute(value.NewTuple("Paris")); err != nil {
		t.Fatal(err)
	}
	plan := p.plan.Load()
	if plan == nil || plan.sel == nil {
		t.Fatal("no select plan built")
	}
	fp := plan.sel.froms[0]
	if len(fp.eqCols) != 1 || len(fp.eqSrcs) != 1 || fp.eqSrcs[0].param != 0 {
		t.Fatalf("parameter not planned as eq pushdown: %+v", fp)
	}
}

// TestPreparedDDLInvalidation: schema changes must transparently replan —
// CREATE INDEX is picked up, DROP TABLE turns into a clean error, and
// re-creating the table revives the handle against the new schema.
func TestPreparedDDLInvalidation(t *testing.T) {
	e := newTestEngine(t)
	p := prep(t, e, "SELECT fno FROM Flights WHERE price BETWEEN ? AND ? ORDER BY fno")
	if _, err := p.Execute(value.NewTuple(90.0, 190.0)); err != nil {
		t.Fatal(err)
	}
	if got := p.plan.Load().sel.froms[0]; got.rangeCol >= 0 {
		t.Fatalf("range pushdown without ordered index: %+v", got)
	}
	if _, err := e.ExecuteSQL("CREATE ORDERED INDEX ON Flights (price)"); err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(value.NewTuple(90.0, 190.0))
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("after index: %v %v", res, err)
	}
	if got := p.plan.Load().sel.froms[0]; got.rangeCol < 0 {
		t.Fatalf("replanned plan ignores the new ordered index: %+v", got)
	}

	if _, err := e.ExecuteSQL("DROP TABLE Flights"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(value.NewTuple(0.0, 1.0)); err == nil {
		t.Fatal("execute after DROP TABLE succeeded")
	} else if !errors.Is(err, storage.ErrNotFound) && !strings.Contains(err.Error(), "not found") {
		t.Fatalf("unexpected error after drop: %v", err)
	}
	if _, err := e.ExecuteSQL("CREATE TABLE Flights (fno INT, dest STRING, price FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteSQL("INSERT INTO Flights VALUES (7, 'Kyiv', 120.0)"); err != nil {
		t.Fatal(err)
	}
	res, err = p.Execute(value.NewTuple(100.0, 130.0))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != 7 {
		t.Fatalf("after re-create: %v %v", res, err)
	}
}

// TestPreparedFloatExact: float64 parameters must survive bit-exactly — no
// %g text detour. The text path is not merely lossy for some values, it is
// broken: %g renders small/large magnitudes in exponent form (1e-05), which
// the SQL lexer does not even accept.
func TestPreparedFloatExact(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.ExecuteSQL("CREATE TABLE P (x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	ins := prep(t, e, "INSERT INTO P VALUES (?)")
	get := prep(t, e, "SELECT x FROM P WHERE x = ?")
	for _, f := range []float64{
		math.Pi,
		0.1 + 0.2, // 0.30000000000000004 — classic shortest-form trap
		math.Nextafter(1, 2),
		1e-323, // subnormal
		-math.MaxFloat64,
	} {
		if _, err := ins.Execute(value.NewTuple(f)); err != nil {
			t.Fatal(err)
		}
		res, err := get.Execute(value.NewTuple(f))
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("float %v did not round-trip exactly: %v %v", f, res, err)
		}
		if bits := math.Float64bits(res.Rows[0][0].Float()); bits != math.Float64bits(f) {
			t.Fatalf("float %v: got bits %x want %x", f, bits, math.Float64bits(f))
		}
	}
}

// TestPreparedErrors: arity and misuse are reported cleanly.
func TestPreparedErrors(t *testing.T) {
	e := newTestEngine(t)
	p := prep(t, e, "SELECT fno FROM Flights WHERE dest = ? AND price <= ?")
	if _, err := p.Execute(value.NewTuple("Paris")); err == nil {
		t.Fatal("short parameter vector accepted")
	}
	// Unprepared text with a placeholder: evaluation reports the unbound slot.
	if _, err := e.ExecuteSQL("SELECT fno FROM Flights WHERE price + ? > 0"); err == nil || !errors.Is(err, ErrUnboundParam) {
		t.Fatalf("want ErrUnboundParam, got %v", err)
	}
	stmt, _ := sql.Parse("BEGIN")
	if _, err := e.Prepare(stmt); err == nil {
		t.Fatal("Prepare(BEGIN) accepted")
	}
}

// TestPreparedConcurrent: one handle, many goroutines — the pooled scratch
// must not cross-contaminate result rows.
func TestPreparedConcurrent(t *testing.T) {
	e := newTestEngine(t)
	p := prep(t, e, "SELECT fno FROM Flights WHERE dest = ?")
	dests := []string{"Paris", "Rome", "Oslo"}
	wants := map[string]int{"Paris": 2, "Rome": 1, "Oslo": 1}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				d := dests[(w+i)%len(dests)]
				res, err := p.Execute(value.NewTuple(d))
				if err != nil {
					done <- err
					return
				}
				if len(res.Rows) != wants[d] {
					done <- fmt.Errorf("dest %s: %d rows, want %d", d, len(res.Rows), wants[d])
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestPreparedUnicodeIdentifiers: the prepared path must fold identifiers
// exactly like the text path (Unicode strings.ToLower, not ASCII-only) —
// for binding resolution AND for the lock key, where a divergent fold would
// put a prepared SELECT and a text UPDATE on different lock stripes.
func TestPreparedUnicodeIdentifiers(t *testing.T) {
	e := New(txn.NewManager(storage.NewCatalog()))
	for _, src := range []string{
		"CREATE TABLE Übertabelle (id INT, x INT)",
		"INSERT INTO Übertabelle VALUES (1, 42)",
	} {
		if _, err := e.ExecuteSQL(src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	p := prep(t, e, "SELECT Ü.x FROM Übertabelle Ü WHERE Ü.id = ?")
	res, err := p.Execute(value.NewTuple(1))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("unicode alias resolution: %v %v", res, err)
	}
	if got, want := p.plan.Load().sel.froms[0].lockName, strings.ToLower("Übertabelle"); got != want {
		t.Fatalf("lock key %q diverges from the text path's %q", got, want)
	}
}
