package engine

import (
	"fmt"
	"testing"
)

// rangeEngine loads a table with many priced rows and an ordered index.
func rangeEngine(t *testing.T, ordered bool) *Engine {
	t.Helper()
	e := newEngine(t)
	query(t, e, "CREATE TABLE Fares (fno INT, price FLOAT)")
	vals := ""
	for i := 0; i < 100; i++ {
		if i > 0 {
			vals += ", "
		}
		vals += fmt.Sprintf("(%d, %d.0)", i, (i*37)%500)
	}
	query(t, e, "INSERT INTO Fares VALUES "+vals)
	if ordered {
		query(t, e, "CREATE ORDERED INDEX ON Fares (price)")
	}
	return e
}

// TestRangeQueriesAgreeWithAndWithoutIndex: the ordered index must never
// change results, only the access path.
func TestRangeQueriesAgreeWithAndWithoutIndex(t *testing.T) {
	plain := rangeEngine(t, false)
	indexed := rangeEngine(t, true)
	queries := []string{
		"SELECT fno FROM Fares WHERE price < 100 ORDER BY fno",
		"SELECT fno FROM Fares WHERE price <= 100 ORDER BY fno",
		"SELECT fno FROM Fares WHERE price > 400 ORDER BY fno",
		"SELECT fno FROM Fares WHERE price >= 400 ORDER BY fno",
		"SELECT fno FROM Fares WHERE price BETWEEN 100 AND 200 ORDER BY fno",
		"SELECT fno FROM Fares WHERE price > 100 AND price < 200 ORDER BY fno",
		"SELECT fno FROM Fares WHERE 150 <= price AND price <= 160 ORDER BY fno",
		"SELECT COUNT(*) FROM Fares WHERE price BETWEEN 0 AND 499",
		"SELECT fno FROM Fares WHERE price BETWEEN 100 AND 200 AND fno > 50 ORDER BY fno",
	}
	for _, src := range queries {
		a := query(t, plain, src)
		b := query(t, indexed, src)
		if len(a.Rows) != len(b.Rows) {
			t.Errorf("%s: %d vs %d rows", src, len(a.Rows), len(b.Rows))
			continue
		}
		for i := range a.Rows {
			if !a.Rows[i].Equal(b.Rows[i]) {
				t.Errorf("%s: row %d differs: %v vs %v", src, i, a.Rows[i], b.Rows[i])
			}
		}
	}
}

func TestRangeWithJoinAndQualifiedColumns(t *testing.T) {
	e := rangeEngine(t, true)
	res := query(t, e, `SELECT fa.fno FROM Fares fa, Flights fl
		WHERE fa.fno = fl.fno AND fa.price BETWEEN 0 AND 500`)
	// Flights has fnos 122,123,134,136 — none within Fares' 0..99.
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderedIndexSQLErrors(t *testing.T) {
	e := newEngine(t)
	if _, err := e.ExecuteSQL("CREATE ORDERED INDEX ON Flights (fno, dest)"); err == nil {
		t.Error("multi-column ordered index accepted")
	}
	if _, err := e.ExecuteSQL("CREATE ORDERED INDEX ON NoSuch (x)"); err == nil {
		t.Error("ordered index on missing table accepted")
	}
	if _, err := e.ExecuteSQL("CREATE ORDERED TABLE T (x INT)"); err == nil {
		t.Error("ORDERED TABLE accepted")
	}
}

func TestRangePushdownSkipsUnindexed(t *testing.T) {
	// Without an ordered index the range predicate still works (as a plain
	// filter over a scan).
	e := rangeEngine(t, false)
	res := query(t, e, "SELECT COUNT(*) FROM Fares WHERE price < 100")
	if res.Rows[0][0].Int() == 0 {
		t.Error("range filter broken without index")
	}
}
