package engine

import (
	"fmt"
	"testing"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// Residual predicate elimination: when an index probe exactly covers a WHERE
// conjunct, the executor skips re-evaluating it per row. These tests pin the
// safety semantics — an indexed plan must return exactly what a plain scan
// returns, including the cross-type cases where the index key encoding
// (type-tagged, Identical) disagrees with SQL `=` (numeric cross-type Equal)
// unless the probe value is first coerced to the declared column type.

// buildPair returns two engines over identical data: one fully indexed, one
// with no secondary indexes (ground truth via scan + full WHERE).
func buildPair(t *testing.T) (indexed, plain *Engine) {
	t.Helper()
	mk := func(withIndexes bool) *Engine {
		e := New(txn.NewManager(storage.NewCatalog()))
		ddl := []string{
			"CREATE TABLE Fares (id INT, dest STRING, price FLOAT, hops INT, PRIMARY KEY (id))",
			"INSERT INTO Fares VALUES (1, 'Paris', 100.0, 0), (2, 'Paris', 250.0, 1), " +
				"(3, 'Rome', 2.0, 2), (4, 'Oslo', 90.0, 0), (5, 'Rome', 180.5, 1)",
			"INSERT INTO Fares VALUES (6, 'Paris', NULL, 3)", // price NULL
		}
		if withIndexes {
			ddl = append(ddl,
				"CREATE INDEX ON Fares (dest)",
				"CREATE INDEX ON Fares (price)",
				"CREATE ORDERED INDEX ON Fares (hops)",
			)
		}
		for _, src := range ddl {
			if _, err := e.ExecuteSQL(src); err != nil {
				t.Fatalf("%s: %v", src, err)
			}
		}
		return e
	}
	return mk(true), mk(false)
}

func rowsString(r *Result) string {
	s := ""
	for _, row := range r.Rows {
		s += fmt.Sprintf("%v;", row)
	}
	return s
}

// TestResidualEliminationMatchesScan runs the same queries through the
// indexed engine (pushdown + residual elimination) and the index-free engine
// (scan + full WHERE), as both text and prepared statements. Any divergence
// means a conjunct was dropped that the probe did not exactly cover.
func TestResidualEliminationMatchesScan(t *testing.T) {
	indexed, plain := buildPair(t)
	cases := []struct {
		src    string
		params value.Tuple
	}{
		// Exact coverage: eq probe on the declared type.
		{"SELECT id FROM Fares WHERE dest = ? ORDER BY id", value.NewTuple("Paris")},
		// Cross-type eq: INT literal probing a FLOAT-keyed hash index. The
		// probe must be coerced to FLOAT or the index misses row 3 entirely
		// (a miss the residual re-check can never resurrect).
		{"SELECT id FROM Fares WHERE price = ? ORDER BY id", value.NewTuple(int64(2))},
		{"SELECT id FROM Fares WHERE price = 2 ORDER BY id", nil},
		// Cross-type range bound: FLOAT bound on an INT ordered index.
		{"SELECT id FROM Fares WHERE hops >= ? ORDER BY id", value.NewTuple(0.5)},
		// NULL parameter: SQL `=` is never true against NULL, even though the
		// hash index treats NULL keys as identical. Must return no rows.
		{"SELECT id FROM Fares WHERE price = ? ORDER BY id", value.NewTuple(value.Null)},
		// Uncoercible parameter: probe cannot be encoded as FLOAT; falls back
		// to re-checking the WHERE, which matches nothing.
		{"SELECT id FROM Fares WHERE price = ? ORDER BY id", value.NewTuple("expensive")},
		// eq wins over range: the discarded range conjunct must return to the
		// residual, or row 2 (Paris, 250.0) leaks through.
		{"SELECT id FROM Fares WHERE dest = ? AND price <= ? ORDER BY id", value.NewTuple("Paris", 150.0)},
		// Range + untouched conjunct.
		{"SELECT id FROM Fares WHERE hops BETWEEN ? AND ? AND dest = 'Rome' ORDER BY id", value.NewTuple(int64(1), int64(2))},
		// Aggregate path shares pushDownPredicates.
		{"SELECT COUNT(*) FROM Fares WHERE price = ?", value.NewTuple(int64(2))},
		{"SELECT dest, COUNT(*) FROM Fares WHERE hops >= ? GROUP BY dest ORDER BY dest", value.NewTuple(int64(1))},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s%v", tc.src, tc.params)
		stmt, err := sql.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var want, gotText, gotPrep *Result
		run := func(e *Engine) (text, prepped *Result) {
			p, err := e.Prepare(stmt)
			if err != nil {
				t.Fatalf("%s: prepare: %v", name, err)
			}
			prepped, err = p.Execute(tc.params)
			if err != nil {
				t.Fatalf("%s: prepared exec: %v", name, err)
			}
			if tc.params == nil {
				text, err = e.ExecuteSQL(tc.src)
				if err != nil {
					t.Fatalf("%s: text exec: %v", name, err)
				}
			}
			return text, prepped
		}
		_, want = run(plain)
		gotText, gotPrep = run(indexed)
		if rowsString(gotPrep) != rowsString(want) {
			t.Errorf("%s: prepared indexed = %v, scan = %v", name, gotPrep.Rows, want.Rows)
		}
		if gotText != nil && rowsString(gotText) != rowsString(want) {
			t.Errorf("%s: text indexed = %v, scan = %v", name, gotText.Rows, want.Rows)
		}
	}
}

// TestCrossTypeEqProbeUsesCoercedKey pins the bug the coercion fixed: an INT
// literal equality against a FLOAT-keyed hash index must find the row whose
// stored value compares equal under SQL `=`.
func TestCrossTypeEqProbeUsesCoercedKey(t *testing.T) {
	indexed, _ := buildPair(t)
	res, err := indexed.ExecuteSQL("SELECT id FROM Fares WHERE price = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Fatalf("INT probe against FLOAT index: rows = %v, want [[3]]", res.Rows)
	}
}
