package engine

import (
	"testing"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

func TestRedundantBoundInclusivity(t *testing.T) {
	cat := storage.NewCatalog()
	mgr := txn.NewManager(cat)
	eng := New(mgr)
	mustExec := func(q string, params ...value.Value) *Result {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var r *Result
		err = mgr.RunAtomic(func(tx *txn.Txn) error {
			var err error
			r, err = eng.ExecuteInBound(tx, stmt, value.Tuple(params))
			return err
		})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return r
	}
	mustExec("CREATE TABLE T (id INT, a INT, PRIMARY KEY(id))")
	mustExec("CREATE ORDERED INDEX ON T (a)")
	for i := 1; i <= 20; i++ {
		mustExec("INSERT INTO T VALUES (?, ?)", value.NewInt(int64(i)), value.NewInt(int64(i)))
	}
	r := mustExec("SELECT id FROM T WHERE a >= 10 AND a > 10 ORDER BY id")
	for _, row := range r.Rows {
		if row[0].Int() == 10 {
			t.Fatalf("row a=10 returned despite WHERE a > 10: %v", r.Rows)
		}
	}
	if len(r.Rows) != 10 {
		t.Fatalf("want 10 rows (11..20), got %d: %v", len(r.Rows), r.Rows)
	}
}
