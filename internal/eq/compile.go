package eq

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/sql"
	"repro/internal/value"
)

// ErrUnsafe is returned when an entangled query fails the safety analysis:
// some variable has no generator, so the coordination component could never
// ground it from the database. This is the compile-time enforcement of the
// range-restriction/origin condition the technical companion paper imposes on
// the coordinable fragment; unsafe queries are rejected at submission rather
// than parked forever.
var ErrUnsafe = errors.New("eq: unsafe entangled query")

// ErrNotEntangled is returned when compiling a statement that is not an
// EntangledSelect.
var ErrNotEntangled = errors.New("eq: statement is not an entangled query")

// ErrHasParams is returned when a parameterized entangled query is compiled
// for direct submission: without a bound vector its placeholders could never
// ground, so it must go through CompileTemplate/Bind instead.
var ErrHasParams = errors.New("eq: entangled query has parameter placeholders; compile it as a template and bind a vector")

// CompileSQL parses and compiles one entangled query. The original text is
// kept as Query.Source — re-rendering the AST per submission is pure
// allocation overhead on the arrival hot path.
func CompileSQL(src string) (*Query, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	es, ok := stmt.(*sql.EntangledSelect)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrNotEntangled, stmt)
	}
	return compileES(es, src, nil)
}

// CompileParsed compiles an already-parsed entangled query, using src (when
// non-empty) as Query.Source instead of re-rendering the AST.
func CompileParsed(es *sql.EntangledSelect, src string) (*Query, error) {
	return compileES(es, src, nil)
}

// Compile translates a parsed entangled query into the coordination IR and
// runs the safety analysis. Source is re-rendered from the AST; prefer
// CompileSQL when the original text is at hand.
func Compile(es *sql.EntangledSelect) (*Query, error) {
	return compileES(es, "", nil)
}

// compileES compiles into the coordination IR. tmpl is non-nil when
// compiling a parameterized template: parameter placeholders are then legal
// in answer tuples, constraints and inline generators, and their positions
// are recorded as patch lists on tmpl for Bind to fill. With tmpl == nil any
// placeholder is an error — an unbindable parameter would park forever.
func compileES(es *sql.EntangledSelect, src string, tmpl *Template) (*Query, error) {
	if src == "" {
		src = es.String()
	}
	q := &Query{Choose: es.Choose, Source: src}
	if q.Choose == 0 {
		q.Choose = 1
	}
	if tmpl == nil && sql.NumParams(es) > 0 {
		return nil, ErrHasParams
	}

	// Entangled queries have a handful of variables; a linear scan over the
	// accumulated list beats allocating a set per compilation.
	addVar := func(name string) {
		for _, v := range q.Vars {
			if v == name {
				return
			}
		}
		q.Vars = append(q.Vars, name)
	}
	// One visitor closure for the whole compilation, not one per conjunct.
	noteFreeVars := func(x sql.Expr) {
		if cr, ok := x.(*sql.ColumnRef); ok && cr.Table == "" {
			addVar(strings.ToLower(cr.Name))
		}
	}
	noteVars := func(terms []Term) {
		for _, t := range terms {
			if t.IsVar {
				addVar(t.Var)
			}
		}
	}

	// Head atoms from the INTO ANSWER targets.
	if len(es.Targets) == 0 {
		return nil, fmt.Errorf("eq: entangled query has no INTO ANSWER target")
	}
	allowParams := tmpl != nil
	for _, tgt := range es.Targets {
		terms, patches, err := exprsToTerms(tgt.Exprs, "answer tuple", allowParams)
		if err != nil {
			return nil, err
		}
		if len(terms) == 0 {
			return nil, fmt.Errorf("eq: empty answer tuple for relation %s", tgt.Relation)
		}
		q.Heads = append(q.Heads, NewAtom(tgt.Relation, terms...))
		if tmpl != nil {
			tmpl.headPatches = append(tmpl.headPatches, patches)
		}
		noteVars(terms)
	}

	// Split WHERE conjuncts into constraint atoms and residual predicates.
	for _, c := range sql.Conjuncts(es.Where) {
		if ia, ok := c.(*sql.InAnswer); ok {
			terms, patches, err := exprsToTerms(ia.Left, "answer constraint", allowParams)
			if err != nil {
				return nil, err
			}
			atom := NewAtom(ia.Relation, terms...)
			if ia.Neg {
				q.NegConstraints = append(q.NegConstraints, atom)
				if tmpl != nil {
					tmpl.negPatches = append(tmpl.negPatches, patches)
				}
			} else {
				q.Constraints = append(q.Constraints, atom)
				if tmpl != nil {
					tmpl.consPatches = append(tmpl.consPatches, patches)
				}
			}
			noteVars(terms)
			continue
		}
		if err := checkResidual(c); err != nil {
			return nil, err
		}
		q.Preds = append(q.Preds, c)
		sql.WalkExpr(c, noteFreeVars)
		if g, patches, ok := generatorOf(c, allowParams); ok {
			g.Pred = len(q.Preds) - 1
			q.Generators = append(q.Generators, g)
			if tmpl != nil {
				gi := len(q.Generators) - 1
				for _, gp := range patches {
					gp.gen = gi
					tmpl.genPatches = append(tmpl.genPatches, gp)
				}
			}
		}
	}

	if err := checkSafety(q); err != nil {
		return nil, err
	}
	return q, nil
}

// exprsToTerms converts answer-tuple or constraint expressions to terms.
// Only constants and bare variables are allowed — plus, when compiling a
// template, parameter placeholders, whose positions come back as a patch
// list for Bind to fill (the term itself holds a NULL placeholder until
// then). This keeps queries within the conjunctive fragment the matching
// algorithm handles.
func exprsToTerms(exprs []sql.Expr, where string, allowParams bool) ([]Term, []termPatch, error) {
	terms := make([]Term, len(exprs))
	var patches []termPatch
	for i, e := range exprs {
		switch x := e.(type) {
		case *sql.Literal:
			terms[i] = ConstTerm(x.Val)
		case *sql.Param:
			if !allowParams {
				return nil, nil, ErrHasParams
			}
			terms[i] = ConstTerm(value.Null)
			patches = append(patches, termPatch{pos: i, param: x.Idx})
		case *sql.ColumnRef:
			if x.Table != "" {
				return nil, nil, fmt.Errorf("eq: qualified name %s not allowed in %s (entangled queries have no FROM scope)", x, where)
			}
			terms[i] = VarTerm(x.Name)
		case *sql.Neg:
			lit, ok := x.X.(*sql.Literal)
			if !ok {
				return nil, nil, fmt.Errorf("eq: %s must contain only constants and variables, found %s", where, e)
			}
			v, err := negateLiteral(lit.Val)
			if err != nil {
				return nil, nil, err
			}
			terms[i] = ConstTerm(v)
		default:
			return nil, nil, fmt.Errorf("eq: %s must contain only constants and variables, found %s", where, e)
		}
	}
	return terms, patches, nil
}

func negateLiteral(v value.Value) (value.Value, error) {
	switch v.Type() {
	case value.TypeInt:
		return value.NewInt(-v.Int()), nil
	case value.TypeFloat:
		return value.NewFloat(-v.Float()), nil
	default:
		return value.Null, fmt.Errorf("eq: cannot negate %s", v.Type())
	}
}

// checkResidual validates that a residual predicate only uses unqualified
// column references (free coordination variables) at its top level; nested
// subqueries have their own scopes and may use anything.
func checkResidual(e sql.Expr) error {
	var err error
	sql.WalkExpr(e, func(x sql.Expr) {
		if cr, ok := x.(*sql.ColumnRef); ok && cr.Table != "" && err == nil {
			err = fmt.Errorf("eq: qualified reference %s outside a subquery in entangled WHERE", cr)
		}
	})
	return err
}

// freeVars lists the canonical names of free variables in a residual
// predicate (unqualified column refs at top level; subquery bodies excluded
// by WalkExpr).
func freeVars(e sql.Expr) []string {
	var out []string
	seen := make(map[string]bool)
	sql.WalkExpr(e, func(x sql.Expr) {
		if cr, ok := x.(*sql.ColumnRef); ok && cr.Table == "" {
			name := strings.ToLower(cr.Name)
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	})
	return out
}

// generatorOf recognizes candidate-producing conjuncts:
//
//	x IN (SELECT ...)            → subquery generator for x
//	(x, y) IN (SELECT ...)       → joint subquery generator
//	x = const / const = x        → singleton generator
//	x IN (c1, ..., ck)           → inline list generator
//
// When allowParams (template compilation), a parameter placeholder counts as
// a constant in the singleton and inline-list shapes: `fno = ?` generates
// for fno, with the slot recorded as a patch (gen index filled by the
// caller) so safety analysis sees the variable as generated even though the
// value arrives at bind time.
func generatorOf(e sql.Expr, allowParams bool) (Generator, []genPatch, bool) {
	switch x := e.(type) {
	case *sql.InSelect:
		if x.Neg {
			return Generator{}, nil, false
		}
		vars := make([]string, len(x.Left))
		for i, le := range x.Left {
			cr, ok := le.(*sql.ColumnRef)
			if !ok || cr.Table != "" {
				return Generator{}, nil, false
			}
			vars[i] = strings.ToLower(cr.Name)
		}
		return Generator{Vars: vars, Sub: x.Sub}, nil, true

	case *sql.Binary:
		if x.Op != sql.OpEq {
			return Generator{}, nil, false
		}
		cr, lit, pidx := asVarConst(x.L, x.R, allowParams)
		if cr == "" {
			return Generator{}, nil, false
		}
		g := Generator{Vars: []string{cr}, Tuples: []value.Tuple{{lit}}}
		if pidx >= 0 {
			return g, []genPatch{{row: 0, col: 0, param: pidx}}, true
		}
		return g, nil, true

	case *sql.InValues:
		if x.Neg {
			return Generator{}, nil, false
		}
		cr, ok := x.X.(*sql.ColumnRef)
		if !ok || cr.Table != "" {
			return Generator{}, nil, false
		}
		var tuples []value.Tuple
		var patches []genPatch
		for _, ve := range x.Vals {
			switch lit := ve.(type) {
			case *sql.Literal:
				tuples = append(tuples, value.Tuple{lit.Val})
			case *sql.Param:
				if !allowParams {
					return Generator{}, nil, false
				}
				patches = append(patches, genPatch{row: len(tuples), col: 0, param: lit.Idx})
				tuples = append(tuples, value.Tuple{value.Null})
			default:
				return Generator{}, nil, false
			}
		}
		return Generator{Vars: []string{strings.ToLower(cr.Name)}, Tuples: tuples}, patches, true
	}
	return Generator{}, nil, false
}

// asVarConst matches (var, literal-or-param) in either order, returning the
// canonical var name plus either the literal value (param -1) or the
// parameter slot. An empty name means the shape did not match.
func asVarConst(a, b sql.Expr, allowParams bool) (string, value.Value, int) {
	name := func(e sql.Expr) (string, bool) {
		cr, ok := e.(*sql.ColumnRef)
		if !ok || cr.Table != "" {
			return "", false
		}
		return strings.ToLower(cr.Name), true
	}
	try := func(v, c sql.Expr) (string, value.Value, int, bool) {
		n, ok := name(v)
		if !ok {
			return "", value.Null, -1, false
		}
		switch x := c.(type) {
		case *sql.Literal:
			return n, x.Val, -1, true
		case *sql.Param:
			if allowParams {
				return n, value.Null, x.Idx, true
			}
		}
		return "", value.Null, -1, false
	}
	if n, v, p, ok := try(a, b); ok {
		return n, v, p
	}
	if n, v, p, ok := try(b, a); ok {
		return n, v, p
	}
	return "", value.Null, -1
}

// checkSafety enforces that every variable has at least one generator, so
// grounding always has a finite candidate set to draw from.
func checkSafety(q *Query) error {
	var missing []string
	for _, v := range q.Vars {
		generated := false
	scan:
		for _, g := range q.Generators {
			for _, gv := range g.Vars {
				if gv == v {
					generated = true
					break scan
				}
			}
		}
		if !generated {
			missing = append(missing, v)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%w: variable(s) %s have no generator (bind each via 'x IN (SELECT ...)', 'x = const', or 'x IN (...)')",
			ErrUnsafe, strings.Join(missing, ", "))
	}
	return nil
}
