package eq

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sql"
	"repro/internal/value"
)

// kramer is the paper's §2.1 query.
const kramer = `SELECT 'Kramer', fno INTO ANSWER Reservation
WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
AND ('Jerry', fno) IN ANSWER Reservation
CHOOSE 1`

func compile(t *testing.T, src string) *Query {
	t.Helper()
	q, err := CompileSQL(src)
	if err != nil {
		t.Fatalf("CompileSQL(%q): %v", src, err)
	}
	return q
}

func TestCompilePaperQuery(t *testing.T) {
	q := compile(t, kramer)
	if len(q.Heads) != 1 {
		t.Fatalf("heads = %v", q.Heads)
	}
	h := q.Heads[0]
	if h.Relation != "reservation" || h.Arity() != 2 {
		t.Errorf("head = %v", h)
	}
	if h.Terms[0].IsVar || h.Terms[0].Const.Str() != "Kramer" {
		t.Errorf("head term 0 = %v", h.Terms[0])
	}
	if !h.Terms[1].IsVar || h.Terms[1].Var != "fno" {
		t.Errorf("head term 1 = %v", h.Terms[1])
	}
	if len(q.Constraints) != 1 {
		t.Fatalf("constraints = %v", q.Constraints)
	}
	c := q.Constraints[0]
	if c.Terms[0].Const.Str() != "Jerry" || c.Terms[1].Var != "fno" {
		t.Errorf("constraint = %v", c)
	}
	if len(q.Preds) != 1 || len(q.Generators) != 1 {
		t.Fatalf("preds = %v, gens = %v", q.Preds, q.Generators)
	}
	g := q.Generators[0]
	if len(g.Vars) != 1 || g.Vars[0] != "fno" || g.Sub == nil {
		t.Errorf("generator = %v", g)
	}
	if q.Choose != 1 {
		t.Errorf("choose = %d", q.Choose)
	}
	if len(q.Vars) != 1 || q.Vars[0] != "fno" {
		t.Errorf("vars = %v", q.Vars)
	}
}

func TestCompileVariableCaseInsensitive(t *testing.T) {
	q := compile(t, "SELECT 'K', FNO INTO ANSWER R WHERE fno IN (SELECT fno FROM F) AND ('J', Fno) IN ANSWER R")
	if len(q.Vars) != 1 {
		t.Errorf("vars = %v (case-insensitive canonicalization failed)", q.Vars)
	}
}

func TestCompileMultiTarget(t *testing.T) {
	q := compile(t, `SELECT ('J', fno) INTO ANSWER R, ('J', hno) INTO ANSWER H
		WHERE fno IN (SELECT fno FROM Flights) AND hno IN (SELECT hno FROM Hotels)
		AND ('K', fno) IN ANSWER R AND ('K', hno) IN ANSWER H`)
	if len(q.Heads) != 2 || len(q.Constraints) != 2 || len(q.Generators) != 2 {
		t.Fatalf("%s", q)
	}
	rels := q.AnswerRelations()
	if len(rels) != 2 || rels[0] != "r" || rels[1] != "h" {
		t.Errorf("answer relations = %v", rels)
	}
	base := q.BaseTables()
	if len(base) != 2 || base[0] != "flights" || base[1] != "hotels" {
		t.Errorf("base tables = %v", base)
	}
}

func TestCompileGeneratorKinds(t *testing.T) {
	q := compile(t, `SELECT 'u', x, y, z INTO ANSWER R
		WHERE x IN (SELECT a FROM T) AND y = 7 AND z IN (1, 2, 3)`)
	if len(q.Generators) != 3 {
		t.Fatalf("generators = %v", q.Generators)
	}
	if q.Generators[1].Tuples[0][0].Int() != 7 {
		t.Errorf("const generator = %v", q.Generators[1])
	}
	if len(q.Generators[2].Tuples) != 3 {
		t.Errorf("list generator = %v", q.Generators[2])
	}
}

func TestCompileJointGenerator(t *testing.T) {
	q := compile(t, `SELECT 'u', fno, hno INTO ANSWER R
		WHERE (fno, hno) IN (SELECT f, h FROM Packages)`)
	if len(q.Generators) != 1 || len(q.Generators[0].Vars) != 2 {
		t.Fatalf("generators = %v", q.Generators)
	}
}

func TestCompileReversedConstEquality(t *testing.T) {
	q := compile(t, "SELECT 'u', x INTO ANSWER R WHERE 5 = x")
	if len(q.Generators) != 1 || q.Generators[0].Tuples[0][0].Int() != 5 {
		t.Fatalf("generators = %v", q.Generators)
	}
}

func TestCompileNegativeLiteralInHead(t *testing.T) {
	q := compile(t, "SELECT -3, x INTO ANSWER R WHERE x = 1")
	if q.Heads[0].Terms[0].Const.Int() != -3 {
		t.Errorf("head = %v", q.Heads[0])
	}
}

func TestCompileNegConstraint(t *testing.T) {
	q := compile(t, `SELECT 'u', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights)
		AND ('rival', fno) NOT IN ANSWER R`)
	if len(q.NegConstraints) != 1 || len(q.Constraints) != 0 {
		t.Fatalf("%+v", q)
	}
}

func TestCompileUnsafeRejected(t *testing.T) {
	unsafe := []string{
		// fno never generated: only appears in head and constraint.
		"SELECT 'K', fno INTO ANSWER R WHERE ('J', fno) IN ANSWER R",
		// x generated, y only filtered.
		"SELECT 'K', x, y INTO ANSWER R WHERE x IN (SELECT a FROM T) AND y < 5",
		// NOT IN subquery is not a generator.
		"SELECT 'K', x INTO ANSWER R WHERE x NOT IN (SELECT a FROM T)",
		// no WHERE at all but a variable head.
		"SELECT 'K', fno INTO ANSWER R",
	}
	for _, src := range unsafe {
		if _, err := CompileSQL(src); !errors.Is(err, ErrUnsafe) {
			t.Errorf("%q: err = %v, want ErrUnsafe", src, err)
		}
	}
}

func TestCompileGroundQuerySafe(t *testing.T) {
	// All-constant query is trivially safe.
	q := compile(t, "SELECT 'K', 122 INTO ANSWER R WHERE ('J', 122) IN ANSWER R")
	if len(q.Vars) != 0 {
		t.Errorf("vars = %v", q.Vars)
	}
	if q.Heads[0].Ground() != true {
		t.Error("head should be ground")
	}
	tup := q.Heads[0].GroundTuple()
	if !tup.Equal(value.NewTuple("K", 122)) {
		t.Errorf("ground tuple = %v", tup)
	}
}

func TestCompileRejectsBadShapes(t *testing.T) {
	bad := []string{
		// arithmetic in answer tuple
		"SELECT 'K', fno + 1 INTO ANSWER R WHERE fno IN (SELECT f FROM T)",
		// qualified name in answer tuple
		"SELECT 'K', t.fno INTO ANSWER R WHERE fno IN (SELECT f FROM T)",
		// qualified name in residual predicate
		"SELECT 'K', fno INTO ANSWER R WHERE f.fno IN (SELECT f FROM T)",
		// negated non-literal in head
		"SELECT -fno, 'K' INTO ANSWER R WHERE fno IN (SELECT f FROM T)",
		// negated string
		"SELECT -'x', fno INTO ANSWER R WHERE fno IN (SELECT f FROM T)",
	}
	for _, src := range bad {
		if _, err := CompileSQL(src); err == nil {
			t.Errorf("%q: expected compile error", src)
		}
	}
}

func TestCompileNotEntangled(t *testing.T) {
	if _, err := CompileSQL("SELECT fno FROM Flights"); !errors.Is(err, ErrNotEntangled) {
		t.Errorf("err = %v", err)
	}
	if _, err := CompileSQL("SELEC"); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestSelfSatisfiable(t *testing.T) {
	// Kramer's query needs Jerry: not self-satisfiable.
	if compile(t, kramer).SelfSatisfiable() {
		t.Error("Kramer's query must not be self-satisfiable")
	}
	// A reflexive query that constrains its own contribution is.
	self := compile(t, `SELECT 'K', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights) AND ('K', fno) IN ANSWER R`)
	if !self.SelfSatisfiable() {
		t.Error("reflexive query should be self-satisfiable")
	}
}

func TestQueryString(t *testing.T) {
	s := compile(t, kramer).String()
	for _, want := range []string{"Reservation('Kramer', fno)", "<-", "Reservation('Jerry', fno)", "IN (SELECT"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestHasVar(t *testing.T) {
	q := compile(t, kramer)
	if !q.HasVar("fno") || !q.HasVar("FNO") || q.HasVar("hno") {
		t.Error("HasVar")
	}
}

func TestAtomHelpers(t *testing.T) {
	a := NewAtom("Reservation", ConstTerm(value.NewString("K")), VarTerm("Fno"), VarTerm("fno"))
	if got := a.Vars(); len(got) != 1 || got[0] != "fno" {
		t.Errorf("Vars = %v", got)
	}
	if a.Ground() {
		t.Error("atom with vars reported ground")
	}
	if a.String() != "Reservation('K', fno, fno)" {
		t.Errorf("String = %q", a.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("GroundTuple on non-ground atom must panic")
		}
	}()
	a.GroundTuple()
}

func TestUnifiableQuickCheck(t *testing.T) {
	a := NewAtom("R", ConstTerm(value.NewString("J")), VarTerm("x"))
	b := NewAtom("R", VarTerm("y"), ConstTerm(value.NewInt(7)))
	c := NewAtom("R", ConstTerm(value.NewString("K")), VarTerm("x"))
	d := NewAtom("S", ConstTerm(value.NewString("J")), VarTerm("x"))
	e := NewAtom("R", ConstTerm(value.NewString("J")))
	if !Unifiable(a, b) {
		t.Error("a/b should unify")
	}
	if Unifiable(a, c) {
		t.Error("a/c clash on constants")
	}
	if Unifiable(a, d) {
		t.Error("different relations")
	}
	if Unifiable(a, e) {
		t.Error("different arity")
	}
}

func TestCompileFromParsedStatement(t *testing.T) {
	stmt, err := sql.Parse(kramer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(stmt.(*sql.EntangledSelect)); err != nil {
		t.Fatal(err)
	}
}
