package eq

import (
	"fmt"
	"strings"
)

// Explain renders the compiler's analysis of an entangled query — the
// "representation in the system" the demo's admin interface shows (§3.2):
// head atoms, answer constraints, generators with their candidate sources,
// residual filters, and the safety/self-satisfiability classification.
func Explain(q *Query) string {
	var b strings.Builder
	b.WriteString("entangled query\n")
	fmt.Fprintf(&b, "  choose: %d answer(s)\n", q.Choose)

	b.WriteString("  contributes (head atoms):\n")
	for _, h := range q.Heads {
		fmt.Fprintf(&b, "    %s\n", h)
	}
	if len(q.Constraints) > 0 {
		b.WriteString("  requires (answer constraints):\n")
		for _, c := range q.Constraints {
			fmt.Fprintf(&b, "    %s\n", c)
		}
	} else {
		b.WriteString("  requires: nothing (no coordination constraints)\n")
	}
	if len(q.NegConstraints) > 0 {
		b.WriteString("  excludes (negative constraints):\n")
		for _, c := range q.NegConstraints {
			fmt.Fprintf(&b, "    NOT %s\n", c)
		}
	}
	if len(q.Vars) > 0 {
		fmt.Fprintf(&b, "  variables: %s\n", strings.Join(q.Vars, ", "))
	} else {
		b.WriteString("  variables: none (ground query)\n")
	}
	if len(q.Generators) > 0 {
		b.WriteString("  generators (candidate sources):\n")
		for _, g := range q.Generators {
			fmt.Fprintf(&b, "    %s\n", g)
		}
	}
	filters := 0
	for _, p := range q.Preds {
		if _, _, isGen := generatorOf(p, true); !isGen {
			filters++
		}
	}
	fmt.Fprintf(&b, "  residual predicates: %d (%d generator(s), %d filter-only)\n",
		len(q.Preds), len(q.Generators), filters)
	if bt := q.BaseTables(); len(bt) > 0 {
		fmt.Fprintf(&b, "  base tables read: %s\n", strings.Join(bt, ", "))
	}
	if q.SelfSatisfiable() {
		b.WriteString("  matching: self-satisfiable — answerable without partners\n")
	} else {
		b.WriteString("  matching: needs partner queries (or installed answers) to cover its constraints\n")
	}
	return b.String()
}
