package eq

import (
	"strings"
	"testing"
)

func TestExplainPaperQuery(t *testing.T) {
	q := compile(t, kramer)
	got := Explain(q)
	for _, want := range []string{
		"choose: 1 answer(s)",
		"Reservation('Kramer', fno)",
		"Reservation('Jerry', fno)",
		"variables: fno",
		"(fno) IN (SELECT fno FROM Flights",
		"base tables read: flights",
		"needs partner queries",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain missing %q:\n%s", want, got)
		}
	}
}

func TestExplainSelfSatisfiable(t *testing.T) {
	q := compile(t, `SELECT 'Solo', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights) AND ('Solo', fno) IN ANSWER R`)
	if !strings.Contains(Explain(q), "self-satisfiable") {
		t.Error("self-satisfiable classification missing")
	}
}

func TestExplainGroundAndNegative(t *testing.T) {
	q := compile(t, `SELECT 'K', 122 INTO ANSWER R
		WHERE ('Rival', 122) NOT IN ANSWER R`)
	got := Explain(q)
	for _, want := range []string{"variables: none (ground query)", "NOT R('Rival', 122)"} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain missing %q:\n%s", want, got)
		}
	}
}

func TestExplainFilterCount(t *testing.T) {
	q := compile(t, `SELECT 'K', x INTO ANSWER R
		WHERE x IN (SELECT a FROM T) AND x < 100 AND x <> 13`)
	if !strings.Contains(Explain(q), "residual predicates: 3 (1 generator(s), 2 filter-only)") {
		t.Errorf("filter accounting wrong:\n%s", Explain(q))
	}
}

func TestExplainNoConstraints(t *testing.T) {
	q := compile(t, "SELECT 'K', x INTO ANSWER R WHERE x = 5")
	if !strings.Contains(Explain(q), "requires: nothing") {
		t.Error("constraint-free classification missing")
	}
}
