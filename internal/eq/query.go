package eq

import (
	"strings"

	"repro/internal/sql"
	"repro/internal/value"
)

// Generator is a conjunct that can enumerate candidate values for one or more
// variables: `x IN (SELECT ...)`, `x = const`, or `x IN (c1, ..., ck)`. The
// coordination component evaluates generators through the execution engine to
// obtain the candidate sets it grounds matches from.
type Generator struct {
	Vars   []string      // variables produced, positionally
	Sub    *sql.Select   // non-nil: evaluate this subquery for candidates
	Tuples []value.Tuple // non-nil: inline candidate tuples
	// Pred is the index into Query.Preds of the conjunct this generator was
	// derived from. A generator's candidate set IS its predicate's satisfying
	// set, so once the coordinator has evaluated the generator it can check
	// the predicate by membership instead of re-running the subquery.
	Pred int
}

// String summarizes the generator.
func (g Generator) String() string {
	if g.Sub != nil {
		return "(" + strings.Join(g.Vars, ", ") + ") IN (" + g.Sub.String() + ")"
	}
	vals := make([]string, len(g.Tuples))
	for i, t := range g.Tuples {
		vals[i] = t.String()
	}
	return "(" + strings.Join(g.Vars, ", ") + ") IN {" + strings.Join(vals, ", ") + "}"
}

// Query is a compiled entangled query: the intermediate representation the
// coordination component works on.
type Query struct {
	// Heads are the answer atoms the query contributes INTO answer relations.
	Heads []Atom
	// Constraints are the positive answer constraints: tuples that must be
	// present in the shared answer relations for this query to be answered.
	Constraints []Atom
	// NegConstraints are NOT IN ANSWER exclusions (an extension; the demo
	// paper's examples use only positive constraints).
	NegConstraints []Atom
	// Preds are the residual relational predicates (every non-answer
	// conjunct of WHERE), evaluated by the execution engine at grounding.
	Preds []sql.Expr
	// Generators are the candidate-producing subset of Preds, one entry per
	// generating conjunct.
	Generators []Generator
	// Vars lists all distinct variables, in first-occurrence order.
	Vars []string
	// Choose is the number of answer tuples requested (CHOOSE n; default 1).
	Choose int
	// Source is the SQL text the query was compiled from (diagnostics).
	Source string
	// Params is the bound parameter vector of a template-instantiated query
	// (nil for directly compiled queries). Atom slots were substituted at
	// bind time; parameters inside residual predicates stay symbolic in the
	// shared ASTs and the engine resolves them against this vector during
	// grounding.
	Params value.Tuple
}

// String renders the query in logic notation, e.g.
// "Reservation('Kramer', fno) ← Reservation('Jerry', fno), fno IN (...)".
func (q *Query) String() string {
	heads := make([]string, len(q.Heads))
	for i, h := range q.Heads {
		heads[i] = h.String()
	}
	var body []string
	for _, c := range q.Constraints {
		body = append(body, c.String())
	}
	for _, c := range q.NegConstraints {
		body = append(body, "NOT "+c.String())
	}
	for _, p := range q.Preds {
		body = append(body, p.String())
	}
	s := strings.Join(heads, " & ")
	if len(body) > 0 {
		s += " <- " + strings.Join(body, ", ")
	}
	return s
}

// HasVar reports whether name (canonicalized) is a variable of the query.
func (q *Query) HasVar(name string) bool {
	name = strings.ToLower(name)
	for _, v := range q.Vars {
		if v == name {
			return true
		}
	}
	return false
}

// AnswerRelations returns the distinct relations the query contributes to or
// constrains, canonicalized (Atom.Relation is already lower-case).
func (q *Query) AnswerRelations() []string {
	out := make([]string, 0, len(q.Heads)+len(q.Constraints)+len(q.NegConstraints))
	for _, h := range q.Heads {
		out = appendUniqueStr(out, h.Relation)
	}
	for _, c := range q.Constraints {
		out = appendUniqueStr(out, c.Relation)
	}
	for _, c := range q.NegConstraints {
		out = appendUniqueStr(out, c.Relation)
	}
	return out
}

// appendUniqueStr appends s unless present; relation footprints are tiny, so
// a linear scan beats allocating a set.
func appendUniqueStr(out []string, s string) []string {
	for _, x := range out {
		if x == s {
			return out
		}
	}
	return append(out, s)
}

// BaseTables returns the distinct base (database) tables referenced by the
// query's residual predicates — the tables whose updates can unblock it.
func (q *Query) BaseTables() []string {
	seen := make(map[string]bool)
	var out []string
	var fromSelect func(s *sql.Select)
	var fromExpr func(e sql.Expr)
	fromSelect = func(s *sql.Select) {
		for _, f := range s.From {
			key := strings.ToLower(f.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
		fromExpr(s.Where)
	}
	fromExpr = func(e sql.Expr) {
		sql.WalkExpr(e, func(x sql.Expr) {
			switch sq := x.(type) {
			case *sql.InSelect:
				fromSelect(sq.Sub)
			case *sql.Subquery:
				fromSelect(sq.Sel)
			}
		})
	}
	for _, p := range q.Preds {
		fromExpr(p)
	}
	return out
}

// SelfSatisfiable reports whether every constraint atom could unify with one
// of the query's own head atoms — i.e. the query could in principle be
// answered alone. Kramer's query is NOT self-satisfiable ('Kramer' ≠ 'Jerry'
// in position 0), which is exactly why it must wait for Jerry's.
func (q *Query) SelfSatisfiable() bool {
	for _, c := range q.Constraints {
		ok := false
		for _, h := range q.Heads {
			if unifiable(c, h) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// unifiable is a cheap local check: same relation and arity, and no
// const-vs-const clash position-by-position.
func unifiable(a, b Atom) bool {
	if a.Relation != b.Relation || a.Arity() != b.Arity() {
		return false
	}
	for i := range a.Terms {
		ta, tb := a.Terms[i], b.Terms[i]
		if !ta.IsVar && !tb.IsVar && !ta.Const.Identical(tb.Const) {
			return false
		}
	}
	return true
}

// Unifiable reports whether atoms a and b could match under some
// substitution, ignoring variable bindings (used by the candidate index).
func Unifiable(a, b Atom) bool { return unifiable(a, b) }
