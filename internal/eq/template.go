package eq

import (
	"fmt"

	"repro/internal/sql"
	"repro/internal/value"
)

// Template is a parameterized entangled query compiled once: the coordination
// IR — head/constraint atoms, residual predicates, generators, safety
// analysis — is built a single time, and Bind stamps out a submittable *Query
// per arrival by substituting the parameter vector into the few term slots
// that reference it. Everything else (predicate ASTs, generator subqueries,
// variable lists) is shared by every bound query, so a repeated submission
// skips both sql.Parse and the compiler entirely.
//
// Parameters inside residual predicates (including subquery bodies, e.g.
// `fno IN (SELECT fno FROM Flights WHERE dest = $1)`) are not substituted at
// all: the bound Query carries its vector in Query.Params and the execution
// engine resolves them during grounding — and pushes them down to index
// lookups exactly like literals.
//
// A Template is immutable after compilation and safe for concurrent Bind.
type Template struct {
	src  string
	n    int
	base Query

	// Patch lists: which atom term positions take which parameter slot.
	headPatches [][]termPatch // parallel to base.Heads
	consPatches [][]termPatch // parallel to base.Constraints
	negPatches  [][]termPatch // parallel to base.NegConstraints
	genPatches  []genPatch    // inline-tuple generator slots
	// cloneGens: generators must be deep-copied per bind — either because a
	// tuple slot is patched, or because the grounder shuffles inline tuple
	// slices in place (CHOOSE nondeterminism), which must not race across
	// concurrently bound queries.
	cloneGens bool
}

// termPatch routes parameter slot param into term position pos of one atom.
type termPatch struct{ pos, param int }

// genPatch routes parameter slot param into row/col of generator gen's
// inline tuples.
type genPatch struct{ gen, row, col, param int }

// CompileTemplate compiles a parsed entangled query with parameter
// placeholders into a reusable template. src (when non-empty) becomes the
// Source of every bound query.
func CompileTemplate(es *sql.EntangledSelect, src string) (*Template, error) {
	t := &Template{src: src, n: sql.NumParams(es)}
	q, err := compileES(es, src, t)
	if err != nil {
		return nil, err
	}
	t.base = *q
	for _, g := range t.base.Generators {
		if g.Tuples != nil {
			t.cloneGens = true
			break
		}
	}
	return t, nil
}

// CompileTemplateSQL parses and compiles one parameterized entangled query.
func CompileTemplateSQL(src string) (*Template, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	es, ok := stmt.(*sql.EntangledSelect)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrNotEntangled, stmt)
	}
	return CompileTemplate(es, src)
}

// NumParams returns the parameter-vector length Bind expects.
func (t *Template) NumParams() int { return t.n }

// Source returns the SQL text the template was compiled from.
func (t *Template) Source() string { return t.base.Source }

// Bind materializes one submittable query from the template: parameter slots
// in head/constraint atoms and inline generators become constants, and the
// vector rides along in Query.Params for the engine to resolve residual-
// predicate parameters during grounding.
func (t *Template) Bind(params value.Tuple) (*Query, error) {
	if len(params) < t.n {
		return nil, fmt.Errorf("eq: template needs %d parameter(s), got %d", t.n, len(params))
	}
	q := new(Query)
	*q = t.base // shares Preds, Vars, subquery generators, Source
	q.Params = params
	q.Heads = patchAtoms(t.base.Heads, t.headPatches, params)
	q.Constraints = patchAtoms(t.base.Constraints, t.consPatches, params)
	q.NegConstraints = patchAtoms(t.base.NegConstraints, t.negPatches, params)
	if t.cloneGens {
		gens := make([]Generator, len(t.base.Generators))
		copy(gens, t.base.Generators)
		for i := range gens {
			if gens[i].Tuples == nil {
				continue
			}
			// Fresh slice header per bind: the grounder shuffles candidate
			// slices in place, and concurrent binds must not share one.
			tt := make([]value.Tuple, len(gens[i].Tuples))
			copy(tt, gens[i].Tuples)
			gens[i].Tuples = tt
		}
		for _, gp := range t.genPatches {
			row := gens[gp.gen].Tuples[gp.row]
			fresh := make(value.Tuple, len(row))
			copy(fresh, row)
			fresh[gp.col] = params[gp.param]
			gens[gp.gen].Tuples[gp.row] = fresh
		}
		q.Generators = gens
	}
	return q, nil
}

// patchAtoms returns atoms with the patched term positions replaced by
// parameter values — sharing the input slice (and every Terms slice) when no
// atom is patched.
func patchAtoms(atoms []Atom, patches [][]termPatch, params value.Tuple) []Atom {
	any := false
	for _, ps := range patches {
		if len(ps) > 0 {
			any = true
			break
		}
	}
	if !any {
		return atoms
	}
	out := make([]Atom, len(atoms))
	copy(out, atoms)
	for i, ps := range patches {
		if len(ps) == 0 {
			continue
		}
		terms := make([]Term, len(out[i].Terms))
		copy(terms, out[i].Terms)
		for _, p := range ps {
			terms[p.pos] = ConstTerm(params[p.param])
		}
		out[i].Terms = terms
	}
	return out
}
