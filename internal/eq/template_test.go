package eq

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/value"
)

const pairTemplate = `SELECT ?, fno INTO ANSWER Reservation
WHERE fno IN (SELECT fno FROM Flights WHERE dest = ?)
AND (?, fno) IN ANSWER Reservation
CHOOSE 1`

func mustTemplate(t *testing.T, src string) *Template {
	t.Helper()
	tmpl, err := CompileTemplateSQL(src)
	if err != nil {
		t.Fatalf("CompileTemplateSQL(%q): %v", src, err)
	}
	return tmpl
}

func TestTemplateBindMatchesDirectCompile(t *testing.T) {
	tmpl := mustTemplate(t, pairTemplate)
	if tmpl.NumParams() != 3 {
		t.Fatalf("NumParams = %d, want 3", tmpl.NumParams())
	}
	bound, err := tmpl.Bind(value.NewTuple("Kramer", "Paris", "Jerry"))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := CompileSQL(`SELECT 'Kramer', fno INTO ANSWER Reservation
WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris')
AND ('Jerry', fno) IN ANSWER Reservation
CHOOSE 1`)
	if err != nil {
		t.Fatal(err)
	}
	// Heads and constraints must be term-for-term identical to the direct
	// compilation (the subquery's dest stays a symbolic param — resolved by
	// the engine via Query.Params — so Preds are not compared).
	if len(bound.Heads) != len(direct.Heads) {
		t.Fatalf("heads: %d vs %d", len(bound.Heads), len(direct.Heads))
	}
	for i := range bound.Heads {
		for j, term := range bound.Heads[i].Terms {
			if !term.Equal(direct.Heads[i].Terms[j]) {
				t.Fatalf("head %d term %d: %s vs %s", i, j, term, direct.Heads[i].Terms[j])
			}
		}
	}
	for i := range bound.Constraints {
		for j, term := range bound.Constraints[i].Terms {
			if !term.Equal(direct.Constraints[i].Terms[j]) {
				t.Fatalf("constraint %d term %d: %s vs %s", i, j, term, direct.Constraints[i].Terms[j])
			}
		}
	}
	if len(bound.Params) != 3 {
		t.Fatal("bound query lost its parameter vector")
	}
}

// TestTemplateBindShares: binds must share the compiled skeleton (preds,
// vars, subquery generators) and not leak one bind's constants into another.
func TestTemplateBindShares(t *testing.T) {
	tmpl := mustTemplate(t, pairTemplate)
	q1, err := tmpl.Bind(value.NewTuple("a1", "Paris", "b1"))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := tmpl.Bind(value.NewTuple("a2", "Rome", "b2"))
	if err != nil {
		t.Fatal(err)
	}
	if &q1.Preds[0] != &q2.Preds[0] {
		t.Fatal("binds do not share the predicate ASTs")
	}
	if q1.Heads[0].Terms[0].Const.Str() != "a1" || q2.Heads[0].Terms[0].Const.Str() != "a2" {
		t.Fatalf("cross-bind contamination: %s vs %s", q1.Heads[0], q2.Heads[0])
	}
	if q1.Constraints[0].Terms[0].Const.Str() != "b1" || q2.Constraints[0].Terms[0].Const.Str() != "b2" {
		t.Fatalf("cross-bind constraint contamination: %s vs %s", q1.Constraints[0], q2.Constraints[0])
	}
}

// TestTemplateParamGenerator: `fno = ?` must count as a generator for fno
// (safety) and materialize the bound constant; inline generator tuple slices
// must be per-bind (the grounder shuffles them in place).
func TestTemplateParamGenerator(t *testing.T) {
	tmpl := mustTemplate(t, "SELECT ?, fno INTO ANSWER Reservation WHERE fno = ? CHOOSE 1")
	q1, err := tmpl.Bind(value.NewTuple("u1", int64(122)))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := tmpl.Bind(value.NewTuple("u2", int64(123)))
	if err != nil {
		t.Fatal(err)
	}
	if len(q1.Generators) != 1 || len(q1.Generators[0].Tuples) != 1 {
		t.Fatalf("generators: %+v", q1.Generators)
	}
	if got := q1.Generators[0].Tuples[0][0].Int(); got != 122 {
		t.Fatalf("bound generator tuple = %d, want 122", got)
	}
	if got := q2.Generators[0].Tuples[0][0].Int(); got != 123 {
		t.Fatalf("bound generator tuple = %d, want 123", got)
	}
	// Distinct backing: mutating one bind's candidate slice (as the
	// grounder's shuffle does) must not touch the other's.
	q1.Generators[0].Tuples[0] = value.Tuple{value.NewInt(999)}
	if q2.Generators[0].Tuples[0][0].Int() != 123 {
		t.Fatal("binds share inline generator tuple storage")
	}

	// IN-list with a mix of params and literals.
	tmpl2 := mustTemplate(t, "SELECT ?, fno INTO ANSWER Reservation WHERE fno IN (1, ?, 3) CHOOSE 1")
	q, err := tmpl2.Bind(value.NewTuple("u", int64(2)))
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, tup := range q.Generators[0].Tuples {
		got = append(got, tup[0].Int())
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("IN-list generator = %v", got)
	}
}

func TestTemplateSafety(t *testing.T) {
	// A variable generated ONLY through a param equality is safe...
	if _, err := CompileTemplateSQL("SELECT ?, fno INTO ANSWER R WHERE fno = ? CHOOSE 1"); err != nil {
		t.Fatalf("param-generated variable rejected: %v", err)
	}
	// ...but a variable with no generator is still unsafe.
	if _, err := CompileTemplateSQL("SELECT ?, fno INTO ANSWER R WHERE fno > ? CHOOSE 1"); !errors.Is(err, ErrUnsafe) {
		t.Fatalf("want ErrUnsafe, got %v", err)
	}
}

func TestTemplateArity(t *testing.T) {
	tmpl := mustTemplate(t, pairTemplate)
	if _, err := tmpl.Bind(value.NewTuple("only", "two")); err == nil {
		t.Fatal("short vector accepted")
	}
}

// TestDirectCompileRejectsParams: the non-template compile paths must refuse
// placeholders — an unbindable parameter would park the query forever.
func TestDirectCompileRejectsParams(t *testing.T) {
	for _, src := range []string{
		pairTemplate, // params in head/constraint
		"SELECT 'u', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F WHERE dest = ?) CHOOSE 1", // param only inside a pred
	} {
		if _, err := CompileSQL(src); !errors.Is(err, ErrHasParams) {
			t.Fatalf("CompileSQL(%q): want ErrHasParams, got %v", src, err)
		}
	}
}

// TestTemplateConcurrentBind: one template, many concurrent binds — shared
// skeleton, distinct atoms; run under -race this pins the immutability
// contract.
func TestTemplateConcurrentBind(t *testing.T) {
	tmpl := mustTemplate(t, pairTemplate)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				self := fmt.Sprintf("u%d_%d", w, i)
				q, err := tmpl.Bind(value.NewTuple(self, "Paris", "partner"))
				if err != nil {
					errs <- err
					return
				}
				if q.Heads[0].Terms[0].Const.Str() != self {
					errs <- fmt.Errorf("bind corrupted: %s", q.Heads[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTemplateLogicRendering: a bound query renders like its direct twin
// (modulo the symbolic subquery param), so diagnostics stay readable.
func TestTemplateLogicRendering(t *testing.T) {
	tmpl := mustTemplate(t, pairTemplate)
	q, err := tmpl.Bind(value.NewTuple("Kramer", "Paris", "Jerry"))
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, "'Kramer'") || !strings.Contains(s, "'Jerry'") {
		t.Fatalf("bound logic rendering lost constants: %s", s)
	}
}
