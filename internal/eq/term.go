// Package eq defines the intermediate representation of entangled queries —
// the form the paper's query compiler produces for the coordination
// component (Figure 2) — and the compiler from parsed SQL into it.
//
// An entangled query compiles to:
//
//   - head atoms: its contributions INTO the shared answer relations,
//     e.g. Reservation('Kramer', fno);
//   - constraint atoms: the answer constraints it imposes on the system-wide
//     answer relations, e.g. Reservation('Jerry', fno);
//   - residual predicates: ordinary relational conditions to be grounded by
//     the execution engine, e.g. fno IN (SELECT fno FROM Flights WHERE
//     dest='Paris').
//
// Terms in atoms are constants or variables. Coordination happens when the
// coordination component unifies one query's constraint atoms with other
// queries' head atoms (Figure 1b) and the execution engine finds a grounding
// of the merged variables that satisfies every residual predicate.
package eq

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Term is a constant or a variable inside an atom.
type Term struct {
	Const value.Value // valid when !IsVar
	Var   string      // canonical (lower-case) variable name when IsVar
	IsVar bool
}

// ConstTerm builds a constant term.
func ConstTerm(v value.Value) Term { return Term{Const: v} }

// VarTerm builds a variable term; names are canonicalized to lower case, as
// SQL identifiers are case-insensitive.
func VarTerm(name string) Term { return Term{Var: strings.ToLower(name), IsVar: true} }

// String renders the term: variables as their name, constants as literals.
func (t Term) String() string {
	if t.IsVar {
		return t.Var
	}
	return t.Const.String()
}

// Equal reports structural equality of terms.
func (t Term) Equal(o Term) bool {
	if t.IsVar != o.IsVar {
		return false
	}
	if t.IsVar {
		return t.Var == o.Var
	}
	return t.Const.Identical(o.Const)
}

// Atom is a relation name applied to terms, e.g. Reservation('Jerry', fno).
type Atom struct {
	Relation string // canonical (lower-case) relation name
	Display  string // original spelling, for printing
	Terms    []Term
}

// NewAtom builds an atom, canonicalizing the relation name.
func NewAtom(relation string, terms ...Term) Atom {
	return Atom{Relation: strings.ToLower(relation), Display: relation, Terms: terms}
}

// Arity returns the number of terms.
func (a Atom) Arity() int { return len(a.Terms) }

// String renders the atom in logic notation.
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	name := a.Display
	if name == "" {
		name = a.Relation
	}
	return name + "(" + strings.Join(parts, ", ") + ")"
}

// Vars returns the distinct variable names in the atom, in first-occurrence
// order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Terms {
		if t.IsVar && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// Ground reports whether the atom contains no variables.
func (a Atom) Ground() bool {
	for _, t := range a.Terms {
		if t.IsVar {
			return false
		}
	}
	return true
}

// GroundTuple converts a ground atom's terms to a tuple. It panics if the
// atom is not ground.
func (a Atom) GroundTuple() value.Tuple {
	tup := make(value.Tuple, len(a.Terms))
	for i, t := range a.Terms {
		if t.IsVar {
			panic(fmt.Sprintf("eq: GroundTuple on non-ground atom %s", a))
		}
		tup[i] = t.Const
	}
	return tup
}
