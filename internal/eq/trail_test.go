package eq

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/value"
)

// trailVars is the variable universe the random-op drivers draw from: a few
// query instances with overlapping variable names, like a real match set.
func trailVars() []ScopedVar {
	var out []ScopedVar
	for qid := uint64(1); qid <= 3; qid++ {
		for _, n := range []string{"fno", "hno", "seat", "day"} {
			out = append(out, ScopedVar{QID: qid, Name: n})
		}
	}
	return out
}

var trailConsts = []value.Value{
	value.NewInt(122),
	value.NewInt(123),
	value.NewString("Paris"),
	value.Null,
}

// applyRandomOp performs one random Bind/Union/UnifyAtoms/Find against s.
// Failed unifications are part of the point: they leave partial mutations
// that Undo must rewind.
func applyRandomOp(rng *rand.Rand, s *Subst, vars []ScopedVar) {
	switch rng.Intn(5) {
	case 0:
		s.Bind(vars[rng.Intn(len(vars))], trailConsts[rng.Intn(len(trailConsts))])
	case 1:
		s.Union(vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))])
	case 2:
		// UnifyAtoms over two-term atoms mixing constants and variables.
		mk := func(qid uint64) Atom {
			t1 := VarTerm([]string{"fno", "hno", "seat"}[rng.Intn(3)])
			var t2 Term
			if rng.Intn(2) == 0 {
				t2 = ConstTerm(trailConsts[rng.Intn(len(trailConsts))])
			} else {
				t2 = VarTerm("day")
			}
			return NewAtom("Reservation", t1, t2)
		}
		a, b := uint64(rng.Intn(3)+1), uint64(rng.Intn(3)+1)
		UnifyAtoms(s, a, mk(a), b, mk(b))
	case 3:
		UnifyGround(s, uint64(rng.Intn(3)+1),
			NewAtom("Reservation", VarTerm("fno"), VarTerm("hno")),
			value.NewTuple("x", rng.Intn(3)))
	default:
		// Find triggers path compression — also a trailed mutation.
		s.Find(vars[rng.Intn(len(vars))])
	}
}

// substEqual compares the exact internal state of two substitutions. Undo
// promises restoration to the exact prior maps, not just an observationally
// equivalent union-find, so DeepEqual on the maps is the right check.
func substEqual(a, b *Subst) bool {
	if len(a.parent) != len(b.parent) || len(a.val) != len(b.val) {
		return false
	}
	return reflect.DeepEqual(a.parent, b.parent) && reflect.DeepEqual(a.val, b.val)
}

func describeSubst(s *Subst) string {
	return fmt.Sprintf("parent=%v val=%v", s.parent, s.val)
}

// TestTrailUndoRestoresCloneSnapshot is the satellite property test: for
// many random histories, Mark + random ops + Undo(mark) restores a state
// deep-equal to a Clone snapshot taken at the mark.
func TestTrailUndoRestoresCloneSnapshot(t *testing.T) {
	vars := trailVars()
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 500; trial++ {
		s := NewSubst()
		// Random prefix that stays.
		for i := rng.Intn(8); i > 0; i-- {
			applyRandomOp(rng, s, vars)
		}
		snap := s.Clone()
		mark := s.Mark()
		for i := rng.Intn(16) + 1; i > 0; i-- {
			applyRandomOp(rng, s, vars)
		}
		s.Undo(mark)
		if !substEqual(s, snap) {
			t.Fatalf("trial %d: undo mismatch\n got: %s\nwant: %s", trial, describeSubst(s), describeSubst(snap))
		}
		// The trail must be rewound too: undoing to the same mark twice is a
		// no-op, and further ops behave as if the undone ones never happened.
		s.Undo(mark)
		if !substEqual(s, snap) {
			t.Fatalf("trial %d: second undo changed state", trial)
		}
	}
}

// TestTrailNestedMarks exercises stacked mark/undo pairs, the shape the
// matcher's DFS produces.
func TestTrailNestedMarks(t *testing.T) {
	vars := trailVars()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := NewSubst()
		type frame struct {
			mark int
			snap *Subst
		}
		var stack []frame
		for step := 0; step < 40; step++ {
			switch {
			case len(stack) == 0 || rng.Intn(3) == 0:
				stack = append(stack, frame{mark: s.Mark(), snap: s.Clone()})
			case rng.Intn(3) == 1:
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				s.Undo(f.mark)
				if !substEqual(s, f.snap) {
					t.Fatalf("trial %d step %d: nested undo mismatch", trial, step)
				}
			default:
				applyRandomOp(rng, s, vars)
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			s.Undo(stack[i].mark)
			if !substEqual(s, stack[i].snap) {
				t.Fatalf("trial %d: final unwind mismatch at frame %d", trial, i)
			}
		}
	}
}

// TestFindIterativeDeepChain builds a pathologically long parent chain and
// checks Find compresses it without recursion (the old recursive Find would
// deepen the goroutine stack linearly) and that Undo restores the chain.
func TestFindIterativeDeepChain(t *testing.T) {
	s := NewSubst()
	const n = 200_000
	// Union in an order that builds a long chain: each new root adopts the
	// previous chain's root as a child... adversarial ordering.
	for i := 1; i < n; i++ {
		a := ScopedVar{QID: uint64(i), Name: "x"}
		b := ScopedVar{QID: uint64(i + 1), Name: "x"}
		if !s.Union(a, b) {
			t.Fatal("union failed")
		}
	}
	mark := s.Mark()
	root := s.Find(ScopedVar{QID: 1, Name: "x"})
	if root != s.Find(ScopedVar{QID: n, Name: "x"}) {
		t.Fatal("chain ends disagree on root")
	}
	s.Undo(mark)
	// After undoing the compression, the chain still finds the same root.
	if root != s.Find(ScopedVar{QID: 1, Name: "x"}) {
		t.Fatal("root changed after undoing compression")
	}
}

// TestResolveIntoMatchesResolve pins the buffered resolver to the
// allocating one.
func TestResolveIntoMatchesResolve(t *testing.T) {
	s := NewSubst()
	s.Bind(ScopedVar{QID: 1, Name: "fno"}, value.NewInt(122))
	a := NewAtom("Reservation", ConstTerm(value.NewString("Jerry")), VarTerm("fno"), VarTerm("hno"))
	want := s.Resolve(1, a)
	var buf []Term
	got := s.ResolveInto(buf, 1, a)
	if want.String() != got.String() {
		t.Fatalf("ResolveInto %s != Resolve %s", got, want)
	}
}

// TestSubstReset pins Reset to a fresh substitution.
func TestSubstReset(t *testing.T) {
	s := NewSubst()
	vars := trailVars()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		applyRandomOp(rng, s, vars)
	}
	s.Reset()
	if !substEqual(s, NewSubst()) {
		t.Fatalf("Reset left state: %s", describeSubst(s))
	}
	if s.Mark() != 0 {
		t.Fatalf("Reset left trail of %d entries", s.Mark())
	}
}

// FuzzTrail drives the trail with operation streams from the fuzzer: every
// byte picks an op and its operands, and the invariant is the same
// clone-snapshot equality the property test asserts.
func FuzzTrail(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0xFF, 0x00, 0x10, 0x42})
	vars := trailVars()
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		s := NewSubst()
		half := len(ops) / 2
		rngA := rand.New(rand.NewSource(int64(len(ops))))
		for _, b := range ops[:half] {
			rngA.Seed(int64(b))
			applyRandomOp(rngA, s, vars)
		}
		snap := s.Clone()
		mark := s.Mark()
		for _, b := range ops[half:] {
			rngA.Seed(int64(b))
			applyRandomOp(rngA, s, vars)
		}
		s.Undo(mark)
		if !substEqual(s, snap) {
			t.Fatalf("undo mismatch\n got: %s\nwant: %s", describeSubst(s), describeSubst(snap))
		}
	})
}
