package eq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// ScopedVar is a variable qualified by the query instance that owns it.
// Kramer's fno and Jerry's fno are distinct ScopedVars until unification
// merges them (Figure 1b of the paper).
type ScopedVar struct {
	QID  uint64
	Name string
}

func (v ScopedVar) String() string { return fmt.Sprintf("q%d.%s", v.QID, v.Name) }

// Subst is a substitution: a union-find over scoped variables where each
// equivalence class may be bound to one constant. It is the "θ" of the
// matching algorithm in DESIGN.md §3.
type Subst struct {
	parent map[ScopedVar]ScopedVar
	val    map[ScopedVar]value.Value // root → constant binding
}

// NewSubst returns an empty substitution.
func NewSubst() *Subst {
	return &Subst{parent: make(map[ScopedVar]ScopedVar), val: make(map[ScopedVar]value.Value)}
}

// Clone deep-copies the substitution; the matcher clones before each
// backtracking branch.
func (s *Subst) Clone() *Subst {
	c := &Subst{
		parent: make(map[ScopedVar]ScopedVar, len(s.parent)),
		val:    make(map[ScopedVar]value.Value, len(s.val)),
	}
	for k, v := range s.parent {
		c.parent[k] = v
	}
	for k, v := range s.val {
		c.val[k] = v
	}
	return c
}

// Find returns the representative of v's equivalence class (with path
// compression).
func (s *Subst) Find(v ScopedVar) ScopedVar {
	p, ok := s.parent[v]
	if !ok {
		return v
	}
	root := s.Find(p)
	s.parent[v] = root
	return root
}

// Binding returns the constant bound to v's class, if any.
func (s *Subst) Binding(v ScopedVar) (value.Value, bool) {
	c, ok := s.val[s.Find(v)]
	return c, ok
}

// Bind constrains v's class to the constant c. It fails if the class is
// already bound to a different constant.
func (s *Subst) Bind(v ScopedVar, c value.Value) bool {
	root := s.Find(v)
	if cur, ok := s.val[root]; ok {
		return cur.Identical(c)
	}
	s.val[root] = c
	return true
}

// Union merges the classes of a and b. It fails when both classes are bound
// to different constants.
func (s *Subst) Union(a, b ScopedVar) bool {
	ra, rb := s.Find(a), s.Find(b)
	if ra == rb {
		return true
	}
	va, oka := s.val[ra]
	vb, okb := s.val[rb]
	if oka && okb && !va.Identical(vb) {
		return false
	}
	// Merge rb into ra (deterministic by map insertion is fine; smaller
	// graphs here than union-by-rank matters for).
	s.parent[rb] = ra
	if !oka && okb {
		s.val[ra] = vb
	}
	delete(s.val, rb)
	return true
}

// UnifyAtoms unifies constraint atom a (of query aQID) with head atom b (of
// query bQID), updating s in place. It returns false — possibly after partial
// mutation — on clash; callers clone s per branch.
func UnifyAtoms(s *Subst, aQID uint64, a Atom, bQID uint64, b Atom) bool {
	if a.Relation != b.Relation || a.Arity() != b.Arity() {
		return false
	}
	for i := range a.Terms {
		ta, tb := a.Terms[i], b.Terms[i]
		switch {
		case !ta.IsVar && !tb.IsVar:
			if !ta.Const.Identical(tb.Const) {
				return false
			}
		case ta.IsVar && !tb.IsVar:
			if !s.Bind(ScopedVar{aQID, ta.Var}, tb.Const) {
				return false
			}
		case !ta.IsVar && tb.IsVar:
			if !s.Bind(ScopedVar{bQID, tb.Var}, ta.Const) {
				return false
			}
		default:
			if !s.Union(ScopedVar{aQID, ta.Var}, ScopedVar{bQID, tb.Var}) {
				return false
			}
		}
	}
	return true
}

// UnifyGround unifies atom a (of query aQID) against a ground tuple already
// present in an answer relation.
func UnifyGround(s *Subst, aQID uint64, a Atom, tup value.Tuple) bool {
	if a.Arity() != len(tup) {
		return false
	}
	for i, t := range a.Terms {
		if t.IsVar {
			if !s.Bind(ScopedVar{aQID, t.Var}, tup[i]) {
				return false
			}
		} else if !t.Const.Identical(tup[i]) {
			return false
		}
	}
	return true
}

// Resolve instantiates atom a of query qid under the substitution: variables
// bound to constants are replaced; unbound variables remain.
func (s *Subst) Resolve(qid uint64, a Atom) Atom {
	out := Atom{Relation: a.Relation, Display: a.Display, Terms: make([]Term, len(a.Terms))}
	for i, t := range a.Terms {
		if t.IsVar {
			if c, ok := s.Binding(ScopedVar{qid, t.Var}); ok {
				out.Terms[i] = ConstTerm(c)
				continue
			}
		}
		out.Terms[i] = t
	}
	return out
}

// Classes groups the given scoped variables into their current equivalence
// classes, returning for each class its members (sorted for determinism) and
// bound constant if any.
func (s *Subst) Classes(vars []ScopedVar) []Class {
	byRoot := make(map[ScopedVar][]ScopedVar)
	for _, v := range vars {
		r := s.Find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	out := make([]Class, 0, len(byRoot))
	for r, members := range byRoot {
		sort.Slice(members, func(i, j int) bool {
			if members[i].QID != members[j].QID {
				return members[i].QID < members[j].QID
			}
			return members[i].Name < members[j].Name
		})
		c := Class{Root: r, Members: members}
		if v, ok := s.val[r]; ok {
			c.Const = v
			c.Bound = true
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Members[0], out[j].Members[0]
		if a.QID != b.QID {
			return a.QID < b.QID
		}
		return a.Name < b.Name
	})
	return out
}

// Class is one variable equivalence class under a substitution.
type Class struct {
	Root    ScopedVar
	Members []ScopedVar
	Const   value.Value
	Bound   bool
}

func (c Class) String() string {
	names := make([]string, len(c.Members))
	for i, m := range c.Members {
		names[i] = m.String()
	}
	s := "{" + strings.Join(names, " = ") + "}"
	if c.Bound {
		s += " = " + c.Const.String()
	}
	return s
}
