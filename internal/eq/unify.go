package eq

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/value"
)

// ScopedVar is a variable qualified by the query instance that owns it.
// Kramer's fno and Jerry's fno are distinct ScopedVars until unification
// merges them (Figure 1b of the paper).
type ScopedVar struct {
	QID  uint64
	Name string
}

func (v ScopedVar) String() string { return fmt.Sprintf("q%d.%s", v.QID, v.Name) }

// Subst is a substitution: a union-find over scoped variables where each
// equivalence class may be bound to one constant. It is the "θ" of the
// matching algorithm in DESIGN.md §3.
//
// Every mutation of the union-find (Bind, Union, and Find's path
// compression) is recorded on a trail, so a caller can take a Mark, attempt
// a unification that may fail partway, and Undo back to the exact prior
// state. This is what lets the matcher explore backtracking branches by
// mutate-and-undo instead of cloning the substitution per branch.
type Subst struct {
	parent map[ScopedVar]ScopedVar
	val    map[ScopedVar]value.Value // root → constant binding
	trail  []trailEntry
}

// trailEntry records one map mutation so Undo can reverse it exactly.
type trailEntry struct {
	key       ScopedVar
	oldParent ScopedVar   // valid for kind == trailParent && had
	oldVal    value.Value // valid for kind == trailVal && had
	kind      uint8
	had       bool // whether key was present before the write
}

const (
	trailParent uint8 = iota // parent[key] was written or deleted
	trailVal                 // val[key] was written or deleted
)

// NewSubst returns an empty substitution.
func NewSubst() *Subst {
	return &Subst{parent: make(map[ScopedVar]ScopedVar), val: make(map[ScopedVar]value.Value)}
}

// Clone deep-copies the substitution. The clone's trail starts empty: marks
// taken on the original do not apply to it. The matcher no longer clones per
// branch (it uses Mark/Undo); Clone remains for snapshots and tests.
func (s *Subst) Clone() *Subst {
	c := &Subst{
		parent: make(map[ScopedVar]ScopedVar, len(s.parent)),
		val:    make(map[ScopedVar]value.Value, len(s.val)),
	}
	for k, v := range s.parent {
		c.parent[k] = v
	}
	for k, v := range s.val {
		c.val[k] = v
	}
	return c
}

// Reset empties the substitution in place, retaining the map and trail
// storage for reuse — the matcher keeps one Subst per coordination lane and
// resets it per search instead of allocating.
func (s *Subst) Reset() {
	clear(s.parent)
	clear(s.val)
	s.trail = s.trail[:0]
}

// Mark returns a checkpoint of the trail; Undo(mark) rewinds every mutation
// made since.
func (s *Subst) Mark() int { return len(s.trail) }

// Undo reverses, newest first, every trailed mutation made after mark,
// restoring parent and val to exactly the state they had when Mark was
// called — including path-compression writes, so a compression that pointed
// a variable at a root created by a later-undone Union is rolled back too.
func (s *Subst) Undo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		e := &s.trail[i]
		switch e.kind {
		case trailParent:
			if e.had {
				s.parent[e.key] = e.oldParent
			} else {
				delete(s.parent, e.key)
			}
		case trailVal:
			if e.had {
				s.val[e.key] = e.oldVal
			} else {
				delete(s.val, e.key)
			}
		}
	}
	s.trail = s.trail[:mark]
}

// setParent writes parent[v] = p, trailing the old entry.
func (s *Subst) setParent(v, p ScopedVar) {
	old, had := s.parent[v]
	s.trail = append(s.trail, trailEntry{key: v, oldParent: old, kind: trailParent, had: had})
	s.parent[v] = p
}

// setVal writes val[v] = c, trailing the old entry.
func (s *Subst) setVal(v ScopedVar, c value.Value) {
	old, had := s.val[v]
	s.trail = append(s.trail, trailEntry{key: v, oldVal: old, kind: trailVal, had: had})
	s.val[v] = c
}

// delVal deletes val[v], trailing the old entry.
func (s *Subst) delVal(v ScopedVar) {
	old, had := s.val[v]
	if !had {
		return
	}
	s.trail = append(s.trail, trailEntry{key: v, oldVal: old, kind: trailVal, had: true})
	delete(s.val, v)
}

// Find returns the representative of v's equivalence class. It is iterative
// (adversarial unify orders can build long parent chains that would deepen
// the stack of the old recursive version): a first pass walks to the root, a
// second compresses the path. Compression writes go on the trail like any
// other mutation; chains of length ≤ 1 — the steady state — write nothing.
func (s *Subst) Find(v ScopedVar) ScopedVar {
	root, ok := s.parent[v]
	if !ok {
		return v
	}
	for {
		p, ok := s.parent[root]
		if !ok {
			break
		}
		root = p
	}
	for v != root {
		p := s.parent[v]
		if p != root {
			s.setParent(v, root)
		}
		v = p
	}
	return root
}

// Binding returns the constant bound to v's class, if any.
func (s *Subst) Binding(v ScopedVar) (value.Value, bool) {
	c, ok := s.val[s.Find(v)]
	return c, ok
}

// Bind constrains v's class to the constant c. It fails if the class is
// already bound to a different constant.
func (s *Subst) Bind(v ScopedVar, c value.Value) bool {
	root := s.Find(v)
	if cur, ok := s.val[root]; ok {
		return cur.Identical(c)
	}
	s.setVal(root, c)
	return true
}

// Union merges the classes of a and b. It fails when both classes are bound
// to different constants.
func (s *Subst) Union(a, b ScopedVar) bool {
	ra, rb := s.Find(a), s.Find(b)
	if ra == rb {
		return true
	}
	va, oka := s.val[ra]
	vb, okb := s.val[rb]
	if oka && okb && !va.Identical(vb) {
		return false
	}
	// Merge rb into ra (deterministic by map insertion is fine; smaller
	// graphs here than union-by-rank matters for).
	s.setParent(rb, ra)
	if !oka && okb {
		s.setVal(ra, vb)
	}
	s.delVal(rb)
	return true
}

// UnifyAtoms unifies constraint atom a (of query aQID) with head atom b (of
// query bQID), updating s in place. It returns false — possibly after partial
// mutation — on clash; callers bracket the call with Mark/Undo (or clone) to
// rewind, which makes the partial mutation harmless.
func UnifyAtoms(s *Subst, aQID uint64, a Atom, bQID uint64, b Atom) bool {
	if a.Relation != b.Relation || a.Arity() != b.Arity() {
		return false
	}
	for i := range a.Terms {
		ta, tb := a.Terms[i], b.Terms[i]
		switch {
		case !ta.IsVar && !tb.IsVar:
			if !ta.Const.Identical(tb.Const) {
				return false
			}
		case ta.IsVar && !tb.IsVar:
			if !s.Bind(ScopedVar{aQID, ta.Var}, tb.Const) {
				return false
			}
		case !ta.IsVar && tb.IsVar:
			if !s.Bind(ScopedVar{bQID, tb.Var}, ta.Const) {
				return false
			}
		default:
			if !s.Union(ScopedVar{aQID, ta.Var}, ScopedVar{bQID, tb.Var}) {
				return false
			}
		}
	}
	return true
}

// UnifyGround unifies atom a (of query aQID) against a ground tuple already
// present in an answer relation.
func UnifyGround(s *Subst, aQID uint64, a Atom, tup value.Tuple) bool {
	if a.Arity() != len(tup) {
		return false
	}
	for i, t := range a.Terms {
		if t.IsVar {
			if !s.Bind(ScopedVar{aQID, t.Var}, tup[i]) {
				return false
			}
		} else if !t.Const.Identical(tup[i]) {
			return false
		}
	}
	return true
}

// Resolve instantiates atom a of query qid under the substitution: variables
// bound to constants are replaced; unbound variables remain.
func (s *Subst) Resolve(qid uint64, a Atom) Atom {
	return s.ResolveInto(make([]Term, 0, len(a.Terms)), qid, a)
}

// ResolveInto is Resolve writing the instantiated terms into dst (reused
// from length 0), so a caller resolving at every search node can keep one
// terms buffer per backtracking depth instead of allocating.
func (s *Subst) ResolveInto(dst []Term, qid uint64, a Atom) Atom {
	dst = dst[:0]
	for _, t := range a.Terms {
		if t.IsVar {
			if c, ok := s.Binding(ScopedVar{qid, t.Var}); ok {
				dst = append(dst, ConstTerm(c))
				continue
			}
		}
		dst = append(dst, t)
	}
	return Atom{Relation: a.Relation, Display: a.Display, Terms: dst}
}

// Classes groups the given scoped variables into their current equivalence
// classes, returning for each class its members (sorted for determinism) and
// bound constant if any.
func (s *Subst) Classes(vars []ScopedVar) []Class {
	out := make([]Class, 0, len(vars))
	for _, v := range vars {
		r := s.Find(v)
		idx := -1
		for i := range out {
			if out[i].Root == r {
				idx = i
				break
			}
		}
		if idx < 0 {
			c := Class{Root: r}
			if val, ok := s.val[r]; ok {
				c.Const = val
				c.Bound = true
			}
			out = append(out, c)
			idx = len(out) - 1
		}
		out[idx].Members = append(out[idx].Members, v)
	}
	varLess := func(a, b ScopedVar) int {
		if a.QID != b.QID {
			if a.QID < b.QID {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Name, b.Name)
	}
	for i := range out {
		slices.SortFunc(out[i].Members, varLess)
	}
	slices.SortFunc(out, func(a, b Class) int { return varLess(a.Members[0], b.Members[0]) })
	return out
}

// Class is one variable equivalence class under a substitution.
type Class struct {
	Root    ScopedVar
	Members []ScopedVar
	Const   value.Value
	Bound   bool
}

func (c Class) String() string {
	names := make([]string, len(c.Members))
	for i, m := range c.Members {
		names[i] = m.String()
	}
	s := "{" + strings.Join(names, " = ") + "}"
	if c.Bound {
		s += " = " + c.Const.String()
	}
	return s
}
