package eq

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestUnifyFigure1b(t *testing.T) {
	// Kramer's constraint R('Jerry', fno_K) must unify with Jerry's head
	// R('Jerry', fno_J), merging fno_K and fno_J — Figure 1(b).
	kramerConstraint := NewAtom("Reservation", ConstTerm(value.NewString("Jerry")), VarTerm("fno"))
	jerryHead := NewAtom("Reservation", ConstTerm(value.NewString("Jerry")), VarTerm("fno"))

	s := NewSubst()
	if !UnifyAtoms(s, 1, kramerConstraint, 2, jerryHead) {
		t.Fatal("unification failed")
	}
	if s.Find(ScopedVar{1, "fno"}) != s.Find(ScopedVar{2, "fno"}) {
		t.Error("fno classes not merged")
	}
	// Now bind one side; the other must see it.
	if !s.Bind(ScopedVar{1, "fno"}, value.NewInt(122)) {
		t.Fatal("bind failed")
	}
	v, ok := s.Binding(ScopedVar{2, "fno"})
	if !ok || v.Int() != 122 {
		t.Errorf("jerry's fno = %v, %v", v, ok)
	}
}

func TestUnifyConstClash(t *testing.T) {
	a := NewAtom("R", ConstTerm(value.NewString("Jerry")), VarTerm("x"))
	b := NewAtom("R", ConstTerm(value.NewString("Kramer")), VarTerm("y"))
	if UnifyAtoms(NewSubst(), 1, a, 2, b) {
		t.Error("const clash must fail")
	}
}

func TestUnifyRelationArityMismatch(t *testing.T) {
	a := NewAtom("R", VarTerm("x"))
	b := NewAtom("S", VarTerm("y"))
	c := NewAtom("R", VarTerm("y"), VarTerm("z"))
	if UnifyAtoms(NewSubst(), 1, a, 2, b) || UnifyAtoms(NewSubst(), 1, a, 2, c) {
		t.Error("mismatched atoms unified")
	}
}

func TestUnifyVarConst(t *testing.T) {
	a := NewAtom("R", VarTerm("x"), VarTerm("x"))
	b := NewAtom("R", ConstTerm(value.NewInt(1)), ConstTerm(value.NewInt(2)))
	// x would need to be 1 and 2 simultaneously.
	if UnifyAtoms(NewSubst(), 1, a, 2, b) {
		t.Error("inconsistent binding accepted")
	}
	c := NewAtom("R", ConstTerm(value.NewInt(1)), ConstTerm(value.NewInt(1)))
	if !UnifyAtoms(NewSubst(), 1, a, 2, c) {
		t.Error("consistent binding rejected")
	}
}

func TestUnifyTransitiveConflict(t *testing.T) {
	s := NewSubst()
	x, y, z := ScopedVar{1, "x"}, ScopedVar{2, "y"}, ScopedVar{3, "z"}
	if !s.Bind(x, value.NewInt(1)) || !s.Bind(z, value.NewInt(2)) {
		t.Fatal("setup binds failed")
	}
	if !s.Union(x, y) {
		t.Fatal("x~y failed")
	}
	// y is now transitively 1; merging with z (=2) must fail.
	if s.Union(y, z) {
		t.Error("transitive conflict accepted")
	}
}

func TestUnionPropagatesBinding(t *testing.T) {
	s := NewSubst()
	a, b := ScopedVar{1, "a"}, ScopedVar{2, "b"}
	s.Bind(b, value.NewString("Paris"))
	if !s.Union(a, b) {
		t.Fatal("union failed")
	}
	v, ok := s.Binding(a)
	if !ok || v.Str() != "Paris" {
		t.Errorf("binding(a) = %v, %v", v, ok)
	}
}

func TestUnifyGround(t *testing.T) {
	atom := NewAtom("R", ConstTerm(value.NewString("Jerry")), VarTerm("fno"))
	s := NewSubst()
	if !UnifyGround(s, 1, atom, value.NewTuple("Jerry", 122)) {
		t.Fatal("ground unify failed")
	}
	if v, _ := s.Binding(ScopedVar{1, "fno"}); v.Int() != 122 {
		t.Errorf("fno = %v", v)
	}
	if UnifyGround(NewSubst(), 1, atom, value.NewTuple("Kramer", 122)) {
		t.Error("const mismatch accepted")
	}
	if UnifyGround(NewSubst(), 1, atom, value.NewTuple("Jerry")) {
		t.Error("arity mismatch accepted")
	}
}

func TestCloneIsolation(t *testing.T) {
	s := NewSubst()
	x := ScopedVar{1, "x"}
	s.Bind(x, value.NewInt(1))
	c := s.Clone()
	c.Bind(ScopedVar{2, "y"}, value.NewInt(2))
	c.Union(x, ScopedVar{3, "z"})
	if _, ok := s.Binding(ScopedVar{2, "y"}); ok {
		t.Error("clone leaked binding into original")
	}
	if s.Find(ScopedVar{3, "z"}) == s.Find(x) {
		t.Error("clone leaked union into original")
	}
}

func TestResolve(t *testing.T) {
	atom := NewAtom("Reservation", ConstTerm(value.NewString("Kramer")), VarTerm("fno"), VarTerm("hno"))
	s := NewSubst()
	s.Bind(ScopedVar{1, "fno"}, value.NewInt(122))
	got := s.Resolve(1, atom)
	if got.Terms[1].IsVar || got.Terms[1].Const.Int() != 122 {
		t.Errorf("resolved = %v", got)
	}
	if !got.Terms[2].IsVar {
		t.Error("unbound var should remain")
	}
	if got.Terms[0].Const.Str() != "Kramer" {
		t.Error("constant changed")
	}
}

func TestClasses(t *testing.T) {
	s := NewSubst()
	vars := []ScopedVar{{1, "x"}, {2, "y"}, {3, "z"}}
	s.Union(vars[0], vars[1])
	s.Bind(vars[2], value.NewInt(9))
	classes := s.Classes(vars)
	if len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
	if len(classes[0].Members) != 2 || classes[0].Bound {
		t.Errorf("class 0 = %v", classes[0])
	}
	if !classes[1].Bound || classes[1].Const.Int() != 9 {
		t.Errorf("class 1 = %v", classes[1])
	}
}

// Property: Union is idempotent and Find is stable under repetition.
func TestUnionFindProperties(t *testing.T) {
	f := func(pairs []uint8) bool {
		s := NewSubst()
		mk := func(b uint8) ScopedVar { return ScopedVar{uint64(b % 4), string(rune('a' + b%8))} }
		for i := 0; i+1 < len(pairs); i += 2 {
			a, b := mk(pairs[i]), mk(pairs[i+1])
			if !s.Union(a, b) {
				return false // no constants involved: union never fails
			}
			if s.Find(a) != s.Find(b) {
				return false
			}
			if !s.Union(a, b) { // idempotent
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: binding then reading through any member of the class returns the
// same constant.
func TestBindingVisibleThroughClassProperty(t *testing.T) {
	f := func(n uint8, val int64) bool {
		s := NewSubst()
		k := int(n%6) + 2
		vars := make([]ScopedVar, k)
		for i := range vars {
			vars[i] = ScopedVar{uint64(i), "v"}
			if i > 0 && !s.Union(vars[0], vars[i]) {
				return false
			}
		}
		if !s.Bind(vars[int(n)%k], value.NewInt(val)) {
			return false
		}
		for _, v := range vars {
			got, ok := s.Binding(v)
			if !ok || got.Int() != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
