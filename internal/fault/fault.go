// Package fault is the deterministic fault-injection seam for the
// replication stack: a wal.FS wrapper that scripts write errors, short
// writes and dead disks at exact operation boundaries, and a net dialer
// wrapper that scripts connection refusals, cuts and delays.
//
// Faults are armed explicitly by the test driving the scenario — nothing
// fires probabilistically — so every failure lands at a chosen byte boundary
// and a scenario replays identically from its seed.
package fault

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrInjected is the default error injected faults surface.
var ErrInjected = errors.New("fault: injected failure")

// FS wraps an inner wal.FS. With no faults armed it is transparent.
type FS struct {
	inner wal.FS

	mu         sync.Mutex
	dead       bool          // every operation fails (disk gone / process killed)
	failWrites int           // fail this many upcoming writes, then disarm
	shortNext  int           // next write persists only this many bytes, then fails
	err        error         // error injected faults return
	delayReads time.Duration // sleep applied to every file ReadAt
	writes     uint64
	reads      uint64
	syncs      uint64
}

// NewFS wraps inner; pass wal.OSFS() for a faultable real filesystem.
func NewFS(inner wal.FS) *FS { return &FS{inner: inner, err: ErrInjected} }

// FailWrites arms the next n file writes (Write/WriteAt, any file) to fail
// without persisting anything.
func (f *FS) FailWrites(n int) {
	f.mu.Lock()
	f.failWrites = n
	f.mu.Unlock()
}

// ShortWrite arms the next file write to persist only n bytes of its buffer
// and then fail — the torn-write shape a crash mid-write leaves behind.
func (f *FS) ShortWrite(n int) {
	f.mu.Lock()
	f.shortNext = n + 1 // +1 so a 0-byte short write is distinguishable from disarmed
	f.mu.Unlock()
}

// Kill makes every subsequent operation fail, simulating the instant after a
// kill -9: whatever reached the disk stays, nothing else ever will.
func (f *FS) Kill() {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
}

// DelayReads arms a fixed delay on every subsequent file ReadAt, modelling
// a slow or contended disk. The sleep happens outside the FS mutex, so only
// the reading goroutine stalls — which is exactly what the buffer pool's
// latched-miss protocol is meant to tolerate. Zero disarms.
func (f *FS) DelayReads(d time.Duration) {
	f.mu.Lock()
	f.delayReads = d
	f.mu.Unlock()
}

// Reads returns the number of file ReadAt calls observed.
func (f *FS) Reads() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads
}

// Writes returns the number of file write calls observed.
func (f *FS) Writes() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// HeapFS adapts the faultable filesystem to the storage layer's heap-file
// seam, so buffer-pool tests can script slow and dead disks under spilled
// tables with the same FS that faults the WAL.
func (f *FS) HeapFS() storage.HeapFS { return heapFS{f} }

type heapFS struct{ fs *FS }

func (h heapFS) OpenFile(name string, flag int, perm os.FileMode) (storage.HeapFile, error) {
	return h.fs.OpenFile(name, flag, perm)
}
func (h heapFS) Remove(name string) error                     { return h.fs.Remove(name) }
func (h heapFS) MkdirAll(path string, perm os.FileMode) error { return h.fs.MkdirAll(path, perm) }

// checkOp gates a non-write operation.
func (f *FS) checkOp() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return f.err
	}
	return nil
}

// checkWrite gates a write of length n, returning how many bytes to persist
// and the error to report (short == n, err == nil means write normally).
func (f *FS) checkWrite(n int) (short int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.dead {
		return 0, f.err
	}
	if f.shortNext > 0 {
		short = f.shortNext - 1
		f.shortNext = 0
		if short > n {
			short = n
		}
		return short, f.err
	}
	if f.failWrites > 0 {
		f.failWrites--
		return 0, f.err
	}
	return n, nil
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if err := f.checkOp(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.checkOp(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.checkOp(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.checkOp(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if err := f.checkOp(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.checkOp(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) Stat(name string) (os.FileInfo, error) {
	if err := f.checkOp(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FS) SyncDir(dir string) error {
	if err := f.checkOp(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

type faultFile struct {
	fs    *FS
	inner wal.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	short, err := f.fs.checkWrite(len(p))
	if err != nil {
		n, _ := f.inner.Write(p[:short])
		return n, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	short, err := f.fs.checkWrite(len(p))
	if err != nil {
		n, _ := f.inner.WriteAt(p[:short], off)
		return n, err
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	f.fs.reads++
	dead := f.fs.dead
	delay := f.fs.delayReads
	f.fs.mu.Unlock()
	if dead {
		return 0, f.fs.err
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Sync() error {
	if err := f.fs.checkOp(); err != nil {
		return err
	}
	f.fs.mu.Lock()
	f.fs.syncs++
	f.fs.mu.Unlock()
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.checkOp(); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	// Seek is position bookkeeping, not I/O; a dead disk still tracks it so
	// recovery code paths that reposition before failing stay deterministic.
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) Close() error { return f.inner.Close() }

// Dialer scripts network faults for outbound connections (the follower →
// primary replication link and the retry/backoff client use one).
type Dialer struct {
	mu      sync.Mutex
	blocked bool
	delay   time.Duration // imposed on every Read, simulating a slow link
	conns   map[*faultConn]struct{}
	dials   uint64
}

// NewDialer returns a transparent dialer; arm faults as the scenario needs.
func NewDialer() *Dialer { return &Dialer{conns: make(map[*faultConn]struct{})} }

// Dial opens a connection unless the dialer is partitioned.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	d.mu.Lock()
	d.dials++
	if d.blocked {
		d.mu.Unlock()
		return nil, ErrInjected
	}
	d.mu.Unlock()
	c, err := net.DialTimeout(network, addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: c, d: d}
	d.mu.Lock()
	if d.blocked { // partition raced the dial; the link never comes up
		d.mu.Unlock()
		c.Close()
		return nil, ErrInjected
	}
	d.conns[fc] = struct{}{}
	d.mu.Unlock()
	return fc, nil
}

// Partition blocks new dials and severs every live connection.
func (d *Dialer) Partition() {
	d.mu.Lock()
	d.blocked = true
	for c := range d.conns {
		c.Conn.Close()
	}
	d.conns = make(map[*faultConn]struct{})
	d.mu.Unlock()
}

// Heal lifts the partition; the next dial succeeds again.
func (d *Dialer) Heal() {
	d.mu.Lock()
	d.blocked = false
	d.mu.Unlock()
}

// CutAll severs live connections without blocking redials — the transient
// connection-drop fault.
func (d *Dialer) CutAll() {
	d.mu.Lock()
	for c := range d.conns {
		c.Conn.Close()
	}
	d.conns = make(map[*faultConn]struct{})
	d.mu.Unlock()
}

// SetDelay imposes a fixed delay on every read on every connection.
func (d *Dialer) SetDelay(delay time.Duration) {
	d.mu.Lock()
	d.delay = delay
	d.mu.Unlock()
}

// Dials returns the number of dial attempts observed.
func (d *Dialer) Dials() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

type faultConn struct {
	net.Conn
	d *Dialer
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.d.mu.Lock()
	delay := c.d.delay
	c.d.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Close() error {
	c.d.mu.Lock()
	delete(c.d.conns, c)
	c.d.mu.Unlock()
	return c.Conn.Close()
}
