package fault

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// The FS seam must fire at exact operation boundaries: n failed writes then
// transparent again, a short write that persists precisely the armed prefix,
// and Kill leaving whatever reached the disk untouched forever after.
func TestFSInjection(t *testing.T) {
	fs := NewFS(wal.OSFS())
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}

	fs.FailWrites(2)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("xx")); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed write %d: got %v", i, err)
		}
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatalf("disarmed write failed: %v", err)
	}

	fs.ShortWrite(2)
	if n, err := f.Write([]byte("defg")); n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v, want 2 bytes then injected failure", n, err)
	}
	if b, err := fs.ReadFile(path); err != nil || string(b) != "abcde" {
		t.Fatalf("on-disk content %q err=%v, want the good write plus the 2-byte torn prefix", b, err)
	}

	fs.Kill()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after Kill: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after Kill: %v", err)
	}
	if _, err := fs.OpenFile(path, os.O_RDWR, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("open after Kill: %v", err)
	}
	// A fresh FS over the same directory sees exactly the pre-kill bytes.
	if b, err := wal.OSFS().ReadFile(path); err != nil || string(b) != "abcde" {
		t.Fatalf("post-kill content %q err=%v", b, err)
	}
}

// The dialer seam: Partition refuses new dials and cuts live conns, Heal
// restores dialing, CutAll severs live conns without blocking new ones.
func TestDialerInjection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					if _, err := c.Write(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	d := NewDialer()
	echo := func(c net.Conn) error {
		if _, err := c.Write([]byte("a")); err != nil {
			return err
		}
		_, err := c.Read(make([]byte, 1))
		return err
	}

	c1, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := echo(c1); err != nil {
		t.Fatalf("echo through transparent dialer: %v", err)
	}

	d.Partition()
	if _, err := d.Dial("tcp", l.Addr().String()); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial under partition: %v", err)
	}
	if err := echo(c1); err == nil {
		t.Fatal("live conn survived the partition")
	}

	d.Heal()
	c2, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	if err := echo(c2); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}

	d.CutAll()
	if err := echo(c2); err == nil {
		t.Fatal("live conn survived CutAll")
	}
	c3, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial after CutAll should work: %v", err)
	}
	if err := echo(c3); err != nil {
		t.Fatalf("echo on post-cut conn: %v", err)
	}
	if d.Dials() < 3 {
		t.Fatalf("Dials() = %d, want >= 3 successful dials counted", d.Dials())
	}
	c3.Close()
}
