// Package plan is the cost-based query planner sitting between internal/sql
// and execution. The execution engine describes each FROM entry's candidate
// access path (the eq/range pushdown slots it already computes); this package
// estimates the candidate cardinality of every entry from the incremental
// statistics storage maintains (live row counts, per-index distinct counts,
// ordered-index min/max), ranks the join order by those estimates, and
// renders the typed plan description EXPLAIN surfaces end to end.
//
// The cost objective matches the executor's shape: the nested-loop join
// enumerates the cross product of per-table candidate sets and evaluates the
// residual WHERE conjuncts at the leaf, so total work is
//
//	Σ_i Π_{j≤i} |cand_j|
//
// which is minimized by visiting tables in ascending estimated-candidate
// order. A greedy stable sort on the estimates is therefore the optimal
// ordering for this executor, not merely a heuristic.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
	"repro/internal/value"
)

// Path enumerates the candidate access paths the engine can execute.
type Path int

const (
	// FullScan enumerates every visible row.
	FullScan Path = iota
	// PKProbe is an equality probe on exactly the primary key.
	PKProbe
	// HashEq is an equality probe through a secondary hash index.
	HashEq
	// ScanEq is an equality predicate pushed down without an index: the scan
	// still filters to the eq-matching rows, it just reads everything to find
	// them.
	ScanEq
	// OrderedEq is an equality probe executed as a degenerate [v, v] range
	// over an ordered secondary index.
	OrderedEq
	// OrderedRange is a range scan over an ordered secondary index.
	OrderedRange
)

func (p Path) String() string {
	switch p {
	case PKProbe:
		return "pk probe"
	case HashEq:
		return "eq probe (hash)"
	case ScanEq:
		return "scan + eq filter"
	case OrderedEq:
		return "eq probe (ordered)"
	case OrderedRange:
		return "range scan (ordered)"
	default:
		return "full scan"
	}
}

// Default selectivities when a probe value is an unbound parameter or the
// relevant statistic is empty. Deliberately coarse: they only need to rank a
// probe below a scan and an eq below a range.
const (
	defaultEqFraction    = 0.1
	defaultRangeFraction = 1.0 / 3
)

// Input describes one FROM entry's chosen pushdowns for estimation. Bounds
// whose values are still unbound parameters are passed with Set == false
// alongside LoParam/HiParam — the estimator then falls back to default
// selectivities instead of interpolating.
type Input struct {
	Stats  storage.TableStats
	EqCols []int // equality pushdown columns, in slot order
	// EqVals carries the eq probe values, with EqKnown flagging which are
	// resolved (unbound parameters are unknown). Only used to refine
	// NULL-probe estimates; unknown values cost the same as known ones.
	EqVals   []value.Value
	EqKnown  []bool
	RangeCol int // -1 when no range pushdown
	Lo, Hi   storage.Bound
	// LoParam/HiParam flag bounds that exist in the statement but whose
	// values are unbound parameters at plan time.
	LoParam, HiParam bool
	// EqRange marks a range pushdown that is a converted equality probe
	// ([v, v] over an ordered index) whose probe value is still an unbound
	// parameter — structurally degenerate even though the bounds are unknown.
	EqRange bool
}

// Access is one access path's costed outcome.
type Access struct {
	Path  Path
	Index string  // user-assigned index name, "" when unnamed/absent
	Cols  []int   // columns driving the probe (eq cols or the range col)
	Rows  float64 // estimated candidate rows the path yields
}

// indexOn returns the stat entry matching the given columns, preferring a
// hash index for multi-column sets and the ordered index for single columns
// when wantOrdered is set.
func indexOn(st storage.TableStats, cols []int, wantOrdered bool) (storage.IndexStat, bool) {
	for _, ix := range st.Indexes {
		if ix.Ordered == wantOrdered && equalInts(ix.Cols, cols) {
			return ix, true
		}
	}
	return storage.IndexStat{}, false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Estimate costs one FROM entry's pushdowns and picks the access path the
// executor will take for them.
func Estimate(in Input) Access {
	rows := float64(in.Stats.Rows)
	if rows < 1 {
		rows = 1
	}
	if len(in.EqCols) > 0 {
		return estimateEq(in, rows)
	}
	if in.RangeCol >= 0 {
		return estimateRange(in, rows)
	}
	return Access{Path: FullScan, Rows: rows}
}

func estimateEq(in Input, rows float64) Access {
	est := Access{Cols: in.EqCols}
	// A NULL probe value yields zero rows under SQL equality regardless of
	// the access path; the executor's exact-guard falls back to rechecking,
	// so estimate near-zero rather than exactly zero.
	for i, v := range in.EqVals {
		if i < len(in.EqKnown) && in.EqKnown[i] && v.IsNull() {
			est.Rows = 0.1
		}
	}
	switch {
	case len(in.Stats.PKCols) > 0 && equalInts(in.EqCols, in.Stats.PKCols):
		est.Path = PKProbe
		if est.Rows == 0 {
			est.Rows = 1
		}
	default:
		ix, ok := indexOn(in.Stats, in.EqCols, false)
		if !ok {
			ix, ok = indexOn(in.Stats, in.EqCols, true)
		}
		if ok {
			if ix.Ordered {
				est.Path = OrderedEq
			} else {
				est.Path = HashEq
			}
			est.Index = ix.Name
			if est.Rows == 0 {
				est.Rows = groupSize(rows, ix.Distinct)
			}
		} else {
			// No index: the pushdown still filters, but through a scan.
			est.Path = ScanEq
			if est.Rows == 0 {
				est.Rows = rows * defaultEqFraction
			}
		}
	}
	return est
}

func estimateRange(in Input, rows float64) Access {
	est := Access{Cols: []int{in.RangeCol}, Path: OrderedRange, Rows: rows * defaultRangeFraction}
	ix, ok := indexOn(in.Stats, []int{in.RangeCol}, true)
	if !ok {
		// Range pushdown without an ordered index degrades to a filtering
		// scan at execution; candidates still shrink by the default fraction.
		est.Path = FullScan
		return est
	}
	est.Index = ix.Name
	if in.EqRange || (in.Lo.Set && in.Hi.Set && in.Lo.Value.Compare(in.Hi.Value) == 0) {
		// Degenerate [v, v] range: the ordered-eq probe.
		est.Path = OrderedEq
		est.Rows = groupSize(rows, ix.Distinct)
		if in.Lo.Set && in.Lo.Value.IsNull() {
			// SQL `=` never matches NULL; near-zero, same as the eq path.
			est.Rows = 0.1
		}
		return est
	}
	if frac, ok := rangeFraction(in, ix); ok {
		est.Rows = float64(ix.NonNull) * frac
		// The index covers every stored version; scale back to live rows.
		if est.Rows > rows {
			est.Rows = rows
		}
	}
	if est.Rows < 1 {
		est.Rows = 1
	}
	return est
}

// groupSize estimates rows per distinct key.
func groupSize(rows float64, distinct int) float64 {
	if distinct <= 0 {
		return rows * defaultEqFraction
	}
	g := rows / float64(distinct)
	if g < 1 {
		g = 1
	}
	return g
}

// rangeFraction interpolates the fraction of the index's key domain a
// resolved numeric range covers. Non-numeric keys, unbound parameters, and
// empty stats report false, keeping the default fraction.
func rangeFraction(in Input, ix storage.IndexStat) (float64, bool) {
	min, ok1 := numeric(ix.Min)
	max, ok2 := numeric(ix.Max)
	if !ok1 || !ok2 || in.LoParam || in.HiParam {
		return 0, false
	}
	span := max - min
	if span <= 0 {
		return 1, true // single-key domain: any overlapping range takes it all
	}
	lo, hi := min, max
	if in.Lo.Set {
		v, ok := numeric(in.Lo.Value)
		if !ok {
			return 0, false
		}
		lo = v
	}
	if in.Hi.Set {
		v, ok := numeric(in.Hi.Value)
		if !ok {
			return 0, false
		}
		hi = v
	}
	if lo < min {
		lo = min
	}
	if hi > max {
		hi = max
	}
	if hi < lo {
		return 0, true
	}
	return (hi - lo) / span, true
}

func numeric(v value.Value) (float64, bool) {
	switch v.Type() {
	case value.TypeInt:
		return float64(v.Int()), true
	case value.TypeFloat:
		return v.Float(), true
	}
	return 0, false
}

// Order returns the visit order for the given per-entry estimates: ascending
// estimated candidate rows, stable so equal estimates keep statement order
// (determinism, and FROM order as the tiebreak the user can reason about).
func Order(rows []float64) []int {
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rows[order[a]] < rows[order[b]] })
	return order
}

// Desc is the typed plan description EXPLAIN returns: one step per FROM
// entry in execution order. It crosses wire protocol v2 as a typed frame and
// renders identically on every surface through String.
type Desc struct {
	SQL  string // the statement being explained
	Kind string // "select", "insert", ... (lowercased statement kind)
	Note string // non-planned statements: a one-line description
	// Steps lists the FROM entries in the order the executor visits them.
	Steps []Step
}

// Step is one FROM entry's access-path choice.
type Step struct {
	Table   string
	Binding string // alias, "" when none
	Path    string // Path.String() of the chosen access path
	Index   string // index name when one backs the path
	Columns string // columns driving the probe/scan, comma-joined
	EstRows float64
	Rows    int // table's row-count statistic at plan time
	// Residual counts the WHERE conjuncts still evaluated at the leaf for
	// this statement; Eliminated counts those proven redundant by pushdown
	// (the skip bitmask). Both are per-statement, reported on the first step.
	Residual   int
	Eliminated int
}

// String renders the description as the fixed multi-line text every CLI
// surface prints.
func (d *Desc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN %s\n", d.SQL)
	if d.Note != "" {
		fmt.Fprintf(&b, "  %s: %s\n", d.Kind, d.Note)
		return b.String()
	}
	fmt.Fprintf(&b, "  %s, cost-ranked join order (%d table(s))\n", d.Kind, len(d.Steps))
	for i, s := range d.Steps {
		name := s.Table
		if s.Binding != "" && s.Binding != s.Table {
			name += " " + s.Binding
		}
		fmt.Fprintf(&b, "  %d. %-20s %s", i+1, name, s.Path)
		if s.Index != "" {
			fmt.Fprintf(&b, " via %s", s.Index)
		}
		if s.Columns != "" {
			fmt.Fprintf(&b, " on (%s)", s.Columns)
		}
		fmt.Fprintf(&b, " · est %.4g of %d row(s)\n", s.EstRows, s.Rows)
	}
	if len(d.Steps) > 0 {
		s := d.Steps[0]
		fmt.Fprintf(&b, "  residual conjuncts: %d (%d eliminated by pushdown)\n", s.Residual, s.Eliminated)
	}
	return b.String()
}
