package repl

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/wal"
)

// TestChaosConvergence drives a primary and two followers through seeded
// crashes, partitions and compactions under continuous write traffic, and
// after every round asserts the invariants the replication design promises:
//
//   - byte-identical convergence: each follower's segment files equal the
//     primary's, and the catalog digests match;
//   - follower reads never block and never observe torn state: whenever a
//     follower reports ready, a snapshot read succeeds and sees a row count
//     that some committed primary state had;
//   - no acknowledged commit is lost: at the end, a follower is promoted and
//     every row the primary ever acknowledged is present on the new primary.
//
// The schedule is entirely deterministic for a given REPL_CHAOS_SEED: faults
// are drawn from a seeded generator, nothing fires probabilistically at
// runtime, so a failure reproduces by re-running with the printed seed.
// REPL_CHAOS_ROUNDS scales the run (default 8 rounds, a few seconds; CI smoke
// uses more).
func TestChaosConvergence(t *testing.T) {
	rounds := 8
	if s := os.Getenv("REPL_CHAOS_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad REPL_CHAOS_ROUNDS %q", s)
		}
		rounds = n
	}
	seed := int64(1)
	if s := os.Getenv("REPL_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad REPL_CHAOS_SEED %q", s)
		}
		seed = n
	}
	t.Logf("chaos: %d rounds, seed %d", rounds, seed)
	rng := rand.New(rand.NewSource(seed))

	psys, pnode := testPrimary(t)
	mustExec(t, psys, "CREATE TABLE Ledger (id INT, note STRING, PRIMARY KEY(id))")

	// follower 1 restarts across kill -9; follower 2 stays up behind a
	// faultable link. Both dial through partitionable dialers.
	type fnode struct {
		sys  *core.System
		node *Node
		dir  string
		d    *fault.Dialer
		fs   *fault.FS
	}
	start := func(dir string, d *fault.Dialer) *fnode {
		f := &fnode{dir: dir, d: d, fs: fault.NewFS(wal.OSFS())}
		f.sys, f.node = testFollower(t, pnode.Addr(), dir, d, f.fs)
		return f
	}
	f1 := start(filepath.Join(t.TempDir(), "wal"), fault.NewDialer())
	f2 := start(filepath.Join(t.TempDir(), "wal"), fault.NewDialer())
	closed := false
	defer func() {
		if !closed {
			f1.node.Close() //nolint:errcheck
			f1.sys.Close()  //nolint:errcheck
		}
		f2.node.Close() //nolint:errcheck
		f2.sys.Close()  //nolint:errcheck
	}()

	acked := 0 // rows the primary has acknowledged committing
	write := func(n int) {
		for i := 0; i < n; i++ {
			mustExec(t, psys, fmt.Sprintf("INSERT INTO Ledger VALUES (%d, 'round')", acked))
			acked++
		}
	}
	readCheck := func(f *fnode) {
		if !f.sys.Ready() {
			return // mid-resync; reads are refused by design, not partially served
		}
		start := time.Now()
		res, err := f.sys.Query("SELECT id FROM Ledger")
		if err != nil {
			// The ready flag can drop between the check and the read when a
			// reset begins; that race is the one tolerated error.
			if f.sys.Ready() {
				t.Fatalf("ready follower refused a read: %v", err)
			}
			return
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("snapshot read blocked for %v", d)
		}
		if len(res.Rows) > acked {
			t.Fatalf("follower sees %d rows, primary only ever acknowledged %d", len(res.Rows), acked)
		}
	}

	for round := 0; round < rounds; round++ {
		write(10 + rng.Intn(20))
		readCheck(f1)
		readCheck(f2)

		switch rng.Intn(5) {
		case 0: // transient link cut on follower 1; it redials and resumes
			f1.d.CutAll()
		case 1: // partition follower 2 through a burst of writes, then heal
			f2.d.Partition()
			write(10 + rng.Intn(10))
			f2.d.Heal()
		case 2: // kill -9 follower 1 mid-stream and restart it from its dir
			f1.fs.Kill()
			f1.d.CutAll()   // sever so the primary notices promptly
			f1.node.Close() //nolint:errcheck
			f1.sys.Close()  //nolint:errcheck
			nf := start(f1.dir, f1.d)
			*f1 = *nf
		case 3: // compact the primary's chain under everyone
			write(5)
			if err := psys.WAL().Compact(); err != nil {
				t.Fatal(err)
			}
		case 4: // quiet round: plain traffic
			write(5)
		}

		waitConverge(t, psys, f1.sys, 15*time.Second)
		waitConverge(t, psys, f2.sys, 15*time.Second)
		assertIdentical(t, psys, f1.sys)
		assertIdentical(t, psys, f2.sys)
	}

	// Failover: promote follower 1 and verify every acknowledged commit is
	// present and readable on the new primary — nothing the old primary
	// acknowledged was lost, and the promoted node accepts writes.
	if err := f1.node.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	res, err := f1.sys.Query("SELECT id FROM Ledger")
	if err != nil {
		t.Fatalf("read on promoted node: %v", err)
	}
	if len(res.Rows) != acked {
		t.Fatalf("promoted node has %d rows, primary acknowledged %d", len(res.Rows), acked)
	}
	mustExec(t, f1.sys, fmt.Sprintf("INSERT INTO Ledger VALUES (%d, 'post-failover')", acked))
	res, err = f1.sys.Query("SELECT id FROM Ledger")
	if err != nil || len(res.Rows) != acked+1 {
		t.Fatalf("write on promoted node: %d rows, err %v", len(res.Rows), err)
	}
	f1.node.Close() //nolint:errcheck
	f1.sys.Close()  //nolint:errcheck
	closed = true
}
