package repl

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/server"
)

// ReplicaClient fans reads across a replica set. Each read goes to one
// replica, round-robin from a random start; a replica that is unreachable,
// drops the connection mid-flight, or answers "not ready" (mid-resync
// follower) is skipped and the read retried on the next one, with
// exponential backoff + full jitter between full passes over the list. A
// "not primary" redirect is terminal for reads routed here on purpose — it
// means a write slipped in, and the caller should use a primary connection.
type ReplicaClient struct {
	addrs []string

	mu    sync.Mutex
	conns []*server.Client // lazily dialed, nil until first use
	next  int
	rng   *rand.Rand

	// Retry policy; zero values take the defaults in NewReplicaClient.
	MaxPasses int           // full passes over the replica list before giving up
	Backoff   time.Duration // base sleep between passes (doubles, full jitter)
	MaxSleep  time.Duration // backoff cap
}

// NewReplicaClient builds a client over the given replica addresses. No
// connection is made until the first read.
func NewReplicaClient(addrs []string) *ReplicaClient {
	c := &ReplicaClient{
		addrs:     append([]string(nil), addrs...),
		MaxPasses: 8,
		Backoff:   25 * time.Millisecond,
		MaxSleep:  2 * time.Second,
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	c.conns = make([]*server.Client, len(c.addrs))
	c.next = c.rng.Intn(max(len(c.addrs), 1))
	return c
}

// Addrs returns the replica list (read-only).
func (c *ReplicaClient) Addrs() []string { return c.addrs }

// Close closes every open connection.
func (c *ReplicaClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, conn := range c.conns {
		if conn != nil {
			conn.Close() //nolint:errcheck
			c.conns[i] = nil
		}
	}
	return nil
}

// pick returns the next replica's index, connection, and address, dialing if
// needed. A dial failure returns the index with a nil client so the caller
// can count the attempt and move on.
func (c *ReplicaClient) pick() (int, *server.Client, string) {
	c.mu.Lock()
	i := c.next
	c.next = (c.next + 1) % len(c.addrs)
	conn := c.conns[i]
	c.mu.Unlock()
	if conn != nil {
		return i, conn, c.addrs[i]
	}
	conn, err := server.Dial(c.addrs[i])
	if err != nil {
		return i, nil, c.addrs[i]
	}
	c.mu.Lock()
	if c.conns[i] == nil {
		c.conns[i] = conn
	} else { // lost a race; keep the established one
		conn.Close() //nolint:errcheck
		conn = c.conns[i]
	}
	c.mu.Unlock()
	return i, conn, c.addrs[i]
}

// drop discards a replica's connection after a transport error so the next
// attempt redials.
func (c *ReplicaClient) drop(i int, conn *server.Client) {
	c.mu.Lock()
	if c.conns[i] == conn {
		c.conns[i] = nil
	}
	c.mu.Unlock()
	conn.Close() //nolint:errcheck
}

// retryable reports whether the read should move on to another replica.
// Transport errors and "not ready" (resyncing follower) are retryable. A
// server that answered with any other error is not worth retrying: a
// statement error reproduces identically everywhere, and a "not primary"
// redirect means a write was routed here by mistake.
func retryable(err error) bool {
	if errors.Is(err, server.ErrNotReady) {
		return true
	}
	var we *server.WireError
	return !errors.As(err, &we)
}

// QueryContext runs one read, failing over across the replica list.
func (c *ReplicaClient) QueryContext(ctx context.Context, sql string) (*server.QueryResult, string, error) {
	var lastErr error
	sleep := c.Backoff
	for pass := 0; pass < c.MaxPasses; pass++ {
		for range c.addrs {
			if err := ctx.Err(); err != nil {
				return nil, "", err
			}
			i, conn, addr := c.pick()
			if conn == nil {
				lastErr = errors.New("repl: dial " + addr + " failed")
				continue
			}
			res, err := conn.QueryContext(ctx, sql)
			if err == nil {
				return res, addr, nil
			}
			lastErr = err
			if !retryable(err) {
				return nil, addr, err
			}
			if !errors.Is(err, server.ErrNotReady) {
				c.drop(i, conn) // transport error: connection is suspect
			}
		}
		// Whole list failed this pass; back off before the next one.
		d := time.Duration(c.rng.Int63n(int64(sleep))) + time.Millisecond
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
		if sleep *= 2; sleep > c.MaxSleep {
			sleep = c.MaxSleep
		}
	}
	return nil, "", lastErr
}
