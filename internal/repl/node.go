package repl

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/wal"
)

// Config assembles a replication node around a core.System.
type Config struct {
	// System is the database this node replicates (or replicates into). For a
	// follower it must have been opened with core.Config.WALFollower.
	System *core.System
	// Dir is the WAL directory; the fencing EPOCH file lives beside the
	// segments.
	Dir string
	// ListenAddr, when set, serves the replication stream to followers. Only
	// a primary ships; a follower listens too (so it can serve immediately
	// after promotion) but refuses handshakes until promoted.
	ListenAddr string
	// PrimaryAddr is the upstream replication address a follower pulls from.
	// Empty means this node starts as primary.
	PrimaryAddr string
	// PrimaryClientAddr is the primary's SQL address, handed to clients in
	// redirect errors.
	PrimaryClientAddr string
	// Dial overrides the outbound dialer (fault injection). Nil uses net.Dial.
	Dial func(network, addr string) (net.Conn, error)
	// FS overrides the filesystem for the EPOCH file. Nil uses the log's.
	FS wal.FS
}

// Node runs the replication role of one process: shipper connections while
// primary, the puller loop while follower, and the promotion path between.
type Node struct {
	sys  *core.System
	log  *wal.Log
	dir  string
	fs   wal.FS
	dial func(network, addr string) (net.Conn, error)

	epoch   atomic.Uint64
	primary atomic.Bool

	ln net.Listener

	mu          sync.Mutex
	shippers    map[*shipper]struct{}
	puller      *puller
	primaryAddr string
	closed      bool
	wg          sync.WaitGroup
}

// epochFile is the fencing epoch's home, beside the segments it fences.
const epochFile = "EPOCH"

// Start brings the node up in the role Config implies and returns it.
func Start(cfg Config) (*Node, error) {
	if cfg.System == nil || cfg.System.WAL() == nil {
		return nil, errors.New("repl: system must be durable (WALPath set)")
	}
	n := &Node{
		sys:         cfg.System,
		log:         cfg.System.WAL(),
		dir:         cfg.Dir,
		fs:          cfg.FS,
		dial:        cfg.Dial,
		shippers:    make(map[*shipper]struct{}),
		primaryAddr: cfg.PrimaryAddr,
	}
	if n.fs == nil {
		n.fs = n.log.FS()
	}
	if n.dial == nil {
		n.dial = net.Dial
	}
	ep, err := n.readEpoch()
	if err != nil {
		return nil, err
	}
	follower := cfg.PrimaryAddr != ""
	if !follower && ep == 0 {
		// A primary's chain is generation 1 from the start, so a follower
		// always learns a positive epoch to compare against.
		ep = 1
		if err := n.writeEpoch(ep); err != nil {
			return nil, err
		}
	}
	n.epoch.Store(ep)
	n.primary.Store(!follower)
	if follower {
		if !cfg.System.IsFollower() {
			return nil, errors.New("repl: follower node needs a system opened with WALFollower")
		}
		cfg.System.SetPrimaryAddr(cfg.PrimaryClientAddr)
		p := &puller{n: n, addr: cfg.PrimaryAddr}
		p.stop = make(chan struct{})
		n.puller = p
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			p.run()
		}()
	}
	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			n.Close() //nolint:errcheck
			return nil, err
		}
		n.ln = ln
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.acceptLoop(ln)
		}()
	}
	cfg.System.SetReplStatus(n.Status)
	cfg.System.SetPromote(n.Promote)
	return n, nil
}

// Addr returns the replication listen address ("" when not listening).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Epoch returns the fencing epoch this node believes in.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// IsPrimary reports the node's current role.
func (n *Node) IsPrimary() bool { return n.primary.Load() }

func (n *Node) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close() //nolint:errcheck
			return
		}
		s := &shipper{n: n, conn: conn, addr: conn.RemoteAddr().String()}
		s.stop = make(chan struct{})
		n.shippers[s] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			s.run()
			n.mu.Lock()
			delete(n.shippers, s)
			n.mu.Unlock()
		}()
	}
}

// Promote turns this follower into the primary: the puller stops, the
// fencing epoch advances past every epoch this node has seen (so the deposed
// primary's stream — and this node's own old stream — are refused
// everywhere the new epoch reaches), in-flight replicated transactions
// publish, and the system starts accepting writes.
func (n *Node) Promote() error {
	if n.primary.Load() {
		return errors.New("repl: already primary")
	}
	if !n.sys.Ready() {
		return errors.New("repl: follower is mid-resync; cannot promote")
	}
	n.mu.Lock()
	p := n.puller
	n.puller = nil
	n.mu.Unlock()
	if p != nil {
		p.shutdown()
	}
	if err := n.writeEpoch(n.epoch.Load() + 1); err != nil {
		return fmt.Errorf("repl: promote: %w", err)
	}
	n.epoch.Add(1)
	if err := n.sys.BecomePrimary(); err != nil {
		return err
	}
	n.sys.SetPrimaryAddr("")
	n.primary.Store(true)
	return nil
}

// Close stops the puller, every shipper connection and the listener.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	p := n.puller
	n.puller = nil
	shippers := make([]*shipper, 0, len(n.shippers))
	for s := range n.shippers {
		shippers = append(shippers, s)
	}
	n.mu.Unlock()
	if n.ln != nil {
		n.ln.Close() //nolint:errcheck
	}
	if p != nil {
		p.shutdown()
	}
	for _, s := range shippers {
		s.close()
	}
	n.wg.Wait()
	return nil
}

// Status reports replication health for the admin surface.
func (n *Node) Status() core.ReplStatus {
	st := core.ReplStatus{
		Role:  "primary",
		Ready: n.sys.Ready(),
		Epoch: n.epoch.Load(),
	}
	pos := n.log.End()
	st.Seq, st.Off = pos.Seq, pos.Off
	if !n.primary.Load() {
		st.Role = "follower"
		st.Primary = n.primaryAddr
		if a := n.sys.ReplApplier(); a != nil {
			st.LastTS, st.Applied, st.Open = a.LastTS(), a.Applied(), a.OpenTxns()
		}
		n.mu.Lock()
		if p := n.puller; p != nil {
			st.Link = p.connected()
		}
		n.mu.Unlock()
		return st
	}
	n.mu.Lock()
	for s := range n.shippers {
		if f, ok := s.status(); ok {
			st.Followers = append(st.Followers, f)
		}
	}
	n.mu.Unlock()
	return st
}

// readEpoch loads the persisted fencing epoch (0 when never written).
func (n *Node) readEpoch() (uint64, error) {
	data, err := n.fs.ReadFile(filepath.Join(n.dir, epochFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: corrupt %s file: %w", epochFile, err)
	}
	return v, nil
}

// writeEpoch persists the fencing epoch durably (tmp, fsync, rename) — a
// promotion or a learned newer epoch must survive a crash, or a deposed
// primary's stream could be accepted after restart.
func (n *Node) writeEpoch(v uint64) error {
	path := filepath.Join(n.dir, epochFile)
	tmp := path + ".tmp"
	f, err := n.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(strconv.FormatUint(v, 10) + "\n")); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := n.fs.Rename(tmp, path); err != nil {
		return err
	}
	return n.fs.SyncDir(n.dir)
}

// learnEpoch adopts a newer epoch seen from the upstream primary.
func (n *Node) learnEpoch(v uint64) error {
	if v <= n.epoch.Load() {
		return nil
	}
	if err := n.writeEpoch(v); err != nil {
		return err
	}
	n.epoch.Store(v)
	return nil
}
