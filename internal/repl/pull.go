package repl

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// puller is the follower's side of the stream: it dials the primary,
// handshakes with its chain end, ingests shipped chunks byte-for-byte (whole
// frames only, so the on-disk tail is always frame-aligned), replays every
// record through the applier, and acknowledges applied positions. A broken
// link redials with exponential backoff + jitter; a kill -9 at any byte
// boundary is recovered by the log's standard torn-tail truncation on
// restart, after which the handshake resumes exactly where the disk ends.
type puller struct {
	n    *Node
	addr string
	stop chan struct{}

	mu   sync.Mutex
	conn net.Conn
	up   bool
	done bool
}

func (p *puller) connected() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up
}

// shutdown stops the loop and severs any live connection.
func (p *puller) shutdown() {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.done = true
	conn := p.conn
	p.mu.Unlock()
	close(p.stop)
	if conn != nil {
		conn.Close() //nolint:errcheck
	}
}

func (p *puller) stopped() bool {
	select {
	case <-p.stop:
		return true
	default:
		return false
	}
}

func (p *puller) run() {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for !p.stopped() {
		ok := p.session()
		if p.stopped() {
			return
		}
		if ok {
			backoff = 50 * time.Millisecond // made progress; fail fast next time
		}
		// Full jitter: sleep uniformly in (0, backoff] so reconnecting
		// followers do not stampede a recovering primary in lockstep.
		d := time.Duration(rng.Int63n(int64(backoff))) + time.Millisecond
		select {
		case <-time.After(d):
		case <-p.stop:
			return
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// session runs one connection lifetime; ok reports whether the handshake
// completed (used to reset the redial backoff).
func (p *puller) session() (ok bool) {
	conn, err := p.n.dial("tcp", p.addr)
	if err != nil {
		return false
	}
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		conn.Close() //nolint:errcheck
		return false
	}
	p.conn = conn
	p.mu.Unlock()
	defer func() {
		conn.Close() //nolint:errcheck
		p.mu.Lock()
		p.conn, p.up = nil, false
		p.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)
	log := p.n.log
	applier := p.n.sys.ReplApplier()

	pos, tailSnap := log.TailInfo()
	hello := helloMsg{Epoch: p.n.epoch.Load(), Pos: pos, TailSnap: tailSnap}
	if _, err := bw.WriteString(magic); err != nil {
		return false
	}
	if err := writeFlush(bw, kHello, encodeHello(hello)); err != nil {
		return false
	}
	kind, body, err := readMsg(br)
	if err != nil {
		return false
	}
	if kind == kErr {
		return false // refused (not primary / fenced); back off and retry
	}
	if kind != kHelloOK {
		return false
	}
	hok, err := decodeHelloOK(body)
	if err != nil {
		return false
	}
	if hok.Epoch < p.n.epoch.Load() {
		// Fencing: this "primary" is from a deposed generation. Its chain
		// may have diverged from the promoted timeline; accepting one byte
		// could split the replica set's history.
		return false
	}
	if err := p.n.learnEpoch(hok.Epoch); err != nil {
		return false
	}

	resync := hok.Reset
	if resync {
		// Our position predates the primary's retained chain (or diverged):
		// drop everything and take the full re-ship. Reads are refused until
		// the replacement state has applied through the catch-up target.
		p.n.sys.SetReady(false)
		if err := applier.Reset(); err != nil {
			return false
		}
		if err := log.IngestReset(); err != nil {
			return false
		}
	}
	p.mu.Lock()
	p.up = true
	p.mu.Unlock()

	// active tracks whether the log has an open tail this session writes to;
	// after recovery the tail segment is open unless it was sealed.
	cur, _ := log.TailInfo()
	active := false
	if !resync {
		if st, ok := log.SegmentStatus(cur.Seq); ok && !st.Sealed {
			active = true
		}
	} else {
		cur = wal.Position{}
	}
	var recs uint64 // records applied this connection
	// The read gate: closed above for a resync, and possibly already closed
	// by a restart that recovered no replayed state. Either way it reopens
	// only once the local chain has applied through the primary's catch-up
	// target (cur >= hok.Ready), never before — a just-reset follower at
	// cur={0,0} stays dark until the replacement state has fully landed.
	ready := !resync && p.n.sys.Ready()
	caughtUp := func() {
		if !ready && !cur.Less(hok.Ready) {
			p.n.sys.SetReady(true)
			ready = true
		}
	}
	caughtUp() // a chain already at the catch-up target is current as-is

	sendAck := func(echo int64) bool {
		ack := ackMsg{Pos: cur, Records: recs, LastTS: applier.LastTS(), EchoNanos: echo}
		return writeFlush(bw, kAck, encodeAck(ack)) == nil
	}

	for {
		kind, body, err := readMsg(br)
		if err != nil {
			return true
		}
		switch kind {
		case kSegOpen:
			m, err := decodeSegOpen(body)
			if err != nil {
				return true
			}
			switch {
			case m.Seq == cur.Seq:
				// Re-announce of the segment our tail is in (resume) — or,
				// with the tail sealed, a segment we already hold in full.
			case m.Seq > cur.Seq:
				if active {
					return true // protocol error: previous segment never sealed
				}
				if err := log.IngestOpen(m.Seq, m.Snapshot); err != nil {
					return true
				}
				if m.Snapshot {
					applier.BeginSnapshot()
				}
				cur = wal.Position{Seq: m.Seq, Off: 0}
				active = true
			default:
				return true // shipping backwards: protocol error
			}
		case kData:
			m, err := decodeData(body)
			if err != nil {
				return true
			}
			if m.Seq != cur.Seq || !active {
				return true
			}
			// Log first: bytes land in the local chain before their effects
			// are applied or acknowledged, so an injected write failure kills
			// the session before state can run ahead of the log. The write is
			// not fsynced — durability arrives at the next seal — so a crash
			// can regress an acknowledged tail; the reconnect handshake then
			// resumes from whatever survived on disk, at worst as a reset.
			if err := log.IngestWrite(m.Off, m.Payload); err != nil {
				return true
			}
			records, err := wal.DecodeShipped(m.Payload, m.Off == 0)
			if err != nil {
				return true
			}
			if uint64(len(records)) != m.Records {
				return true
			}
			for _, r := range records {
				if err := p.apply(applier, r); err != nil {
					return true
				}
			}
			recs += uint64(len(records))
			cur.Off = m.Off + int64(len(m.Payload))
			caughtUp()
			if !sendAck(m.SentNanos) {
				return true
			}
		case kSegSeal:
			m, err := decodeSegSeal(body)
			if err != nil {
				return true
			}
			if active && m.Seq == cur.Seq {
				if err := log.IngestSeal(); err != nil {
					return true
				}
				active = false
			}
			caughtUp()
			if !sendAck(0) {
				return true
			}
		case kErr:
			return true
		default:
			return true
		}
	}
}

// apply replays one shipped record, keeping the follower's statement cache
// coherent (the applier bumps the DDL version; nothing else is needed — the
// engine re-plans against the replicated schema on the next statement).
func (p *puller) apply(a *wal.Applier, r storage.LogRecord) error {
	if err := a.Apply(r); err != nil {
		return fmt.Errorf("repl: apply %v on %q: %w", r.Op, r.Table, err)
	}
	return nil
}
