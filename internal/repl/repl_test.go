package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/wal"
)

// testPrimary boots a durable primary system with a replication listener.
// Segments rotate early (2 KiB) so a few dozen rows cross several segment
// boundaries; auto-compaction is off so tests trigger it explicitly.
func testPrimary(t *testing.T) (*core.System, *Node) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	sys := core.NewSystem(core.Config{
		WALPath: dir, WALSync: true, WALSegmentBytes: 2048, WALCompactAfter: -1,
		CoordShards: 1,
	})
	if err := sys.Err(); err != nil {
		t.Fatal(err)
	}
	n, err := Start(Config{System: sys, Dir: dir, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		sys.Close() //nolint:errcheck
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close(); sys.Close() }) //nolint:errcheck
	return sys, n
}

// testFollower boots a follower of primary in its own directory, optionally
// through a fault dialer and a fault filesystem.
func testFollower(t *testing.T, primaryRepl, dir string, d *fault.Dialer, fs wal.FS) (*core.System, *Node) {
	t.Helper()
	sys := core.NewSystem(core.Config{
		WALPath: dir, WALSync: true, WALFollower: true, WALFS: fs, CoordShards: 1,
	})
	if err := sys.Err(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		System: sys, Dir: dir, PrimaryAddr: primaryRepl,
		PrimaryClientAddr: "primary.example:7717",
	}
	if d != nil {
		cfg.Dial = d.Dial
	}
	n, err := Start(cfg)
	if err != nil {
		sys.Close() //nolint:errcheck
		t.Fatal(err)
	}
	return sys, n
}

func mustExec(t *testing.T, sys *core.System, sql string) {
	t.Helper()
	if _, err := sys.Execute(sql, "test"); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// waitConverge blocks until the follower's chain end reaches the primary's
// current end and the follower serves reads, or fails the test.
func waitConverge(t *testing.T, p, f *core.System, timeout time.Duration) {
	t.Helper()
	target := p.WAL().End()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		cur, _ := f.WAL().TailInfo()
		if cur == target && f.Ready() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	cur, _ := f.WAL().TailInfo()
	t.Fatalf("follower did not converge: at %+v ready=%v, want %+v", cur, f.Ready(), target)
}

// assertIdentical checks logical state (catalog digest) and physical state:
// walking back from the follower's tail, every segment must be a byte-exact
// copy of the primary's, down to the primary's compaction horizon. Below that
// horizon the follower legitimately holds MORE history than the primary — a
// compaction under a connected follower rewrites the primary's old segments
// into a snapshot the follower never needed, while the follower keeps its raw
// copies for its own crash recovery. What must never happen is a shared
// segment whose bytes differ.
func assertIdentical(t *testing.T, p, f *core.System) {
	t.Helper()
	if pd, fd := wal.StateDigest(p.Catalog()), wal.StateDigest(f.Catalog()); pd != fd {
		t.Fatalf("catalog digests differ: primary %x follower %x", pd[:8], fd[:8])
	}
	pm := make(map[uint64]wal.SegmentInfo)
	for _, s := range p.WAL().Segments() {
		pm[s.Seq] = s
	}
	fch := f.WAL().Segments()
	compared := 0
	for i := len(fch) - 1; i >= 0; i-- {
		fs := fch[i]
		ps, ok := pm[fs.Seq]
		if !ok || ps.Snapshot != fs.Snapshot {
			break // the primary compacted history below this point
		}
		pb, err := os.ReadFile(ps.Path)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := os.ReadFile(fs.Path)
		if err != nil {
			t.Fatal(err)
		}
		if string(pb) != string(fb) {
			t.Fatalf("segment %d differs between primary (%d B) and follower (%d B)", fs.Seq, len(pb), len(fb))
		}
		compared++
	}
	if compared == 0 {
		t.Fatalf("no shared segments to compare: primary %+v follower %+v", p.WAL().Segments(), fch)
	}
}

func TestFollowerReplicatesAndGatesWrites(t *testing.T) {
	psys, pnode := testPrimary(t)
	mustExec(t, psys, "CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY(fno))")
	for i := 0; i < 50; i++ {
		mustExec(t, psys, fmt.Sprintf("INSERT INTO Flights VALUES (%d, 'Paris')", i))
	}

	fdir := filepath.Join(t.TempDir(), "wal")
	fsys, fnode := testFollower(t, pnode.Addr(), fdir, nil, nil)
	defer func() { fnode.Close(); fsys.Close() }() //nolint:errcheck
	waitConverge(t, psys, fsys, 5*time.Second)
	assertIdentical(t, psys, fsys)

	// Snapshot reads serve at the replayed watermark.
	res, err := fsys.Query("SELECT fno FROM Flights WHERE dest = 'Paris'")
	if err != nil {
		t.Fatalf("follower read: %v", err)
	}
	if len(res.Rows) != 50 {
		t.Fatalf("follower sees %d rows, want 50", len(res.Rows))
	}

	// Writes redirect to the primary with its client address.
	var np *core.NotPrimaryError
	if _, err := fsys.Execute("INSERT INTO Flights VALUES (99, 'Oslo')", "test"); !errors.As(err, &np) {
		t.Fatalf("follower write: got %v, want NotPrimaryError", err)
	} else if np.Primary != "primary.example:7717" {
		t.Fatalf("redirect names %q", np.Primary)
	}

	// Entangled submissions are writes-in-waiting; same redirect.
	q := "SELECT ('A', fno) INTO ANSWER Reservation WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1"
	if _, err := fsys.Submit(q, "a"); !errors.As(err, &np) {
		t.Fatalf("follower submit: got %v, want NotPrimaryError", err)
	}

	// Continuous replay: new primary writes arrive without a reconnect.
	for i := 50; i < 60; i++ {
		mustExec(t, psys, fmt.Sprintf("INSERT INTO Flights VALUES (%d, 'Oslo')", i))
	}
	waitConverge(t, psys, fsys, 5*time.Second)
	res, err = fsys.Query("SELECT fno FROM Flights")
	if err != nil || len(res.Rows) != 60 {
		t.Fatalf("after live writes: %d rows, err %v", len(res.Rows), err)
	}
}

func TestFollowerCatchUpAcrossCompaction(t *testing.T) {
	psys, pnode := testPrimary(t)
	mustExec(t, psys, "CREATE TABLE KV (k INT, v STRING, PRIMARY KEY(k))")
	for i := 0; i < 20; i++ {
		mustExec(t, psys, fmt.Sprintf("INSERT INTO KV VALUES (%d, 'r1')", i))
	}

	d := fault.NewDialer()
	fdir := filepath.Join(t.TempDir(), "wal")
	fsys, fnode := testFollower(t, pnode.Addr(), fdir, d, nil)
	defer func() { fnode.Close(); fsys.Close() }() //nolint:errcheck
	waitConverge(t, psys, fsys, 5*time.Second)
	joined, _ := fsys.WAL().TailInfo()

	// Disconnect, then write far past the follower's position and compact the
	// chain away underneath it.
	d.Partition()
	for i := 20; i < 120; i++ {
		mustExec(t, psys, fmt.Sprintf("INSERT INTO KV VALUES (%d, 'r2')", i))
	}
	waitShipperGone(t, pnode)
	if err := psys.WAL().Compact(); err != nil {
		t.Fatal(err)
	}
	segs := psys.WAL().Segments()
	if len(segs) == 0 || !segs[0].Snapshot || segs[0].Seq <= joined.Seq {
		t.Fatalf("compaction did not absorb the follower's position: %+v", segs)
	}

	// Reconnect: the handshake must answer "reset" and re-ship the whole
	// chain, snapshot segment first.
	d.Heal()
	waitConverge(t, psys, fsys, 10*time.Second)
	fsegs := fsys.WAL().Segments()
	if len(fsegs) == 0 || fsegs[0].Seq != segs[0].Seq || !fsegs[0].Snapshot {
		t.Fatalf("follower chain does not start at the primary's snapshot: %+v", fsegs)
	}
	assertIdentical(t, psys, fsys)
	res, err := fsys.Query("SELECT k FROM KV")
	if err != nil || len(res.Rows) != 120 {
		t.Fatalf("after resync: %d rows, err %v", len(res.Rows), err)
	}
}

// TestResyncGatesReadsUntilCaughtUp drives a real follower from a scripted
// primary so the not-ready window is held open deliberately: the handshake
// orders a reset, which discards the follower's state, and from that moment
// until the chain has applied through the handshake's catch-up target every
// read must be refused with core.ErrNotReady — never served from the empty or
// partially re-shipped catalog. Reads come back exactly at the target.
func TestResyncGatesReadsUntilCaughtUp(t *testing.T) {
	// Donor chain: a standalone durable system whose segment files the
	// scripted shipper re-ships verbatim.
	ddir := filepath.Join(t.TempDir(), "wal")
	donor := core.NewSystem(core.Config{WALPath: ddir, WALSync: true, WALSegmentBytes: 2048, WALCompactAfter: -1, CoordShards: 1})
	if err := donor.Err(); err != nil {
		t.Fatal(err)
	}
	defer donor.Close() //nolint:errcheck
	mustExec(t, donor, "CREATE TABLE KV (k INT, v STRING, PRIMARY KEY(k))")
	pad := strings.Repeat("x", 150) // cross several 2 KiB segment boundaries
	for i := 0; i < 30; i++ {
		mustExec(t, donor, fmt.Sprintf("INSERT INTO KV VALUES (%d, '%s')", i, pad))
	}
	segs := donor.WAL().Segments()
	target := donor.WAL().End()
	if len(segs) < 2 {
		t.Fatalf("want a multi-segment donor chain, got %d segments", len(segs))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck

	fdir := filepath.Join(t.TempDir(), "wal")
	fsys, fnode := testFollower(t, ln.Addr().String(), fdir, nil, nil)
	defer func() { fnode.Close(); fsys.Close() }() //nolint:errcheck

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var m [len(magic)]byte
	if _, err := readFull(br, m[:]); err != nil || string(m[:]) != magic {
		t.Fatalf("magic %q: %v", m, err)
	}
	kind, body, err := readMsg(br)
	if err != nil || kind != kHello {
		t.Fatalf("hello: kind %d err %v", kind, err)
	}
	if _, err := decodeHello(body); err != nil {
		t.Fatal(err)
	}
	// Order a reset with the donor's end as the catch-up target, then stall:
	// the follower wipes its chain and must hold its read gate closed.
	if err := writeFlush(bw, kHelloOK, encodeHelloOK(helloOKMsg{Epoch: 1, Reset: true, Ready: target})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cur, _ := fsys.WAL().TailInfo(); cur == (wal.Position{}) {
			break // IngestReset done; SetReady(false) strictly precedes it
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never processed the reset")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if fsys.Ready() {
		t.Fatal("follower ready mid-resync, before any replacement state applied")
	}
	if _, err := fsys.Query("SELECT k FROM KV"); !errors.Is(err, core.ErrNotReady) {
		t.Fatalf("mid-resync read: got %v, want ErrNotReady", err)
	}

	// Ship the donor chain one segment per chunk, checking the gate at every
	// acknowledged position below the target. Acks arrive after the follower
	// applied the chunk (and ran its catch-up check), so each one is a
	// deterministic observation point.
	readAck := func() ackMsg {
		t.Helper()
		kind, body, err := readMsg(br)
		if err != nil || kind != kAck {
			t.Fatalf("ack: kind %d err %v", kind, err)
		}
		ack, err := decodeAck(body)
		if err != nil {
			t.Fatal(err)
		}
		return ack
	}
	expectGate := func(ack ackMsg) {
		t.Helper()
		if ack.Pos.Less(target) && fsys.Ready() {
			t.Fatalf("follower ready at %+v, before catch-up target %+v", ack.Pos, target)
		}
	}
	var last ackMsg
	for _, s := range segs {
		if err := writeFlush(bw, kSegOpen, encodeSegOpen(segOpenMsg{Seq: s.Seq, Snapshot: s.Snapshot})); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(s.Path)
		if err != nil {
			t.Fatal(err)
		}
		data = data[:s.Bytes]
		n, recs := wal.CutFrames(data, true)
		if n != len(data) {
			t.Fatalf("donor segment %d not frame-aligned: %d of %d bytes", s.Seq, n, len(data))
		}
		hdr := encodeDataHeader(dataMsg{Seq: s.Seq, Off: 0, Records: uint64(recs)})
		if err := writeFlush(bw, kData, append(hdr, data...)); err != nil {
			t.Fatal(err)
		}
		last = readAck()
		expectGate(last)
		if s.Sealed {
			if err := writeFlush(bw, kSegSeal, encodeSegSeal(segSealMsg{Seq: s.Seq})); err != nil {
				t.Fatal(err)
			}
			last = readAck()
			expectGate(last)
		}
	}
	if last.Pos != target {
		t.Fatalf("final ack at %+v, want the catch-up target %+v", last.Pos, target)
	}
	if !fsys.Ready() {
		t.Fatal("follower not ready after applying through the catch-up target")
	}
	res, err := fsys.Query("SELECT k FROM KV")
	if err != nil || len(res.Rows) != 30 {
		t.Fatalf("after catch-up: %d rows, err %v; want 30", len(res.Rows), err)
	}
}

// TestEmptyChainRestartStaysNotReady covers the restart half of the resync
// gate: a follower killed after IngestReset wiped its chain but before any
// replacement state landed reopens with an empty catalog. That node must come
// back not-ready (refusing reads and promotion) instead of serving emptiness
// as truth, and must become ready again through a normal catch-up.
func TestEmptyChainRestartStaysNotReady(t *testing.T) {
	psys, pnode := testPrimary(t)
	mustExec(t, psys, "CREATE TABLE KV (k INT, PRIMARY KEY(k))")
	mustExec(t, psys, "INSERT INTO KV VALUES (1)")

	// Simulate the mid-resync crash by hand: a follower directory whose chain
	// is empty — exactly what a kill -9 between IngestReset and the first
	// replacement seal leaves behind (segment files gone, nothing replayed).
	fdir := filepath.Join(t.TempDir(), "wal")
	fsys := core.NewSystem(core.Config{WALPath: fdir, WALSync: true, WALFollower: true, CoordShards: 1})
	if err := fsys.Err(); err != nil {
		t.Fatal(err)
	}
	if fsys.Ready() {
		t.Fatal("follower with an empty recovered chain reports ready")
	}
	if _, err := fsys.Query("SELECT k FROM KV"); !errors.Is(err, core.ErrNotReady) {
		t.Fatalf("read on empty follower: got %v, want ErrNotReady", err)
	}

	// With the upstream link held down the node stays not-ready, and failover
	// promotion must refuse it — promoting an empty follower is data loss.
	d := fault.NewDialer()
	d.Partition()
	fnode, err := Start(Config{System: fsys, Dir: fdir, PrimaryAddr: pnode.Addr(), Dial: d.Dial})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { fnode.Close(); fsys.Close() }() //nolint:errcheck
	if err := fnode.Promote(); err == nil || fnode.IsPrimary() {
		t.Fatalf("promotion of a not-ready empty follower did not refuse (err %v)", err)
	}

	// Catch-up restores readiness; a restarted follower with actual replayed
	// state, by contrast, serves (stale) reads immediately.
	d.Heal()
	waitConverge(t, psys, fsys, 5*time.Second)
	res, err := fsys.Query("SELECT k FROM KV")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after catch-up: %d rows, err %v; want 1", len(res.Rows), err)
	}

	fnode.Close() //nolint:errcheck
	if err := fsys.Close(); err != nil {
		t.Fatal(err)
	}
	re := core.NewSystem(core.Config{WALPath: fdir, WALSync: true, WALFollower: true, CoordShards: 1})
	if err := re.Err(); err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	if !re.Ready() {
		t.Fatal("follower with replayed state reopened not-ready")
	}
	if res, err := re.Query("SELECT k FROM KV"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("stale read after restart: %d rows, err %v; want 1", len(res.Rows), err)
	}
}

// waitShipperGone waits for the primary to notice the broken connection and
// release the follower's retention pin.
func waitShipperGone(t *testing.T, n *Node) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		n.mu.Lock()
		live := len(n.shippers)
		n.mu.Unlock()
		if live == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("shipper connection never drained")
}

func TestRetentionPinsHoldSegmentsForConnectedFollowers(t *testing.T) {
	psys, pnode := testPrimary(t)
	mustExec(t, psys, "CREATE TABLE KV (k INT, v STRING, PRIMARY KEY(k))")
	pad := strings.Repeat("x", 120) // cross several 2 KiB segment boundaries
	for i := 0; i < 60; i++ {
		mustExec(t, psys, fmt.Sprintf("INSERT INTO KV VALUES (%d, '%s')", i, pad))
	}
	if n := len(psys.WAL().Segments()); n < 3 {
		t.Fatalf("want a multi-segment chain, got %d segments", n)
	}

	// A raw protocol follower that handshakes at the chain start and never
	// acknowledges: its pin must hold every segment in place.
	conn, err := net.Dial("tcp", pnode.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)
	if _, err := bw.WriteString(magic); err != nil {
		t.Fatal(err)
	}
	if err := writeFlush(bw, kHello, encodeHello(helloMsg{Epoch: 1})); err != nil {
		t.Fatal(err)
	}
	kind, _, err := readMsg(br)
	if err != nil || kind != kHelloOK {
		t.Fatalf("handshake: kind %d err %v", kind, err)
	}

	firstSeq := psys.WAL().Segments()[0].Seq
	if err := psys.WAL().Compact(); err != nil {
		t.Fatal(err)
	}
	segs := psys.WAL().Segments()
	if segs[0].Seq != firstSeq || segs[0].Snapshot {
		t.Fatalf("compaction touched pinned segment %d: %+v", firstSeq, segs[0])
	}

	// Disconnect; once the pin is released the same compaction proceeds.
	conn.Close() //nolint:errcheck
	waitShipperGone(t, pnode)
	if err := psys.WAL().Compact(); err != nil {
		t.Fatal(err)
	}
	segs = psys.WAL().Segments()
	if segs[0].Seq <= firstSeq || !segs[0].Snapshot {
		t.Fatalf("compaction still held back after release: %+v", segs)
	}
}

func TestPromotionBumpsEpochAndAcceptsWrites(t *testing.T) {
	psys, pnode := testPrimary(t)
	mustExec(t, psys, "CREATE TABLE KV (k INT, v STRING, PRIMARY KEY(k))")
	for i := 0; i < 30; i++ {
		mustExec(t, psys, fmt.Sprintf("INSERT INTO KV VALUES (%d, 'pre')", i))
	}

	fdir := filepath.Join(t.TempDir(), "wal")
	fsys, fnode := testFollower(t, pnode.Addr(), fdir, nil, nil)
	defer func() { fnode.Close(); fsys.Close() }() //nolint:errcheck
	waitConverge(t, psys, fsys, 5*time.Second)

	if err := fnode.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := fnode.Epoch(); got != 2 {
		t.Fatalf("promoted epoch = %d, want 2", got)
	}
	if !fnode.IsPrimary() || fsys.IsFollower() {
		t.Fatal("promotion did not flip the role")
	}
	// The persisted epoch survives a restart of the promoted node.
	if b, err := os.ReadFile(filepath.Join(fdir, epochFile)); err != nil || string(b) != "2\n" {
		t.Fatalf("EPOCH file = %q, %v; want \"2\\n\"", b, err)
	}

	// Writes are accepted now, and the clock moved past the replayed
	// watermark so new commits order after every replicated one.
	mustExec(t, fsys, "INSERT INTO KV VALUES (1000, 'post-promotion')")
	res, err := fsys.Query("SELECT k FROM KV")
	if err != nil || len(res.Rows) != 31 {
		t.Fatalf("promoted node sees %d rows, err %v; want 31", len(res.Rows), err)
	}

	// The promoted node survives its own crash-recovery cycle: reopen the
	// chain as a standalone primary and find everything still there.
	fnode.Close() //nolint:errcheck
	if err := fsys.Close(); err != nil {
		t.Fatal(err)
	}
	re := core.NewSystem(core.Config{WALPath: fdir, WALSync: true, CoordShards: 1})
	if err := re.Err(); err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	res, err = re.Query("SELECT k FROM KV")
	if err != nil || len(res.Rows) != 31 {
		t.Fatalf("recovered promoted node sees %d rows, err %v; want 31", len(res.Rows), err)
	}
}

func TestFencingRefusesStaleAndDeposedStreams(t *testing.T) {
	psys, pnode := testPrimary(t)
	mustExec(t, psys, "CREATE TABLE KV (k INT, PRIMARY KEY(k))")
	mustExec(t, psys, "INSERT INTO KV VALUES (1)")

	// Shipper side: a follower from a later epoch (it witnessed a promotion
	// this primary missed) must be refused — this primary's chain is stale.
	conn, err := net.Dial("tcp", pnode.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)
	if _, err := bw.WriteString(magic); err != nil {
		t.Fatal(err)
	}
	if err := writeFlush(bw, kHello, encodeHello(helloMsg{Epoch: pnode.Epoch() + 1})); err != nil {
		t.Fatal(err)
	}
	kind, body, err := readMsg(br)
	if err != nil || kind != kErr {
		t.Fatalf("future-epoch hello: kind %d err %v, want kErr", kind, err)
	}
	if string(body) == "" {
		t.Fatal("refusal carries no reason")
	}

	// Puller side: a follower that has learned a newer epoch refuses this
	// deposed primary's stream and never ingests a byte from it.
	fdir := filepath.Join(t.TempDir(), "wal")
	if err := os.MkdirAll(fdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(fdir, epochFile), []byte("2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys, fnode := testFollower(t, pnode.Addr(), fdir, nil, nil)
	defer func() { fnode.Close(); fsys.Close() }() //nolint:errcheck
	start, _ := fsys.WAL().TailInfo()              // a fresh log's own empty header, nothing shipped
	time.Sleep(300 * time.Millisecond)
	if a := fsys.ReplApplier(); a.Applied() != 0 {
		t.Fatalf("follower at epoch 2 applied %d records from an epoch-1 primary", a.Applied())
	}
	if cur, _ := fsys.WAL().TailInfo(); cur != start {
		t.Fatalf("follower at epoch 2 ingested bytes from an epoch-1 primary: %+v -> %+v", start, cur)
	}
	if fnode.Status().Link {
		t.Fatal("follower at epoch 2 reports a live link to an epoch-1 primary")
	}
}

func TestTornStreamAndKillMinusNineRecovery(t *testing.T) {
	psys, pnode := testPrimary(t)
	mustExec(t, psys, "CREATE TABLE KV (k INT, v STRING, PRIMARY KEY(k))")
	for i := 0; i < 40; i++ {
		mustExec(t, psys, fmt.Sprintf("INSERT INTO KV VALUES (%d, 'pre')", i))
	}

	ffs := fault.NewFS(wal.OSFS())
	fdir := filepath.Join(t.TempDir(), "wal")
	fsys, fnode := testFollower(t, pnode.Addr(), fdir, nil, ffs)
	waitConverge(t, psys, fsys, 5*time.Second)

	// Torn stream: the next ingest write persists 3 bytes of its chunk and
	// fails — exactly what a crash mid-write leaves on disk.
	ffs.ShortWrite(3)
	for i := 40; i < 80; i++ {
		mustExec(t, psys, fmt.Sprintf("INSERT INTO KV VALUES (%d, 'mid')", i))
	}
	// The injected failure is sticky for this process; "kill -9" it.
	ffs.Kill()
	fnode.Close() //nolint:errcheck
	fsys.Close()  //nolint:errcheck

	// Restart from the same directory: recovery truncates the torn tail at
	// the last whole frame, the handshake resumes from the truncated end,
	// and the chain converges byte-identically.
	fsys2, fnode2 := testFollower(t, pnode.Addr(), fdir, nil, fault.NewFS(wal.OSFS()))
	defer func() { fnode2.Close(); fsys2.Close() }() //nolint:errcheck
	waitConverge(t, psys, fsys2, 10*time.Second)
	assertIdentical(t, psys, fsys2)
	res, err := fsys2.Query("SELECT k FROM KV")
	if err != nil || len(res.Rows) != 80 {
		t.Fatalf("after torn-stream recovery: %d rows, err %v; want 80", len(res.Rows), err)
	}
}

func TestFollowerRejectsInteractiveTransactions(t *testing.T) {
	psys, pnode := testPrimary(t)
	mustExec(t, psys, "CREATE TABLE KV (k INT, PRIMARY KEY(k))")

	fdir := filepath.Join(t.TempDir(), "wal")
	fsys, fnode := testFollower(t, pnode.Addr(), fdir, nil, nil)
	defer func() { fnode.Close(); fsys.Close() }() //nolint:errcheck
	waitConverge(t, psys, fsys, 5*time.Second)

	sess := core.NewSession(fsys)
	defer sess.Close()
	var np *core.NotPrimaryError
	if _, err := sess.Execute("BEGIN", "t"); !errors.As(err, &np) {
		t.Fatalf("BEGIN on follower: got %v, want NotPrimaryError", err)
	}
}
