package repl

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// shipChunk is the target chunk size; a chunk grows past it only when a
// single record frame is larger.
const shipChunk = 256 << 10

// shipper streams the log to one follower connection. The shipping goroutine
// is the only writer on the connection; a companion goroutine reads acks,
// advancing the retention pin so compaction never deletes a segment this
// follower still needs.
type shipper struct {
	n    *Node
	conn net.Conn
	addr string
	stop chan struct{}

	mu        sync.Mutex
	started   bool // handshake done; status() reports this follower
	connected bool
	shipPos   wal.Position
	shipRecs  uint64
	ack       ackMsg
	lagMillis int64
}

func (s *shipper) close() {
	s.conn.Close() //nolint:errcheck
}

// status reports this follower for the admin surface.
func (s *shipper) status() (core.ReplFollowerStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return core.ReplFollowerStatus{}, false
	}
	lag := uint64(0)
	if s.shipRecs > s.ack.Records {
		lag = s.shipRecs - s.ack.Records
	}
	return core.ReplFollowerStatus{
		Addr:       s.addr,
		ShipSeq:    s.shipPos.Seq,
		ShipOff:    s.shipPos.Off,
		AckSeq:     s.ack.Pos.Seq,
		AckOff:     s.ack.Pos.Off,
		AckRecords: s.ack.Records,
		LagRecords: lag,
		LagMillis:  s.lagMillis,
		Connected:  s.connected,
	}, true
}

func (s *shipper) run() {
	defer s.conn.Close() //nolint:errcheck
	br := bufio.NewReaderSize(s.conn, 64<<10)
	bw := bufio.NewWriterSize(s.conn, 64<<10)

	var m [len(magic)]byte
	if _, err := readFull(br, m[:]); err != nil || string(m[:]) != magic {
		return
	}
	kind, body, err := readMsg(br)
	if err != nil || kind != kHello {
		return
	}
	hello, err := decodeHello(body)
	if err != nil {
		return
	}
	refuse := func(format string, args ...any) {
		writeMsg(bw, kErr, encodeErr(fmt.Sprintf(format, args...))) //nolint:errcheck
		bw.Flush()                                                  //nolint:errcheck
	}
	if !s.n.primary.Load() {
		refuse("not primary")
		return
	}
	epoch := s.n.epoch.Load()
	if hello.Epoch > epoch {
		// The follower has seen a newer generation: we were deposed while
		// away. Refusing here is the fencing cut — our stale chain never
		// reaches a follower of the new primary.
		refuse("fenced: follower epoch %d is newer than ours (%d)", hello.Epoch, epoch)
		return
	}
	segs, pin, reset, err := s.n.log.ShipHandshake(hello.Pos, hello.TailSnap)
	if err != nil {
		refuse("handshake: %v", err)
		return
	}
	defer pin.Release()
	// Everything through the chain end as of now is the catch-up target: a
	// follower that was reset serves reads again once it has applied through
	// here (the snapshot's trailing commit is at or before it).
	ready := s.n.log.End()
	if err := writeMsg(bw, kHelloOK, encodeHelloOK(helloOKMsg{Epoch: epoch, Reset: reset, Ready: ready})); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	pos := hello.Pos
	if reset {
		pos = wal.Position{Seq: segs[0].Seq, Off: 0}
	}
	s.mu.Lock()
	s.started, s.connected = true, true
	s.shipPos = pos
	s.mu.Unlock()

	// Ack reader: advances the pin and the lag stats; its exit (connection
	// gone) stops a shipper parked in WaitSegment.
	go func() {
		defer close(s.stop)
		for {
			kind, body, err := readMsg(br)
			if err != nil || kind != kAck {
				return
			}
			ack, err := decodeAck(body)
			if err != nil {
				return
			}
			pin.Update(ack.Pos.Seq)
			s.mu.Lock()
			s.ack = ack
			if ack.EchoNanos > 0 {
				if ms := (time.Now().UnixNano() - ack.EchoNanos) / int64(time.Millisecond); ms >= 0 {
					s.lagMillis = ms
				}
			}
			s.mu.Unlock()
		}
	}()

	s.ship(bw, pos) //nolint:errcheck // a broken connection just ends this session; the follower redials

	s.conn.Close() //nolint:errcheck
	<-s.stop       // reader has exited; safe to drop the connection state
	s.mu.Lock()
	s.connected = false
	s.mu.Unlock()
}

// ship streams from pos to the end of the log, parking when caught up.
func (s *shipper) ship(bw *bufio.Writer, pos wal.Position) error {
	var f wal.File
	var openSeq uint64
	defer func() {
		if f != nil {
			f.Close() //nolint:errcheck
		}
	}()
	fsys := s.n.log.FS()
	buf := make([]byte, shipChunk)
	for {
		st, ok := s.n.log.SegmentStatus(pos.Seq)
		if !ok {
			return fmt.Errorf("repl: segment %d vanished under its pin", pos.Seq)
		}
		if f == nil || openSeq != pos.Seq {
			if f != nil {
				f.Close() //nolint:errcheck
				f = nil
			}
			nf, err := fsys.OpenFile(st.Path, os.O_RDONLY, 0)
			if err != nil {
				return err
			}
			f, openSeq = nf, pos.Seq
			if err := writeFlush(bw, kSegOpen, encodeSegOpen(segOpenMsg{Seq: st.Seq, Snapshot: st.Snapshot})); err != nil {
				return err
			}
		}
		switch {
		case pos.Off < st.Bytes:
			n := st.Bytes - pos.Off
			if n > int64(len(buf)) {
				n = int64(len(buf))
			}
			if _, err := f.ReadAt(buf[:n], pos.Off); err != nil {
				return err
			}
			cut, recs := wal.CutFrames(buf[:n], pos.Off == 0)
			if cut == 0 {
				// One frame larger than the buffer: grow and retry. The
				// frame is complete on disk (sizes only advance at frame
				// boundaries), so doubling terminates.
				if int64(len(buf)) >= st.Bytes-pos.Off {
					return fmt.Errorf("repl: segment %d not frame-aligned at %d", pos.Seq, pos.Off)
				}
				buf = make([]byte, 2*len(buf))
				continue
			}
			hdr := encodeDataHeader(dataMsg{
				Seq: pos.Seq, Off: pos.Off, Records: uint64(recs),
				SentNanos: time.Now().UnixNano(),
			})
			frame := append(hdr, buf[:cut]...)
			if err := writeFlush(bw, kData, frame); err != nil {
				return err
			}
			pos.Off += int64(cut)
			s.mu.Lock()
			s.shipPos = pos
			s.shipRecs += uint64(recs)
			s.mu.Unlock()
		case st.Sealed:
			if err := writeFlush(bw, kSegSeal, encodeSegSeal(segSealMsg{Seq: pos.Seq})); err != nil {
				return err
			}
			pos = wal.Position{Seq: pos.Seq + 1, Off: 0}
			s.mu.Lock()
			s.shipPos = pos
			s.mu.Unlock()
		default:
			if err := s.n.log.WaitSegment(pos.Seq, pos.Off, s.stop); err != nil {
				return err
			}
		}
	}
}

func writeFlush(bw *bufio.Writer, kind byte, body []byte) error {
	if err := writeMsg(bw, kind, body); err != nil {
		return err
	}
	return bw.Flush()
}

func readFull(r *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
