// Package repl is the WAL-shipping replication layer: a primary-side shipper
// that streams the segmented log to followers, a follower-side puller that
// ingests the stream byte-for-byte and replays it through a
// transaction-demultiplexing applier, explicit failover promotion with epoch
// fencing, and a retry/backoff client that fails reads over across a replica
// set.
//
// Replication is physical and pull-based. A follower dials its primary's
// replication port, presents the end of its local segment chain, and the
// primary answers with either "resume here" or "reset" (the follower's
// position was compacted away), then streams segment bytes. Every shipped
// chunk ends on a record-frame boundary, so the follower's on-disk tail is
// always frame-aligned and a reconnect after any crash resumes byte-exactly —
// the primary's own torn-tail recovery handles whatever a kill -9 left
// behind.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/wal"
)

// Stream preamble: the follower opens with magic, then framed messages flow
// in both directions — data primary→follower, acks follower→primary.
const magic = "YREP1"

// Message kinds.
const (
	kHello   = 1 // f→p: epoch, chain end position, tail-snapshot flag
	kHelloOK = 2 // p→f: epoch, reset flag, catch-up target position
	kSegOpen = 3 // p→f: segment starts (seq, snapshot flag)
	kData    = 4 // p→f: frame-aligned chunk (seq, off, records, sendNanos, bytes)
	kSegSeal = 5 // p→f: segment is complete and sealed
	kAck     = 6 // f→p: applied position (durable only up to the last seal), counters, timestamp echo
	kErr     = 7 // p→f: handshake refusal (fencing, not-primary, bad position)
)

// maxMsgLen bounds one message: the largest record frame (64 MiB) plus
// framing slack. A length beyond it means a corrupt or hostile stream.
const maxMsgLen = 65 << 20

type helloMsg struct {
	Epoch    uint64
	Pos      wal.Position
	TailSnap bool
}

type helloOKMsg struct {
	Epoch uint64
	Reset bool
	Ready wal.Position // applying through here makes the follower current
}

type segOpenMsg struct {
	Seq      uint64
	Snapshot bool
}

type dataMsg struct {
	Seq       uint64
	Off       int64
	Records   uint64
	SentNanos int64
	Payload   []byte
}

type segSealMsg struct {
	Seq uint64
}

type ackMsg struct {
	Pos       wal.Position // written and applied; fsynced only through the last seal
	Records   uint64       // records applied on this connection
	LastTS    uint64       // replayed commit-timestamp watermark
	EchoNanos int64        // SentNanos of the newest applied chunk
}

type errMsg struct {
	Msg string
}

// writeMsg frames and writes one message: u32 length | kind | body.
func writeMsg(w io.Writer, kind byte, body []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readMsg reads one framed message.
func readMsg(r *bufio.Reader) (kind byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxMsgLen {
		return 0, nil, fmt.Errorf("repl: message length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Field helpers: all integers are uvarints (offsets and nanos cast through
// uint64), bools one byte.

func appendU(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendB(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

type reader struct {
	b []byte
}

func (r *reader) u() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("repl: truncated message field")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) boolean() (bool, error) {
	if len(r.b) == 0 {
		return false, fmt.Errorf("repl: truncated message field")
	}
	v := r.b[0] != 0
	r.b = r.b[1:]
	return v, nil
}

func encodeHello(m helloMsg) []byte {
	b := appendU(nil, m.Epoch)
	b = appendU(b, m.Pos.Seq)
	b = appendU(b, uint64(m.Pos.Off))
	return appendB(b, m.TailSnap)
}

func decodeHello(b []byte) (m helloMsg, err error) {
	r := reader{b}
	if m.Epoch, err = r.u(); err != nil {
		return
	}
	if m.Pos.Seq, err = r.u(); err != nil {
		return
	}
	var off uint64
	if off, err = r.u(); err != nil {
		return
	}
	m.Pos.Off = int64(off)
	m.TailSnap, err = r.boolean()
	return
}

func encodeHelloOK(m helloOKMsg) []byte {
	b := appendU(nil, m.Epoch)
	b = appendB(b, m.Reset)
	b = appendU(b, m.Ready.Seq)
	return appendU(b, uint64(m.Ready.Off))
}

func decodeHelloOK(b []byte) (m helloOKMsg, err error) {
	r := reader{b}
	if m.Epoch, err = r.u(); err != nil {
		return
	}
	if m.Reset, err = r.boolean(); err != nil {
		return
	}
	if m.Ready.Seq, err = r.u(); err != nil {
		return
	}
	var off uint64
	off, err = r.u()
	m.Ready.Off = int64(off)
	return
}

func encodeSegOpen(m segOpenMsg) []byte {
	return appendB(appendU(nil, m.Seq), m.Snapshot)
}

func decodeSegOpen(b []byte) (m segOpenMsg, err error) {
	r := reader{b}
	if m.Seq, err = r.u(); err != nil {
		return
	}
	m.Snapshot, err = r.boolean()
	return
}

func encodeDataHeader(m dataMsg) []byte {
	b := appendU(nil, m.Seq)
	b = appendU(b, uint64(m.Off))
	b = appendU(b, m.Records)
	return appendU(b, uint64(m.SentNanos))
}

func decodeData(b []byte) (m dataMsg, err error) {
	r := reader{b}
	if m.Seq, err = r.u(); err != nil {
		return
	}
	var v uint64
	if v, err = r.u(); err != nil {
		return
	}
	m.Off = int64(v)
	if m.Records, err = r.u(); err != nil {
		return
	}
	if v, err = r.u(); err != nil {
		return
	}
	m.SentNanos = int64(v)
	m.Payload = r.b
	return
}

func encodeSegSeal(m segSealMsg) []byte { return appendU(nil, m.Seq) }

func decodeSegSeal(b []byte) (m segSealMsg, err error) {
	r := reader{b}
	m.Seq, err = r.u()
	return
}

func encodeAck(m ackMsg) []byte {
	b := appendU(nil, m.Pos.Seq)
	b = appendU(b, uint64(m.Pos.Off))
	b = appendU(b, m.Records)
	b = appendU(b, m.LastTS)
	return appendU(b, uint64(m.EchoNanos))
}

func decodeAck(b []byte) (m ackMsg, err error) {
	r := reader{b}
	if m.Pos.Seq, err = r.u(); err != nil {
		return
	}
	var v uint64
	if v, err = r.u(); err != nil {
		return
	}
	m.Pos.Off = int64(v)
	if m.Records, err = r.u(); err != nil {
		return
	}
	if m.LastTS, err = r.u(); err != nil {
		return
	}
	v, err = r.u()
	m.EchoNanos = int64(v)
	return
}

func encodeErr(msg string) []byte { return []byte(msg) }
