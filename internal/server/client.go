package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// Client is a middle-tier connection to a Youtopia server, speaking wire
// protocol v2 (binary frames; see protocol.go). The connection is fully
// multiplexed: any number of requests may be in flight concurrently, each
// correlated by id, and asynchronous coordination events are routed to the
// channel returned by Submit. All methods are safe for concurrent use.
//
// Methods without a context parameter are conveniences over the *Context
// variants with context.Background(). A context deadline on Submit is also
// sent to the server, which withdraws the entangled query when the deadline
// passes before coordination — the wire form of the coordinator's TTL.
type Client struct {
	conn net.Conn

	wmu  sync.Mutex // serializes frame writes
	wbuf frameBuf

	mu      sync.Mutex
	nextID  uint64
	calls   map[uint64]*clientCall // request id → in-flight call
	watches map[uint64]chan Event  // entangled query id → event channel
	// early holds events that arrived before their watch was registered
	// (the server's answer push can overtake the registration reply).
	early map[uint64]Event
	// orphans are query ids whose SubmitContext was abandoned by context
	// cancellation: their one eventual event (canceled or answered) is
	// dropped instead of parking in early forever.
	orphans     map[uint64]struct{}
	maxInFlight int // high-water mark of concurrently in-flight requests
	closed      bool
	readErr     error
	done        chan struct{}
}

// clientCall accumulates the reply to one request. Result sets arrive as a
// header frame plus row batches; everything else completes in one frame.
type clientCall struct {
	ch  chan clientReply
	res *QueryResult // streaming result under assembly
}

type clientReply struct {
	rp  reply
	res *QueryResult
	err error
}

// Event is an asynchronous coordination outcome pushed by the server.
type Event struct {
	Query     uint64
	Canceled  bool
	MatchSize int
	Answers   []ClientAnswer
}

// ClientAnswer is one answer relation's tuples, decoded to values.
type ClientAnswer struct {
	Relation string
	Tuples   []value.Tuple
}

// QueryResult holds a plain statement's outcome on the client side.
type QueryResult struct {
	Cols     []string
	Rows     []value.Tuple
	Affected int
}

// Dial connects to a Youtopia server with the v2 framed protocol.
// (DialLegacy speaks the line-delimited JSON protocol of older servers.)
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(v2Magic[:]); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		conn:    conn,
		calls:   make(map[uint64]*clientCall),
		watches: make(map[uint64]chan Event),
		early:   make(map[uint64]Event),
		orphans: make(map[uint64]struct{}),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; the server withdraws this client's
// pending entangled queries.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

// MaxInFlight reports the high-water mark of concurrently outstanding
// requests on this connection — the observable face of multiplexing.
func (c *Client) MaxInFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxInFlight
}

func (c *Client) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var rbuf []byte
	for {
		payload, err := readFrame(br, rbuf)
		rbuf = payload
		if err != nil {
			break
		}
		rp, err := decodeReply(payload)
		if err != nil {
			break // protocol error: fail the connection
		}
		switch rp.kind {
		case kindEvent:
			c.routeEvent(rp.event)
		case kindResult:
			c.mu.Lock()
			if call := c.calls[rp.id]; call != nil {
				call.res = &QueryResult{Cols: rp.cols, Affected: rp.affected}
			}
			c.mu.Unlock()
		case kindRows:
			c.mu.Lock()
			if call := c.calls[rp.id]; call != nil && call.res != nil {
				call.res.Rows = append(call.res.Rows, rp.rows...)
			}
			c.mu.Unlock()
		case kindResultEnd:
			c.complete(rp.id, func(call *clientCall) clientReply {
				return clientReply{rp: rp, res: call.res}
			})
		case kindError:
			c.complete(rp.id, func(*clientCall) clientReply {
				return clientReply{rp: rp, err: wireError(rp.errCode, rp.text)}
			})
		default: // kindOK, kindEntangled, kindAdminResp
			c.complete(rp.id, func(*clientCall) clientReply {
				return clientReply{rp: rp}
			})
		}
	}
	// Connection gone (EOF, or a reply we could not decode): close the
	// socket too — a protocol error must tear the connection down on both
	// sides, not leave the fd and the server's session state alive.
	c.conn.Close()
	c.mu.Lock()
	c.readErr = ErrClosed
	for id, call := range c.calls {
		delete(c.calls, id)
		call.ch <- clientReply{err: ErrClosed}
	}
	for id, ch := range c.watches {
		delete(c.watches, id)
		ch <- Event{Query: id, Canceled: true}
	}
	c.mu.Unlock()
}

func (c *Client) complete(id uint64, mk func(*clientCall) clientReply) {
	c.mu.Lock()
	call := c.calls[id]
	delete(c.calls, id)
	c.mu.Unlock()
	if call != nil {
		call.ch <- mk(call)
	}
}

func (c *Client) routeEvent(out coord.Outcome) {
	ev := Event{Query: out.QueryID, Canceled: out.Canceled, MatchSize: out.MatchSize}
	for _, a := range out.Answers {
		ev.Answers = append(ev.Answers, ClientAnswer{Relation: a.Relation, Tuples: a.Tuples})
	}
	c.mu.Lock()
	if _, orphaned := c.orphans[ev.Query]; orphaned {
		delete(c.orphans, ev.Query) // abandoned submit: exactly one event comes
		c.mu.Unlock()
		return
	}
	ch := c.watches[ev.Query]
	if ch == nil {
		c.early[ev.Query] = ev // watch not registered yet
	} else {
		delete(c.watches, ev.Query)
	}
	c.mu.Unlock()
	if ch != nil {
		ch <- ev
	}
}

// send registers a call slot and writes one frame built by enc. Multiple
// goroutines may send concurrently; each gets its own correlation id.
func (c *Client) send(enc func(f *frameBuf, id uint64) error) (*clientCall, uint64, error) {
	call := &clientCall{ch: make(chan clientReply, 1)}
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		c.mu.Unlock()
		return nil, 0, ErrClosed
	}
	c.nextID++
	id := c.nextID
	c.calls[id] = call
	if n := len(c.calls); n > c.maxInFlight {
		c.maxInFlight = n
	}
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf.reset()
	encErr := enc(&c.wbuf, id)
	var writeErr error
	if encErr == nil {
		_, writeErr = c.conn.Write(c.wbuf.b)
	}
	c.wmu.Unlock()
	if encErr != nil {
		// Nothing hit the wire (end() truncates the frame it rejects), so
		// the stream is still framed: fail just this call.
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return nil, 0, encErr
	}
	if writeErr != nil {
		// A partial frame write leaves the stream unframeable: a later
		// frame would start mid-payload and mis-correlate on the server.
		// Poison the connection — the read loop tears down every waiter.
		c.mu.Lock()
		delete(c.calls, id)
		if c.readErr == nil {
			c.readErr = writeErr
		}
		c.mu.Unlock()
		c.conn.Close()
		return nil, 0, writeErr
	}
	return call, id, nil
}

// await waits for a call's reply or the context's cancellation. An
// abandoned reply is dropped when it arrives (the slot is unregistered).
func (c *Client) await(ctx context.Context, call *clientCall, id uint64) (clientReply, error) {
	select {
	case r := <-call.ch:
		return r, r.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return clientReply{}, ctx.Err()
	}
}

func (c *Client) roundTrip(ctx context.Context, enc func(f *frameBuf, id uint64) error) (clientReply, error) {
	if err := ctx.Err(); err != nil {
		return clientReply{}, err
	}
	call, id, err := c.send(enc)
	if err != nil {
		return clientReply{}, err
	}
	return c.await(ctx, call, id)
}

// ttlFrom maps a context deadline onto the wire TTL (0 = none). Sub-
// millisecond remainders round up so a short-but-live deadline is not sent
// as "no TTL".
func ttlFrom(ctx context.Context) time.Duration {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ttl := time.Until(d)
	if ttl <= 0 {
		return time.Millisecond
	}
	return ttl.Round(time.Millisecond) + time.Millisecond
}

// QueryContext executes a plain SQL statement remotely.
func (c *Client) QueryContext(ctx context.Context, sql string) (*QueryResult, error) {
	r, err := c.roundTrip(ctx, func(f *frameBuf, id uint64) error {
		return f.appendExec(id, sql, "", 0)
	})
	if err != nil {
		return nil, err
	}
	switch r.rp.kind {
	case kindResultEnd:
		return r.res, nil
	case kindOK:
		return &QueryResult{}, nil
	case kindEntangled:
		return nil, fmt.Errorf("server: Query cannot run entangled statements; use Submit")
	default:
		return nil, fmt.Errorf("server: unexpected reply kind 0x%02x", r.rp.kind)
	}
}

// Query is QueryContext with context.Background().
func (c *Client) Query(sql string) (*QueryResult, error) {
	return c.QueryContext(context.Background(), sql)
}

// ExplainContext asks the server for the typed plan description of one
// statement without executing it. A leading EXPLAIN keyword is optional.
// Optional args bind parameter slots so the estimates reflect the actual
// values (see value.NewTuple for the accepted kinds).
func (c *Client) ExplainContext(ctx context.Context, sql string, args ...any) (*plan.Desc, error) {
	params := value.NewTuple(args...)
	r, err := c.roundTrip(ctx, func(f *frameBuf, id uint64) error {
		return f.appendExplain(id, sql, params)
	})
	if err != nil {
		return nil, err
	}
	if r.rp.kind != kindPlan || r.rp.plan == nil {
		return nil, fmt.Errorf("server: unexpected reply kind 0x%02x", r.rp.kind)
	}
	return r.rp.plan, nil
}

// Explain is ExplainContext with context.Background().
func (c *Client) Explain(sql string, args ...any) (*plan.Desc, error) {
	return c.ExplainContext(context.Background(), sql, args...)
}

// SubmitContext registers an entangled query remotely; the returned channel
// yields the coordination outcome when the server pushes it. A context
// deadline travels to the server as a TTL: if coordination has not happened
// by then, the query is withdrawn server-side and the event arrives with
// Canceled set.
func (c *Client) SubmitContext(ctx context.Context, sql, owner string) (uint64, <-chan Event, error) {
	ttl := ttlFrom(ctx)
	return c.submitRoundTrip(ctx, func(f *frameBuf, id uint64) error {
		return f.appendExec(id, sql, owner, ttl)
	})
}

// submitRoundTrip is the shared submit plumbing of the text and prepared
// paths: send the frame, await the entangled ack, register (or satisfy from
// the early set) the outcome watch.
func (c *Client) submitRoundTrip(ctx context.Context, enc func(f *frameBuf, id uint64) error) (uint64, <-chan Event, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	watch := make(chan Event, 1)
	call, id, err := c.send(enc)
	if err != nil {
		return 0, nil, err
	}
	r, err := c.awaitSubmit(ctx, call, id)
	if err != nil {
		return 0, nil, err
	}
	if r.rp.kind != kindEntangled {
		if r.rp.kind == kindResultEnd || r.rp.kind == kindOK {
			return 0, nil, fmt.Errorf("server: statement was not entangled; use Query")
		}
		return 0, nil, fmt.Errorf("server: unexpected reply kind 0x%02x", r.rp.kind)
	}
	q := r.rp.query
	c.mu.Lock()
	if ev, ok := c.early[q]; ok {
		delete(c.early, q)
		c.mu.Unlock()
		watch <- ev
		return q, watch, nil
	}
	c.watches[q] = watch
	c.mu.Unlock()
	return q, watch, nil
}

// awaitSubmit is await for the submit path: abandoning on ctx cancellation
// must not leak the registration. A reaper takes over the call slot, learns
// the query id from the (possibly still in-flight) entangled ack, withdraws
// the query server-side and suppresses its one eventual event — otherwise
// an abandoned submit would stay pending on the server (able to consume a
// real match nobody hears about) and park its outcome in c.early forever.
func (c *Client) awaitSubmit(ctx context.Context, call *clientCall, id uint64) (clientReply, error) {
	select {
	case r := <-call.ch:
		return r, r.err
	case <-ctx.Done():
		go func() {
			r := <-call.ch // the read loop always completes or fails the slot
			if r.err != nil || r.rp.kind != kindEntangled {
				return // nothing registered server-side
			}
			q := r.rp.query
			c.mu.Lock()
			if _, ok := c.early[q]; ok {
				delete(c.early, q) // the outcome already arrived; drop it
			} else {
				c.orphans[q] = struct{}{} // exactly one event will come
			}
			c.mu.Unlock()
			c.CancelContext(context.Background(), q) //nolint:errcheck // best effort; "not pending" means it resolved
		}()
		return clientReply{}, ctx.Err()
	}
}

// Submit is SubmitContext with context.Background().
func (c *Client) Submit(sql, owner string) (uint64, <-chan Event, error) {
	return c.SubmitContext(context.Background(), sql, owner)
}

// CancelContext withdraws a pending entangled query.
func (c *Client) CancelContext(ctx context.Context, query uint64) error {
	_, err := c.roundTrip(ctx, func(f *frameBuf, id uint64) error {
		return f.appendCancel(id, query)
	})
	return err
}

// Cancel is CancelContext with context.Background().
func (c *Client) Cancel(query uint64) error {
	return c.CancelContext(context.Background(), query)
}

// admin performs one typed admin round trip.
func (c *Client) admin(ctx context.Context, code byte) (reply, error) {
	r, err := c.roundTrip(ctx, func(f *frameBuf, id uint64) error {
		return f.appendAdmin(id, code)
	})
	if err != nil {
		return reply{}, err
	}
	if r.rp.kind != kindAdminResp || r.rp.admin != code {
		return reply{}, fmt.Errorf("server: unexpected admin reply kind 0x%02x", r.rp.kind)
	}
	return r.rp, nil
}

// AdminStats fetches the coordinator's merged counters, typed.
func (c *Client) AdminStats(ctx context.Context) (coord.StatsSnapshot, error) {
	rp, err := c.admin(ctx, adminStats)
	return rp.stats, err
}

// AdminShardInfo fetches per-lane coordination diagnostics, typed.
func (c *Client) AdminShardInfo(ctx context.Context) ([]coord.ShardInfo, error) {
	rp, err := c.admin(ctx, adminShards)
	return rp.shards, err
}

// AdminPendingList fetches the pending entangled queries, typed.
func (c *Client) AdminPendingList(ctx context.Context) ([]coord.PendingInfo, error) {
	rp, err := c.admin(ctx, adminPending)
	return rp.pending, err
}

// AdminWALStats fetches the durability-layer snapshot, typed. durable is
// false when the server runs without a WAL.
func (c *Client) AdminWALStats(ctx context.Context) (st core.WALStats, durable bool, err error) {
	rp, err := c.admin(ctx, adminWAL)
	return rp.walStats, rp.durable, err
}

// AdminTxnStats fetches the transaction manager's cumulative counters —
// commits, aborts, lock timeouts, MVCC write conflicts, and GC-reclaimed
// tuple versions — typed.
func (c *Client) AdminTxnStats(ctx context.Context) (txn.Stats, error) {
	rp, err := c.admin(ctx, adminTxn)
	return rp.txnStats, err
}

// AdminPoolStats fetches the buffer-pool snapshot, typed. enabled is false
// when the server runs fully in memory (no Config.BufferPoolPages).
func (c *Client) AdminPoolStats(ctx context.Context) (st storage.PoolStats, enabled bool, err error) {
	rp, err := c.admin(ctx, adminPool)
	return rp.pool, rp.poolOn, err
}

// AdminPool fetches the buffer-pool snapshot and renders it client-side.
func (c *Client) AdminPool() (string, error) {
	st, enabled, err := c.AdminPoolStats(context.Background())
	if err != nil {
		return "", err
	}
	return renderPool(st, enabled), nil
}

// AdminTxn fetches the transaction counters and renders them client-side.
func (c *Client) AdminTxn() (string, error) {
	st, err := c.AdminTxnStats(context.Background())
	if err != nil {
		return "", err
	}
	return renderTxn(st), nil
}

// AdminState fetches the server's coordination-state dump (a rendered
// report; the structured pieces are available via the typed getters).
func (c *Client) AdminState() (string, error) {
	rp, err := c.admin(context.Background(), adminState)
	return rp.text, err
}

// AdminShards fetches per-lane diagnostics and renders them client-side in
// the classic one-line-per-shard format.
func (c *Client) AdminShards() (string, error) {
	shards, err := c.AdminShardInfo(context.Background())
	if err != nil {
		return "", err
	}
	return renderShards(shards), nil
}

// AdminWAL fetches the durability snapshot and renders it client-side.
func (c *Client) AdminWAL() (string, error) {
	st, durable, err := c.AdminWALStats(context.Background())
	if err != nil {
		return "", err
	}
	return renderWAL(st, durable), nil
}

// Stmt is a client handle to a server-side prepared statement: the SQL text
// crossed the wire once (PrepareContext) and every execution ships only the
// statement id plus a binary-encoded parameter vector — int64 and float64
// parameters round-trip exactly, with no text formatting in between.
//
// Statement ids are scoped to the connection that prepared them; closing the
// connection discards every statement it prepared.
type Stmt struct {
	c         *Client
	id        uint64
	nParams   int
	entangled bool
	closed    atomic.Bool
}

// PrepareContext compiles one statement server-side and returns its handle.
func (c *Client) PrepareContext(ctx context.Context, sql string) (*Stmt, error) {
	r, err := c.roundTrip(ctx, func(f *frameBuf, id uint64) error {
		return f.appendPrepare(id, sql)
	})
	if err != nil {
		return nil, err
	}
	if r.rp.kind != kindPrepared {
		return nil, fmt.Errorf("server: unexpected reply kind 0x%02x to prepare", r.rp.kind)
	}
	return &Stmt{c: c, id: r.rp.stmt, nParams: r.rp.nParams, entangled: r.rp.prepEnt}, nil
}

// Prepare is PrepareContext with context.Background().
func (c *Client) Prepare(sql string) (*Stmt, error) {
	return c.PrepareContext(context.Background(), sql)
}

// NumParams returns the parameter-vector length executions expect.
func (st *Stmt) NumParams() int { return st.nParams }

// Entangled reports whether executions coordinate (use Submit, not Query).
func (st *Stmt) Entangled() bool { return st.entangled }

func (st *Stmt) check() error {
	if st.closed.Load() {
		return fmt.Errorf("server: prepared statement s%d is closed", st.id)
	}
	return nil
}

// QueryContext executes the prepared statement with the bound vector.
func (st *Stmt) QueryContext(ctx context.Context, params value.Tuple) (*QueryResult, error) {
	if err := st.check(); err != nil {
		return nil, err
	}
	r, err := st.c.roundTrip(ctx, func(f *frameBuf, id uint64) error {
		return f.appendExecPrepared(id, st.id, "", 0, params)
	})
	if err != nil {
		return nil, err
	}
	switch r.rp.kind {
	case kindResultEnd:
		return r.res, nil
	case kindOK:
		return &QueryResult{}, nil
	case kindEntangled:
		return nil, fmt.Errorf("server: Query cannot run entangled statements; use Submit")
	default:
		return nil, fmt.Errorf("server: unexpected reply kind 0x%02x", r.rp.kind)
	}
}

// Query executes with Go-native arguments (see value.NewTuple).
func (st *Stmt) Query(args ...any) (*QueryResult, error) {
	return st.QueryContext(context.Background(), value.NewTuple(args...))
}

// SubmitContext executes an entangled prepared statement: the template is
// bound server-side and submitted to the coordination component, skipping
// parse and compile — and the wire carries no SQL text at all. The returned
// channel and TTL semantics match Client.SubmitContext.
func (st *Stmt) SubmitContext(ctx context.Context, owner string, params value.Tuple) (uint64, <-chan Event, error) {
	if err := st.check(); err != nil {
		return 0, nil, err
	}
	ttl := ttlFrom(ctx)
	return st.c.submitRoundTrip(ctx, func(f *frameBuf, id uint64) error {
		return f.appendExecPrepared(id, st.id, owner, ttl, params)
	})
}

// Submit is SubmitContext with context.Background() and native arguments.
func (st *Stmt) Submit(owner string, args ...any) (uint64, <-chan Event, error) {
	return st.SubmitContext(context.Background(), owner, value.NewTuple(args...))
}

// Close drops the statement from the server's per-connection table. Further
// executions fail; closing twice is an error-free no-op client-side.
func (st *Stmt) Close() error {
	if st.closed.Swap(true) {
		return nil
	}
	_, err := st.c.roundTrip(context.Background(), func(f *frameBuf, id uint64) error {
		return f.appendClosePrepared(id, st.id)
	})
	return err
}

// call adapts a legacy Request to the v2 wire — the pre-v2 client surface,
// kept so existing callers (and the original test suite) run unchanged over
// the new protocol.
func (c *Client) call(req Request) (Response, error) {
	ctx := context.Background()
	switch {
	case req.Cancel != 0:
		if err := c.CancelContext(ctx, req.Cancel); err != nil {
			return Response{}, err
		}
		return Response{ID: req.ID, Query: req.Cancel, Text: "canceled"}, nil

	case req.Admin != "":
		code, ok := adminCode(req.Admin)
		if !ok {
			// Let the server reject it, as the legacy codec did.
			code = 0xFF
		}
		rp, err := c.admin(ctx, code)
		if err != nil {
			return Response{}, err
		}
		out := Response{ID: req.ID}
		switch code {
		case adminState:
			out.Text = rp.text
		case adminPending:
			out.Text = renderPending(rp.pending)
		case adminStats:
			out.Text = fmt.Sprintf("%+v", rp.stats)
		case adminShards:
			out.Text = renderShards(rp.shards)
		case adminWAL:
			out.Text = renderWAL(rp.walStats, rp.durable)
		case adminTxn:
			out.Text = renderTxn(rp.txnStats)
		}
		return out, nil

	default:
		// SQL (or empty — the server replies "empty request").
		r, err := c.roundTrip(ctx, func(f *frameBuf, id uint64) error {
			return f.appendExec(id, req.SQL, req.Owner, 0)
		})
		if err != nil {
			return Response{}, err
		}
		out := Response{ID: req.ID}
		switch r.rp.kind {
		case kindResultEnd:
			if r.res != nil {
				out.Cols, out.Affected = r.res.Cols, r.res.Affected
				for _, row := range r.res.Rows {
					out.Rows = append(out.Rows, encodeTuple(row))
				}
			}
		case kindOK:
			out.Text = r.rp.text
		case kindEntangled:
			out.Entangled, out.Query = true, r.rp.query
		}
		return out, nil
	}
}
