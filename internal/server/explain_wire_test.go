package server

import (
	"bufio"
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/storage"
)

// TestExplainWire: EXPLAIN over protocol v2 — the typed plan description
// round-trips, estimates refine with bound parameters, errors propagate, and
// explaining a write statement must not execute it.
func TestExplainWire(t *testing.T) {
	_, addr := newPreparedServer(t)
	c := dialT(t, addr)

	d, err := c.Explain("SELECT fno FROM Flights WHERE dest = ?", "Paris")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != "select" || len(d.Steps) != 1 {
		t.Fatalf("plan shape: %+v", d)
	}
	if s := d.Steps[0]; s.Table != "Flights" || s.Path != "eq probe (hash)" || s.Rows != 3 {
		t.Fatalf("step: %+v", s)
	}
	if !strings.Contains(d.String(), "eq probe (hash)") {
		t.Fatalf("rendering:\n%s", d.String())
	}

	// A leading EXPLAIN keyword is accepted and idempotent.
	d, err = c.Explain("EXPLAIN SELECT fno FROM Flights WHERE fno = 2")
	if err != nil {
		t.Fatal(err)
	}
	if d.Steps[0].Path != "pk probe" {
		t.Fatalf("pk plan: %+v", d.Steps[0])
	}

	// Unknown tables surface as normal statement errors.
	if _, err := c.Explain("SELECT * FROM Missing"); err == nil {
		t.Fatal("explain of unknown table succeeded")
	}

	// Explaining a write describes it without running it.
	d, err = c.Explain("INSERT INTO Flights VALUES (9, 'Oslo', 50.0)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != "insert" || d.Note == "" {
		t.Fatalf("insert plan: %+v", d)
	}
	res, err := c.Query("SELECT COUNT(*) FROM Flights")
	if err != nil || res.Rows[0][0].Int() != 3 {
		t.Fatalf("EXPLAIN executed the insert: %v %v", res, err)
	}
}

// TestFramePlanRoundTrip pins the kindPlan codec against hostile float and
// counter values, and the adminPool codec's dead-slot fields.
func TestFramePlanRoundTrip(t *testing.T) {
	d := &plan.Desc{
		SQL: "SELECT 1", Kind: "select",
		Steps: []plan.Step{
			{Table: "t", Binding: "a", Path: "full scan", Index: "ix", Columns: "x, y",
				EstRows: math.Inf(1), Rows: 1 << 30, Residual: 3, Eliminated: 2},
			{Table: "u", EstRows: 0.000123, Rows: 0},
		},
	}
	var f frameBuf
	if err := f.appendPlan(7, d); err != nil {
		t.Fatal(err)
	}
	rp := mustDecodeOne(t, f.b)
	if rp.kind != kindPlan || !reflect.DeepEqual(rp.plan, d) {
		t.Errorf("plan = %+v", rp.plan)
	}

	note := &plan.Desc{SQL: "BEGIN", Kind: "transaction control", Note: "no data access"}
	f.reset()
	if err := f.appendPlan(8, note); err != nil {
		t.Fatal(err)
	}
	if rp := mustDecodeOne(t, f.b); !reflect.DeepEqual(rp.plan, note) {
		t.Errorf("note plan = %+v", rp.plan)
	}

	st := storage.PoolStats{
		Capacity: 8, Resident: 4, HeapPages: 100, DeadSlots: 77,
		SpilledTables: 2, PinnedTables: 1,
		LoadWaits: 5, FreePages: 6, ReclaimedPages: 9,
		Shards: []storage.PoolShardStats{
			{Capacity: 4, Resident: 3, Hits: 11, Misses: 2, Evictions: 1},
			{Capacity: 4, Resident: 1, Hits: 7, Misses: 4},
		},
		Tables: []storage.PoolTableInfo{
			{Name: "history", Pages: 90, FreePages: 6, DeadSlots: 77},
			{Name: "hot", Pages: 10},
		},
	}
	f.reset()
	if err := f.appendAdminPool(9, st, true); err != nil {
		t.Fatal(err)
	}
	rp = mustDecodeOne(t, f.b)
	if !rp.poolOn || !reflect.DeepEqual(rp.pool, st) {
		t.Errorf("pool stats = %+v (enabled=%v)", rp.pool, rp.poolOn)
	}
}

// TestFramePlanDecodeGuards: corrupt step counts are rejected before
// allocation.
func TestFramePlanDecodeGuards(t *testing.T) {
	d := &plan.Desc{SQL: "SELECT 1", Kind: "select"}
	var f frameBuf
	if err := f.appendPlan(1, d); err != nil {
		t.Fatal(err)
	}
	// Locate the trailing step-count varint (0) and replace it with a huge
	// value; decode must fail cleanly.
	raw := append([]byte(nil), f.b...)
	raw[len(raw)-1] = 0xff
	raw = append(raw, 0xff, 0xff, 0xff, 0x7f)
	// Patch the length prefix to cover the grown payload.
	patch := uint32(len(raw) - 4)
	raw[0], raw[1], raw[2], raw[3] = byte(patch), byte(patch>>8), byte(patch>>16), byte(patch>>24)
	br := bufio.NewReader(bytes.NewReader(raw))
	payload, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeReply(payload); err == nil {
		t.Fatal("hostile step count decoded")
	}
}
