package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Wire format v2: length-prefixed binary frames, reusing the WAL's
// varint/length-prefixed encoding discipline (internal/wal/binary.go). TCP
// already checksums, so frames carry no CRC — but the decoder is
// bounds-checked end to end and can never panic on corrupt input (pinned by
// FuzzFrameDecode).
//
//	preamble: "YTP2" — sent once by the client immediately after connect.
//	          The server auto-detects the codec from the first byte: '{'
//	          selects the legacy line-delimited JSON codec, 'Y' this one.
//	frame:    payload length (uint32 LE) | payload
//	payload:  kind (1 byte) | correlation id (uvarint) | kind-specific body
//
// Integers are varints (int64 round-trips exactly — no float64 detour like
// JSON), floats are 8 raw bytes, strings are length-prefixed, values are
// tagged with the same tag bytes the WAL uses. Frames are typed by kind, so
// asynchronous coordination events are structurally distinct from replies
// and the legacy "id 0 means event" hack disappears. Result sets stream as a
// header frame plus row-batch frames instead of one giant line.

// v2Magic is the client's codec preamble.
var v2Magic = [4]byte{'Y', 'T', 'P', '2'}

const (
	// maxFrameLen bounds one frame so a corrupt length prefix cannot drive a
	// huge allocation; oversized frames get an explicit kindError reply with
	// errFrameTooBig before the connection closes.
	maxFrameLen = 8 << 20

	// rowBatchRows bounds one kindRows frame; large result sets stream in
	// batches instead of one giant frame.
	rowBatchRows = 256
)

// Frame kinds. Client → server:
const (
	kindExec   = 0x01 // sql, owner, ttl — execute one statement
	kindCancel = 0x02 // withdraw an entangled query by id
	kindAdmin  = 0x03 // typed admin request (admin* code)
	// Prepared-statement lifecycle: a statement is parsed/compiled once
	// server-side and repeated executions ship only its id plus a
	// binary-encoded parameter vector — the SQL text stops crossing the
	// wire entirely. Statement ids are per-connection; the table is torn
	// down with the connection.
	kindPrepare       = 0x04 // sql — parse/compile, reply kindPrepared
	kindExecPrepared  = 0x05 // stmt id, owner, ttl, parameter tuple
	kindClosePrepared = 0x06 // stmt id — drop from the connection's table
	kindExplain       = 0x07 // sql + optional params — describe the plan, reply kindPlan
)

// Server → client:
const (
	kindOK        = 0x10 // statement done, no result set (txn control, cancel ack)
	kindResult    = 0x11 // result header: affected count + column names
	kindRows      = 0x12 // one batch of result rows
	kindResultEnd = 0x13 // closes the result opened by kindResult
	kindEntangled = 0x14 // entangled query registered; body carries its id
	kindEvent     = 0x15 // async coordination outcome (answer / canceled)
	kindAdminResp = 0x16 // typed admin response (admin* code + payload)
	kindError     = 0x17 // error reply, correlated by id
	kindPrepared  = 0x18 // prepare ack: stmt id, parameter count, entangled flag
	kindPlan      = 0x19 // typed plan description (EXPLAIN reply)
)

// Admin codes shared by kindAdmin and kindAdminResp.
const (
	adminState   = 1 // rendered coordination-state report (string)
	adminPending = 2 // []coord.PendingInfo
	adminStats   = 3 // coord.StatsSnapshot
	adminShards  = 4 // []coord.ShardInfo
	adminWAL     = 5 // core.WALStats (+ a "durable at all" flag)
	adminTxn     = 6 // txn.Stats — transaction/MVCC counters
	adminRepl    = 7 // core.ReplStatus — replication role/lag/health
	adminPromote = 8 // promote this follower to primary; replies adminRepl
	adminPool    = 9 // storage.PoolStats (+ a "pool enabled at all" flag)
)

// Error codes carried by kindError.
const (
	errGeneric     = 1 // server-side execution error; message explains
	errFrameTooBig = 2 // frame length exceeded maxFrameLen
	errBadFrame    = 3 // frame failed to decode
	errNotPrimary  = 4 // write/entangled statement on a read-only follower
	errNotReady    = 5 // follower mid-resync; retry shortly (possibly elsewhere)
)

// adminCode maps the legacy admin command names onto v2 codes.
func adminCode(name string) (byte, bool) {
	switch name {
	case "state":
		return adminState, true
	case "pending":
		return adminPending, true
	case "stats":
		return adminStats, true
	case "shards":
		return adminShards, true
	case "wal":
		return adminWAL, true
	case "txn":
		return adminTxn, true
	case "repl":
		return adminRepl, true
	case "promote":
		return adminPromote, true
	case "pool":
		return adminPool, true
	default:
		return 0, false
	}
}

// ---------------------------------------------------------------------------
// Encoding

// frameBuf accumulates one or more frames. Frames are self-delimiting, so a
// small response (result header + rows + end) can be packed into one buffer
// and handed to the connection writer as a single write.
type frameBuf struct {
	b     []byte
	start int // offset of the current frame's length prefix
}

func (f *frameBuf) reset() { f.b = f.b[:0] }

// begin opens a frame; end back-patches its length prefix.
func (f *frameBuf) begin(kind byte, id uint64) {
	f.start = len(f.b)
	f.b = append(f.b, 0, 0, 0, 0, kind)
	f.b = binary.AppendUvarint(f.b, id)
}

func (f *frameBuf) end() error {
	n := len(f.b) - f.start - 4
	if n > maxFrameLen {
		f.b = f.b[:f.start]
		return fmt.Errorf("server: frame payload %d bytes exceeds the %d-byte limit", n, maxFrameLen)
	}
	binary.LittleEndian.PutUint32(f.b[f.start:], uint32(n))
	return nil
}

// take returns the accumulated frames as an independent slice and resets.
func (f *frameBuf) take() []byte {
	out := make([]byte, len(f.b))
	copy(out, f.b)
	f.reset()
	return out
}

func (f *frameBuf) uvarint(v uint64) { f.b = binary.AppendUvarint(f.b, v) }
func (f *frameBuf) varint(v int64)   { f.b = binary.AppendVarint(f.b, v) }
func (f *frameBuf) u8(v byte)        { f.b = append(f.b, v) }
func (f *frameBuf) bool(v bool)      { f.b = append(f.b, boolByte(v)) }
func (f *frameBuf) string(s string)  { f.uvarint(uint64(len(s))); f.b = append(f.b, s...) }
func (f *frameBuf) strings(ss []string) {
	f.uvarint(uint64(len(ss)))
	for _, s := range ss {
		f.string(s)
	}
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// value encodes one value with the WAL's tag discipline: NULL 0, INT 1
// (varint — int64 exact), FLOAT 2 (8 raw bytes), STRING 3, BOOL 4.
func (f *frameBuf) value(v value.Value) {
	switch v.Type() {
	case value.TypeInt:
		f.u8(1)
		f.varint(v.Int())
	case value.TypeFloat:
		f.u8(2)
		f.b = binary.LittleEndian.AppendUint64(f.b, math.Float64bits(v.Float()))
	case value.TypeString:
		f.u8(3)
		f.string(v.Str())
	case value.TypeBool:
		f.u8(4)
		f.bool(v.Bool())
	default: // NULL
		f.u8(0)
	}
}

func (f *frameBuf) tuple(t value.Tuple) {
	f.uvarint(uint64(len(t)))
	for _, v := range t {
		f.value(v)
	}
}

func (f *frameBuf) stats(s coord.StatsSnapshot) {
	for _, v := range [...]uint64{
		s.Submitted, s.Answered, s.Matches, s.Parked, s.Canceled,
		s.Expired, s.Retries, s.Escalations, s.NodesExplored,
		s.GroundingAttempts, s.GroundingFailures,
	} {
		f.uvarint(v)
	}
}

// appendExec encodes a kindExec request. A positive ttl asks the server to
// withdraw the entangled query if it is still pending after that long — the
// wire mapping of a context deadline.
func (f *frameBuf) appendExec(id uint64, sql, owner string, ttl time.Duration) error {
	f.begin(kindExec, id)
	f.string(sql)
	f.string(owner)
	if ttl < 0 {
		ttl = 0
	}
	f.uvarint(uint64(ttl / time.Millisecond))
	return f.end()
}

func (f *frameBuf) appendCancel(id, query uint64) error {
	f.begin(kindCancel, id)
	f.uvarint(query)
	return f.end()
}

func (f *frameBuf) appendPrepare(id uint64, sql string) error {
	f.begin(kindPrepare, id)
	f.string(sql)
	return f.end()
}

// appendExecPrepared encodes one prepared execution: the statement id, the
// owner label, the TTL (as in appendExec) and the parameter vector in the
// tagged binary value encoding — int64 and float64 round-trip exactly.
func (f *frameBuf) appendExecPrepared(id, stmt uint64, owner string, ttl time.Duration, params value.Tuple) error {
	f.begin(kindExecPrepared, id)
	f.uvarint(stmt)
	f.string(owner)
	if ttl < 0 {
		ttl = 0
	}
	f.uvarint(uint64(ttl / time.Millisecond))
	f.tuple(params)
	return f.end()
}

// appendExplain encodes a kindExplain request: the SQL text plus an optional
// parameter vector that refines the estimates the way bind-time values would.
func (f *frameBuf) appendExplain(id uint64, sql string, params value.Tuple) error {
	f.begin(kindExplain, id)
	f.string(sql)
	f.tuple(params)
	return f.end()
}

// appendPlan encodes the typed plan description EXPLAIN returns.
func (f *frameBuf) appendPlan(id uint64, d *plan.Desc) error {
	f.begin(kindPlan, id)
	f.string(d.SQL)
	f.string(d.Kind)
	f.string(d.Note)
	f.uvarint(uint64(len(d.Steps)))
	for _, s := range d.Steps {
		f.string(s.Table)
		f.string(s.Binding)
		f.string(s.Path)
		f.string(s.Index)
		f.string(s.Columns)
		f.b = binary.LittleEndian.AppendUint64(f.b, math.Float64bits(s.EstRows))
		f.varint(int64(s.Rows))
		f.varint(int64(s.Residual))
		f.varint(int64(s.Eliminated))
	}
	return f.end()
}

func (f *frameBuf) appendClosePrepared(id, stmt uint64) error {
	f.begin(kindClosePrepared, id)
	f.uvarint(stmt)
	return f.end()
}

func (f *frameBuf) appendPrepared(id, stmt uint64, nParams int, entangled bool) error {
	f.begin(kindPrepared, id)
	f.uvarint(stmt)
	f.uvarint(uint64(nParams))
	f.bool(entangled)
	return f.end()
}

func (f *frameBuf) appendAdmin(id uint64, code byte) error {
	f.begin(kindAdmin, id)
	f.u8(code)
	return f.end()
}

func (f *frameBuf) appendOK(id uint64, text string) error {
	f.begin(kindOK, id)
	f.string(text)
	return f.end()
}

func (f *frameBuf) appendError(id uint64, code byte, msg string) error {
	f.begin(kindError, id)
	f.u8(code)
	f.string(msg)
	return f.end()
}

func (f *frameBuf) appendEntangled(id, query uint64) error {
	f.begin(kindEntangled, id)
	f.uvarint(query)
	return f.end()
}

// appendResult encodes a whole result set: header, row batches, end marker.
func (f *frameBuf) appendResult(id uint64, cols []string, rows []value.Tuple, affected int) error {
	f.begin(kindResult, id)
	f.uvarint(uint64(affected))
	f.strings(cols)
	if err := f.end(); err != nil {
		return err
	}
	for off := 0; off < len(rows); off += rowBatchRows {
		batch := rows[off:]
		if len(batch) > rowBatchRows {
			batch = batch[:rowBatchRows]
		}
		f.begin(kindRows, id)
		f.uvarint(uint64(len(batch)))
		for _, row := range batch {
			f.tuple(row)
		}
		if err := f.end(); err != nil {
			return err
		}
	}
	f.begin(kindResultEnd, id)
	return f.end()
}

// appendEvent encodes an async coordination outcome. Events are typed by
// kind, not by a magic id: the correlation id slot carries the query id.
func (f *frameBuf) appendEvent(out coord.Outcome) error {
	f.begin(kindEvent, out.QueryID)
	f.bool(out.Canceled)
	f.uvarint(uint64(out.MatchSize))
	f.uvarint(uint64(len(out.Answers)))
	for _, a := range out.Answers {
		f.string(a.Relation)
		f.uvarint(uint64(len(a.Tuples)))
		for _, t := range a.Tuples {
			f.tuple(t)
		}
	}
	return f.end()
}

func (f *frameBuf) appendAdminState(id uint64, text string) error {
	f.begin(kindAdminResp, id)
	f.u8(adminState)
	f.string(text)
	return f.end()
}

func (f *frameBuf) appendAdminPending(id uint64, ps []coord.PendingInfo) error {
	f.begin(kindAdminResp, id)
	f.u8(adminPending)
	f.uvarint(uint64(len(ps)))
	for _, p := range ps {
		f.uvarint(p.ID)
		f.string(p.Owner)
		f.string(p.Source)
		f.string(p.Logic)
		f.strings(p.Relations)
		f.varint(int64(p.Waiting))
	}
	return f.end()
}

func (f *frameBuf) appendAdminStats(id uint64, s coord.StatsSnapshot) error {
	f.begin(kindAdminResp, id)
	f.u8(adminStats)
	f.stats(s)
	return f.end()
}

func (f *frameBuf) appendAdminShards(id uint64, shards []coord.ShardInfo) error {
	f.begin(kindAdminResp, id)
	f.u8(adminShards)
	f.uvarint(uint64(len(shards)))
	for _, si := range shards {
		f.uvarint(uint64(si.ID))
		f.uvarint(uint64(si.Pending))
		f.strings(si.Relations)
		f.stats(si.Stats)
	}
	return f.end()
}

func (f *frameBuf) appendAdminWAL(id uint64, st core.WALStats, durable bool) error {
	f.begin(kindAdminResp, id)
	f.u8(adminWAL)
	f.bool(durable)
	if durable {
		c := st.Commits
		for _, v := range [...]uint64{c.Records, c.Batches, c.Syncs, c.Rotations, c.Compacts} {
			f.uvarint(v)
		}
		r := st.Recovery
		f.varint(int64(r.Records))
		f.varint(int64(r.Segments))
		f.bool(r.Torn)
		f.varint(r.TornBytes)
		f.bool(r.Migrated)
		f.uvarint(uint64(len(st.Segments)))
		for _, s := range st.Segments {
			f.uvarint(s.Seq)
			f.string(s.Path)
			f.varint(s.Bytes)
			f.bool(s.Sealed)
			f.bool(s.Snapshot)
			f.bool(s.JSON)
		}
	}
	return f.end()
}

func (f *frameBuf) appendAdminPool(id uint64, st storage.PoolStats, enabled bool) error {
	f.begin(kindAdminResp, id)
	f.u8(adminPool)
	f.bool(enabled)
	if enabled {
		for _, v := range [...]int{st.Capacity, st.Resident, st.Dirty} {
			f.varint(int64(v))
		}
		for _, v := range [...]uint64{st.Hits, st.Misses, st.Evictions, st.Writebacks, st.LoadWaits} {
			f.uvarint(v)
		}
		for _, v := range [...]int{st.SpilledTables, st.PinnedTables, st.HeapPages, st.FreePages} {
			f.varint(int64(v))
		}
		f.uvarint(st.DeadSlots)
		f.uvarint(st.ReclaimedPages)
		f.uvarint(uint64(len(st.Shards)))
		for _, sh := range st.Shards {
			f.varint(int64(sh.Capacity))
			f.varint(int64(sh.Resident))
			f.uvarint(sh.Hits)
			f.uvarint(sh.Misses)
			f.uvarint(sh.Evictions)
		}
		f.uvarint(uint64(len(st.Tables)))
		for _, t := range st.Tables {
			f.string(t.Name)
			f.varint(int64(t.Pages))
			f.varint(int64(t.FreePages))
			f.uvarint(t.DeadSlots)
		}
	}
	return f.end()
}

func (f *frameBuf) appendAdminTxn(id uint64, st txn.Stats) error {
	f.begin(kindAdminResp, id)
	f.u8(adminTxn)
	for _, v := range [...]uint64{
		st.Committed, st.Aborted, st.Timeouts, st.WriteConflicts, st.GCReclaimed,
	} {
		f.uvarint(v)
	}
	return f.end()
}

// ---------------------------------------------------------------------------
// Decoding

// readFrame reads one length-prefixed frame into buf (grown as needed),
// returning the payload. A zero or oversized length is reported as
// errFrameSize so the caller can send the explicit max-frame-size error the
// protocol promises before closing.
var errFrameSize = fmt.Errorf("server: frame length exceeds the %d-byte limit", maxFrameLen)

func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameLen {
		return buf, errFrameSize
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}

// frameReader is a bounds-checked cursor over one frame payload. Every read
// reports an error instead of panicking, so arbitrarily corrupt input
// degrades to a decode error (the contract FuzzFrameDecode pins).
type frameReader struct {
	b   []byte
	off int

	// shared, when set by internRemaining, is one immutable copy of the
	// payload tail; decoded strings slice it instead of allocating one copy
	// each. Row batches use this so a 256-row frame costs one string
	// allocation, not one per string value.
	shared    string
	sharedOff int
}

// internRemaining snapshots the undecoded payload tail into one string; all
// string reads from here on alias it. Called before decoding bulk row data
// (the payload buffer itself is reused across frames, so slicing it
// directly would corrupt earlier results).
func (r *frameReader) internRemaining() {
	r.shared = string(r.b[r.off:])
	r.sharedOff = r.off
}

func (r *frameReader) remaining() int { return len(r.b) - r.off }

func (r *frameReader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("server: frame truncated")
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *frameReader) bool() (bool, error) {
	b, err := r.u8()
	return b != 0, err
}

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("server: bad uvarint in frame")
	}
	r.off += n
	return v, nil
}

func (r *frameReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("server: bad varint in frame")
	}
	r.off += n
	return v, nil
}

func (r *frameReader) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("server: frame truncated (want %d bytes, have %d)", n, r.remaining())
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *frameReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("server: string length %d exceeds frame", n)
	}
	start := r.off
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	if r.shared != "" && start >= r.sharedOff {
		return r.shared[start-r.sharedOff : start-r.sharedOff+int(n)], nil
	}
	return string(b), nil
}

// count reads an element count and sanity-checks it against the bytes left
// (each element needs at least one byte), bounding allocations on corrupt
// input.
func (r *frameReader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining()) {
		return 0, fmt.Errorf("server: element count %d exceeds frame", n)
	}
	return int(n), nil
}

func (r *frameReader) strings() ([]string, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	var out []string
	for i := 0; i < n; i++ {
		s, err := r.string()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (r *frameReader) value() (value.Value, error) {
	tag, err := r.u8()
	if err != nil {
		return value.Null, err
	}
	switch tag {
	case 0:
		return value.Null, nil
	case 1:
		i, err := r.varint()
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(i), nil
	case 2:
		b, err := r.bytes(8)
		if err != nil {
			return value.Null, err
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case 3:
		s, err := r.string()
		if err != nil {
			return value.Null, err
		}
		return value.NewString(s), nil
	case 4:
		b, err := r.u8()
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(b != 0), nil
	default:
		return value.Null, fmt.Errorf("server: unknown value tag %d", tag)
	}
}

func (r *frameReader) tuple() (value.Tuple, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	t := make(value.Tuple, 0, n)
	for i := 0; i < n; i++ {
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		t = append(t, v)
	}
	return t, nil
}

func (r *frameReader) stats() (coord.StatsSnapshot, error) {
	var s coord.StatsSnapshot
	for _, dst := range [...]*uint64{
		&s.Submitted, &s.Answered, &s.Matches, &s.Parked, &s.Canceled,
		&s.Expired, &s.Retries, &s.Escalations, &s.NodesExplored,
		&s.GroundingAttempts, &s.GroundingFailures,
	} {
		v, err := r.uvarint()
		if err != nil {
			return s, err
		}
		*dst = v
	}
	return s, nil
}

// frameHeader peels kind and correlation id off a payload. The id is
// best-effort recoverable even when the body later fails to decode, so error
// replies can echo it (the legacy codec's unrecoverable-id problem, fixed
// structurally).
func frameHeader(payload []byte) (kind byte, id uint64, r frameReader, err error) {
	r = frameReader{b: payload}
	if kind, err = r.u8(); err != nil {
		return 0, 0, r, err
	}
	if id, err = r.uvarint(); err != nil {
		return 0, 0, r, err
	}
	return kind, id, r, nil
}

// request is one decoded client → server v2 message.
type request struct {
	kind   byte
	id     uint64
	sql    string
	owner  string
	ttl    time.Duration
	query  uint64      // kindCancel
	admin  byte        // kindAdmin
	stmt   uint64      // kindExecPrepared / kindClosePrepared
	params value.Tuple // kindExecPrepared
}

// decodeRequest decodes a client frame. On failure the returned request
// still carries any id recovered from the header, so the error reply is
// correlated instead of orphaned.
func decodeRequest(payload []byte) (request, error) {
	var req request
	kind, id, r, err := frameHeader(payload)
	req.kind, req.id = kind, id
	if err != nil {
		return req, err
	}
	switch kind {
	case kindExec:
		if req.sql, err = r.string(); err != nil {
			return req, err
		}
		if req.owner, err = r.string(); err != nil {
			return req, err
		}
		ms, err := r.uvarint()
		if err != nil {
			return req, err
		}
		if ms > uint64(math.MaxInt64/int64(time.Millisecond)) {
			return req, fmt.Errorf("server: ttl %dms out of range", ms)
		}
		req.ttl = time.Duration(ms) * time.Millisecond
	case kindCancel:
		if req.query, err = r.uvarint(); err != nil {
			return req, err
		}
	case kindAdmin:
		if req.admin, err = r.u8(); err != nil {
			return req, err
		}
	case kindPrepare:
		if req.sql, err = r.string(); err != nil {
			return req, err
		}
	case kindExecPrepared:
		if req.stmt, err = r.uvarint(); err != nil {
			return req, err
		}
		if req.owner, err = r.string(); err != nil {
			return req, err
		}
		ms, err := r.uvarint()
		if err != nil {
			return req, err
		}
		if ms > uint64(math.MaxInt64/int64(time.Millisecond)) {
			return req, fmt.Errorf("server: ttl %dms out of range", ms)
		}
		req.ttl = time.Duration(ms) * time.Millisecond
		// The parameter vector: decoded strings must not alias the reused
		// frame buffer — they live as long as the bound statement runs.
		r.internRemaining()
		if req.params, err = r.tuple(); err != nil {
			return req, err
		}
	case kindClosePrepared:
		if req.stmt, err = r.uvarint(); err != nil {
			return req, err
		}
	case kindExplain:
		if req.sql, err = r.string(); err != nil {
			return req, err
		}
		r.internRemaining()
		if req.params, err = r.tuple(); err != nil {
			return req, err
		}
	default:
		return req, fmt.Errorf("server: unknown request kind 0x%02x", kind)
	}
	if r.remaining() != 0 {
		return req, fmt.Errorf("server: %d trailing bytes in request frame", r.remaining())
	}
	return req, nil
}

// reply is one decoded server → client v2 message.
type reply struct {
	kind     byte
	id       uint64
	text     string // kindOK text, kindError message, adminState report
	errCode  byte
	query    uint64 // kindEntangled
	stmt     uint64 // kindPrepared: statement id
	nParams  int    // kindPrepared
	prepEnt  bool   // kindPrepared: statement is entangled
	affected int
	cols     []string
	rows     []value.Tuple // kindRows batch
	event    coord.Outcome // kindEvent
	admin    byte
	pending  []coord.PendingInfo
	stats    coord.StatsSnapshot
	shards   []coord.ShardInfo
	walStats core.WALStats
	durable  bool
	txnStats txn.Stats
	repl     core.ReplStatus
	pool     storage.PoolStats
	poolOn   bool
	plan     *plan.Desc // kindPlan
}

// decodeReply decodes a server frame (the client side of the codec; also the
// entry point FuzzFrameDecode drives, since it is a superset of the request
// decoder's primitives).
func decodeReply(payload []byte) (reply, error) {
	var rp reply
	kind, id, r, err := frameHeader(payload)
	rp.kind, rp.id = kind, id
	if err != nil {
		return rp, err
	}
	switch kind {
	case kindOK:
		if rp.text, err = r.string(); err != nil {
			return rp, err
		}
	case kindError:
		if rp.errCode, err = r.u8(); err != nil {
			return rp, err
		}
		if rp.text, err = r.string(); err != nil {
			return rp, err
		}
	case kindEntangled:
		if rp.query, err = r.uvarint(); err != nil {
			return rp, err
		}
	case kindPrepared:
		if rp.stmt, err = r.uvarint(); err != nil {
			return rp, err
		}
		n, err := r.uvarint()
		if err != nil {
			return rp, err
		}
		if n > math.MaxInt32 {
			return rp, fmt.Errorf("server: parameter count %d out of range", n)
		}
		rp.nParams = int(n)
		if rp.prepEnt, err = r.bool(); err != nil {
			return rp, err
		}
	case kindResult:
		aff, err := r.uvarint()
		if err != nil {
			return rp, err
		}
		if aff > math.MaxInt32 {
			return rp, fmt.Errorf("server: affected count %d out of range", aff)
		}
		rp.affected = int(aff)
		r.internRemaining() // column names share one backing string
		if rp.cols, err = r.strings(); err != nil {
			return rp, err
		}
	case kindRows:
		n, err := r.count()
		if err != nil {
			return rp, err
		}
		// Bulk path: one interned string for every string value in the
		// batch, one value slab for every tuple (each row is a capped
		// sub-slice; slab growth leaves earlier rows on the old backing,
		// which stays valid). Pre-sizes are clamped: n is only bounded by
		// one-byte-per-row, so trusting it would let a hostile 8 MiB frame
		// demand a multi-GiB up-front allocation.
		r.internRemaining()
		rp.rows = make([]value.Tuple, 0, min(n, rowBatchRows))
		slab := make(value.Tuple, 0, min(8*n, 8*rowBatchRows))
		for i := 0; i < n; i++ {
			m, err := r.count()
			if err != nil {
				return rp, err
			}
			start := len(slab)
			for j := 0; j < m; j++ {
				v, err := r.value()
				if err != nil {
					return rp, err
				}
				slab = append(slab, v)
			}
			rp.rows = append(rp.rows, slab[start:len(slab):len(slab)])
		}
	case kindResultEnd:
		// No body.
	case kindEvent:
		rp.event.QueryID = id
		r.internRemaining()
		if rp.event.Canceled, err = r.bool(); err != nil {
			return rp, err
		}
		ms, err := r.uvarint()
		if err != nil {
			return rp, err
		}
		if ms > math.MaxInt32 {
			return rp, fmt.Errorf("server: match size %d out of range", ms)
		}
		rp.event.MatchSize = int(ms)
		na, err := r.count()
		if err != nil {
			return rp, err
		}
		for i := 0; i < na; i++ {
			var a coord.Answer
			if a.Relation, err = r.string(); err != nil {
				return rp, err
			}
			nt, err := r.count()
			if err != nil {
				return rp, err
			}
			for j := 0; j < nt; j++ {
				t, err := r.tuple()
				if err != nil {
					return rp, err
				}
				a.Tuples = append(a.Tuples, t)
			}
			rp.event.Answers = append(rp.event.Answers, a)
		}
	case kindAdminResp:
		if rp.admin, err = r.u8(); err != nil {
			return rp, err
		}
		if err := decodeAdminBody(&rp, &r); err != nil {
			return rp, err
		}
	case kindPlan:
		d := &plan.Desc{}
		r.internRemaining()
		if d.SQL, err = r.string(); err != nil {
			return rp, err
		}
		if d.Kind, err = r.string(); err != nil {
			return rp, err
		}
		if d.Note, err = r.string(); err != nil {
			return rp, err
		}
		n, err := r.count()
		if err != nil {
			return rp, err
		}
		for i := 0; i < n; i++ {
			var s plan.Step
			for _, dst := range [...]*string{&s.Table, &s.Binding, &s.Path, &s.Index, &s.Columns} {
				if *dst, err = r.string(); err != nil {
					return rp, err
				}
			}
			b, err := r.bytes(8)
			if err != nil {
				return rp, err
			}
			s.EstRows = math.Float64frombits(binary.LittleEndian.Uint64(b))
			for _, dst := range [...]*int{&s.Rows, &s.Residual, &s.Eliminated} {
				v, err := r.varint()
				if err != nil {
					return rp, err
				}
				if v < 0 || v > math.MaxInt32 {
					return rp, fmt.Errorf("server: plan step count out of range")
				}
				*dst = int(v)
			}
			d.Steps = append(d.Steps, s)
		}
		rp.plan = d
	default:
		return rp, fmt.Errorf("server: unknown reply kind 0x%02x", kind)
	}
	if r.remaining() != 0 {
		return rp, fmt.Errorf("server: %d trailing bytes in reply frame", r.remaining())
	}
	return rp, nil
}

func decodeAdminBody(rp *reply, r *frameReader) (err error) {
	switch rp.admin {
	case adminState:
		rp.text, err = r.string()
		return err
	case adminPending:
		n, err := r.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var p coord.PendingInfo
			if p.ID, err = r.uvarint(); err != nil {
				return err
			}
			if p.Owner, err = r.string(); err != nil {
				return err
			}
			if p.Source, err = r.string(); err != nil {
				return err
			}
			if p.Logic, err = r.string(); err != nil {
				return err
			}
			if p.Relations, err = r.strings(); err != nil {
				return err
			}
			w, err := r.varint()
			if err != nil {
				return err
			}
			p.Waiting = time.Duration(w)
			rp.pending = append(rp.pending, p)
		}
		return nil
	case adminStats:
		rp.stats, err = r.stats()
		return err
	case adminShards:
		n, err := r.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var si coord.ShardInfo
			id, err := r.uvarint()
			if err != nil {
				return err
			}
			pend, err := r.uvarint()
			if err != nil {
				return err
			}
			if id > math.MaxInt32 || pend > math.MaxInt32 {
				return fmt.Errorf("server: shard fields out of range")
			}
			si.ID, si.Pending = int(id), int(pend)
			if si.Relations, err = r.strings(); err != nil {
				return err
			}
			if si.Stats, err = r.stats(); err != nil {
				return err
			}
			rp.shards = append(rp.shards, si)
		}
		return nil
	case adminWAL:
		if rp.durable, err = r.bool(); err != nil {
			return err
		}
		if !rp.durable {
			return nil
		}
		c := &rp.walStats.Commits
		for _, dst := range [...]*uint64{&c.Records, &c.Batches, &c.Syncs, &c.Rotations, &c.Compacts} {
			if *dst, err = r.uvarint(); err != nil {
				return err
			}
		}
		rec := &rp.walStats.Recovery
		recs, err := r.varint()
		if err != nil {
			return err
		}
		segs, err := r.varint()
		if err != nil {
			return err
		}
		if recs > math.MaxInt32 || recs < 0 || segs > math.MaxInt32 || segs < 0 {
			return fmt.Errorf("server: recovery counts out of range")
		}
		rec.Records, rec.Segments = int(recs), int(segs)
		if rec.Torn, err = r.bool(); err != nil {
			return err
		}
		if rec.TornBytes, err = r.varint(); err != nil {
			return err
		}
		if rec.Migrated, err = r.bool(); err != nil {
			return err
		}
		n, err := r.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var s wal.SegmentInfo
			if s.Seq, err = r.uvarint(); err != nil {
				return err
			}
			if s.Path, err = r.string(); err != nil {
				return err
			}
			if s.Bytes, err = r.varint(); err != nil {
				return err
			}
			if s.Sealed, err = r.bool(); err != nil {
				return err
			}
			if s.Snapshot, err = r.bool(); err != nil {
				return err
			}
			if s.JSON, err = r.bool(); err != nil {
				return err
			}
			rp.walStats.Segments = append(rp.walStats.Segments, s)
		}
		return nil
	case adminTxn:
		for _, dst := range [...]*uint64{
			&rp.txnStats.Committed, &rp.txnStats.Aborted, &rp.txnStats.Timeouts,
			&rp.txnStats.WriteConflicts, &rp.txnStats.GCReclaimed,
		} {
			if *dst, err = r.uvarint(); err != nil {
				return err
			}
		}
		return nil
	case adminRepl, adminPromote:
		return decodeAdminRepl(rp, r)
	case adminPool:
		return decodeAdminPool(rp, r)
	default:
		return fmt.Errorf("server: unknown admin code %d", rp.admin)
	}
}

func decodeAdminPool(rp *reply, r *frameReader) (err error) {
	if rp.poolOn, err = r.bool(); err != nil {
		return err
	}
	if !rp.poolOn {
		return nil
	}
	st := &rp.pool
	for _, dst := range [...]*int{&st.Capacity, &st.Resident, &st.Dirty} {
		v, err := r.varint()
		if err != nil {
			return err
		}
		if v < 0 || v > math.MaxInt32 {
			return fmt.Errorf("server: pool frame count out of range")
		}
		*dst = int(v)
	}
	for _, dst := range [...]*uint64{&st.Hits, &st.Misses, &st.Evictions, &st.Writebacks, &st.LoadWaits} {
		if *dst, err = r.uvarint(); err != nil {
			return err
		}
	}
	for _, dst := range [...]*int{&st.SpilledTables, &st.PinnedTables, &st.HeapPages, &st.FreePages} {
		v, err := r.varint()
		if err != nil {
			return err
		}
		if v < 0 || v > math.MaxInt32 {
			return fmt.Errorf("server: pool table count out of range")
		}
		*dst = int(v)
	}
	if st.DeadSlots, err = r.uvarint(); err != nil {
		return err
	}
	if st.ReclaimedPages, err = r.uvarint(); err != nil {
		return err
	}
	nshards, err := r.count()
	if err != nil {
		return err
	}
	for i := 0; i < nshards; i++ {
		var sh storage.PoolShardStats
		for _, dst := range [...]*int{&sh.Capacity, &sh.Resident} {
			v, err := r.varint()
			if err != nil {
				return err
			}
			if v < 0 || v > math.MaxInt32 {
				return fmt.Errorf("server: pool shard frame count out of range")
			}
			*dst = int(v)
		}
		for _, dst := range [...]*uint64{&sh.Hits, &sh.Misses, &sh.Evictions} {
			if *dst, err = r.uvarint(); err != nil {
				return err
			}
		}
		st.Shards = append(st.Shards, sh)
	}
	n, err := r.count()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var t storage.PoolTableInfo
		if t.Name, err = r.string(); err != nil {
			return err
		}
		pages, err := r.varint()
		if err != nil {
			return err
		}
		if pages < 0 || pages > math.MaxInt32 {
			return fmt.Errorf("server: pool page count out of range")
		}
		t.Pages = int(pages)
		free, err := r.varint()
		if err != nil {
			return err
		}
		if free < 0 || free > math.MaxInt32 {
			return fmt.Errorf("server: pool page count out of range")
		}
		t.FreePages = int(free)
		if t.DeadSlots, err = r.uvarint(); err != nil {
			return err
		}
		st.Tables = append(st.Tables, t)
	}
	return nil
}
