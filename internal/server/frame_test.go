package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/wal"
)

func TestFrameRequestRoundTrip(t *testing.T) {
	var f frameBuf
	if err := f.appendExec(7, "SELECT * FROM T", "jerry", 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := f.appendCancel(8, 42); err != nil {
		t.Fatal(err)
	}
	if err := f.appendAdmin(9, adminShards); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(bytes.NewReader(f.b))
	var buf []byte
	var reqs []request
	for i := 0; i < 3; i++ {
		payload, err := readFrame(br, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = payload
		req, err := decodeRequest(payload)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req)
	}
	if reqs[0].id != 7 || reqs[0].sql != "SELECT * FROM T" || reqs[0].owner != "jerry" || reqs[0].ttl != 1500*time.Millisecond {
		t.Errorf("exec = %+v", reqs[0])
	}
	if reqs[1].id != 8 || reqs[1].query != 42 {
		t.Errorf("cancel = %+v", reqs[1])
	}
	if reqs[2].id != 9 || reqs[2].admin != adminShards {
		t.Errorf("admin = %+v", reqs[2])
	}
}

// TestFrameValueRoundTrip: every value type round-trips exactly — including
// int64 beyond float64's 2^53 integer range, the legacy codec's known loss.
func TestFrameValueRoundTrip(t *testing.T) {
	row := value.Tuple{
		value.Null,
		value.NewInt(1<<60 + 1),
		value.NewInt(-(1<<62 + 3)),
		value.NewFloat(math.Pi),
		value.NewString("naïve\x00bytes"),
		value.NewBool(true),
	}
	var f frameBuf
	if err := f.appendResult(3, []string{"a", "b", "c", "d", "e", "f"}, []value.Tuple{row}, 1); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(f.b))
	var got value.Tuple
	var buf []byte
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			break
		}
		buf = payload
		rp, err := decodeReply(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rp.kind == kindRows {
			got = rp.rows[0]
		}
	}
	if len(got) != len(row) {
		t.Fatalf("row = %v", got)
	}
	for i := range row {
		if got[i] != row[i] {
			t.Errorf("position %d: %v != %v", i, got[i], row[i])
		}
	}
	if got[1].Int() != 1<<60+1 {
		t.Errorf("int64 lost precision: %d", got[1].Int())
	}
}

func TestFrameRowBatching(t *testing.T) {
	rows := make([]value.Tuple, 1000)
	for i := range rows {
		rows[i] = value.Tuple{value.NewInt(int64(i))}
	}
	var f frameBuf
	if err := f.appendResult(1, []string{"x"}, rows, 0); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(f.b))
	var buf []byte
	batches, total := 0, 0
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			break
		}
		buf = payload
		rp, err := decodeReply(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rp.kind == kindRows {
			batches++
			if len(rp.rows) > rowBatchRows {
				t.Fatalf("batch of %d exceeds %d", len(rp.rows), rowBatchRows)
			}
			for _, r := range rp.rows {
				if r[0].Int() != int64(total) {
					t.Fatalf("row %d out of order: %v", total, r)
				}
				total++
			}
		}
	}
	if total != 1000 || batches != 4 {
		t.Fatalf("streamed %d rows in %d batches", total, batches)
	}
}

func TestFrameEventRoundTrip(t *testing.T) {
	out := coord.Outcome{
		QueryID:   99,
		MatchSize: 3,
		Answers: []coord.Answer{
			{Relation: "Reservation", Tuples: []value.Tuple{
				{value.NewString("jerry"), value.NewInt(122)},
			}},
			{Relation: "HotelReservation", Tuples: []value.Tuple{
				{value.NewString("jerry"), value.NewInt(7)},
			}},
		},
	}
	var f frameBuf
	if err := f.appendEvent(out); err != nil {
		t.Fatal(err)
	}
	rp := mustDecodeOne(t, f.b)
	if rp.kind != kindEvent {
		t.Fatalf("kind = %#x", rp.kind)
	}
	if !reflect.DeepEqual(rp.event, out) {
		t.Errorf("event = %+v, want %+v", rp.event, out)
	}
}

func TestFrameAdminRoundTrip(t *testing.T) {
	stats := coord.StatsSnapshot{Submitted: 10, Answered: 8, Matches: 4, Parked: 2,
		Canceled: 1, Expired: 1, Retries: 5, Escalations: 3, NodesExplored: 1234,
		GroundingAttempts: 40, GroundingFailures: 4}
	var f frameBuf
	if err := f.appendAdminStats(1, stats); err != nil {
		t.Fatal(err)
	}
	if rp := mustDecodeOne(t, f.b); rp.stats != stats {
		t.Errorf("stats = %+v", rp.stats)
	}

	shards := []coord.ShardInfo{
		{ID: 0, Pending: 3, Relations: []string{"hotelreservation", "reservation"}, Stats: stats},
		{ID: 1, Pending: 0, Relations: nil, Stats: coord.StatsSnapshot{}},
	}
	f.reset()
	if err := f.appendAdminShards(2, shards); err != nil {
		t.Fatal(err)
	}
	if rp := mustDecodeOne(t, f.b); !reflect.DeepEqual(rp.shards, shards) {
		t.Errorf("shards = %+v", rp.shards)
	}

	pend := []coord.PendingInfo{{
		ID: 5, Owner: "kramer", Source: "SELECT ...", Logic: "ANSWER(...)",
		Relations: []string{"reservation"}, Waiting: 1500 * time.Millisecond,
	}}
	f.reset()
	if err := f.appendAdminPending(3, pend); err != nil {
		t.Fatal(err)
	}
	if rp := mustDecodeOne(t, f.b); !reflect.DeepEqual(rp.pending, pend) {
		t.Errorf("pending = %+v", rp.pending)
	}

	st := core.WALStats{
		Commits:  wal.CommitStats{Records: 100, Batches: 10, Syncs: 9, Rotations: 2, Compacts: 1},
		Recovery: wal.RecoveryInfo{Records: 50, Segments: 3, Torn: true, TornBytes: 17, Migrated: true},
		Segments: []wal.SegmentInfo{
			{Seq: 1, Path: "00000001.wal", Bytes: 4096, Sealed: true, Snapshot: true},
			{Seq: 2, Path: "00000002.wal", Bytes: 128},
		},
	}
	f.reset()
	if err := f.appendAdminWAL(4, st, true); err != nil {
		t.Fatal(err)
	}
	if rp := mustDecodeOne(t, f.b); !reflect.DeepEqual(rp.walStats, st) || !rp.durable {
		t.Errorf("wal = %+v durable=%v", rp.walStats, rp.durable)
	}
	f.reset()
	if err := f.appendAdminWAL(5, core.WALStats{}, false); err != nil {
		t.Fatal(err)
	}
	if rp := mustDecodeOne(t, f.b); rp.durable {
		t.Error("not-durable flag lost")
	}
}

func mustDecodeOne(t *testing.T, frames []byte) reply {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(frames))
	payload, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := decodeReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

// TestFrameSizeGuard: a corrupt or hostile length prefix is rejected before
// any allocation happens.
func TestFrameSizeGuard(t *testing.T) {
	for _, n := range []uint32{0, maxFrameLen + 1, math.MaxUint32} {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], n)
		_, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])), nil)
		if err != errFrameSize {
			t.Errorf("length %d: err = %v, want errFrameSize", n, err)
		}
	}
}

// FuzzFrameDecode pins the decoder's contract: arbitrary payload bytes must
// produce a value or an error — never a panic, never an oversized
// allocation. Both directions of the codec are driven (replies are a
// superset of the request decoder's primitives).
func FuzzFrameDecode(f *testing.F) {
	seedCorpus := func() [][]byte {
		var out [][]byte
		var fb frameBuf
		fb.appendExec(1, "SELECT 1", "o", time.Second) //nolint:errcheck
		out = append(out, append([]byte(nil), fb.b[4:]...))
		fb.reset()
		fb.appendResult(2, []string{"a"}, []value.Tuple{{value.NewInt(1 << 60), value.NewString("x")}}, 1) //nolint:errcheck
		out = append(out, append([]byte(nil), fb.b[4:]...))
		fb.reset()
		fb.appendEvent(coord.Outcome{QueryID: 3, MatchSize: 2, Answers: []coord.Answer{
			{Relation: "R", Tuples: []value.Tuple{{value.NewFloat(2.5)}}}}}) //nolint:errcheck
		out = append(out, append([]byte(nil), fb.b[4:]...))
		fb.reset()
		fb.appendAdminWAL(4, core.WALStats{Segments: []wal.SegmentInfo{{Seq: 1, Path: "p"}}}, true) //nolint:errcheck
		out = append(out, append([]byte(nil), fb.b[4:]...))
		return out
	}
	for _, seed := range seedCorpus() {
		f.Add(seed)
	}
	f.Add([]byte{kindRows, 1, 255, 255, 255, 255, 15})
	f.Add([]byte{kindAdminResp, 0, adminPending, 200})

	f.Fuzz(func(t *testing.T, payload []byte) {
		// Must not panic; errors are fine.
		decodeRequest(payload) //nolint:errcheck
		decodeReply(payload)   //nolint:errcheck
	})
}
