package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/value"
)

// LegacyClient is the pre-v2 middle-tier connection: line-delimited JSON,
// one logical request/reply stream plus async events flagged by the "event"
// field. It is kept (unchanged in behavior) as the reference peer for the
// server's first-byte codec auto-detection, and as the baseline side of the
// wire-throughput benchmark. New code should use Client.
//
// Known lossiness, inherited from JSON: integers outside ±2^53 round
// through float64 on the decode path (see DecodeValue).
type LegacyClient struct {
	conn net.Conn
	enc  *json.Encoder

	mu      sync.Mutex
	nextID  uint64
	replies map[uint64]chan Response // request id → reply slot
	watches map[uint64]chan Event    // entangled query id → event channel
	// early holds events that arrived before their watch was registered
	// (the server's answer push can overtake the registration reply).
	early   map[uint64]Event
	closed  bool
	readErr error
	done    chan struct{}
}

// DialLegacy connects to a Youtopia server with the legacy JSON protocol.
func DialLegacy(addr string) (*LegacyClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &LegacyClient{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		replies: make(map[uint64]chan Response),
		watches: make(map[uint64]chan Event),
		early:   make(map[uint64]Event),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; the server withdraws this client's
// pending entangled queries.
func (c *LegacyClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *LegacyClient) readLoop() {
	defer close(c.done)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 1<<20), legacyMaxLine)
	for sc.Scan() {
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			continue
		}
		if resp.Event != "" {
			ev := Event{Query: resp.Query, Canceled: resp.Event == "canceled", MatchSize: resp.MatchSize}
			for _, a := range resp.Answers {
				ca := ClientAnswer{Relation: a.Relation}
				for _, t := range a.Tuples {
					ca.Tuples = append(ca.Tuples, decodeTuple(t))
				}
				ev.Answers = append(ev.Answers, ca)
			}
			c.mu.Lock()
			ch := c.watches[ev.Query]
			if ch == nil {
				c.early[ev.Query] = ev // watch not registered yet
			} else {
				delete(c.watches, ev.Query)
			}
			c.mu.Unlock()
			if ch != nil {
				ch <- ev
			}
			continue
		}
		c.mu.Lock()
		ch := c.replies[resp.ID]
		delete(c.replies, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
	// Connection gone: fail all waiters.
	c.mu.Lock()
	c.readErr = ErrClosed
	for id, ch := range c.replies {
		delete(c.replies, id)
		ch <- Response{Error: ErrClosed.Error()}
	}
	for id, ch := range c.watches {
		delete(c.watches, id)
		ch <- Event{Query: id, Canceled: true}
	}
	c.mu.Unlock()
}

func decodeTuple(vals []any) value.Tuple {
	t := make(value.Tuple, len(vals))
	for i, v := range vals {
		t[i] = DecodeValue(v)
	}
	return t
}

// call sends a request and waits for its correlated reply.
func (c *LegacyClient) call(req Request) (Response, error) {
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		c.mu.Unlock()
		return Response{}, ErrClosed
	}
	c.nextID++
	req.ID = c.nextID
	c.replies[req.ID] = ch
	err := c.enc.Encode(req)
	c.mu.Unlock()
	if err != nil {
		return Response{}, err
	}
	resp := <-ch
	if resp.Error != "" {
		return resp, fmt.Errorf("server: %s", resp.Error)
	}
	return resp, nil
}

// Query executes a plain SQL statement remotely.
func (c *LegacyClient) Query(sql string) (*QueryResult, error) {
	resp, err := c.call(Request{SQL: sql})
	if err != nil {
		return nil, err
	}
	if resp.Entangled {
		return nil, fmt.Errorf("server: Query cannot run entangled statements; use Submit")
	}
	out := &QueryResult{Cols: resp.Cols, Affected: resp.Affected}
	for _, row := range resp.Rows {
		out.Rows = append(out.Rows, decodeTuple(row))
	}
	return out, nil
}

// Submit registers an entangled query remotely; the returned channel yields
// the coordination outcome when the server pushes it.
func (c *LegacyClient) Submit(sql, owner string) (uint64, <-chan Event, error) {
	ch := make(chan Event, 1)
	resp, err := c.callSubmit(Request{SQL: sql, Owner: owner}, ch)
	if err != nil {
		return 0, nil, err
	}
	return resp.Query, ch, nil
}

func (c *LegacyClient) callSubmit(req Request, watch chan Event) (Response, error) {
	reply := make(chan Response, 1)
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		c.mu.Unlock()
		return Response{}, ErrClosed
	}
	c.nextID++
	req.ID = c.nextID
	c.replies[req.ID] = reply
	err := c.enc.Encode(req)
	c.mu.Unlock()
	if err != nil {
		return Response{}, err
	}
	resp := <-reply
	if resp.Error != "" {
		return resp, fmt.Errorf("server: %s", resp.Error)
	}
	if !resp.Entangled {
		return resp, fmt.Errorf("server: statement was not entangled; use Query")
	}
	c.mu.Lock()
	if ev, ok := c.early[resp.Query]; ok {
		delete(c.early, resp.Query)
		c.mu.Unlock()
		watch <- ev
		return resp, nil
	}
	c.watches[resp.Query] = watch
	c.mu.Unlock()
	return resp, nil
}

// Cancel withdraws a pending entangled query.
func (c *LegacyClient) Cancel(query uint64) error {
	_, err := c.call(Request{Cancel: query})
	return err
}

// AdminState fetches the server's coordination-state dump.
func (c *LegacyClient) AdminState() (string, error) {
	resp, err := c.call(Request{Admin: "state"})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}
