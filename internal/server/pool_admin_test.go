package server

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestAdminPoolRoundTrip: the pool admin frame carries the server's
// storage.PoolStats faithfully over both codecs, and degrades to an explicit
// "disabled" answer on an in-memory server.
func TestAdminPoolRoundTrip(t *testing.T) {
	sys := core.NewSystem(core.Config{BufferPoolPages: 2})
	if err := sys.Err(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Exec("CREATE TABLE History (id INT, body STRING, PRIMARY KEY (id));"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		stmt := fmt.Sprintf("INSERT INTO History VALUES (%d, '%s');", i, strings.Repeat("h", 100))
		if err := sys.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Listen(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dial(t, srv.Addr().String())

	st, enabled, err := c.AdminPoolStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !enabled {
		t.Fatal("pool reported disabled")
	}
	want, _ := sys.PoolStats()
	if st.Capacity != want.Capacity || st.HeapPages != want.HeapPages ||
		st.SpilledTables != want.SpilledTables || len(st.Tables) != len(want.Tables) {
		t.Errorf("pool stats = %+v, want %+v", st, want)
	}
	if st.HeapPages <= st.Capacity {
		t.Errorf("workload did not outgrow the pool: %+v", st)
	}
	if len(st.Tables) != 1 || st.Tables[0].Name != "history" || st.Tables[0].Pages != want.Tables[0].Pages {
		t.Errorf("table footprint = %+v", st.Tables)
	}
	text, err := c.AdminPool()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(text, "pool: frames=2") || !strings.Contains(text, "history") {
		t.Errorf("rendered pool dump: %q", text)
	}
	// The coordinator's full state dump carries the pool section too.
	state, err := c.AdminState()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(state, "=== Buffer pool ===") {
		t.Errorf("DumpState missing pool section:\n%s", state)
	}
}

func TestAdminPoolDisabled(t *testing.T) {
	_, addr := startServer(t) // in-memory system
	c := dial(t, addr)
	st, enabled, err := c.AdminPoolStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if enabled || st.Capacity != 0 {
		t.Errorf("in-memory server reported a pool: %+v", st)
	}
	text, err := c.AdminPool()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "no buffer pool") {
		t.Errorf("rendered: %q", text)
	}
}

// TestLegacyAdminPool drives the legacy JSON codec's "pool" admin command.
func TestLegacyAdminPool(t *testing.T) {
	sys := core.NewSystem(core.Config{BufferPoolPages: 2})
	if err := sys.Err(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Exec("CREATE TABLE History (id INT, body STRING, PRIMARY KEY (id));"); err != nil {
		t.Fatal(err)
	}
	srv, err := Listen(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	lc, err := DialLegacy(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	resp, err := lc.call(Request{Admin: "pool"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Text, "pool: frames=2") {
		t.Errorf("legacy pool dump: %q", resp.Text)
	}
}
