package server

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/travel"
)

func newPreparedServer(t *testing.T) (*Server, string) {
	t.Helper()
	sys := core.NewSystem(core.Config{})
	if err := sys.Exec(`CREATE TABLE Flights (fno INT, dest STRING, price FLOAT, PRIMARY KEY (fno));
CREATE INDEX ON Flights (dest);
INSERT INTO Flights VALUES (1, 'Paris', 100.0), (2, 'Paris', 250.0), (3, 'Rome', 180.0)`); err != nil {
		t.Fatal(err)
	}
	srv, err := Listen(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPreparedWireQuery(t *testing.T) {
	_, addr := newPreparedServer(t)
	c := dialT(t, addr)
	st, err := c.Prepare("SELECT fno FROM Flights WHERE dest = ? ORDER BY fno")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 || st.Entangled() {
		t.Fatalf("stmt meta: n=%d entangled=%v", st.NumParams(), st.Entangled())
	}
	for i := 0; i < 3; i++ { // bind-many over one prepared id
		res, err := st.Query("Paris")
		if err != nil || len(res.Rows) != 2 {
			t.Fatalf("round %d: %v %v", i, res, err)
		}
		if res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 {
			t.Fatalf("round %d rows: %v", i, res.Rows)
		}
	}
	res, err := st.Query("Rome")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Fatalf("rebind: %v %v", res, err)
	}
}

// TestPreparedWireClose: exec-after-close errors, double close is a no-op,
// closing an unknown id errors.
func TestPreparedWireClose(t *testing.T) {
	srv, addr := newPreparedServer(t)
	c := dialT(t, addr)
	st, err := c.Prepare("SELECT fno FROM Flights WHERE dest = ?")
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.PreparedStatements(); got != 1 {
		t.Fatalf("server holds %d statements, want 1", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.PreparedStatements(); got != 0 {
		t.Fatalf("server holds %d statements after close, want 0", got)
	}
	if _, err := st.Query("Paris"); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("exec after close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// A stale/foreign id is a correlated server error, not a dead connection.
	_, err = c.roundTrip(context.Background(), func(f *frameBuf, id uint64) error {
		return f.appendExecPrepared(id, 999, "", 0, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "not open") {
		t.Fatalf("foreign stmt id: %v", err)
	}
	res, err := c.Query("SELECT fno FROM Flights WHERE dest = 'Rome'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("connection unusable after prepared errors: %v %v", res, err)
	}
}

// TestPreparedWireDisconnectCleanup: a dropped connection takes its whole
// statement table with it.
func TestPreparedWireDisconnectCleanup(t *testing.T) {
	srv, addr := newPreparedServer(t)
	c := dialT(t, addr)
	for _, q := range []string{
		"SELECT fno FROM Flights WHERE dest = ?",
		"SELECT fno FROM Flights WHERE price <= ?",
		"INSERT INTO Flights VALUES (?, ?, ?)",
	} {
		if _, err := c.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	c2 := dialT(t, addr)
	if _, err := c2.Prepare("SELECT fno FROM Flights WHERE dest = ?"); err != nil {
		t.Fatal(err)
	}
	if got := srv.PreparedStatements(); got != 4 {
		t.Fatalf("server holds %d statements, want 4", got)
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.PreparedStatements() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("server still holds %d statements after disconnect, want 1", srv.PreparedStatements())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPreparedWireDDLMidConnection: DDL between executions of one wire
// statement — the cached plan must be invalidated, not serve stale results
// or crash; after DROP TABLE the error is clean and the handle recovers when
// the table returns.
func TestPreparedWireDDLMidConnection(t *testing.T) {
	_, addr := newPreparedServer(t)
	c := dialT(t, addr)
	st, err := c.Prepare("SELECT fno FROM Flights WHERE dest = ? ORDER BY fno")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := st.Query("Paris"); err != nil || len(res.Rows) != 2 {
		t.Fatalf("%v %v", res, err)
	}
	if _, err := c.Query("DROP TABLE Flights"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query("Paris"); err == nil {
		t.Fatal("prepared exec served a dropped table")
	}
	if _, err := c.Query("CREATE TABLE Flights (fno INT, dest STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("INSERT INTO Flights VALUES (9, 'Paris')"); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query("Paris")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != 9 {
		t.Fatalf("prepared handle did not replan after re-create: %v %v", res, err)
	}
}

// TestPreparedWireFloatExact: float64 parameters cross the wire as 8 raw
// bits — a subnormal the text dialect cannot even lex must round-trip and
// compare equal server-side.
func TestPreparedWireFloatExact(t *testing.T) {
	_, addr := newPreparedServer(t)
	c := dialT(t, addr)
	if _, err := c.Query("CREATE TABLE P (x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare("INSERT INTO P VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := c.Prepare("SELECT x FROM P WHERE x = ?")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{math.Pi, 0.1 + 0.2, 1e-05, 5e-324, math.MaxFloat64} {
		if _, err := ins.Query(f); err != nil {
			t.Fatalf("insert %v: %v", f, err)
		}
		res, err := sel.Query(f)
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("float %v lost over the wire: %v %v", f, res, err)
		}
		if bits := math.Float64bits(res.Rows[0][0].Float()); bits != math.Float64bits(f) {
			t.Fatalf("float %v: got bits %x want %x", f, bits, math.Float64bits(f))
		}
	}
}

// TestPreparedWireEntangled: two clients coordinate through prepared
// templates — the SQL text crossed the wire once per client; every
// submission shipped only an id and a vector.
func TestPreparedWireEntangled(t *testing.T) {
	_, addr := newPreparedServer(t)
	tmpl := travel.FlightQueryTemplate("Reservation", 1, travel.FlightFilter{Dest: "Paris"})

	ca := dialT(t, addr)
	cb := dialT(t, addr)
	sa, err := ca.Prepare(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := cb.Prepare(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Entangled() {
		t.Fatal("template not marked entangled")
	}
	_, evA, err := sa.SubmitContext(context.Background(), "a",
		travel.FlightQueryParams("wireA", []string{"wireB"}, travel.FlightFilter{Dest: "Paris"}))
	if err != nil {
		t.Fatal(err)
	}
	_, evB, err := sb.SubmitContext(context.Background(), "b",
		travel.FlightQueryParams("wireB", []string{"wireA"}, travel.FlightFilter{Dest: "Paris"}))
	if err != nil {
		t.Fatal(err)
	}
	var got [2]Event
	for i, ev := range []<-chan Event{evA, evB} {
		select {
		case got[i] = <-ev:
		case <-time.After(10 * time.Second):
			t.Fatal("prepared entangled pair did not coordinate")
		}
	}
	if got[0].Canceled || got[1].Canceled {
		t.Fatalf("canceled: %+v %+v", got[0], got[1])
	}
	fa := got[0].Answers[0].Tuples[0][1]
	fb := got[1].Answers[0].Tuples[0][1]
	if !fa.Identical(fb) {
		t.Fatalf("pair coordinated on different flights: %s vs %s", fa, fb)
	}
	if name := got[0].Answers[0].Tuples[0][0].Str(); name != "wireA" {
		t.Fatalf("answer carries %q, want the bound name", name)
	}
}
