// Package server exposes a Youtopia system over TCP so the middle tier can
// run in a separate process, as in the paper's three-tier deployment
// (browser → middle tier → Youtopia). The protocol is line-delimited JSON:
//
// Client → server, one request per line:
//
//	{"id": 1, "sql": "SELECT ...", "owner": "jerry"}
//	{"id": 2, "cancel": 7}                  // cancel entangled query q7
//	{"id": 3, "admin": "state"}             // state | pending | stats
//
// Server → client, one response per line, correlated by id:
//
//	{"id": 1, "rows": [...], "cols": [...], "affected": n}      // plain SQL
//	{"id": 1, "entangled": true, "query": 7}                    // registered
//	{"id": 0, "event": "answer", "query": 7, "answers": [...]}  // async push
//	{"id": 1, "error": "..."}
//
// Entangled answers arrive asynchronously as events with id 0, exactly like
// the demo's Facebook notifications: the client submits, keeps working, and
// is told later which flight it got.
package server

import (
	"repro/internal/value"
)

// Request is one client → server message.
type Request struct {
	ID    uint64 `json:"id"`
	SQL   string `json:"sql,omitempty"`
	Owner string `json:"owner,omitempty"`
	// Cancel withdraws the entangled query with the given server-side id.
	Cancel uint64 `json:"cancel,omitempty"`
	// Admin requests an introspection dump: "state", "pending", "stats",
	// "shards" or "wal".
	Admin string `json:"admin,omitempty"`
}

// Response is one server → client message.
type Response struct {
	ID uint64 `json:"id"`
	// Plain statement results.
	Cols     []string `json:"cols,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	// Entangled registration.
	Entangled bool   `json:"entangled,omitempty"`
	Query     uint64 `json:"query,omitempty"`
	// Async coordination event ("answer" | "canceled").
	Event     string       `json:"event,omitempty"`
	Answers   []AnswerJSON `json:"answers,omitempty"`
	MatchSize int          `json:"matchSize,omitempty"`
	// Admin dump (plain text) and errors.
	Text  string `json:"text,omitempty"`
	Error string `json:"error,omitempty"`
}

// AnswerJSON is one answer relation's contribution in an event.
type AnswerJSON struct {
	Relation string  `json:"relation"`
	Tuples   [][]any `json:"tuples"`
}

// encodeTuple converts a value.Tuple to JSON-friendly values.
func encodeTuple(t value.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Type() {
		case value.TypeNull:
			out[i] = nil
		case value.TypeInt:
			out[i] = v.Int()
		case value.TypeFloat:
			out[i] = v.Float()
		case value.TypeString:
			out[i] = v.Str()
		case value.TypeBool:
			out[i] = v.Bool()
		}
	}
	return out
}

// DecodeValue converts a JSON-decoded any back into a value.Value.
// JSON numbers arrive as float64; integral floats become INTs, matching the
// coercion rules of the value layer.
func DecodeValue(x any) value.Value {
	switch v := x.(type) {
	case nil:
		return value.Null
	case bool:
		return value.NewBool(v)
	case float64:
		if v == float64(int64(v)) {
			return value.NewInt(int64(v))
		}
		return value.NewFloat(v)
	case string:
		return value.NewString(v)
	default:
		return value.Null
	}
}
