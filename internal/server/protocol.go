// Package server exposes a Youtopia system over TCP so the middle tier can
// run in a separate process, as in the paper's three-tier deployment
// (browser → middle tier → Youtopia).
//
// Two wire protocols share the listen port, auto-detected from the first
// byte a client sends:
//
// # Wire protocol v2 (the default — Dial speaks it)
//
// Length-prefixed binary frames (see frame.go for the exact layout). The
// client opens with the 4-byte preamble "YTP2", then both sides exchange
// frames of `uint32 LE length | kind | correlation id (uvarint) | body`.
// Frames are typed by kind — request, result header, row batch, entangled
// ack, async event, typed admin response, error — so asynchronous
// coordination events are structurally distinct from replies instead of
// being flagged by a magic id. Many requests may be in flight on one
// connection (pipelining/multiplexing); replies are correlated by id.
// Values round-trip exactly: int64 is a varint on the wire, never a float64.
// Result sets stream as a header frame plus row batches. Admin responses
// are structured (coord.StatsSnapshot, []coord.ShardInfo,
// []coord.PendingInfo, core.WALStats) and rendered client-side.
//
// Prepared statements (Client.Prepare → server.Stmt): kindPrepare ships a
// statement's SQL text once and returns a per-connection statement id plus
// its parameter count and entangled flag; kindExecPrepared then carries
// only the id, owner, TTL and a binary-encoded parameter vector (typed
// values — float64 and int64 parameters are bit-exact, with no text
// formatting anywhere), and kindClosePrepared drops the entry. Repeated
// statements stop shipping SQL text at all; the server executes them
// through core's parse-once/bind-many pipeline. Statement ids are scoped
// to their connection and the table dies with it — a disconnect can never
// leak server-side statements.
//
// # Legacy protocol (line-delimited JSON)
//
// A client whose first byte is '{' gets the original codec. One request per
// line:
//
//	{"id": 1, "sql": "SELECT ...", "owner": "jerry"}
//	{"id": 2, "cancel": 7}                  // cancel entangled query q7
//	{"id": 3, "admin": "state"}             // state | pending | stats | shards | wal
//
// One response per line, correlated by id:
//
//	{"id": 1, "rows": [...], "cols": [...], "affected": n}      // plain SQL
//	{"id": 1, "entangled": true, "query": 7}                    // registered
//	{"id": 0, "event": "answer", "query": 7, "answers": [...]}  // async push
//	{"id": 1, "error": "..."}
//
// Entangled answers arrive asynchronously as events, exactly like the
// demo's Facebook notifications: the client submits, keeps working, and is
// told later which flight it got.
//
// Legacy limitations (both fixed in v2): request lines are capped at 1 MiB
// (the server now replies with an explicit error before closing instead of
// dying silently), and integers round-trip through JSON float64 on the
// client decode path, so values outside ±2^53 lose precision — an int64
// like 1<<60+1 comes back rounded to the nearest representable float64.
// The v2 codec carries int64 as a varint and is exact.
package server

import (
	"fmt"
	"strings"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// legacyMaxLine caps one legacy JSON request line. The v2 framed protocol
// has its own (larger) bound, maxFrameLen, with an explicit error frame.
const legacyMaxLine = 1 << 20

// Request is one legacy client → server message.
type Request struct {
	ID    uint64 `json:"id"`
	SQL   string `json:"sql,omitempty"`
	Owner string `json:"owner,omitempty"`
	// Cancel withdraws the entangled query with the given server-side id.
	Cancel uint64 `json:"cancel,omitempty"`
	// Admin requests an introspection dump: "state", "pending", "stats",
	// "shards" or "wal".
	Admin string `json:"admin,omitempty"`
}

// Response is one legacy server → client message.
type Response struct {
	ID uint64 `json:"id"`
	// Plain statement results.
	Cols     []string `json:"cols,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	// Entangled registration.
	Entangled bool   `json:"entangled,omitempty"`
	Query     uint64 `json:"query,omitempty"`
	// Async coordination event ("answer" | "canceled").
	Event     string       `json:"event,omitempty"`
	Answers   []AnswerJSON `json:"answers,omitempty"`
	MatchSize int          `json:"matchSize,omitempty"`
	// Admin dump (plain text) and errors.
	Text  string `json:"text,omitempty"`
	Error string `json:"error,omitempty"`
}

// AnswerJSON is one answer relation's contribution in a legacy event.
type AnswerJSON struct {
	Relation string  `json:"relation"`
	Tuples   [][]any `json:"tuples"`
}

// encodeTuple converts a value.Tuple to JSON-friendly values.
func encodeTuple(t value.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Type() {
		case value.TypeNull:
			out[i] = nil
		case value.TypeInt:
			out[i] = v.Int()
		case value.TypeFloat:
			out[i] = v.Float()
		case value.TypeString:
			out[i] = v.Str()
		case value.TypeBool:
			out[i] = v.Bool()
		}
	}
	return out
}

// DecodeValue converts a JSON-decoded any back into a value.Value.
// JSON numbers arrive as float64; integral floats become INTs, matching the
// coercion rules of the value layer. This is the legacy codec's lossy step:
// int64 values outside ±2^53 round to the nearest float64 (tested tolerance
// — the v2 codec round-trips them exactly).
func DecodeValue(x any) value.Value {
	switch v := x.(type) {
	case nil:
		return value.Null
	case bool:
		return value.NewBool(v)
	case float64:
		if v == float64(int64(v)) {
			return value.NewInt(int64(v))
		}
		return value.NewFloat(v)
	case string:
		return value.NewString(v)
	default:
		return value.Null
	}
}

// renderShards formats per-lane diagnostics the way the admin surface always
// has. The v2 client renders this client-side from []coord.ShardInfo; the
// legacy server renders it server-side.
func renderShards(shards []coord.ShardInfo) string {
	var b strings.Builder
	for _, si := range shards {
		fmt.Fprintf(&b, "shard %d: pending=%d relations=%v stats=%+v\n",
			si.ID, si.Pending, si.Relations, si.Stats)
	}
	return b.String()
}

// renderWAL formats the durability snapshot (or its absence).
func renderWAL(st core.WALStats, durable bool) string {
	if !durable {
		return "not durable (no WAL configured)\n"
	}
	return st.String()
}

// renderTxn formats the transaction/MVCC counters. Shared by both codecs:
// the v2 client renders this client-side from txn.Stats, the legacy server
// renders it server-side.
func renderTxn(st txn.Stats) string {
	return fmt.Sprintf(
		"committed=%d aborted=%d timeouts=%d writeConflicts=%d gcReclaimed=%d\n",
		st.Committed, st.Aborted, st.Timeouts, st.WriteConflicts, st.GCReclaimed)
}

// renderPool formats the buffer-pool snapshot (or its absence). Shared by
// both codecs: the v2 client renders it client-side from storage.PoolStats.
func renderPool(st storage.PoolStats, enabled bool) string {
	if !enabled {
		return "no buffer pool (fully in-memory storage)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pool: frames=%d resident=%d dirty=%d hit-ratio=%.1f%% (hits=%d misses=%d) load-waits=%d evictions=%d writebacks=%d\n",
		st.Capacity, st.Resident, st.Dirty, 100*st.HitRatio(), st.Hits, st.Misses, st.LoadWaits, st.Evictions, st.Writebacks)
	if len(st.Shards) > 1 {
		fmt.Fprintf(&b, "shards: %d\n", len(st.Shards))
		for i, sh := range st.Shards {
			fmt.Fprintf(&b, "  shard %-3d frames=%-4d resident=%-4d hits=%d misses=%d evictions=%d\n",
				i, sh.Capacity, sh.Resident, sh.Hits, sh.Misses, sh.Evictions)
		}
	}
	fmt.Fprintf(&b, "heap: spilled-tables=%d pinned-relations=%d pages=%d (%d KiB) free-pages=%d reclaimed=%d dead-slots=%d\n",
		st.SpilledTables, st.PinnedTables, st.HeapPages, st.HeapPages*storage.PageSize/1024,
		st.FreePages, st.ReclaimedPages, st.DeadSlots)
	for _, t := range st.Tables {
		fmt.Fprintf(&b, "  %-24s %d page(s)", t.Name, t.Pages)
		if t.FreePages > 0 {
			fmt.Fprintf(&b, "  free-pages=%d", t.FreePages)
		}
		if t.DeadSlots > 0 {
			fmt.Fprintf(&b, "  dead-slots=%d", t.DeadSlots)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// renderPending formats the pending-query table the way the legacy "pending"
// admin command always has.
func renderPending(ps []coord.PendingInfo) string {
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "q%d [%s] %s\n", p.ID, p.Owner, p.Logic)
	}
	return b.String()
}
