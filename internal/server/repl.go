package server

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// Typed replication errors the wire protocol carries by code, so clients can
// react without parsing messages: redirect writes to the primary, retry reads
// elsewhere while a follower resyncs.
var (
	// ErrNotPrimary reports a write or entangled statement sent to a
	// read-only follower. The message names the primary when known.
	ErrNotPrimary = errors.New("server: not primary")
	// ErrNotReady reports a follower mid-resync; the read is retryable —
	// here shortly, or on another replica now.
	ErrNotReady = errors.New("server: follower not ready")
)

// replErrCode maps a core-layer error to its wire error code.
func replErrCode(err error) byte {
	var np *core.NotPrimaryError
	switch {
	case errors.As(err, &np):
		return errNotPrimary
	case errors.Is(err, core.ErrNotReady):
		return errNotReady
	default:
		return errGeneric
	}
}

// WireError is an error the server answered with (as opposed to a transport
// failure). Code distinguishes replication redirects from plain statement
// errors; errors.Is sees through to ErrNotPrimary / ErrNotReady.
type WireError struct {
	Code byte
	Msg  string
}

func (e *WireError) Error() string { return fmt.Sprintf("server: %s", e.Msg) }

func (e *WireError) Unwrap() error {
	switch e.Code {
	case errNotPrimary:
		return ErrNotPrimary
	case errNotReady:
		return ErrNotReady
	default:
		return nil
	}
}

// wireError reconstructs a typed error from a reply's error code (client
// side).
func wireError(code byte, msg string) error {
	return &WireError{Code: code, Msg: msg}
}

func (f *frameBuf) appendAdminRepl(id uint64, code byte, st core.ReplStatus) error {
	f.begin(kindAdminResp, id)
	f.u8(code)
	f.string(st.Role)
	f.bool(st.Ready)
	f.uvarint(st.Epoch)
	f.string(st.Primary)
	f.uvarint(st.Seq)
	f.varint(st.Off)
	f.uvarint(st.LastTS)
	f.uvarint(st.Applied)
	f.varint(int64(st.Open))
	f.bool(st.Link)
	f.uvarint(uint64(len(st.Followers)))
	for _, fo := range st.Followers {
		f.string(fo.Addr)
		f.uvarint(fo.ShipSeq)
		f.varint(fo.ShipOff)
		f.uvarint(fo.AckSeq)
		f.varint(fo.AckOff)
		f.uvarint(fo.AckRecords)
		f.uvarint(fo.LagRecords)
		f.varint(fo.LagMillis)
		f.bool(fo.Connected)
	}
	return f.end()
}

func decodeAdminRepl(rp *reply, r *frameReader) (err error) {
	st := &rp.repl
	if st.Role, err = r.string(); err != nil {
		return err
	}
	if st.Ready, err = r.bool(); err != nil {
		return err
	}
	if st.Epoch, err = r.uvarint(); err != nil {
		return err
	}
	if st.Primary, err = r.string(); err != nil {
		return err
	}
	if st.Seq, err = r.uvarint(); err != nil {
		return err
	}
	if st.Off, err = r.varint(); err != nil {
		return err
	}
	if st.LastTS, err = r.uvarint(); err != nil {
		return err
	}
	if st.Applied, err = r.uvarint(); err != nil {
		return err
	}
	open, err := r.varint()
	if err != nil {
		return err
	}
	st.Open = int(open)
	if st.Link, err = r.bool(); err != nil {
		return err
	}
	n, err := r.count()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var fo core.ReplFollowerStatus
		if fo.Addr, err = r.string(); err != nil {
			return err
		}
		if fo.ShipSeq, err = r.uvarint(); err != nil {
			return err
		}
		if fo.ShipOff, err = r.varint(); err != nil {
			return err
		}
		if fo.AckSeq, err = r.uvarint(); err != nil {
			return err
		}
		if fo.AckOff, err = r.varint(); err != nil {
			return err
		}
		if fo.AckRecords, err = r.uvarint(); err != nil {
			return err
		}
		if fo.LagRecords, err = r.uvarint(); err != nil {
			return err
		}
		if fo.LagMillis, err = r.varint(); err != nil {
			return err
		}
		if fo.Connected, err = r.bool(); err != nil {
			return err
		}
		st.Followers = append(st.Followers, fo)
	}
	return nil
}

// AdminRepl returns the server's replication status (role, epoch, per-
// follower ship/ack positions and lag).
func (c *Client) AdminRepl(ctx context.Context) (core.ReplStatus, error) {
	rp, err := c.admin(ctx, adminRepl)
	if err != nil {
		return core.ReplStatus{}, err
	}
	return rp.repl, nil
}

// AdminPromote promotes the server (a follower) to primary and returns its
// post-promotion replication status.
func (c *Client) AdminPromote(ctx context.Context) (core.ReplStatus, error) {
	rp, err := c.admin(ctx, adminPromote)
	if err != nil {
		return core.ReplStatus{}, err
	}
	return rp.repl, nil
}
