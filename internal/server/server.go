package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
)

// Server accepts middle-tier connections and forwards their statements to a
// core.System.
type Server struct {
	sys *core.System
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts serving on ln. It returns when the listener is closed.
func Serve(sys *core.System, ln net.Listener) *Server {
	s := &Server{sys: sys, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen is a convenience for Serve over TCP on addr (use "127.0.0.1:0" for
// an ephemeral port; Addr reports the bound address).
func Listen(sys *core.System, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(sys, ln), nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and closes every live connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// session state for one connection.
type connSession struct {
	mu   sync.Mutex // serializes writes (request replies vs async events)
	enc  *json.Encoder
	sess *core.Session // interactive transaction state (BEGIN/COMMIT/ROLLBACK)
}

func (cs *connSession) send(r Response) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.enc.Encode(r)
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	cs := &connSession{enc: json.NewEncoder(conn), sess: core.NewSession(s.sys)}
	defer cs.sess.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Track this connection's entangled queries so they are withdrawn when
	// the client goes away (its handle could never be delivered anyway).
	var pendingMu sync.Mutex
	pending := make(map[uint64]struct{})
	defer func() {
		pendingMu.Lock()
		ids := make([]uint64, 0, len(pending))
		for id := range pending {
			ids = append(ids, id)
		}
		pendingMu.Unlock()
		for _, id := range ids {
			s.sys.Cancel(id)
		}
	}()

	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			cs.send(Response{Error: fmt.Sprintf("bad request: %v", err)}) //nolint:errcheck
			continue
		}
		resp := s.dispatch(cs, &pendingMu, pending, req)
		if err := cs.send(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(cs *connSession, pendingMu *sync.Mutex, pending map[uint64]struct{}, req Request) Response {
	switch {
	case req.Cancel != 0:
		ok := s.sys.Cancel(req.Cancel)
		if !ok {
			return Response{ID: req.ID, Error: fmt.Sprintf("q%d is not pending", req.Cancel)}
		}
		return Response{ID: req.ID, Query: req.Cancel, Text: "canceled"}

	case req.Admin != "":
		switch req.Admin {
		case "state":
			return Response{ID: req.ID, Text: s.sys.Coordinator().DumpState()}
		case "pending":
			text := ""
			for _, p := range s.sys.Coordinator().Pending() {
				text += fmt.Sprintf("q%d [%s] %s\n", p.ID, p.Owner, p.Logic)
			}
			return Response{ID: req.ID, Text: text}
		case "stats":
			st := s.sys.Coordinator().Stats()
			return Response{ID: req.ID, Text: fmt.Sprintf("%+v", st)}
		case "shards":
			text := ""
			for _, si := range s.sys.Coordinator().Shards() {
				text += fmt.Sprintf("shard %d: pending=%d relations=%v stats=%+v\n",
					si.ID, si.Pending, si.Relations, si.Stats)
			}
			return Response{ID: req.ID, Text: text}
		case "wal":
			st, ok := s.sys.WALStatsSnapshot()
			if !ok {
				return Response{ID: req.ID, Text: "not durable (no WAL configured)\n"}
			}
			return Response{ID: req.ID, Text: st.String()}
		default:
			return Response{ID: req.ID, Error: fmt.Sprintf("unknown admin command %q", req.Admin)}
		}

	case req.SQL != "":
		resp, err := cs.sess.Execute(req.SQL, req.Owner)
		if err != nil {
			return Response{ID: req.ID, Error: err.Error()}
		}
		if resp.Entangled {
			h := resp.Handle
			pendingMu.Lock()
			pending[h.ID] = struct{}{}
			pendingMu.Unlock()
			go func() {
				out := <-h.Done()
				pendingMu.Lock()
				delete(pending, h.ID)
				pendingMu.Unlock()
				ev := Response{Event: "answer", Query: out.QueryID, MatchSize: out.MatchSize}
				if out.Canceled {
					ev.Event = "canceled"
				}
				for _, a := range out.Answers {
					aj := AnswerJSON{Relation: a.Relation}
					for _, t := range a.Tuples {
						aj.Tuples = append(aj.Tuples, encodeTuple(t))
					}
					ev.Answers = append(ev.Answers, aj)
				}
				cs.send(ev) //nolint:errcheck // connection may be gone
			}()
			return Response{ID: req.ID, Entangled: true, Query: h.ID}
		}
		if resp.Result == nil {
			// Transaction-control statements carry no result set.
			return Response{ID: req.ID, Text: "OK"}
		}
		out := Response{ID: req.ID, Cols: resp.Result.Cols, Affected: resp.Result.Affected}
		for _, row := range resp.Result.Rows {
			out.Rows = append(out.Rows, encodeTuple(row))
		}
		return out

	default:
		return Response{ID: req.ID, Error: "empty request"}
	}
}

// ErrClosed is returned by client operations on a closed connection.
var ErrClosed = errors.New("server: connection closed")
