package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
)

// Server accepts middle-tier connections and forwards their statements to a
// core.System. Each connection speaks either the v2 framed binary protocol
// or the legacy line-delimited JSON protocol; the codec is auto-detected
// from the first byte the client sends ('{' selects legacy JSON, mirroring
// the WAL's v1-adoption pattern).
type Server struct {
	sys *core.System
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// prepared counts live prepared statements across every connection's
	// table — observable evidence that per-connection tables are torn down
	// on disconnect, not leaked.
	prepared atomic.Int64
}

// PreparedStatements reports the number of prepared statements currently
// held in per-connection tables (diagnostics/tests).
func (s *Server) PreparedStatements() int { return int(s.prepared.Load()) }

// Serve starts serving on ln. It returns when the listener is closed.
func Serve(sys *core.System, ln net.Listener) *Server {
	s := &Server{sys: sys, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen is a convenience for Serve over TCP on addr (use "127.0.0.1:0" for
// an ephemeral port; Addr reports the bound address).
func Listen(sys *core.System, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(sys, ln), nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and closes every live connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// conn is the per-connection state shared by both codecs: one core.Session
// (interactive transaction state), one context whose cancellation withdraws
// the connection's still-pending entangled queries, and one writer goroutine
// draining an outbound queue — request replies and asynchronous coordination
// events are enqueued from any goroutine and serialized by the writer, so no
// per-event goroutine is ever spawned.
type conn struct {
	srv  *Server
	c    net.Conn
	sess *core.Session

	// ctx is canceled at teardown; every statement runs under it, so the
	// core withdraws entangled queries this connection still owns (their
	// answers could never be delivered anyway).
	ctx    context.Context
	cancel context.CancelFunc

	qmu         sync.Mutex
	qcond       *sync.Cond // signals drain progress to throttled readers
	queue       []outItem  // messages awaiting the writer
	queuedBytes int        // encoded bytes sitting in queue (events estimated)
	dead        bool       // no further enqueues; writer drains and exits
	kick        chan struct{}
	wdone       chan struct{}
	legacy      bool // codec of this connection (writer encodes events per codec)

	// stmts is this connection's prepared-statement table: wire statement id
	// → compiled artifact. Only the serve goroutine touches it (requests
	// execute serially per connection), and it dies with the connection —
	// exec-after-disconnect is structurally impossible, exec-after-close is
	// an explicit error.
	stmts    map[uint64]*core.PreparedStmt
	nextStmt uint64
}

// outItem is one outbound message: either pre-encoded bytes (request
// replies) or a coordination outcome the WRITER goroutine encodes at drain
// time — so delivery callbacks, which run on the coordinator's goroutine
// with lane locks held, never pay for marshaling a large answer set.
type outItem struct {
	b  []byte
	ev *coord.Outcome
}

// maxQueuedBytes is the per-connection outbound high-water mark: a reader
// that finds more than this queued parks until the writer drains, restoring
// the TCP backpressure the old write-inline server had (a client that
// pipelines requests without reading replies throttles itself instead of
// growing server memory without bound). Event enqueues stay non-blocking —
// they are produced at most once per accepted request, so bounding the
// request path bounds them too.
const maxQueuedBytes = 8 << 20

// enqueue hands an encoded message to the writer. It never blocks: messages
// enqueued after teardown are dropped. Safe to call from coordination
// callbacks that hold lane locks.
func (cn *conn) enqueue(b []byte) { cn.put(outItem{b: b}) }

// enqueueEvent queues a coordination outcome for encoding by the writer.
func (cn *conn) enqueueEvent(out coord.Outcome) { cn.put(outItem{ev: &out}) }

func (cn *conn) put(it outItem) {
	cn.qmu.Lock()
	if cn.dead {
		cn.qmu.Unlock()
		return
	}
	cn.queue = append(cn.queue, it)
	if it.ev != nil {
		cn.queuedBytes += 64 // encoded later; charge a nominal size
	} else {
		cn.queuedBytes += len(it.b)
	}
	cn.qmu.Unlock()
	select {
	case cn.kick <- struct{}{}:
	default:
	}
}

// throttle parks the reader while the outbound queue is over the high-water
// mark. Called between requests from the serve loops only (never from
// delivery callbacks).
func (cn *conn) throttle() {
	cn.qmu.Lock()
	for cn.queuedBytes > maxQueuedBytes && !cn.dead {
		cn.qcond.Wait()
	}
	cn.qmu.Unlock()
}

// writer is the connection's single outbound goroutine: it batches whatever
// has queued since the last write into one writev, encoding queued
// coordination outcomes as it goes. On write error it marks the connection
// dead (dropping future messages) and closes it to unwedge the reader.
func (cn *conn) writer() {
	defer close(cn.wdone)
	var werr error
	var evBuf frameBuf
	for {
		cn.qmu.Lock()
		batch := cn.queue
		cn.queue = nil
		cn.queuedBytes = 0
		dead := cn.dead
		cn.qcond.Broadcast()
		cn.qmu.Unlock()
		if len(batch) == 0 {
			if dead {
				return
			}
			<-cn.kick
			continue
		}
		if werr != nil {
			continue // broken pipe: keep draining so enqueuers stay cheap
		}
		bufs := make(net.Buffers, 0, len(batch))
		for _, it := range batch {
			if it.ev != nil {
				if b := cn.encodeEvent(&evBuf, *it.ev); b != nil {
					bufs = append(bufs, b)
				}
				continue
			}
			bufs = append(bufs, it.b)
		}
		if len(bufs) == 0 {
			continue
		}
		if _, err := bufs.WriteTo(cn.c); err != nil {
			werr = err
			cn.qmu.Lock()
			cn.dead = true
			cn.qcond.Broadcast()
			cn.qmu.Unlock()
			cn.c.Close()
		}
	}
}

// encodeEvent marshals one outcome in the connection's codec.
func (cn *conn) encodeEvent(f *frameBuf, out coord.Outcome) []byte {
	if cn.legacy {
		b, err := json.Marshal(legacyEvent(out))
		if err != nil {
			return nil
		}
		return append(b, '\n')
	}
	f.reset()
	if f.appendEvent(out) != nil {
		return nil
	}
	return append([]byte(nil), f.b...)
}

// shutdownWriter flushes the queue (bounded by the write deadline set in
// handle's teardown) and stops the writer.
func (cn *conn) shutdownWriter() {
	cn.qmu.Lock()
	cn.dead = true
	cn.qmu.Unlock()
	select {
	case cn.kick <- struct{}{}:
	default:
	}
	<-cn.wdone
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	cn := &conn{
		srv:   s,
		c:     c,
		sess:  core.NewSession(s.sys),
		kick:  make(chan struct{}, 1),
		wdone: make(chan struct{}),
	}
	cn.qcond = sync.NewCond(&cn.qmu)
	cn.ctx, cn.cancel = context.WithCancel(context.Background())
	go cn.writer()
	defer func() {
		// Give queued replies (e.g. the final error frame) a bounded chance
		// to flush, then tear down. Canceling the context withdraws this
		// connection's pending entangled queries from the coordinator;
		// closing the session rolls back an abandoned transaction; the
		// prepared-statement table goes with the connection.
		cn.c.SetWriteDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
		cn.shutdownWriter()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		cn.cancel()
		cn.sess.Close()
		s.prepared.Add(-int64(len(cn.stmts)))
		cn.stmts = nil
	}()

	// Codec auto-detection: a v2 client's first byte is the preamble's 'Y';
	// anything else — '{' from a legacy JSON client, or arbitrary garbage —
	// is served by the legacy codec, which answers malformed lines with a
	// JSON error (the pre-v2 contract).
	br := bufio.NewReaderSize(c, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == v2Magic[0] {
		cn.serveV2(br)
		return
	}
	cn.legacy = true
	cn.serveLegacy(br)
}

// ---------------------------------------------------------------------------
// v2 framed protocol

func (cn *conn) serveV2(br *bufio.Reader) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != v2Magic {
		cn.sendErrorV2(0, errBadFrame, "server: unrecognized protocol preamble")
		return
	}
	var rbuf []byte
	var enc frameBuf
	for {
		// Backpressure before every read — replies to malformed frames are
		// queued output too, so a flood of bad input must park the reader
		// exactly like a flood of valid pipelined requests.
		cn.throttle()
		payload, err := readFrame(br, rbuf)
		rbuf = payload
		if err != nil {
			if err == errFrameSize {
				// The explicit max-frame-size error the protocol promises:
				// the stream position is unrecoverable after an oversized
				// length prefix, so report and close.
				cn.sendErrorV2(0, errFrameTooBig, err.Error())
			}
			return
		}
		req, derr := decodeRequest(payload)
		if derr != nil {
			// Frame boundaries are intact (the frame was read in full), so a
			// bad frame is reported — correlated by any id recovered from
			// its header — and the connection keeps serving.
			cn.sendErrorV2(req.id, errBadFrame, derr.Error())
			continue
		}
		cn.dispatchV2(&enc, req)
	}
}

func (cn *conn) sendErrorV2(id uint64, code byte, msg string) {
	var f frameBuf
	if f.appendError(id, code, msg) == nil {
		cn.enqueue(f.b)
	}
}

// dispatchV2 runs one request and enqueues its reply. Requests are executed
// serially per connection — that preserves session (transaction) semantics —
// but the client may pipeline arbitrarily many: the reader never waits for
// the writer, and replies carry the request id.
func (cn *conn) dispatchV2(enc *frameBuf, req request) {
	enc.reset()
	switch req.kind {
	case kindCancel:
		if cn.srv.sys.Cancel(req.query) {
			enc.appendOK(req.id, "canceled") //nolint:errcheck // small frame
		} else {
			enc.appendError(req.id, errGeneric, fmt.Sprintf("q%d is not pending", req.query)) //nolint:errcheck
		}
	case kindAdmin:
		cn.adminV2(enc, req)
	case kindExec:
		cn.execV2(enc, req)
	case kindExplain:
		cn.explainV2(enc, req)
	case kindPrepare:
		cn.prepareV2(enc, req)
	case kindExecPrepared:
		cn.execPreparedV2(enc, req)
	case kindClosePrepared:
		if _, ok := cn.stmts[req.stmt]; !ok {
			enc.appendError(req.id, errGeneric, fmt.Sprintf("prepared statement s%d is not open", req.stmt)) //nolint:errcheck
		} else {
			delete(cn.stmts, req.stmt)
			cn.srv.prepared.Add(-1)
			enc.appendOK(req.id, "closed") //nolint:errcheck
		}
	}
	if len(enc.b) > 0 {
		cn.enqueue(enc.take())
	}
}

// prepareV2 compiles one statement into this connection's table. The
// artifact itself comes from the system's shared text→artifact cache, so a
// thousand connections preparing the same template share one compilation.
func (cn *conn) prepareV2(enc *frameBuf, req request) {
	if req.sql == "" {
		enc.appendError(req.id, errGeneric, "empty prepare request") //nolint:errcheck
		return
	}
	ps, err := cn.sess.Prepare(req.sql)
	if err != nil {
		enc.appendError(req.id, errGeneric, err.Error()) //nolint:errcheck
		return
	}
	if cn.stmts == nil {
		cn.stmts = make(map[uint64]*core.PreparedStmt)
	}
	cn.nextStmt++
	cn.stmts[cn.nextStmt] = ps
	cn.srv.prepared.Add(1)
	enc.appendPrepared(req.id, cn.nextStmt, ps.NumParams(), ps.Entangled()) //nolint:errcheck // small frame
}

// execPreparedV2 runs one prepared execution: statement id + parameter
// vector in, the same reply shapes as kindExec out (result set, OK, or
// entangled ack followed by an async event).
func (cn *conn) execPreparedV2(enc *frameBuf, req request) {
	ps, ok := cn.stmts[req.stmt]
	if !ok {
		enc.appendError(req.id, errGeneric, fmt.Sprintf("prepared statement s%d is not open", req.stmt)) //nolint:errcheck
		return
	}
	ctx, cancel := cn.ctx, context.CancelFunc(nil)
	if req.ttl > 0 {
		ctx, cancel = context.WithTimeout(cn.ctx, req.ttl)
	}
	resp, err := cn.sess.ExecutePreparedContext(ctx, ps, req.params, req.owner)
	cn.reply(enc, req, resp, err, cancel)
}

func (cn *conn) execV2(enc *frameBuf, req request) {
	if req.sql == "" {
		enc.appendError(req.id, errGeneric, "empty request") //nolint:errcheck
		return
	}
	// A request TTL (the wire form of a client context deadline) bounds an
	// entangled query's pending life: the per-request context expires, and
	// the core's context binding withdraws the query from the coordinator.
	ctx, cancel := cn.ctx, context.CancelFunc(nil)
	if req.ttl > 0 {
		ctx, cancel = context.WithTimeout(cn.ctx, req.ttl)
	}
	resp, err := cn.sess.ExecuteContext(ctx, req.sql, req.owner)
	cn.reply(enc, req, resp, err, cancel)
}

// explainV2 answers a kindExplain request with the typed plan description.
// Nothing executes; the optional parameter vector refines the estimates.
func (cn *conn) explainV2(enc *frameBuf, req request) {
	if req.sql == "" {
		enc.appendError(req.id, errGeneric, "empty explain request") //nolint:errcheck
		return
	}
	d, err := cn.srv.sys.Explain(req.sql, req.params)
	if err != nil {
		enc.appendError(req.id, replErrCode(err), err.Error()) //nolint:errcheck
		return
	}
	if err := enc.appendPlan(req.id, d); err != nil {
		enc.reset()
		enc.appendError(req.id, errGeneric, err.Error()) //nolint:errcheck
	}
}

// reply encodes one execution outcome — shared by the text and prepared
// paths, whose reply shapes are identical.
func (cn *conn) reply(enc *frameBuf, req request, resp *core.Response, err error, cancel context.CancelFunc) {
	if err != nil {
		if cancel != nil {
			cancel()
		}
		enc.appendError(req.id, replErrCode(err), err.Error()) //nolint:errcheck
		return
	}
	if resp.Entangled {
		h := resp.Handle
		enc.appendEntangled(req.id, h.ID) //nolint:errcheck // small frame
		h.Notify(func(out coord.Outcome) {
			if cancel != nil {
				cancel() // release the TTL timer; the outcome is settled
			}
			// The writer goroutine encodes; this callback runs on the
			// coordinator's goroutine with lane locks held and must stay
			// cheap and non-blocking.
			cn.enqueueEvent(out)
		})
		return
	}
	if cancel != nil {
		cancel()
	}
	if resp.Result == nil {
		// Transaction-control statements carry no result set.
		enc.appendOK(req.id, "OK") //nolint:errcheck
		return
	}
	if err := enc.appendResult(req.id, resp.Result.Cols, resp.Result.Rows, resp.Result.Affected); err != nil {
		enc.reset()
		enc.appendError(req.id, errGeneric, err.Error()) //nolint:errcheck
	}
}

// adminV2 answers the typed admin surface: structured snapshots, serialized
// properly, replacing the legacy codec's fmt.Sprintf text dumps.
func (cn *conn) adminV2(enc *frameBuf, req request) {
	sys := cn.srv.sys
	switch req.admin {
	case adminState:
		enc.appendAdminState(req.id, sys.Coordinator().DumpState()) //nolint:errcheck
	case adminPending:
		enc.appendAdminPending(req.id, sys.Coordinator().Pending()) //nolint:errcheck
	case adminStats:
		enc.appendAdminStats(req.id, sys.Coordinator().Stats()) //nolint:errcheck
	case adminShards:
		enc.appendAdminShards(req.id, sys.Coordinator().Shards()) //nolint:errcheck
	case adminWAL:
		st, ok := sys.WALStatsSnapshot()
		enc.appendAdminWAL(req.id, st, ok) //nolint:errcheck
	case adminTxn:
		enc.appendAdminTxn(req.id, sys.TxnStats()) //nolint:errcheck
	case adminRepl:
		enc.appendAdminRepl(req.id, adminRepl, sys.ReplStatus()) //nolint:errcheck
	case adminPool:
		st, ok := sys.PoolStats()
		enc.appendAdminPool(req.id, st, ok) //nolint:errcheck
	case adminPromote:
		if err := sys.Promote(); err != nil {
			enc.appendError(req.id, errGeneric, err.Error()) //nolint:errcheck
			return
		}
		enc.appendAdminRepl(req.id, adminPromote, sys.ReplStatus()) //nolint:errcheck
	default:
		enc.appendError(req.id, errGeneric, fmt.Sprintf("unknown admin command %d", req.admin)) //nolint:errcheck
	}
}

// ---------------------------------------------------------------------------
// Legacy line-delimited JSON protocol

func (cn *conn) serveLegacy(br *bufio.Reader) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 64<<10), legacyMaxLine)
	for {
		cn.throttle() // see serveV2: error replies count against the queue too
		if !sc.Scan() {
			break
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			// Echo the request id when it is recoverable from the bad line,
			// so a pipelining client can correlate the error instead of
			// seeing an orphaned id-0 reply that resembles an async event.
			var idOnly struct {
				ID uint64 `json:"id"`
			}
			json.Unmarshal(line, &idOnly) //nolint:errcheck // best effort
			cn.sendJSON(Response{ID: idOnly.ID, Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		cn.sendJSON(cn.dispatchLegacy(req))
	}
	if err := sc.Err(); err != nil {
		// A too-long line used to kill the connection silently; now the
		// client is told why before the close.
		msg := fmt.Sprintf("request rejected: %v", err)
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("request line exceeds the %d-byte legacy limit; use the v2 framed protocol for large statements", legacyMaxLine)
		}
		cn.sendJSON(Response{Error: msg})
	}
}

func (cn *conn) sendJSON(r Response) {
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	cn.enqueue(append(b, '\n'))
}

func legacyEvent(out coord.Outcome) Response {
	ev := Response{Event: "answer", Query: out.QueryID, MatchSize: out.MatchSize}
	if out.Canceled {
		ev.Event = "canceled"
	}
	for _, a := range out.Answers {
		aj := AnswerJSON{Relation: a.Relation}
		for _, t := range a.Tuples {
			aj.Tuples = append(aj.Tuples, encodeTuple(t))
		}
		ev.Answers = append(ev.Answers, aj)
	}
	return ev
}

func (cn *conn) dispatchLegacy(req Request) Response {
	s := cn.srv
	switch {
	case req.Cancel != 0:
		ok := s.sys.Cancel(req.Cancel)
		if !ok {
			return Response{ID: req.ID, Error: fmt.Sprintf("q%d is not pending", req.Cancel)}
		}
		return Response{ID: req.ID, Query: req.Cancel, Text: "canceled"}

	case req.Admin != "":
		switch req.Admin {
		case "state":
			return Response{ID: req.ID, Text: s.sys.Coordinator().DumpState()}
		case "pending":
			return Response{ID: req.ID, Text: renderPending(s.sys.Coordinator().Pending())}
		case "stats":
			st := s.sys.Coordinator().Stats()
			return Response{ID: req.ID, Text: fmt.Sprintf("%+v", st)}
		case "shards":
			return Response{ID: req.ID, Text: renderShards(s.sys.Coordinator().Shards())}
		case "wal":
			st, ok := s.sys.WALStatsSnapshot()
			return Response{ID: req.ID, Text: renderWAL(st, ok)}
		case "txn":
			return Response{ID: req.ID, Text: renderTxn(s.sys.TxnStats())}
		case "pool":
			st, ok := s.sys.PoolStats()
			return Response{ID: req.ID, Text: renderPool(st, ok)}
		default:
			return Response{ID: req.ID, Error: fmt.Sprintf("unknown admin command %q", req.Admin)}
		}

	case req.SQL != "":
		resp, err := cn.sess.ExecuteContext(cn.ctx, req.SQL, req.Owner)
		if err != nil {
			return Response{ID: req.ID, Error: err.Error()}
		}
		if resp.Entangled {
			h := resp.Handle
			// The writer queue replaces the old goroutine-per-event spawn;
			// encoding happens on the writer goroutine, off the
			// coordinator's locks.
			h.Notify(func(out coord.Outcome) { cn.enqueueEvent(out) })
			return Response{ID: req.ID, Entangled: true, Query: h.ID}
		}
		if resp.Result == nil {
			// Transaction-control statements carry no result set.
			return Response{ID: req.ID, Text: "OK"}
		}
		out := Response{ID: req.ID, Cols: resp.Result.Cols, Affected: resp.Result.Affected}
		for _, row := range resp.Result.Rows {
			out.Rows = append(out.Rows, encodeTuple(row))
		}
		return out

	default:
		return Response{ID: req.ID, Error: "empty request"}
	}
}

// ErrClosed is returned by client operations on a closed connection.
var ErrClosed = errors.New("server: connection closed")
