package server

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/travel"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	sys := core.NewSystem(core.Config{})
	if err := travel.SeedFigure1(sys); err != nil {
		t.Fatal(err)
	}
	srv, err := Listen(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRemotePlainSQL(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	res, err := c.Query("SELECT fno, dest FROM Flights WHERE dest = 'Paris' ORDER BY fno")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].Int() != 122 || res.Rows[0][1].Str() != "Paris" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Cols[0] != "fno" {
		t.Errorf("cols = %v", res.Cols)
	}
	ins, err := c.Query("INSERT INTO Flights VALUES (200, 'NYC', 'Oslo', 3, 100.0, 'KLM')")
	if err != nil {
		t.Fatal(err)
	}
	if ins.Affected != 1 {
		t.Errorf("affected = %d", ins.Affected)
	}
}

func TestRemoteErrors(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.Query("SELECT nosuch FROM Flights"); err == nil {
		t.Error("remote error not surfaced")
	}
	if _, err := c.Query("SELECT 'K', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights)"); err == nil {
		t.Error("Query accepted entangled statement")
	}
	if _, _, err := c.Submit("SELECT fno FROM Flights", "x"); err == nil {
		t.Error("Submit accepted plain statement")
	}
	if err := c.Cancel(9999); err == nil {
		t.Error("cancel of unknown query succeeded")
	}
}

// TestRemoteCoordination runs Figure 1 across two separate client
// connections — the full three-tier path.
func TestRemoteCoordination(t *testing.T) {
	_, addr := startServer(t)
	kramer := dial(t, addr)
	jerry := dial(t, addr)

	qK := travel.BuildFlightQuery("Kramer", []string{"Jerry"}, travel.FlightFilter{Dest: "Paris"})
	qJ := travel.BuildFlightQuery("Jerry", []string{"Kramer"}, travel.FlightFilter{Dest: "Paris"})

	idK, evK, err := kramer.Submit(qK, "kramer")
	if err != nil {
		t.Fatal(err)
	}
	if idK == 0 {
		t.Fatal("no query id")
	}
	select {
	case ev := <-evK:
		t.Fatalf("Kramer answered early: %+v", ev)
	case <-time.After(30 * time.Millisecond):
	}

	_, evJ, err := jerry.Submit(qJ, "jerry")
	if err != nil {
		t.Fatal(err)
	}
	var outK, outJ Event
	select {
	case outK = <-evK:
	case <-time.After(2 * time.Second):
		t.Fatal("Kramer timed out")
	}
	select {
	case outJ = <-evJ:
	case <-time.After(2 * time.Second):
		t.Fatal("Jerry timed out")
	}
	if outK.Canceled || outJ.Canceled {
		t.Fatal("unexpected cancel")
	}
	if outK.MatchSize != 2 {
		t.Errorf("match size = %d", outK.MatchSize)
	}
	fK := outK.Answers[0].Tuples[0][1].Int()
	fJ := outJ.Answers[0].Tuples[0][1].Int()
	if fK != fJ {
		t.Errorf("flights differ: %d vs %d", fK, fJ)
	}
}

func TestRemoteCancel(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	id, ev, err := c.Submit(travel.BuildFlightQuery("K", []string{"Ghost"}, travel.FlightFilter{Dest: "Paris"}), "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(id); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-ev:
		if !out.Canceled {
			t.Errorf("event = %+v, want canceled", out)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no cancel event")
	}
}

// TestDisconnectWithdrawsPending: closing a client cancels its parked
// queries server-side.
func TestDisconnectWithdrawsPending(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	if _, _, err := c.Submit(travel.BuildFlightQuery("K", []string{"Ghost"}, travel.FlightFilter{Dest: "Paris"}), "k"); err != nil {
		t.Fatal(err)
	}
	if srv.sys.Coordinator().PendingCount() != 1 {
		t.Fatalf("pending = %d", srv.sys.Coordinator().PendingCount())
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.sys.Coordinator().PendingCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("pending query not withdrawn after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdminEndpoints(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.Submit(travel.BuildFlightQuery("K", []string{"Ghost"}, travel.FlightFilter{Dest: "Paris"}), "k") //nolint:errcheck
	state, err := c.AdminState()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(state, "Pending entangled queries (1)") {
		t.Errorf("state = %q", state)
	}
	for _, cmd := range []string{"pending", "stats"} {
		resp, err := c.call(Request{Admin: cmd})
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if resp.Text == "" {
			t.Errorf("%s: empty", cmd)
		}
	}
	if _, err := c.call(Request{Admin: "nope"}); err == nil {
		t.Error("unknown admin command accepted")
	}
	if _, err := c.call(Request{}); err == nil {
		t.Error("empty request accepted")
	}
}

func TestRawProtocolBadJSON(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("this is not json\n")) //nolint:errcheck
	dec := json.NewDecoder(conn)
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Error("expected error response for bad JSON")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	const pairs = 8
	var wg sync.WaitGroup
	errs := make(chan error, pairs*2)
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		a := "ca" + string(rune('0'+p))
		b := "cb" + string(rune('0'+p))
		submit := func(self, friend string) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, ev, err := c.Submit(travel.BuildFlightQuery(self, []string{friend}, travel.FlightFilter{Dest: "Paris"}), self)
			if err != nil {
				errs <- err
				return
			}
			select {
			case out := <-ev:
				if out.Canceled {
					errs <- ErrClosed
				}
			case <-time.After(5 * time.Second):
				errs <- ErrClosed
			}
		}
		go submit(a, b)
		go submit(b, a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRemoteTransactions: BEGIN/COMMIT/ROLLBACK are per-connection, and a
// dropped connection rolls its open transaction back.
func TestRemoteTransactions(t *testing.T) {
	_, addr := startServer(t)
	c1 := dial(t, addr)

	mustQ := func(c *Client, src string) {
		t.Helper()
		if _, err := c.Query(src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	mustQ(c1, "BEGIN")
	mustQ(c1, "INSERT INTO Flights VALUES (800, 'X', 'Bonn', 1, 9.0, 'Z')")
	mustQ(c1, "ROLLBACK")
	res, err := c1.Query("SELECT fno FROM Flights WHERE fno = 800")
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("rollback leaked: %v %v", res, err)
	}
	mustQ(c1, "BEGIN")
	mustQ(c1, "INSERT INTO Flights VALUES (801, 'X', 'Bonn', 1, 9.0, 'Z')")
	mustQ(c1, "COMMIT")
	res, _ = c1.Query("SELECT fno FROM Flights WHERE fno = 801")
	if len(res.Rows) != 1 {
		t.Fatal("commit lost")
	}

	// An abandoned transaction must not wedge the server: dropping the
	// connection rolls back and releases locks.
	c2 := dial(t, addr)
	mustQ(c2, "BEGIN")
	mustQ(c2, "INSERT INTO Flights VALUES (802, 'X', 'Bonn', 1, 9.0, 'Z')")
	c2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := c1.Query("SELECT fno FROM Flights WHERE fno = 802")
		if err == nil && len(res.Rows) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned txn not rolled back / locks not released")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestValueRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := func() error {
		_, err := c.Query("CREATE TABLE T (i INT, f FLOAT, s STRING, b BOOL, n INT)")
		return err
	}(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("INSERT INTO T VALUES (7, 2.5, 'x', TRUE, NULL)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT * FROM T")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Int() != 7 || row[1].Float() != 2.5 || row[2].Str() != "x" || !row[3].Bool() || !row[4].IsNull() {
		t.Errorf("round trip = %v", row)
	}
}
