package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/travel"
)

// TestV2Int64Exact: the v2 codec round-trips int64 exactly; the legacy JSON
// codec's client decode rounds through float64 above 2^53 (documented
// tolerance). Both are pinned at 1<<60 + 1.
func TestV2Int64Exact(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	const big = int64(1<<60 + 1)
	if _, err := c.Query("CREATE TABLE Big (i INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(fmt.Sprintf("INSERT INTO Big VALUES (%d)", big)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT i FROM Big")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != big {
		t.Errorf("v2: %d != %d (lost precision)", got, big)
	}

	lc, err := DialLegacy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	lres, err := lc.Query("SELECT i FROM Big")
	if err != nil {
		t.Fatal(err)
	}
	rounded := int64(float64(big)) // the documented legacy tolerance
	if got := lres.Rows[0][0].Int(); got != rounded {
		t.Errorf("legacy: %d, want the float64-rounded %d", got, rounded)
	}
	if rounded == big {
		t.Fatal("test value does not exercise the precision loss")
	}
}

// TestPipelinedBadRequestNotMisrouted (legacy): an error reply to an
// unparseable request must echo the recoverable request id, so a pipelining
// client correlates it instead of seeing an id-0 orphan that resembles an
// async event.
func TestPipelinedBadRequestNotMisrouted(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Pipeline: a bad request (valid JSON, wrong field type — id recoverable)
	// between two good ones.
	fmt.Fprintf(conn, `{"id":1,"sql":"SELECT fno FROM Flights WHERE fno = 122"}`+"\n")
	fmt.Fprintf(conn, `{"id":7,"cancel":"not-a-number"}`+"\n")
	fmt.Fprintf(conn, `{"id":3,"sql":"SELECT fno FROM Flights WHERE fno = 122"}`+"\n")
	dec := json.NewDecoder(conn)
	var got []Response
	for i := 0; i < 3; i++ {
		var r Response
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		if r.Event != "" {
			t.Fatalf("reply %d misrouted as event: %+v", i, r)
		}
		got = append(got, r)
	}
	if got[0].ID != 1 || got[1].ID != 7 || got[2].ID != 3 {
		t.Errorf("ids = %d,%d,%d, want 1,7,3", got[0].ID, got[1].ID, got[2].ID)
	}
	if got[1].Error == "" {
		t.Error("bad request not reported")
	}
}

// TestV2BadFrameKeepsConnection: a v2 frame that decodes to garbage gets a
// correlated error frame — typed as kindError, never as an event — and the
// connection keeps serving.
func TestV2BadFrameKeepsConnection(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	// Watch an entangled query so a misrouted error would be observable.
	_, ev, err := c.Submit(travel.BuildFlightQuery("K", []string{"Ghost"}, travel.FlightFilter{Dest: "Paris"}), "k")
	if err != nil {
		t.Fatal(err)
	}

	// Inject a malformed frame with a recoverable id straight into the
	// connection, bypassing the client's encoder.
	bad := []byte{kindExec, 42, 0xFF, 0xFF} // kind + id 42 + truncated body
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(bad)))
	c.wmu.Lock()
	c.conn.Write(append(hdr[:], bad...)) //nolint:errcheck
	c.wmu.Unlock()

	// The connection must still answer real requests afterwards.
	res, err := c.Query("SELECT fno FROM Flights WHERE fno = 122")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("connection dead after bad frame: %v %v", res, err)
	}
	select {
	case out := <-ev:
		t.Fatalf("error misrouted onto event watch: %+v", out)
	default:
	}
}

// TestLegacyLineLimitError: a legacy request above the 1 MiB scanner limit
// used to kill the connection silently; now an error response explains it.
func TestLegacyLineLimitError(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	huge := fmt.Sprintf(`{"id":5,"sql":"INSERT INTO T VALUES ('%s')"}`+"\n", strings.Repeat("x", legacyMaxLine))
	if _, err := conn.Write([]byte(huge)); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(conn)
	var r Response
	if err := dec.Decode(&r); err != nil {
		t.Fatalf("no error reply before close: %v", err)
	}
	if !strings.Contains(r.Error, "exceeds") {
		t.Errorf("error = %q", r.Error)
	}
}

// TestV2LargeStatement: the v2 framed protocol carries statements far above
// the legacy line limit.
func TestV2LargeStatement(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.Query("CREATE TABLE Blob (s STRING)"); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("y", 2<<20) // 2 MiB — double the legacy limit
	if _, err := c.Query(fmt.Sprintf("INSERT INTO Blob VALUES ('%s')", payload)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT s FROM Blob")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Str(); got != payload {
		t.Fatalf("blob came back %d bytes, want %d", len(got), len(payload))
	}
}

// TestV2OversizedFrameError: a frame above maxFrameLen gets the explicit
// max-frame-size error frame before the connection closes.
func TestV2OversizedFrameError(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(v2Magic[:]); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrameLen+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("no error frame before close: %v", err)
	}
	rp, err := decodeReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rp.kind != kindError || rp.errCode != errFrameTooBig {
		t.Errorf("reply = %+v, want kindError/errFrameTooBig", rp)
	}
}

// TestMultiplexedInFlight: one v2 connection sustains many concurrent
// in-flight requests. A second connection holds an exclusive table lock so
// the pipelined statements deterministically block server-side while more
// arrive behind them.
func TestMultiplexedInFlight(t *testing.T) {
	_, addr := startServer(t)
	locker := dial(t, addr)
	piped := dial(t, addr)

	mustQ := func(src string) {
		t.Helper()
		if _, err := locker.Query(src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	mustQ("BEGIN")
	mustQ("INSERT INTO Flights VALUES (900, 'X', 'Bonn', 1, 9.0, 'Z')") // X-lock on Flights

	const inflight = 6
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := piped.Query("SELECT fno FROM Flights WHERE fno = 122"); err != nil {
				errs <- err
			}
		}()
	}

	// All six must be registered in-flight on the one connection while the
	// lock holds them server-side.
	deadline := time.Now().Add(5 * time.Second)
	for piped.MaxInFlight() < inflight {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight high-water = %d, want %d", piped.MaxInFlight(), inflight)
		}
		time.Sleep(time.Millisecond)
	}
	mustQ("ROLLBACK") // release the lock; everything completes
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := piped.MaxInFlight(); got < 4 {
		t.Errorf("pipelined high-water = %d, want >= 4", got)
	}
}

// TestTeardownWithdrawsAllInFlight: N pending entangled queries multiplexed
// on one connection are all withdrawn when the connection drops — the
// pending bookkeeping followed the writer-loop redesign.
func TestTeardownWithdrawsAllInFlight(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := travel.BuildFlightQuery(fmt.Sprintf("solo%d", i), []string{fmt.Sprintf("ghost%d", i)},
				travel.FlightFilter{Dest: "Paris"})
			if _, _, err := c.Submit(q, "t"); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := srv.sys.Coordinator().PendingCount(); got != n {
		t.Fatalf("pending = %d, want %d", got, n)
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.sys.Coordinator().PendingCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("still %d pending after disconnect", srv.sys.Coordinator().PendingCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitContextDeadline: a context deadline rides the wire as a TTL and
// withdraws the entangled query server-side, delivering a canceled event.
func TestSubmitContextDeadline(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, ev, err := c.SubmitContext(ctx,
		travel.BuildFlightQuery("K", []string{"Ghost"}, travel.FlightFilter{Dest: "Paris"}), "k")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-ev:
		if !out.Canceled {
			t.Errorf("event = %+v, want canceled", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline did not cancel the query server-side")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.sys.Coordinator().PendingCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("expired query still pending")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueryContextCancel: canceling the context abandons the wait (the
// reply, when it arrives, is dropped) without poisoning the connection.
func TestQueryContextCancel(t *testing.T) {
	_, addr := startServer(t)
	locker := dial(t, addr)
	c := dial(t, addr)
	if _, err := locker.Query("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := locker.Query("INSERT INTO Flights VALUES (901, 'X', 'Bonn', 1, 9.0, 'Z')"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Under MVCC reads never block, so stall on the writer's exclusive lock
	// with a (no-match) write instead.
	if _, err := c.QueryContext(ctx, "DELETE FROM Flights WHERE fno = -1"); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if _, err := locker.Query("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	// The connection survives the abandoned call.
	res, err := c.Query("SELECT fno FROM Flights WHERE fno = 122")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("connection unusable after ctx cancel: %v %v", res, err)
	}
}

// TestTypedAdminEquivalence: the typed getters return data equivalent to the
// server's own snapshots (and to the legacy text dumps they replace).
func TestTypedAdminEquivalence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	sys := core.NewSystem(core.Config{WALPath: dir, CoordShards: 2})
	if err := sys.Err(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := travel.SeedFigure1(sys); err != nil {
		t.Fatal(err)
	}
	srv, err := Listen(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Submit(travel.BuildFlightQuery("K", []string{"Ghost"}, travel.FlightFilter{Dest: "Paris"}), "kramer"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	stats, err := c.AdminStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := sys.Coordinator().Stats(); stats != want {
		t.Errorf("stats = %+v, want %+v", stats, want)
	}

	shards, err := c.AdminShardInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("shards = %+v", shards)
	}
	pendTotal := 0
	for _, si := range shards {
		pendTotal += si.Pending
	}
	if pendTotal != 1 {
		t.Errorf("shard pending total = %d", pendTotal)
	}

	pend, err := c.AdminPendingList(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 || pend[0].Owner != "kramer" || pend[0].Waiting <= 0 {
		t.Errorf("pending = %+v", pend)
	}
	if !strings.Contains(pend[0].Source, "INTO ANSWER") {
		t.Errorf("source not carried: %q", pend[0].Source)
	}

	st, durable, err := c.AdminWALStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !durable || st.Commits.Records == 0 {
		t.Errorf("walstats = %+v durable=%v", st, durable)
	}
	// Client-side rendering reproduces the legacy server-side text dump.
	text, err := c.AdminWAL()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sys.WALStatsSnapshot()
	if !strings.HasPrefix(text, "wal: records=") || !strings.Contains(text, "segment") {
		t.Errorf("rendered wal = %q", text)
	}
	if text != want.String() {
		t.Errorf("client rendering diverged:\n%q\n%q", text, want.String())
	}
	shardText, err := c.AdminShards()
	if err != nil {
		t.Fatal(err)
	}
	if shardText != renderShards(sys.Coordinator().Shards()) {
		t.Errorf("shard rendering diverged: %q", shardText)
	}

	txnStats, err := c.AdminTxnStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := sys.TxnStats(); txnStats != want {
		t.Errorf("txn stats = %+v, want %+v", txnStats, want)
	}
	if txnStats.Committed == 0 {
		t.Errorf("txn stats show no commits after seeding: %+v", txnStats)
	}
	txnText, err := c.AdminTxn()
	if err != nil {
		t.Fatal(err)
	}
	if txnText != renderTxn(sys.TxnStats()) {
		t.Errorf("txn rendering diverged: %q", txnText)
	}
}

// TestLegacyClientCompat: the legacy JSON client still works end to end
// against the new server, via first-byte auto-detection.
func TestLegacyClientCompat(t *testing.T) {
	_, addr := startServer(t)
	kramer, err := DialLegacy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer kramer.Close()
	jerry, err := DialLegacy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer jerry.Close()

	res, err := kramer.Query("SELECT fno FROM Flights WHERE dest = 'Paris' ORDER BY fno")
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("legacy query: %v %v", res, err)
	}

	_, evK, err := kramer.Submit(travel.BuildFlightQuery("Kramer", []string{"Jerry"}, travel.FlightFilter{Dest: "Paris"}), "kramer")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := jerry.Submit(travel.BuildFlightQuery("Jerry", []string{"Kramer"}, travel.FlightFilter{Dest: "Paris"}), "jerry"); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-evK:
		if out.Canceled || out.MatchSize != 2 {
			t.Errorf("legacy event = %+v", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("legacy client got no event")
	}

	state, err := kramer.AdminState()
	if err != nil || !strings.Contains(state, "Pending entangled queries") {
		t.Fatalf("legacy admin: %q %v", state, err)
	}

	if id, _, err := kramer.Submit(travel.BuildFlightQuery("K", []string{"Ghost"}, travel.FlightFilter{Dest: "Rome"}), "k"); err != nil {
		t.Fatal(err)
	} else if err := kramer.Cancel(id); err != nil {
		t.Fatal(err)
	}
}

// TestMixedCodecCoordination: a v2 client and a legacy client coordinate
// with each other through the same server — the two codecs share one
// coordinator and both receive their pushes.
func TestMixedCodecCoordination(t *testing.T) {
	_, addr := startServer(t)
	v2c := dial(t, addr)
	lc, err := DialLegacy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	_, evA, err := v2c.Submit(travel.BuildFlightQuery("Ann", []string{"Bob"}, travel.FlightFilter{Dest: "Paris"}), "ann")
	if err != nil {
		t.Fatal(err)
	}
	_, evB, err := lc.Submit(travel.BuildFlightQuery("Bob", []string{"Ann"}, travel.FlightFilter{Dest: "Paris"}), "bob")
	if err != nil {
		t.Fatal(err)
	}
	var fA, fB int64
	select {
	case out := <-evA:
		fA = out.Answers[0].Tuples[0][1].Int()
	case <-time.After(5 * time.Second):
		t.Fatal("v2 side timed out")
	}
	select {
	case out := <-evB:
		fB = out.Answers[0].Tuples[0][1].Int()
	case <-time.After(5 * time.Second):
		t.Fatal("legacy side timed out")
	}
	if fA != fB || fA == 0 {
		t.Errorf("coordinated flights differ across codecs: %d vs %d", fA, fB)
	}
}

// TestAbandonedSubmitReaped: a SubmitContext abandoned by context
// cancellation (no deadline, so no server-side TTL) must not leak — the
// reaper learns the query id from the late ack, withdraws the query, and
// its final event is dropped instead of parking in the early map forever.
func TestAbandonedSubmitReaped(t *testing.T) {
	srv, addr := startServer(t)
	locker := dial(t, addr)
	c := dial(t, addr)

	mustQ := func(src string) {
		t.Helper()
		if _, err := locker.Query(src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	// Stall c's dispatch queue behind a table lock so the submit's ack is
	// deterministically delayed past the context cancellation. Snapshot reads
	// never block, so the staller is a (no-match) write contending on the
	// exclusive lock.
	mustQ("BEGIN")
	mustQ("INSERT INTO Flights VALUES (910, 'X', 'Bonn', 1, 9.0, 'Z')")
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		c.Query("DELETE FROM Flights WHERE fno = -1") //nolint:errcheck
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.MaxInFlight() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker not in flight")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.SubmitContext(ctx,
			travel.BuildFlightQuery("K", []string{"Ghost"}, travel.FlightFilter{Dest: "Paris"}), "k")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the submit frame reach the pipe
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	mustQ("ROLLBACK")
	<-blocked
	// The reaper must withdraw the abandoned query and swallow its event.
	wait := time.Now().Add(5 * time.Second)
	for srv.sys.Coordinator().PendingCount() != 0 {
		if time.Now().After(wait) {
			t.Fatalf("abandoned submit leaked: %d pending", srv.sys.Coordinator().PendingCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for {
		c.mu.Lock()
		early, orphans := len(c.early), len(c.orphans)
		c.mu.Unlock()
		if early == 0 && orphans == 0 {
			break
		}
		if time.Now().After(wait) {
			t.Fatalf("event bookkeeping leaked: early=%d orphans=%d", early, orphans)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientWriteErrorPoisons: after a frame-write failure the connection is
// unusable (ErrClosed), never silently re-framed mid-stream.
func TestClientWriteErrorPoisons(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.conn.Close() // force the next write to fail
	if _, err := c.Query("SELECT fno FROM Flights"); err == nil {
		t.Fatal("write on closed conn succeeded")
	}
	if _, err := c.Query("SELECT fno FROM Flights"); err != ErrClosed {
		t.Fatalf("second call err = %v, want ErrClosed", err)
	}
}
