package sql

import (
	"strconv"
	"strings"

	"repro/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Expr is any parsed expression.
type Expr interface {
	expr()
	String() string
}

// ---------------------------------------------------------------------------
// Statements

// ColDef is one column definition in CREATE TABLE.
type ColDef struct {
	Name string
	Type value.Type
}

// CreateTable is CREATE TABLE name (col type, ..., [PRIMARY KEY (cols)]).
type CreateTable struct {
	Name string
	Cols []ColDef
	PK   []string
}

func (*CreateTable) stmt() {}

func (s *CreateTable) String() string {
	parts := make([]string, 0, len(s.Cols)+1)
	for _, c := range s.Cols {
		parts = append(parts, c.Name+" "+c.Type.String())
	}
	if len(s.PK) > 0 {
		parts = append(parts, "PRIMARY KEY ("+strings.Join(s.PK, ", ")+")")
	}
	return "CREATE TABLE " + s.Name + " (" + strings.Join(parts, ", ") + ")"
}

// CreateIndex is CREATE [ORDERED] INDEX [name] ON table (cols). Ordered
// indexes support range lookups and take exactly one column. A named
// single-column index without ORDERED also builds ordered (the more capable
// kind); the unnamed multi/single-column form stays the legacy hash index.
type CreateIndex struct {
	Table   string
	Name    string // user-assigned index name, "" for the anonymous form
	Cols    []string
	Ordered bool
}

func (*CreateIndex) stmt() {}

func (s *CreateIndex) String() string {
	var b strings.Builder
	b.WriteString("CREATE ")
	if s.Ordered {
		b.WriteString("ORDERED ")
	}
	b.WriteString("INDEX ")
	if s.Name != "" {
		b.WriteString(s.Name)
		b.WriteByte(' ')
	}
	b.WriteString("ON " + s.Table + " (" + strings.Join(s.Cols, ", ") + ")")
	return b.String()
}

// Explain is EXPLAIN <statement>: describe the access plan without executing.
type Explain struct {
	Stmt Statement
}

func (*Explain) stmt() {}

func (s *Explain) String() string { return "EXPLAIN " + s.Stmt.String() }

// TxnStmt is BEGIN, COMMIT or ROLLBACK.
type TxnStmt struct {
	Kind TxnKind
}

// TxnKind distinguishes transaction-control statements.
type TxnKind uint8

// Transaction-control kinds.
const (
	TxnBegin TxnKind = iota
	TxnCommit
	TxnRollback
)

func (*TxnStmt) stmt() {}

func (s *TxnStmt) String() string {
	switch s.Kind {
	case TxnBegin:
		return "BEGIN"
	case TxnCommit:
		return "COMMIT"
	default:
		return "ROLLBACK"
	}
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

func (*DropTable) stmt() {}

func (s *DropTable) String() string { return "DROP TABLE " + s.Name }

// Insert is INSERT INTO table VALUES (...), (...) — or, with From set,
// INSERT INTO table SELECT ... .
type Insert struct {
	Table string
	Rows  [][]Expr
	From  *Select // nil for the VALUES form
}

func (*Insert) stmt() {}

func (s *Insert) String() string {
	if s.From != nil {
		return "INSERT INTO " + s.Table + " " + s.From.String()
	}
	rows := make([]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = "(" + exprList(r) + ")"
	}
	return "INSERT INTO " + s.Table + " VALUES " + strings.Join(rows, ", ")
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr // nil when absent
}

func (*Delete) stmt() {}

func (s *Delete) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// Assign is one SET col = expr clause.
type Assign struct {
	Col string
	Val Expr
}

// Update is UPDATE table SET assignments [WHERE expr].
type Update struct {
	Table string
	Sets  []Assign
	Where Expr
}

func (*Update) stmt() {}

func (s *Update) String() string {
	sets := make([]string, len(s.Sets))
	for i, a := range s.Sets {
		sets[i] = a.Col + " = " + a.Val.String()
	}
	out := "UPDATE " + s.Table + " SET " + strings.Join(sets, ", ")
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// SelectItem is one projection in a SELECT list; Star means "*".
type SelectItem struct {
	Expr  Expr // nil when Star
	Alias string
	Star  bool
}

// TableRef is one FROM-clause table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (r TableRef) String() string {
	if r.Alias != "" {
		return r.Name + " " + r.Alias
	}
	return r.Name
}

// Binding returns the name the table is referred to by in expressions.
func (r TableRef) Binding() string {
	if r.Alias != "" {
		return r.Alias
	}
	return r.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is an ordinary (non-entangled) SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		switch {
		case it.Star:
			items[i] = "*"
		case it.Alias != "":
			items[i] = it.Expr.String() + " AS " + it.Alias
		default:
			items[i] = it.Expr.String()
		}
	}
	b.WriteString(strings.Join(items, ", "))
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		froms := make([]string, len(s.From))
		for i, f := range s.From {
			froms[i] = f.String()
		}
		b.WriteString(strings.Join(froms, ", "))
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + exprList(s.GroupBy))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			keys[i] = k.Expr.String()
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT " + strconv.Itoa(s.Limit))
	}
	return b.String()
}

// AnswerTarget is one answer atom of an entangled query: the tuple of
// expressions contributed INTO ANSWER Relation.
type AnswerTarget struct {
	Exprs    []Expr
	Relation string
}

func (a AnswerTarget) String() string {
	return "(" + exprList(a.Exprs) + ") INTO ANSWER " + a.Relation
}

// EntangledSelect is the paper's coordination statement:
//
//	SELECT select_expr INTO ANSWER tbl [, ANSWER tbl]... [WHERE cond] [CHOOSE n]
//
// With a single answer relation the select list is flat, exactly as in §2.1:
//
//	SELECT 'Kramer', fno INTO ANSWER Reservation WHERE ... CHOOSE 1
//
// With several answer relations, each contribution is a parenthesized tuple
// (the demo paper's grammar leaves the multi-relation select list
// unspecified; we adopt the grouped form and document it in DESIGN.md):
//
//	SELECT ('Jerry', fno) INTO ANSWER Reservation,
//	       ('Jerry', hno) INTO ANSWER HotelReservation
//	WHERE ... CHOOSE 1
type EntangledSelect struct {
	Targets []AnswerTarget
	Where   Expr
	Choose  int // answers requested; the paper's examples use CHOOSE 1
}

func (*EntangledSelect) stmt() {}

func (s *EntangledSelect) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(s.Targets) == 1 {
		b.WriteString(exprList(s.Targets[0].Exprs))
		b.WriteString(" INTO ANSWER " + s.Targets[0].Relation)
	} else {
		parts := make([]string, len(s.Targets))
		for i, t := range s.Targets {
			parts[i] = t.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if s.Choose > 0 {
		b.WriteString(" CHOOSE " + strconv.Itoa(s.Choose))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Expressions

// Literal is a constant value.
type Literal struct{ Val value.Value }

func (*Literal) expr() {}

func (e *Literal) String() string { return e.Val.String() }

// Param is a statement-parameter placeholder: `?` (ordinal) or `$n`
// (explicit 1-based slot) in the source text. Idx is the 0-based slot in the
// parameter vector bound at execution time; a statement's parameter count is
// NumParams. Parameters are the prepare/bind half of the parse-once/
// bind-many pipeline: the same parsed statement (or compiled entangled
// template) is executed many times with only the vector changing.
type Param struct{ Idx int }

func (*Param) expr() {}

func (e *Param) String() string { return "$" + strconv.Itoa(e.Idx+1) }

// ColumnRef names a column, optionally qualified by table or alias. In
// entangled queries unqualified references are free coordination variables.
type ColumnRef struct {
	Table string // empty when unqualified
	Name  string
}

func (*ColumnRef) expr() {}

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
)

var binOpText = map[BinOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpAnd: "AND", OpOr: "OR",
}

func (op BinOp) String() string { return binOpText[op] }

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (*Binary) expr() {}

func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// Not is logical negation.
type Not struct{ X Expr }

func (*Not) expr() {}

func (e *Not) String() string { return "(NOT " + e.X.String() + ")" }

// Neg is arithmetic negation.
type Neg struct{ X Expr }

func (*Neg) expr() {}

func (e *Neg) String() string { return "(-" + e.X.String() + ")" }

// Exists is EXISTS (SELECT ...): true iff the subquery returns any row.
type Exists struct {
	Sel *Select
	Neg bool // NOT EXISTS
}

func (*Exists) expr() {}

func (e *Exists) String() string {
	if e.Neg {
		return "(NOT EXISTS (" + e.Sel.String() + "))"
	}
	return "(EXISTS (" + e.Sel.String() + "))"
}

// Subquery is a scalar subquery expression: (SELECT ...) used as a value.
// It must produce one column and at most one row; zero rows yield NULL.
type Subquery struct {
	Sel *Select
}

func (*Subquery) expr() {}

func (e *Subquery) String() string { return "(" + e.Sel.String() + ")" }

// FuncCall is an aggregate function application: COUNT(*), COUNT(x), SUM(x),
// AVG(x), MIN(x), MAX(x). Name is upper-cased.
type FuncCall struct {
	Name string
	Star bool // COUNT(*)
	Arg  Expr // nil when Star
}

func (*FuncCall) expr() {}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	return e.Name + "(" + e.Arg.String() + ")"
}

// Like is x [NOT] LIKE pattern, with % (any run) and _ (any one char).
type Like struct {
	X       Expr
	Pattern Expr
	Neg     bool
}

func (*Like) expr() {}

func (e *Like) String() string {
	op := " LIKE "
	if e.Neg {
		op = " NOT LIKE "
	}
	return "(" + e.X.String() + op + e.Pattern.String() + ")"
}

// IsNull is x IS [NOT] NULL — the only way to test for NULL, since ordinary
// comparisons involving NULL are false.
type IsNull struct {
	X   Expr
	Neg bool // IS NOT NULL
}

func (*IsNull) expr() {}

func (e *IsNull) String() string {
	if e.Neg {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

// Between is x BETWEEN lo AND hi (inclusive).
type Between struct {
	X, Lo, Hi Expr
}

func (*Between) expr() {}

func (e *Between) String() string {
	return "(" + e.X.String() + " BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// InValues is x IN (v1, v2, ...).
type InValues struct {
	X    Expr
	Vals []Expr
	Neg  bool
}

func (*InValues) expr() {}

func (e *InValues) String() string {
	op := " IN "
	if e.Neg {
		op = " NOT IN "
	}
	return "(" + e.X.String() + op + "(" + exprList(e.Vals) + "))"
}

// InSelect is (x1, ..., xk) IN (SELECT ...); Left has one entry for the
// common single-column form.
type InSelect struct {
	Left []Expr
	Sub  *Select
	Neg  bool
}

func (*InSelect) expr() {}

func (e *InSelect) String() string {
	left := exprList(e.Left)
	if len(e.Left) > 1 {
		left = "(" + left + ")"
	}
	op := " IN "
	if e.Neg {
		op = " NOT IN "
	}
	return "(" + left + op + "(" + e.Sub.String() + "))"
}

// InAnswer is the entangled answer constraint (e1, ..., ek) IN ANSWER R:
// the query may only be answered if the system-wide answer relation R
// contains a tuple matching (e1, ..., ek).
type InAnswer struct {
	Left     []Expr
	Relation string
	Neg      bool // NOT IN ANSWER: an exclusion constraint (extension)
}

func (*InAnswer) expr() {}

func (e *InAnswer) String() string {
	op := " IN ANSWER "
	if e.Neg {
		op = " NOT IN ANSWER "
	}
	return "((" + exprList(e.Left) + ")" + op + e.Relation + ")"
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// WalkExpr calls fn on e and every sub-expression (pre-order). Subquery
// bodies (InSelect.Sub) are NOT descended into; they are separate scopes.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *FuncCall:
		WalkExpr(x.Arg, fn)
	case *Not:
		WalkExpr(x.X, fn)
	case *Neg:
		WalkExpr(x.X, fn)
	case *Between:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *Like:
		WalkExpr(x.X, fn)
		WalkExpr(x.Pattern, fn)
	case *IsNull:
		WalkExpr(x.X, fn)
	case *InValues:
		WalkExpr(x.X, fn)
		for _, v := range x.Vals {
			WalkExpr(v, fn)
		}
	case *InSelect:
		for _, l := range x.Left {
			WalkExpr(l, fn)
		}
	case *InAnswer:
		for _, l := range x.Left {
			WalkExpr(l, fn)
		}
	}
}

// walkDeep calls fn on e and every sub-expression including the bodies of
// nested subqueries (which WalkExpr deliberately skips as separate scopes).
func walkDeep(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		walkDeep(x.L, fn)
		walkDeep(x.R, fn)
	case *FuncCall:
		walkDeep(x.Arg, fn)
	case *Not:
		walkDeep(x.X, fn)
	case *Neg:
		walkDeep(x.X, fn)
	case *Between:
		walkDeep(x.X, fn)
		walkDeep(x.Lo, fn)
		walkDeep(x.Hi, fn)
	case *Like:
		walkDeep(x.X, fn)
		walkDeep(x.Pattern, fn)
	case *IsNull:
		walkDeep(x.X, fn)
	case *InValues:
		walkDeep(x.X, fn)
		for _, v := range x.Vals {
			walkDeep(v, fn)
		}
	case *InSelect:
		for _, l := range x.Left {
			walkDeep(l, fn)
		}
		walkSelectDeep(x.Sub, fn)
	case *InAnswer:
		for _, l := range x.Left {
			walkDeep(l, fn)
		}
	case *Exists:
		walkSelectDeep(x.Sel, fn)
	case *Subquery:
		walkSelectDeep(x.Sel, fn)
	}
}

func walkSelectDeep(s *Select, fn func(Expr)) {
	if s == nil {
		return
	}
	for _, it := range s.Items {
		walkDeep(it.Expr, fn)
	}
	walkDeep(s.Where, fn)
	for _, g := range s.GroupBy {
		walkDeep(g, fn)
	}
	walkDeep(s.Having, fn)
	for _, o := range s.OrderBy {
		walkDeep(o.Expr, fn)
	}
}

// VisitExprs calls fn on every expression of the statement, at any depth —
// including inside subquery bodies. It is the traversal NumParams and the
// prepared-statement planners rely on to find every Param slot.
func VisitExprs(stmt Statement, fn func(Expr)) {
	switch s := stmt.(type) {
	case *Select:
		walkSelectDeep(s, fn)
	case *EntangledSelect:
		for _, t := range s.Targets {
			for _, e := range t.Exprs {
				walkDeep(e, fn)
			}
		}
		walkDeep(s.Where, fn)
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				walkDeep(e, fn)
			}
		}
		walkSelectDeep(s.From, fn)
	case *Update:
		for _, a := range s.Sets {
			walkDeep(a.Val, fn)
		}
		walkDeep(s.Where, fn)
	case *Delete:
		walkDeep(s.Where, fn)
	case *Explain:
		VisitExprs(s.Stmt, fn)
	}
}

// NumParams returns the parameter-vector length the statement needs: one
// more than the highest Param slot it mentions (so `$3` alone needs a
// 3-value vector; `?` placeholders were numbered in textual order by the
// parser).
func NumParams(stmt Statement) int {
	n := 0
	VisitExprs(stmt, func(e Expr) {
		if p, ok := e.(*Param); ok && p.Idx+1 > n {
			n = p.Idx + 1
		}
	})
	return n
}

// Conjuncts flattens a WHERE tree into its top-level AND-ed conjuncts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	// Single accumulator instead of per-level append chains: WHERE clauses
	// are re-split on every entangled-query compilation.
	return appendConjuncts(make([]Expr, 0, 4), e)
}

func appendConjuncts(out []Expr, e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		out = appendConjuncts(out, b.L)
		return appendConjuncts(out, b.R)
	}
	return append(out, e)
}

// AndAll rebuilds a conjunction from a list of conjuncts (nil for empty).
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}
