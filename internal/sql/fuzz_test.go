package sql

import "testing"

// FuzzParseAll: the parser must never panic, and anything it accepts must
// print to a form it accepts again (round-trip closure). Run with
// `go test -fuzz=FuzzParseAll ./internal/sql` for continuous fuzzing; the
// seed corpus below runs on every ordinary `go test`.
func FuzzParseAll(f *testing.F) {
	seeds := []string{
		KramerQuery,
		"SELECT * FROM T",
		"CREATE TABLE T (x INT, PRIMARY KEY (x)); INSERT INTO T VALUES (1)",
		"SELECT ('J', fno) INTO ANSWER R, ('J', hno) INTO ANSWER H WHERE ('K', fno) IN ANSWER R CHOOSE 2",
		"SELECT dest, COUNT(*) FROM T GROUP BY dest HAVING COUNT(*) > 1 ORDER BY 1 DESC LIMIT 3",
		"SELECT x FROM T WHERE x LIKE 'a%' AND y IS NOT NULL AND z BETWEEN 1 AND 2",
		"BEGIN; UPDATE T SET x = x + 1 WHERE x IN (SELECT y FROM U); COMMIT",
		"SELECT fno FROM T WHERE price = (SELECT MIN(price) FROM T)",
		"'unterminated",
		"(((((((((",
		";;;;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseAll(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			printed := s.String()
			if _, err := Parse(printed); err != nil {
				t.Fatalf("accepted %q but rejected own printing %q: %v", src, printed, err)
			}
		}
	})
}
