package sql

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
)

// genExpr builds a random expression tree of bounded depth. The generator
// only produces shapes the printer can round-trip (e.g. tuple-IN forms where
// the grammar allows them), which is exactly the space the property targets.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Literal{Val: value.NewInt(int64(rng.Intn(1000)))}
		case 1:
			return &Literal{Val: value.NewString(fmt.Sprintf("s%d", rng.Intn(50)))}
		case 2:
			return &ColumnRef{Name: fmt.Sprintf("c%d", rng.Intn(8))}
		default:
			return &ColumnRef{Table: fmt.Sprintf("t%d", rng.Intn(3)), Name: fmt.Sprintf("c%d", rng.Intn(8))}
		}
	}
	switch rng.Intn(10) {
	case 0, 1, 2:
		ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr}
		return &Binary{Op: ops[rng.Intn(len(ops))], L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 3:
		return &Not{X: genExpr(rng, depth-1)}
	case 4:
		return &Neg{X: genExpr(rng, depth-1)}
	case 5:
		return &Between{X: genExpr(rng, depth-1), Lo: genExpr(rng, depth-1), Hi: genExpr(rng, depth-1)}
	case 6:
		n := rng.Intn(3) + 1
		vals := make([]Expr, n)
		for i := range vals {
			vals[i] = &Literal{Val: value.NewInt(int64(rng.Intn(100)))}
		}
		return &InValues{X: genExpr(rng, depth-1), Vals: vals, Neg: rng.Intn(2) == 0}
	case 7:
		left := []Expr{genExpr(rng, 0)}
		return &InAnswer{Left: left, Relation: fmt.Sprintf("R%d", rng.Intn(3)), Neg: rng.Intn(2) == 0}
	case 8:
		return &Like{X: genExpr(rng, depth-1), Pattern: &Literal{Val: value.NewString("a%b_")}, Neg: rng.Intn(2) == 0}
	default:
		return &IsNull{X: genExpr(rng, depth-1), Neg: rng.Intn(2) == 0}
	}
}

// genSelect builds a random plain SELECT.
func genSelect(rng *rand.Rand) *Select {
	s := &Select{Limit: -1, Distinct: rng.Intn(3) == 0}
	nItems := rng.Intn(3) + 1
	for i := 0; i < nItems; i++ {
		it := SelectItem{Expr: genExpr(rng, 2)}
		if rng.Intn(4) == 0 {
			it.Alias = fmt.Sprintf("a%d", i)
		}
		s.Items = append(s.Items, it)
	}
	nFrom := rng.Intn(3) + 1
	for i := 0; i < nFrom; i++ {
		ref := TableRef{Name: fmt.Sprintf("T%d", i)}
		if rng.Intn(2) == 0 {
			ref.Alias = fmt.Sprintf("t%d", i)
		}
		s.From = append(s.From, ref)
	}
	if rng.Intn(2) == 0 {
		s.Where = genExpr(rng, 3)
	}
	if rng.Intn(3) == 0 {
		s.OrderBy = append(s.OrderBy, OrderItem{Expr: genExpr(rng, 1), Desc: rng.Intn(2) == 0})
	}
	if rng.Intn(3) == 0 {
		s.Limit = rng.Intn(50)
	}
	return s
}

// TestGenerativeRoundTrip: for thousands of random ASTs, print → parse →
// print is a fixed point. This pins the printer and parser against each
// other across the whole expression grammar.
func TestGenerativeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20260612))
	for i := 0; i < 3000; i++ {
		var stmt Statement = genSelect(rng)
		printed := stmt.String()
		reparsed, err := Parse(printed)
		if err != nil {
			t.Fatalf("iteration %d: cannot reparse own output: %v\n%s", i, err, printed)
		}
		if got := reparsed.String(); got != printed {
			t.Fatalf("iteration %d: round trip diverged:\n  1st: %s\n  2nd: %s", i, printed, got)
		}
	}
}

// TestGenerativeEntangledRoundTrip does the same for entangled statements.
func TestGenerativeEntangledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1500; i++ {
		es := &EntangledSelect{Choose: rng.Intn(3) + 1}
		nT := rng.Intn(2) + 1
		for j := 0; j < nT; j++ {
			n := rng.Intn(2) + 1
			exprs := make([]Expr, n)
			for k := range exprs {
				if rng.Intn(2) == 0 {
					exprs[k] = &Literal{Val: value.NewString(fmt.Sprintf("u%d", rng.Intn(9)))}
				} else {
					exprs[k] = &ColumnRef{Name: fmt.Sprintf("v%d", rng.Intn(4))}
				}
			}
			es.Targets = append(es.Targets, AnswerTarget{Exprs: exprs, Relation: fmt.Sprintf("R%d", j)})
		}
		if rng.Intn(4) > 0 {
			conj := []Expr{&InAnswer{
				Left:     []Expr{&Literal{Val: value.NewString("x")}, &ColumnRef{Name: "v0"}},
				Relation: "R0",
			}}
			if rng.Intn(2) == 0 {
				conj = append(conj, genExpr(rng, 2))
			}
			es.Where = AndAll(conj)
		}
		printed := es.String()
		reparsed, err := Parse(printed)
		if err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, printed)
		}
		if got := reparsed.String(); got != printed {
			t.Fatalf("iteration %d: diverged:\n  1st: %s\n  2nd: %s", i, printed, got)
		}
	}
}
