package sql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer splits an input string into tokens. It is a straightforward
// hand-written scanner; SQL string literals use single quotes with ”
// escaping, line comments start with --.
//
// The scanner works directly on the source string and hands out substrings
// as token text — queries are lexed on every entangled-query arrival, so
// the token stream must not copy: idents, numbers, symbols and escape-free
// string literals alias the input, and keywords alias their canonical
// upper-case spelling.
type Lexer struct {
	src string
	pos int // byte offset
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src}
}

// Tokens lexes the whole input eagerly, returning the token stream followed
// by a TokEOF, or a lex error.
func (l *Lexer) Tokens() ([]Token, error) {
	toks := make([]Token, 0, len(l.src)/4+4)
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

// byteAt returns the byte at offset off from the cursor, 0 past the end.
func (l *Lexer) byteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func isDigitByte(b byte) bool { return '0' <= b && b <= '9' }

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		b := l.src[l.pos]
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\v' || b == '\f':
			l.pos++
		case b == '-' && l.byteAt(1) == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case b >= utf8.RuneSelf:
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			if !unicode.IsSpace(r) {
				return
			}
			l.pos += size
		default:
			return
		}
	}
}

func (l *Lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	r := rune(l.src[l.pos])
	if r >= utf8.RuneSelf {
		r, _ = utf8.DecodeRuneInString(l.src[l.pos:])
	}
	switch {
	case unicode.IsLetter(r) || r == '_':
		return l.lexWord(start), nil
	case unicode.IsDigit(r) || (r == '.' && isDigitByte(l.byteAt(1))):
		return l.lexNumber(start)
	case r == '\'':
		return l.lexString(start)
	case r == '?' || r == '$':
		return l.lexParam(start)
	default:
		return l.lexSymbol(start)
	}
}

func (l *Lexer) lexWord(start int) Token {
	for l.pos < len(l.src) {
		b := l.src[l.pos]
		if b < utf8.RuneSelf {
			if b != '_' && !('a' <= b && b <= 'z') && !('A' <= b && b <= 'Z') && !isDigitByte(b) {
				break
			}
			l.pos++
			continue
		}
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			break
		}
		l.pos += size
	}
	word := l.src[start:l.pos]
	if canon, ok := keywordCanon(word); ok {
		return Token{Kind: TokKeyword, Text: canon, Pos: start}
	}
	return Token{Kind: TokIdent, Text: word, Pos: start}
}

// keywordCanon reports whether word is a keyword, returning the canonical
// upper-case spelling interned in the keyword table — no allocation on
// either hit or miss.
func keywordCanon(word string) (string, bool) {
	if len(word) > maxKeywordLen {
		return "", false
	}
	var buf [maxKeywordLen]byte
	for i := 0; i < len(word); i++ {
		b := word[i]
		if 'a' <= b && b <= 'z' {
			b -= 'a' - 'A'
		}
		buf[i] = b
	}
	canon, ok := keywordCanonical[string(buf[:len(word)])]
	return canon, ok
}

func (l *Lexer) lexNumber(start int) (Token, error) {
	seenDot := false
	for l.pos < len(l.src) {
		b := l.src[l.pos]
		if b == '.' {
			if seenDot {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if b < utf8.RuneSelf {
			if !isDigitByte(b) {
				break
			}
			l.pos++
			continue
		}
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsDigit(r) {
			break
		}
		l.pos += size
	}
	text := l.src[start:l.pos]
	if text == "." {
		return Token{}, fmt.Errorf("sql: lex error at %d: bare '.'", start)
	}
	return Token{Kind: TokNumber, Text: text, Pos: start}, nil
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	// Fast path: scan for the closing quote; if no '' escape intervenes the
	// literal's text is a plain substring of the input.
	for i := l.pos; i < len(l.src); i++ {
		if l.src[i] != '\'' {
			continue
		}
		if i+1 < len(l.src) && l.src[i+1] == '\'' {
			return l.lexEscapedString(start)
		}
		text := l.src[l.pos:i]
		l.pos = i + 1
		return Token{Kind: TokString, Text: text, Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sql: lex error at %d: unterminated string literal", start)
}

// lexEscapedString handles literals containing ” escapes, the rare case
// that actually needs a builder. The cursor is just past the opening quote.
func (l *Lexer) lexEscapedString(start int) (Token, error) {
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.byteAt(1) == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: lex error at %d: unterminated string literal", start)
}

// lexParam scans a statement-parameter placeholder: '?' (ordinal — slots
// assigned in textual order) or '$n' (explicit 1-based slot). The digits of
// $n become the token text; '?' carries empty text.
func (l *Lexer) lexParam(start int) (Token, error) {
	if l.src[l.pos] == '?' {
		l.pos++
		return Token{Kind: TokParam, Pos: start}, nil
	}
	l.pos++ // '$'
	digits := l.pos
	for l.pos < len(l.src) && isDigitByte(l.src[l.pos]) {
		l.pos++
	}
	if l.pos == digits {
		return Token{}, fmt.Errorf("sql: lex error at %d: '$' must be followed by a parameter number", start)
	}
	return Token{Kind: TokParam, Text: l.src[digits:l.pos], Pos: start}, nil
}

func (l *Lexer) lexSymbol(start int) (Token, error) {
	b := l.src[l.pos]
	if c := l.byteAt(1); c == '=' && (b == '<' || b == '>' || b == '!') || b == '<' && c == '>' {
		l.pos += 2
		return Token{Kind: TokSymbol, Text: l.src[start:l.pos], Pos: start}, nil
	}
	switch b {
	case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', '.', ';':
		l.pos++
		return Token{Kind: TokSymbol, Text: l.src[start:l.pos], Pos: start}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return Token{}, fmt.Errorf("sql: lex error at %d: unexpected character %q", start, string(r))
}
