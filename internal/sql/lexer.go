package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer splits an input string into tokens. It is a straightforward
// hand-written scanner; SQL string literals use single quotes with ”
// escaping, line comments start with --.
type Lexer struct {
	src []rune
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src)}
}

// Tokens lexes the whole input eagerly, returning the token stream followed
// by a TokEOF, or a lex error.
func (l *Lexer) Tokens() ([]Token, error) {
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		switch {
		case unicode.IsSpace(r):
			l.pos++
		case r == '-' && l.peekAt(1) == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *Lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	r := l.src[l.pos]
	switch {
	case unicode.IsLetter(r) || r == '_':
		return l.lexWord(start), nil
	case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(l.peekAt(1))):
		return l.lexNumber(start)
	case r == '\'':
		return l.lexString(start)
	default:
		return l.lexSymbol(start)
	}
}

func (l *Lexer) lexWord(start int) Token {
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			break
		}
		l.pos++
	}
	word := string(l.src[start:l.pos])
	if up := strings.ToUpper(word); keywords[up] {
		return Token{Kind: TokKeyword, Text: up, Pos: start}
	}
	return Token{Kind: TokIdent, Text: word, Pos: start}
}

func (l *Lexer) lexNumber(start int) (Token, error) {
	seenDot := false
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if r == '.' {
			if seenDot {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(r) {
			break
		}
		l.pos++
	}
	text := string(l.src[start:l.pos])
	if text == "." {
		return Token{}, fmt.Errorf("sql: lex error at %d: bare '.'", start)
	}
	return Token{Kind: TokNumber, Text: text, Pos: start}, nil
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if r == '\'' {
			if l.peekAt(1) == '\'' { // escaped quote
				b.WriteRune('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteRune(r)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: lex error at %d: unterminated string literal", start)
}

func (l *Lexer) lexSymbol(start int) (Token, error) {
	r := l.src[l.pos]
	two := string(r) + string(l.peekAt(1))
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
	}
	switch r {
	case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', '.', ';':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(r), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sql: lex error at %d: unexpected character %q", start, string(r))
}
