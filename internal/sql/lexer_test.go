package sql

import "testing"

func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks := lex(t, "select Select SELECT sElEcT")
	for i := 0; i < 4; i++ {
		if toks[i].Kind != TokKeyword || toks[i].Text != "SELECT" {
			t.Errorf("tok %d = %v", i, toks[i])
		}
	}
}

func TestLexIdentifiers(t *testing.T) {
	toks := lex(t, "Flights fno _tmp x2 Reservation")
	for i := 0; i < 5; i++ {
		if toks[i].Kind != TokIdent {
			t.Errorf("tok %d = %v, want identifier", i, toks[i])
		}
	}
	if toks[0].Text != "Flights" {
		t.Error("identifier case must be preserved")
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lex(t, "122 3.25 0.5 .75")
	want := []string{"122", "3.25", "0.5", ".75"}
	for i, w := range want {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("tok %d = %v, want number %q", i, toks[i], w)
		}
	}
}

func TestLexStringsWithEscapes(t *testing.T) {
	toks := lex(t, "'Paris' 'O''Hare' ''")
	want := []string{"Paris", "O'Hare", ""}
	for i, w := range want {
		if toks[i].Kind != TokString || toks[i].Text != w {
			t.Errorf("tok %d = %+v, want string %q", i, toks[i], w)
		}
	}
}

func TestLexSymbols(t *testing.T) {
	toks := lex(t, "( ) , * = < <= > >= <> != + - / . ;")
	want := []string{"(", ")", ",", "*", "=", "<", "<=", ">", ">=", "<>", "!=", "+", "-", "/", ".", ";"}
	for i, w := range want {
		if toks[i].Kind != TokSymbol || toks[i].Text != w {
			t.Errorf("tok %d = %v, want symbol %q", i, toks[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(t, "SELECT -- this is a comment\n fno")
	if len(toks) != 3 { // SELECT, fno, EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[1].Text != "fno" {
		t.Errorf("tok 1 = %v", toks[1])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "@", "#"} {
		if _, err := NewLexer(src).Tokens(); err == nil {
			t.Errorf("lex %q: expected error", src)
		}
	}
}

func TestLexEOFPosition(t *testing.T) {
	toks := lex(t, "x")
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexPaperQuery(t *testing.T) {
	// The exact query text from §2.1 of the paper must lex cleanly.
	src := `SELECT 'Kramer', fno INTO ANSWER Reservation
WHERE
fno IN (SELECT fno FROM Flights WHERE dest='Paris')
AND ('Jerry', fno) IN ANSWER Reservation
CHOOSE 1`
	toks := lex(t, src)
	var kws []string
	for _, tok := range toks {
		if tok.Kind == TokKeyword {
			kws = append(kws, tok.Text)
		}
	}
	want := []string{"SELECT", "INTO", "ANSWER", "WHERE", "IN", "SELECT", "FROM", "WHERE", "AND", "IN", "ANSWER", "CHOOSE"}
	if len(kws) != len(want) {
		t.Fatalf("keywords = %v, want %v", kws, want)
	}
	for i := range want {
		if kws[i] != want[i] {
			t.Fatalf("keywords = %v, want %v", kws, want)
		}
	}
}
