package sql

import (
	"strings"
	"testing"
)

func mustParseParam(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParamOrdinals(t *testing.T) {
	stmt := mustParseParam(t, "SELECT a FROM T WHERE x = ? AND y = ? AND z = ?")
	if n := NumParams(stmt); n != 3 {
		t.Fatalf("NumParams = %d, want 3", n)
	}
	var idxs []int
	VisitExprs(stmt, func(e Expr) {
		if p, ok := e.(*Param); ok {
			idxs = append(idxs, p.Idx)
		}
	})
	if len(idxs) != 3 || idxs[0] != 0 || idxs[1] != 1 || idxs[2] != 2 {
		t.Fatalf("ordinal slots = %v, want [0 1 2]", idxs)
	}
}

func TestParamExplicitSlots(t *testing.T) {
	stmt := mustParseParam(t, "SELECT a FROM T WHERE x = $2 AND y = $1 AND z = $2")
	if n := NumParams(stmt); n != 2 {
		t.Fatalf("NumParams = %d, want 2", n)
	}
	// $3 alone still needs a 3-vector.
	stmt = mustParseParam(t, "DELETE FROM T WHERE x = $3")
	if n := NumParams(stmt); n != 3 {
		t.Fatalf("NumParams = %d, want 3", n)
	}
}

func TestParamPositions(t *testing.T) {
	// Placeholders must parse in every expression position, including
	// subquery bodies and entangled answer tuples.
	for _, src := range []string{
		"INSERT INTO T VALUES (?, ?, ?)",
		"UPDATE T SET a = ?, b = ? WHERE c = ?",
		"DELETE FROM T WHERE a BETWEEN ? AND ?",
		"SELECT a FROM T WHERE b IN (?, ?, 3)",
		"SELECT a FROM T WHERE b IN (SELECT c FROM U WHERE d = ?)",
		"SELECT ?, fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F WHERE dest = ?) AND (?, fno) IN ANSWER R CHOOSE 1",
		"SELECT a FROM T WHERE b LIKE ?",
		"SELECT a FROM T WHERE b = ? ORDER BY a LIMIT 1",
	} {
		stmt := mustParseParam(t, src)
		if NumParams(stmt) == 0 {
			t.Errorf("%q: no params found", src)
		}
	}
}

func TestParamStatementScopedNumbering(t *testing.T) {
	stmts, err := ParseAll("SELECT a FROM T WHERE x = ?; SELECT b FROM U WHERE y = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stmts {
		if n := NumParams(s); n != 1 {
			t.Fatalf("statement %d: NumParams = %d, want 1 (numbering restarts per statement)", i, n)
		}
	}
}

func TestParamPrintRoundTrip(t *testing.T) {
	// '?' prints as its resolved '$n' form, which must re-parse to the same
	// slot (the fuzz round-trip closure depends on this).
	stmt := mustParseParam(t, "SELECT a FROM T WHERE x = ? AND y = $1")
	printed := stmt.String()
	if !strings.Contains(printed, "$1") {
		t.Fatalf("printed form %q lost the parameters", printed)
	}
	again := mustParseParam(t, printed)
	if NumParams(again) != NumParams(stmt) {
		t.Fatalf("round trip changed NumParams: %q -> %q", printed, again.String())
	}
}

func TestParamErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT a FROM T WHERE x = $",       // no digits
		"SELECT a FROM T WHERE x = $0",      // slots are 1-based
		"SELECT a FROM T WHERE x = $999999", // over maxParamSlot
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted a bad placeholder", src)
		}
	}
}

// FuzzParse: the single-statement parser must never panic on arbitrary
// input — including the placeholder syntax — and anything it accepts must
// print to a form it accepts again with the same parameter count.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM T WHERE x = ? AND y = $2",
		"SELECT ?, fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F WHERE dest = ?) AND (?, fno) IN ANSWER R CHOOSE 1",
		"INSERT INTO T VALUES (?, $1, ?)",
		"UPDATE T SET a = ? WHERE b IN (?, 2, $3)",
		"DELETE FROM T WHERE x BETWEEN ? AND $9",
		"SELECT a FROM T WHERE x = $",
		"$1",
		"?",
		"SELECT $184467440737095516151",
		"SELECT '?' FROM T WHERE x = '$1'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		printed := stmt.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected own printing %q: %v", src, printed, err)
		}
		if NumParams(again) != NumParams(stmt) {
			t.Fatalf("param count changed across print round trip: %q -> %q", src, printed)
		}
	})
}
