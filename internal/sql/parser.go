package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string

	// Node slabs: Binary, Literal and ColumnRef dominate expression trees,
	// and every entangled-query arrival parses one. Nodes are appended into
	// chunks and pointers handed out into them — ~16 nodes per allocation
	// instead of one each. Chunks are never reused (the AST outlives the
	// parser and keeps them alive), so pointers stay valid when a fresh
	// chunk replaces a full one.
	bins []Binary
	lits []Literal
	cols []ColumnRef

	// ordParam numbers the '?' ordinal placeholders of the statement being
	// parsed, in textual order. '$n' placeholders address their slot
	// explicitly and do not advance it.
	ordParam int
}

// maxParamSlot bounds explicit $n placeholders so a hostile `$99999999`
// cannot demand an enormous parameter vector downstream.
const maxParamSlot = 1 << 16

const parserSlab = 16

func (p *Parser) newBinary(op BinOp, l, r Expr) *Binary {
	if len(p.bins) == cap(p.bins) {
		p.bins = make([]Binary, 0, parserSlab)
	}
	p.bins = append(p.bins, Binary{Op: op, L: l, R: r})
	return &p.bins[len(p.bins)-1]
}

func (p *Parser) newLiteral(v value.Value) *Literal {
	if len(p.lits) == cap(p.lits) {
		p.lits = make([]Literal, 0, parserSlab)
	}
	p.lits = append(p.lits, Literal{Val: v})
	return &p.lits[len(p.lits)-1]
}

// newStringLiteral copies the literal's text before wrapping it: string
// tokens alias the source SQL since the zero-copy lexer, and literal values
// can outlive the statement by years (INSERTed rows, installed answers) — a
// substring would pin the whole statement text in memory.
func (p *Parser) newStringLiteral(s string) *Literal {
	return p.newLiteral(value.NewString(strings.Clone(s)))
}

func (p *Parser) newColumnRef(table, name string) *ColumnRef {
	if len(p.cols) == cap(p.cols) {
		p.cols = make([]ColumnRef, 0, parserSlab)
	}
	p.cols = append(p.cols, ColumnRef{Table: table, Name: name})
	return &p.cols[len(p.cols)-1]
}

// Parse parses a single statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	var stmts []Statement
	for {
		for p.acceptSymbol(";") {
		}
		if p.cur().Kind == TokEOF {
			break
		}
		p.ordParam = 0 // '?' slots are numbered per statement
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if p.cur().Kind != TokEOF && !p.peekSymbol(";") {
			return nil, p.errf("expected ';' or end of input, found %s", p.cur())
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sql: empty input")
	}
	return stmts, nil
}

// ParseExpr parses a standalone expression (used in tests and tools).
func ParseExpr(src string) (Expr, error) {
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, p.errf("trailing input after expression: %s", p.cur())
	}
	return e, nil
}

// --- token helpers ---------------------------------------------------------

func (p *Parser) cur() Token    { return p.toks[p.pos] }
func (p *Parser) advance()      { p.pos++ }
func (p *Parser) save() int     { return p.pos }
func (p *Parser) restore(m int) { p.pos = m }

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *Parser) peekSymbol(s string) bool {
	t := p.cur()
	return t.Kind == TokSymbol && t.Text == s
}

func (p *Parser) acceptSymbol(s string) bool {
	if p.peekSymbol(s) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *Parser) ident() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.advance()
	return t.Text, nil
}

// --- statements ------------------------------------------------------------

func (p *Parser) statement() (Statement, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected statement keyword, found %s", t)
	}
	switch t.Text {
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropTable()
	case "INSERT":
		return p.insert()
	case "DELETE":
		return p.delete()
	case "UPDATE":
		return p.update()
	case "SELECT":
		return p.selectOrEntangled()
	case "BEGIN":
		p.advance()
		return &TxnStmt{Kind: TxnBegin}, nil
	case "COMMIT":
		p.advance()
		return &TxnStmt{Kind: TxnCommit}, nil
	case "ROLLBACK":
		p.advance()
		return &TxnStmt{Kind: TxnRollback}, nil
	case "EXPLAIN":
		p.advance()
		if p.cur().Kind == TokKeyword && p.cur().Text == "EXPLAIN" {
			return nil, p.errf("EXPLAIN cannot be nested")
		}
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner}, nil
	default:
		return nil, p.errf("unexpected keyword %s at statement start", t.Text)
	}
}

func (p *Parser) createStmt() (Statement, error) {
	p.advance() // CREATE
	ordered := false
	if t := p.cur(); t.Kind == TokIdent && strings.EqualFold(t.Text, "ORDERED") {
		p.advance()
		ordered = true
		if !p.peekKeyword("INDEX") {
			return nil, p.errf("expected INDEX after ORDERED")
		}
	}
	if p.acceptKeyword("INDEX") {
		// Optional index name: an identifier between INDEX and ON.
		var name string
		if p.cur().Kind == TokIdent {
			name = p.cur().Text
			p.advance()
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if ordered && len(cols) != 1 {
			return nil, p.errf("ORDERED INDEX takes exactly one column")
		}
		return &CreateIndex{Table: table, Name: name, Cols: cols, Ordered: ordered}, nil
	}
	if ordered {
		return nil, p.errf("ORDERED is only valid before INDEX")
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PK = append(ct.PK, c)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typTok := p.cur()
			if typTok.Kind != TokIdent && typTok.Kind != TokKeyword {
				return nil, p.errf("expected type name, found %s", typTok)
			}
			typ, err := value.ParseType(typTok.Text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			p.advance()
			ct.Cols = append(ct.Cols, ColDef{Name: col, Type: typ})
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if len(ct.Cols) == 0 {
		return nil, p.errf("CREATE TABLE %s has no columns", name)
	}
	return ct, nil
}

func (p *Parser) dropTable() (Statement, error) {
	p.advance() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *Parser) insert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.peekKeyword("SELECT") {
		sub, err := p.selectOrEntangled()
		if err != nil {
			return nil, err
		}
		sel, ok := sub.(*Select)
		if !ok {
			return nil, p.errf("INSERT ... SELECT cannot use an entangled query")
		}
		return &Insert{Table: table, From: sel}, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) delete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *Parser) update() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, Assign{Col: col, Val: val})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

// selectOrEntangled distinguishes a plain SELECT from an entangled one by the
// presence of INTO ANSWER after the select list.
func (p *Parser) selectOrEntangled() (Statement, error) {
	p.advance() // SELECT
	distinct := p.acceptKeyword("DISTINCT")

	// Parse the select list generically first: items that may be stars,
	// aliased expressions, or parenthesized tuples followed by INTO ANSWER.
	type rawItem struct {
		item SelectItem
	}
	var raw []rawItem
	var targets []AnswerTarget
	entangled := false

	for {
		if p.acceptSymbol("*") {
			raw = append(raw, rawItem{item: SelectItem{Star: true}})
		} else if tup, ok, err := p.tryTuple(); err != nil {
			return nil, err
		} else if ok {
			// Parenthesized tuple — either a grouped entangled contribution
			// "(...) INTO ANSWER R" or a parenthesized scalar expression.
			if p.peekKeyword("INTO") {
				p.advance()
				if err := p.expectKeyword("ANSWER"); err != nil {
					return nil, err
				}
				rel, err := p.ident()
				if err != nil {
					return nil, err
				}
				targets = append(targets, AnswerTarget{Exprs: tup, Relation: rel})
				entangled = true
			} else if len(tup) == 1 {
				it := SelectItem{Expr: tup[0]}
				if alias, err := p.optionalAlias(); err != nil {
					return nil, err
				} else {
					it.Alias = alias
				}
				raw = append(raw, rawItem{item: it})
			} else {
				return nil, p.errf("tuple select item must be followed by INTO ANSWER")
			}
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			it := SelectItem{Expr: e}
			if alias, err := p.optionalAlias(); err != nil {
				return nil, err
			} else {
				it.Alias = alias
			}
			raw = append(raw, rawItem{item: it})
		}
		if !p.acceptSymbol(",") {
			break
		}
	}

	// Flat entangled form: SELECT e1, e2 INTO ANSWER R ...
	if p.acceptKeyword("INTO") {
		if err := p.expectKeyword("ANSWER"); err != nil {
			return nil, err
		}
		rel, err := p.ident()
		if err != nil {
			return nil, err
		}
		exprs := make([]Expr, 0, len(raw))
		for _, r := range raw {
			if r.item.Star || r.item.Expr == nil {
				return nil, p.errf("INTO ANSWER select list cannot contain '*'")
			}
			if r.item.Alias != "" {
				return nil, p.errf("INTO ANSWER select list cannot use aliases")
			}
			exprs = append(exprs, r.item.Expr)
		}
		targets = append([]AnswerTarget{{Exprs: exprs, Relation: rel}}, targets...)
		entangled = true
		raw = nil
	}

	if entangled {
		if len(raw) != 0 {
			return nil, p.errf("entangled SELECT mixes answer tuples and plain select items")
		}
		return p.finishEntangled(targets)
	}

	// Plain SELECT.
	sel := &Select{Distinct: distinct, Limit: -1}
	for _, r := range raw {
		sel.Items = append(sel.Items, r.item)
	}
	if p.acceptKeyword("FROM") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			ref := TableRef{Name: name}
			if p.acceptKeyword("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				ref.Alias = a
			} else if p.cur().Kind == TokIdent {
				ref.Alias = p.cur().Text
				p.advance()
			}
			sel.From = append(sel.From, ref)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.Kind != TokNumber {
			return nil, p.errf("expected number after LIMIT, found %s", t)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.Text)
		}
		p.advance()
		sel.Limit = n
	}
	return sel, nil
}

func (p *Parser) optionalAlias() (string, error) {
	if p.acceptKeyword("AS") {
		return p.ident()
	}
	return "", nil
}

// finishEntangled parses the optional WHERE and CHOOSE of an entangled query.
func (p *Parser) finishEntangled(targets []AnswerTarget) (Statement, error) {
	es := &EntangledSelect{Targets: targets, Choose: 1}
	if p.acceptKeyword("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		es.Where = w
	}
	if p.acceptKeyword("CHOOSE") {
		t := p.cur()
		if t.Kind != TokNumber {
			return nil, p.errf("expected number after CHOOSE, found %s", t)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 1 {
			return nil, p.errf("bad CHOOSE count %q", t.Text)
		}
		p.advance()
		es.Choose = n
	}
	// Additional INTO ANSWER clauses after WHERE are not legal; anything left
	// other than ';'/EOF is the caller's problem to report.
	return es, nil
}

// isAggregateName reports whether an identifier names an aggregate function.
func isAggregateName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	default:
		return false
	}
}

// tryTuple attempts to parse a parenthesized expression list "(e1, ..., ek)".
// It backtracks and reports ok=false if the input does not start with '('.
// Single-element tuples are returned as such; the caller decides whether they
// were grouping parentheses.
func (p *Parser) tryTuple() ([]Expr, bool, error) {
	if !p.peekSymbol("(") {
		return nil, false, nil
	}
	mark := p.save()
	p.advance() // (
	if p.peekKeyword("SELECT") {
		// A scalar subquery, not a tuple; let primary() parse it.
		p.restore(mark)
		return nil, false, nil
	}
	var items []Expr
	for {
		e, err := p.expression()
		if err != nil {
			p.restore(mark)
			return nil, false, err
		}
		items = append(items, e)
		if p.acceptSymbol(",") {
			continue
		}
		if p.acceptSymbol(")") {
			return items, true, nil
		}
		p.restore(mark)
		return nil, false, p.errf("expected ',' or ')' in tuple")
	}
}

// --- expressions -----------------------------------------------------------

// expression := orExpr
func (p *Parser) expression() (Expr, error) { return p.orExpr() }

func (p *Parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = p.newBinary(OpOr, l, r)
	}
	return l, nil
}

func (p *Parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = p.newBinary(OpAnd, l, r)
	}
	return l, nil
}

func (p *Parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		// Normalize NOT EXISTS so it round-trips to its own printed form.
		if ex, ok := x.(*Exists); ok && !ex.Neg {
			return &Exists{Sel: ex.Sel, Neg: true}, nil
		}
		return &Not{X: x}, nil
	}
	return p.comparison()
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

// comparison handles comparison operators, BETWEEN, and the IN family —
// including the entangled (tuple) IN ANSWER constraint.
func (p *Parser) comparison() (Expr, error) {
	// A leading parenthesized tuple can be the LHS of a (multi-column) IN:
	// "(x, y) IN ANSWER R" or "(x) IN (SELECT ...)". Try that first and
	// backtrack if no IN follows (then the parens were ordinary grouping and
	// additive/primary will reparse them).
	if p.peekSymbol("(") {
		mark := p.save()
		if tup, ok, err := p.tryTuple(); err == nil && ok {
			if in, handled, err2 := p.tryInTail(tup); err2 != nil {
				return nil, err2
			} else if handled {
				return in, nil
			}
		}
		p.restore(mark)
	}
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	return p.comparisonTail(l)
}

// comparisonTail parses optional operators following a parsed LHS.
func (p *Parser) comparisonTail(l Expr) (Expr, error) {
	// Only materialize the single-element LHS slice when an IN family
	// operator actually follows; plain comparisons vastly outnumber INs.
	if p.peekInTail() {
		if in, handled, err := p.tryInTail([]Expr{l}); err != nil {
			return nil, err
		} else if handled {
			return in, nil
		}
	}
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Neg: neg}, nil
	}
	if p.acceptKeyword("LIKE") {
		pat, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &Like{X: l, Pattern: pat}, nil
	}
	{
		mark := p.save()
		if p.acceptKeyword("NOT") && p.acceptKeyword("LIKE") {
			pat, err := p.additive()
			if err != nil {
				return nil, err
			}
			return &Like{X: l, Pattern: pat, Neg: true}, nil
		}
		p.restore(mark)
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi}, nil
	}
	t := p.cur()
	if t.Kind == TokSymbol {
		if op, ok := cmpOps[t.Text]; ok {
			p.advance()
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			return p.newBinary(op, l, r), nil
		}
	}
	return l, nil
}

// peekInTail reports whether the cursor sits on "IN" or "NOT IN".
func (p *Parser) peekInTail() bool {
	if p.peekKeyword("IN") {
		return true
	}
	if p.peekKeyword("NOT") {
		t := p.toks[p.pos+1] // safe: the stream always ends in TokEOF
		return t.Kind == TokKeyword && t.Text == "IN"
	}
	return false
}

// tryInTail parses "[NOT] IN ..." after a left-hand side (scalar or tuple).
// handled=false means no IN keyword was present.
func (p *Parser) tryInTail(left []Expr) (Expr, bool, error) {
	neg := false
	mark := p.save()
	if p.acceptKeyword("NOT") {
		if !p.peekKeyword("IN") {
			p.restore(mark)
			return nil, false, nil
		}
		neg = true
	}
	if !p.acceptKeyword("IN") {
		p.restore(mark)
		return nil, false, nil
	}
	// IN ANSWER R — the entangled constraint.
	if p.acceptKeyword("ANSWER") {
		rel, err := p.ident()
		if err != nil {
			return nil, false, err
		}
		return &InAnswer{Left: left, Relation: rel, Neg: neg}, true, nil
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, false, err
	}
	// IN (SELECT ...) — subquery membership.
	if p.peekKeyword("SELECT") {
		sub, err := p.selectOrEntangled()
		if err != nil {
			return nil, false, err
		}
		sel, ok := sub.(*Select)
		if !ok {
			return nil, false, p.errf("entangled query cannot appear as a subquery")
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, false, err
		}
		return &InSelect{Left: left, Sub: sel, Neg: neg}, true, nil
	}
	// IN (v1, v2, ...) — value list; only scalar LHS supported.
	if len(left) != 1 {
		return nil, false, p.errf("tuple IN value-list is not supported")
	}
	var vals []Expr
	for {
		e, err := p.expression()
		if err != nil {
			return nil, false, err
		}
		vals = append(vals, e)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, false, err
	}
	return &InValues{X: left[0], Vals: vals, Neg: neg}, true, nil
}

func (p *Parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = p.newBinary(OpAdd, l, r)
		case p.acceptSymbol("-"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = p.newBinary(OpSub, l, r)
		default:
			return l, nil
		}
	}
}

func (p *Parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = p.newBinary(OpMul, l, r)
		case p.acceptSymbol("/"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = p.newBinary(OpDiv, l, r)
		default:
			return l, nil
		}
	}
}

func (p *Parser) unary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Neg{X: x}, nil
	}
	return p.primary()
}

func (p *Parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return p.newLiteral(value.NewFloat(f)), nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return p.newLiteral(value.NewInt(n)), nil
	case TokString:
		p.advance()
		return p.newStringLiteral(t.Text), nil
	case TokParam:
		p.advance()
		if t.Text == "" { // '?': next ordinal slot
			idx := p.ordParam
			p.ordParam++
			return &Param{Idx: idx}, nil
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 1 || n > maxParamSlot {
			return nil, p.errf("bad parameter number $%s", t.Text)
		}
		return &Param{Idx: n - 1}, nil
	case TokKeyword:
		switch t.Text {
		case "EXISTS":
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if !p.peekKeyword("SELECT") {
				return nil, p.errf("EXISTS needs a subquery")
			}
			sub, err := p.selectOrEntangled()
			if err != nil {
				return nil, err
			}
			sel, ok := sub.(*Select)
			if !ok {
				return nil, p.errf("entangled query cannot appear under EXISTS")
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &Exists{Sel: sel}, nil
		case "NULL":
			p.advance()
			return p.newLiteral(value.Null), nil
		case "TRUE":
			p.advance()
			return p.newLiteral(value.NewBool(true)), nil
		case "FALSE":
			p.advance()
			return p.newLiteral(value.NewBool(false)), nil
		}
		return nil, p.errf("unexpected %s in expression", t)
	case TokIdent:
		p.advance()
		if p.peekSymbol("(") && isAggregateName(t.Text) {
			p.advance() // (
			if p.acceptSymbol("*") {
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				name := strings.ToUpper(t.Text)
				if name != "COUNT" {
					return nil, p.errf("%s(*) is not valid; only COUNT(*)", name)
				}
				return &FuncCall{Name: name, Star: true}, nil
			}
			arg, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: strings.ToUpper(t.Text), Arg: arg}, nil
		}
		if p.acceptSymbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return p.newColumnRef(t.Text, col), nil
		}
		return p.newColumnRef("", t.Text), nil
	case TokSymbol:
		if t.Text == "(" {
			p.advance()
			if p.peekKeyword("SELECT") {
				sub, err := p.selectOrEntangled()
				if err != nil {
					return nil, err
				}
				sel, ok := sub.(*Select)
				if !ok {
					return nil, p.errf("entangled query cannot appear as a scalar subquery")
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &Subquery{Sel: sel}, nil
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}
