package sql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/value"
)

// KramerQuery is the exact entangled query from §2.1 of the paper.
const KramerQuery = `SELECT 'Kramer', fno INTO ANSWER Reservation
WHERE
fno IN (SELECT fno FROM Flights WHERE dest='Paris')
AND ('Jerry', fno) IN ANSWER Reservation
CHOOSE 1`

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParsePaperEntangledQuery(t *testing.T) {
	s := mustParse(t, KramerQuery)
	eq, ok := s.(*EntangledSelect)
	if !ok {
		t.Fatalf("got %T, want *EntangledSelect", s)
	}
	if len(eq.Targets) != 1 || eq.Targets[0].Relation != "Reservation" {
		t.Fatalf("targets = %+v", eq.Targets)
	}
	if len(eq.Targets[0].Exprs) != 2 {
		t.Fatalf("answer tuple arity = %d", len(eq.Targets[0].Exprs))
	}
	lit, ok := eq.Targets[0].Exprs[0].(*Literal)
	if !ok || lit.Val.Str() != "Kramer" {
		t.Errorf("first answer expr = %v", eq.Targets[0].Exprs[0])
	}
	if eq.Choose != 1 {
		t.Errorf("choose = %d", eq.Choose)
	}

	conj := Conjuncts(eq.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d: %v", len(conj), conj)
	}
	if _, ok := conj[0].(*InSelect); !ok {
		t.Errorf("conjunct 0 = %T, want *InSelect", conj[0])
	}
	ia, ok := conj[1].(*InAnswer)
	if !ok {
		t.Fatalf("conjunct 1 = %T, want *InAnswer", conj[1])
	}
	if ia.Relation != "Reservation" || len(ia.Left) != 2 {
		t.Errorf("InAnswer = %+v", ia)
	}
}

func TestParseEntangledDefaultChoose(t *testing.T) {
	s := mustParse(t, "SELECT 'J', fno INTO ANSWER R WHERE ('K', fno) IN ANSWER R")
	eq := s.(*EntangledSelect)
	if eq.Choose != 1 {
		t.Errorf("default CHOOSE = %d, want 1", eq.Choose)
	}
}

func TestParseEntangledMultiTarget(t *testing.T) {
	// Flight + hotel coordination: two answer atoms in one query (§3.1).
	src := `SELECT ('Jerry', fno) INTO ANSWER Reservation,
	               ('Jerry', hno) INTO ANSWER HotelReservation
	        WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris')
	          AND hno IN (SELECT hno FROM Hotels WHERE city = 'Paris')
	          AND ('Kramer', fno) IN ANSWER Reservation
	          AND ('Kramer', hno) IN ANSWER HotelReservation
	        CHOOSE 1`
	eq := mustParse(t, src).(*EntangledSelect)
	if len(eq.Targets) != 2 {
		t.Fatalf("targets = %d", len(eq.Targets))
	}
	if eq.Targets[0].Relation != "Reservation" || eq.Targets[1].Relation != "HotelReservation" {
		t.Errorf("relations = %s, %s", eq.Targets[0].Relation, eq.Targets[1].Relation)
	}
	if len(Conjuncts(eq.Where)) != 4 {
		t.Errorf("conjuncts = %d", len(Conjuncts(eq.Where)))
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, "CREATE TABLE Flights (fno INT, dest STRING, price FLOAT, full BOOL, PRIMARY KEY (fno))")
	ct := s.(*CreateTable)
	if ct.Name != "Flights" || len(ct.Cols) != 4 {
		t.Fatalf("%+v", ct)
	}
	wantTypes := []value.Type{value.TypeInt, value.TypeString, value.TypeFloat, value.TypeBool}
	for i, w := range wantTypes {
		if ct.Cols[i].Type != w {
			t.Errorf("col %d type = %v, want %v", i, ct.Cols[i].Type, w)
		}
	}
	if len(ct.PK) != 1 || ct.PK[0] != "fno" {
		t.Errorf("pk = %v", ct.PK)
	}
}

func TestParseCreateIndex(t *testing.T) {
	s := mustParse(t, "CREATE INDEX ON Flights (dest, price)")
	ci := s.(*CreateIndex)
	if ci.Table != "Flights" || len(ci.Cols) != 2 || ci.Cols[1] != "price" {
		t.Errorf("%+v", ci)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	s := mustParse(t, "INSERT INTO Flights VALUES (122, 'Paris'), (136, 'Rome')")
	ins := s.(*Insert)
	if ins.Table != "Flights" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Fatalf("%+v", ins)
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	d := mustParse(t, "DELETE FROM Flights WHERE dest = 'Rome'").(*Delete)
	if d.Table != "Flights" || d.Where == nil {
		t.Errorf("%+v", d)
	}
	d2 := mustParse(t, "DELETE FROM Flights").(*Delete)
	if d2.Where != nil {
		t.Error("unexpected WHERE")
	}
	u := mustParse(t, "UPDATE Flights SET dest = 'Oslo', price = price + 10 WHERE fno = 122").(*Update)
	if len(u.Sets) != 2 || u.Where == nil {
		t.Errorf("%+v", u)
	}
}

func TestParsePlainSelect(t *testing.T) {
	s := mustParse(t, "SELECT f.fno, a.airlines FROM Flights f, Airlines a WHERE f.fno = a.fno AND f.dest = 'Paris' ORDER BY f.fno DESC LIMIT 10")
	sel := s.(*Select)
	if len(sel.Items) != 2 || len(sel.From) != 2 {
		t.Fatalf("%+v", sel)
	}
	if sel.From[0].Binding() != "f" || sel.From[1].Binding() != "a" {
		t.Errorf("bindings: %v", sel.From)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order by: %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseSelectStarAndDistinct(t *testing.T) {
	sel := mustParse(t, "SELECT DISTINCT * FROM Flights").(*Select)
	if !sel.Distinct || !sel.Items[0].Star {
		t.Errorf("%+v", sel)
	}
}

func TestParseSelectAlias(t *testing.T) {
	sel := mustParse(t, "SELECT fno AS flight FROM Flights").(*Select)
	if sel.Items[0].Alias != "flight" {
		t.Errorf("%+v", sel.Items[0])
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 = 7 AND NOT FALSE OR x < 2")
	if err != nil {
		t.Fatal(err)
	}
	// ((1+(2*3)) = 7 AND (NOT FALSE)) OR (x < 2)
	or, ok := e.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %v", e)
	}
	and, ok := or.L.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("left = %v", or.L)
	}
	eq, ok := and.L.(*Binary)
	if !ok || eq.Op != OpEq {
		t.Fatalf("and.L = %v", and.L)
	}
	add, ok := eq.L.(*Binary)
	if !ok || add.Op != OpAdd {
		t.Fatalf("eq.L = %v", eq.L)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != OpMul {
		t.Fatalf("add.R = %v", add.R)
	}
}

func TestParseParenthesizedArithmetic(t *testing.T) {
	e, err := ParseExpr("(x + 1) * 2")
	if err != nil {
		t.Fatal(err)
	}
	mul, ok := e.(*Binary)
	if !ok || mul.Op != OpMul {
		t.Fatalf("top = %v", e)
	}
}

func TestParseParenthesizedComparison(t *testing.T) {
	e, err := ParseExpr("(price) >= 100")
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := e.(*Binary); !ok || b.Op != OpGe {
		t.Fatalf("got %v", e)
	}
}

func TestParseBetween(t *testing.T) {
	e, err := ParseExpr("price BETWEEN 100 AND 200 AND dest = 'Paris'")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := e.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("top = %v", e)
	}
	if _, ok := and.L.(*Between); !ok {
		t.Fatalf("left = %T", and.L)
	}
}

func TestParseInValues(t *testing.T) {
	e, err := ParseExpr("dest IN ('Paris', 'Rome')")
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := e.(*InValues)
	if !ok || len(iv.Vals) != 2 || iv.Neg {
		t.Fatalf("%+v", e)
	}
	e2, err := ParseExpr("dest NOT IN ('Paris')")
	if err != nil {
		t.Fatal(err)
	}
	if iv2 := e2.(*InValues); !iv2.Neg {
		t.Error("NOT IN lost negation")
	}
}

func TestParseNotInAnswer(t *testing.T) {
	e, err := ParseExpr("('Jerry', fno) NOT IN ANSWER Reservation")
	if err != nil {
		t.Fatal(err)
	}
	ia, ok := e.(*InAnswer)
	if !ok || !ia.Neg {
		t.Fatalf("%+v", e)
	}
}

func TestParseMultiColumnInSelect(t *testing.T) {
	e, err := ParseExpr("(fno, dest) IN (SELECT fno, dest FROM Flights)")
	if err != nil {
		t.Fatal(err)
	}
	is, ok := e.(*InSelect)
	if !ok || len(is.Left) != 2 {
		t.Fatalf("%+v", e)
	}
}

func TestParseNotPrefix(t *testing.T) {
	e, err := ParseExpr("NOT dest = 'Paris'")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Not); !ok {
		t.Fatalf("got %T", e)
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE T (x INT);
		INSERT INTO T VALUES (1);
		SELECT * FROM T;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * INTO ANSWER R",            // star into answer
		"SELECT fno AS f INTO ANSWER R",     // alias into answer
		"CREATE TABLE T ()",                 // no columns
		"CREATE TABLE T (x BLOB)",           // unknown type
		"INSERT INTO T (1)",                 // missing VALUES
		"SELECT fno FROM",                   // dangling FROM
		"SELECT fno FROM T WHERE",           // dangling WHERE
		"UPDATE T SET",                      // dangling SET
		"DELETE T",                          // missing FROM
		"SELECT f INTO ANSWER R CHOOSE 0",   // CHOOSE < 1
		"SELECT f INTO ANSWER R CHOOSE x",   // CHOOSE non-number
		"SELECT fno FROM T LIMIT x",         // bad limit
		"SELECT fno FROM T; garbage",        // trailing garbage
		"SELECT (a, b) FROM T",              // bare tuple outside entangled
		"SELECT fno WHERE (a, b) IN (1, 2)", // tuple IN value list
		"x IN (SELECT a INTO ANSWER R)",     // entangled subquery
	}
	for _, src := range bad {
		if _, err := ParseAll(src); err == nil {
			t.Errorf("ParseAll(%q): expected error", src)
		}
	}
}

// Round-trip property: printing a parsed statement and re-parsing it yields
// the same printed form (fixed point after one round).
func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		KramerQuery,
		"CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno))",
		"CREATE INDEX ON Flights (dest)",
		"DROP TABLE Flights",
		"INSERT INTO T VALUES (1, 'a'), (2, 'b')",
		"DELETE FROM T WHERE x = 1",
		"UPDATE T SET x = x + 1 WHERE y < 3",
		"SELECT DISTINCT f.fno FROM Flights f, Airlines a WHERE f.fno = a.fno ORDER BY f.fno DESC LIMIT 5",
		"SELECT 'J', fno INTO ANSWER R WHERE ('K', fno) IN ANSWER R CHOOSE 2",
		`SELECT ('J', fno) INTO ANSWER R, ('J', hno) INTO ANSWER H WHERE ('K', fno) IN ANSWER R CHOOSE 1`,
		"SELECT x FROM T WHERE x BETWEEN 1 AND 2 OR NOT y = 3",
		"SELECT x FROM T WHERE x IN (1, 2, 3) AND y NOT IN (SELECT y FROM U)",
		"SELECT dest, COUNT(*) FROM T GROUP BY dest HAVING COUNT(*) >= 2 ORDER BY COUNT(*) DESC",
		"SELECT fno FROM T WHERE price = ((SELECT MIN(price) FROM T))",
		"SELECT name FROM H WHERE name LIKE 'Hotel%' AND note IS NULL OR x IS NOT NULL AND y NOT LIKE '_bc'",
		"INSERT INTO T SELECT fno, dest FROM Flights WHERE dest = 'Paris'",
		"SELECT 1 WHERE EXISTS (SELECT x FROM T) AND NOT EXISTS (SELECT y FROM U)",
		"SELECT SUM(price), AVG(price), MIN(x), MAX(x), COUNT(fno) FROM T",
	}
	for _, src := range srcs {
		s1, err := Parse(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse %q: %v", printed, err)
			continue
		}
		if s2.String() != printed {
			t.Errorf("round trip diverged:\n  1st: %s\n  2nd: %s", printed, s2.String())
		}
	}
}

func TestWalkExprCoversAllNodes(t *testing.T) {
	e, err := ParseExpr("(a, b) IN ANSWER R AND x BETWEEN 1 AND 2 AND -y IN (1, 2) AND NOT (q IN (SELECT z FROM T))")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	WalkExpr(e, func(x Expr) {
		kinds = append(kinds, fmt.Sprintf("%T", x))
	})
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"InAnswer", "Between", "Neg", "InValues", "Not", "InSelect", "ColumnRef", "Literal", "Binary"} {
		if !strings.Contains(joined, want) {
			t.Errorf("WalkExpr missed %s (visited: %s)", want, joined)
		}
	}
}

func TestConjunctsAndAll(t *testing.T) {
	e, err := ParseExpr("a = 1 AND b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	rebuilt := AndAll(cs)
	if rebuilt.String() != e.String() {
		t.Errorf("AndAll: %s != %s", rebuilt.String(), e.String())
	}
	if Conjuncts(nil) != nil || AndAll(nil) != nil {
		t.Error("nil handling")
	}
}
