package sql

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: arbitrary input must produce a value or an error,
// never a panic — the CLI and the wire server feed user text straight in.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		ParseAll(src) //nolint:errcheck
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnMangledSQL: mutations of valid statements (truncated,
// duplicated tokens, swapped chars) must not panic either — these are far
// more likely to reach deep parser states than random unicode.
func TestParseNeverPanicsOnMangledSQL(t *testing.T) {
	bases := []string{
		KramerQuery,
		"CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno))",
		"SELECT f.fno, a.airline FROM Flights f, Airlines a WHERE f.fno = a.fno ORDER BY 1 DESC LIMIT 3",
		"SELECT dest, COUNT(*) FROM T GROUP BY dest HAVING COUNT(*) > 1",
		"INSERT INTO T VALUES (1, 'a''b'), (2, NULL)",
		"SELECT ('J', fno) INTO ANSWER R, ('J', hno) INTO ANSWER H WHERE ('K', fno) IN ANSWER R CHOOSE 2",
	}
	check := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		ParseAll(src) //nolint:errcheck
	}
	for _, base := range bases {
		for cut := 0; cut <= len(base); cut += 3 {
			check(base[:cut])        // truncations
			check(base[cut:])        // suffixes
			check(base[:cut] + base) // duplications
		}
		check(strings.ReplaceAll(base, "(", ")"))
		check(strings.ReplaceAll(base, "'", ""))
		check(strings.ReplaceAll(base, " ", "("))
		check(strings.ToLower(base) + ";;;")
	}
}

// TestExprStringNeverPanics: every successfully parsed statement can print
// itself.
func TestStringOnParsedNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		if stmts, err := ParseAll(src); err == nil {
			for _, s := range stmts {
				_ = s.String()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
