// Package sql implements the lexer, parser and abstract syntax tree for
// Youtopia's SQL dialect: a conventional SQL subset (CREATE/DROP/INSERT/
// UPDATE/DELETE/SELECT with joins and IN-subqueries) extended with the
// paper's entangled-query syntax:
//
//	SELECT select_expr
//	INTO ANSWER tbl_name [, ANSWER tbl_name] ...
//	[WHERE where_answer_condition]
//	[CHOOSE n]
//
// The WHERE clause of an entangled query may contain answer constraints of
// the form (expr, ..., expr) IN ANSWER tbl_name, which is how one query's
// answer is made conditional on the answers other queries receive (§2.1 of
// the paper).
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokSymbol // punctuation and operators
	TokParam  // statement parameter placeholder: '?' (Text "") or '$n' (Text "n")
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokSymbol:
		return "symbol"
	case TokParam:
		return "parameter"
	default:
		return "?"
	}
}

// Token is one lexical token. Text holds the raw spelling; for keywords it is
// upper-cased, and for strings it is the unescaped content.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	if t.Kind == TokParam {
		if t.Text == "" {
			return `parameter "?"`
		}
		return fmt.Sprintf("parameter %q", "$"+t.Text)
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// keywordList enumerates the keywords recognized by the dialect. Everything
// else alphabetic is an identifier. ANSWER, INTO and CHOOSE carry the
// entangled-query extensions.
var keywordList = []string{
	"SELECT", "FROM", "WHERE", "INTO",
	"ANSWER", "CHOOSE", "AND", "OR", "NOT",
	"IN", "CREATE", "TABLE", "DROP", "INSERT",
	"VALUES", "DELETE", "UPDATE", "SET",
	"PRIMARY", "KEY", "NULL", "TRUE", "FALSE",
	"AS", "BETWEEN", "DISTINCT", "INDEX", "ON",
	"ORDER", "BY", "ASC", "DESC", "LIMIT",
	"GROUP", "HAVING",
	"BEGIN", "COMMIT", "ROLLBACK",
	"LIKE", "IS", "EXISTS", "EXPLAIN",
}

// keywordCanonical interns each keyword's canonical upper-case spelling, so
// keyword tokens alias these strings instead of allocating per token.
var keywordCanonical = make(map[string]string, len(keywordList))

// maxKeywordLen bounds the stack buffer of the lexer's case-folding probe;
// longer words cannot be keywords (init asserts the table agrees).
const maxKeywordLen = 8

func init() {
	for _, k := range keywordList {
		if len(k) > maxKeywordLen {
			panic("sql: keyword " + k + " exceeds maxKeywordLen")
		}
		keywordCanonical[k] = k
	}
}
