// Package sql implements the lexer, parser and abstract syntax tree for
// Youtopia's SQL dialect: a conventional SQL subset (CREATE/DROP/INSERT/
// UPDATE/DELETE/SELECT with joins and IN-subqueries) extended with the
// paper's entangled-query syntax:
//
//	SELECT select_expr
//	INTO ANSWER tbl_name [, ANSWER tbl_name] ...
//	[WHERE where_answer_condition]
//	[CHOOSE n]
//
// The WHERE clause of an entangled query may contain answer constraints of
// the form (expr, ..., expr) IN ANSWER tbl_name, which is how one query's
// answer is made conditional on the answers other queries receive (§2.1 of
// the paper).
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokSymbol // punctuation and operators
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokSymbol:
		return "symbol"
	default:
		return "?"
	}
}

// Token is one lexical token. Text holds the raw spelling; for keywords it is
// upper-cased, and for strings it is the unescaped content.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// keywords recognized by the dialect. Everything else alphabetic is an
// identifier. ANSWER, INTO and CHOOSE carry the entangled-query extensions.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INTO": true,
	"ANSWER": true, "CHOOSE": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "CREATE": true, "TABLE": true, "DROP": true, "INSERT": true,
	"VALUES": true, "DELETE": true, "UPDATE": true, "SET": true,
	"PRIMARY": true, "KEY": true, "NULL": true, "TRUE": true, "FALSE": true,
	"AS": true, "BETWEEN": true, "DISTINCT": true, "INDEX": true, "ON": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"GROUP": true, "HAVING": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"LIKE": true, "IS": true, "EXISTS": true,
}
