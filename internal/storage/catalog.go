package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// Catalog is the namespace of tables in a Youtopia database instance. Table
// names are case-insensitive, as in the paper's SQL examples.
type Catalog struct {
	log    logState
	mu     sync.RWMutex
	tables map[string]*Table
	// ddl counts schema changes (CREATE/DROP TABLE, CREATE INDEX). Cached
	// query plans and prepared-statement artifacts are stamped with the
	// version they were built against and rebuilt when it moves — the DDL
	// invalidation point of the plan cache.
	ddl atomic.Uint64
}

// BumpDDL advances the schema version; call after any DDL that can change
// plan validity (table existence, schemas, index presence).
func (c *Catalog) BumpDDL() { c.ddl.Add(1) }

// DDLVersion returns the current schema version.
func (c *Catalog) DDLVersion() uint64 { return c.ddl.Load() }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

func canonical(name string) string { return strings.ToLower(name) }

// Create creates a table. It fails if the name is already taken.
func (c *Catalog) Create(name string, schema *value.Schema, pkCols ...string) (*Table, error) {
	t, err := NewTable(name, schema, pkCols...)
	if err != nil {
		return nil, err
	}
	t.log = &c.log
	c.mu.Lock()
	key := canonical(name)
	if _, exists := c.tables[key]; exists {
		c.mu.Unlock()
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	c.tables[key] = t
	c.mu.Unlock()
	c.log.emit(LogRecord{Op: OpCreateTable, Table: name, Schema: schema, PK: pkCols})
	return t, nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[canonical(name)]
	if !ok {
		return nil, fmt.Errorf("%w: table %q", ErrNotFound, name)
	}
	return t, nil
}

// Has reports whether the named table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[canonical(name)]
	return ok
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := canonical(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("%w: table %q", ErrNotFound, name)
	}
	delete(c.tables, key)
	c.log.emit(LogRecord{Op: OpDropTable, Table: name})
	return nil
}

// Names returns all table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name())
	}
	sort.Strings(names)
	return names
}
